// Property tests for unique-cause MC/DC analysis.
//
// The defining property: a condition is demonstrated independent only by a
// pair of evaluation vectors that differ in EXACTLY that condition and flip
// the decision outcome. Vector pairs differing in more than one condition
// (masking vectors) must never form a demonstrating pair — a classic way
// for a coverage tool to over-report MC/DC.
#include "coverage/coverage.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>

#include "support/check.h"
#include "support/rng.h"

namespace certkit::cov {
namespace {

using VectorSet = std::set<std::pair<std::uint64_t, bool>>;

// Brute-force reference: condition c is demonstrated iff two vectors exist
// with XOR exactly bit c and different outcomes.
std::int64_t McdcReference(int num_conditions, const VectorSet& vectors) {
  std::int64_t demonstrated = 0;
  for (int c = 0; c < num_conditions; ++c) {
    bool shown = false;
    for (const auto& a : vectors) {
      for (const auto& b : vectors) {
        if ((a.first ^ b.first) == (1ULL << c) && a.second != b.second) {
          shown = true;
        }
      }
    }
    if (shown) ++demonstrated;
  }
  return demonstrated;
}

TEST(McdcPropertyTest, UniqueCausePairIsCounted) {
  // 3 conditions; vectors 000 -> F and 100 -> T differ only in condition 2.
  VectorSet vectors{{0b000, false}, {0b100, true}};
  EXPECT_EQ(McdcDemonstrated(3, vectors), 1);
}

TEST(McdcPropertyTest, MaskingVectorsDoNotCount) {
  // 00 -> F and 11 -> T flip the outcome but differ in BOTH conditions:
  // neither condition is shown to act independently.
  VectorSet vectors{{0b00, false}, {0b11, true}};
  EXPECT_EQ(McdcDemonstrated(2, vectors), 0);

  // Same through the probe API: full branch coverage, zero MC/DC.
  Unit u("mcdc/masking");
  const int d = u.DeclareDecision(2);
  u.Cond(d, 0, false);
  u.Cond(d, 1, false);
  u.Dec(d, false);
  u.Cond(d, 0, true);
  u.Cond(d, 1, true);
  u.Dec(d, true);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 0);
}

TEST(McdcPropertyTest, SameOutcomeSingleBitPairDoesNotCount) {
  // Differ only in condition 0 but with the SAME outcome: no demonstration.
  VectorSet vectors{{0b0, true}, {0b1, true}};
  EXPECT_EQ(McdcDemonstrated(1, vectors), 0);
}

TEST(McdcPropertyTest, EvenParityVectorSetsNeverDemonstrateAnything) {
  // Any two vectors of even parity differ in at least two bit positions, so
  // a set of even-parity vectors consists entirely of masking pairs — MC/DC
  // must be zero for every condition, whatever the outcomes.
  support::Xoshiro256 rng(20260805);
  for (int trial = 0; trial < 200; ++trial) {
    const int num_conditions = static_cast<int>(rng.UniformInt(2, 12));
    VectorSet vectors;
    const int entries = static_cast<int>(rng.UniformInt(1, 24));
    for (int i = 0; i < entries; ++i) {
      std::uint64_t v = rng.Next() & ((1ULL << num_conditions) - 1);
      if (__builtin_popcountll(v) % 2 != 0) v ^= 1ULL;  // force even parity
      vectors.insert({v, rng.Bernoulli(0.5)});
    }
    EXPECT_EQ(McdcDemonstrated(num_conditions, vectors), 0)
        << "trial " << trial;
  }
}

TEST(McdcPropertyTest, MatchesBruteForceReferenceOnRandomTables) {
  support::Xoshiro256 rng(404242);
  for (int trial = 0; trial < 200; ++trial) {
    const int num_conditions = static_cast<int>(rng.UniformInt(1, 10));
    VectorSet vectors;
    const int entries = static_cast<int>(rng.UniformInt(0, 30));
    for (int i = 0; i < entries; ++i) {
      const std::uint64_t v = rng.Next() & ((1ULL << num_conditions) - 1);
      vectors.insert({v, rng.Bernoulli(0.5)});
    }
    EXPECT_EQ(McdcDemonstrated(num_conditions, vectors),
              McdcReference(num_conditions, vectors))
        << "trial " << trial;
  }
}

TEST(McdcPropertyTest, SixtyFourConditionBoundary) {
  Unit u("mcdc/wide");
  const int d = u.DeclareDecision(64);
  EXPECT_EQ(u.decision_conditions(d), 64);
  // Flip only the top condition (bit 63) with opposite outcomes.
  for (int c = 0; c < 64; ++c) u.Cond(d, c, false);
  u.Dec(d, false);
  for (int c = 0; c < 63; ++c) u.Cond(d, c, false);
  u.Cond(d, 63, true);
  u.Dec(d, true);
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 1);
  EXPECT_EQ(u.mcdc_conditions_total(), 64);

  // The same pair via the free function, using the top bit explicitly.
  VectorSet vectors{{0ULL, false}, {1ULL << 63, true}};
  EXPECT_EQ(McdcDemonstrated(64, vectors), 1);
}

TEST(McdcPropertyTest, DeclareDecisionRejectsOutOfRangeConditionCounts) {
  Unit u("mcdc/declare");
  EXPECT_THROW(u.DeclareDecision(0), support::ContractViolation);
  EXPECT_THROW(u.DeclareDecision(-3), support::ContractViolation);
  EXPECT_THROW(u.DeclareDecision(65), support::ContractViolation);
  EXPECT_NO_THROW(u.DeclareDecision(1));
  EXPECT_NO_THROW(u.DeclareDecision(64));
}

TEST(McdcPropertyTest, MergeCoverCountsOnlyNewFacts) {
  CoverSet a;
  CoverSet b;
  b["unit"].stmts = {0, 1};
  b["unit"].decisions[0].num_conditions = 2;
  b["unit"].decisions[0].seen_true = true;
  b["unit"].decisions[0].vectors = {{0b11, true}};
  // First merge: 2 statements + 1 outcome + 1 vector = 4 new facts.
  EXPECT_EQ(MergeCover(&a, b), 4);
  // Re-merging the same cover adds nothing.
  EXPECT_EQ(MergeCover(&a, b), 0);
  // A cover with one extra vector adds exactly one fact.
  b["unit"].decisions[0].vectors.insert({0b01, true});
  EXPECT_EQ(MergeCover(&a, b), 1);
}

}  // namespace
}  // namespace certkit::cov
