// Unit tests for the coverage runtime: statement, branch, and MC/DC.
#include "coverage/coverage.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/check.h"

namespace certkit::cov {
namespace {

TEST(CoverageTest, StatementCoverageBasics) {
  Unit u("u1");
  u.DeclareStatements(4);
  EXPECT_EQ(u.statements_total(), 4);
  EXPECT_DOUBLE_EQ(u.StatementCoverage(), 0.0);
  u.Stmt(0);
  u.Stmt(2);
  u.Stmt(2);  // repeat hits count once
  EXPECT_EQ(u.statements_hit(), 2);
  EXPECT_DOUBLE_EQ(u.StatementCoverage(), 0.5);
  u.Stmt(1);
  u.Stmt(3);
  EXPECT_DOUBLE_EQ(u.StatementCoverage(), 1.0);
}

TEST(CoverageTest, EmptyUnitIsFullyCovered) {
  Unit u("empty");
  EXPECT_DOUBLE_EQ(u.StatementCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(u.McdcCoverage(), 1.0);
}

TEST(CoverageTest, OutOfRangeStatementProbeIsContractViolation) {
  Unit u("u");
  u.DeclareStatements(2);
  EXPECT_THROW(u.Stmt(2), support::ContractViolation);
  EXPECT_THROW(u.Stmt(-1), support::ContractViolation);
}

TEST(CoverageTest, BranchCoverageNeedsBothOutcomes) {
  Unit u("u");
  const int d = u.DeclareDecision(1);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 0.0);  // declared but never executed
  u.Branch(d, true);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 0.5);
  u.Branch(d, true);  // same outcome adds nothing
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 0.5);
  u.Branch(d, false);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
}

TEST(CoverageTest, BranchCoverageAveragesAcrossDecisions) {
  Unit u("u");
  const int d0 = u.DeclareDecision(1);
  const int d1 = u.DeclareDecision(1);
  u.Branch(d0, true);
  u.Branch(d0, false);
  u.Branch(d1, true);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 0.75);  // 3 of 4 outcomes
}

TEST(CoverageTest, McdcSingleConditionEqualsBranch) {
  Unit u("u");
  const int d = u.DeclareDecision(1);
  u.Branch(d, true);
  EXPECT_DOUBLE_EQ(u.McdcCoverage(), 0.0);  // only one vector
  u.Branch(d, false);
  EXPECT_DOUBLE_EQ(u.McdcCoverage(), 1.0);  // {1,T} vs {0,F} differ in c0
}

TEST(CoverageTest, McdcTwoConditionAnd) {
  // outcome = a && b. Unique-cause pairs: a needs (T,T)/(F,T); b needs
  // (T,T)/(T,F).
  Unit u("u");
  const int d = u.DeclareDecision(2);
  auto run = [&](bool a, bool b) {
    bool ca = u.Cond(d, 0, a);
    bool cb = u.Cond(d, 1, b);
    u.Dec(d, ca && cb);
  };
  run(true, true);
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 0);
  run(false, true);  // demonstrates a
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 1);
  run(true, false);  // demonstrates b
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 2);
  EXPECT_DOUBLE_EQ(u.McdcCoverage(), 1.0);
  // Branch coverage is also complete (T and F outcomes seen).
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
}

TEST(CoverageTest, McdcAllFourVectorsOfOrStillNeedUniqueCausePairs) {
  // outcome = a || b with vectors (F,F) and (T,T) only: branch coverage is
  // complete but NO condition is demonstrated independently... actually
  // (F,F)->F and (T,T)->T differ in both conditions, so neither is shown.
  Unit u("u");
  const int d = u.DeclareDecision(2);
  auto run = [&](bool a, bool b) {
    u.Cond(d, 0, a);
    u.Cond(d, 1, b);
    u.Dec(d, a || b);
  };
  run(false, false);
  run(true, true);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 0);
  run(true, false);  // (T,F)->T with (F,F)->F shows a; with (T,T)->T nothing
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 1);
  run(false, true);  // shows b against (F,F)
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 2);
}

TEST(CoverageTest, McdcThreeConditions) {
  // outcome = a && (b || c).
  Unit u("u");
  const int d = u.DeclareDecision(3);
  auto run = [&](bool a, bool b, bool c) {
    u.Cond(d, 0, a);
    u.Cond(d, 1, b);
    u.Cond(d, 2, c);
    u.Dec(d, a && (b || c));
  };
  // Classic minimal unique-cause set for a && (b || c):
  run(true, true, false);   // T
  run(false, true, false);  // F — shows a
  run(true, false, false);  // F — shows b
  run(true, false, true);   // T — shows c
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 3);
  EXPECT_DOUBLE_EQ(u.McdcCoverage(), 1.0);
}

TEST(CoverageTest, ResetClearsExecutionKeepsDeclarations) {
  Unit u("u");
  u.DeclareStatements(2);
  const int d = u.DeclareDecision(1);
  u.Stmt(0);
  u.Branch(d, true);
  u.Reset();
  EXPECT_EQ(u.statements_total(), 2);
  EXPECT_EQ(u.statements_hit(), 0);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 0.0);
}

TEST(CoverageTest, RegistryCreatesAndFinds) {
  Unit& a = Registry::Instance().GetOrCreate("reg/alpha.cc");
  Unit& b = Registry::Instance().GetOrCreate("reg/alpha.cc");
  EXPECT_EQ(&a, &b);
  Registry::Instance().GetOrCreate("reg/beta.cc");
  auto units = Registry::Instance().Units();
  int found = 0;
  for (const Unit* u : units) {
    if (u->name() == "reg/alpha.cc" || u->name() == "reg/beta.cc") ++found;
  }
  EXPECT_EQ(found, 2);
}

TEST(CoverageTest, SnapshotAndAverage) {
  Unit& a = Registry::Instance().GetOrCreate("snap/a.cc");
  a.DeclareStatements(2);
  a.Stmt(0);
  auto rows = Snapshot();
  ASSERT_FALSE(rows.empty());
  CoverageRow avg = Average(rows);
  EXPECT_GE(avg.statement, 0.0);
  EXPECT_LE(avg.statement, 1.0);
}

TEST(CoverageTest, ConcurrentStatementProbes) {
  Unit u("mt");
  u.DeclareStatements(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&u] {
      for (int i = 0; i < 64; ++i) {
        for (int rep = 0; rep < 100; ++rep) u.Stmt(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(u.StatementCoverage(), 1.0);
  EXPECT_EQ(u.statements_hit(), 64);
}

TEST(CoverageTest, ConcurrentDecisionProbes) {
  Unit u("mt2");
  const int d = u.DeclareDecision(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&u, d, t] {
      for (int i = 0; i < 200; ++i) {
        const bool a = (i + t) % 2 == 0;
        const bool b = i % 3 == 0;
        u.Cond(d, 0, a);
        u.Cond(d, 1, b);
        u.Dec(d, a && b);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), 2);
}

// Property sweep: with a decision of N independent conditions driven through
// the 2^N full truth table of `AND`, every condition is demonstrated.
class McdcSweep : public ::testing::TestWithParam<int> {};

TEST_P(McdcSweep, FullTruthTableDemonstratesAllForAnd) {
  const int n = GetParam();
  Unit u("sweep");
  const int d = u.DeclareDecision(n);
  for (std::uint64_t v = 0; v < (1ULL << n); ++v) {
    bool outcome = true;
    for (int c = 0; c < n; ++c) {
      const bool val = (v >> c) & 1ULL;
      u.Cond(d, c, val);
      outcome = outcome && val;
    }
    u.Dec(d, outcome);
  }
  EXPECT_EQ(u.mcdc_conditions_demonstrated(), n);
  EXPECT_DOUBLE_EQ(u.McdcCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(u.BranchCoverage(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Conditions, McdcSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 10));

}  // namespace
}  // namespace certkit::cov
