// Tests for the fixed-size thread pool behind the analysis driver.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace certkit::support {
namespace {

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::ResolveJobs(3), 3);
  EXPECT_GE(ThreadPool::ResolveJobs(0), 1);
  EXPECT_GE(ThreadPool::ResolveJobs(-1), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  for (const int workers : {1, 2, 8}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.thread_count(), workers);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100) << "workers=" << workers;
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    EXPECT_THROW(
        pool.ParallelFor(100,
                         [&](std::size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error)
        << "workers=" << workers;
    // The pool must stay usable after an exception drained.
    std::atomic<int> counter{0};
    pool.ParallelFor(10, [&](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 10);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesSlotOrder) {
  for (const int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    const auto out = ParallelMap<int>(
        pool, 500, [](std::size_t i) { return static_cast<int>(i * 2); });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<int>(i * 2));
    }
  }
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::vector<int> data(10000, 0);
  pool.ParallelFor(data.size(), [&](std::size_t i) { data[i] = 1; });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0),
            static_cast<int>(data.size()));
}

}  // namespace
}  // namespace certkit::support
