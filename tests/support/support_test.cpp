// Tests for the support library: strings, RNG, status/result, I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "support/check.h"
#include "support/io.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/strings.h"

namespace certkit::support {
namespace {

// ---------------------------------------------------------------- strings --

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a\tb\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(Contains("foobar", "oba"));
  EXPECT_FALSE(Contains("foobar", "xyz"));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToUpper("MiXeD123"), "MIXED123");
}

TEST(StringsTest, NamingPredicates) {
  EXPECT_TRUE(IsSnakeCase("snake_case_2"));
  EXPECT_FALSE(IsSnakeCase("Snake_case"));
  EXPECT_FALSE(IsSnakeCase("double__under"));
  EXPECT_FALSE(IsSnakeCase("trailing_"));
  EXPECT_FALSE(IsSnakeCase(""));

  EXPECT_TRUE(IsUpperCamelCase("UpperCamel2"));
  EXPECT_FALSE(IsUpperCamelCase("lowerStart"));
  EXPECT_FALSE(IsUpperCamelCase("With_Underscore"));

  EXPECT_TRUE(IsLowerCamelCase("lowerCamel"));
  EXPECT_FALSE(IsLowerCamelCase("UpperStart"));

  EXPECT_TRUE(IsMacroCase("MACRO_CASE_2"));
  EXPECT_FALSE(IsMacroCase("Macro_Case"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

// -------------------------------------------------------------------- rng --

TEST(RngTest, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_different = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Xoshiro256 rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    const double w = rng.UniformDouble(-2.0, 3.0);
    EXPECT_GE(w, -2.0);
    EXPECT_LT(w, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Xoshiro256 rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliRate) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, WeightedIndexProportions) {
  Xoshiro256 rng(19);
  const double weights[3] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.WeightedIndex(weights, 3)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, WeightedIndexAllZeroIsContractViolation) {
  Xoshiro256 rng(23);
  const double weights[2] = {0.0, 0.0};
  EXPECT_THROW(rng.WeightedIndex(weights, 2), ContractViolation);
}

// ----------------------------------------------------------------- status --

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status err = NotFoundError("missing.txt");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: missing.txt");
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Result<int> bad(ParseError("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), ContractViolation);
}

TEST(ResultTest, OkStatusWithoutValueIsContractViolation) {
  EXPECT_THROW(Result<int>(Status::Ok()), ContractViolation);
}

TEST(CheckTest, MessagesCarryLocation) {
  try {
    CERTKIT_CHECK_MSG(1 == 2, "custom detail " << 99);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 99"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

// --------------------------------------------------------------------- io --

TEST(IoTest, WriteReadRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "certkit_io_test").string();
  const std::string path = dir + "/sub/file.txt";
  ASSERT_TRUE(WriteFile(path, "hello\nworld").ok());
  auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello\nworld");
  std::filesystem::remove_all(dir);
}

TEST(IoTest, ReadMissingFileFails) {
  auto r = ReadFile("/nonexistent/certkit/file.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, ListFilesFiltersAndSorts) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "certkit_list_test";
  fs::remove_all(dir);
  ASSERT_TRUE(WriteFile((dir / "b.cc").string(), "x").ok());
  ASSERT_TRUE(WriteFile((dir / "a.cc").string(), "x").ok());
  ASSERT_TRUE(WriteFile((dir / "n.txt").string(), "x").ok());
  ASSERT_TRUE(WriteFile((dir / "deep" / "c.cc").string(), "x").ok());

  auto all = ListFiles(dir.string(), {});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 4u);

  auto cc = ListFiles(dir.string(), {".cc"});
  ASSERT_TRUE(cc.ok());
  ASSERT_EQ(cc.value().size(), 3u);
  // Sorted.
  EXPECT_TRUE(cc.value()[0] < cc.value()[1]);
  fs::remove_all(dir);
}

TEST(IoTest, ListFilesIsLexicographicallySortedAcrossDirectories) {
  // The AnalysisDriver's determinism contract rests on this ordering
  // guarantee (see io.h), so assert it over a deliberately shuffled layout.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "certkit_sort_test";
  fs::remove_all(dir);
  const std::vector<std::string> rel = {
      "zeta/a.cc", "alpha/z.cc", "alpha/a.cc", "mid.cc",
      "alpha/nested/m.cc", "beta/b.cc", "aaa.cc"};
  for (const auto& r : rel) {
    ASSERT_TRUE(WriteFile((dir / r).string(), "x").ok());
  }
  auto listed = ListFiles(dir.string(), {".cc"});
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().size(), rel.size());
  for (std::size_t i = 1; i < listed.value().size(); ++i) {
    EXPECT_LT(listed.value()[i - 1], listed.value()[i]);
  }
  fs::remove_all(dir);
}

TEST(IoTest, ListFilesOnMissingDirFails) {
  auto r = ListFiles("/nonexistent/certkit/dir", {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace certkit::support
