// Property/fuzz tests for the JSON round-trip layer every persistent
// artifact rides on (replay artifacts, checkpoints, corpus entries, serve
// requests). Two contracts:
//
//  * emit -> parse -> emit is byte-identical: JsonToString re-emits number
//    literals verbatim and object members in map order, so the second emit
//    of any parsed document equals the first — including u64-boundary
//    integers that do not survive the double field, deeply nested
//    containers, and every escape the emitter produces;
//  * malformed input is rejected, never crashes, and never half-parses:
//    ParseJson returns false with a diagnostic for ~30 adversarial
//    fragments (truncations, bad escapes, non-finite tokens, depth bombs).
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using certkit::support::JsonEscape;
using certkit::support::JsonNumber;
using certkit::support::JsonToString;
using certkit::support::JsonValue;
using certkit::support::ParseJson;
using certkit::support::Xoshiro256;

// One emit -> parse -> emit -> parse -> emit cycle; the two re-emits must
// agree byte-for-byte (idempotent normal form).
void ExpectStableRoundTrip(const std::string& doc) {
  JsonValue first;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &first, &error)) << doc << ": " << error;
  const std::string once = JsonToString(first);
  JsonValue second;
  ASSERT_TRUE(ParseJson(once, &second, &error)) << once << ": " << error;
  EXPECT_EQ(once, JsonToString(second)) << "document: " << doc;
}

TEST(JsonRoundTripProperty, U64BoundaryIntegersSurviveVerbatim) {
  const std::uint64_t boundary[] = {
      0ULL,
      1ULL,
      (1ULL << 53) - 1,  // last exactly-representable double integer
      (1ULL << 53),
      (1ULL << 53) + 1,  // first integer the double field cannot hold
      (1ULL << 63) - 1,
      (1ULL << 63),
      ~0ULL,             // 18446744073709551615
      ~0ULL - 1,
  };
  for (std::uint64_t v : boundary) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    const std::string doc = std::string("{\"seed\":") + buf + "}";
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(doc, &parsed, &error)) << error;
    // The literal preserves the exact token; re-emit is byte-identical
    // even where `number` (a double) is lossy.
    EXPECT_EQ(doc, JsonToString(parsed));
    std::uint64_t back = 0;
    ASSERT_TRUE(certkit::support::JsonGetU64(parsed, "seed", &back, &error))
        << error;
    EXPECT_EQ(v, back);
  }
}

TEST(JsonRoundTripProperty, SignedBoundaryIntegers) {
  const std::int64_t boundary[] = {
      -1, -(1LL << 53), INT64_MIN, INT64_MIN + 1, INT64_MAX,
  };
  for (std::int64_t v : boundary) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    const std::string doc = std::string("[") + buf + "]";
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(doc, &parsed, &error)) << error;
    EXPECT_EQ(doc, JsonToString(parsed));
  }
}

TEST(JsonRoundTripProperty, JsonNumberRoundTripsRandomDoubles) {
  Xoshiro256 rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    double v;
    switch (i % 4) {
      case 0:
        v = rng.UniformDouble(-1e9, 1e9);
        break;
      case 1:
        v = rng.UniformDouble(-1e-6, 1e-6);
        break;
      case 2:  // full bit-pattern doubles (skip non-finite; tested below)
      default: {
        const std::uint64_t bits = rng.Next();
        std::memcpy(&v, &bits, sizeof v);
        if (!std::isfinite(v)) v = static_cast<double>(bits);
        break;
      }
    }
    const std::string token = JsonNumber(v);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(token, &parsed, &error)) << token << ": " << error;
    ASSERT_EQ(JsonValue::Kind::kNumber, parsed.kind) << token;
    EXPECT_EQ(v, parsed.number) << token;  // exact, not approximate
    EXPECT_EQ(token, JsonToString(parsed));
  }
}

TEST(JsonRoundTripProperty, NonFiniteEmitsNull) {
  EXPECT_EQ("null", JsonNumber(std::nan("")));
  EXPECT_EQ("null", JsonNumber(HUGE_VAL));
  EXPECT_EQ("null", JsonNumber(-HUGE_VAL));
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(JsonNumber(std::nan("")), &parsed, &error));
  EXPECT_TRUE(parsed.is_null());
}

TEST(JsonRoundTripProperty, EscapesSurviveRoundTrip) {
  const std::string nasty[] = {
      "plain",
      "quote\"backslash\\slash/",
      std::string("embedded\0nul", 12),
      "\x01\x02\x1f control bytes",
      "tab\tnewline\ncr\rback\bform\f",
      "utf8 bytes \xc3\xa9\xe2\x98\x83 pass through",
      std::string(300, '"'),
  };
  for (const std::string& s : nasty) {
    const std::string doc = "{\"k\":" + JsonEscape(s) + "}";
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(doc, &parsed, &error)) << error;
    std::string back;
    ASSERT_TRUE(certkit::support::JsonGetString(parsed, "k", &back, &error));
    EXPECT_EQ(s, back);
    EXPECT_EQ(doc, JsonToString(parsed));
  }
}

// Random document generator: structurally diverse but bounded so the
// 2000-document loop stays fast.
std::string RandomDocument(Xoshiro256* rng, int depth) {
  switch (depth <= 0 ? rng->UniformInt(0, 3) : rng->UniformInt(0, 5)) {
    case 0:
      return "null";
    case 1:
      return rng->Bernoulli(0.5) ? "true" : "false";
    case 2: {
      if (rng->Bernoulli(0.5)) {
        return std::to_string(
            static_cast<std::int64_t>(rng->Next()));  // full-width ints
      }
      return JsonNumber(rng->UniformDouble(-1e6, 1e6));
    }
    case 3: {
      std::string s;
      const int len = static_cast<int>(rng->UniformInt(0, 12));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->UniformInt(1, 126)));
      }
      return JsonEscape(s);
    }
    case 4: {
      std::string out = "[";
      const int n = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < n; ++i) {
        if (i > 0) out += ",";
        out += RandomDocument(rng, depth - 1);
      }
      return out + "]";
    }
    default: {
      // Keys ascend so the emitted map order matches the input order and
      // the *first* emit is already normal form.
      std::string out = "{";
      const int n = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < n; ++i) {
        if (i > 0) out += ",";
        out += "\"k" + std::to_string(i) + "\":" + RandomDocument(rng, depth - 1);
      }
      return out + "}";
    }
  }
}

TEST(JsonRoundTripProperty, RandomDocumentsReachFixpoint) {
  Xoshiro256 rng(77);
  for (int i = 0; i < 2000; ++i) {
    ExpectStableRoundTrip(RandomDocument(&rng, 4));
  }
}

TEST(JsonRoundTripProperty, DeepNestingWithinLimitRoundTrips) {
  // Parser depth limit is 64; 60 stays comfortably inside.
  std::string doc(60, '[');
  doc += "1";
  doc.append(60, ']');
  ExpectStableRoundTrip(doc);
}

TEST(JsonParseRejects, MalformedFragments) {
  const char* malformed[] = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{\"a\"}",
      "{\"a\":}",
      "{\"a\":1,}",
      "{a:1}",
      "{'a':1}",
      "{\"a\":1 \"b\":2}",
      "[1,]",
      "[1 2]",
      "[,1]",
      "nul",
      "tru",
      "falsey",
      "NaN",
      "Infinity",
      "-Infinity",
      "inf",
      "+1",
      "1e",
      "1e+",
      "0x10",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"bad unicode \\u12g4\"",
      "\"truncated unicode \\u12\"",
      "1 2",
      "{\"a\":1}garbage",
      "\x00\x01\x02",
  };
  for (const char* doc : malformed) {
    JsonValue out;
    std::string error;
    EXPECT_FALSE(ParseJson(doc, &out, &error)) << "accepted: " << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(JsonParseRejects, DepthBombsFailGracefully) {
  for (int depth : {65, 128, 5000}) {
    std::string doc(static_cast<std::size_t>(depth), '[');
    doc += "1";
    doc.append(static_cast<std::size_t>(depth), ']');
    JsonValue out;
    std::string error;
    EXPECT_FALSE(ParseJson(doc, &out, &error)) << "depth " << depth;
    // Same for objects.
    std::string obj;
    for (int i = 0; i < depth; ++i) obj += "{\"k\":";
    obj += "1";
    obj.append(static_cast<std::size_t>(depth), '}');
    EXPECT_FALSE(ParseJson(obj, &out, &error)) << "obj depth " << depth;
  }
}

TEST(JsonGetters, ErrorsNameTheField) {
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson("{\"n\":\"not a number\",\"big\":18446744073709551615}",
                        &root, &error));
  std::int64_t i64 = 0;
  EXPECT_FALSE(certkit::support::JsonGetI64(root, "n", &i64, &error));
  EXPECT_NE(error.find("'n'"), std::string::npos) << error;
  EXPECT_FALSE(certkit::support::JsonGetI64(root, "absent", &i64, &error));
  EXPECT_NE(error.find("'absent'"), std::string::npos) << error;
  // 2^64-1 overflows i64 but is a valid u64.
  EXPECT_FALSE(certkit::support::JsonGetI64(root, "big", &i64, &error));
  std::uint64_t u64 = 0;
  EXPECT_TRUE(certkit::support::JsonGetU64(root, "big", &u64, &error));
  EXPECT_EQ(~0ULL, u64);
}

}  // namespace
