// Tests for the command-line flag parser.
#include "support/flags.h"

#include <gtest/gtest.h>

namespace certkit::support {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, PositionalArguments) {
  auto p = Parse({"assess", "src/dir"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "assess");
  EXPECT_EQ(p.positional()[1], "src/dir");
}

TEST(FlagsTest, EqualsSyntax) {
  auto p = Parse({"--asil=C", "--max=10"});
  EXPECT_EQ(p.GetOr("asil", "D"), "C");
  EXPECT_EQ(p.GetInt("max", 0).value(), 10);
}

TEST(FlagsTest, SpaceSyntax) {
  auto p = Parse({"--asil", "B", "cmd"});
  EXPECT_EQ(p.GetOr("asil", "D"), "B");
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "cmd");
}

TEST(FlagsTest, BooleanFlag) {
  auto p = Parse({"--csv", "--verbose", "--quiet=false"});
  EXPECT_TRUE(p.GetBool("csv"));
  EXPECT_TRUE(p.GetBool("verbose"));
  EXPECT_FALSE(p.GetBool("quiet"));
  EXPECT_FALSE(p.GetBool("absent"));
}

TEST(FlagsTest, BooleanFollowedByFlag) {
  // --csv followed by another flag must not consume it as a value.
  auto p = Parse({"--csv", "--max=3"});
  EXPECT_TRUE(p.GetBool("csv"));
  EXPECT_EQ(p.GetInt("max", 0).value(), 3);
}

TEST(FlagsTest, MissingFlagUsesFallback) {
  auto p = Parse({"cmd"});
  EXPECT_EQ(p.GetOr("asil", "D"), "D");
  EXPECT_EQ(p.GetInt("max", 42).value(), 42);
  EXPECT_FALSE(p.Get("asil").has_value());
}

TEST(FlagsTest, MalformedIntIsNullopt) {
  auto p = Parse({"--max=ten"});
  EXPECT_FALSE(p.GetInt("max", 0).has_value());
}

TEST(FlagsTest, FlagNamesListed) {
  auto p = Parse({"--a=1", "--b"});
  const auto names = p.FlagNames();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace certkit::support
