// Correctness tests for the GEMM, convolution, and stencil kernel libraries.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "kernels/stencil.h"
#include "support/rng.h"

namespace kernels {
namespace {

using certkit::support::Xoshiro256;

std::vector<float> RandomVec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  return v;
}

void ExpectNear(const std::vector<float>& a, const std::vector<float>& b,
                float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeSweep, CublasSimMatchesNaive) {
  const auto [m, n, k] = GetParam();
  GemmShape shape{m, n, k};
  auto a = RandomVec(static_cast<std::size_t>(m) * k, 1);
  auto b = RandomVec(static_cast<std::size_t>(k) * n, 2);
  std::vector<float> ref(static_cast<std::size_t>(m) * n);
  std::vector<float> out(static_cast<std::size_t>(m) * n);
  cpublas::Sgemm(a.data(), b.data(), ref.data(), shape);
  cublas_sim::Sgemm(a.data(), b.data(), out.data(), shape);
  ExpectNear(out, ref, 1e-3f);
}

TEST_P(GemmShapeSweep, CutlassSimMatchesNaive) {
  const auto [m, n, k] = GetParam();
  GemmShape shape{m, n, k};
  auto a = RandomVec(static_cast<std::size_t>(m) * k, 3);
  auto b = RandomVec(static_cast<std::size_t>(k) * n, 4);
  std::vector<float> ref(static_cast<std::size_t>(m) * n);
  std::vector<float> out(static_cast<std::size_t>(m) * n);
  cpublas::Sgemm(a.data(), b.data(), ref.data(), shape);
  cutlass_sim::Sgemm<>(a.data(), b.data(), out.data(), shape);
  ExpectNear(out, ref, 1e-3f);
}

TEST_P(GemmShapeSweep, CutlassAlternateTilesMatchNaive) {
  const auto [m, n, k] = GetParam();
  GemmShape shape{m, n, k};
  auto a = RandomVec(static_cast<std::size_t>(m) * k, 5);
  auto b = RandomVec(static_cast<std::size_t>(k) * n, 6);
  std::vector<float> ref(static_cast<std::size_t>(m) * n);
  cpublas::Sgemm(a.data(), b.data(), ref.data(), shape);
  std::vector<float> out(static_cast<std::size_t>(m) * n);
  cutlass_sim::Sgemm<16, 128>(a.data(), b.data(), out.data(), shape);
  ExpectNear(out, ref, 1e-3f);
  cutlass_sim::Sgemm<128, 16>(a.data(), b.data(), out.data(), shape);
  ExpectNear(out, ref, 1e-3f);
  cutlass_sim::Sgemm<32, 32>(a.data(), b.data(), out.data(), shape);
  ExpectNear(out, ref, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 5, 3),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 31),
                      std::make_tuple(128, 32, 96),
                      std::make_tuple(33, 129, 65)));

struct ConvCase {
  ConvShape shape;
  const char* name;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, CudnnSimMatchesNaive) {
  const ConvShape s = GetParam().shape;
  auto in = RandomVec(s.InputSize(), 11);
  auto w = RandomVec(s.WeightSize(), 12);
  auto bias = RandomVec(static_cast<std::size_t>(s.out_channels), 13);
  std::vector<float> ref(s.OutputSize());
  std::vector<float> out(s.OutputSize());
  Conv2dNaive(in.data(), w.data(), bias.data(), ref.data(), s);
  cudnn_sim::Conv2d(in.data(), w.data(), bias.data(), out.data(), s);
  ExpectNear(out, ref, 1e-3f);
}

TEST_P(ConvSweep, IsaacSimMatchesNaive) {
  const ConvShape s = GetParam().shape;
  auto in = RandomVec(s.InputSize(), 14);
  auto w = RandomVec(s.WeightSize(), 15);
  auto bias = RandomVec(static_cast<std::size_t>(s.out_channels), 16);
  std::vector<float> ref(s.OutputSize());
  std::vector<float> out(s.OutputSize());
  Conv2dNaive(in.data(), w.data(), bias.data(), ref.data(), s);
  isaac_sim::Conv2d(in.data(), w.data(), bias.data(), out.data(), s);
  ExpectNear(out, ref, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(
        ConvCase{ConvShape{1, 1, 8, 8, 1, 3, 3, 1, 1}, "tiny"},
        ConvCase{ConvShape{1, 3, 16, 16, 8, 3, 3, 1, 1}, "rgb"},
        ConvCase{ConvShape{2, 4, 15, 17, 6, 3, 3, 1, 1}, "odd"},
        ConvCase{ConvShape{1, 8, 16, 16, 16, 3, 3, 2, 1}, "strided"},
        ConvCase{ConvShape{1, 4, 12, 12, 4, 1, 1, 1, 0}, "pointwise"},
        ConvCase{ConvShape{1, 2, 10, 10, 3, 5, 5, 1, 2}, "fivebyfive"}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.name;
    });

TEST(ConvTest, NoBiasIsZeroBias) {
  ConvShape s{1, 2, 8, 8, 3, 3, 3, 1, 1};
  auto in = RandomVec(s.InputSize(), 21);
  auto w = RandomVec(s.WeightSize(), 22);
  std::vector<float> zero_bias(static_cast<std::size_t>(s.out_channels),
                               0.0f);
  std::vector<float> with_null(s.OutputSize());
  std::vector<float> with_zero(s.OutputSize());
  cudnn_sim::Conv2d(in.data(), w.data(), nullptr, with_null.data(), s);
  cudnn_sim::Conv2d(in.data(), w.data(), zero_bias.data(), with_zero.data(),
                    s);
  ExpectNear(with_null, with_zero, 1e-6f);
}

TEST(IsaacTuningTest, CachesWinnerPerShape) {
  isaac_sim::ResetTuningCache();
  ConvShape s{1, 3, 12, 12, 4, 3, 3, 1, 1};
  EXPECT_EQ(isaac_sim::TunedConfigIndex(s), -1);
  auto in = RandomVec(s.InputSize(), 31);
  auto w = RandomVec(s.WeightSize(), 32);
  std::vector<float> out(s.OutputSize());
  isaac_sim::Conv2d(in.data(), w.data(), nullptr, out.data(), s);
  const int cfg = isaac_sim::TunedConfigIndex(s);
  EXPECT_GE(cfg, 0);
  EXPECT_LT(cfg, isaac_sim::CandidateCount());
  // Second call keeps the cached configuration.
  isaac_sim::Conv2d(in.data(), w.data(), nullptr, out.data(), s);
  EXPECT_EQ(isaac_sim::TunedConfigIndex(s), cfg);
}

// --- stencils ---

std::vector<float> NaiveStencil2D(const std::vector<float>& in, int h, int w,
                                  const stencil::StencilOptions& opt) {
  auto sample = [&](int y, int x) -> float {
    if (y >= 0 && y < h && x >= 0 && x < w) {
      return in[static_cast<std::size_t>(y) * w + x];
    }
    switch (opt.boundary) {
      case stencil::Boundary::kZero:
        return 0.0f;
      case stencil::Boundary::kPeriodic:
        return in[static_cast<std::size_t>(((y % h) + h) % h) * w +
                  (((x % w) + w) % w)];
      case stencil::Boundary::kReflect: {
        const int ry = y < 0 ? -y - 1 : (y >= h ? 2 * h - y - 1 : y);
        const int rx = x < 0 ? -x - 1 : (x >= w ? 2 * w - x - 1 : x);
        return in[static_cast<std::size_t>(ry) * w + rx];
      }
    }
    return 0.0f;
  };
  std::vector<float> out(in.size());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out[static_cast<std::size_t>(y) * w + x] =
          opt.center_weight * sample(y, x) +
          opt.neighbor_weight * (sample(y - 1, x) + sample(y + 1, x) +
                                 sample(y, x - 1) + sample(y, x + 1));
    }
  }
  return out;
}

class StencilBoundarySweep
    : public ::testing::TestWithParam<stencil::Boundary> {};

TEST_P(StencilBoundarySweep, Stencil2DMatchesNaive) {
  stencil::StencilOptions opt;
  opt.boundary = GetParam();
  const int h = 13, w = 17;
  auto in = RandomVec(static_cast<std::size_t>(h) * w, 41);
  std::vector<float> out(in.size());
  stencil::Stencil2D5Point(in.data(), out.data(), h, w, opt);
  auto ref = NaiveStencil2D(in, h, w, opt);
  ExpectNear(out, ref, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, StencilBoundarySweep,
                         ::testing::Values(stencil::Boundary::kZero,
                                           stencil::Boundary::kPeriodic,
                                           stencil::Boundary::kReflect));

TEST(StencilTest, Stencil3DConservesConstantFieldInterior) {
  // For a constant field and periodic boundary, out = (wc + 6*wn) * v
  // everywhere.
  stencil::StencilOptions opt;
  opt.boundary = stencil::Boundary::kPeriodic;
  const int d = 5, h = 6, w = 7;
  std::vector<float> in(static_cast<std::size_t>(d) * h * w, 2.0f);
  std::vector<float> out(in.size());
  stencil::Stencil3D7Point(in.data(), out.data(), d, h, w, opt);
  const float expected = (opt.center_weight + 6 * opt.neighbor_weight) * 2.0f;
  for (float v : out) ASSERT_NEAR(v, expected, 1e-5f);
}

TEST(StencilTest, CoverageAccumulates) {
  auto& unit = stencil::Stencil2DCoverage();
  unit.Reset();
  const int h = 8, w = 8;
  std::vector<float> in(64, 1.0f), out(64);
  stencil::StencilOptions opt;  // zero boundary only
  stencil::Stencil2D5Point(in.data(), out.data(), h, w, opt);
  // Statement coverage is partial: periodic/reflect statements never ran.
  EXPECT_GT(unit.StatementCoverage(), 0.0);
  EXPECT_LT(unit.StatementCoverage(), 1.0);
  // Running the other boundary modes raises coverage.
  opt.boundary = stencil::Boundary::kPeriodic;
  stencil::Stencil2D5Point(in.data(), out.data(), h, w, opt);
  opt.boundary = stencil::Boundary::kReflect;
  stencil::Stencil2D5Point(in.data(), out.data(), h, w, opt);
  EXPECT_DOUBLE_EQ(unit.StatementCoverage(), 1.0);
}

}  // namespace
}  // namespace kernels
