// Determinism of the isaac_sim auto-tuner: the tile configuration chosen
// for a shape must be a pure function of (shape, sm_count) — no wall clock,
// no dependence on call count, evaluation order, or how many host threads
// the device runs on. This is what lets the campaign engine reset the
// tuning cache per candidate and still evaluate reproducibly at any --jobs.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/gpusim.h"
#include "kernels/conv.h"

namespace kernels {
namespace {

ConvShape SmallShape() {
  ConvShape s;
  s.batch = 1;
  s.in_channels = 8;
  s.in_h = 16;
  s.in_w = 16;
  s.out_channels = 16;
  s.kernel_h = 3;
  s.kernel_w = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

TEST(TunerDeterminismTest, SameConfigAcrossRepeatedColdTunes) {
  const ConvShape s = SmallShape();
  std::vector<float> input(s.InputSize(), 0.25f);
  std::vector<float> weights(s.WeightSize(), 0.5f);
  std::vector<float> bias(static_cast<std::size_t>(s.out_channels), 0.0f);
  std::vector<float> output(s.OutputSize(), 0.0f);

  isaac_sim::ResetTuningCache();
  isaac_sim::Conv2d(input.data(), weights.data(), bias.data(), output.data(),
                    s);
  const int first = isaac_sim::TunedConfigIndex(s);
  ASSERT_GE(first, 0);
  ASSERT_LT(first, isaac_sim::CandidateCount());

  // 100 cold re-tunes of the same shape: the pick never wavers — there is
  // no measurement in the loop, so nothing to be lucky about.
  for (int i = 0; i < 100; ++i) {
    isaac_sim::ResetTuningCache();
    isaac_sim::Conv2d(input.data(), weights.data(), bias.data(),
                      output.data(), s);
    ASSERT_EQ(isaac_sim::TunedConfigIndex(s), first) << "re-tune " << i;
  }
}

TEST(TunerDeterminismTest, SameConfigForAnyDevicePoolWidth) {
  const ConvShape s = SmallShape();
  std::vector<float> input(s.InputSize(), 0.25f);
  std::vector<float> weights(s.WeightSize(), 0.5f);
  std::vector<float> bias(static_cast<std::size_t>(s.out_channels), 0.0f);
  std::vector<float> out1(s.OutputSize(), 0.0f);
  std::vector<float> out4(s.OutputSize(), 0.0f);

  // Two devices with very different host parallelism (the analogue of
  // --jobs 1 vs --jobs 4): the tuner consults only sm_count, so the picks
  // and the outputs must coincide exactly.
  gpusim::Device d1(1);
  gpusim::Device d4(4);
  isaac_sim::ResetTuningCache();
  isaac_sim::Conv2d(input.data(), weights.data(), bias.data(), out1.data(),
                    s, d1);
  const int pick1 = isaac_sim::TunedConfigIndex(s);
  isaac_sim::ResetTuningCache();
  isaac_sim::Conv2d(input.data(), weights.data(), bias.data(), out4.data(),
                    s, d4);
  const int pick4 = isaac_sim::TunedConfigIndex(s);
  EXPECT_EQ(pick1, pick4);
  EXPECT_EQ(out1, out4);
}

TEST(TunerDeterminismTest, PickIsArgminOfModeledCostWithLowestIndexTie) {
  const ConvShape s = SmallShape();
  for (const unsigned sms : {1u, 4u, 16u, 64u}) {
    const int pick = isaac_sim::PickConfig(s, sms);
    const std::uint64_t best = isaac_sim::ModeledConfigCost(s, pick, sms);
    for (int c = 0; c < isaac_sim::CandidateCount(); ++c) {
      const std::uint64_t cost = isaac_sim::ModeledConfigCost(s, c, sms);
      ASSERT_GE(cost, best) << "config " << c << " sms " << sms;
      // Lowest-index tie-break: nothing cheaper OR EQUAL before the pick.
      if (c < pick) ASSERT_GT(cost, best) << "config " << c;
    }
  }
}

TEST(TunerDeterminismTest, BatchShapesAreTunedIndependently) {
  ConvShape s1 = SmallShape();
  ConvShape s8 = SmallShape();
  s8.batch = 8;
  std::vector<float> input(s8.InputSize(), 0.25f);
  std::vector<float> weights(s8.WeightSize(), 0.5f);
  std::vector<float> bias(static_cast<std::size_t>(s8.out_channels), 0.0f);
  std::vector<float> output(s8.OutputSize(), 0.0f);

  isaac_sim::ResetTuningCache();
  EXPECT_EQ(isaac_sim::TunedConfigIndex(s1), -1);
  isaac_sim::Conv2d(input.data(), weights.data(), bias.data(), output.data(),
                    s8);
  // Tuning the 8-batch shape must not populate the batch-1 entry.
  EXPECT_EQ(isaac_sim::TunedConfigIndex(s1), -1);
  EXPECT_EQ(isaac_sim::TunedConfigIndex(s8), isaac_sim::PickConfig(
                                                 s8, 16));
}

}  // namespace
}  // namespace kernels
