// Exhaustive small-shape GEMM differencing (ISSUE 10 satellite).
//
// Every GEMM variant in the tree — the textbook cpublas reference, the
// cublas_sim 2×2 register-blocked tile (whose odd-m/odd-n remainder rows had
// no dedicated coverage), every cutlass_sim tile instantiation, and the new
// micro kernel under every candidate block config and pool width — must be
// BIT-IDENTICAL on every shape with m, n, k in [1, 9].
//
// The contract that makes bit-for-bit (not epsilon) the right check: every
// implementation accumulates each output element as the same K-ordered
// mul-then-add sequence; register tiling spans M and N only. PR 7's stream
// digests already showed that any FP reassociation is observable, so this
// test pins the absence of reassociation at the kernel layer, including all
// tail paths (tile remainders, fringe rectangles, stripe splits).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kernels/gemm.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace kernels {
namespace {

using certkit::support::ThreadPool;
using certkit::support::Xoshiro256;

std::vector<float> RandomVec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  return v;
}

void ExpectBitIdentical(const std::vector<float>& got,
                        const std::vector<float>& ref, GemmShape s,
                        const char* variant) {
  ASSERT_EQ(got.size(), ref.size());
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                           ref.size() * sizeof(float)))
      << variant << " diverges at m=" << s.m << " n=" << s.n << " k=" << s.k;
}

TEST(GemmExhaustiveProperty, AllVariantsBitIdenticalOnSmallShapes) {
  ThreadPool pool(2);
  for (int m = 1; m <= 9; ++m) {
    for (int n = 1; n <= 9; ++n) {
      for (int k = 1; k <= 9; ++k) {
        const GemmShape s{m, n, k};
        const std::uint64_t seed =
            static_cast<std::uint64_t>((m * 100 + n * 10 + k));
        const auto a = RandomVec(static_cast<std::size_t>(m) * k, seed);
        const auto b = RandomVec(static_cast<std::size_t>(k) * n, seed + 7);
        std::vector<float> ref(static_cast<std::size_t>(m) * n);
        cpublas::Sgemm(a.data(), b.data(), ref.data(), s);

        std::vector<float> out(ref.size());

        cublas_sim::Sgemm(a.data(), b.data(), out.data(), s);
        ExpectBitIdentical(out, ref, s, "cublas_sim (64x64 tail paths)");

        cutlass_sim::Sgemm<>(a.data(), b.data(), out.data(), s);
        ExpectBitIdentical(out, ref, s, "cutlass_sim<64,64>");
        cutlass_sim::Sgemm<2, 2>(a.data(), b.data(), out.data(), s);
        ExpectBitIdentical(out, ref, s, "cutlass_sim<2,2>");
        cutlass_sim::Sgemm<3, 5>(a.data(), b.data(), out.data(), s);
        ExpectBitIdentical(out, ref, s, "cutlass_sim<3,5>");

        micro::Sgemm(a.data(), b.data(), out.data(), s);
        ExpectBitIdentical(out, ref, s, "micro (model-picked, inline)");
        micro::Sgemm(a.data(), b.data(), out.data(), s, &pool);
        ExpectBitIdentical(out, ref, s, "micro (model-picked, 2+1 stripes)");
        for (int ci = 0; ci < micro::CandidateCount(); ++ci) {
          micro::SgemmWithConfig(a.data(), b.data(), out.data(), s,
                                 micro::Candidate(ci));
          ExpectBitIdentical(out, ref, s, "micro (forced candidate)");
        }
      }
    }
  }
}

TEST(GemmExhaustiveProperty, Int8KernelExactOnSmallShapes) {
  for (int m = 1; m <= 9; ++m) {
    for (int n = 1; n <= 9; ++n) {
      for (int k = 1; k <= 9; ++k) {
        const GemmShape s{m, n, k};
        Xoshiro256 rng(static_cast<std::uint64_t>(m * 961 + n * 31 + k));
        std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k);
        std::vector<std::int8_t> b(static_cast<std::size_t>(k) * n);
        for (auto& x : a) {
          x = static_cast<std::int8_t>(
              static_cast<int>(rng.UniformDouble(-128.0, 128.0)));
        }
        for (auto& x : b) {
          x = static_cast<std::int8_t>(
              static_cast<int>(rng.UniformDouble(-128.0, 128.0)));
        }
        std::vector<std::int32_t> ref(static_cast<std::size_t>(m) * n, 0);
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (int kk = 0; kk < k; ++kk) {
              acc += static_cast<std::int32_t>(
                         a[static_cast<std::size_t>(i) * k + kk]) *
                     static_cast<std::int32_t>(
                         b[static_cast<std::size_t>(kk) * n + j]);
            }
            ref[static_cast<std::size_t>(i) * n + j] = acc;
          }
        }
        std::vector<std::int32_t> out(ref.size());
        micro::GemmS8S32(a.data(), b.data(), out.data(), s);
        ASSERT_EQ(out, ref) << "m=" << m << " n=" << n << " k=" << k;
        for (int ci = 0; ci < micro::CandidateCount(); ++ci) {
          micro::GemmS8S32WithConfig(a.data(), b.data(), out.data(), s,
                                     micro::Candidate(ci));
          ASSERT_EQ(out, ref)
              << "candidate " << ci << " m=" << m << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

// The block pick is a pure function of (shape, stripes): re-picking must
// never waver, and every pick must come from the candidate table.
TEST(GemmExhaustiveProperty, BlockPickIsDeterministic) {
  for (int m = 1; m <= 9; m += 2) {
    for (int n = 1; n <= 9; n += 2) {
      for (int k = 1; k <= 9; k += 2) {
        for (int stripes : {1, 2, 4}) {
          const GemmShape s{m * 16, n * 16, k * 16};
          const micro::BlockConfig first = micro::PickBlockConfig(s, stripes);
          for (int rep = 0; rep < 10; ++rep) {
            EXPECT_EQ(first, micro::PickBlockConfig(s, stripes));
          }
          bool in_table = false;
          for (int ci = 0; ci < micro::CandidateCount(); ++ci) {
            if (micro::Candidate(ci) == first) in_table = true;
          }
          EXPECT_TRUE(in_table);
        }
      }
    }
  }
}

}  // namespace
}  // namespace kernels
