// Tests for the report engine: table rendering and domain renderers.
#include <gtest/gtest.h>

#include "report/renderers.h"
#include "report/table.h"
#include "rules/assessor.h"
#include "support/check.h"
#include "support/strings.h"

namespace certkit::report {
namespace {

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"Name", "N"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"bb", "100"});
  const std::string out = t.ToAscii();
  EXPECT_NE(out.find("| Name  | N   |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1   |"), std::string::npos);
  EXPECT_NE(out.find("| bb    | 100 |"), std::string::npos);
  // Frame lines above header, below header, below body.
  std::size_t seps = 0;
  for (const auto& line : support::Split(out, '\n')) {
    if (!line.empty() && line.front() == '+') ++seps;
  }
  EXPECT_EQ(seps, 3u);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"with\"quote", "multi\nline"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TableTest, MarkdownHasSeparatorRow) {
  Table t({"x", "y"});
  t.AddRow({"1", "2"});
  const std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
  EXPECT_NE(md.find("| --- | --- |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(TableTest, WrongCellCountIsContractViolation) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), support::ContractViolation);
}

TEST(TableTest, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), support::ContractViolation);
}

TEST(PercentTest, Formatting) {
  EXPECT_EQ(Percent(0.831), "83.1%");
  EXPECT_EQ(Percent(1.0), "100.0%");
  EXPECT_EQ(Percent(0.0), "0.0%");
}

TEST(RenderersTest, TechniqueAssessmentRendersAllRows) {
  const auto& table = rules::CodingGuidelinesTable();
  rules::TableAssessment assessment;
  assessment.table_id = table.id;
  for (const auto& tech : table.techniques) {
    assessment.assessments.push_back(
        {tech.id, rules::Verdict::kPartial, "evidence for " + tech.id, 0});
  }
  const std::string out = RenderTechniqueAssessment(table, assessment);
  for (const auto& tech : table.techniques) {
    EXPECT_NE(out.find(tech.name), std::string::npos) << tech.name;
  }
  EXPECT_NE(out.find("partial"), std::string::npos);
  EXPECT_NE(out.find("++"), std::string::npos);
}

TEST(RenderersTest, TechniqueAssessmentSizeMismatchRejected) {
  const auto& table = rules::CodingGuidelinesTable();
  rules::TableAssessment wrong;  // empty
  EXPECT_THROW(RenderTechniqueAssessment(table, wrong),
               support::ContractViolation);
}

TEST(RenderersTest, ModuleComplexityIncludesTotals) {
  metrics::ModuleMetrics m;
  m.name = "demo";
  m.loc = 1000;
  m.nloc = 700;
  m.file_count = 3;
  m.function_count = 40;
  m.cc_low = 30;
  m.cc_moderate = 7;
  m.cc_risky = 2;
  m.cc_unstable = 1;
  m.max_cc = 66;
  m.mean_cc = 6.5;
  const std::string out = RenderModuleComplexity({m});
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);  // CC>10 = 7+2+1
}

TEST(RenderersTest, CoverageTableWithAndWithoutMcdc) {
  std::vector<cov::CoverageRow> rows = {
      {"file_a.cc", 0.8, 0.7, 0.6},
      {"file_b.cc", 1.0, 1.0, 1.0},
  };
  const std::string with = RenderCoverage(rows, true);
  EXPECT_NE(with.find("MC/DC"), std::string::npos);
  EXPECT_NE(with.find("AVERAGE"), std::string::npos);
  EXPECT_NE(with.find("90.0%"), std::string::npos);  // avg statement
  const std::string without = RenderCoverage(rows, false);
  EXPECT_EQ(without.find("MC/DC"), std::string::npos);
}

}  // namespace
}  // namespace certkit::report
