// Unit tests for the certkit lexer.
#include "lex/lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace certkit::lex {
namespace {

LexedFile MustLex(std::string_view src, const LexOptions& opts = {}) {
  auto r = Lex("test.cc", src, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<std::string> Texts(const LexedFile& f) {
  std::vector<std::string> out;
  for (const auto& t : f.tokens) out.push_back(t.str());
  return out;
}

TEST(LexerTest, EmptySource) {
  LexedFile f = MustLex("");
  EXPECT_TRUE(f.tokens.empty());
  EXPECT_EQ(f.lines.total, 0);
}

TEST(LexerTest, SimpleStatement) {
  LexedFile f = MustLex("int x = 42;");
  ASSERT_EQ(f.tokens.size(), 5u);
  EXPECT_EQ(f.tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(f.tokens[1].text, "x");
  EXPECT_EQ(f.tokens[2].text, "=");
  EXPECT_EQ(f.tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(f.tokens[3].text, "42");
  EXPECT_EQ(f.tokens[4].text, ";");
}

TEST(LexerTest, LineAndColumnTracking) {
  LexedFile f = MustLex("int a;\n  double b;\n");
  ASSERT_EQ(f.tokens.size(), 6u);
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[0].column, 1);
  EXPECT_EQ(f.tokens[3].line, 2);
  EXPECT_EQ(f.tokens[3].column, 3);  // after two spaces
}

TEST(LexerTest, LineComment) {
  LexedFile f = MustLex("int a; // trailing comment\n// full line\nint b;");
  EXPECT_EQ(Texts(f), (std::vector<std::string>{"int", "a", ";", "int", "b",
                                                ";"}));
  EXPECT_EQ(f.comment_count, 2);
  EXPECT_EQ(f.lines.comment_only, 1);  // line 2 only
  EXPECT_EQ(f.lines.code, 2);
}

TEST(LexerTest, BlockCommentSpanningLines) {
  LexedFile f = MustLex("int a; /* one\n two\n three */ int b;");
  EXPECT_EQ(Texts(f), (std::vector<std::string>{"int", "a", ";", "int", "b",
                                                ";"}));
  EXPECT_EQ(f.comment_count, 1);
  EXPECT_EQ(f.lines.comment_only, 1);  // middle line is comment-only
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  auto r = Lex("t.cc", "int a; /* oops");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), support::StatusCode::kParseError);
}

TEST(LexerTest, StringLiterals) {
  LexedFile f = MustLex(R"(const char* s = "hi \"there\"";)");
  ASSERT_GE(f.tokens.size(), 1u);
  bool found = false;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "\"hi \\\"there\\\"\"");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, RawStringLiteral) {
  LexedFile f = MustLex("auto s = R\"x(a \" b )\" c)x\";");
  bool found = false;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "R\"x(a \" b )\" c)x\"");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, EncodingPrefixedStrings) {
  LexedFile f = MustLex("auto a = L\"w\"; auto b = u8\"u\"; auto c = U'c';");
  int strings = 0, chars = 0;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kString) ++strings;
    if (t.kind == TokenKind::kChar) ++chars;
  }
  EXPECT_EQ(strings, 2);
  EXPECT_EQ(chars, 1);
}

TEST(LexerTest, CharLiteralWithEscape) {
  LexedFile f = MustLex(R"(char c = '\n';)");
  bool found = false;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kChar) {
      EXPECT_EQ(t.text, "'\\n'");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, NumberFormats) {
  LexedFile f = MustLex(
      "auto a = 0x1Fu; auto b = 0b1010; auto c = 1'000'000; auto d = 3.5e-2f; "
      "auto e = .5; auto g = 0x1.8p3;");
  std::vector<std::string> nums;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kNumber) nums.push_back(t.str());
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"0x1Fu", "0b1010", "1'000'000",
                                            "3.5e-2f", ".5", "0x1.8p3"}));
}

TEST(LexerTest, MaximalMunchOperators) {
  LexedFile f = MustLex("a <<= b; c ->* d; e <=> g; h >>= i; j ... k;");
  std::vector<std::string> ops;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kPunct && t.text != ";") ops.push_back(t.str());
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"<<=", "->*", "<=>", ">>=", "..."}));
}

TEST(LexerTest, ScopeAndArrow) {
  LexedFile f = MustLex("a::b->c;");
  EXPECT_EQ(Texts(f), (std::vector<std::string>{"a", "::", "b", "->", "c",
                                                ";"}));
}

TEST(LexerTest, PreprocessorDirectivesSeparated) {
  LexedFile f = MustLex("#include <vector>\n#define N 4\nint x = N;");
  ASSERT_EQ(f.directives.size(), 2u);
  EXPECT_EQ(f.directives[0].name, "include");
  EXPECT_EQ(f.directives[1].name, "define");
  ASSERT_EQ(f.directives[1].tokens.size(), 2u);
  EXPECT_EQ(f.directives[1].tokens[0].text, "N");
  // Main token stream excludes directive tokens.
  EXPECT_EQ(Texts(f), (std::vector<std::string>{"int", "x", "=", "N", ";"}));
  EXPECT_EQ(f.lines.preprocessor, 2);
}

TEST(LexerTest, DirectiveWithContinuation) {
  LexedFile f = MustLex("#define MAX(a, b) \\\n  ((a) > (b) ? (a) : (b))\nint x;");
  ASSERT_EQ(f.directives.size(), 1u);
  EXPECT_EQ(f.directives[0].name, "define");
  EXPECT_GT(f.directives[0].tokens.size(), 5u);
  EXPECT_EQ(Texts(f), (std::vector<std::string>{"int", "x", ";"}));
  EXPECT_EQ(f.lines.preprocessor, 2);  // both physical lines
}

TEST(LexerTest, SpliceBetweenTokens) {
  LexedFile f = MustLex("int a\\\n= 3;");
  EXPECT_EQ(Texts(f), (std::vector<std::string>{"int", "a", "=", "3", ";"}));
}

TEST(LexerTest, CudaKeywordsInCudaDialect) {
  LexedFile f = MustLex("__global__ void k() {}");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(f.tokens[0].text, "__global__");
}

TEST(LexerTest, CudaKeywordsDisabled) {
  LexOptions opts;
  opts.cuda_dialect = false;
  LexedFile f = MustLex("__global__ void k() {}", opts);
  EXPECT_EQ(f.tokens[0].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, LineStatsClassification) {
  const char* src =
      "// header comment\n"
      "\n"
      "#include <a>\n"
      "int main() {\n"
      "  return 0;  // inline\n"
      "}\n";
  LexedFile f = MustLex(src);
  EXPECT_EQ(f.lines.total, 7);  // trailing newline makes an empty 7th line
  EXPECT_EQ(f.lines.comment_only, 1);
  EXPECT_EQ(f.lines.preprocessor, 1);
  EXPECT_EQ(f.lines.code, 3);
  EXPECT_EQ(f.lines.blank, 2);
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto r = Lex("t.cc", "const char* s = \"abc\nint x;");
  EXPECT_FALSE(r.ok());
}

TEST(LexerTest, DigraphFreePunctuation) {
  LexedFile f = MustLex("x = a % b ^ c | d;");
  std::vector<std::string> got = Texts(f);
  EXPECT_EQ(got, (std::vector<std::string>{"x", "=", "a", "%", "b", "^", "c",
                                           "|", "d", ";"}));
}

// Property-style sweep: lexing arbitrary operator soup never loses track of
// line numbers.
class LexerLineSweep : public ::testing::TestWithParam<int> {};

TEST_P(LexerLineSweep, TokenLinesMonotonic) {
  const int lines = GetParam();
  std::string src;
  for (int i = 0; i < lines; ++i) {
    src += "int v" + std::to_string(i) + " = " + std::to_string(i) + ";\n";
  }
  LexedFile f = MustLex(src);
  EXPECT_EQ(f.lines.total, lines + (lines > 0 ? 1 : 0));
  EXPECT_EQ(f.lines.code, lines);
  int last = 0;
  for (const auto& t : f.tokens) {
    EXPECT_GE(t.line, last);
    last = t.line;
  }
  EXPECT_EQ(f.tokens.size(), static_cast<std::size_t>(lines) * 5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LexerLineSweep,
                         ::testing::Values(0, 1, 2, 10, 100, 1000));

}  // namespace
}  // namespace certkit::lex
