// Lifetime regression tests for the zero-copy token representation.
//
// Token::text is a std::string_view into LexedFile::buffer (or, for spliced
// lexemes, into LexedFile::owned_lexemes). Both stores are shared_ptr-owned,
// so every copy or move of a LexedFile shares them and the views stay valid
// for the lifetime of ANY LexedFile (or buffer reference) derived from the
// original — including after the original is destroyed. These tests pin
// that contract; they are what makes handing tokens around by value safe.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lex/lexer.h"

namespace certkit::lex {
namespace {

LexedFile MustLex(std::string_view source) {
  LexOptions options;
  options.keep_comments = true;
  auto lexed = Lex("lifetime.cc", source, options);
  EXPECT_TRUE(lexed.ok()) << lexed.status().ToString();
  return std::move(lexed).value();
}

TEST(TokenLifetimeTest, ViewsPointIntoSharedBuffer) {
  const LexedFile lexed = MustLex("int answer = 42;");
  ASSERT_NE(lexed.buffer, nullptr);
  for (const Token& t : lexed.tokens) {
    const char* base = lexed.buffer->data();
    EXPECT_GE(t.text.data(), base);
    EXPECT_LE(t.text.data() + t.text.size(), base + lexed.buffer->size());
  }
  EXPECT_EQ(lexed.source(), "int answer = 42;");
}

TEST(TokenLifetimeTest, CopySurvivesOriginalDestruction) {
  LexedFile copy;
  {
    LexedFile original = MustLex("float pi = 3.14f; // note\n");
    copy = original;
  }  // original destroyed; buffer kept alive by copy's shared_ptr
  ASSERT_GE(copy.tokens.size(), 5u);
  EXPECT_EQ(copy.tokens[0].text, "float");
  EXPECT_EQ(copy.tokens[1].text, "pi");
  EXPECT_EQ(copy.tokens[3].text, "3.14f");
  ASSERT_EQ(copy.comments.size(), 1u);
  EXPECT_EQ(copy.comments[0].text, "// note");
}

TEST(TokenLifetimeTest, MoveSurvivesAndOriginalIsEmpty) {
  LexedFile original = MustLex("return x + y;");
  const std::string first(original.tokens[0].text);
  LexedFile moved = std::move(original);
  EXPECT_EQ(moved.tokens[0].text, first);
  EXPECT_EQ(moved.tokens[0].str(), "return");
}

TEST(TokenLifetimeTest, SplicedLexemesLiveInOwnedStorage) {
  // A line continuation inside a string literal forces an owned (spliced)
  // lexeme; it must live in owned_lexemes, not the buffer, and must survive
  // copies just the same.
  LexedFile copy;
  {
    LexedFile original = MustLex("const char* s = \"ab\\\ncd\";");
    ASSERT_NE(original.owned_lexemes, nullptr);
    EXPECT_FALSE(original.owned_lexemes->empty());
    copy = original;
  }
  bool found = false;
  for (const Token& t : copy.tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "\"abcd\"");  // splice removed, quotes kept
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TokenLifetimeTest, StrReturnsOwnedCopy) {
  std::string detached;
  {
    const LexedFile lexed = MustLex("identifier_one");
    detached = lexed.tokens[0].str();
  }  // everything destroyed; detached must be an independent string
  EXPECT_EQ(detached, "identifier_one");
}

TEST(TokenLifetimeTest, VectorGrowthDoesNotInvalidateViews) {
  // Views point into the heap buffer, not into the LexedFile object, so
  // relocating LexedFiles inside a growing vector must not invalidate them.
  std::vector<LexedFile> files;
  for (int i = 0; i < 64; ++i) {
    files.push_back(MustLex("int v" + std::to_string(i) + ";"));
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(files[i].tokens.size(), 3u);
    EXPECT_EQ(files[i].tokens[1].text, "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace certkit::lex
