// Differential test: the table-driven zero-copy lexer against the preserved
// pre-DFA reference scanner (tests/lex/reference_lexer.cpp). The production
// lexer must be observably identical — same tokens (kind, text, line,
// column), same directives, comments, line statistics, and the same error
// status text on malformed input — across handwritten adversarial cases,
// the generated Apollo-like corpus, and this repository's own sources.
#include <string>
#include <string_view>
#include <vector>

#include "corpus/generator.h"
#include "gtest/gtest.h"
#include "lex/lexer.h"
#include "support/io.h"
#include "tests/lex/reference_lexer.h"

namespace certkit {
namespace {

using lex::LexOptions;
using lex::reference::ReferenceLex;

// Lexes `source` through both implementations and asserts observable
// equivalence. Returns after the first field-level mismatch (the EXPECTs
// name the offending index) so a systematic divergence stays readable.
void ExpectSameLex(const std::string& tag, std::string_view source,
                   const LexOptions& options) {
  SCOPED_TRACE(tag);
  auto got = lex::Lex("diff.cc", source, options);
  auto want = ReferenceLex("diff.cc", source, options);
  ASSERT_EQ(got.ok(), want.ok()) << "status divergence: production="
                                 << got.status().ToString()
                                 << " reference=" << want.status().ToString();
  if (!got.ok()) {
    EXPECT_EQ(got.status().ToString(), want.status().ToString());
    return;
  }
  const lex::LexedFile& g = got.value();
  const auto& w = want.value();
  ASSERT_EQ(g.tokens.size(), w.tokens.size());
  for (std::size_t i = 0; i < g.tokens.size(); ++i) {
    EXPECT_EQ(g.tokens[i].kind, w.tokens[i].kind) << "token " << i;
    EXPECT_EQ(g.tokens[i].text, w.tokens[i].text) << "token " << i;
    EXPECT_EQ(g.tokens[i].line, w.tokens[i].line) << "token " << i;
    EXPECT_EQ(g.tokens[i].column, w.tokens[i].column) << "token " << i;
  }
  ASSERT_EQ(g.directives.size(), w.directives.size());
  for (std::size_t d = 0; d < g.directives.size(); ++d) {
    EXPECT_EQ(g.directives[d].name, w.directives[d].name) << "directive " << d;
    EXPECT_EQ(g.directives[d].line, w.directives[d].line) << "directive " << d;
    ASSERT_EQ(g.directives[d].tokens.size(), w.directives[d].tokens.size())
        << "directive " << d;
    for (std::size_t i = 0; i < g.directives[d].tokens.size(); ++i) {
      EXPECT_EQ(g.directives[d].tokens[i].kind, w.directives[d].tokens[i].kind)
          << "directive " << d << " token " << i;
      EXPECT_EQ(g.directives[d].tokens[i].text, w.directives[d].tokens[i].text)
          << "directive " << d << " token " << i;
      EXPECT_EQ(g.directives[d].tokens[i].line, w.directives[d].tokens[i].line)
          << "directive " << d << " token " << i;
      EXPECT_EQ(g.directives[d].tokens[i].column,
                w.directives[d].tokens[i].column)
          << "directive " << d << " token " << i;
    }
  }
  ASSERT_EQ(g.comments.size(), w.comments.size());
  for (std::size_t i = 0; i < g.comments.size(); ++i) {
    EXPECT_EQ(g.comments[i].text, w.comments[i].text) << "comment " << i;
    EXPECT_EQ(g.comments[i].line, w.comments[i].line) << "comment " << i;
  }
  EXPECT_EQ(g.lines.total, w.lines.total);
  EXPECT_EQ(g.lines.blank, w.lines.blank);
  EXPECT_EQ(g.lines.comment_only, w.lines.comment_only);
  EXPECT_EQ(g.lines.code, w.lines.code);
  EXPECT_EQ(g.lines.preprocessor, w.lines.preprocessor);
  EXPECT_EQ(g.comment_count, w.comment_count);
}

void ExpectSameLexAllModes(const std::string& tag, std::string_view source) {
  LexOptions options;
  options.keep_comments = true;
  ExpectSameLex(tag + "/keep_comments", source, options);
  options.keep_comments = false;
  ExpectSameLex(tag + "/drop_comments", source, options);
  options.cuda_dialect = false;
  ExpectSameLex(tag + "/no_cuda", source, options);
}

TEST(LexerDifferentialTest, AdversarialSnippets) {
  const struct {
    const char* tag;
    const char* source;
  } kCases[] = {
      {"empty", ""},
      {"only_newlines", "\n\n\n"},
      {"crlf_lines", "int a;\r\nint b;\r\n"},
      {"cr_only", "int a;\rint b;"},
      {"identifiers", "foo _bar Baz$ __x a1b2"},
      {"keywords", "if while template __global__ restrict _Static_assert"},
      {"numbers",
       "42 0x1F 0b1010 1'000'000 3.5f .5 1e10 1e+10 1E-3 0x1p3 0x1.8p-2 "
       "1ull 0777 1.f 1. 1el 0x. 3_z 1z 0xABCz"},
      {"adjacent_number_suffix_soup", "1e 1e+ 0x 0b 1..2 1.e 1ee 0x1e+2"},
      {"strings",
       "\"plain\" \"esc\\\"aped\" u8\"pre\" L\"wide\" \"adjacent\"\"two\""},
      {"raw_strings",
       "R\"(simple)\" R\"ab(with )\" inside)ab\" u8R\"(u8 raw)\" LR\"()\""},
      {"char_literals", "'a' '\\n' '\\\\' L'x' u'\\u1234' '\\''"},
      {"punct_maximal_munch",
       "<<=<=><< <= >>=>> >= ... .* ->* -> -- -= :: ++ += == != && &= || |= "
       "*= /= %= ^= ## a<b>c"},
      {"spliced_identifier", "ab\\\ncd = 1;"},
      {"spliced_string", "\"ab\\\ncd\""},
      {"spliced_line_comment", "// comment continues\\\nonto next line\nx;"},
      {"spliced_directive", "#define FOO \\\n  1\nint x = FOO;"},
      {"block_comment_multiline", "/* line1\n line2\n line3 */ int x;"},
      {"comment_flavors",
       "// line\n/* block */ code(); /* tail\n spans */ // end\n"},
      {"directives",
       "#include <vector>\n#include \"local.h\"\n#pragma once\n#if FOO\n"
       "#else\n#endif\n# indented\n#\n"},
      {"hash_not_directive", "int a = x ## y;"},
      {"dot_digit", ".5f + x.y + ...z"},
      {"trailing_backslash_eof", "int x;\\"},
      {"trailing_splice_eof", "int x;\\\n"},
      {"utf8_in_string", "\"\xE2\x82\xAC euro\" ident;"},
      {"unterminated_string", "\"never ends"},
      {"unterminated_string_nl", "\"stops\nhere\""},
      {"unterminated_char", "'a"},
      {"unterminated_block_comment", "/* never ends"},
      {"unterminated_raw_string", "R\"(never ends"},
      {"malformed_raw_delimiter", "R\"toolongdelimiterxxxxxx(x)\""},
      {"raw_delimiter_with_space", "R\" (x)\""},
      {"lone_backslash", "a \\ b"},
      {"null_byte_free_binary_punct", "@ $ ` a"},
      {"deep_nesting", "((((((((((x))))))))))"},
      {"long_line_comment_only", "//"},
      {"block_comment_only", "/**/"},
      {"comment_then_eof_no_newline", "int x; // tail"},
  };
  for (const auto& c : kCases) ExpectSameLexAllModes(c.tag, c.source);
}

// A synthetic stress blob mixing every construct with splices and CRLF.
TEST(LexerDifferentialTest, MixedStressBlob) {
  std::string blob;
  for (int i = 0; i < 50; ++i) {
    blob += "#define M" + std::to_string(i) + "(x) ((x) + " +
            std::to_string(i) + ")\r\n";
    blob += "// gen " + std::to_string(i) + "\\\n spliced tail\n";
    blob += "static const char* s" + std::to_string(i) + " = \"v\\\n" +
            std::to_string(i) + "\";\n";
    blob += "float f" + std::to_string(i) + " = " + std::to_string(i) +
            ".5e-2f; /* b" + std::to_string(i) + " */\n";
  }
  ExpectSameLexAllModes("stress_blob", blob);
}

// The generated Apollo-like corpus: every file of every module (C++ and
// CUDA-dialect alike) must lex identically under both implementations.
TEST(LexerDifferentialTest, GeneratedCorpus) {
  const auto corpus =
      corpus::GenerateCorpus(corpus::ApolloLikeSpec(), 26262);
  LexOptions options;
  options.keep_comments = true;
  std::size_t files = 0;
  for (const auto& mod : corpus) {
    for (const auto& f : mod.files) {
      ExpectSameLex(f.path, f.content, options);
      if (HasFatalFailure()) return;  // one full report is enough
      ++files;
    }
  }
  EXPECT_GT(files, 50u);
}

// This repository's own sources — real-world C++ the corpus generator does
// not produce (templates, lambdas, raw strings in tests, CUDA headers).
TEST(LexerDifferentialTest, OwnSourceTree) {
  const std::string root = CERTKIT_SOURCE_DIR "/src";
  auto files = support::ListFiles(
      root, {".cc", ".cpp", ".cxx", ".h", ".hpp", ".cu", ".cuh"});
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  ASSERT_GT(files.value().size(), 20u);
  LexOptions options;
  options.keep_comments = true;
  for (const auto& path : files.value()) {
    auto content = support::ReadFile(path);
    ASSERT_TRUE(content.ok()) << path;
    ExpectSameLex(path, content.value(), options);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace certkit
