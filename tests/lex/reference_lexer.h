// Test-only reference lexer: the pre-DFA hand-rolled scanner, preserved
// verbatim (modulo namespace and owning-string tokens) so the differential
// test in lexer_differential_test.cpp can hold the table-driven production
// lexer to the original's exact observable behavior. Not linked into any
// production target.
#ifndef CERTKIT_TESTS_LEX_REFERENCE_LEXER_H_
#define CERTKIT_TESTS_LEX_REFERENCE_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lex/lexer.h"
#include "support/status.h"

namespace certkit::lex::reference {

// Owning-token mirror of the production types, as they looked before the
// zero-copy refactor.
struct RefToken {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::int32_t line = 0;
  std::int32_t column = 0;
};

struct RefDirective {
  std::string name;
  std::int32_t line = 0;
  std::vector<RefToken> tokens;
};

struct RefComment {
  std::string text;
  std::int32_t line = 0;
};

struct RefLexedFile {
  std::string path;
  std::vector<RefToken> tokens;
  std::vector<RefDirective> directives;
  std::vector<RefComment> comments;
  LineStats lines;
  std::int64_t comment_count = 0;
};

support::Result<RefLexedFile> ReferenceLex(std::string path,
                                           std::string_view source,
                                           const LexOptions& options);

}  // namespace certkit::lex::reference

#endif  // CERTKIT_TESTS_LEX_REFERENCE_LEXER_H_
