// The seed repository's hand-rolled scanner, kept as the behavioral oracle
// for the table-driven production lexer. Logic is byte-for-byte the original
// Scanner; only the type names differ (Ref* owning types).
#include "tests/lex/reference_lexer.h"

#include <array>
#include <cctype>
#include <string>
#include <vector>

#include "support/check.h"

namespace certkit::lex::reference {

namespace {

using support::ParseError;
using support::Result;

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool IsHexDigit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c));
}

// Multi-character punctuators, longest first for maximal munch.
constexpr std::array<std::string_view, 38> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "<=>",                                   // 3
    "::",  "->",  "++",  "--",  "<<",  ">>", "<=", ">=", "==", "!=",     // 2
    "&&",  "||",  "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=", "^=",
    "##",  ".*",
    // single chars fall through
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "=",
};

// Per-line classification flags accumulated during the scan.
struct LineFlags {
  bool has_code = false;
  bool has_comment = false;
  bool is_preprocessor = false;
};

class Scanner {
 public:
  Scanner(std::string path, std::string_view src, const LexOptions& options)
      : path_(std::move(path)), src_(src), options_(options) {
    // Pre-size line table: one entry per physical line.
    std::size_t lines = 1;
    for (char c : src_) {
      if (c == '\n') ++lines;
    }
    if (src_.empty()) lines = 0;
    line_flags_.resize(lines);
  }

  Result<RefLexedFile> Run() {
    while (!AtEnd()) {
      if (auto st = SkipWhitespaceAndComments(/*stop_at_newline=*/false);
          !st.ok()) {
        return st;
      }
      if (AtEnd()) break;
      if (Peek() == '#' && at_line_start_) {
        if (auto st = ScanDirective(); !st.ok()) return st;
        continue;
      }
      RefToken tok;
      if (auto st = ScanToken(&tok); !st.ok()) return st;
      MarkCode(tok.line);
      out_.tokens.push_back(std::move(tok));
    }
    FinalizeLineStats();
    out_.path = path_;
    return std::move(out_);
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    CERTKIT_CHECK(!AtEnd());
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      at_line_start_ = true;
    } else {
      ++col_;
      if (!std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        at_line_start_ = false;
      }
    }
    ++pos_;
  }

  // Consumes a backslash-newline splice if present at the cursor.
  bool ConsumeSplice() {
    if (Peek() == '\\' && (Peek(1) == '\n' ||
                           (Peek(1) == '\r' && Peek(2) == '\n'))) {
      const bool saved_line_start = at_line_start_;
      Advance();  // backslash
      if (Peek() == '\r') Advance();
      Advance();  // newline
      at_line_start_ = saved_line_start;
      return true;
    }
    return false;
  }

  void MarkCode(std::int32_t line) {
    if (line >= 1 && static_cast<std::size_t>(line) <= line_flags_.size()) {
      line_flags_[static_cast<std::size_t>(line) - 1].has_code = true;
    }
  }
  void MarkComment(std::int32_t line) {
    if (line >= 1 && static_cast<std::size_t>(line) <= line_flags_.size()) {
      line_flags_[static_cast<std::size_t>(line) - 1].has_comment = true;
    }
  }
  void MarkPreprocessor(std::int32_t line) {
    if (line >= 1 && static_cast<std::size_t>(line) <= line_flags_.size()) {
      line_flags_[static_cast<std::size_t>(line) - 1].is_preprocessor = true;
    }
  }

  // Skips spaces, splices, and comments. When `stop_at_newline`, returns at
  // the first real newline (used while scanning directive bodies).
  support::Status SkipWhitespaceAndComments(bool stop_at_newline) {
    while (!AtEnd()) {
      if (ConsumeSplice()) continue;
      const char c = Peek();
      if (c == '\n' && stop_at_newline) return support::Status::Ok();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        ++out_.comment_count;
        MarkComment(line_);
        const std::int32_t start_line = line_;
        std::string text;
        while (!AtEnd() && Peek() != '\n') {
          if (ConsumeSplice()) {  // line comment continued by splice
            MarkComment(line_);
            continue;
          }
          if (options_.keep_comments) text.push_back(Peek());
          Advance();
        }
        if (options_.keep_comments) {
          out_.comments.push_back(RefComment{std::move(text), start_line});
        }
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        ++out_.comment_count;
        const std::int32_t start_line = line_;
        std::string text;
        if (options_.keep_comments) text = "/*";
        Advance();
        Advance();
        MarkComment(start_line);
        bool closed = false;
        while (!AtEnd()) {
          if (Peek() == '*' && Peek(1) == '/') {
            Advance();
            Advance();
            closed = true;
            if (options_.keep_comments) text += "*/";
            break;
          }
          MarkComment(line_);
          if (options_.keep_comments) text.push_back(Peek());
          Advance();
        }
        if (!closed) {
          return ParseError(path_ + ":" + std::to_string(start_line) +
                            ": unterminated block comment");
        }
        MarkComment(line_);
        if (options_.keep_comments) {
          out_.comments.push_back(RefComment{std::move(text), start_line});
        }
        continue;
      }
      return support::Status::Ok();
    }
    return support::Status::Ok();
  }

  support::Status ScanToken(RefToken* tok) {
    tok->line = line_;
    tok->column = col_;
    const char c = Peek();

    // String/char literals, including encoding prefixes and raw strings.
    if (c == '"') return ScanString(tok, /*raw=*/false);
    if (c == '\'') return ScanCharLiteral(tok);
    if (IsIdentStart(c)) {
      // Peek for literal prefixes: R" L" u" U" u8" uR" u8R" LR" UR".
      if (auto prefix = MatchLiteralPrefix(); !prefix.empty()) {
        const bool raw = prefix.back() == 'R';
        for (std::size_t i = 0; i < prefix.size(); ++i) Advance();
        if (Peek() == '\'' && !raw) {
          return ScanCharLiteral(tok, std::string(prefix));
        }
        return ScanString(tok, raw, std::string(prefix));
      }
      return ScanIdentifier(tok);
    }
    if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
      return ScanNumber(tok);
    }
    return ScanPunct(tok);
  }

  // Returns the literal prefix at the cursor if the prefix is immediately
  // followed by a quote character, else empty.
  std::string_view MatchLiteralPrefix() const {
    static constexpr std::array<std::string_view, 9> kPrefixes = {
        "u8R", "uR", "UR", "LR", "R", "u8", "u", "U", "L"};
    for (std::string_view p : kPrefixes) {
      bool match = true;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (Peek(i) != p[i]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      const char next = Peek(p.size());
      if (next == '"' || (next == '\'' && p.back() != 'R')) return p;
    }
    return {};
  }

  support::Status ScanIdentifier(RefToken* tok) {
    std::string text;
    while (!AtEnd() && IsIdentCont(Peek())) {
      text.push_back(Peek());
      Advance();
    }
    tok->text = std::move(text);
    const bool keyword =
        IsCppKeyword(tok->text) ||
        (options_.cuda_dialect && IsCudaKeyword(tok->text));
    tok->kind = keyword ? TokenKind::kKeyword : TokenKind::kIdentifier;
    return support::Status::Ok();
  }

  support::Status ScanNumber(RefToken* tok) {
    std::string text;
    auto take = [&] {
      text.push_back(Peek());
      Advance();
    };
    bool hex = false;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      hex = true;
      take();
      take();
      while (!AtEnd() && (IsHexDigit(Peek()) || Peek() == '\'' ||
                          Peek() == '.')) {
        take();
      }
      // Hex float exponent.
      if (Peek() == 'p' || Peek() == 'P') {
        take();
        if (Peek() == '+' || Peek() == '-') take();
        while (!AtEnd() && IsDigit(Peek())) take();
      }
    } else if (Peek() == '0' && (Peek(1) == 'b' || Peek(1) == 'B')) {
      take();
      take();
      while (!AtEnd() && (Peek() == '0' || Peek() == '1' || Peek() == '\'')) {
        take();
      }
    } else {
      while (!AtEnd() && (IsDigit(Peek()) || Peek() == '\'')) take();
      if (Peek() == '.') {
        take();
        while (!AtEnd() && (IsDigit(Peek()) || Peek() == '\'')) take();
      }
      if (Peek() == 'e' || Peek() == 'E') {
        take();
        if (Peek() == '+' || Peek() == '-') take();
        while (!AtEnd() && IsDigit(Peek())) take();
      }
    }
    // Suffixes: u U l L f F z Z (and combinations).
    while (!AtEnd() && !hex &&
           (Peek() == 'u' || Peek() == 'U' || Peek() == 'l' || Peek() == 'L' ||
            Peek() == 'f' || Peek() == 'F' || Peek() == 'z' || Peek() == 'Z')) {
      take();
    }
    while (!AtEnd() && hex &&
           (Peek() == 'u' || Peek() == 'U' || Peek() == 'l' || Peek() == 'L' ||
            Peek() == 'f' || Peek() == 'F')) {
      take();
    }
    tok->kind = TokenKind::kNumber;
    tok->text = std::move(text);
    return support::Status::Ok();
  }

  support::Status ScanString(RefToken* tok, bool raw,
                             std::string prefix = "") {
    std::string text = std::move(prefix);
    const std::int32_t start_line = line_;
    if (raw) {
      // R"delim( ... )delim"
      CERTKIT_CHECK(Peek() == '"');
      text.push_back('"');
      Advance();
      std::string delim;
      while (!AtEnd() && Peek() != '(') {
        delim.push_back(Peek());
        text.push_back(Peek());
        Advance();
      }
      if (AtEnd()) {
        return ParseError(path_ + ":" + std::to_string(start_line) +
                          ": malformed raw string delimiter");
      }
      text.push_back('(');
      Advance();
      const std::string closer = ")" + delim + "\"";
      while (!AtEnd()) {
        bool match = true;
        for (std::size_t i = 0; i < closer.size(); ++i) {
          if (Peek(i) != closer[i]) {
            match = false;
            break;
          }
        }
        if (match) {
          for (std::size_t i = 0; i < closer.size(); ++i) {
            text.push_back(Peek());
            Advance();
          }
          tok->kind = TokenKind::kString;
          tok->text = std::move(text);
          return support::Status::Ok();
        }
        text.push_back(Peek());
        Advance();
      }
      return ParseError(path_ + ":" + std::to_string(start_line) +
                        ": unterminated raw string");
    }
    CERTKIT_CHECK(Peek() == '"');
    text.push_back('"');
    Advance();
    while (!AtEnd()) {
      if (ConsumeSplice()) continue;
      const char c = Peek();
      if (c == '\n') {
        return ParseError(path_ + ":" + std::to_string(start_line) +
                          ": unterminated string literal");
      }
      if (c == '\\') {
        text.push_back(c);
        Advance();
        if (!AtEnd()) {
          text.push_back(Peek());
          Advance();
        }
        continue;
      }
      text.push_back(c);
      Advance();
      if (c == '"') {
        tok->kind = TokenKind::kString;
        tok->text = std::move(text);
        return support::Status::Ok();
      }
    }
    return ParseError(path_ + ":" + std::to_string(start_line) +
                      ": unterminated string literal");
  }

  support::Status ScanCharLiteral(RefToken* tok, std::string prefix = "") {
    std::string text = std::move(prefix);
    const std::int32_t start_line = line_;
    CERTKIT_CHECK(Peek() == '\'');
    text.push_back('\'');
    Advance();
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\n') break;
      if (c == '\\') {
        text.push_back(c);
        Advance();
        if (!AtEnd()) {
          text.push_back(Peek());
          Advance();
        }
        continue;
      }
      text.push_back(c);
      Advance();
      if (c == '\'') {
        tok->kind = TokenKind::kChar;
        tok->text = std::move(text);
        return support::Status::Ok();
      }
    }
    return ParseError(path_ + ":" + std::to_string(start_line) +
                      ": unterminated character literal");
  }

  support::Status ScanPunct(RefToken* tok) {
    for (std::string_view p : kMultiPunct) {
      bool match = true;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (Peek(i) != p[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        tok->kind = TokenKind::kPunct;
        tok->text = std::string(p);
        for (std::size_t i = 0; i < p.size(); ++i) Advance();
        return support::Status::Ok();
      }
    }
    tok->kind = TokenKind::kPunct;
    tok->text = std::string(1, Peek());
    Advance();
    return support::Status::Ok();
  }

  support::Status ScanDirective() {
    const std::int32_t start_line = line_;
    MarkPreprocessor(start_line);
    Advance();  // '#'
    if (auto st = SkipWhitespaceAndComments(/*stop_at_newline=*/true);
        !st.ok()) {
      return st;
    }
    RefDirective dir;
    dir.line = start_line;
    if (!AtEnd() && IsIdentStart(Peek())) {
      RefToken name_tok;
      if (auto st = ScanIdentifier(&name_tok); !st.ok()) return st;
      dir.name = name_tok.text;
    }
    // Lex the remainder of the logical line.
    while (!AtEnd()) {
      if (auto st = SkipWhitespaceAndComments(/*stop_at_newline=*/true);
          !st.ok()) {
        return st;
      }
      if (AtEnd() || Peek() == '\n') break;
      MarkPreprocessor(line_);
      RefToken tok;
      if (auto st = ScanToken(&tok); !st.ok()) return st;
      MarkPreprocessor(tok.line);
      dir.tokens.push_back(std::move(tok));
    }
    out_.directives.push_back(std::move(dir));
    return support::Status::Ok();
  }

  void FinalizeLineStats() {
    LineStats& s = out_.lines;
    s.total = static_cast<std::int64_t>(line_flags_.size());
    for (const LineFlags& f : line_flags_) {
      if (f.is_preprocessor) {
        ++s.preprocessor;
      } else if (f.has_code) {
        ++s.code;
      } else if (f.has_comment) {
        ++s.comment_only;
      } else {
        ++s.blank;
      }
    }
  }

  std::string path_;
  std::string_view src_;
  LexOptions options_;
  std::size_t pos_ = 0;
  std::int32_t line_ = 1;
  std::int32_t col_ = 1;
  bool at_line_start_ = true;
  std::vector<LineFlags> line_flags_;
  RefLexedFile out_;
};

}  // namespace

Result<RefLexedFile> ReferenceLex(std::string path, std::string_view source,
                                  const LexOptions& options) {
  Scanner scanner(std::move(path), source, options);
  return scanner.Run();
}

}  // namespace certkit::lex::reference
