// Unit tests for per-function metrics (Lizard-rule cyclomatic complexity).
#include "metrics/function_metrics.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace certkit::metrics {
namespace {

FunctionMetrics MetricsOf(std::string_view src, std::size_t index = 0) {
  auto r = ast::ParseSource("test.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  const ast::SourceFileModel& m = r.value();
  EXPECT_LT(index, m.functions.size());
  return ComputeFunctionMetrics(m, m.functions[index]);
}

TEST(FunctionMetricsTest, StraightLineComplexityIsOne) {
  FunctionMetrics m = MetricsOf("int f() { int a = 1; int b = 2; return a + b; }");
  EXPECT_EQ(m.cyclomatic_complexity, 1);
}

TEST(FunctionMetricsTest, SingleIfIsTwo) {
  FunctionMetrics m = MetricsOf("int f(int x) { if (x) return 1; return 0; }");
  EXPECT_EQ(m.cyclomatic_complexity, 2);
}

TEST(FunctionMetricsTest, NestedIfsAddLinearly) {
  FunctionMetrics m = MetricsOf(
      "int f(int x, int y) { if (x) { if (y) return 2; } return 0; }");
  EXPECT_EQ(m.cyclomatic_complexity, 3);
}

TEST(FunctionMetricsTest, ElseDoesNotAdd) {
  FunctionMetrics m = MetricsOf(
      "int f(int x) { if (x) { return 1; } else { return 2; } }");
  EXPECT_EQ(m.cyclomatic_complexity, 2);
}

TEST(FunctionMetricsTest, LogicalOperatorsAdd) {
  FunctionMetrics m = MetricsOf(
      "int f(int a, int b, int c) { if (a && b || c) return 1; return 0; }");
  EXPECT_EQ(m.cyclomatic_complexity, 4);  // 1 + if + && + ||
}

TEST(FunctionMetricsTest, TernaryAdds) {
  FunctionMetrics m = MetricsOf("int f(int x) { return x ? 1 : 2; }");
  EXPECT_EQ(m.cyclomatic_complexity, 2);
}

TEST(FunctionMetricsTest, SwitchCasesAdd) {
  FunctionMetrics m = MetricsOf(
      "int f(int x) {\n"
      "  switch (x) {\n"
      "    case 0: return 1;\n"
      "    case 1: return 2;\n"
      "    case 2: return 3;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(m.cyclomatic_complexity, 4);  // 1 + 3 cases (default free)
}

TEST(FunctionMetricsTest, LoopsAdd) {
  FunctionMetrics m = MetricsOf(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; ++i) s += i;\n"
      "  while (s > 100) s /= 2;\n"
      "  return s;\n"
      "}\n");
  EXPECT_EQ(m.cyclomatic_complexity, 3);
}

TEST(FunctionMetricsTest, DoWhileCountsOnce) {
  FunctionMetrics m = MetricsOf(
      "int f(int n) { int s = 0; do { s += n; --n; } while (n > 0); return s; }");
  // `do...while` is one loop: its `while` contributes the single decision.
  EXPECT_EQ(m.cyclomatic_complexity, 2);
}

TEST(FunctionMetricsTest, CatchAdds) {
  FunctionMetrics m = MetricsOf(
      "int f() { try { return g(); } catch (const std::exception& e) { "
      "return -1; } }");
  EXPECT_EQ(m.cyclomatic_complexity, 2);
}

TEST(FunctionMetricsTest, NlocCountsCodeLines) {
  FunctionMetrics m = MetricsOf(
      "int f() {\n"
      "  int a = 1;\n"
      "\n"
      "  // comment only\n"
      "  return a;\n"
      "}\n");
  EXPECT_EQ(m.nloc, 4);  // '{' line, two statements, '}' line
}

TEST(FunctionMetricsTest, ReturnAndGotoCounts) {
  FunctionMetrics m = MetricsOf(
      "int f(int x) {\n"
      "  if (x < 0) return -1;\n"
      "  if (x == 0) goto done;\n"
      "  return x;\n"
      "done:\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(m.return_count, 3);
  EXPECT_EQ(m.goto_count, 1);
}

TEST(FunctionMetricsTest, DirectRecursionDetected) {
  FunctionMetrics m =
      MetricsOf("int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }");
  EXPECT_TRUE(m.is_recursive_direct);
}

TEST(FunctionMetricsTest, NonRecursiveNotFlagged) {
  FunctionMetrics m = MetricsOf("int f(int n) { return g(n) + h(n); }");
  EXPECT_FALSE(m.is_recursive_direct);
}

TEST(FunctionMetricsTest, CalleesCollectedSortedUnique) {
  FunctionMetrics m = MetricsOf(
      "void f() { alpha(); beta(); alpha(); obj.gamma(); }");
  EXPECT_EQ(m.callees,
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(FunctionMetricsTest, NestingDepth) {
  FunctionMetrics m = MetricsOf(
      "void f(int n) {\n"
      "  if (n) {\n"
      "    for (int i = 0; i < n; ++i) {\n"
      "      if (i % 2) {\n"
      "        g();\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(m.max_nesting_depth, 3);
}

TEST(FunctionMetricsTest, ParamCount) {
  FunctionMetrics m = MetricsOf("void f(int a, double b, char c) {}");
  EXPECT_EQ(m.param_count, 3);
}

TEST(FunctionMetricsTest, ComplexityBands) {
  EXPECT_EQ(BandOf(1), ComplexityBand::kLow);
  EXPECT_EQ(BandOf(10), ComplexityBand::kLow);
  EXPECT_EQ(BandOf(11), ComplexityBand::kModerate);
  EXPECT_EQ(BandOf(20), ComplexityBand::kModerate);
  EXPECT_EQ(BandOf(21), ComplexityBand::kRisky);
  EXPECT_EQ(BandOf(50), ComplexityBand::kRisky);
  EXPECT_EQ(BandOf(51), ComplexityBand::kUnstable);
}

// Property: a chain of N sequential `if` statements has CC = N + 1 exactly.
class ComplexityChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ComplexityChainSweep, LinearInDecisions) {
  const int n = GetParam();
  std::string body;
  for (int i = 0; i < n; ++i) {
    body += "if (x > " + std::to_string(i) + ") ++x;\n";
  }
  FunctionMetrics m = MetricsOf("int f(int x) {\n" + body + "return x;\n}\n");
  EXPECT_EQ(m.cyclomatic_complexity, n + 1);
}

INSTANTIATE_TEST_SUITE_P(Chains, ComplexityChainSweep,
                         ::testing::Values(0, 1, 9, 10, 19, 20, 49, 50, 51,
                                           120));

}  // namespace
}  // namespace certkit::metrics
