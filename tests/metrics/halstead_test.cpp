// Tests for Halstead metrics and the maintainability index.
#include "metrics/halstead.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ast/parser.h"

namespace certkit::metrics {
namespace {

HalsteadMetrics Halstead(std::string_view src) {
  auto r = ast::ParseSource("h.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().functions.size(), 1u);
  return ComputeHalstead(r.value(), r.value().functions[0]);
}

TEST(HalsteadTest, HandComputedTinyFunction) {
  // Body tokens: { return a + b ; }
  // operators: '{' return '+' ';' '}'  -> distinct 5, total 5
  // operands:  a b                     -> distinct 2, total 2
  HalsteadMetrics m = Halstead("int f(int a, int b) { return a + b; }");
  EXPECT_EQ(m.distinct_operators, 5);
  EXPECT_EQ(m.total_operators, 5);
  EXPECT_EQ(m.distinct_operands, 2);
  EXPECT_EQ(m.total_operands, 2);
  EXPECT_EQ(m.Vocabulary(), 7);
  EXPECT_EQ(m.Length(), 7);
  EXPECT_NEAR(m.Volume(), 7.0 * std::log2(7.0), 1e-9);
  EXPECT_NEAR(m.Difficulty(), (5.0 / 2.0) * (2.0 / 2.0), 1e-9);
  EXPECT_NEAR(m.Effort(), m.Difficulty() * m.Volume(), 1e-9);
}

TEST(HalsteadTest, RepeatedOperandsCountTotals) {
  HalsteadMetrics m = Halstead("int f(int a) { return a + a + a; }");
  EXPECT_EQ(m.distinct_operands, 1);  // only `a`
  EXPECT_EQ(m.total_operands, 3);
}

TEST(HalsteadTest, LiteralsAreOperands) {
  HalsteadMetrics m = Halstead(
      "int f() { const char* s = \"x\"; return 42 + 'c' * 0; }");
  // operands: s, "x", 42, 'c', 0 — note `char` is a keyword (operator).
  EXPECT_EQ(m.distinct_operands, 5);
}

TEST(HalsteadTest, VolumeGrowsWithCode) {
  HalsteadMetrics small = Halstead("int f() { return 1; }");
  HalsteadMetrics large = Halstead(
      "int f(int a, int b, int c) {\n"
      "  int x = a * b + c;\n"
      "  int y = x / (a + 1);\n"
      "  int z = y % (b + 2);\n"
      "  return x + y + z;\n"
      "}\n");
  EXPECT_GT(large.Volume(), small.Volume());
  EXPECT_GT(large.Effort(), small.Effort());
}

TEST(MaintainabilityIndexTest, BoundsAndMonotonicity) {
  // Tiny, simple code -> high MI.
  const double simple = MaintainabilityIndex(10.0, 1, 3);
  EXPECT_GT(simple, 80.0);
  EXPECT_LE(simple, 100.0);
  // Monotone decreasing in volume, complexity, and size.
  EXPECT_GT(MaintainabilityIndex(100.0, 5, 20),
            MaintainabilityIndex(10000.0, 5, 20));
  EXPECT_GT(MaintainabilityIndex(100.0, 5, 20),
            MaintainabilityIndex(100.0, 60, 20));
  EXPECT_GT(MaintainabilityIndex(100.0, 5, 20),
            MaintainabilityIndex(100.0, 5, 2000));
  // Clamped to [0, 100].
  EXPECT_EQ(MaintainabilityIndex(1e12, 300, 100000), 0.0);
}

TEST(MaintainabilityIndexTest, DegenerateInputsClamp) {
  EXPECT_LE(MaintainabilityIndex(0.0, 1, 0), 100.0);
  EXPECT_GE(MaintainabilityIndex(0.0, 1, 0), 0.0);
}

TEST(MaintainabilityIndexTest, ComplexGeneratedFunctionScoresLower) {
  // A CC~30 function from the corpus generator scores well below a trivial
  // one — the Observation-1 story in MI terms.
  auto simple = ast::ParseSource("s.cc", "int f() { return 1; }");
  ASSERT_TRUE(simple.ok());
  const double mi_simple = FunctionMaintainabilityIndex(
      simple.value(), simple.value().functions[0]);

  std::string body = "int g(int x) {\n";
  for (int i = 0; i < 30; ++i) {
    body += "  if (x > " + std::to_string(i) + ") { x += " +
            std::to_string(i) + "; }\n";
  }
  body += "  return x;\n}\n";
  auto complex_fn = ast::ParseSource("c.cc", body);
  ASSERT_TRUE(complex_fn.ok());
  const double mi_complex = FunctionMaintainabilityIndex(
      complex_fn.value(), complex_fn.value().functions[0]);
  EXPECT_LT(mi_complex, mi_simple - 20.0);
}

}  // namespace
}  // namespace certkit::metrics
