// Tests for module aggregation and architectural metrics (Table 2 support).
#include "metrics/architecture.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "metrics/module_metrics.h"

namespace certkit::metrics {
namespace {

ModuleAnalysis Module(const std::string& name, std::string_view src) {
  auto r = ast::ParseSource(name + "/file.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<ast::SourceFileModel> files;
  files.push_back(std::move(r).value());
  return AnalyzeModule(name, std::move(files));
}

TEST(ModuleMetricsTest, AggregatesAcrossFiles) {
  auto a = ast::ParseSource("m/a.cc", "void f1() {}\nvoid f2() {}\n");
  auto b = ast::ParseSource("m/b.cc", "int g(int x) { return x ? 1 : 0; }\n");
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<ast::SourceFileModel> files;
  files.push_back(std::move(a).value());
  files.push_back(std::move(b).value());
  ModuleAnalysis mod = AnalyzeModule("m", std::move(files));
  EXPECT_EQ(mod.metrics.file_count, 2);
  EXPECT_EQ(mod.metrics.function_count, 3);
  EXPECT_EQ(mod.metrics.cc_low, 3);
  EXPECT_EQ(mod.metrics.max_cc, 2);
  EXPECT_NEAR(mod.metrics.mean_cc, 4.0 / 3.0, 1e-9);
}

TEST(ModuleMetricsTest, FunctionsOverCcThresholds) {
  ModuleMetrics m;
  m.cc_low = 10;
  m.cc_moderate = 5;
  m.cc_risky = 3;
  m.cc_unstable = 2;
  EXPECT_EQ(m.FunctionsOverCc(10), 10);
  EXPECT_EQ(m.FunctionsOverCc(20), 5);
  EXPECT_EQ(m.FunctionsOverCc(50), 2);
}

TEST(ArchitectureTest, ResolvedCallsSplitIntraVsInter) {
  // Module "low" defines Leaf; module "high" calls it plus its own Local.
  std::vector<ModuleAnalysis> modules;
  modules.push_back(Module("low", "int Leaf(int x) { return x; }\n"));
  modules.push_back(Module(
      "high",
      "int Local(int x) { return x + 1; }\n"
      "int Top(int x) { return Local(x) + Leaf(x); }\n"));
  ArchitectureReport report = AnalyzeArchitecture(modules);
  ASSERT_EQ(report.coupling.size(), 2u);
  const CouplingStats& low = report.coupling[0];
  const CouplingStats& high = report.coupling[1];
  EXPECT_EQ(low.external_calls, 0);
  EXPECT_EQ(high.external_calls, 1);   // Top -> Leaf
  EXPECT_EQ(high.internal_calls, 1);   // Top -> Local
  EXPECT_EQ(high.efferent_modules, 1);
  EXPECT_DOUBLE_EQ(high.cohesion, 0.5);
  EXPECT_DOUBLE_EQ(low.cohesion, 1.0);  // nothing resolves externally
}

TEST(ArchitectureTest, AmbiguousNamesDroppedFromResolution) {
  // `Shared` is defined in both modules: calls to it must not create edges.
  std::vector<ModuleAnalysis> modules;
  modules.push_back(Module("a", "int Shared(int x) { return x; }\n"));
  modules.push_back(Module(
      "b",
      "int Shared(int x) { return -x; }\n"
      "int User(int x) { return Shared(x); }\n"));
  ArchitectureReport report = AnalyzeArchitecture(modules);
  EXPECT_EQ(report.coupling[1].external_calls, 0);
  EXPECT_EQ(report.coupling[1].internal_calls, 0);
}

TEST(ArchitectureTest, InterfaceStatsCountWideSignatures) {
  std::vector<ModuleAnalysis> modules;
  modules.push_back(Module(
      "wide",
      "int Narrow(int a) { return a; }\n"
      "int Wide(int a, int b, int c, int d, int e, int f) {\n"
      "  return a + b + c + d + e + f;\n"
      "}\n"));
  ArchitectureLimits limits;
  limits.max_params = 5;
  ArchitectureReport report = AnalyzeArchitecture(modules, limits);
  ASSERT_EQ(report.interfaces.size(), 1u);
  EXPECT_EQ(report.interfaces[0].functions_over_param_limit, 1);
  EXPECT_EQ(report.interfaces[0].max_params, 6);
  EXPECT_NEAR(report.interfaces[0].mean_params, 3.5, 1e-9);
}

TEST(ArchitectureTest, ClassInterfaceWidth) {
  std::vector<ModuleAnalysis> modules;
  modules.push_back(Module(
      "cls",
      "class Api {\n"
      " public:\n"
      "  void A() {}\n"
      "  void B() {}\n"
      " private:\n"
      "  void C() {}\n"
      "};\n"));
  ArchitectureReport report = AnalyzeArchitecture(modules);
  EXPECT_EQ(report.interfaces[0].class_count, 1);
  EXPECT_EQ(report.interfaces[0].max_public_methods, 2);
}

TEST(ArchitectureTest, EmptyModuleListIsEmptyReport) {
  ArchitectureReport report = AnalyzeArchitecture({});
  EXPECT_TRUE(report.sizes.empty());
  EXPECT_TRUE(report.coupling.empty());
}

}  // namespace
}  // namespace certkit::metrics
