// Tests for the Brook-Auto-style stream layer.
#include "gpusim/brookauto.h"

#include <gtest/gtest.h>

#include <numeric>

namespace brookauto {
namespace {

TEST(StreamTest, WriteReadRoundTrip) {
  gpusim::Device device(1);
  Stream<float> s(8, device);
  std::vector<float> host = {1, 2, 3, 4, 5, 6, 7, 8};
  s.Write(host);
  EXPECT_EQ(s.Read(), host);
}

TEST(StreamTest, SizeMismatchIsContractViolation) {
  gpusim::Device device(1);
  Stream<float> s(4, device);
  std::vector<float> wrong = {1, 2, 3};
  EXPECT_THROW(s.Write(wrong), certkit::support::ContractViolation);
}

TEST(StreamTest, EmptyStreamRejected) {
  gpusim::Device device(1);
  EXPECT_THROW(Stream<float>(0, device),
               certkit::support::ContractViolation);
}

TEST(StreamTest, RaiiReleasesDeviceMemory) {
  gpusim::Device device(1);
  {
    Stream<double> s(100, device);
    EXPECT_EQ(device.allocated_bytes(), 100 * sizeof(double));
  }
  EXPECT_EQ(device.allocated_bytes(), 0u);
}

TEST(TransformTest, ElementwiseMap) {
  gpusim::Device device(1);
  Stream<float> in(5, device), out(5, device);
  in.Write({1, 2, 3, 4, 5});
  Transform(in, &out, [](float v) { return v * 2.0f + 1.0f; });
  EXPECT_EQ(out.Read(), (std::vector<float>{3, 5, 7, 9, 11}));
}

TEST(TransformTest, ScaleBiasZip) {
  // The paper's Figure 4 kernel, pointer-free: out = out * scale + bias.
  gpusim::Device device(1);
  Stream<float> values(4, device), biases(4, device), out(4, device);
  values.Write({1, 2, 3, 4});
  biases.Write({10, 20, 30, 40});
  Transform2(values, biases, &out,
             [](float v, float b) { return v * 2.0f + b; });
  EXPECT_EQ(out.Read(), (std::vector<float>{12, 24, 36, 48}));
}

TEST(TransformTest, SizeMismatchRejected) {
  gpusim::Device device(1);
  Stream<float> a(4, device), b(5, device), out(4, device);
  EXPECT_THROW(
      Transform2(a, b, &out, [](float x, float y) { return x + y; }),
      certkit::support::ContractViolation);
}

TEST(GatherTest, ThreePointStencilWithZeroBoundary) {
  gpusim::Device device(1);
  Stream<float> in(4, device), out(4, device);
  in.Write({1, 2, 3, 4});
  Gather(in, &out, [](const Window<float>& w) {
    return w[-1] + w[0] + w[+1];
  });
  // Boundaries read as 0: [0+1+2, 1+2+3, 2+3+4, 3+4+0].
  EXPECT_EQ(out.Read(), (std::vector<float>{3, 6, 9, 7}));
}

TEST(GatherTest, CustomBoundaryValue) {
  gpusim::Device device(1);
  Stream<float> in(2, device), out(2, device);
  in.Write({5, 6});
  Gather(in, &out, [](const Window<float>& w) { return w[-1] + w[+1]; },
         100.0f);
  EXPECT_EQ(out.Read(), (std::vector<float>{106, 105}));
}

TEST(ReduceTest, SumAndMax) {
  gpusim::Device device(1);
  Stream<int> s(6, device);
  s.Write({3, 1, 4, 1, 5, 9});
  EXPECT_EQ(Reduce(s, 0, [](int a, int b) { return a + b; }), 23);
  EXPECT_EQ(Reduce(s, 0, [](int a, int b) { return a > b ? a : b; }), 9);
}

TEST(BrookAutoTest, LargeStreamMatchesScalarLoop) {
  gpusim::Device device(2);
  const std::size_t n = 10000;
  std::vector<float> host(n);
  std::iota(host.begin(), host.end(), 0.0f);
  Stream<float> in(n, device), out(n, device);
  in.Write(host);
  Transform(in, &out, [](float v) { return v * 0.5f - 3.0f; });
  const auto result = out.Read();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(result[i], host[i] * 0.5f - 3.0f);
  }
}

}  // namespace
}  // namespace brookauto
