// Tests for the GPU-on-CPU execution layer.
#include "gpusim/gpusim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gpusim {
namespace {

TEST(ThreadPoolTest, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(1000, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, EachIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&](std::uint64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::uint64_t) { FAIL(); });
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](std::uint64_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(DeviceTest, MallocFreeTracking) {
  Device device(2);
  EXPECT_EQ(device.allocated_bytes(), 0u);
  void* a = device.Malloc(128);
  void* b = device.Malloc(256);
  EXPECT_EQ(device.allocated_bytes(), 384u);
  EXPECT_EQ(device.allocation_count(), 2u);
  device.Free(a);
  EXPECT_EQ(device.allocated_bytes(), 256u);
  device.Free(b);
  EXPECT_EQ(device.allocation_count(), 0u);
}

TEST(DeviceTest, FreeUnknownPointerIsContractViolation) {
  Device device(2);
  int x = 0;
  EXPECT_THROW(device.Free(&x), certkit::support::ContractViolation);
}

TEST(DeviceTest, FreeNullIsNoop) {
  Device device(2);
  device.Free(nullptr);  // must not throw
}

TEST(DeviceTest, MemcpyRoundTrip) {
  Device device(2);
  std::vector<float> host_in(64);
  std::iota(host_in.begin(), host_in.end(), 0.0f);
  float* dev = static_cast<float*>(device.Malloc(64 * sizeof(float)));
  device.MemcpyHostToDevice(dev, host_in.data(), 64 * sizeof(float));
  std::vector<float> host_out(64, -1.0f);
  device.MemcpyDeviceToHost(host_out.data(), dev, 64 * sizeof(float));
  EXPECT_EQ(host_in, host_out);
  device.Free(dev);
}

TEST(DeviceTest, LaunchCoversFullGrid) {
  Device device(4);
  constexpr int kW = 70, kH = 33;  // not multiples of the block size
  std::vector<std::atomic<int>> hits(kW * kH);
  Dim3 grid{(kW + 15) / 16, (kH + 15) / 16, 1};
  Dim3 block{16, 16, 1};
  device.Launch(grid, block, [&](const KernelContext& ctx) {
    const unsigned x = ctx.GlobalX();
    const unsigned y = ctx.GlobalY();
    if (x < kW && y < kH) {
      ++hits[y * kW + x];
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DeviceTest, KernelContextIndicesInRange) {
  Device device(4);
  Dim3 grid{3, 2, 2};
  Dim3 block{4, 2, 1};
  std::atomic<int> bad{0};
  std::atomic<std::uint64_t> invocations{0};
  device.Launch(grid, block, [&](const KernelContext& ctx) {
    ++invocations;
    if (ctx.block_idx.x >= grid.x || ctx.block_idx.y >= grid.y ||
        ctx.block_idx.z >= grid.z || ctx.thread_idx.x >= block.x ||
        ctx.thread_idx.y >= block.y || ctx.thread_idx.z >= block.z) {
      ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(invocations.load(), grid.Count() * block.Count());
}

TEST(DeviceBufferTest, RaiiReleases) {
  Device device(2);
  {
    DeviceBuffer<float> buf(100, device);
    EXPECT_EQ(device.allocated_bytes(), 400u);
    std::vector<float> host(100, 3.5f);
    buf.CopyFromHost(host.data(), 100);
    std::vector<float> back(100, 0.0f);
    buf.CopyToHost(back.data(), 100);
    EXPECT_EQ(back[0], 3.5f);
    EXPECT_EQ(back[99], 3.5f);
  }
  EXPECT_EQ(device.allocated_bytes(), 0u);
}

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  Device device(2);
  DeviceBuffer<int> a(10, device);
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(device.allocation_count(), 1u);
}

}  // namespace
}  // namespace gpusim
