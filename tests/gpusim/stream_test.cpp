// Tests for gpusim streams and events.
#include "gpusim/stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gpusim {
namespace {

TEST(StreamTest, FifoOrderWithinStream) {
  Device device(2);
  Stream stream(device);
  std::vector<int> order;
  std::mutex order_mu;
  for (int i = 0; i < 20; ++i) {
    stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                       [&, i](const KernelContext&) {
                         std::lock_guard<std::mutex> lock(order_mu);
                         order.push_back(i);
                       });
  }
  stream.Synchronize();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(StreamTest, MemcpyAsyncOrderedWithKernels) {
  Device device(2);
  Stream stream(device);
  std::vector<float> a(64, 1.0f), b(64, 0.0f), c(64, 0.0f);
  float* dev = static_cast<float*>(device.Malloc(64 * sizeof(float)));
  stream.MemcpyAsync(dev, a.data(), 64 * sizeof(float));
  stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{64, 1, 1},
                     [dev](const KernelContext& ctx) {
                       dev[ctx.GlobalX()] *= 3.0f;
                     });
  stream.MemcpyAsync(b.data(), dev, 64 * sizeof(float));
  stream.Synchronize();
  for (float v : b) EXPECT_FLOAT_EQ(v, 3.0f);
  device.Free(dev);
  (void)c;
}

TEST(StreamTest, QueryReflectsDrain) {
  Device device(2);
  Stream stream(device);
  std::atomic<bool> release{false};
  stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                     [&](const KernelContext&) {
                       while (!release.load()) {
                         std::this_thread::yield();
                       }
                     });
  EXPECT_FALSE(stream.Query());
  release = true;
  stream.Synchronize();
  EXPECT_TRUE(stream.Query());
}

TEST(StreamTest, TwoStreamsBothComplete) {
  Device device(2);
  Stream s1(device), s2(device);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    s1.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                   [&](const KernelContext&) { ++count; });
    s2.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                   [&](const KernelContext&) { ++count; });
  }
  s1.Synchronize();
  s2.Synchronize();
  EXPECT_EQ(count.load(), 20);
}

TEST(StreamTest, DestructorSynchronizes) {
  Device device(2);
  std::atomic<int> done{0};
  {
    Stream stream(device);
    for (int i = 0; i < 5; ++i) {
      stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                         [&](const KernelContext&) { ++done; });
    }
  }  // ~Stream waits for the queue
  EXPECT_EQ(done.load(), 5);
}

TEST(EventTest, RecordAndSynchronize) {
  Device device(2);
  Stream stream(device);
  auto event = Event::Create();
  std::atomic<bool> ran{false};
  stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                     [&](const KernelContext&) { ran = true; });
  event->Record(stream);
  event->Synchronize();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(event->Query());
}

TEST(EventTest, UnrecordedSynchronizeIsContractViolation) {
  auto event = Event::Create();
  EXPECT_THROW(event->Synchronize(), certkit::support::ContractViolation);
  EXPECT_FALSE(event->Query());
}

TEST(EventTest, ElapsedTimeBetweenEvents) {
  Device device(2);
  Stream stream(device);
  auto start = Event::Create();
  auto end = Event::Create();
  start->Record(stream);
  stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                     [](const KernelContext&) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(10));
                     });
  end->Record(stream);
  end->Synchronize();
  const double elapsed = Event::ElapsedSeconds(*start, *end);
  EXPECT_GE(elapsed, 0.008);
  EXPECT_LT(elapsed, 1.0);
}

TEST(EventTest, ReRecordResetsCompletion) {
  Device device(2);
  Stream stream(device);
  auto event = Event::Create();
  event->Record(stream);
  event->Synchronize();
  EXPECT_TRUE(event->Query());
  std::atomic<bool> release{false};
  stream.LaunchAsync(Dim3{1, 1, 1}, Dim3{1, 1, 1},
                     [&](const KernelContext&) {
                       while (!release.load()) std::this_thread::yield();
                     });
  event->Record(stream);
  EXPECT_FALSE(event->Query());  // reset until the stream reaches it again
  release = true;
  event->Synchronize();
  EXPECT_TRUE(event->Query());
}

TEST(StreamTest, PipelinedDoubleBuffering) {
  // The canonical CUDA pattern: copy/compute overlap via two streams.
  Device device(2);
  const std::size_t n = 1024;
  std::vector<float> host_a(n), host_b(n), out_a(n), out_b(n);
  std::iota(host_a.begin(), host_a.end(), 0.0f);
  std::iota(host_b.begin(), host_b.end(), 1000.0f);
  float* dev_a = static_cast<float*>(device.Malloc(n * sizeof(float)));
  float* dev_b = static_cast<float*>(device.Malloc(n * sizeof(float)));
  {
    Stream s1(device), s2(device);
    auto process = [n](float* dev) {
      return [dev, n](const KernelContext& ctx) {
        const std::size_t i = ctx.GlobalX();
        if (i < n) dev[i] += 1.0f;
      };
    };
    s1.MemcpyAsync(dev_a, host_a.data(), n * sizeof(float));
    s2.MemcpyAsync(dev_b, host_b.data(), n * sizeof(float));
    s1.LaunchAsync(Dim3{4, 1, 1}, Dim3{256, 1, 1}, process(dev_a));
    s2.LaunchAsync(Dim3{4, 1, 1}, Dim3{256, 1, 1}, process(dev_b));
    s1.MemcpyAsync(out_a.data(), dev_a, n * sizeof(float));
    s2.MemcpyAsync(out_b.data(), dev_b, n * sizeof(float));
    s1.Synchronize();
    s2.Synchronize();
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out_a[i], host_a[i] + 1.0f);
    ASSERT_FLOAT_EQ(out_b[i], host_b[i] + 1.0f);
  }
  device.Free(dev_a);
  device.Free(dev_b);
}

}  // namespace
}  // namespace gpusim
