// Tests for the execution-time measurement and WCET estimation module.
#include "timing/timing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "support/rng.h"

namespace certkit::timing {
namespace {

TEST(TimerTest, StatsOnKnownSamples) {
  ExecutionTimer t("t");
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) t.Record(v);
  const TimingStats s = t.GetStats();
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_GE(s.p95, 4.0);
  EXPECT_LE(s.p95, 5.0);
}

TEST(TimerTest, QuantilesUseNearestRank) {
  // The WCET percentiles are nearest-rank by definition: the reported value
  // must be an observed sample, never an interpolation below one. For
  // samples 1..100, p95 is exactly the 95th sample and p99 the 99th.
  ExecutionTimer t("nr");
  for (int i = 1; i <= 100; ++i) t.Record(static_cast<double>(i));
  const TimingStats s = t.GetStats();
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);

  // Small sample sets round up to the covering rank: for {1, 2},
  // ceil(0.95 * 2) = 2 -> the maximum.
  ExecutionTimer small("nr_small");
  small.Record(1.0);
  small.Record(2.0);
  EXPECT_DOUBLE_EQ(small.GetStats().p95, 2.0);

  ExecutionTimer one("nr_one");
  one.Record(7.0);
  EXPECT_DOUBLE_EQ(one.GetStats().p95, 7.0);
  EXPECT_DOUBLE_EQ(one.GetStats().p99, 7.0);
}

TEST(TimerTest, EmptyTimerStats) {
  ExecutionTimer t("empty");
  const TimingStats s = t.GetStats();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(t.EstimateWcetEnvelope(), 0.0);
}

TEST(TimerTest, CountOverDeadline) {
  ExecutionTimer t("d");
  for (double v : {0.05, 0.08, 0.12, 0.09, 0.15}) t.Record(v);
  EXPECT_EQ(t.CountOver(0.10), 2);
  EXPECT_EQ(t.CountOver(0.20), 0);
  EXPECT_EQ(t.CountOver(0.0), 5);
}

TEST(TimerTest, EnvelopeWcet) {
  ExecutionTimer t("e");
  t.Record(0.10);
  t.Record(0.25);
  EXPECT_DOUBLE_EQ(t.EstimateWcetEnvelope(1.2), 0.30);
  EXPECT_DOUBLE_EQ(t.EstimateWcetEnvelope(1.0), 0.25);
}

TEST(TimerTest, NegativeSampleRejected) {
  ExecutionTimer t("n");
  EXPECT_THROW(t.Record(-0.1), support::ContractViolation);
}

TEST(TimerTest, ResetClears) {
  ExecutionTimer t("r");
  t.Record(1.0);
  t.Reset();
  EXPECT_EQ(t.sample_count(), 0);
}

TEST(PwcetTest, RequiresEnoughBlocks) {
  ExecutionTimer t("few");
  for (int i = 0; i < 15; ++i) t.Record(0.01);
  // 15 samples, block size 10 -> only one full block.
  EXPECT_FALSE(t.EstimatePwcet(1e-6, 10).ok());
  for (int i = 0; i < 10; ++i) t.Record(0.01);
  EXPECT_TRUE(t.EstimatePwcet(1e-6, 10).ok());
}

TEST(PwcetTest, InvalidProbabilityRejected) {
  ExecutionTimer t("p");
  for (int i = 0; i < 40; ++i) t.Record(0.01);
  EXPECT_FALSE(t.EstimatePwcet(0.0).ok());
  EXPECT_FALSE(t.EstimatePwcet(1.0).ok());
  EXPECT_FALSE(t.EstimatePwcet(1e-6, 0).ok());
}

TEST(PwcetTest, ConstantSamplesGiveConstantBound) {
  ExecutionTimer t("c");
  for (int i = 0; i < 50; ++i) t.Record(0.02);
  auto bound = t.EstimatePwcet(1e-9, 10);
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(bound.value(), 0.02, 1e-12);
}

TEST(PwcetTest, BoundExceedsObservedMaxAndGrowsWithRarity) {
  ExecutionTimer t("g");
  support::Xoshiro256 rng(99);
  for (int i = 0; i < 500; ++i) {
    // Right-skewed execution times around 10 ms.
    t.Record(0.010 + std::abs(rng.Gaussian(0.0, 0.002)));
  }
  auto p6 = t.EstimatePwcet(1e-6, 10);
  auto p9 = t.EstimatePwcet(1e-9, 10);
  ASSERT_TRUE(p6.ok());
  ASSERT_TRUE(p9.ok());
  const TimingStats stats = t.GetStats();
  EXPECT_GT(p6.value(), stats.p99);
  EXPECT_GT(p9.value(), p6.value());  // rarer exceedance -> larger bound
  // Sanity: still the same order of magnitude as the observations.
  EXPECT_LT(p9.value(), stats.max * 5.0);
}

TEST(ScopedTimerTest, RecordsElapsed) {
  ExecutionTimer t("s");
  {
    ScopedTimer scope(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(t.sample_count(), 1);
  EXPECT_GE(t.GetStats().max, 0.004);
}

TEST(RegistryTest, NamedTimers) {
  auto& a = TimerRegistry::Instance().GetOrCreate("stage/x");
  auto& b = TimerRegistry::Instance().GetOrCreate("stage/x");
  EXPECT_EQ(&a, &b);
  a.Record(0.5);
  bool found = false;
  for (const auto* t : TimerRegistry::Instance().Timers()) {
    if (t->name() == "stage/x") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace certkit::timing
