// Tests for the tensor, layers, detector, and weight blob of the nn library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "nn/detector.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace nn {
namespace {

TEST(TensorTest, ShapeAndIndexing) {
  Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 120u);
  t.At(1, 2, 3, 4) = 7.5f;
  EXPECT_EQ(t.At(1, 2, 3, 4), 7.5f);
  EXPECT_EQ(t.At(0, 0, 0, 0), 0.0f);
}

TEST(TensorTest, OutOfRangeIsContractViolation) {
  Tensor t(1, 1, 2, 2);
  EXPECT_THROW(t.At(0, 0, 2, 0), certkit::support::ContractViolation);
  EXPECT_THROW(t.At(0, 1, 0, 0), certkit::support::ContractViolation);
}

TEST(LayerTest, BatchNormAppliesScaleShift) {
  BatchNormLayer bn({2.0f, 1.0f}, {1.0f, 0.0f});
  Tensor in(1, 2, 1, 2);
  in.At(0, 0, 0, 0) = 3.0f;
  in.At(0, 0, 0, 1) = -1.0f;
  in.At(0, 1, 0, 0) = 5.0f;
  Tensor out = bn.Forward(in);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 7.0f);   // 2*3+1
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 1), -1.0f);  // 2*-1+1
  EXPECT_FLOAT_EQ(out.At(0, 1, 0, 0), 5.0f);   // identity channel
}

TEST(LayerTest, ActivationKinds) {
  Tensor in(1, 1, 1, 3);
  in.At(0, 0, 0, 0) = -2.0f;
  in.At(0, 0, 0, 1) = 0.0f;
  in.At(0, 0, 0, 2) = 3.0f;

  ActivationLayer relu(Activation::kRelu);
  Tensor r = relu.Forward(in);
  EXPECT_FLOAT_EQ(r.At(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.At(0, 0, 0, 2), 3.0f);

  ActivationLayer leaky(Activation::kLeakyRelu, 0.1f);
  Tensor l = leaky.Forward(in);
  EXPECT_FLOAT_EQ(l.At(0, 0, 0, 0), -0.2f);
  EXPECT_FLOAT_EQ(l.At(0, 0, 0, 2), 3.0f);

  ActivationLayer linear(Activation::kLinear);
  Tensor li = linear.Forward(in);
  EXPECT_FLOAT_EQ(li.At(0, 0, 0, 0), -2.0f);
}

TEST(LayerTest, MaxPoolHalvesAndTakesMax) {
  MaxPoolLayer pool(2, 2);
  Tensor in(1, 1, 4, 4);
  float v = 0.0f;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) in.At(0, 0, y, x) = v++;
  }
  Tensor out = pool.Forward(in);
  EXPECT_EQ(out.h(), 2);
  EXPECT_EQ(out.w(), 2);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.At(0, 0, 1, 1), 15.0f);
}

TEST(LayerTest, UpsampleDoubles) {
  UpsampleLayer up(2);
  Tensor in(1, 1, 2, 2);
  in.At(0, 0, 0, 0) = 1.0f;
  in.At(0, 0, 1, 1) = 4.0f;
  Tensor out = up.Forward(in);
  EXPECT_EQ(out.h(), 4);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(out.At(0, 0, 3, 3), 4.0f);
  EXPECT_FLOAT_EQ(out.At(0, 0, 3, 2), 4.0f);
}

TEST(LayerTest, UpsampleGenericFactor) {
  UpsampleLayer up(3);
  Tensor in(1, 1, 2, 2);
  in.At(0, 0, 1, 1) = 9.0f;
  Tensor out = up.Forward(in);
  EXPECT_EQ(out.h(), 6);
  EXPECT_FLOAT_EQ(out.At(0, 0, 5, 5), 9.0f);
  EXPECT_FLOAT_EQ(out.At(0, 0, 3, 3), 9.0f);
}

TEST(LayerTest, ConvLayerIdentityKernel) {
  // 1x1 conv with weight 1 is the identity.
  ConvLayer conv(1, 1, 1, 1, 0, {1.0f}, {0.0f}, Backend::kCpuNaive);
  Tensor in(1, 1, 3, 3);
  in.At(0, 0, 1, 1) = 2.5f;
  Tensor out = conv.Forward(in);
  EXPECT_FLOAT_EQ(out.At(0, 0, 1, 1), 2.5f);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 0.0f);
}

TEST(LayerTest, ConvBackendsAgree) {
  const int in_c = 3, out_c = 4, k = 3;
  std::vector<float> w(static_cast<std::size_t>(out_c) * in_c * k * k);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.01f * static_cast<float>(i % 17) - 0.05f;
  }
  std::vector<float> bias = {0.1f, -0.2f, 0.3f, 0.0f};
  Tensor in(1, in_c, 16, 16);
  for (int c = 0; c < in_c; ++c) {
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        in.At(0, c, y, x) = 0.1f * static_cast<float>((c + y + x) % 7);
      }
    }
  }
  ConvLayer closed(in_c, out_c, k, 1, 1, w, bias, Backend::kClosedSim);
  ConvLayer open(in_c, out_c, k, 1, 1, w, bias, Backend::kOpenSim);
  ConvLayer naive(in_c, out_c, k, 1, 1, w, bias, Backend::kCpuNaive);
  Tensor a = closed.Forward(in);
  Tensor b = open.Forward(in);
  Tensor c = naive.Forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], c.data()[i], 1e-4f);
    ASSERT_NEAR(b.data()[i], c.data()[i], 1e-4f);
  }
}

TEST(PreprocessTest, SameSizeNormalizesOnly) {
  Tensor frame(1, 3, 64, 64);
  frame.At(0, 0, 0, 0) = 255.0f;
  Tensor out = Preprocess(frame, 64, 64);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 1.0f);
}

TEST(PreprocessTest, ResizeSameAspect) {
  Tensor frame(1, 1, 32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) frame.At(0, 0, y, x) = 255.0f;
  }
  Tensor out = Preprocess(frame, 64, 64);
  EXPECT_EQ(out.h(), 64);
  EXPECT_FLOAT_EQ(out.At(0, 0, 32, 32), 1.0f);
}

TEST(PreprocessTest, LetterboxPadsOffAspect) {
  Tensor frame(1, 1, 32, 64);  // 2:1 — letterboxed into a square
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 64; ++x) frame.At(0, 0, y, x) = 255.0f;
  }
  Tensor out = Preprocess(frame, 64, 64);
  EXPECT_FLOAT_EQ(out.At(0, 0, 0, 0), 0.5f);   // top pad
  EXPECT_FLOAT_EQ(out.At(0, 0, 32, 32), 1.0f);  // content
  EXPECT_FLOAT_EQ(out.At(0, 0, 63, 0), 0.5f);   // bottom pad
}

TEST(DetectionTest, IouProperties) {
  Detection a{10, 10, 4, 4, 1.0f, 0};
  EXPECT_FLOAT_EQ(Iou(a, a), 1.0f);
  Detection far{100, 100, 4, 4, 1.0f, 0};
  EXPECT_FLOAT_EQ(Iou(a, far), 0.0f);
  Detection half{12, 10, 4, 4, 1.0f, 0};  // overlap 2x4=8, union 24
  EXPECT_NEAR(Iou(a, half), 8.0f / 24.0f, 1e-5f);
  EXPECT_NEAR(Iou(a, half), Iou(half, a), 1e-6f);  // symmetry
}

TEST(DetectionTest, NmsSuppressesOverlapsKeepsBest) {
  std::vector<Detection> dets = {
      {10, 10, 8, 8, 0.9f, 0},
      {11, 10, 8, 8, 0.8f, 0},   // overlaps the first -> suppressed
      {40, 40, 8, 8, 0.7f, 0},   // separate -> kept
      {11, 10, 8, 8, 0.75f, 1},  // overlaps but other class -> kept
  };
  auto kept = Nms(dets, 0.45f);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);  // sorted by score
}

TEST(DetectionTest, DecodeThresholds) {
  DetectorConfig cfg;
  cfg.input_h = cfg.input_w = 64;
  cfg.num_classes = 2;
  cfg.score_threshold = 0.5f;
  Tensor head(1, 7, 16, 16);  // logits default 0 -> sigmoid 0.5
  // One confident cell.
  head.At(0, 4, 8, 8) = 4.0f;  // objectness logit
  head.At(0, 5, 8, 8) = 2.0f;  // class 0
  // All other cells sit exactly at 0.5 — on the threshold, accepted; push
  // them below by lowering their objectness logits.
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (y == 8 && x == 8) continue;
      head.At(0, 4, y, x) = -4.0f;
    }
  }
  auto dets = DecodeDetections(head, cfg);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].cls, 0);
  EXPECT_NEAR(dets[0].x, (8 + 0.5f) * 4.0f, 1e-3f);
  EXPECT_GT(dets[0].score, 0.9f);
}

TEST(DetectorTest, BlobDetectorFindsBrightRectangle) {
  DetectorConfig cfg;
  cfg.backend = Backend::kClosedSim;
  TinyYoloDetector detector(cfg);
  InitBlobDetectorWeights(&detector);

  Tensor frame(1, 3, 64, 64);
  // Dark background, bright 16x16 blob centered at (24, 40) [x, y].
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) frame.At(0, c, y, x) = 20.0f;
    }
  }
  for (int c = 0; c < 3; ++c) {
    for (int y = 32; y < 48; ++y) {
      for (int x = 16; x < 32; ++x) frame.At(0, c, y, x) = 230.0f;
    }
  }
  auto dets = detector.Detect(frame);
  ASSERT_FALSE(dets.empty());
  // The best detection lands within the blob.
  const Detection& best = dets.front();
  EXPECT_GT(best.x, 12.0f);
  EXPECT_LT(best.x, 36.0f);
  EXPECT_GT(best.y, 28.0f);
  EXPECT_LT(best.y, 52.0f);
}

TEST(DetectorTest, EmptyFrameYieldsNoDetections) {
  DetectorConfig cfg;
  TinyYoloDetector detector(cfg);
  InitBlobDetectorWeights(&detector);
  Tensor frame(1, 3, 64, 64);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) frame.At(0, c, y, x) = 15.0f;
    }
  }
  auto dets = detector.Detect(frame);
  EXPECT_TRUE(dets.empty());
}

TEST(DetectorTest, BackendsProduceSameDetections) {
  Tensor frame(1, 3, 64, 64);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        frame.At(0, c, y, x) = (y >= 20 && y < 40 && x >= 20 && x < 40)
                                   ? 220.0f
                                   : 25.0f;
      }
    }
  }
  std::vector<std::vector<Detection>> results;
  for (Backend be :
       {Backend::kClosedSim, Backend::kOpenSim, Backend::kCpuNaive}) {
    DetectorConfig cfg;
    cfg.backend = be;
    TinyYoloDetector det(cfg);
    InitBlobDetectorWeights(&det);
    auto dets = det.Detect(frame);
    // Scores differ in the last ulp across backends (different summation
    // orders), so compare the detections as position-sorted sets.
    std::sort(dets.begin(), dets.end(),
              [](const Detection& a, const Detection& b) {
                return std::tie(a.y, a.x) < std::tie(b.y, b.x);
              });
    results.push_back(std::move(dets));
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  ASSERT_EQ(results[0].size(), results[2].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i].x, results[2][i].x, 0.5f);
    EXPECT_NEAR(results[1][i].x, results[2][i].x, 0.5f);
    EXPECT_NEAR(results[0][i].y, results[2][i].y, 0.5f);
    EXPECT_NEAR(results[1][i].y, results[2][i].y, 0.5f);
  }
}

TEST(WeightsBlobTest, RoundTrip) {
  std::vector<float> values = {1.5f, -2.25f, 0.0f, 1e6f};
  std::string buffer;
  ASSERT_TRUE(SerializeWeights(values, &buffer));
  WeightsBlob blob;
  std::string error;
  ASSERT_TRUE(DeserializeWeights(buffer, &blob, &error)) << error;
  EXPECT_EQ(blob.values, values);
}

TEST(WeightsBlobTest, RejectsCorruption) {
  std::vector<float> values = {1.0f, 2.0f};
  std::string buffer;
  SerializeWeights(values, &buffer);
  WeightsBlob blob;
  std::string error;

  std::string truncated = buffer.substr(0, 4);
  EXPECT_FALSE(DeserializeWeights(truncated, &blob, &error));
  EXPECT_EQ(error, "weight blob too short");

  std::string bad_magic = buffer;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeWeights(bad_magic, &blob, &error));
  EXPECT_EQ(error, "bad magic");

  std::string bad_payload = buffer + "zz";
  EXPECT_FALSE(DeserializeWeights(bad_payload, &blob, &error));
  EXPECT_EQ(error, "count does not match payload size");

  std::string flipped = buffer;
  flipped[9] = static_cast<char>(flipped[9] ^ 0x40);  // corrupt a float
  EXPECT_FALSE(DeserializeWeights(flipped, &blob, &error));
  EXPECT_EQ(error, "checksum mismatch");
}

}  // namespace
}  // namespace nn
