// Property tests for the batched detector engine: DetectBatch must be a
// pure batching of Detect — slot i bit-identical to the serial result for
// every backend, every batch size, and any host pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "nn/detector.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace nn {
namespace {

using certkit::support::Xoshiro256;

bool BitsEqual(float a, float b) {
  std::uint32_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

::testing::AssertionResult SameDetections(
    const std::vector<Detection>& a, const std::vector<Detection>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "count " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!BitsEqual(a[i].x, b[i].x) || !BitsEqual(a[i].y, b[i].y) ||
        !BitsEqual(a[i].w, b[i].w) || !BitsEqual(a[i].h, b[i].h) ||
        !BitsEqual(a[i].score, b[i].score) || a[i].cls != b[i].cls) {
      return ::testing::AssertionFailure() << "detection " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

// Random frames with integer pixel values (exact in float), square 64x64
// plus one odd size to exercise the resize front end inside the batch.
std::vector<Tensor> RandomFrames(int count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Tensor> frames;
  for (int i = 0; i < count; ++i) {
    const int hw = (i % 3 == 2) ? 96 : 64;
    Tensor f(1, 3, hw, hw);
    for (std::size_t j = 0; j < f.size(); ++j) {
      f.data()[j] = static_cast<float>(rng.UniformInt(0, 255));
    }
    frames.push_back(std::move(f));
  }
  return frames;
}

class DetectorBatchTest : public ::testing::TestWithParam<Backend> {};

TEST_P(DetectorBatchTest, BatchedMatchesSerialBitExactly) {
  DetectorConfig cfg;
  cfg.backend = GetParam();
  cfg.score_threshold = 0.3f;  // low bar: plenty of detections to compare
  TinyYoloDetector det(cfg);
  InitRandomWeights(&det, 77);

  const std::vector<Tensor> frames = RandomFrames(8, 123);
  std::vector<std::vector<Detection>> serial;
  for (const Tensor& f : frames) serial.push_back(det.Detect(f));

  for (const int batch : {1, 3, 8}) {
    std::size_t next = 0;
    while (next < frames.size()) {
      const std::size_t end =
          std::min(frames.size(), next + static_cast<std::size_t>(batch));
      const std::vector<Tensor> chunk(frames.begin() + next,
                                      frames.begin() + end);
      const auto batched = det.DetectBatch(chunk);
      ASSERT_EQ(batched.size(), chunk.size());
      for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_TRUE(SameDetections(batched[i], serial[next + i]))
            << "batch=" << batch << " frame=" << next + i;
      }
      next = end;
    }
  }
}

TEST_P(DetectorBatchTest, PooledBatchMatchesInlineBatch) {
  DetectorConfig cfg;
  cfg.backend = GetParam();
  cfg.score_threshold = 0.3f;
  TinyYoloDetector det(cfg);
  InitRandomWeights(&det, 78);

  const std::vector<Tensor> frames = RandomFrames(8, 456);
  const auto inline_result = det.DetectBatch(frames, nullptr);
  certkit::support::ThreadPool pool(4);
  const auto pooled_result = det.DetectBatch(frames, &pool);
  ASSERT_EQ(inline_result.size(), pooled_result.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(SameDetections(inline_result[i], pooled_result[i]))
        << "frame " << i;
  }
}

TEST_P(DetectorBatchTest, EmptyBatchYieldsEmptyResult) {
  DetectorConfig cfg;
  cfg.backend = GetParam();
  TinyYoloDetector det(cfg);
  InitRandomWeights(&det, 79);
  EXPECT_TRUE(det.DetectBatch({}).empty());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DetectorBatchTest,
                         ::testing::Values(Backend::kCpuNaive,
                                           Backend::kClosedSim,
                                           Backend::kOpenSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::kCpuNaive:
                               return "CpuNaive";
                             case Backend::kClosedSim:
                               return "ClosedSim";
                             default:
                               return "OpenSim";
                           }
                         });

}  // namespace
}  // namespace nn
