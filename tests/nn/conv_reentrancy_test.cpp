// Regression for the quantized-path reentrancy bug: ConvLayer's int8 mode
// must be safe to call concurrently on a SHARED layer. The original
// implementation flipped a member flag and recursed (disable quantization →
// call fp32 forward → restore flag), so two threads interleaving on one
// layer could run fp32 where int8 was requested, or vice versa, and TSan
// flagged the unsynchronized member writes. The fix threads quantization
// through the call: nothing in ForwardInto mutates the layer, and all int8
// scratch is thread_local.
//
// Labeled `concurrency` so the TSan tree (-DCERTKIT_SANITIZE=thread) races
// it with real instrumentation; in normal trees it is a determinism check
// (every thread must produce bit-identical output to the serial call).
#include <atomic>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace {

nn::Tensor MakeInput(int batch, int c, int h, int w, std::uint64_t seed) {
  nn::Tensor t(batch, c, h, w);
  certkit::support::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.UniformDouble(-4.0, 4.0));
  }
  return t;
}

TEST(ConvReentrancy, SharedQuantizedLayerIsRaceFreeAndDeterministic) {
  const int in_c = 3, out_c = 8, k = 3;
  std::vector<float> weights(static_cast<std::size_t>(out_c) * in_c * k * k);
  std::vector<float> bias(out_c);
  certkit::support::Xoshiro256 rng(0x5eedu);
  for (float& w : weights) w = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  for (float& b : bias) b = static_cast<float>(rng.UniformDouble(-0.5, 0.5));

  nn::ConvLayer shared(in_c, out_c, k, /*stride=*/1, /*pad=*/1, weights,
                       bias, nn::Backend::kCpuNaive);
  shared.SetInputQuantization(true);

  // Distinct inputs per worker: each thread must get ITS input's quantized
  // result, not a neighbor's mode or scale.
  constexpr int kWorkers = 8;
  constexpr int kRounds = 25;
  std::vector<nn::Tensor> inputs;
  std::vector<nn::Tensor> expected(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    inputs.push_back(MakeInput(1, in_c, 16, 16, 1000u + i));
    shared.ForwardInto(inputs.back(), &expected[static_cast<std::size_t>(i)]);
  }

  std::atomic<int> mismatches{0};
  certkit::support::ThreadPool pool(kWorkers);
  pool.ParallelFor(kWorkers * kRounds, [&](std::size_t job) {
    const std::size_t worker = job % kWorkers;
    nn::Tensor out;
    shared.ForwardInto(inputs[worker], &out);
    const nn::Tensor& want = expected[worker];
    if (out.size() != want.size() ||
        std::memcmp(out.data(), want.data(),
                    out.size() * sizeof(float)) != 0) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent quantized forwards diverged from the serial result";
}

TEST(ConvReentrancy, QuantizationModeIsNotMutatedByForward) {
  const int in_c = 2, out_c = 4, k = 3;
  std::vector<float> weights(static_cast<std::size_t>(out_c) * in_c * k * k,
                             0.25f);
  nn::ConvLayer layer(in_c, out_c, k, 1, 1, weights, {},
                      nn::Backend::kCpuNaive);
  layer.SetInputQuantization(true);
  const nn::Tensor input = MakeInput(1, in_c, 8, 8, 7u);
  nn::Tensor out;
  layer.ForwardInto(input, &out);
  // The old implementation left a window where this read false.
  EXPECT_TRUE(layer.input_quantization());
}

}  // namespace
