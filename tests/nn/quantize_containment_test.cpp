// Non-finite containment of the quantization path (the FakeQuantizeTensor
// bug sweep) plus the int8-vs-fp32 accuracy gate.
//
// Bug class under test: a NaN or ±inf activation makes amax — and therefore
// the int8 scale — undefined; the original FakeQuantizeTensor computed
// scale = inf / 127 and rewrote the WHOLE tensor to NaN, laundering a
// single bad sensor value into total detector blindness before the safety
// layer's range monitor could see it. The contract now: any non-finite
// input (and the degenerate all-zero tensor) disables quantization for that
// call — FakeQuantizeTensor is a no-op, ConvLayer falls through to the
// bit-exact fp32 path — so the original values reach the monitors intact.
// The replay differential oracle pins the same behavior end-to-end: a
// quantized replay arm must diverge from fp32 only through the int8 grid,
// never through containment-path differences.
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "nn/layers.h"
#include "support/rng.h"

namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

nn::Tensor MakeInput(int c, int h, int w, std::uint64_t seed) {
  nn::Tensor t(1, c, h, w);
  certkit::support::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.UniformDouble(-8.0, 8.0));
  }
  return t;
}

TEST(QuantizeContainment, FakeQuantizeSkipsTensorsWithNonFiniteValues) {
  for (const float poison : {kNan, kInf, -kInf}) {
    nn::Tensor t = MakeInput(2, 4, 4, 99u);
    std::vector<float> original(t.data(), t.data() + t.size());
    t.data()[7] = poison;
    original[7] = poison;

    nn::FakeQuantizeTensor(&t);

    // Bitwise no-op: every value, including the poison itself, unchanged.
    EXPECT_EQ(std::memcmp(t.data(), original.data(),
                          t.size() * sizeof(float)),
              0)
        << "FakeQuantizeTensor modified a tensor containing " << poison;
  }
}

TEST(QuantizeContainment, FakeQuantizeSkipsAllZeroTensor) {
  nn::Tensor t(1, 1, 3, 3);  // zero-initialized
  nn::FakeQuantizeTensor(&t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.data()[i], 0.0f);
  }
}

TEST(QuantizeContainment, FakeQuantizeSnapsFiniteTensorToInt8Grid) {
  nn::Tensor t = MakeInput(1, 5, 5, 3u);
  float amax = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    amax = std::max(amax, std::fabs(t.data()[i]));
  }
  nn::FakeQuantizeTensor(&t);
  const float scale = amax / 127.0f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const float steps = t.data()[i] / scale;
    EXPECT_NEAR(steps, std::round(steps), 1e-3f)
        << "value not on the int8 grid at index " << i;
  }
}

// A quantized ConvLayer fed a non-finite input must produce the EXACT fp32
// result (containment = fall through, not "quantize around the hole"), and
// the non-finite value must propagate to the output where the range monitor
// can reject it.
TEST(QuantizeContainment, ConvFallsBackToFp32BitExactOnNonFiniteInput) {
  const int in_c = 3, out_c = 6, k = 3;
  std::vector<float> weights(static_cast<std::size_t>(out_c) * in_c * k * k);
  certkit::support::Xoshiro256 rng(0xC0FFEEu);
  for (float& w : weights) w = static_cast<float>(rng.UniformDouble(-1, 1));

  nn::ConvLayer fp32(in_c, out_c, k, 1, 1, weights, {},
                     nn::Backend::kCpuNaive);
  nn::ConvLayer quant(in_c, out_c, k, 1, 1, weights, {},
                      nn::Backend::kCpuNaive);
  quant.SetInputQuantization(true);

  nn::Tensor input = MakeInput(in_c, 12, 12, 42u);
  input.At(0, 1, 6, 6) = kNan;

  nn::Tensor want, got;
  fp32.ForwardInto(input, &want);
  quant.ForwardInto(input, &got);

  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)),
            0)
      << "quantized layer did not fall back to the bit-exact fp32 path";

  bool saw_non_finite = false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!std::isfinite(got.data()[i])) saw_non_finite = true;
  }
  EXPECT_TRUE(saw_non_finite)
      << "the poison value was laundered instead of propagated";
}

// Accuracy gate for the true int8 path: on finite inputs the quantized
// output must track fp32 within the theoretical grid error. Per-element
// error is bounded by the dot-product error sum: K * (in_step * |w|max +
// w_step * |x|max + in_step * w_step), with steps = amax/127. The gate
// asserts a comfortable multiple — failures mean scale bookkeeping broke,
// not that rounding drifted.
TEST(QuantizeContainment, Int8PathTracksFp32WithinGridErrorBound) {
  const int in_c = 3, out_c = 8, k = 3, hw = 16;
  std::vector<float> weights(static_cast<std::size_t>(out_c) * in_c * k * k);
  std::vector<float> bias(out_c);
  certkit::support::Xoshiro256 rng(0xBEEFu);
  for (float& w : weights) w = static_cast<float>(rng.UniformDouble(-1, 1));
  for (float& b : bias) b = static_cast<float>(rng.UniformDouble(-1, 1));

  nn::ConvLayer fp32(in_c, out_c, k, 1, 1, weights, bias,
                     nn::Backend::kCpuNaive);
  nn::ConvLayer quant(in_c, out_c, k, 1, 1, weights, bias,
                      nn::Backend::kCpuNaive);
  quant.SetInputQuantization(true);

  const nn::Tensor input = MakeInput(in_c, hw, hw, 1234u);
  float in_amax = 0.0f, w_amax = 0.0f;
  for (std::size_t i = 0; i < input.size(); ++i) {
    in_amax = std::max(in_amax, std::fabs(input.data()[i]));
  }
  for (const float w : weights) w_amax = std::max(w_amax, std::fabs(w));
  const float in_step = in_amax / 127.0f;
  const float w_step = w_amax / 127.0f;
  const float patch = static_cast<float>(in_c) * k * k;
  // Half-step rounding on each operand, summed over the K-dot-product.
  const float bound =
      patch * 0.5f *
          (in_step * w_amax + w_step * in_amax + in_step * w_step) +
      1e-4f;

  nn::Tensor want, got;
  fp32.ForwardInto(input, &want);
  quant.ForwardInto(input, &got);
  ASSERT_EQ(got.size(), want.size());

  float max_abs_err = 0.0f;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_abs_err = std::max(max_abs_err,
                           std::fabs(got.data()[i] - want.data()[i]));
  }
  EXPECT_LE(max_abs_err, bound)
      << "int8 path drifted past the quantization-grid error bound";
  // And it must actually quantize: bit-identical output would mean the int8
  // path silently fell back to fp32 (the differential oracle relies on the
  // arms diverging).
  EXPECT_NE(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)),
            0)
      << "quantized arm is bit-identical to fp32 — int8 path did not run";
}

}  // namespace
