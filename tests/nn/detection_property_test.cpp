// Property tests for detection decoding and non-maximum suppression.
#include <gtest/gtest.h>

#include "coverage/coverage.h"
#include "nn/detector.h"
#include "support/rng.h"

namespace nn {
namespace {

using certkit::support::Xoshiro256;

std::vector<Detection> RandomDetections(int n, Xoshiro256& rng) {
  std::vector<Detection> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Detection d;
    d.x = static_cast<float>(rng.UniformDouble(0.0, 64.0));
    d.y = static_cast<float>(rng.UniformDouble(0.0, 64.0));
    d.w = static_cast<float>(rng.UniformDouble(2.0, 16.0));
    d.h = static_cast<float>(rng.UniformDouble(2.0, 16.0));
    d.score = static_cast<float>(rng.UniformDouble(0.01, 1.0));
    d.cls = static_cast<int>(rng.UniformInt(0, 1));
    out.push_back(d);
  }
  return out;
}

TEST(NmsPropertyTest, IdempotentOnItsOwnOutput) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    auto dets = RandomDetections(30, rng);
    auto once = Nms(dets, 0.45f);
    auto twice = Nms(once, 0.45f);
    ASSERT_EQ(once.size(), twice.size()) << "trial " << trial;
  }
}

TEST(NmsPropertyTest, OutputIsSubsetAndSorted) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    auto dets = RandomDetections(25, rng);
    auto kept = Nms(dets, 0.45f);
    ASSERT_LE(kept.size(), dets.size());
    for (std::size_t i = 1; i < kept.size(); ++i) {
      ASSERT_GE(kept[i - 1].score, kept[i].score);
    }
    // No two same-class survivors overlap above the threshold.
    for (std::size_t i = 0; i < kept.size(); ++i) {
      for (std::size_t j = i + 1; j < kept.size(); ++j) {
        if (kept[i].cls != kept[j].cls) continue;
        ASSERT_LE(Iou(kept[i], kept[j]), 0.45f + 1e-5f);
      }
    }
  }
}

TEST(NmsPropertyTest, ThresholdOneKeepsEverything) {
  Xoshiro256 rng(7);
  auto dets = RandomDetections(15, rng);
  // IoU can never exceed 1, so threshold 1.0 suppresses nothing.
  EXPECT_EQ(Nms(dets, 1.0f).size(), dets.size());
}

TEST(NmsPropertyTest, ThresholdZeroLeavesDisjointPerClass) {
  Xoshiro256 rng(8);
  auto dets = RandomDetections(25, rng);
  auto kept = Nms(dets, 0.0f);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      if (kept[i].cls != kept[j].cls) continue;
      ASSERT_EQ(Iou(kept[i], kept[j]), 0.0f);
    }
  }
}

TEST(IouPropertyTest, RangeAndSymmetry) {
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    auto pair = RandomDetections(2, rng);
    const float ab = Iou(pair[0], pair[1]);
    const float ba = Iou(pair[1], pair[0]);
    ASSERT_GE(ab, 0.0f);
    ASSERT_LE(ab, 1.0f + 1e-6f);
    ASSERT_NEAR(ab, ba, 1e-6f);
  }
}

TEST(DecodePropertyTest, AllDetectionsWithinImageAfterClamp) {
  DetectorConfig cfg;
  cfg.num_classes = 2;
  cfg.score_threshold = 0.3f;
  Xoshiro256 rng(10);
  Tensor head(1, 7, 16, 16);
  for (std::size_t i = 0; i < head.size(); ++i) {
    head.data()[i] = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }
  const auto dets = DecodeDetections(head, cfg);
  for (const auto& d : dets) {
    ASSERT_GE(d.x - d.w / 2, -1e-3f);
    ASSERT_LE(d.x + d.w / 2, 64.0f + 1e-3f);
    ASSERT_GE(d.y - d.h / 2, -1e-3f);
    ASSERT_LE(d.y + d.h / 2, 64.0f + 1e-3f);
    ASSERT_GE(d.score, cfg.score_threshold);
    ASSERT_GE(d.cls, 0);
    ASSERT_LT(d.cls, cfg.num_classes);
  }
}

// MC/DC boundary of the class-argmax decision (d_class_better, the third
// decision declared by yolo/detection.cc, id 2). Its loop runs for
// c in [1, num_classes): with num_classes == 1 the body is DEAD — the
// decision must record no outcome at all, making its MC/DC obligation
// vacuous rather than unsatisfied. One extra class makes the same decision
// observable, which pins the boundary from both sides.
TEST(DecodeMcdcTest, SingleClassNeverEvaluatesClassArgmax) {
  DetectorConfig cfg;
  cfg.num_classes = 1;
  cfg.score_threshold = 0.0f;  // accept every cell: the argmax is reached
  Xoshiro256 rng(12);
  Tensor head(1, 6, 4, 4);
  for (std::size_t i = 0; i < head.size(); ++i) {
    head.data()[i] = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }

  certkit::cov::ThreadCapture capture;
  const auto dets = DecodeDetections(head, cfg);
  const certkit::cov::CoverSet cover = capture.Take();

  ASSERT_FALSE(dets.empty());
  for (const auto& d : dets) EXPECT_EQ(d.cls, 0);
  const auto unit = cover.find("yolo/detection.cc");
  ASSERT_NE(unit, cover.end());
  const auto dec = unit->second.decisions.find(2);
  if (dec != unit->second.decisions.end()) {
    EXPECT_FALSE(dec->second.seen_true);
    EXPECT_FALSE(dec->second.seen_false);
    EXPECT_TRUE(dec->second.vectors.empty());
  }
}

TEST(DecodeMcdcTest, TwoClassesEvaluateClassArgmax) {
  DetectorConfig cfg;
  cfg.num_classes = 2;
  cfg.score_threshold = 0.0f;
  Xoshiro256 rng(13);
  Tensor head(1, 7, 4, 4);
  for (std::size_t i = 0; i < head.size(); ++i) {
    head.data()[i] = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }

  certkit::cov::ThreadCapture capture;
  const auto dets = DecodeDetections(head, cfg);
  const certkit::cov::CoverSet cover = capture.Take();

  ASSERT_FALSE(dets.empty());
  const auto unit = cover.find("yolo/detection.cc");
  ASSERT_NE(unit, cover.end());
  const auto dec = unit->second.decisions.find(2);
  ASSERT_NE(dec, unit->second.decisions.end());
  // 16 cells of Gaussian scores: both orderings of the two classes occur.
  EXPECT_TRUE(dec->second.seen_true);
  EXPECT_TRUE(dec->second.seen_false);
  EXPECT_FALSE(dec->second.vectors.empty());
}

TEST(DecodePropertyTest, HigherThresholdIsSubset) {
  DetectorConfig low_cfg, high_cfg;
  low_cfg.score_threshold = 0.3f;
  high_cfg.score_threshold = 0.7f;
  Xoshiro256 rng(11);
  Tensor head(1, 7, 16, 16);
  for (std::size_t i = 0; i < head.size(); ++i) {
    head.data()[i] = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }
  const auto low = DecodeDetections(head, low_cfg);
  const auto high = DecodeDetections(head, high_cfg);
  EXPECT_LE(high.size(), low.size());
  for (const auto& d : high) {
    ASSERT_GE(d.score, 0.7f);
  }
}

}  // namespace
}  // namespace nn
