// Integration tests: the complete measurement pipelines the benches rely on,
// asserted end-to-end — corpus generation through assessment, detector
// coverage bands, closed-loop driving with architectural coverage, and the
// CLI-style codebase loading of this repository's own sources.
#include <gtest/gtest.h>

#include "ad/pipeline.h"
#include "corpus/analyze.h"
#include "corpus/generator.h"
#include "coverage/coverage.h"
#include "rules/assessor.h"
#include "rules/coverage_assessor.h"

namespace {

using certkit::corpus::AnalyzeGeneratedCorpus;
using certkit::corpus::ApolloLikeSpec;
using certkit::corpus::GenerateCorpus;

// The corpus is expensive to build; share one instance across tests.
const certkit::corpus::CorpusAnalysis& Corpus() {
  static const auto* analysis = [] {
    auto corpus = GenerateCorpus(ApolloLikeSpec(), 26262);
    auto analyzed = AnalyzeGeneratedCorpus(corpus);
    CERTKIT_CHECK_MSG(analyzed.ok(), analyzed.status().ToString());
    return new certkit::corpus::CorpusAnalysis(
        std::move(analyzed).value());
  }();
  return *analysis;
}

TEST(EndToEndTest, CorpusReproducesFigure3Headline) {
  const auto& corpus = Corpus();
  std::int64_t loc = 0;
  std::int32_t over10 = 0;
  for (const auto& mod : corpus.modules) {
    loc += mod.metrics.loc;
    over10 += mod.metrics.FunctionsOverCc(10);
  }
  EXPECT_EQ(over10, 554);  // the paper's exact headline
  EXPECT_GT(loc, 220000);  // "more than 220k LOC"
  EXPECT_EQ(corpus.modules.size(), 9u);
  for (const auto& mod : corpus.modules) {
    EXPECT_GE(mod.metrics.loc, 5000) << mod.name;   // Observation 13 band
    EXPECT_LE(mod.metrics.loc, 65000) << mod.name;
  }
}

TEST(EndToEndTest, AssessorVerdictsMatchPaperObservations) {
  const auto& corpus = Corpus();
  certkit::rules::Assessor assessor(corpus.MakeAssessorInputs());

  const auto t1 = assessor.AssessCodingGuidelines();
  using certkit::rules::Verdict;
  EXPECT_EQ(t1.assessments[0].verdict, Verdict::kNonCompliant);  // Obs 1
  EXPECT_EQ(t1.assessments[1].verdict, Verdict::kNonCompliant);  // Obs 2
  EXPECT_EQ(t1.assessments[2].verdict, Verdict::kNonCompliant);  // Obs 5
  EXPECT_EQ(t1.assessments[3].verdict, Verdict::kNonCompliant);  // Obs 6
  EXPECT_EQ(t1.assessments[4].verdict, Verdict::kNonCompliant);  // Obs 7
  EXPECT_EQ(t1.assessments[5].verdict, Verdict::kNotApplicable);
  EXPECT_EQ(t1.assessments[6].verdict, Verdict::kCompliant);  // Obs 8
  EXPECT_EQ(t1.assessments[7].verdict, Verdict::kCompliant);  // Obs 9

  EXPECT_EQ(assessor.total_explicit_casts(), 1420);  // "> 1,400"

  // Table 3 row 1: the perception module's multi-exit rate is the paper's
  // 41% figure.
  for (const auto& ud : assessor.unit_design()) {
    if (ud.stats.module == "perception") {
      EXPECT_NEAR(ud.stats.MultiExitFraction(), 0.41, 0.01);
      EXPECT_EQ(ud.stats.mutable_globals, 900);
    }
  }
}

TEST(EndToEndTest, DetectorCoverageInFigure5Band) {
  // Run the detector across scenarios and assert the Figure-5 shape:
  // coverage below 100%, MC/DC the weakest criterion.
  certkit::cov::Registry::Instance().ResetAll();
  certkit::cov::SetProbesEnabled(true);
  {
    adpilot::ScenarioConfig cfg;
    cfg.num_vehicles = 3;
    cfg.seed = 111;
    adpilot::Scenario scenario(cfg);
    adpilot::Perception perception;
    adpilot::Pose ego{{0.0, -2.0}, 0.0};
    for (int tick = 0; tick < 10; ++tick) {
      scenario.Step(0.1);
      auto frame = scenario.RenderCameraFrame(ego);
      perception.Process(frame, ego, 0.1);
    }
  }
  std::vector<certkit::cov::CoverageRow> rows;
  for (const auto& row : certkit::cov::Snapshot()) {
    if (row.unit.rfind("yolo/", 0) == 0) rows.push_back(row);
  }
  ASSERT_GE(rows.size(), 8u);
  const auto avg = certkit::cov::Average(rows);
  EXPECT_GT(avg.statement, 0.30);
  EXPECT_LT(avg.statement, 1.00);
  EXPECT_GT(avg.branch, 0.30);
  EXPECT_LT(avg.branch, 1.00);
  EXPECT_LT(avg.mcdc, avg.branch);  // MC/DC is the hardest criterion

  // And the Table-10 verdicts cannot be met at ASIL D with these tests
  // (Observation 10).
  const auto assessment = certkit::rules::AssessUnitCoverage(rows);
  EXPECT_FALSE(certkit::rules::MeetsAsil(
      certkit::rules::UnitCoverageTable(), assessment,
      certkit::rules::Asil::kD));
}

TEST(EndToEndTest, ClosedLoopDriveReachesFullArchitecturalCoverage) {
  auto& unit =
      certkit::cov::Registry::Instance().GetOrCreate("adpilot/pipeline.cc");
  unit.Reset();
  adpilot::PilotConfig cfg;
  cfg.scenario.seed = 55;
  adpilot::ApolloPilot pilot(cfg);
  pilot.Run(2.0);
  EXPECT_DOUBLE_EQ(unit.FunctionCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(unit.CallCoverage(), 1.0);
  EXPECT_GT(pilot.MinClearanceSoFar(), 0.0);
}

TEST(EndToEndTest, CorpusAssessmentIsDeterministic) {
  auto corpus_a = GenerateCorpus(ApolloLikeSpec(), 7);
  auto corpus_b = GenerateCorpus(ApolloLikeSpec(), 7);
  ASSERT_EQ(corpus_a.size(), corpus_b.size());
  for (std::size_t i = 0; i < corpus_a.size(); ++i) {
    ASSERT_EQ(corpus_a[i].files.size(), corpus_b[i].files.size());
    for (std::size_t f = 0; f < corpus_a[i].files.size(); ++f) {
      ASSERT_EQ(corpus_a[i].files[f].content, corpus_b[i].files[f].content);
    }
  }
}

}  // namespace
