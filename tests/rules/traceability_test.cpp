// Tests for requirement-to-code traceability.
#include "rules/traceability.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace certkit::rules {
namespace {

ast::SourceFileModel ParseWithComments(std::string_view src) {
  ast::ParseOptions opts;
  opts.lex_options.keep_comments = true;
  auto r = ast::ParseSource("trace.cc", src, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ExtractTagsTest, BasicForms) {
  EXPECT_EQ(ExtractRequirementTags("// REQ-PLAN-001: plan safely"),
            (std::vector<std::string>{"REQ-PLAN-001"}));
  EXPECT_EQ(ExtractRequirementTags("/* covers REQ-A1 and REQ-B2 */"),
            (std::vector<std::string>{"REQ-A1", "REQ-B2"}));
  EXPECT_TRUE(ExtractRequirementTags("no tags here").empty());
}

TEST(ExtractTagsTest, RejectsEmbeddedAndEmpty) {
  // Suffix of a longer identifier is not a tag.
  EXPECT_TRUE(ExtractRequirementTags("FOO_REQ-123").empty());
  // Bare "REQ-" with nothing after it is not a tag.
  EXPECT_TRUE(ExtractRequirementTags("see REQ- for details").empty());
  // Trailing punctuation is trimmed.
  EXPECT_EQ(ExtractRequirementTags("REQ-X9."),
            (std::vector<std::string>{"REQ-X9"}));
}

TEST(ExtractTagsTest, LowercaseStopsTheTag) {
  EXPECT_EQ(ExtractRequirementTags("REQ-ABCdef"),
            (std::vector<std::string>{"REQ-ABC"}));
}

TEST(TraceabilityTest, CommentAboveFunctionLinks) {
  auto model = ParseWithComments(
      "// REQ-CTRL-001: the controller shall bound steering.\n"
      "double Clamp(double v) { return v; }\n"
      "double Untraced(double v) { return v; }\n");
  TraceReport report = AnalyzeTraceability(model);
  ASSERT_EQ(report.links.size(), 1u);
  EXPECT_EQ(report.links[0].requirement, "REQ-CTRL-001");
  EXPECT_EQ(report.links[0].function, "Clamp");
  ASSERT_EQ(report.untraced_functions.size(), 1u);
  EXPECT_EQ(report.untraced_functions[0], "Untraced");
  EXPECT_DOUBLE_EQ(report.TraceabilityRatio(), 0.5);
}

TEST(TraceabilityTest, CommentInsideFunctionLinksToIt) {
  auto model = ParseWithComments(
      "int f(int x) {\n"
      "  // REQ-SAFE-7: reject negative inputs\n"
      "  if (x < 0) { return -1; }\n"
      "  return x;\n"
      "}\n");
  TraceReport report = AnalyzeTraceability(model);
  ASSERT_EQ(report.links.size(), 1u);
  EXPECT_EQ(report.links[0].function, "f");
  EXPECT_TRUE(report.untraced_functions.empty());
}

TEST(TraceabilityTest, MultipleTagsOneFunction) {
  auto model = ParseWithComments(
      "// Implements REQ-A-1 and REQ-A-2.\n"
      "void g() {}\n");
  TraceReport report = AnalyzeTraceability(model);
  EXPECT_EQ(report.links.size(), 2u);
  EXPECT_EQ(report.Requirements(),
            (std::vector<std::string>{"REQ-A-1", "REQ-A-2"}));
}

TEST(TraceabilityTest, DanglingTagHasEmptyFunction) {
  auto model = ParseWithComments(
      "void h() {}\n"
      "// REQ-LOST-1: text after the last function\n");
  TraceReport report = AnalyzeTraceability(model);
  ASSERT_EQ(report.links.size(), 1u);
  EXPECT_TRUE(report.links[0].function.empty());
}

TEST(TraceabilityTest, WithoutKeptCommentsEverythingUntraced) {
  auto r = ast::ParseSource("t.cc",
                            "// REQ-X-1\nvoid f() {}\n");  // default options
  ASSERT_TRUE(r.ok());
  TraceReport report = AnalyzeTraceability(r.value());
  EXPECT_TRUE(report.links.empty());
  EXPECT_EQ(report.untraced_functions.size(), 1u);
}

TEST(TraceabilityTest, MergeAccumulates) {
  auto a = AnalyzeTraceability(ParseWithComments(
      "// REQ-M-1\nvoid f1() {}\n"));
  auto b = AnalyzeTraceability(ParseWithComments(
      "void f2() {}\n"));
  TraceReport merged = MergeTraceReports({a, b});
  EXPECT_EQ(merged.functions_total, 2);
  EXPECT_EQ(merged.links.size(), 1u);
  EXPECT_EQ(merged.untraced_functions.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.TraceabilityRatio(), 0.5);
}

}  // namespace
}  // namespace certkit::rules
