// Unit tests for the ISO 26262 technique tables and the assessor.
#include <gtest/gtest.h>

#include "ast/parser.h"
#include "metrics/module_metrics.h"
#include "rules/assessor.h"
#include "rules/iso26262.h"

namespace certkit::rules {
namespace {

TEST(Iso26262TablesTest, Table1MatchesPaper) {
  const TechniqueTable& t = CodingGuidelinesTable();
  ASSERT_EQ(t.techniques.size(), 8u);
  // Row 1 "Enforcement of low complexity": ++ across all ASIL.
  for (Asil a : {Asil::kA, Asil::kB, Asil::kC, Asil::kD}) {
    EXPECT_EQ(t.techniques[0].At(a), Recommendation::kHighlyRecommended);
  }
  // Row 4 "defensive implementation": o + ++ ++.
  EXPECT_EQ(t.techniques[3].At(Asil::kA), Recommendation::kNone);
  EXPECT_EQ(t.techniques[3].At(Asil::kB), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[3].At(Asil::kC),
            Recommendation::kHighlyRecommended);
  EXPECT_EQ(t.techniques[3].At(Asil::kD),
            Recommendation::kHighlyRecommended);
  // Row 5 "established design principles": + + + ++.
  EXPECT_EQ(t.techniques[4].At(Asil::kC), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[4].At(Asil::kD),
            Recommendation::kHighlyRecommended);
  // Everything is ++ at ASIL D except nothing — all 8 rows are ++ at D? No:
  // rows 5 is ++ at D; per the paper "all elements are highly recommended
  // for ASIL D".
  for (const auto& tech : t.techniques) {
    EXPECT_EQ(tech.At(Asil::kD), Recommendation::kHighlyRecommended)
        << tech.name;
  }
}

TEST(Iso26262TablesTest, Table3MatchesPaper) {
  const TechniqueTable& t = ArchitecturalDesignTable();
  ASSERT_EQ(t.techniques.size(), 7u);
  // Row 3 "Restricted size of interfaces": + at every ASIL.
  for (Asil a : {Asil::kA, Asil::kB, Asil::kC, Asil::kD}) {
    EXPECT_EQ(t.techniques[2].At(a), Recommendation::kRecommended);
  }
  // Row 7 "Restricted use of interrupts": + + + ++.
  EXPECT_EQ(t.techniques[6].At(Asil::kA), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[6].At(Asil::kD),
            Recommendation::kHighlyRecommended);
}

TEST(Iso26262TablesTest, Table8MatchesPaper) {
  const TechniqueTable& t = UnitDesignTable();
  ASSERT_EQ(t.techniques.size(), 10u);
  // Row 6 "Limited use of pointers": o + + ++.
  EXPECT_EQ(t.techniques[5].At(Asil::kA), Recommendation::kNone);
  EXPECT_EQ(t.techniques[5].At(Asil::kB), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[5].At(Asil::kC), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[5].At(Asil::kD),
            Recommendation::kHighlyRecommended);
  // Row 10 "No recursions": + + ++ ++.
  EXPECT_EQ(t.techniques[9].At(Asil::kA), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[9].At(Asil::kC),
            Recommendation::kHighlyRecommended);
}

TEST(Iso26262TablesTest, SatisfiesSemantics) {
  EXPECT_TRUE(Satisfies(Verdict::kCompliant,
                        Recommendation::kHighlyRecommended));
  EXPECT_FALSE(Satisfies(Verdict::kPartial,
                         Recommendation::kHighlyRecommended));
  EXPECT_TRUE(Satisfies(Verdict::kPartial, Recommendation::kRecommended));
  EXPECT_FALSE(Satisfies(Verdict::kNonCompliant,
                         Recommendation::kRecommended));
  EXPECT_TRUE(Satisfies(Verdict::kNonCompliant, Recommendation::kNone));
  EXPECT_TRUE(Satisfies(Verdict::kNotApplicable,
                        Recommendation::kHighlyRecommended));
}

TEST(Iso26262TablesTest, MarksRoundTrip) {
  EXPECT_STREQ(RecommendationMark(Recommendation::kNone), "o");
  EXPECT_STREQ(RecommendationMark(Recommendation::kRecommended), "+");
  EXPECT_STREQ(RecommendationMark(Recommendation::kHighlyRecommended), "++");
}

// --- assessor ---

std::vector<metrics::ModuleAnalysis> OneModule(std::string_view src) {
  auto r = ast::ParseSource("m/f.cc", src);
  EXPECT_TRUE(r.ok());
  std::vector<ast::SourceFileModel> files;
  files.push_back(std::move(r).value());
  std::vector<metrics::ModuleAnalysis> mods;
  mods.push_back(metrics::AnalyzeModule("m", std::move(files)));
  return mods;
}

TEST(AssessorTest, CleanCodeIsLargelyCompliant) {
  auto mods = OneModule(
      "int add(int a, int b) {\n"
      "  if (a < 0) { return 0; }\n"
      "  if (b < 0) { return 0; }\n"
      "  return a + b;\n"
      "}\n");
  Assessor assessor(&mods);
  TableAssessment t1 = assessor.AssessCodingGuidelines();
  ASSERT_EQ(t1.assessments.size(), 8u);
  // Row 1 (low complexity): compliant — CC is 3.
  EXPECT_EQ(t1.assessments[0].verdict, Verdict::kCompliant);
  // Row 3 (strong typing): no casts.
  EXPECT_EQ(t1.assessments[2].verdict, Verdict::kCompliant);
  // Row 6 always N/A for C++.
  EXPECT_EQ(t1.assessments[5].verdict, Verdict::kNotApplicable);
}

TEST(AssessorTest, CastsDegradeStrongTyping) {
  std::string src = "void f(double d) {\n";
  for (int i = 0; i < 50; ++i) {
    src += "  int v" + std::to_string(i) + " = (int)d; (void)v" +
           std::to_string(i) + ";\n";
  }
  src += "}\n";
  auto mods = OneModule(src);
  Assessor assessor(&mods);
  TableAssessment t1 = assessor.AssessCodingGuidelines();
  EXPECT_EQ(t1.assessments[2].verdict, Verdict::kNonCompliant);
  EXPECT_GE(assessor.total_explicit_casts(), 50);
}

TEST(AssessorTest, UnitDesignTableHasTenRows) {
  auto mods = OneModule("int f(int x) { return x; }\n");
  Assessor assessor(&mods);
  TableAssessment t3 = assessor.AssessUnitDesign();
  ASSERT_EQ(t3.assessments.size(), 10u);
  for (const auto& a : t3.assessments) {
    EXPECT_FALSE(a.evidence.empty());
  }
}

TEST(AssessorTest, ArchitectureTableHasSevenRows) {
  auto mods = OneModule("void f() {}\n");
  Assessor assessor(&mods);
  TableAssessment t2 = assessor.AssessArchitecture();
  ASSERT_EQ(t2.assessments.size(), 7u);
}

TEST(AssessorTest, GotoMakesRow9NonCompliant) {
  auto mods = OneModule(
      "int f(int x) { if (x) goto out; x = 2; out: return x; }\n");
  Assessor assessor(&mods);
  TableAssessment t3 = assessor.AssessUnitDesign();
  EXPECT_EQ(t3.assessments[8].verdict, Verdict::kNonCompliant);
}

TEST(AssessorTest, FunctionsCcOverThreshold) {
  std::string body;
  for (int i = 0; i < 15; ++i) {
    body += "if (x > " + std::to_string(i) + ") ++x;\n";
  }
  auto mods = OneModule("int f(int x) {\n" + body + "return x;\n}\n");
  Assessor assessor(&mods);
  EXPECT_EQ(assessor.functions_cc_over(10), 1);  // CC = 16
  EXPECT_EQ(assessor.functions_cc_over(20), 0);
}

}  // namespace
}  // namespace certkit::rules
