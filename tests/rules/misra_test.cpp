// Unit tests for the MISRA-subset checker.
#include "rules/misra.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace certkit::rules {
namespace {

CheckReport Check(std::string_view src, const MisraOptions& opts = {}) {
  auto r = ast::ParseSource("test.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return CheckMisra(r.value(), opts);
}

TEST(MisraTest, GotoFlagged) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  if (x) goto out;\n"
      "  x = 1;\n"
      "out:\n"
      "  return x;\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-15.1"), 1);
}

TEST(MisraTest, MultipleReturnsFlagged) {
  CheckReport rep = Check(
      "int f(int x) { if (x) { return 1; } return 0; }");
  EXPECT_EQ(rep.CountRule("MISRA-15.5"), 1);
}

TEST(MisraTest, SingleReturnClean) {
  CheckReport rep = Check("int f(int x) { int r = x; return r; }");
  EXPECT_EQ(rep.CountRule("MISRA-15.5"), 0);
}

TEST(MisraTest, DirectRecursionFlagged) {
  CheckReport rep = Check(
      "int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }");
  EXPECT_EQ(rep.CountRule("MISRA-17.2"), 1);
}

TEST(MisraTest, MallocAndFreeFlagged) {
  CheckReport rep = Check(
      "void f(int n) {\n"
      "  int* p = (int*)malloc(n);\n"
      "  free(p);\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-21.3"), 2);
}

TEST(MisraTest, NewDeleteFlaggedAsDialectAnalogue) {
  CheckReport rep = Check("void f() { int* p = new int; delete p; }");
  EXPECT_EQ(rep.CountRule("MISRA-21.3"), 2);
}

TEST(MisraTest, NewDeleteIgnoredWhenAnaloguesOff) {
  MisraOptions opts;
  opts.include_dialect_analogues = false;
  CheckReport rep = Check("void f() { int* p = new int; delete p; }", opts);
  EXPECT_EQ(rep.CountRule("MISRA-21.3"), 0);
}

TEST(MisraTest, CudaMallocFlagged) {
  CheckReport rep = Check(
      "void f(float** d, int n) { cudaMalloc(d, n); cudaFree(*d); }");
  EXPECT_EQ(rep.CountRule("MISRA-21.3"), 2);
}

TEST(MisraTest, StdioFlagged) {
  CheckReport rep = Check(
      "void f() { printf(\"x\"); fprintf(stderr, \"y\"); }");
  EXPECT_EQ(rep.CountRule("MISRA-21.6"), 2);
}

TEST(MisraTest, NonCompoundBodiesFlagged) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  if (x) x = 1;\n"             // non-compound if
      "  while (x > 0) --x;\n"        // non-compound while
      "  for (int i = 0; i < 3; ++i) ++x;\n"  // non-compound for
      "  return x;\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-15.6"), 3);
}

TEST(MisraTest, CompoundBodiesClean) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  if (x) { x = 1; } else { x = 2; }\n"
      "  while (x > 0) { --x; }\n"
      "  do { ++x; } while (x < 2);\n"
      "  return x;\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-15.6"), 0);
}

TEST(MisraTest, ElseIfChainAllowed) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  if (x == 1) { return 1; } else if (x == 2) { return 2; } else { "
      "return 0; }\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-15.6"), 0);
}

TEST(MisraTest, SwitchWithoutDefaultFlagged) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  switch (x) {\n"
      "    case 0: return 1;\n"
      "    case 1: return 2;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-16.4"), 1);
}

TEST(MisraTest, SwitchWithDefaultClean) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  switch (x) { case 0: return 1; default: return 0; }\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-16.4"), 0);
}

TEST(MisraTest, FallthroughFlagged) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  int r = 0;\n"
      "  switch (x) {\n"
      "    case 0: r = 1;\n"     // falls through
      "    case 1: r = 2; break;\n"
      "    default: break;\n"
      "  }\n"
      "  return r;\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-16.1"), 1);
}

TEST(MisraTest, AnnotatedFallthroughAllowed) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  int r = 0;\n"
      "  switch (x) {\n"
      "    case 0: r = 1; [[fallthrough]];\n"
      "    case 1: r = 2; break;\n"
      "    default: break;\n"
      "  }\n"
      "  return r;\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-16.1"), 0);
}

TEST(MisraTest, EmptyCaseStackingAllowed) {
  CheckReport rep = Check(
      "int f(int x) {\n"
      "  switch (x) {\n"
      "    case 0:\n"
      "    case 1: return 2;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(rep.CountRule("MISRA-16.1"), 0);
}

TEST(MisraTest, UnionFlagged) {
  CheckReport rep = Check("union U { int i; float f; };");
  EXPECT_GE(rep.CountRule("MISRA-19.2"), 1);
}

TEST(MisraTest, UndefFlagged) {
  CheckReport rep = Check("#define A 1\n#undef A\n");
  EXPECT_EQ(rep.CountRule("MISRA-20.5"), 1);
}

TEST(MisraTest, FunctionLikeMacroFlagged) {
  CheckReport rep = Check("#define SQ(x) ((x) * (x))\n#define N 4\n");
  EXPECT_EQ(rep.CountRule("MISRA-D4.9"), 1);
}

TEST(MisraTest, CStyleCastFlagged) {
  CheckReport rep = Check("void f(double d) { int x = (int)d; (void)x; }");
  EXPECT_GE(rep.CountRule("MISRA-11.4"), 1);
}

TEST(MisraTest, UnusedParamFlagged) {
  CheckReport rep = Check("int f(int used, int unused) { return used; }");
  EXPECT_EQ(rep.CountRule("MISRA-2.7"), 1);
}

TEST(MisraTest, EntitiesCheckedCountsFunctions) {
  CheckReport rep = Check("void a() {}\nvoid b() {}\nint c;\n");
  EXPECT_EQ(rep.entities_checked, 2);
}

TEST(MisraTest, CleanMisraCodePasses) {
  CheckReport rep = Check(
      "static int add(int a, int b) {\n"
      "  int result = a + b;\n"
      "  return result;\n"
      "}\n");
  EXPECT_TRUE(rep.findings.empty())
      << rep.findings.front().rule_id << ": " << rep.findings.front().message;
}

TEST(MisraTest, OctalConstantFlagged) {
  CheckReport rep = Check("const int perms = 0755;\nconst int zero = 0;\n"
                          "const int hex = 0x1F;\nconst double f = 0.5;\n");
  EXPECT_EQ(rep.CountRule("MISRA-7.1"), 1);
}

TEST(MisraTest, FloatEqualityFlagged) {
  CheckReport rep = Check(
      "bool f(double d) { return d == 1.5; }\n"
      "bool g(double d) { return 0.25f != d; }\n"
      "bool h(int i) { return i == 3; }\n");
  EXPECT_EQ(rep.CountRule("MISRA-13.3"), 2);
}

TEST(MisraTest, VariadicFunctionFlagged) {
  CheckReport rep = Check(
      "int log_fmt(const char* fmt, ...) { return 0; }\n"
      "int plain(int a) { return a; }\n");
  EXPECT_EQ(rep.CountRule("MISRA-17.1"), 1);
}

TEST(CudaDialectTest, KernelCensus) {
  auto r = ast::ParseSource(
      "k.cu",
      "__global__ void scale(float* out, const float* in, int n) {\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  if (i < n) { out[i] = in[i] * 2.0f; }\n"
      "}\n"
      "__device__ float helper(float x) { return x * x; }\n"
      "void host(float* d, int n) {\n"
      "  cudaMalloc(&d, n);\n"
      "  cudaMemcpy(d, d, n, cudaMemcpyHostToDevice);\n"
      "  cudaFree(d);\n"
      "}\n");
  ASSERT_TRUE(r.ok());
  CudaDialectStats s = AnalyzeCudaDialect(r.value());
  EXPECT_EQ(s.kernel_count, 1);
  EXPECT_EQ(s.device_fn_count, 1);
  EXPECT_EQ(s.kernel_pointer_params, 2);
  EXPECT_EQ(s.kernels_with_pointer_params, 1);
  EXPECT_EQ(s.cuda_malloc_calls, 1);
  EXPECT_EQ(s.cuda_memcpy_calls, 1);
  EXPECT_EQ(s.cuda_free_calls, 1);
}

}  // namespace
}  // namespace certkit::rules
