// Unit tests for the style checker and the defensive-programming analyzer.
#include <gtest/gtest.h>

#include "ast/parser.h"
#include "rules/defensive.h"
#include "rules/style.h"

namespace certkit::rules {
namespace {

StyleResult Style(std::string_view src, const StyleOptions& opts = {}) {
  auto r = ast::ParseSource("test.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return CheckStyle(r.value(), src, opts);
}

TEST(StyleTest, LongLineFlagged) {
  std::string long_line = "int x = 0; // " + std::string(90, 'x') + "\n";
  StyleResult sr = Style(long_line);
  EXPECT_EQ(sr.report.CountRule("STYLE-LINELEN"), 1);
}

TEST(StyleTest, ShortLinesClean) {
  StyleResult sr = Style("int x = 0;\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-LINELEN"), 0);
}

TEST(StyleTest, TabFlagged) {
  StyleResult sr = Style("int main() {\n\treturn 0;\n}\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-TAB"), 1);
}

TEST(StyleTest, TrailingWhitespaceFlagged) {
  StyleResult sr = Style("int x = 0;  \nint y = 1;\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-TRAILWS"), 1);
}

TEST(StyleTest, MissingFinalNewlineFlagged) {
  StyleResult sr = Style("int x = 0;");
  EXPECT_EQ(sr.report.CountRule("STYLE-EOFNL"), 1);
}

TEST(StyleTest, TypeNamingChecked) {
  StyleResult sr = Style(
      "class GoodName {};\n"
      "class bad_name {};\n"
      "struct alsoBad {};\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-TYPENAME"), 2);
}

TEST(StyleTest, FunctionNamingChecked) {
  StyleResult sr = Style(
      "void GoodFunc() {}\n"
      "void also_good() {}\n"
      "void BadOne_mixed() {}\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-FUNCNAME"), 1);
}

TEST(StyleTest, ConstantNamingChecked) {
  StyleResult sr = Style(
      "const int kMaxItems = 5;\n"
      "const int MAX_LEGACY = 6;\n"   // MACRO_CASE allowed for constants
      "const int wrong_const = 7;\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-CONSTNAME"), 1);
}

TEST(StyleTest, VariableNamingChecked) {
  StyleResult sr = Style(
      "int good_var = 1;\n"
      "int BadVar = 2;\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-VARNAME"), 1);
}

TEST(StyleTest, MacroNamingChecked) {
  StyleResult sr = Style(
      "#define GOOD_MACRO 1\n"
      "#define badMacro 2\n");
  EXPECT_EQ(sr.report.CountRule("STYLE-MACRONAME"), 1);
}

TEST(StyleTest, HeaderGuardRequiredForHeaders) {
  StyleOptions opts;
  opts.is_header = true;
  StyleResult without = Style("int x = 0;\n", opts);
  EXPECT_EQ(without.report.CountRule("STYLE-GUARD"), 1);

  StyleResult with_guard = Style(
      "#ifndef FOO_H_\n#define FOO_H_\nint x = 0;\n#endif\n", opts);
  EXPECT_EQ(with_guard.report.CountRule("STYLE-GUARD"), 0);

  StyleResult with_pragma = Style("#pragma once\nint x = 0;\n", opts);
  EXPECT_EQ(with_pragma.report.CountRule("STYLE-GUARD"), 0);
}

TEST(StyleTest, ComplianceRatioReflectsViolations) {
  StyleResult clean = Style("int good_var = 1;\nint also_good = 2;\n");
  EXPECT_DOUBLE_EQ(clean.stats.ComplianceRatio(), 1.0);
  std::string messy;
  for (int i = 0; i < 10; ++i) messy += "int V" + std::to_string(i) + " = 0;\n";
  StyleResult bad = Style(messy);
  EXPECT_LT(bad.stats.ComplianceRatio(), 1.0);
}

// --- defensive ---

DefensiveResult Defensive(std::string_view src) {
  auto r = ast::ParseSource("test.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<ast::SourceFileModel> files;
  files.push_back(std::move(r).value());
  return AnalyzeDefensive(files);
}

TEST(DefensiveTest, IfOnParamCountsAsValidation) {
  DefensiveResult d = Defensive(
      "int f(int x) {\n"
      "  if (x < 0) { return -1; }\n"
      "  return x;\n"
      "}\n");
  EXPECT_EQ(d.stats.functions_with_params, 1);
  EXPECT_EQ(d.stats.functions_validating_inputs, 1);
  EXPECT_EQ(d.report.CountRule("DEF-INPUT"), 0);
}

TEST(DefensiveTest, AssertOnParamCountsAsValidation) {
  DefensiveResult d = Defensive(
      "int f(int x) { assert(x >= 0); return x + 1; }");
  EXPECT_EQ(d.stats.functions_validating_inputs, 1);
  EXPECT_EQ(d.stats.assertion_sites, 1);
}

TEST(DefensiveTest, NoValidationFlagged) {
  DefensiveResult d = Defensive("int f(int x) { return x * 2; }");
  EXPECT_EQ(d.stats.functions_with_params, 1);
  EXPECT_EQ(d.stats.functions_validating_inputs, 0);
  EXPECT_EQ(d.report.CountRule("DEF-INPUT"), 1);
}

TEST(DefensiveTest, ParameterlessFunctionsNotCounted) {
  DefensiveResult d = Defensive("int f() { return 1; }");
  EXPECT_EQ(d.stats.functions_with_params, 0);
  EXPECT_DOUBLE_EQ(d.stats.InputValidationRatio(), 1.0);
}

TEST(DefensiveTest, IfOnUnrelatedVariableNotValidation) {
  DefensiveResult d = Defensive(
      "int f(int x) {\n"
      "  int y = 3;\n"
      "  if (y > 0) { y = 4; }\n"
      "  return x + y;\n"
      "}\n");
  EXPECT_EQ(d.stats.functions_validating_inputs, 0);
}

TEST(DefensiveTest, DiscardedNonVoidResultFlagged) {
  DefensiveResult d = Defensive(
      "int compute(int x) { return x * 2; }\n"
      "void user(int x) {\n"
      "  if (x) { compute(x); }\n"        // result discarded
      "  int y = compute(x);\n"           // result used
      "  (void)y;\n"
      "}\n");
  EXPECT_EQ(d.stats.discarded_results, 1);
  EXPECT_EQ(d.report.CountRule("DEF-RESULT"), 1);
}

TEST(DefensiveTest, VoidCallNotFlagged) {
  DefensiveResult d = Defensive(
      "void log_it(int x) { (void)x; }\n"
      "void user(int x) { log_it(x); }\n");
  EXPECT_EQ(d.stats.discarded_results, 0);
}

TEST(DefensiveTest, RatiosAggregate) {
  DefensiveResult d = Defensive(
      "int a(int x) { if (x) { return 1; } return 0; }\n"
      "int b(int x) { return x; }\n"
      "int c(int x) { assert(x); return x; }\n"
      "int d(int x) { return -x; }\n");
  EXPECT_EQ(d.stats.functions_with_params, 4);
  EXPECT_EQ(d.stats.functions_validating_inputs, 2);
  EXPECT_DOUBLE_EQ(d.stats.InputValidationRatio(), 0.5);
}

}  // namespace
}  // namespace certkit::rules
