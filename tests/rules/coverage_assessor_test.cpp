// Tests for function/call coverage probes and the ISO coverage-table
// assessor (Tables 9, 10, 12).
#include <gtest/gtest.h>

#include "coverage/coverage.h"
#include "rules/coverage_assessor.h"

namespace certkit::rules {
namespace {

TEST(FunctionCoverageTest, TracksEnteredFunctions) {
  cov::Unit u("fc");
  const int f0 = u.DeclareFunctionProbe("alpha");
  const int f1 = u.DeclareFunctionProbe("beta");
  (void)f1;
  EXPECT_DOUBLE_EQ(u.FunctionCoverage(), 0.0);
  u.EnterFunction(f0);
  EXPECT_DOUBLE_EQ(u.FunctionCoverage(), 0.5);
  EXPECT_EQ(u.UncoveredFunctions(), (std::vector<std::string>{"beta"}));
  u.EnterFunction(f0);  // re-entry changes nothing
  EXPECT_DOUBLE_EQ(u.FunctionCoverage(), 0.5);
}

TEST(FunctionCoverageTest, CallEdges) {
  cov::Unit u("cc");
  const int c0 = u.DeclareCallProbe("main", "helper");
  const int c1 = u.DeclareCallProbe("main", "other");
  (void)c1;
  EXPECT_DOUBLE_EQ(u.CallCoverage(), 0.0);
  u.CallSite(c0);
  EXPECT_DOUBLE_EQ(u.CallCoverage(), 0.5);
}

TEST(FunctionCoverageTest, ResetClears) {
  cov::Unit u("rc");
  const int f = u.DeclareFunctionProbe("x");
  const int c = u.DeclareCallProbe("a", "b");
  u.EnterFunction(f);
  u.CallSite(c);
  u.Reset();
  EXPECT_DOUBLE_EQ(u.FunctionCoverage(), 0.0);
  EXPECT_DOUBLE_EQ(u.CallCoverage(), 0.0);
}

TEST(FunctionCoverageTest, NoDeclaredProbesIsFullyCovered) {
  cov::Unit u("empty");
  EXPECT_DOUBLE_EQ(u.FunctionCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(u.CallCoverage(), 1.0);
}

TEST(Iso26262CoverageTablesTest, Table10Levels) {
  const TechniqueTable& t = UnitCoverageTable();
  ASSERT_EQ(t.techniques.size(), 3u);
  // Statement: ++ at A/B; branch: ++ at B..D; MC/DC: ++ only at D.
  EXPECT_EQ(t.techniques[0].At(Asil::kA), Recommendation::kHighlyRecommended);
  EXPECT_EQ(t.techniques[1].At(Asil::kD), Recommendation::kHighlyRecommended);
  EXPECT_EQ(t.techniques[2].At(Asil::kC), Recommendation::kRecommended);
  EXPECT_EQ(t.techniques[2].At(Asil::kD), Recommendation::kHighlyRecommended);
}

TEST(Iso26262CoverageTablesTest, Table9And12Shapes) {
  EXPECT_EQ(UnitVerificationTable().techniques.size(), 8u);
  EXPECT_EQ(IntegrationCoverageTable().techniques.size(), 2u);
}

TEST(CoverageAssessorTest, VerdictBands) {
  std::vector<cov::CoverageRow> rows = {{"u", 1.0, 0.9, 0.5}};
  auto assessment = AssessUnitCoverage(rows);
  ASSERT_EQ(assessment.assessments.size(), 3u);
  EXPECT_EQ(assessment.assessments[0].verdict, Verdict::kCompliant);
  EXPECT_EQ(assessment.assessments[1].verdict, Verdict::kPartial);
  EXPECT_EQ(assessment.assessments[2].verdict, Verdict::kNonCompliant);
}

TEST(CoverageAssessorTest, AveragesAcrossUnits) {
  std::vector<cov::CoverageRow> rows = {{"a", 1.0, 1.0, 1.0},
                                        {"b", 0.0, 0.0, 0.0}};
  auto assessment = AssessUnitCoverage(rows);
  // 50% average: below the partial band on all criteria.
  for (const auto& a : assessment.assessments) {
    EXPECT_EQ(a.verdict, Verdict::kNonCompliant);
  }
}

TEST(CoverageAssessorTest, IntegrationCoverage) {
  auto full = AssessIntegrationCoverage(1.0, 1.0);
  EXPECT_EQ(full.assessments[0].verdict, Verdict::kCompliant);
  EXPECT_EQ(full.assessments[1].verdict, Verdict::kCompliant);
  auto partial = AssessIntegrationCoverage(0.85, 0.3);
  EXPECT_EQ(partial.assessments[0].verdict, Verdict::kPartial);
  EXPECT_EQ(partial.assessments[1].verdict, Verdict::kNonCompliant);
}

TEST(CoverageAssessorTest, MeetsAsilSemantics) {
  // Full coverage meets every ASIL of Table 10.
  std::vector<cov::CoverageRow> full_rows = {{"u", 1.0, 1.0, 1.0}};
  auto full = AssessUnitCoverage(full_rows);
  for (Asil asil : {Asil::kA, Asil::kB, Asil::kC, Asil::kD}) {
    EXPECT_TRUE(MeetsAsil(UnitCoverageTable(), full, asil));
  }
  // Statement-only coverage: statement 100% but branch/MCDC low — fails
  // ASIL B..D (branch ++) but also fails A? Statement ++ at A satisfied,
  // branch '+' at A accepts partial but not non-compliant.
  std::vector<cov::CoverageRow> stmt_only = {{"u", 1.0, 0.85, 0.85}};
  auto partial = AssessUnitCoverage(stmt_only);
  EXPECT_TRUE(MeetsAsil(UnitCoverageTable(), partial, Asil::kA));
  EXPECT_FALSE(MeetsAsil(UnitCoverageTable(), partial, Asil::kB));
  EXPECT_FALSE(MeetsAsil(UnitCoverageTable(), partial, Asil::kD));
}

}  // namespace
}  // namespace certkit::rules
