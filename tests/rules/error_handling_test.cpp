// Tests for the error-detection/handling mechanism census (Tables 4 & 5).
#include "rules/error_handling.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace certkit::rules {
namespace {

ErrorHandlingStats Analyze(std::string_view src) {
  auto r = ast::ParseSource("eh.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return AnalyzeErrorHandling(r.value());
}

TEST(ErrorHandlingTest, ExceptionCensus) {
  ErrorHandlingStats s = Analyze(
      "int f() {\n"
      "  try {\n"
      "    if (bad()) throw 1;\n"
      "    return g();\n"
      "  } catch (const std::exception& e) {\n"
      "    return -1;\n"
      "  } catch (...) {\n"
      "    return -2;\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(s.try_blocks, 1);
  EXPECT_EQ(s.catch_handlers, 2);
  EXPECT_EQ(s.catch_all_handlers, 1);
  EXPECT_EQ(s.throw_sites, 1);
}

TEST(ErrorHandlingTest, AssertionCensus) {
  ErrorHandlingStats s = Analyze(
      "void f(int x) {\n"
      "  assert(x > 0);\n"
      "  CHECK(x < 100);\n"
      "  CERTKIT_CHECK(x != 50);\n"
      "}\n");
  EXPECT_EQ(s.assertion_sites, 3);
  EXPECT_EQ(s.functions_total, 1);
  EXPECT_DOUBLE_EQ(s.AssertionDensityPerFunction(), 3.0);
}

TEST(ErrorHandlingTest, StatusReturnDetection) {
  ErrorHandlingStats s = Analyze(
      "Status DoWork(int x) { return Status(); }\n"
      "support::Result<int> Parse(const char* s) { return 1; }\n"
      "int Plain(int x) { return x; }\n");
  EXPECT_EQ(s.functions_total, 3);
  EXPECT_EQ(s.status_returning_functions, 2);
}

TEST(ErrorHandlingTest, ChecksumAndDegradationSites) {
  ErrorHandlingStats s = Analyze(
      "void f(const char* data, int n) {\n"
      "  unsigned sum = ComputeChecksum(data, n);\n"
      "  unsigned c = crc32(data, n);\n"
      "  if (sum != c) { EnterDegradedMode(); }\n"
      "  EmergencyStop();\n"
      "}\n");
  EXPECT_EQ(s.checksum_sites, 2);
  EXPECT_EQ(s.degradation_sites, 2);
}

TEST(ErrorHandlingTest, MergeSums) {
  ErrorHandlingStats a = Analyze("void f() { assert(true); }\n");
  ErrorHandlingStats b = Analyze("void g() { try { h(); } catch (...) {} }\n");
  ErrorHandlingStats m = MergeErrorHandling({a, b});
  EXPECT_EQ(m.functions_total, 2);
  EXPECT_EQ(m.assertion_sites, 1);
  EXPECT_EQ(m.try_blocks, 1);
}

TEST(ErrorHandlingTest, Table4AssessmentShape) {
  ErrorHandlingStats s;
  s.functions_total = 10;
  s.assertion_sites = 5;  // 0.5 per function -> compliant
  s.checksum_sites = 1;
  auto assessment = AssessErrorDetection(s);
  ASSERT_EQ(assessment.assessments.size(),
            ErrorDetectionTable().techniques.size());
  EXPECT_EQ(assessment.assessments[0].verdict, Verdict::kCompliant);
  EXPECT_EQ(assessment.assessments[2].verdict, Verdict::kPartial);
  EXPECT_EQ(assessment.assessments[3].verdict, Verdict::kNotApplicable);
}

TEST(ErrorHandlingTest, Table5AssessmentShape) {
  ErrorHandlingStats bare;  // nothing present
  auto assessment = AssessErrorHandling(bare);
  ASSERT_EQ(assessment.assessments.size(),
            ErrorHandlingTable().techniques.size());
  EXPECT_EQ(assessment.assessments[0].verdict, Verdict::kNonCompliant);
  EXPECT_EQ(assessment.assessments[1].verdict, Verdict::kNonCompliant);

  ErrorHandlingStats rich;
  rich.catch_handlers = 3;
  rich.try_blocks = 3;
  rich.degradation_sites = 2;
  rich.checksum_sites = 1;
  auto better = AssessErrorHandling(rich);
  EXPECT_EQ(better.assessments[0].verdict, Verdict::kPartial);
  EXPECT_EQ(better.assessments[1].verdict, Verdict::kPartial);
}

TEST(ErrorHandlingTest, OwnPipelineHasEmergencyPaths) {
  // The adpilot planner's EmergencyStop is exactly the graceful-degradation
  // evidence Table 5 asks about — check the census finds it in real code.
  ErrorHandlingStats s = Analyze(
      "Trajectory EmergencyStop(const VehicleState& state) {\n"
      "  Trajectory out;\n"
      "  return out;\n"
      "}\n");
  EXPECT_GE(s.degradation_sites, 1);
}

}  // namespace
}  // namespace certkit::rules
