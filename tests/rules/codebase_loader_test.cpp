// Tests for the disk-based codebase loader.
#include "rules/codebase_loader.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "support/io.h"

namespace certkit::rules {
namespace {

namespace fs = std::filesystem;

class CodebaseLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() / "certkit_loader_test").string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteSource(const std::string& rel, const std::string& content) {
    ASSERT_TRUE(support::WriteFile(root_ + "/" + rel, content).ok());
  }

  std::string root_;
};

TEST_F(CodebaseLoaderTest, GroupsByFirstLevelDirectory) {
  WriteSource("alpha/a.cc", "void AlphaFn() {}\n");
  WriteSource("alpha/b.cc", "void AlphaFn2() {}\n");
  WriteSource("beta/c.cc", "void BetaFn() {}\n");
  WriteSource("root_file.cc", "void RootFn() {}\n");
  WriteSource("notes.txt", "not source\n");

  auto loaded = LoadCodebase(root_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Codebase& cb = loaded.value();
  ASSERT_EQ(cb.modules.size(), 3u);  // alpha, beta, <root>
  EXPECT_TRUE(cb.skipped.empty());
  std::size_t total_functions = 0;
  for (const auto& m : cb.modules) {
    total_functions += static_cast<std::size_t>(m.metrics.function_count);
  }
  EXPECT_EQ(total_functions, 4u);
  EXPECT_EQ(cb.raw_sources.size(), 4u);
}

TEST_F(CodebaseLoaderTest, MissingDirectoryIsNotFound) {
  auto loaded = LoadCodebase(root_ + "/nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kNotFound);
}

TEST_F(CodebaseLoaderTest, UnparseableFileIsSkippedNotFatal) {
  WriteSource("mod/good.cc", "void Good() {}\n");
  WriteSource("mod/bad.cc", "/* unterminated comment\n");
  auto loaded = LoadCodebase(root_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().skipped.size(), 1u);
  EXPECT_NE(loaded.value().skipped[0].find("bad.cc"), std::string::npos);
  ASSERT_EQ(loaded.value().modules.size(), 1u);
  EXPECT_EQ(loaded.value().modules[0].metrics.function_count, 1);
}

TEST_F(CodebaseLoaderTest, TracesCollectedWithComments) {
  WriteSource("mod/traced.cc",
              "// REQ-T-1: do the thing\nvoid DoThing() {}\n");
  auto loaded = LoadCodebase(root_);
  ASSERT_TRUE(loaded.ok());
  const auto merged = MergeTraceReports(loaded.value().traces);
  ASSERT_EQ(merged.links.size(), 1u);
  EXPECT_EQ(merged.links[0].requirement, "REQ-T-1");
  EXPECT_EQ(merged.links[0].function, "DoThing");
}

TEST_F(CodebaseLoaderTest, CustomExtensions) {
  WriteSource("mod/a.cc", "void A() {}\n");
  WriteSource("mod/b.inc", "void B() {}\n");
  LoadOptions opts;
  opts.extensions = {".inc"};
  auto loaded = LoadCodebase(root_, opts);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().modules.size(), 1u);
  EXPECT_EQ(loaded.value().modules[0].metrics.function_count, 1);
}

}  // namespace
}  // namespace certkit::rules
