// Unit tests for the unit-design analyzer (ISO 26262-6 Table 8).
#include "rules/unit_design.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "metrics/module_metrics.h"

namespace certkit::rules {
namespace {

metrics::ModuleAnalysis ModuleOf(std::string_view src) {
  auto r = ast::ParseSource("mod/file.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<ast::SourceFileModel> files;
  files.push_back(std::move(r).value());
  return metrics::AnalyzeModule("mod", std::move(files));
}

TEST(UnitDesignTest, MultiExitCounted) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int a(int x) { if (x) { return 1; } return 0; }\n"
      "int b(int x) { int r = x + 1; return r; }\n"));
  EXPECT_EQ(result.stats.functions_total, 2);
  EXPECT_EQ(result.stats.functions_multi_exit, 1);
  EXPECT_DOUBLE_EQ(result.stats.MultiExitFraction(), 0.5);
}

TEST(UnitDesignTest, DynamicAllocSites) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "void f(int n) {\n"
      "  int* a = new int[n];\n"
      "  void* b = malloc(n);\n"
      "  float* d;\n"
      "  cudaMalloc(&d, n);\n"
      "  delete[] a;\n"
      "}\n"));
  // new, malloc, cudaMalloc — delete is deallocation, counted by MISRA but
  // not as a creation site here.
  EXPECT_EQ(result.stats.dynamic_alloc_sites, 3);
}

TEST(UnitDesignTest, UninitializedLocals) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "void f() {\n"
      "  int a;\n"             // uninitialized
      "  int b = 1;\n"
      "  double c, d;\n"       // two uninitialized
      "  float e{2.0f};\n"
      "  const int g = 3;\n"
      "  unsigned long h;\n"   // uninitialized
      "  (void)a; (void)b; (void)c; (void)d; (void)e; (void)g; (void)h;\n"
      "}\n"));
  EXPECT_EQ(result.stats.uninitialized_locals, 4);
}

TEST(UnitDesignTest, ShadowingDetected) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int counter = 0;\n"
      "void f(int limit) {\n"
      "  int counter = 1;\n"   // shadows the global
      "  int limit2 = 0;\n"
      "  int limit = 3;\n"     // shadows the parameter
      "  (void)counter; (void)limit2; (void)limit;\n"
      "}\n"));
  EXPECT_EQ(result.stats.shadowing_decls, 2);
}

TEST(UnitDesignTest, GlobalsClassified) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int mutable_state = 0;\n"
      "static double more_state;\n"
      "const int kLimit = 5;\n"
      "extern int elsewhere;\n"));
  EXPECT_EQ(result.stats.mutable_globals, 2);
  EXPECT_EQ(result.stats.const_globals, 1);
}

TEST(UnitDesignTest, PointerUse) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "struct S { int v; };\n"
      "int f(S* s, const char* name, int plain) {\n"
      "  (void)name;\n"
      "  (void)plain;\n"
      "  return s->v;\n"
      "}\n"));
  EXPECT_EQ(result.stats.pointer_params, 2);
  EXPECT_EQ(result.stats.pointer_derefs, 1);
}

TEST(UnitDesignTest, GlobalWritesDetected) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int g_state = 0;\n"
      "void bump() { g_state += 1; }\n"
      "void set(int v) { g_state = v; }\n"
      "int get() { return g_state; }\n"));
  EXPECT_EQ(result.stats.global_write_sites, 2);
}

TEST(UnitDesignTest, GotoCounted) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int f(int x) {\n"
      "  if (x < 0) goto err;\n"
      "  return x;\n"
      "err:\n"
      "  return -1;\n"
      "}\n"));
  EXPECT_EQ(result.stats.goto_statements, 1);
}

TEST(UnitDesignTest, DirectRecursionCounted) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n"));
  EXPECT_EQ(result.stats.recursive_functions_direct, 1);
  EXPECT_EQ(result.stats.recursion_cycles_indirect, 0);
}

TEST(UnitDesignTest, IndirectRecursionCycleFound) {
  auto mod = ModuleOf(
      "int odd(int n);\n"
      "int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n"
      "int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n"
      "int lonely(int n) { return n + 1; }\n");
  auto cycles = FindRecursionCycles(mod);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"even", "odd"}));
  auto result = AnalyzeUnitDesign(mod);
  EXPECT_EQ(result.stats.recursion_cycles_indirect, 1);
}

TEST(UnitDesignTest, ThreeCycleFound) {
  auto cycles = FindRecursionCycles(ModuleOf(
      "int c(int n);\n"
      "int a(int n) { return n ? b(n - 1) : 0; }\n"
      "int b(int n) { return n ? c(n - 1) : 0; }\n"
      "int c(int n) { return n ? a(n - 1) : 0; }\n"));
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"a", "b", "c"}));
}

TEST(UnitDesignTest, AcyclicCallGraphHasNoCycles) {
  auto cycles = FindRecursionCycles(ModuleOf(
      "int leaf(int n) { return n; }\n"
      "int mid(int n) { return leaf(n) + 1; }\n"
      "int top(int n) { return mid(n) + leaf(n); }\n"));
  EXPECT_TRUE(cycles.empty());
}

TEST(UnitDesignTest, CastsCounted) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "void f(double d, void* p) {\n"
      "  int a = static_cast<int>(d);\n"
      "  char* c = (char*)p;\n"
      "  (void)a; (void)c;\n"
      "}\n"));
  EXPECT_EQ(result.stats.explicit_casts, 2);
}

TEST(UnitDesignTest, FindingsCarryRuleIds) {
  auto result = AnalyzeUnitDesign(ModuleOf(
      "int g_x = 0;\n"
      "int f(int a) { if (a) { return 1; } return 0; }\n"));
  EXPECT_GE(result.report.CountRule("UNIT-1"), 1);
  EXPECT_GE(result.report.CountRule("UNIT-5"), 1);
}

// Property sweep: multi-exit fraction matches construction for N functions
// where every third one is multi-exit.
class MultiExitSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiExitSweep, FractionMatchesConstruction) {
  const int n = GetParam();
  std::string src;
  int multi = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      src += "int f" + std::to_string(i) +
             "(int x) { if (x) { return 1; } return 0; }\n";
      ++multi;
    } else {
      src += "int f" + std::to_string(i) + "(int x) { return x; }\n";
    }
  }
  auto result = AnalyzeUnitDesign(ModuleOf(src));
  EXPECT_EQ(result.stats.functions_total, n);
  EXPECT_EQ(result.stats.functions_multi_exit, multi);
}

INSTANTIATE_TEST_SUITE_P(Counts, MultiExitSweep,
                         ::testing::Values(1, 3, 10, 99));

}  // namespace
}  // namespace certkit::rules
