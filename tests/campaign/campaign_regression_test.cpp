// Regression lock on the campaign engine's value proposition: a short
// fixed-seed campaign reaches detector code the fixed Figure-5 scenario set
// never executes. The paper's Observation 10 ("coverage is low with
// available tests; additional test cases are required") is the gap; the
// campaign is the generator that closes part of it.
#include "campaign/runner.h"

#include <gtest/gtest.h>

#include "campaign/baseline.h"
#include "campaign/coverage_map.h"
#include "coverage/coverage.h"

namespace certkit::campaign {
namespace {

cov::CoverageRow RowFor(const cov::CoverSet& cover, const std::string& unit) {
  const auto it = cover.find(unit);
  const cov::UnitCover empty;
  return cov::CoverRow(cov::Registry::Instance().GetOrCreate(unit),
                       it == cover.end() ? empty : it->second);
}

TEST(CampaignRegressionTest, CampaignBeatsFigure5BaselineOnPreprocess) {
  // The fixed scenario set always feeds the detector camera-native square
  // frames, so the preprocessor's letterbox path (aspect mismatch) stays
  // dark: 3 of 6 branch outcomes, zero MC/DC.
  const cov::CoverSet baseline = CaptureFigure5Baseline();
  const cov::CoverageRow before = RowFor(baseline, "yolo/preprocess.cc");
  EXPECT_LT(before.branch, 1.0);
  EXPECT_DOUBLE_EQ(before.mcdc, 0.0);

  // A one-generation campaign already breeds non-square detector-input
  // candidates (the seed pool cycles input shapes by construction, for any
  // campaign seed), which force the letterbox path.
  CampaignConfig config;
  config.seed = 2026;
  config.jobs = 2;
  config.population = 4;
  config.generations = 1;
  config.ticks = 8;
  const CampaignResult result = CampaignRunner(config).Run();
  const cov::CoverageRow after = RowFor(result.merged, "yolo/preprocess.cc");

  EXPECT_GT(after.branch, before.branch)
      << "campaign did not improve branch coverage on the preprocess unit";
  EXPECT_GT(after.mcdc, before.mcdc);
  EXPECT_DOUBLE_EQ(after.branch, 1.0);  // all three decisions, both ways
}

TEST(CampaignRegressionTest, SeededCampaignDominatesBaselineEverywhere) {
  // With greybox seeding the campaign's merged cover starts from the
  // baseline, so per-unit rates are monotonically >= the baseline's — the
  // campaign adds tests, it never loses existing ones.
  const cov::CoverSet baseline = CaptureFigure5Baseline();

  CampaignConfig config;
  config.seed = 11;
  config.jobs = 2;
  config.population = 4;
  config.generations = 1;
  config.ticks = 8;
  config.seed_with_fig5 = true;
  const CampaignResult result = CampaignRunner(config).Run();

  for (const auto& [unit, cover] : baseline) {
    if (unit.rfind("yolo/", 0) != 0) continue;
    const cov::CoverageRow before = RowFor(baseline, unit);
    const cov::CoverageRow after = RowFor(result.merged, unit);
    EXPECT_GE(after.statement, before.statement) << unit;
    EXPECT_GE(after.branch, before.branch) << unit;
    EXPECT_GE(after.mcdc, before.mcdc) << unit;
  }
}

TEST(CampaignRegressionTest, CorpusKeepsCoverageAddingCandidates) {
  CampaignConfig config;
  config.seed = 5;
  config.jobs = 1;
  config.population = 5;
  config.generations = 2;
  config.ticks = 6;
  const CampaignResult result = CampaignRunner(config).Run();
  ASSERT_EQ(result.generations.size(), 2u);
  // Generation 0 always discovers facts (the map starts empty), and every
  // fact-adding or novel-outcome candidate joins the corpus.
  EXPECT_GT(result.generations[0].new_facts, 0);
  EXPECT_GT(result.generations[0].kept, 0);
  EXPECT_GE(result.corpus.size(),
            static_cast<std::size_t>(result.generations[0].kept));
  EXPECT_EQ(result.evaluated_total, 10);
  EXPECT_GT(result.distinct_outcomes, 0);
}

}  // namespace
}  // namespace certkit::campaign
