// Corruption suite for the content-addressed corpus store, mirroring the
// artifact-cache discipline it inherits: every entry survives emit -> parse
// -> emit byte-identically; truncation at every length, a flip of any
// single byte, and schema skew all fail the frame check and recompute
// silently; and foreign files sharing the directory are never touched.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/corpus_store.h"
#include "campaign/oracle.h"
#include "campaign/runner.h"
#include "coverage/coverage.h"
#include "gtest/gtest.h"
#include "support/io.h"

namespace certkit::campaign {
namespace {

namespace fs = std::filesystem;

class CorpusStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("certkit_corpus_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

// A real (tiny) evaluation so the entry carries genuine cover facts and a
// genuine verdict — the recompute path must reproduce exactly this.
CorpusEntry MakeEntry(std::int64_t id, std::uint64_t fault_seed) {
  Candidate candidate;
  candidate.id = id;
  candidate.fault_seed = fault_seed;
  candidate.ticks = 4;
  const EvalResult eval = CampaignRunner::Evaluate(candidate);
  CorpusEntry entry;
  entry.candidate = candidate;
  entry.verdict = eval.verdict;
  entry.outcome = OutcomeSignature(eval.verdict);
  entry.report_digest = eval.report_digest;
  entry.cover = eval.cover;
  return entry;
}

void ExpectEntriesEqual(const CorpusEntry& a, const CorpusEntry& b) {
  EXPECT_EQ(CorpusEntryJson(a), CorpusEntryJson(b));
}

TEST_F(CorpusStoreTest, EntryJsonReachesFixpoint) {
  const CorpusEntry entry = MakeEntry(1, 11);
  const std::string once = CorpusEntryJson(entry);
  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(ParseCorpusEntry(once, &parsed, &error)) << error;
  EXPECT_EQ(once, CorpusEntryJson(parsed));
}

TEST_F(CorpusStoreTest, PutThenLoadRoundTrips) {
  CorpusStore store(dir_);
  ASSERT_TRUE(store.enabled());
  const CorpusEntry entry = MakeEntry(3, 21);
  ASSERT_TRUE(store.Put(entry).ok());
  const std::uint64_t hash = CandidateHash(entry.candidate);
  CorpusEntry loaded;
  ASSERT_TRUE(store.Load(hash, &loaded));
  ExpectEntriesEqual(entry, loaded);
  EXPECT_EQ(1, store.CountEntries());
}

TEST_F(CorpusStoreTest, ContentAddressingDedupsIdenticalCandidates) {
  CorpusStore store(dir_);
  const CorpusEntry entry = MakeEntry(5, 33);
  ASSERT_TRUE(store.Put(entry).ok());
  ASSERT_TRUE(store.Put(entry).ok());  // overwrite with identical content
  EXPECT_EQ(1, store.CountEntries());
  const auto all = store.LoadAll();
  ASSERT_EQ(1u, all.size());
  ExpectEntriesEqual(entry, all[0]);
}

TEST_F(CorpusStoreTest, TruncationAtEveryLengthIsDetected) {
  CorpusStore store(dir_);
  const CorpusEntry entry = MakeEntry(7, 5);
  ASSERT_TRUE(store.Put(entry).ok());
  const std::uint64_t hash = CandidateHash(entry.candidate);
  const std::string path = store.EntryPath(hash);
  const auto blob = certkit::support::ReadFile(path);
  ASSERT_TRUE(blob.ok());
  for (std::size_t len = 0; len < blob.value().size(); ++len) {
    ASSERT_TRUE(
        certkit::support::WriteFile(path, blob.value().substr(0, len)).ok());
    CorpusEntry out;
    EXPECT_FALSE(store.Load(hash, &out)) << "accepted truncation at " << len;
    EXPECT_EQ(0, store.CountEntries()) << "counted truncation at " << len;
  }
  // Restoring the full blob restores the entry.
  ASSERT_TRUE(certkit::support::WriteFile(path, blob.value()).ok());
  CorpusEntry out;
  EXPECT_TRUE(store.Load(hash, &out));
}

TEST_F(CorpusStoreTest, EveryOneByteFlipIsDetected) {
  CorpusStore store(dir_);
  const CorpusEntry entry = MakeEntry(9, 13);
  ASSERT_TRUE(store.Put(entry).ok());
  const std::uint64_t hash = CandidateHash(entry.candidate);
  const std::string path = store.EntryPath(hash);
  const auto blob = certkit::support::ReadFile(path);
  ASSERT_TRUE(blob.ok());
  for (std::size_t i = 0; i < blob.value().size(); ++i) {
    std::string damaged = blob.value();
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    ASSERT_TRUE(certkit::support::WriteFile(path, damaged).ok());
    CorpusEntry out;
    EXPECT_FALSE(store.Load(hash, &out)) << "accepted flip at byte " << i;
  }
}

TEST_F(CorpusStoreTest, SchemaSkewIsDetected) {
  CorpusStore store(dir_);
  const CorpusEntry entry = MakeEntry(11, 17);
  ASSERT_TRUE(store.Put(entry).ok());
  const std::uint64_t hash = CandidateHash(entry.candidate);
  const std::string path = store.EntryPath(hash);
  auto blob = certkit::support::ReadFile(path);
  ASSERT_TRUE(blob.ok());
  std::string skewed = blob.value();
  ASSERT_GT(skewed.size(), 8u);
  skewed[4] = static_cast<char>(skewed[4] + 1);  // schema u32 LE low byte
  ASSERT_TRUE(certkit::support::WriteFile(path, skewed).ok());
  CorpusEntry out;
  EXPECT_FALSE(store.Load(hash, &out));
  EXPECT_EQ(0, store.CountEntries());
}

TEST_F(CorpusStoreTest, PayloadSwapBetweenEntriesIsDetected) {
  // A valid frame whose payload hashes to a *different* candidate must not
  // satisfy a Load for this hash (content address integrity).
  CorpusStore store(dir_);
  const CorpusEntry a = MakeEntry(1, 101);
  const CorpusEntry b = MakeEntry(2, 202);
  ASSERT_TRUE(store.Put(a).ok());
  ASSERT_TRUE(store.Put(b).ok());
  const auto blob_b = certkit::support::ReadFile(
      store.EntryPath(CandidateHash(b.candidate)));
  ASSERT_TRUE(blob_b.ok());
  ASSERT_TRUE(certkit::support::WriteFile(
                  store.EntryPath(CandidateHash(a.candidate)), blob_b.value())
                  .ok());
  CorpusEntry out;
  EXPECT_FALSE(store.Load(CandidateHash(a.candidate), &out));
  EXPECT_TRUE(store.Load(CandidateHash(b.candidate), &out));
}

TEST_F(CorpusStoreTest, ForeignFilesAreIgnoredAndUntouched) {
  CorpusStore store(dir_);
  const CorpusEntry entry = MakeEntry(13, 29);
  ASSERT_TRUE(store.Put(entry).ok());
  const std::string foreign = dir_ + "/README.txt";
  const std::string near_miss = dir_ + "/0123456789abcdef.ckcorp.bak";
  ASSERT_TRUE(certkit::support::WriteFile(foreign, "not an entry").ok());
  ASSERT_TRUE(certkit::support::WriteFile(near_miss, "junk").ok());
  EXPECT_EQ(1, store.CountEntries());
  EXPECT_EQ(1u, store.LoadAll().size());
  // Foreign bytes unchanged.
  const auto after = certkit::support::ReadFile(foreign);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ("not an entry", after.value());
}

TEST_F(CorpusStoreTest, LoadAllSkipsCorruptEntriesSilently) {
  CorpusStore store(dir_);
  const CorpusEntry keep = MakeEntry(1, 41);
  const CorpusEntry corrupt = MakeEntry(2, 43);
  ASSERT_TRUE(store.Put(keep).ok());
  ASSERT_TRUE(store.Put(corrupt).ok());
  const std::string victim =
      store.EntryPath(CandidateHash(corrupt.candidate));
  ASSERT_TRUE(certkit::support::WriteFile(victim, "CKC1 damaged").ok());
  const auto all = store.LoadAll();
  ASSERT_EQ(1u, all.size());
  ExpectEntriesEqual(keep, all[0]);
}

TEST_F(CorpusStoreTest, DisabledStoreNeverTouchesDisk) {
  CorpusStore store("");
  EXPECT_FALSE(store.enabled());
  const CorpusEntry entry = MakeEntry(15, 3);
  EXPECT_TRUE(store.Put(entry).ok());
  CorpusEntry out;
  EXPECT_FALSE(store.Load(CandidateHash(entry.candidate), &out));
  EXPECT_EQ(0, store.CountEntries());
  EXPECT_TRUE(store.LoadAll().empty());
}

TEST_F(CorpusStoreTest, FrameRejectsWrongMagic) {
  const char magic[4] = {'C', 'K', 'C', '1'};
  const char other[4] = {'C', 'K', 'P', '1'};
  const std::string blob = FrameBlob(magic, 1, "payload");
  std::string_view payload;
  EXPECT_TRUE(UnframeBlob(magic, 1, blob, &payload));
  EXPECT_EQ("payload", payload);
  EXPECT_FALSE(UnframeBlob(other, 1, blob, &payload));
  EXPECT_FALSE(UnframeBlob(magic, 2, blob, &payload));
}

}  // namespace
}  // namespace certkit::campaign
