// Delta-debugging minimizer: a seeded divergence must auto-shrink to a
// strictly smaller candidate that still reproduces it. The seeded
// divergence here is the real one the differential oracle hunts: quantized
// (fake-int8) inference against the fp32 reference on the same backend —
// the activation quantization perturbs detection confidences, which the
// per-tick `detections` stream digest observes. The minimizer must (a)
// terminate, (b) strictly reduce the integer cost, and (c) hand back a
// candidate for which the divergence predicate still holds, so the written
// minimized artifact is a working repro, not a souvenir.
#include "campaign/minimize.h"

#include <gtest/gtest.h>

#include <optional>

#include "campaign/mutation.h"

namespace certkit::campaign {
namespace {

// The quantized-vs-fp32 arm for `c`'s own backend, as the differential
// would build it.
VariantSpec QuantizedArm(const Candidate& c) {
  VariantSpec spec;
  spec.name = "quantized";
  spec.backend = c.backend;
  spec.quantized = true;
  return spec;
}

// Scans the seed pool for a candidate whose quantized arm diverges. The
// fake-quantization snaps activations to 256 levels, so most candidates
// with any detection activity diverge in the `detections` stream within a
// few ticks; scanning keeps the test robust to seed-pool reshuffles.
std::optional<Candidate> FindQuantizedDivergence() {
  MutationScheduler scheduler(2026, /*default_ticks=*/12);
  for (int i = 0; i < 12; ++i) {
    Candidate c = scheduler.SeedCandidate(i);
    c.quantized = false;  // fp32 reference arm
    if (VariantDiverges(c, QuantizedArm(c))) return c;
  }
  return std::nullopt;
}

TEST(MinimizerTest, SeededQuantizedDivergenceShrinksAndStillReproduces) {
  const auto seed = FindQuantizedDivergence();
  ASSERT_TRUE(seed.has_value())
      << "no seed candidate's quantized arm diverges — the differential "
         "oracle has lost its diff point";
  const VariantSpec arm = QuantizedArm(*seed);
  const MinimizeResult result = Minimize(*seed, DivergencePredicate(arm));

  // Strictly smaller…
  EXPECT_LT(result.final_cost, result.initial_cost);
  EXPECT_EQ(result.final_cost, CandidateCost(result.candidate));
  // …and still a repro of the original divergence.
  EXPECT_TRUE(VariantDiverges(result.candidate, arm));
  // The inputs that define the divergence are untouched: the minimizer
  // shrinks the scenario/fault plan, never the arms being diffed.
  EXPECT_EQ(result.candidate.backend, seed->backend);
  EXPECT_FALSE(result.candidate.quantized);
}

TEST(MinimizerTest, MinimizedArtifactRoundTripsAndReproduces) {
  const auto seed = FindQuantizedDivergence();
  ASSERT_TRUE(seed.has_value());
  const VariantSpec arm = QuantizedArm(*seed);
  const MinimizeResult result = Minimize(*seed, DivergencePredicate(arm));

  // The end-to-end promise of `certkit replay --minimize --out F`: the
  // written artifact re-executes bit-identically and still diverges.
  const EvalResult eval = CampaignRunner::Evaluate(result.candidate);
  const std::string json =
      ReplayArtifactJson(MakeArtifact(result.candidate, eval));
  ReplayArtifact parsed;
  std::string error;
  ASSERT_TRUE(ParseReplayArtifact(json, &parsed, &error)) << error;
  const ReplayOutcome replay = ExecuteReplay(parsed);
  EXPECT_TRUE(replay.digest_matches);
  EXPECT_FALSE(replay.divergence.diverged);
  EXPECT_TRUE(VariantDiverges(parsed.candidate, arm));
}

TEST(MinimizerTest, OutcomePreservingShrinkKeepsTheVerdictSignature) {
  MutationScheduler scheduler(7, /*default_ticks=*/12);
  const Candidate seed = scheduler.SeedCandidate(3);
  const std::string outcome =
      OutcomeSignature(CampaignRunner::Evaluate(seed).verdict);
  const MinimizeResult result = Minimize(seed, OutcomePredicate(outcome));
  EXPECT_LE(result.final_cost, result.initial_cost);
  EXPECT_EQ(
      OutcomeSignature(CampaignRunner::Evaluate(result.candidate).verdict),
      outcome);
}

TEST(MinimizerTest, CostIsStrictlyMonotoneInEveryMoveAxis) {
  Candidate c;
  c.ticks = 20;
  c.scenario.num_vehicles = 4;
  c.detector_input_h = 64;
  c.detector_input_w = 64;
  adpilot::FaultSpec f;
  f.duration_ticks = 8;
  c.faults.push_back(f);
  const std::int64_t base = CandidateCost(c);

  Candidate fewer_faults = c;
  fewer_faults.faults.clear();
  EXPECT_LT(CandidateCost(fewer_faults), base);

  Candidate fewer_ticks = c;
  fewer_ticks.ticks = 10;
  EXPECT_LT(CandidateCost(fewer_ticks), base);

  Candidate fewer_actors = c;
  fewer_actors.scenario.num_vehicles = 2;
  EXPECT_LT(CandidateCost(fewer_actors), base);

  Candidate native_input = c;
  native_input.detector_input_h = 0;
  native_input.detector_input_w = 0;
  EXPECT_LT(CandidateCost(native_input), base);

  Candidate shorter_fault = c;
  shorter_fault.faults[0].duration_ticks = 4;
  EXPECT_LT(CandidateCost(shorter_fault), base);
}

TEST(MinimizerTest, AcceptsNothingWhenPredicateRejectsAllShrinks) {
  MutationScheduler scheduler(9, /*default_ticks=*/5);
  const Candidate seed = scheduler.SeedCandidate(0);
  const MinimizeResult result =
      Minimize(seed, [](const Candidate&) { return false; });
  EXPECT_EQ(result.final_cost, result.initial_cost);
  EXPECT_EQ(result.accepted_moves, 0);
  EXPECT_EQ(CandidateJson(result.candidate), CandidateJson(seed));
}

}  // namespace
}  // namespace certkit::campaign
