// Long-lived serve loop tests: the `certkit serve --stdin` request/response
// contract (stats and shutdown kinds, malformed-line recovery, EOF vs
// shutdown termination) and the determinism of `stats` responses at a
// fixed seed with timing off — the telemetry snapshot must be a pure
// function of the workload, byte for byte.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/service.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "timing/timing.h"

namespace campaign = certkit::campaign;
namespace obs = certkit::obs;
namespace support = certkit::support;

namespace {

// Quiesce every process-global the stats snapshot reads, so each loop run
// starts from the same telemetry state.
void ResetTelemetry() {
  obs::MetricsRegistry::Instance().ResetAll();
  certkit::timing::TimerRegistry::Instance().ResetAll();
  obs::ResetFlightRecorderForTesting();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ServeStdin, ParserAcceptsTelemetryKinds) {
  std::vector<campaign::ServiceRequest> requests;
  std::string error;
  ASSERT_TRUE(campaign::ParseServiceRequests(
      "{\"id\":\"s1\",\"kind\":\"stats\"}\n"
      "{\"id\":\"s2\",\"kind\":\"shutdown\"}\n",
      &requests, &error))
      << error;
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].kind, "stats");
  EXPECT_EQ(requests[1].kind, "shutdown");
  EXPECT_FALSE(campaign::ParseServiceRequests(
      "{\"id\":\"x\",\"kind\":\"telemetry\"}", &requests, &error));
}

TEST(ServeStdin, LoopAnswersStatsRecoversFromGarbageAndStopsOnShutdown) {
  ResetTelemetry();
  campaign::CampaignService service(1);
  std::istringstream in(
      "{\"id\":\"c1\",\"kind\":\"campaign\",\"seed\":3,\"population\":2,"
      "\"generations\":1,\"ticks\":4}\n"
      "\n"  // blank lines are skipped, not answered
      "{\"id\":\"s1\",\"kind\":\"stats\"}\n"
      "this is not json\n"
      "{\"id\":\"bye\",\"kind\":\"shutdown\"}\n"
      "{\"id\":\"after\",\"kind\":\"stats\"}\n");  // never reached
  std::ostringstream out;
  const campaign::ServeLoopResult result =
      campaign::RunServeLoop(in, out, &service);

  EXPECT_EQ(result.requests, 4);  // campaign, stats, malformed, shutdown
  EXPECT_EQ(result.failed, 1);    // the garbage line
  EXPECT_TRUE(result.shutdown);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"id\":\"c1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"s1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"stats\""), std::string::npos);
  // Malformed lines get a synthetic id and keep the loop alive.
  EXPECT_NE(lines[2].find("\"id\":\"-\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[3].find("\"id\":\"bye\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"status\":\"shutdown\""), std::string::npos);

  // The request after shutdown stayed in the stream, unconsumed past the
  // shutdown line's getline.
  EXPECT_EQ(out.str().find("\"id\":\"after\""), std::string::npos);
}

TEST(ServeStdin, EofEndsLoopWithoutShutdownFlag) {
  ResetTelemetry();
  campaign::CampaignService service(1);
  std::istringstream in("{\"id\":\"s1\",\"kind\":\"stats\"}\n");
  std::ostringstream out;
  const campaign::ServeLoopResult result =
      campaign::RunServeLoop(in, out, &service);
  EXPECT_EQ(result.requests, 1);
  EXPECT_EQ(result.failed, 0);
  EXPECT_FALSE(result.shutdown);
}

TEST(ServeStdin, MultiRequestArrayOnOneLineIsMalformed) {
  ResetTelemetry();
  campaign::CampaignService service(1);
  std::istringstream in(
      "[{\"id\":\"a\",\"kind\":\"stats\"},{\"id\":\"b\",\"kind\":\"stats\"}]"
      "\n");
  std::ostringstream out;
  const campaign::ServeLoopResult result =
      campaign::RunServeLoop(in, out, &service);
  EXPECT_EQ(result.requests, 1);
  EXPECT_EQ(result.failed, 1);
  EXPECT_NE(out.str().find("\"ok\":false"), std::string::npos);
}

// The headline determinism contract: with timing off, a serve session's
// complete output — campaign responses *and* stats telemetry — is a pure
// function of the request stream and seeds. One warmup run first absorbs
// process-lifetime one-shots (coverage probe declaration, tuning caches)
// that record real flight events.
TEST(ServeStdin, StatsAreDeterministicAtFixedSeedWithTimingOff) {
  const std::string script =
      "{\"id\":\"c1\",\"kind\":\"campaign\",\"seed\":11,\"population\":2,"
      "\"generations\":1,\"ticks\":4}\n"
      "{\"id\":\"s1\",\"kind\":\"stats\"}\n"
      "{\"id\":\"bye\",\"kind\":\"shutdown\"}\n";
  const auto run_once = [&script]() {
    ResetTelemetry();
    campaign::CampaignService service(1, /*include_timing=*/false);
    std::istringstream in(script);
    std::ostringstream out;
    const campaign::ServeLoopResult result =
        campaign::RunServeLoop(in, out, &service);
    EXPECT_EQ(result.failed, 0);
    EXPECT_TRUE(result.shutdown);
    return out.str();
  };
  (void)run_once();  // warmup
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"stats\""), std::string::npos);
  EXPECT_NE(first.find("\"recorder\""), std::string::npos);
}

TEST(ServeStdin, StatsJsonShapeAndTimingGating) {
  ResetTelemetry();
  // Timing off: recorder occupancy numbers that depend on live thread
  // scheduling (ring count) and wall-clock-derived histogram fields are
  // absent; structure and deterministic counters are present.
  const std::string without = campaign::ServiceStatsJson(false);
  support::JsonValue root;
  std::string error;
  ASSERT_TRUE(support::ParseJson(without, &root, &error)) << error;
  const support::JsonValue* stats = root.Find("stats");
  ASSERT_NE(stats, nullptr);
  const support::JsonValue* recorder = stats->Find("recorder");
  ASSERT_NE(recorder, nullptr);
  std::int64_t capacity = 0;
  ASSERT_TRUE(support::JsonGetI64(*recorder, "ring_capacity", &capacity,
                                  &error))
      << error;
  EXPECT_EQ(capacity, obs::kFlightRingCapacity);
  EXPECT_NE(recorder->Find("events"), nullptr);
  EXPECT_NE(recorder->Find("dropped"), nullptr);
  EXPECT_EQ(recorder->Find("rings"), nullptr);
  EXPECT_NE(stats->Find("metrics"), nullptr);
  EXPECT_EQ(without.find("\"p50\""), std::string::npos);

  const std::string with = campaign::ServiceStatsJson(true);
  ASSERT_TRUE(support::ParseJson(with, &root, &error)) << error;
  EXPECT_NE(root.Find("stats")->Find("recorder")->Find("rings"), nullptr);
}

}  // namespace
