// Replay artifact round-trip: emit -> parse -> emit must be byte-identical,
// because the artifact is the *only* input `certkit replay` gets — any field
// that loses precision (a %.3f double, a full-width u64 seed squeezed
// through a JSON double) silently changes the drive being replayed and the
// digest gate turns into noise. These tests pin the serialization layer:
// the JSON primitives (escape / shortest-round-trip numbers / parser), the
// Candidate, ScenarioConfig, FaultPlan and OracleVerdict (de)serializers,
// and the artifact container itself.
#include "campaign/replay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "campaign/mutation.h"
#include "support/json.h"

namespace certkit::campaign {
namespace {

using support::JsonEscape;
using support::JsonNumber;
using support::JsonValue;
using support::ParseJson;

// --- JSON primitives -----------------------------------------------------

TEST(JsonPrimitivesTest, EscapeProducesParseableStrings) {
  const std::string nasty =
      "quote:\" backslash:\\ newline:\n tab:\t bell:\x07 del:\x1f";
  const std::string doc = JsonEscape(nasty);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &v, &error)) << error;
  ASSERT_EQ(v.kind, JsonValue::Kind::kString);
  EXPECT_EQ(v.string, nasty);
}

TEST(JsonPrimitivesTest, NumberRoundTripsExactDoubles) {
  const double cases[] = {0.0,
                          -0.0,
                          0.1,
                          1.0 / 3.0,
                          0.1 + 0.2,
                          -123456.789,
                          1e-300,
                          1.7976931348623157e308,
                          std::numeric_limits<double>::denorm_min()};
  for (const double d : cases) {
    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(JsonNumber(d), &v, &error)) << error;
    ASSERT_EQ(v.kind, JsonValue::Kind::kNumber);
    // Bit-pattern equality: the round trip must reproduce the exact double,
    // not merely a close one (0.0 vs -0.0 included).
    std::uint64_t want = 0, got = 0;
    std::memcpy(&want, &d, sizeof(want));
    std::memcpy(&got, &v.number, sizeof(got));
    EXPECT_EQ(want, got) << "double " << d << " emitted as " << JsonNumber(d);
  }
}

TEST(JsonPrimitivesTest, NonFiniteNumbersEmitNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonPrimitivesTest, ParserDistinguishesMalformedFromOutOfRange) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("1e999", &v, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_FALSE(ParseJson("1.2.3", &v, &error));
  EXPECT_NE(error.find("malformed number"), std::string::npos) << error;
  EXPECT_FALSE(ParseJson("--1", &v, &error));
  EXPECT_FALSE(ParseJson("{\"a\":}", &v, &error));
}

TEST(JsonPrimitivesTest, SixtyFourBitIntegersSurviveViaLiteral) {
  // 2^64 - 1 does not fit a double; the raw token must be preserved for
  // integer consumers to re-parse.
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("18446744073709551615", &v, &error)) << error;
  EXPECT_EQ(v.literal, "18446744073709551615");
}

TEST(HexU64Test, RoundTripsAndRejectsJunk) {
  for (const std::uint64_t x :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xDEADBEEF},
        ~std::uint64_t{0}}) {
    std::uint64_t back = 0;
    ASSERT_TRUE(ParseHexU64(HexU64(x), &back));
    EXPECT_EQ(back, x);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(ParseHexU64("abc", &out));                 // too short
  EXPECT_FALSE(ParseHexU64("00000000000000XY", &out));    // non-hex
  EXPECT_FALSE(ParseHexU64("0000000000000000ff", &out));  // too long
}

// --- candidate / verdict round trips -------------------------------------

Candidate AwkwardCandidate() {
  Candidate c;
  c.id = 42;
  c.parent_id = 7;
  c.generation = 3;
  // Full-width u64 seeds — the exact values mutation.cpp assigns from
  // rng_.Next(); these are what a double-typed parse would corrupt.
  c.scenario.seed = 0xFFFFFFFFFFFFFFFFull;
  c.fault_seed = 0x8000000000000001ull;
  c.scenario.num_vehicles = 5;
  c.scenario.num_pedestrians = 2;
  c.scenario.road_length = 123.456789012345;
  c.scenario.lane_width = 0.1 + 0.2;  // classic non-representable sum
  c.scenario.vehicle_speed_min = 1.0 / 3.0;
  c.scenario.vehicle_speed_max = 8.875;
  c.backend = nn::Backend::kOpenSim;
  c.quantized = true;
  c.detector_input_h = 96;
  c.detector_input_w = 128;
  c.ticks = 17;
  adpilot::FaultSpec f;
  f.kind = adpilot::FaultKind::kTimingOverrun;
  f.onset_tick = 3;
  f.duration_ticks = 5;
  f.magnitude = 0.30000000000000004;
  c.faults.push_back(f);
  f.kind = adpilot::FaultKind::kCanBitFlip;
  f.magnitude = 2.0;
  c.faults.push_back(f);
  return c;
}

TEST(CandidateRoundTripTest, EmitParseEmitIsByteIdentical) {
  const Candidate original = AwkwardCandidate();
  const std::string first = CandidateJson(original);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(first, &v, &error)) << error;
  Candidate parsed;
  ASSERT_TRUE(ParseCandidate(v, &parsed, &error)) << error;
  EXPECT_EQ(parsed.scenario.seed, original.scenario.seed);
  EXPECT_EQ(parsed.fault_seed, original.fault_seed);
  EXPECT_EQ(parsed.backend, original.backend);
  EXPECT_EQ(parsed.quantized, original.quantized);
  ASSERT_EQ(parsed.faults.size(), original.faults.size());
  EXPECT_EQ(parsed.faults[0].magnitude, original.faults[0].magnitude);
  EXPECT_EQ(CandidateJson(parsed), first);
}

TEST(CandidateRoundTripTest, RejectsUnknownBackendAndFaultKind) {
  const std::string base = CandidateJson(AwkwardCandidate());
  JsonValue v;
  std::string error;
  std::string bad = base;
  bad.replace(bad.find("\"open\""), 6, "\"tpu9\"");
  ASSERT_TRUE(ParseJson(bad, &v, &error)) << error;
  Candidate parsed;
  EXPECT_FALSE(ParseCandidate(v, &parsed, &error));
  EXPECT_NE(error.find("backend"), std::string::npos) << error;

  bad = base;
  bad.replace(bad.find("timing_overrun"), 14, "quantum_tunnel");
  ASSERT_TRUE(ParseJson(bad, &v, &error)) << error;
  EXPECT_FALSE(ParseCandidate(v, &parsed, &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(VerdictRoundTripTest, EmitParseEmitIsByteIdentical) {
  OracleVerdict verdict;
  verdict.final_state = adpilot::SafetyState::kSafeStop;
  verdict.safety.total = 12;
  verdict.safety.warnings = 9;
  verdict.safety.criticals = 3;
  verdict.safety.handled = 11;
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    verdict.safety.by_monitor[m] = m * m;
  }
  verdict.collision = true;
  verdict.non_finite_command = false;
  verdict.reached_goal = false;
  verdict.command_overrides = 4;
  verdict.ticks = 25;
  const std::string first = VerdictJson(verdict);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(first, &v, &error)) << error;
  OracleVerdict parsed;
  ASSERT_TRUE(ParseVerdict(v, &parsed, &error)) << error;
  EXPECT_EQ(VerdictJson(parsed), first);
  EXPECT_EQ(OutcomeSignature(parsed), OutcomeSignature(verdict));
}

// --- artifact container --------------------------------------------------

TEST(ArtifactRoundTripTest, RealEvaluationRoundTripsByteIdentically) {
  MutationScheduler scheduler(2026, /*default_ticks=*/6);
  const Candidate candidate = scheduler.SeedCandidate(0);
  const EvalResult eval = CampaignRunner::Evaluate(candidate);
  const ReplayArtifact artifact = MakeArtifact(candidate, eval);
  ASSERT_EQ(artifact.ticks.size(), static_cast<std::size_t>(candidate.ticks));

  const std::string first = ReplayArtifactJson(artifact);
  ReplayArtifact parsed;
  std::string error;
  ASSERT_TRUE(ParseReplayArtifact(first, &parsed, &error)) << error;
  EXPECT_EQ(parsed.report_digest, artifact.report_digest);
  EXPECT_EQ(parsed.outcome, artifact.outcome);
  ASSERT_EQ(parsed.ticks.size(), artifact.ticks.size());
  EXPECT_EQ(ReplayArtifactJson(parsed), first);
}

TEST(ArtifactRoundTripTest, RejectsWrongSchemaAndTruncation) {
  MutationScheduler scheduler(2026, /*default_ticks=*/3);
  const Candidate candidate = scheduler.SeedCandidate(0);
  const std::string good = ReplayArtifactJson(
      MakeArtifact(candidate, CampaignRunner::Evaluate(candidate)));

  ReplayArtifact parsed;
  std::string error;
  std::string bad = good;
  bad.replace(bad.find("\"schema\":1"), 10, "\"schema\":9");
  EXPECT_FALSE(ParseReplayArtifact(bad, &parsed, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  EXPECT_FALSE(ParseReplayArtifact(good.substr(0, good.size() / 2), &parsed,
                                   &error));
  EXPECT_FALSE(ParseReplayArtifact("", &parsed, &error));
  EXPECT_FALSE(ParseReplayArtifact("[]", &parsed, &error));
}

}  // namespace
}  // namespace certkit::campaign
