// The `certkit serve` request loop: a warm process handles many concurrent
// campaign/analysis requests with per-request coverage attribution. The
// core property — locked under TSan by the `service` label — is that a
// request's response is a pure function of the request: 8+ concurrent
// campaign requests produce byte-identical bodies and cover digests to
// solo runs of the same configurations, regardless of pool width or
// scheduling, and the queue-depth gauge settles back to zero.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/corpus_store.h"
#include "campaign/runner.h"
#include "campaign/service.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "support/io.h"
#include "support/json.h"

namespace certkit::campaign {
namespace {

namespace fs = std::filesystem;

ServiceRequest CampaignRequest(const std::string& id, std::uint64_t seed,
                               int population = 2, int generations = 1,
                               int ticks = 4) {
  ServiceRequest request;
  request.id = id;
  request.kind = "campaign";
  request.campaign.seed = seed;
  request.campaign.jobs = 1;
  request.campaign.population = population;
  request.campaign.generations = generations;
  request.campaign.ticks = ticks;
  return request;
}

std::string SoloCampaignJson(const ServiceRequest& request) {
  CampaignConfig config = request.campaign;
  config.jobs = 1;
  CampaignRunner runner(config);
  return CampaignJson(runner.Run());
}

TEST(CampaignServiceTest, EightConcurrentRequestsMatchSoloRuns) {
  // 8 concurrent requests (pool width 8): 6 distinct campaign configs, one
  // duplicated config (must agree with its twin), and the batch repeated
  // below at width 2 (must agree across widths).
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 7; ++i) {
    requests.push_back(
        CampaignRequest("req-" + std::to_string(i), 100 + i));
  }
  requests.push_back(CampaignRequest("req-twin", 100));  // same as req-0

  CampaignService service(8);
  const auto responses = service.Process(requests);
  ASSERT_EQ(requests.size(), responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(requests[i].id, responses[i].id) << "slot order broken";
    EXPECT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_GT(responses[i].cover_facts, 0);
  }

  // Per-request attribution: each response equals a solo run of exactly
  // that configuration — concurrent neighbors leaked nothing in.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string solo = SoloCampaignJson(requests[i]);
    EXPECT_EQ(solo, responses[i].body) << requests[i].id;
  }
  // The duplicated config agrees with its twin, including the digest.
  EXPECT_EQ(responses[0].body, responses.back().body);
  EXPECT_EQ(responses[0].cover_digest, responses.back().cover_digest);
  EXPECT_EQ(responses[0].cover_facts, responses.back().cover_facts);

  // Pool width is invisible in the responses.
  CampaignService narrow(2);
  const auto narrow_responses = narrow.Process(requests);
  ASSERT_EQ(responses.size(), narrow_responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(ServiceResponseJson(responses[i]),
              ServiceResponseJson(narrow_responses[i]));
  }
}

TEST(CampaignServiceTest, QueueMetricsSettleDeterministically) {
  auto& registry = obs::MetricsRegistry::Instance();
  const std::int64_t served_before =
      registry.GetCounter("service/requests_served").value();
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(CampaignRequest("m-" + std::to_string(i), 50 + i));
  }
  CampaignService service(4);
  const auto responses = service.Process(requests);
  ASSERT_EQ(5u, responses.size());
  EXPECT_EQ(0.0, registry.GetGauge("service/queue_depth").value());
  EXPECT_EQ(served_before + 5,
            registry.GetCounter("service/requests_served").value());
}

TEST(CampaignServiceTest, AnalyzeRequestsRunAlongsideCampaigns) {
  const std::string dir =
      (fs::temp_directory_path() / "certkit_service_analyze").string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  ASSERT_TRUE(support::WriteFile(dir + "/mod/a.cc",
                                 "int Add(int a, int b) { return a + b; }\n")
                  .ok());

  std::vector<ServiceRequest> requests;
  requests.push_back(CampaignRequest("c", 7));
  ServiceRequest analyze;
  analyze.id = "a";
  analyze.kind = "analyze";
  analyze.dir = dir;
  requests.push_back(analyze);
  ServiceRequest missing;
  missing.id = "missing";
  missing.kind = "analyze";
  missing.dir = dir + "/nope";
  requests.push_back(missing);

  CampaignService service(3);
  const auto responses = service.Process(requests);
  ASSERT_EQ(3u, responses.size());
  EXPECT_TRUE(responses[0].ok);
  EXPECT_TRUE(responses[1].ok) << responses[1].error;
  support::JsonValue body;
  std::string error;
  ASSERT_TRUE(support::ParseJson(responses[1].body, &body, &error)) << error;
  std::int64_t files = 0;
  ASSERT_TRUE(support::JsonGetI64(body, "files", &files, &error));
  EXPECT_EQ(1, files);
  // A bad request fails alone; the batch survives.
  EXPECT_FALSE(responses[2].ok);
  EXPECT_FALSE(responses[2].error.empty());
  fs::remove_all(dir, ec);
}

TEST(CampaignServiceTest, ResponseJsonRoundTrips) {
  ServiceResponse ok;
  ok.id = "r1";
  ok.ok = true;
  ok.body = "{\"x\":1}";
  ok.cover_facts = 42;
  ok.cover_digest = 0xdeadbeefcafef00dULL;
  const std::string line = ServiceResponseJson(ok);
  support::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(support::ParseJson(line, &parsed, &error)) << error;
  std::string id;
  ASSERT_TRUE(support::JsonGetString(parsed, "id", &id, &error));
  EXPECT_EQ("r1", id);
  std::string digest;
  ASSERT_TRUE(support::JsonGetString(parsed, "cover_digest", &digest, &error));
  EXPECT_EQ("deadbeefcafef00d", digest);

  ServiceResponse bad;
  bad.id = "r2";
  bad.error = "went \"sideways\"";
  ASSERT_TRUE(support::ParseJson(ServiceResponseJson(bad), &parsed, &error));
  bool is_ok = true;
  ASSERT_TRUE(support::JsonGetBool(parsed, "ok", &is_ok, &error));
  EXPECT_FALSE(is_ok);
}

TEST(ServiceRequestParsing, AcceptsArrayAndNdjson) {
  const char* array_form =
      "[{\"id\":\"a\",\"kind\":\"campaign\",\"seed\":1},\n"
      " {\"id\":\"b\",\"kind\":\"analyze\",\"dir\":\"src\"}]";
  const char* ndjson_form =
      "{\"id\":\"a\",\"kind\":\"campaign\",\"seed\":1}\n"
      "\n"
      "{\"id\":\"b\",\"kind\":\"analyze\",\"dir\":\"src\"}\n";
  for (const char* text : {array_form, ndjson_form}) {
    std::vector<ServiceRequest> requests;
    std::string error;
    ASSERT_TRUE(ParseServiceRequests(text, &requests, &error)) << error;
    ASSERT_EQ(2u, requests.size());
    EXPECT_EQ("a", requests[0].id);
    EXPECT_EQ("campaign", requests[0].kind);
    EXPECT_EQ(1u, requests[0].campaign.seed);
    EXPECT_EQ(1, requests[0].campaign.jobs) << "jobs must be forced to 1";
    EXPECT_EQ("analyze", requests[1].kind);
    EXPECT_EQ("src", requests[1].dir);
  }
}

TEST(ServiceRequestParsing, RejectsInvalidBatches) {
  const char* invalid[] = {
      "",
      "[]",
      "[1]",
      "[{\"kind\":\"campaign\"}]",                         // no id
      "[{\"id\":\"has space\",\"kind\":\"campaign\"}]",    // bad id chars
      "[{\"id\":\"a\",\"kind\":\"demolish\"}]",            // unknown kind
      "[{\"id\":\"a\",\"kind\":\"analyze\"}]",             // analyze sans dir
      "[{\"id\":\"a\",\"kind\":\"campaign\"},"
      "{\"id\":\"a\",\"kind\":\"campaign\"}]",             // duplicate id
      "[{\"id\":\"a\",\"kind\":\"campaign\","
      "\"population\":65}]",                               // over the cap
      "[{\"id\":\"a\",\"kind\":\"campaign\","
      "\"generations\":0}]",                               // under the floor
      "[{\"id\":\"a\",\"kind\":\"campaign\","
      "\"ticks\":121}]",                                   // over the cap
      "{\"id\":\"a\",\"kind\":\"campaign\"}\nnot json\n",  // NDJSON damage
  };
  for (const char* text : invalid) {
    std::vector<ServiceRequest> requests;
    std::string error;
    EXPECT_FALSE(ParseServiceRequests(text, &requests, &error))
        << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

}  // namespace
}  // namespace certkit::campaign
