// Determinism properties of checkpoint/resume and sharded campaigns:
//
//  * kill/resume — a campaign checkpointed after generation k and resumed
//    by a fresh runner produces byte-identical campaign JSON (and corpus
//    store contents) to one that never stopped;
//  * sharding — for N in {1, 2, 4}, evaluating each generation in N
//    disjoint slices and folding the deltas yields a byte-identical
//    campaign to the unsharded run, regardless of the order the deltas are
//    merged in;
//  * the checkpoint serializer reaches a fixpoint (emit -> parse -> emit),
//    and damaged / foreign checkpoints are detected loudly, never trusted.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/corpus_store.h"
#include "campaign/runner.h"
#include "gtest/gtest.h"
#include "support/io.h"

namespace certkit::campaign {
namespace {

namespace fs = std::filesystem;

CampaignConfig SmallConfig() {
  CampaignConfig config;
  config.seed = 9;
  config.jobs = 1;
  config.population = 3;
  config.generations = 2;
  config.ticks = 5;
  return config;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("certkit_ckpt_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(CheckpointResumeTest, CheckpointJsonReachesFixpoint) {
  CampaignConfig config = SmallConfig();
  config.checkpoint_dir = dir_;
  config.stop_after_generations = 1;
  CampaignState state = CampaignRunner::FreshState(config);
  CampaignRunner runner(config);
  const auto partial = runner.RunFrom(&state);
  EXPECT_FALSE(partial.complete);

  const std::string once = CheckpointJson(config, state);
  CampaignState parsed;
  bool mismatch = false;
  std::string error;
  ASSERT_TRUE(ParseCheckpoint(once, ConfigFingerprint(config), &parsed,
                              &mismatch, &error))
      << error;
  EXPECT_EQ(once, CheckpointJson(config, parsed));
}

TEST_F(CheckpointResumeTest, KillAndResumeIsByteIdenticalToUninterrupted) {
  // The reference: one uninterrupted run, no persistence.
  CampaignRunner straight(SmallConfig());
  const std::string reference = CampaignJson(straight.Run());

  // The interrupted run: stop (checkpoint intact) after generation 0...
  CampaignConfig config = SmallConfig();
  config.checkpoint_dir = dir_;
  config.stop_after_generations = 1;
  {
    CampaignState state = CampaignRunner::FreshState(config);
    CampaignRunner runner(config);
    const auto partial = runner.RunFrom(&state);
    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(1, partial.next_generation);
  }

  // ...then a *fresh* runner restores the checkpoint and finishes.
  config.stop_after_generations = 0;
  CampaignState resumed = CampaignRunner::FreshState(config);
  std::string error;
  ASSERT_EQ(CheckpointLoad::kResumed,
            LoadCampaignCheckpoint(dir_, config, &resumed, &error))
      << error;
  EXPECT_EQ(1, resumed.next_generation);
  CampaignRunner runner(config);
  const auto result = runner.RunFrom(&resumed);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(reference, CampaignJson(result));
}

TEST_F(CheckpointResumeTest, ResumedCorpusStoreMatchesUninterrupted) {
  CampaignConfig interrupted = SmallConfig();
  interrupted.checkpoint_dir = dir_;
  interrupted.stop_after_generations = 1;
  {
    CampaignState state = CampaignRunner::FreshState(interrupted);
    CampaignRunner runner(interrupted);
    runner.RunFrom(&state);
  }
  interrupted.stop_after_generations = 0;
  {
    CampaignState state = CampaignRunner::FreshState(interrupted);
    std::string error;
    ASSERT_EQ(CheckpointLoad::kResumed,
              LoadCampaignCheckpoint(dir_, interrupted, &state, &error));
    CampaignRunner runner(interrupted);
    runner.RunFrom(&state);
  }

  CampaignConfig uninterrupted = SmallConfig();
  uninterrupted.checkpoint_dir = dir_ + "_straight";
  {
    CampaignState state = CampaignRunner::FreshState(uninterrupted);
    CampaignRunner runner(uninterrupted);
    runner.RunFrom(&state);
  }

  // Same entry files, byte for byte.
  const CorpusStore a(dir_ + "/corpus");
  const CorpusStore b(uninterrupted.checkpoint_dir + "/corpus");
  const auto entries_a = a.LoadAll();
  const auto entries_b = b.LoadAll();
  ASSERT_EQ(entries_a.size(), entries_b.size());
  ASSERT_GT(entries_a.size(), 0u);
  for (std::size_t i = 0; i < entries_a.size(); ++i) {
    const std::uint64_t hash = CandidateHash(entries_a[i].candidate);
    EXPECT_EQ(hash, CandidateHash(entries_b[i].candidate));
    const auto bytes_a = support::ReadFile(a.EntryPath(hash));
    const auto bytes_b = support::ReadFile(b.EntryPath(hash));
    ASSERT_TRUE(bytes_a.ok());
    ASSERT_TRUE(bytes_b.ok());
    EXPECT_EQ(bytes_a.value(), bytes_b.value());
  }
  std::error_code ec;
  fs::remove_all(uninterrupted.checkpoint_dir, ec);
}

// Runs a full sharded campaign in-process: every generation is evaluated as
// `shards` disjoint slices (each from its own copy of the state, exactly
// like separate invocations resuming the shared checkpoint), and the deltas
// are merged in `merge_order` rotation.
std::string RunSharded(const CampaignConfig& base, int shards,
                       int merge_rotation) {
  CampaignConfig config = base;
  config.shard_count = shards;
  CampaignState state = CampaignRunner::FreshState(config);
  while (state.next_generation < config.generations) {
    std::vector<ShardDelta> deltas;
    for (int i = 0; i < shards; ++i) {
      CampaignConfig shard_config = config;
      shard_config.shard_index = i;
      CampaignState shard_state = state;  // each shard resumes the same state
      CampaignRunner runner(shard_config);
      deltas.push_back(runner.RunShardGeneration(&shard_state));
    }
    std::rotate(deltas.begin(),
                deltas.begin() + (merge_rotation % shards), deltas.end());
    CampaignRunner merger(config);
    std::string error;
    EXPECT_TRUE(merger.MergeShardDeltas(deltas, &state, &error)) << error;
  }
  return CampaignJson(CampaignRunner::Finalize(base, state));
}

TEST_F(CheckpointResumeTest, ShardedMergeEqualsUnshardedForAnyShardCount) {
  const CampaignConfig base = SmallConfig();
  CampaignRunner straight(base);
  const std::string reference = CampaignJson(straight.Run());
  for (int shards : {1, 2, 4}) {
    EXPECT_EQ(reference, RunSharded(base, shards, 0)) << shards << " shards";
  }
}

TEST_F(CheckpointResumeTest, ShardMergeOrderDoesNotMatter) {
  const CampaignConfig base = SmallConfig();
  const std::string in_order = RunSharded(base, 4, 0);
  for (int rotation : {1, 2, 3}) {
    EXPECT_EQ(in_order, RunSharded(base, 4, rotation)) << rotation;
  }
}

TEST_F(CheckpointResumeTest, MergeRejectsIncompleteOrDuplicateDeltaSets) {
  CampaignConfig config = SmallConfig();
  config.shard_count = 2;
  CampaignState state = CampaignRunner::FreshState(config);
  std::vector<ShardDelta> deltas;
  for (int i = 0; i < 2; ++i) {
    CampaignConfig shard_config = config;
    shard_config.shard_index = i;
    CampaignState shard_state = state;
    CampaignRunner runner(shard_config);
    deltas.push_back(runner.RunShardGeneration(&shard_state));
  }
  CampaignRunner merger(config);
  std::string error;

  std::vector<ShardDelta> missing = {deltas[0]};
  CampaignState scratch = state;
  EXPECT_FALSE(merger.MergeShardDeltas(missing, &scratch, &error));
  EXPECT_FALSE(error.empty());

  std::vector<ShardDelta> duplicate = {deltas[0], deltas[0]};
  scratch = state;
  EXPECT_FALSE(merger.MergeShardDeltas(duplicate, &scratch, &error));

  std::vector<ShardDelta> wrong_gen = deltas;
  wrong_gen[0].generation = 5;
  scratch = state;
  EXPECT_FALSE(merger.MergeShardDeltas(wrong_gen, &scratch, &error));

  // The untampered set still merges.
  scratch = state;
  EXPECT_TRUE(merger.MergeShardDeltas(deltas, &scratch, &error)) << error;
}

TEST_F(CheckpointResumeTest, ShardDeltaJsonReachesFixpoint) {
  CampaignConfig config = SmallConfig();
  config.shard_count = 2;
  config.shard_index = 1;
  CampaignState state = CampaignRunner::FreshState(config);
  CampaignRunner runner(config);
  const ShardDelta delta = runner.RunShardGeneration(&state);
  const std::string once = ShardDeltaJson(config, delta);
  ShardDelta parsed;
  std::uint64_t fingerprint = 0;
  std::string error;
  ASSERT_TRUE(ParseShardDelta(once, &parsed, &fingerprint, &error)) << error;
  EXPECT_EQ(ConfigFingerprint(config), fingerprint);
  EXPECT_EQ(once, ShardDeltaJson(config, parsed));
}

TEST_F(CheckpointResumeTest, MissingCheckpointIsFresh) {
  CampaignState state;
  std::string error;
  EXPECT_EQ(CheckpointLoad::kFresh,
            LoadCampaignCheckpoint(dir_, SmallConfig(), &state, &error));
}

TEST_F(CheckpointResumeTest, ForeignConfigurationIsAMismatch) {
  CampaignConfig config = SmallConfig();
  const CampaignState state = CampaignRunner::FreshState(config);
  ASSERT_TRUE(WriteCampaignCheckpoint(dir_, config, state).ok());

  CampaignConfig other = config;
  other.seed = 10;  // identity field -> different fingerprint
  CampaignState out;
  std::string error;
  const auto load = LoadCampaignCheckpoint(dir_, other, &out, &error);
  EXPECT_EQ(CheckpointLoad::kMismatch, load);
  const std::string diagnostic = CheckpointDiagnostic(load, dir_, error);
  EXPECT_NE(diagnostic.find("different campaign configuration"),
            std::string::npos)
      << diagnostic;

  // Execution knobs are NOT identity: jobs/timing/stop-after/shard/dirs
  // differ freely between the invocations of one campaign.
  CampaignConfig knobs = config;
  knobs.jobs = 7;
  knobs.include_timing = true;
  knobs.stop_after_generations = 1;
  knobs.checkpoint_dir = "elsewhere";
  EXPECT_EQ(ConfigFingerprint(config), ConfigFingerprint(knobs));
}

TEST_F(CheckpointResumeTest, DamagedCheckpointIsLoudlyCorrupt) {
  CampaignConfig config = SmallConfig();
  const CampaignState state = CampaignRunner::FreshState(config);
  ASSERT_TRUE(WriteCampaignCheckpoint(dir_, config, state).ok());
  const std::string path = CheckpointPath(dir_);
  const auto blob = support::ReadFile(path);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(
      support::WriteFile(path, blob.value().substr(0, blob.value().size() / 2))
          .ok());
  CampaignState out;
  std::string error;
  const auto load = LoadCampaignCheckpoint(dir_, config, &out, &error);
  EXPECT_EQ(CheckpointLoad::kCorrupt, load);
  EXPECT_NE(CheckpointDiagnostic(load, dir_, error).find("delete"),
            std::string::npos);
}

TEST_F(CheckpointResumeTest, ParseShardSpecValidates) {
  int index = 0;
  int count = 0;
  std::string error;
  EXPECT_TRUE(ParseShardSpec("0/1", &index, &count, &error));
  EXPECT_EQ(0, index);
  EXPECT_EQ(1, count);
  EXPECT_TRUE(ParseShardSpec("3/4", &index, &count, &error));
  EXPECT_EQ(3, index);
  EXPECT_EQ(4, count);

  const char* bad[] = {
      "",      "/",    "1/",   "/2",  "2/2",   "5/4",  "-1/4",
      "0/0",   "0/-2", "a/4",  "0/b", "1.5/4", "0/4x", "0//4",
      "0/4/8", " 1/4", "1/ 4", "0/2000000",
  };
  for (const char* spec : bad) {
    error.clear();
    EXPECT_FALSE(ParseShardSpec(spec, &index, &count, &error))
        << "accepted: '" << spec << "'";
    EXPECT_FALSE(error.empty()) << spec;
  }
}

}  // namespace
}  // namespace certkit::campaign
