// CLI-surface validation for the campaign/merge-corpus/serve flag set:
// BuildCampaignConfig is the exact translation `certkit campaign` performs,
// so these tests lock the diagnostics a user sees for malformed --shard
// specs, --checkpoint-dir collisions, and flag combinations that cannot
// work (sharding without persistence, artifacts from a shard slice).
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/service.h"
#include "gtest/gtest.h"
#include "support/flags.h"
#include "support/io.h"

namespace certkit::campaign {
namespace {

namespace fs = std::filesystem;

struct BuildResult {
  bool ok = false;
  CampaignConfig config;
  bool shard_mode = false;
  std::string error;
};

BuildResult Build(std::vector<std::string> args) {
  args.insert(args.begin(), {"certkit", "campaign"});
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());
  const support::FlagParser flags(static_cast<int>(argv.size()), argv.data());
  BuildResult result;
  result.ok = BuildCampaignConfig(flags, &result.config, &result.shard_mode,
                                  &result.error);
  return result;
}

TEST(CampaignCliFlags, DefaultsParse) {
  const BuildResult r = Build({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.shard_mode);
  EXPECT_EQ(1u, r.config.seed);
  EXPECT_EQ(12, r.config.population);
  EXPECT_EQ(4, r.config.generations);
  EXPECT_EQ(25, r.config.ticks);
  EXPECT_EQ(0, r.config.stop_after_generations);
  EXPECT_TRUE(r.config.checkpoint_dir.empty());
}

TEST(CampaignCliFlags, FullFlagSetParses) {
  const BuildResult r = Build({"--seed", "9", "--population", "3",
                               "--generations", "2", "--ticks", "6",
                               "--checkpoint-dir", "/tmp/certkit_cli_ck",
                               "--shard", "1/4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.shard_mode);
  EXPECT_EQ(1, r.config.shard_index);
  EXPECT_EQ(4, r.config.shard_count);
  EXPECT_EQ("/tmp/certkit_cli_ck", r.config.checkpoint_dir);
}

TEST(CampaignCliFlags, MalformedNumbersAreRejected) {
  for (const char* flag :
       {"--seed", "--population", "--generations", "--ticks", "--stop-after"}) {
    const BuildResult r = Build({flag, "banana"});
    EXPECT_FALSE(r.ok) << flag;
    EXPECT_NE(r.error.find("integer"), std::string::npos) << r.error;
  }
}

TEST(CampaignCliFlags, OutOfRangeValuesNameTheFlag) {
  EXPECT_NE(Build({"--population", "0"}).error.find("--population"),
            std::string::npos);
  EXPECT_NE(Build({"--generations", "-3"}).error.find("--generations"),
            std::string::npos);
  EXPECT_NE(Build({"--ticks", "0"}).error.find("--ticks"), std::string::npos);
  EXPECT_NE(Build({"--stop-after", "-1"}).error.find("--stop-after"),
            std::string::npos);
}

TEST(CampaignCliFlags, ShardSpecValidationSurfacesCleanDiagnostics) {
  const char* bad_specs[] = {"2/2", "5/4", "0/0", "x/4", "1", "1/2/3"};
  for (const char* spec : bad_specs) {
    const BuildResult r =
        Build({"--checkpoint-dir", "/tmp/certkit_cli_ck", "--shard", spec});
    EXPECT_FALSE(r.ok) << spec;
    EXPECT_NE(r.error.find("--shard"), std::string::npos) << r.error;
  }
}

TEST(CampaignCliFlags, ShardRequiresCheckpointDir) {
  const BuildResult r = Build({"--shard", "0/2"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--checkpoint-dir"), std::string::npos) << r.error;
}

TEST(CampaignCliFlags, ShardForbidsArtifactDir) {
  const BuildResult r = Build({"--shard", "0/2", "--checkpoint-dir",
                               "/tmp/certkit_cli_ck", "--artifact-dir",
                               "/tmp/certkit_cli_art"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--artifact-dir"), std::string::npos) << r.error;
}

TEST(CampaignCliFlags, StopAfterRequiresCheckpointDir) {
  const BuildResult r = Build({"--stop-after", "1"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--checkpoint-dir"), std::string::npos) << r.error;
}

TEST(CampaignCliFlags, CheckpointDirCollidingWithAFileIsRejected) {
  const std::string path =
      (fs::temp_directory_path() / "certkit_cli_ck_collision").string();
  std::error_code ec;
  fs::remove_all(path, ec);
  ASSERT_TRUE(support::WriteFile(path, "i am a file").ok());
  const BuildResult r = Build({"--checkpoint-dir", path});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not a directory"), std::string::npos) << r.error;
  // An existing *directory* is of course fine (that is how resume works).
  fs::remove_all(path, ec);
  fs::create_directories(path);
  EXPECT_TRUE(Build({"--checkpoint-dir", path}).ok);
  fs::remove_all(path, ec);
}

}  // namespace
}  // namespace certkit::campaign
