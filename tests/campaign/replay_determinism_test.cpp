// Replay bit-identity: the property that makes a finding artifact evidence
// rather than an anecdote. An artifact written by a --jobs 4 fleet must be
// byte-identical to one written at --jobs 1 (artifact export inherits the
// campaign determinism contract), re-executing an artifact must reproduce
// its recorded TickReport digest exactly, and the digest must agree across
// all three inference backends — the accelerator-simulating paths are
// required to be numerically identical at the TickReport level, which is
// precisely what makes the *stream-level* differential (detections digests)
// informative when it does diverge. Runs under `replay` + `concurrency`
// labels so the TSan tree races the artifact-exporting fleet.
#include "campaign/replay.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "campaign/mutation.h"

namespace certkit::campaign {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       (std::string("certkit_replay_") + tag + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::map<std::string, std::string> SlurpDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    files[entry.path().filename().string()] = text.str();
  }
  return files;
}

CampaignConfig SmallConfig(int jobs, const std::string& artifact_dir) {
  CampaignConfig config;
  config.seed = 77;
  config.jobs = jobs;
  config.population = 4;
  config.generations = 2;
  config.ticks = 10;
  config.artifact_dir = artifact_dir;
  return config;
}

TEST(ReplayDeterminismTest, ArtifactsAreByteIdenticalAcrossJobCounts) {
  const std::string serial_dir = TempDir("serial");
  const std::string fleet_dir = TempDir("fleet");
  CampaignRunner(SmallConfig(1, serial_dir)).Run();
  CampaignRunner(SmallConfig(4, fleet_dir)).Run();
  const auto serial = SlurpDir(serial_dir);
  const auto fleet = SlurpDir(fleet_dir);
  ASSERT_FALSE(serial.empty()) << "campaign kept no candidates";
  ASSERT_EQ(serial.size(), fleet.size());
  for (const auto& [name, text] : serial) {
    ASSERT_TRUE(fleet.count(name)) << name << " missing from fleet run";
    EXPECT_EQ(text, fleet.at(name)) << name << " differs across job counts";
  }
  fs::remove_all(serial_dir);
  fs::remove_all(fleet_dir);
}

TEST(ReplayDeterminismTest, ArtifactAloneReExecutesBitIdentically) {
  const std::string dir = TempDir("roundtrip");
  CampaignRunner(SmallConfig(2, dir)).Run();
  int replayed = 0;
  for (const auto& [name, text] : SlurpDir(dir)) {
    ReplayArtifact artifact;
    std::string error;
    ASSERT_TRUE(ParseReplayArtifact(text, &artifact, &error))
        << name << ": " << error;
    // The parsed artifact is the ONLY input: no scheduler, no corpus, no
    // original Candidate object.
    const ReplayOutcome replay = ExecuteReplay(artifact);
    EXPECT_TRUE(replay.digest_matches)
        << name << ": digest " << HexU64(artifact.report_digest) << " -> "
        << HexU64(replay.report_digest);
    EXPECT_FALSE(replay.divergence.diverged)
        << name << ": tick " << replay.divergence.tick << " stream "
        << replay.divergence.stream;
    EXPECT_TRUE(replay.verdict_matches) << name;
    ++replayed;
  }
  EXPECT_GT(replayed, 0);
  fs::remove_all(dir);
}

TEST(ReplayDeterminismTest, TickReportDigestsAgreeAcrossAllBackends) {
  MutationScheduler scheduler(2026, /*default_ticks=*/10);
  for (int i = 0; i < 3; ++i) {
    Candidate candidate = scheduler.SeedCandidate(i);
    std::uint64_t digests[3] = {0, 0, 0};
    int b = 0;
    for (const nn::Backend backend :
         {nn::Backend::kClosedSim, nn::Backend::kOpenSim,
          nn::Backend::kCpuNaive}) {
      candidate.backend = backend;
      digests[b++] = CampaignRunner::Evaluate(candidate).report_digest;
    }
    EXPECT_EQ(digests[0], digests[1])
        << "candidate " << i << ": closed vs open";
    EXPECT_EQ(digests[0], digests[2])
        << "candidate " << i << ": closed vs cpu";
  }
}

TEST(ReplayDeterminismTest, QuantizedReplayIsDeterministicToo) {
  // Quantized inference diverges from fp32 — that is its purpose — but it
  // must be exactly as replayable: the fake-quantization is pure math on
  // the activations, with no RNG and no schedule dependence.
  MutationScheduler scheduler(2026, /*default_ticks=*/8);
  Candidate candidate = scheduler.SeedCandidate(1);
  candidate.quantized = true;
  const EvalResult a = CampaignRunner::Evaluate(candidate);
  const EvalResult b = CampaignRunner::Evaluate(candidate);
  EXPECT_EQ(a.report_digest, b.report_digest);
  EXPECT_FALSE(
      DiffSignatures(a.tick_signatures, b.tick_signatures).diverged);
}

TEST(ReplayDeterminismTest, DifferentialReportIsStable) {
  MutationScheduler scheduler(2026, /*default_ticks=*/6);
  const Candidate candidate = scheduler.SeedCandidate(2);
  const std::string first = DifferentialReportJson(RunDifferential(candidate));
  const std::string second =
      DifferentialReportJson(RunDifferential(candidate));
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace certkit::campaign
