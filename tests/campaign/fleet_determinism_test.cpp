// Fleet determinism: the campaign's output is a pure function of its seed.
//
// The same --seed with --jobs 1 and --jobs 4 must produce byte-identical
// campaign JSON (candidates are bred and merged serially in stable order;
// only evaluation fans out). This mirrors the PR-1 analysis-driver
// guarantee and is what makes campaign results citable evidence. Runs under
// the `concurrency` ctest label so the TSan build tree exercises the
// parallel fleet (shared cov::Registry units, the gpusim accelerator pool,
// and thread-local capture) for data races.
#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "campaign/mutation.h"
#include "coverage/coverage.h"

namespace certkit::campaign {
namespace {

CampaignConfig SmallConfig(int jobs) {
  CampaignConfig config;
  config.seed = 77;
  config.jobs = jobs;
  config.population = 4;
  config.generations = 2;
  config.ticks = 10;
  return config;
}

TEST(FleetDeterminismTest, SameSeedSameJsonAcrossJobCounts) {
  const std::string serial =
      CampaignJson(CampaignRunner(SmallConfig(1)).Run());
  const std::string fleet =
      CampaignJson(CampaignRunner(SmallConfig(4)).Run());
  EXPECT_EQ(serial, fleet);
  // Sanity: the campaign actually did something.
  EXPECT_NE(serial.find("\"new_facts\":"), std::string::npos);
  EXPECT_NE(serial.find("yolo/preprocess.cc"), std::string::npos);
}

TEST(FleetDeterminismTest, RepeatedFleetRunsAreIdentical) {
  const std::string first =
      CampaignJson(CampaignRunner(SmallConfig(4)).Run());
  const std::string second =
      CampaignJson(CampaignRunner(SmallConfig(4)).Run());
  EXPECT_EQ(first, second);
}

TEST(FleetDeterminismTest, EvaluateIsAPureFunctionOfTheCandidate) {
  MutationScheduler scheduler(5, /*default_ticks=*/8);
  const Candidate candidate = scheduler.SeedCandidate(1);
  const EvalResult a = CampaignRunner::Evaluate(candidate);
  const EvalResult b = CampaignRunner::Evaluate(candidate);
  EXPECT_EQ(OutcomeSignature(a.verdict), OutcomeSignature(b.verdict));
  EXPECT_EQ(a.cover, b.cover) << "captured covers differ between runs";
  EXPECT_FALSE(a.cover.empty());
}

// The underpinning of per-candidate attribution: a thread's capture sees
// exactly the probes that thread fired, however many other threads hammer
// the same unit concurrently.
TEST(FleetDeterminismTest, ThreadCaptureIsolatesConcurrentWorkers) {
  cov::Unit& unit = cov::Registry::Instance().GetOrCreate(
      "campaign_test/capture_isolation");
  static constexpr int kThreads = 4;
  static constexpr int kStmtsPerThread = 8;
  static bool declared = false;
  if (!declared) {
    unit.DeclareStatements(kThreads * kStmtsPerThread);
    declared = true;
  }
  std::vector<cov::CoverSet> captured(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &unit, &captured] {
      cov::ThreadCapture capture;
      for (int rep = 0; rep < 50; ++rep) {
        for (int s = 0; s < kStmtsPerThread; ++s) {
          unit.Stmt(t * kStmtsPerThread + s);
        }
      }
      captured[static_cast<std::size_t>(t)] = capture.Take();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    const cov::UnitCover& cover =
        captured[static_cast<std::size_t>(t)]
            .at("campaign_test/capture_isolation");
    EXPECT_EQ(cover.stmts.size(), static_cast<std::size_t>(kStmtsPerThread));
    for (const int id : cover.stmts) {
      EXPECT_GE(id, t * kStmtsPerThread);
      EXPECT_LT(id, (t + 1) * kStmtsPerThread);
    }
  }
}

}  // namespace
}  // namespace certkit::campaign
