// Edge-case tests for the fuzzy parser: modern-C++ constructs the analyzer
// meets in real automotive codebases.
#include <gtest/gtest.h>

#include "ast/parser.h"

namespace certkit::ast {
namespace {

SourceFileModel MustParse(std::string_view src) {
  auto r = ParseSource("edge.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ParserEdgeTest, NestedClassMethods) {
  SourceFileModel m = MustParse(
      "class Outer {\n"
      " public:\n"
      "  class Inner {\n"
      "   public:\n"
      "    int Get() { return 1; }\n"
      "  };\n"
      "  int Use() { return 2; }\n"
      "};\n");
  ASSERT_EQ(m.types.size(), 2u);
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].qualified_name, "Outer::Inner::Get");
  EXPECT_EQ(m.functions[1].qualified_name, "Outer::Use");
}

TEST(ParserEdgeTest, InlineNamespace) {
  SourceFileModel m = MustParse(
      "namespace api {\n"
      "inline namespace v2 {\n"
      "void Call() {}\n"
      "}\n"
      "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  // `inline` is consumed as a specifier; the namespace scope still applies.
  EXPECT_NE(m.functions[0].qualified_name.find("Call"), std::string::npos);
}

TEST(ParserEdgeTest, ConstexprAndStaticFunctions) {
  SourceFileModel m = MustParse(
      "constexpr int Square(int x) { return x * x; }\n"
      "static double Half(double v) { return v / 2; }\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "Square");
  EXPECT_TRUE(m.functions[1].is_static);
}

TEST(ParserEdgeTest, CallOperatorOverload) {
  SourceFileModel m = MustParse(
      "struct Functor {\n"
      "  int operator()(int x) const { return x + 1; }\n"
      "  bool operator<(const Functor& o) const { return false; }\n"
      "};\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "operator()");
  EXPECT_EQ(m.functions[1].name, "operator<");
}

TEST(ParserEdgeTest, ConversionOperator) {
  SourceFileModel m = MustParse(
      "struct Wrapper { operator bool() const { return true; } };");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "operatorbool");
}

TEST(ParserEdgeTest, OutOfLineTemplateMethod) {
  SourceFileModel m = MustParse(
      "template <typename T> class Box { T v_; public: T Get(); };\n"
      "template <typename T>\n"
      "T Box<T>::Get() { return v_; }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "Get");
  EXPECT_EQ(m.functions[0].qualified_name, "Box::Get");
}

TEST(ParserEdgeTest, AttributesOnFunctions) {
  SourceFileModel m = MustParse(
      "[[nodiscard]] int Compute() { return 3; }\n"
      "void Deprecated() {}\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "Compute");
}

TEST(ParserEdgeTest, LambdaInsideFunctionFoldedIn) {
  SourceFileModel m = MustParse(
      "int f() {\n"
      "  auto add = [](int a, int b) { return a + b; };\n"
      "  return add(1, 2);\n"
      "}\n");
  // The lambda body belongs to f's extent (documented behavior).
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "f");
}

TEST(ParserEdgeTest, VirtualOverrideFinal) {
  SourceFileModel m = MustParse(
      "struct Base { virtual int Act() { return 0; } virtual ~Base() {} };\n"
      "struct Derived final : Base {\n"
      "  int Act() override final { return 1; }\n"
      "};\n");
  ASSERT_EQ(m.types.size(), 2u);
  EXPECT_EQ(m.types[1].name, "Derived");
  ASSERT_EQ(m.functions.size(), 3u);
  EXPECT_EQ(m.functions[2].qualified_name, "Derived::Act");
}

TEST(ParserEdgeTest, MultipleDeclaratorsOneStatement) {
  SourceFileModel m = MustParse("int a = 1, b = 2;\n");
  // The fuzzy parser records at least the statement's declaration intent;
  // exact multi-declarator splitting is a documented approximation.
  EXPECT_GE(m.globals.size(), 1u);
}

TEST(ParserEdgeTest, FunctionPointerParameter) {
  SourceFileModel m = MustParse(
      "int Apply(int (*fn)(int), int v) { return fn(v); }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "Apply");
  EXPECT_EQ(m.functions[0].params.size(), 2u);
}

TEST(ParserEdgeTest, DefaultMemberInitializers) {
  SourceFileModel m = MustParse(
      "struct Config {\n"
      "  int retries = 3;\n"
      "  double timeout{1.5};\n"
      "  int Limit() const { return retries; }\n"
      "};\n");
  ASSERT_EQ(m.types.size(), 1u);
  EXPECT_EQ(m.types[0].field_count, 2);
  EXPECT_EQ(m.types[0].method_count, 1);
  EXPECT_TRUE(m.globals.empty());
}

TEST(ParserEdgeTest, EnumValuesDoNotLeakAsGlobals) {
  SourceFileModel m = MustParse(
      "enum class Mode { kAuto = 0, kManual = 1 };\n"
      "enum Flags { kRead = 1, kWrite = 2 };\n");
  EXPECT_EQ(m.types.size(), 2u);
  EXPECT_TRUE(m.globals.empty());
  EXPECT_TRUE(m.functions.empty());
}

TEST(ParserEdgeTest, StaticAssertAtNamespaceScope) {
  SourceFileModel m = MustParse(
      "static_assert(sizeof(int) == 4, \"ILP32/LP64 expected\");\n"
      "int after = 1;\n");
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].name, "after");
}

TEST(ParserEdgeTest, RawStringWithBracesDoesNotConfuseScopes) {
  SourceFileModel m = MustParse(
      "const char* kJson = R\"({\"a\": {\"b\": 1}})\";\n"
      "void After() {}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "After");
}

TEST(ParserEdgeTest, PreprocessorConditionalsIgnoredStructurally) {
  SourceFileModel m = MustParse(
      "#ifdef USE_GPU\n"
      "void GpuPath() {}\n"
      "#else\n"
      "void CpuPath() {}\n"
      "#endif\n");
  // Both branches are visible to the unpreprocessed analyzer (as with
  // Lizard) — the directive lines themselves are not code.
  EXPECT_EQ(m.functions.size(), 2u);
}

TEST(ParserEdgeTest, TrailingCommaAndPackExpansion) {
  SourceFileModel m = MustParse(
      "template <typename... Args>\n"
      "int Sum(Args... args) { return (args + ... + 0); }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "Sum");
}

TEST(ParserEdgeTest, UsingAliasTemplate) {
  SourceFileModel m = MustParse(
      "template <typename T> using Vec = std::vector<T>;\n"
      "int g = 0;\n");
  EXPECT_EQ(m.typedef_count, 1);
  ASSERT_EQ(m.globals.size(), 1u);
}

TEST(ParserEdgeTest, NoexceptExpressionInSignature) {
  SourceFileModel m = MustParse(
      "void Risky(int x) noexcept(noexcept(x + 1)) { (void)x; }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "Risky");
}

}  // namespace
}  // namespace certkit::ast
