// Unit tests for the fuzzy C/C++/CUDA structural parser.
#include "ast/parser.h"

#include <gtest/gtest.h>

#include <string>

namespace certkit::ast {
namespace {

SourceFileModel MustParse(std::string_view src) {
  auto r = ParseSource("test.cc", src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ParserTest, FreeFunction) {
  SourceFileModel m = MustParse("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(m.functions.size(), 1u);
  const FunctionModel& f = m.functions[0];
  EXPECT_EQ(f.name, "add");
  EXPECT_EQ(f.qualified_name, "add");
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_EQ(f.params[0].name, "a");
  EXPECT_EQ(f.params[1].name, "b");
  EXPECT_EQ(f.params[0].type_text, "int");
  EXPECT_FALSE(f.is_method);
}

TEST(ParserTest, FunctionDeclarationNotRecorded) {
  SourceFileModel m = MustParse("int add(int a, int b);");
  EXPECT_TRUE(m.functions.empty());
}

TEST(ParserTest, NamespaceQualification) {
  SourceFileModel m = MustParse(
      "namespace outer { namespace inner {\n"
      "void f() {}\n"
      "} }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].qualified_name, "outer::inner::f");
}

TEST(ParserTest, Cpp17NestedNamespace) {
  SourceFileModel m = MustParse("namespace a::b { void g() {} }");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].qualified_name, "a::b::g");
}

TEST(ParserTest, AnonymousNamespace) {
  SourceFileModel m = MustParse("namespace { void hidden() {} }");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].qualified_name, "hidden");
}

TEST(ParserTest, ClassWithMethods) {
  SourceFileModel m = MustParse(
      "class Tracker {\n"
      " public:\n"
      "  void Update(double dt) { t_ += dt; }\n"
      "  int Count() const { return n_; }\n"
      " private:\n"
      "  void Internal() {}\n"
      "  double t_;\n"
      "  int n_;\n"
      "};\n");
  ASSERT_EQ(m.types.size(), 1u);
  EXPECT_EQ(m.types[0].name, "Tracker");
  EXPECT_EQ(m.types[0].method_count, 3);
  EXPECT_EQ(m.types[0].public_method_count, 2);
  EXPECT_EQ(m.types[0].field_count, 2);
  ASSERT_EQ(m.functions.size(), 3u);
  EXPECT_EQ(m.functions[0].qualified_name, "Tracker::Update");
  EXPECT_TRUE(m.functions[0].is_method);
  // Class data members are not globals.
  EXPECT_TRUE(m.globals.empty());
}

TEST(ParserTest, StructDefaultPublic) {
  SourceFileModel m = MustParse("struct P { int x() { return 1; } };");
  ASSERT_EQ(m.types.size(), 1u);
  EXPECT_EQ(m.types[0].kind, TypeKind::kStruct);
  EXPECT_EQ(m.types[0].public_method_count, 1);
}

TEST(ParserTest, OutOfLineMethodDefinition) {
  SourceFileModel m = MustParse(
      "class A { public: void run(); };\n"
      "void A::run() { }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "run");
  EXPECT_EQ(m.functions[0].qualified_name, "A::run");
  EXPECT_TRUE(m.functions[0].is_method);
}

TEST(ParserTest, ConstructorAndDestructor) {
  SourceFileModel m = MustParse(
      "class B {\n"
      " public:\n"
      "  B() : x_(0) {}\n"
      "  ~B() {}\n"
      " private:\n"
      "  int x_;\n"
      "};\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "B");
  EXPECT_EQ(m.functions[1].name, "~B");
}

TEST(ParserTest, OperatorOverload) {
  SourceFileModel m = MustParse(
      "struct V { double x; };\n"
      "V operator+(const V& a, const V& b) { return {a.x + b.x}; }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "operator+");
  EXPECT_EQ(m.functions[0].params.size(), 2u);
}

TEST(ParserTest, TemplateFunction) {
  SourceFileModel m = MustParse(
      "template <typename T, int N>\n"
      "T sum(const T (&arr)[N]) { T s{}; for (int i = 0; i < N; ++i) s += "
      "arr[i]; return s; }\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "sum");
}

TEST(ParserTest, TemplateClassWithMethod) {
  SourceFileModel m = MustParse(
      "template <class T> class Box {\n"
      " public:\n"
      "  T Get() { return v_; }\n"
      " private:\n"
      "  T v_;\n"
      "};\n");
  ASSERT_EQ(m.types.size(), 1u);
  EXPECT_EQ(m.types[0].name, "Box");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].qualified_name, "Box::Get");
}

TEST(ParserTest, TrailingReturnType) {
  SourceFileModel m = MustParse("auto f(int x) -> double { return x * 2.0; }");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "f");
}

TEST(ParserTest, NoexceptAndConstQualifiers) {
  SourceFileModel m = MustParse(
      "struct S { int g() const noexcept { return 0; } };");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "g");
}

TEST(ParserTest, CudaKernelFlags) {
  SourceFileModel m = MustParse(
      "__global__ void scale(float* out, int n) { }\n"
      "__device__ float helper(float x) { return x; }\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_TRUE(m.functions[0].is_cuda_kernel);
  EXPECT_FALSE(m.functions[0].is_cuda_device);
  EXPECT_TRUE(m.functions[1].is_cuda_device);
  EXPECT_FALSE(m.functions[1].is_cuda_kernel);
}

TEST(ParserTest, GlobalVariables) {
  SourceFileModel m = MustParse(
      "int counter = 0;\n"
      "static double rate;\n"
      "const int kMax = 10;\n"
      "extern int external_thing;\n");
  ASSERT_EQ(m.globals.size(), 4u);
  EXPECT_EQ(m.globals[0].name, "counter");
  EXPECT_TRUE(m.globals[0].has_initializer);
  EXPECT_EQ(m.globals[1].name, "rate");
  EXPECT_TRUE(m.globals[1].is_static);
  EXPECT_FALSE(m.globals[1].has_initializer);
  EXPECT_TRUE(m.globals[2].is_const);
  EXPECT_TRUE(m.globals[3].is_extern_decl);
}

TEST(ParserTest, GlobalInNamespace) {
  SourceFileModel m = MustParse("namespace cfg { int verbosity = 2; }");
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].qualified_name, "cfg::verbosity");
}

TEST(ParserTest, BraceInitializedGlobal) {
  SourceFileModel m = MustParse("int x{3};");
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].name, "x");
  EXPECT_TRUE(m.globals[0].has_initializer);
}

TEST(ParserTest, NamedCasts) {
  SourceFileModel m = MustParse(
      "void f(void* p) {\n"
      "  int a = static_cast<int>(1.5);\n"
      "  auto* b = reinterpret_cast<char*>(p);\n"
      "  const auto* c = const_cast<const int*>(&a);\n"
      "  auto* d = dynamic_cast<int*>(b);\n"
      "}\n");
  ASSERT_EQ(m.casts.size(), 4u);
  EXPECT_EQ(m.casts[0].kind, CastKind::kStaticCast);
  EXPECT_EQ(m.casts[0].target_text, "int");
  EXPECT_EQ(m.casts[1].kind, CastKind::kReinterpretCast);
  EXPECT_EQ(m.casts[2].kind, CastKind::kConstCast);
  EXPECT_EQ(m.casts[3].kind, CastKind::kDynamicCast);
}

TEST(ParserTest, CStyleCastDetected) {
  SourceFileModel m = MustParse(
      "void f(double d, void* p) {\n"
      "  int a = (int)d;\n"
      "  float* q = (float*)p;\n"
      "  unsigned long u = (unsigned long)a;\n"
      "}\n");
  int c_style = 0;
  for (const auto& c : m.casts) {
    if (c.kind == CastKind::kCStyle) ++c_style;
  }
  EXPECT_EQ(c_style, 3);
}

TEST(ParserTest, CallParensNotCastFalsePositive) {
  SourceFileModel m = MustParse(
      "int g(int v);\n"
      "void f() {\n"
      "  int x = g(3);\n"
      "  if (x) { x = (x); }\n"
      "  while (x > 0) { --x; }\n"
      "}\n");
  for (const auto& c : m.casts) {
    EXPECT_NE(c.kind, CastKind::kCStyle)
        << "false positive on line " << c.line << ": " << c.target_text;
  }
}

TEST(ParserTest, FunctionalCast) {
  SourceFileModel m = MustParse("void f(double d) { int x = int(d); }");
  ASSERT_EQ(m.casts.size(), 1u);
  EXPECT_EQ(m.casts[0].kind, CastKind::kFunctional);
}

TEST(ParserTest, IncludesAndMacros) {
  SourceFileModel m = MustParse(
      "#include <vector>\n"
      "#include \"local/thing.h\"\n"
      "#define LIMIT 64\n"
      "#define SQUARE(x) ((x) * (x))\n");
  ASSERT_EQ(m.includes.size(), 2u);
  EXPECT_EQ(m.includes[0], "<vector>");
  EXPECT_EQ(m.includes[1], "\"local/thing.h\"");
  ASSERT_EQ(m.macros.size(), 2u);
  EXPECT_EQ(m.macros[0].name, "LIMIT");
  EXPECT_FALSE(m.macros[0].function_like);
  EXPECT_EQ(m.macros[1].name, "SQUARE");
  EXPECT_TRUE(m.macros[1].function_like);
}

TEST(ParserTest, UsingAndTypedefCounted) {
  SourceFileModel m = MustParse(
      "using namespace std;\n"
      "using Row = int;\n"
      "typedef double Real;\n"
      "using std::vector;\n");
  EXPECT_EQ(m.using_namespace_count, 1);
  EXPECT_EQ(m.typedef_count, 2);
}

TEST(ParserTest, EnumRecorded) {
  SourceFileModel m = MustParse(
      "enum class Mode : int { kA, kB };\n"
      "enum Legacy { KX, KY };\n");
  ASSERT_EQ(m.types.size(), 2u);
  EXPECT_EQ(m.types[0].kind, TypeKind::kEnum);
  EXPECT_EQ(m.types[0].name, "Mode");
  EXPECT_EQ(m.types[1].name, "Legacy");
}

TEST(ParserTest, ForwardDeclarationNotAType) {
  SourceFileModel m = MustParse("class Fwd;\nstruct S2;\n");
  EXPECT_TRUE(m.types.empty());
}

TEST(ParserTest, ElaboratedTypeVariable) {
  SourceFileModel m = MustParse("struct Point pt;\n");
  EXPECT_TRUE(m.types.empty());
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].name, "pt");
}

TEST(ParserTest, ExternCBlock) {
  SourceFileModel m = MustParse(
      "extern \"C\" {\n"
      "int c_func(int x) { return x; }\n"
      "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].qualified_name, "c_func");
}

TEST(ParserTest, DefaultArgumentsInParams) {
  SourceFileModel m = MustParse("void f(int a = 3, double b = 4.5) {}");
  ASSERT_EQ(m.functions.size(), 1u);
  ASSERT_EQ(m.functions[0].params.size(), 2u);
  EXPECT_EQ(m.functions[0].params[0].name, "a");
  EXPECT_EQ(m.functions[0].params[1].name, "b");
}

TEST(ParserTest, VoidParameterListIsEmpty) {
  SourceFileModel m = MustParse("int f(void) { return 1; }");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_TRUE(m.functions[0].params.empty());
}

TEST(ParserTest, VariadicParameter) {
  SourceFileModel m = MustParse("int printf_like(const char* fmt, ...) { return 0; }");
  ASSERT_EQ(m.functions.size(), 1u);
  ASSERT_EQ(m.functions[0].params.size(), 2u);
  EXPECT_EQ(m.functions[0].params[1].name, "...");
}

TEST(ParserTest, TemplatedParameterTypesNotSplitOnComma) {
  SourceFileModel m = MustParse(
      "void f(std::map<int, double> m, std::pair<int, int> p) {}");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].params.size(), 2u);
}

TEST(ParserTest, FunctionBodyLineRange) {
  SourceFileModel m = MustParse(
      "int f() {\n"
      "  int a = 1;\n"
      "  return a;\n"
      "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].start_line, 1);
  EXPECT_EQ(m.functions[0].end_line, 4);
}

TEST(ParserTest, DefaultedAndDeletedNotDefinitions) {
  SourceFileModel m = MustParse(
      "struct T {\n"
      "  T() = default;\n"
      "  T(const T&) = delete;\n"
      "  void real() {}\n"
      "};\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "real");
}

TEST(ParserTest, MemberInitializerListWithBraces) {
  SourceFileModel m = MustParse(
      "struct W {\n"
      "  W() : v_{1, 2, 3}, n_(0) { n_ = 1; }\n"
      "  int v_[3];\n"
      "  int n_;\n"
      "};\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "W");
}

TEST(ParserTest, GtestStyleMacroTreatedAsFunction) {
  // The fuzzy parser intentionally treats TEST(a, b) { ... } as a function —
  // exactly what Lizard does, and what makes test code measurable.
  SourceFileModel m = MustParse("TEST(Suite, Name) { EXPECT_TRUE(true); }");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "TEST");
}

TEST(ParserTest, MalformedInputDoesNotCrash) {
  // Unbalanced braces, stray tokens — fuzzy parser must survive.
  auto r1 = ParseSource("bad1.cc", "void f() { if (x { y; }");
  EXPECT_TRUE(r1.ok());
  auto r2 = ParseSource("bad2.cc", "} } } ) ) ;; class ;");
  EXPECT_TRUE(r2.ok());
  auto r3 = ParseSource("bad3.cc", "template < forever");
  EXPECT_TRUE(r3.ok());
}

TEST(ParserTest, FunctionTryBlock) {
  SourceFileModel m = MustParse(
      "int f() try { return g(); } catch (...) { return -1; }");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "f");
}

// Parameterized sweep: N generated functions are all found, with correct
// parameter counts.
class ParserFunctionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParserFunctionSweep, AllFunctionsFound) {
  const int n = GetParam();
  std::string src;
  for (int i = 0; i < n; ++i) {
    src += "int fn" + std::to_string(i) + "(";
    for (int p = 0; p < i % 4; ++p) {
      if (p) src += ", ";
      src += "int p" + std::to_string(p);
    }
    src += ") { return " + std::to_string(i) + "; }\n";
  }
  SourceFileModel m = MustParse(src);
  ASSERT_EQ(m.functions.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(m.functions[i].name, "fn" + std::to_string(i));
    EXPECT_EQ(m.functions[i].params.size(), static_cast<std::size_t>(i % 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ParserFunctionSweep,
                         ::testing::Values(1, 5, 32, 200));

}  // namespace
}  // namespace certkit::ast
