// Robustness property test: the fuzzy parser must terminate without
// crashing on arbitrarily mutated inputs — truncations, deletions, and
// byte swaps of otherwise-valid source. (This is the contract that lets the
// analyzer run over arbitrary real-world snapshots, as Lizard does for the
// paper.)
#include <gtest/gtest.h>

#include "ast/parser.h"
#include "corpus/generator.h"
#include "support/rng.h"

namespace certkit::ast {
namespace {

std::string BaseSource() {
  corpus::ModuleSpec spec;
  spec.name = "fuzz";
  spec.num_files = 1;
  spec.functions_low = 15;
  spec.functions_moderate = 3;
  spec.functions_risky = 1;
  spec.mutable_globals = 4;
  spec.const_globals = 2;
  spec.casts = 6;
  spec.multi_exit_fraction = 0.3;
  spec.gotos = 1;
  spec.recursive_functions = 1;
  spec.uninitialized_locals = 2;
  spec.cuda_kernels = 2;
  spec.target_loc = 400;
  auto files = corpus::GenerateModule(spec, 99);
  std::string all;
  for (const auto& f : files) all += f.content;
  return all;
}

// Every parse must return; success or ParseError are both acceptable.
void MustTerminate(const std::string& src) {
  auto result = ParseSource("fuzz.cc", src);
  if (result.ok()) {
    // Token ranges of reported functions must be self-consistent.
    const auto& m = result.value();
    for (const auto& fn : m.functions) {
      ASSERT_LE(fn.sig_begin, fn.body_begin);
      ASSERT_LE(fn.body_begin, fn.body_end);
      ASSERT_LT(fn.body_end, m.lexed.tokens.size());
    }
  }
}

TEST(ParserFuzzTest, Truncations) {
  const std::string base = BaseSource();
  support::Xoshiro256 rng(1);
  for (int i = 0; i < 60; ++i) {
    const auto cut = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(base.size())));
    MustTerminate(base.substr(0, cut));
  }
}

TEST(ParserFuzzTest, RandomDeletions) {
  const std::string base = BaseSource();
  support::Xoshiro256 rng(2);
  for (int i = 0; i < 60; ++i) {
    std::string mutated = base;
    const auto start = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    const auto len = static_cast<std::size_t>(rng.UniformInt(1, 200));
    mutated.erase(start, len);
    MustTerminate(mutated);
  }
}

TEST(ParserFuzzTest, RandomByteSwaps) {
  const std::string base = BaseSource();
  support::Xoshiro256 rng(3);
  const char kReplacements[] = "{}()<>;:*&\"'/\\#@$%";
  for (int i = 0; i < 60; ++i) {
    std::string mutated = base;
    for (int m = 0; m < 10; ++m) {
      const auto pos = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = kReplacements[rng.UniformInt(
          0, static_cast<std::int64_t>(sizeof(kReplacements)) - 2)];
    }
    MustTerminate(mutated);
  }
}

TEST(ParserFuzzTest, PathologicalNesting) {
  // Deep but bounded nesting must not blow the stack (the parser iterates).
  std::string deep = "void f() { int x = 0;\n";
  for (int i = 0; i < 2000; ++i) deep += "if (x) {\n";
  for (int i = 0; i < 2000; ++i) deep += "}\n";
  deep += "}\n";
  MustTerminate(deep);

  std::string parens = "int g() { return ";
  for (int i = 0; i < 5000; ++i) parens += "(";
  parens += "1";
  for (int i = 0; i < 5000; ++i) parens += ")";
  parens += "; }";
  MustTerminate(parens);
}

TEST(ParserFuzzTest, GarbageBytes) {
  support::Xoshiro256 rng(4);
  for (int i = 0; i < 30; ++i) {
    std::string garbage;
    const auto len = static_cast<std::size_t>(rng.UniformInt(0, 2000));
    for (std::size_t b = 0; b < len; ++b) {
      // Printable ASCII plus whitespace; the lexer contract covers text.
      garbage.push_back(
          static_cast<char>(rng.UniformInt(32, 126)));
      if (rng.Bernoulli(0.05)) garbage.push_back('\n');
    }
    MustTerminate(garbage);
  }
}

}  // namespace
}  // namespace certkit::ast
