// Rejection suite for the independent flight-dump validator: every check
// the validator claims to make is exercised with a document that violates
// exactly that check, plus accept-paths for the minimal and full shapes.
//
// The documents are built by string surgery on a known-good skeleton so
// each test names precisely one defect (the same style as the Chrome-trace
// validator's tests).
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_validate.h"

namespace obs = certkit::obs;

namespace {

// A minimal structurally-valid dump: one thread, three event shapes, one
// histogram with wall-clock fields present and coherent.
std::string GoodDump() {
  return R"({"flight_dump":{"schema":1,)"
         R"("trigger":{"kind":"signal","signal":6,"name":"SIGABRT"},)"
         R"("last_completed_stage":"planning","safety_state":"limp_home",)"
         R"("events_recorded":3,"events_dropped":0,)"
         R"("artifact":"artifacts/candidate_7.json",)"
         R"("threads":[{"ring":0,"events":[)"
         R"({"seq":1,"type":"stage_begin","stage":"planning","tick":4},)"
         R"({"seq":2,"type":"monitor","monitor":"deadline","severity":1,)"
         R"("handled":true,"tick":4},)"
         R"({"seq":5,"type":"safety_state","state":"limp_home",)"
         R"("from":"nominal","transition":1}]}],)"
         R"("metrics":{"counters":{"safety/violations":1},)"
         R"("gauges":{"service/queue_depth":0},)"
         R"("histograms":{"tick/duration":{"count":3,"bounds":[1,2,4],)"
         R"("buckets":[1,1,1,0],"sum":5.5,"min":0.5,"max":3.0,)"
         R"("p50":2,"p90":4,"p99":4}}}}})";
}

// Applies one find/replace to the good dump; the needle must exist.
std::string Mutate(const std::string& from, const std::string& to) {
  std::string doc = GoodDump();
  const std::size_t at = doc.find(from);
  EXPECT_NE(at, std::string::npos) << "bad test: needle '" << from << "'";
  doc.replace(at, from.size(), to);
  return doc;
}

void ExpectInvalid(const std::string& doc, const std::string& why) {
  std::string error;
  EXPECT_FALSE(obs::ValidateFlightDump(doc, &error)) << why;
  EXPECT_FALSE(error.empty()) << why;
}

TEST(FlightValidate, AcceptsGoodDump) {
  std::string error;
  EXPECT_TRUE(obs::ValidateFlightDump(GoodDump(), &error)) << error;
}

TEST(FlightValidate, AcceptsMinimalDump) {
  // No artifact, no events, timing-off histogram (no buckets/quantiles).
  const std::string doc =
      R"({"flight_dump":{"schema":1,"trigger":{"kind":"explicit"},)"
      R"("last_completed_stage":"none","safety_state":"nominal",)"
      R"("events_recorded":0,"events_dropped":0,"threads":[],)"
      R"("metrics":{"counters":{},"gauges":{},)"
      R"("histograms":{"tick/duration":{"count":0,"bounds":[1]}}}}})";
  std::string error;
  EXPECT_TRUE(obs::ValidateFlightDump(doc, &error)) << error;
}

TEST(FlightValidate, RejectsNonJson) {
  ExpectInvalid("not json at all", "unparseable input");
  ExpectInvalid(R"({"traceEvents":[]})", "wrong root key");
}

TEST(FlightValidate, RejectsWrongSchemaVersion) {
  ExpectInvalid(Mutate(R"("schema":1)", R"("schema":2)"),
                "future schema must not validate");
}

TEST(FlightValidate, RejectsMalformedTrigger) {
  ExpectInvalid(
      Mutate(R"("trigger":{"kind":"signal","signal":6,"name":"SIGABRT"})",
             R"("trigger":{"kind":"meteor"})"),
      "unknown trigger kind");
  ExpectInvalid(
      Mutate(R"("trigger":{"kind":"signal","signal":6,"name":"SIGABRT"})",
             R"("trigger":{"kind":"signal"})"),
      "signal trigger without signal/name");
  ExpectInvalid(
      Mutate(R"("trigger":{"kind":"signal","signal":6,"name":"SIGABRT"},)",
             ""),
      "missing trigger");
}

TEST(FlightValidate, RejectsUnknownHeadlineNames) {
  ExpectInvalid(Mutate(R"("last_completed_stage":"planning")",
                       R"("last_completed_stage":"teleportation")"),
                "unknown stage name");
  ExpectInvalid(Mutate(R"("safety_state":"limp_home")",
                       R"("safety_state":"panicking")"),
                "unknown safety state");
}

TEST(FlightValidate, RejectsNegativeCounters) {
  ExpectInvalid(Mutate(R"("events_dropped":0)", R"("events_dropped":-1)"),
                "negative drop counter");
}

TEST(FlightValidate, RejectsNonStringArtifact) {
  ExpectInvalid(Mutate(R"("artifact":"artifacts/candidate_7.json")",
                       R"("artifact":17)"),
                "artifact must be a path string");
}

TEST(FlightValidate, RejectsBrokenSequenceClock) {
  ExpectInvalid(Mutate(R"("seq":5,"type":"safety_state")",
                       R"("seq":2,"type":"safety_state")"),
                "non-monotone seq within a thread");
  ExpectInvalid(Mutate(R"("seq":1,"type":"stage_begin")",
                       R"("seq":0,"type":"stage_begin")"),
                "seq 0 marks an empty slot, never a dumped event");
}

TEST(FlightValidate, RejectsUnknownEventVocabulary) {
  ExpectInvalid(Mutate(R"("type":"stage_begin")", R"("type":"warp_begin")"),
                "unknown event type");
  ExpectInvalid(Mutate(R"("stage":"planning")", R"("stage":"warp")"),
                "unknown stage in event");
  ExpectInvalid(Mutate(R"("monitor":"deadline")", R"("monitor":"vibes")"),
                "unknown monitor");
  ExpectInvalid(Mutate(R"("from":"nominal")", R"("from":"fine")"),
                "unknown transition source state");
}

TEST(FlightValidate, RejectsMissingEventFields) {
  ExpectInvalid(Mutate(R"("stage":"planning","tick":4)",
                       R"("stage":"planning")"),
                "stage event without tick");
  ExpectInvalid(Mutate(R"("handled":true,)", ""),
                "monitor event without handled flag");
}

TEST(FlightValidate, RejectsMalformedThreads) {
  ExpectInvalid(Mutate(R"("threads":[{"ring":0)", R"("threads":[{"ring":-1)"),
                "negative ring index");
  // An object where the array belongs (built from the minimal dump so the
  // document stays well-formed JSON and fails the shape check, not parse).
  const std::string doc =
      R"({"flight_dump":{"schema":1,"trigger":{"kind":"explicit"},)"
      R"("last_completed_stage":"none","safety_state":"nominal",)"
      R"("events_recorded":0,"events_dropped":0,"threads":{},)"
      R"("metrics":{"counters":{},"gauges":{},"histograms":{}}}})";
  ExpectInvalid(doc, "threads must be an array");
}

TEST(FlightValidate, RejectsIncoherentHistogram) {
  ExpectInvalid(Mutate(R"("buckets":[1,1,1,0])", R"("buckets":[1,1,1])"),
                "buckets must be bounds + 1 long");
  ExpectInvalid(Mutate(R"("buckets":[1,1,1,0])", R"("buckets":[1,1,0,0])"),
                "bucket sum must equal count");
  ExpectInvalid(Mutate(R"("bounds":[1,2,4])", R"("bounds":[4,2,1])"),
                "bounds must ascend");
  ExpectInvalid(Mutate(R"("bounds":[1,2,4])", R"("bounds":[])"),
                "bounds must be non-empty");
  ExpectInvalid(Mutate(R"("p50":2,)", ""),
                "buckets present requires quantiles");
  ExpectInvalid(Mutate(R"("p99":4)", R"("p99":"soon")"),
                "quantiles are numbers or \"+inf\"");
  ExpectInvalid(Mutate(R"("count":3)", R"("count":-3)"),
                "negative count");
}

TEST(FlightValidate, AcceptsInfQuantileSpelling) {
  std::string error;
  EXPECT_TRUE(obs::ValidateFlightDump(
      Mutate(R"("p99":4)", R"("p99":"+inf")"), &error))
      << error;
  ExpectInvalid(Mutate(R"("p99":4)", R"("p99":"inf")"),
                "only the \"+inf\" spelling is legal");
}

TEST(FlightValidate, RejectsMissingMetricsSections) {
  ExpectInvalid(Mutate(R"("gauges":{"service/queue_depth":0},)", ""),
                "metrics must carry all three sections");
  ExpectInvalid(Mutate(R"("counters":{"safety/violations":1})",
                       R"("counters":{"safety/violations":"one"})"),
                "counter values must be numbers");
}

}  // namespace
