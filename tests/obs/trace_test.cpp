// Unit tests for the obs layer: the logical span clock, capture isolation,
// the metrics primitives (counter/gauge/histogram edge cases), and the
// Chrome trace-event exporter against its independent validator.
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_validate.h"
#include "timing/timing.h"

namespace certkit::obs {
namespace {

// Every test that enables tracing restores the global switch so test order
// never matters.
class TracingGuard {
 public:
  TracingGuard() { SetTracingEnabled(true); }
  ~TracingGuard() { SetTracingEnabled(false); }
};

TEST(SpanCaptureTest, LogicalClockNestsExactly) {
  TracingGuard guard;
  SpanCapture capture;
  {
    Span outer("outer", "t");
    { Span inner("inner", "t"); }
  }
  const auto events = capture.Take();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete inner-first; the clock ticks once per begin and per end.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].ts, 1);
  EXPECT_EQ(events[0].dur, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].ts, 0);
  EXPECT_EQ(events[1].dur, 3);
  // The child's interval lies strictly inside the parent's.
  EXPECT_GT(events[0].ts, events[1].ts);
  EXPECT_LT(events[0].ts + events[0].dur, events[1].ts + events[1].dur);
}

TEST(SpanCaptureTest, SequentialSpansAreDisjoint) {
  TracingGuard guard;
  SpanCapture capture;
  { Span a("a", "t"); }
  { Span b("b", "t"); }
  const auto events = capture.Take();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, 0);
  EXPECT_EQ(events[0].dur, 1);
  EXPECT_EQ(events[1].ts, 2);
  EXPECT_EQ(events[1].dur, 1);
}

TEST(SpanCaptureTest, EachCaptureClockStartsAtZero) {
  TracingGuard guard;
  {
    SpanCapture first;
    { Span a("a", "t"); }
    EXPECT_EQ(first.Take()[0].ts, 0);
  }
  {
    SpanCapture second;
    { Span b("b", "t"); }
    // A fresh capture restarts at 0 no matter what ran before.
    EXPECT_EQ(second.Take()[0].ts, 0);
  }
}

TEST(SpanCaptureTest, InnerCaptureShadowsOuter) {
  TracingGuard guard;
  SpanCapture outer;
  { Span a("outer-span", "t"); }
  {
    SpanCapture inner;
    { Span b("inner-span", "t"); }
    const auto inner_events = inner.Take();
    ASSERT_EQ(inner_events.size(), 1u);
    EXPECT_EQ(inner_events[0].name, "inner-span");
    EXPECT_EQ(inner_events[0].ts, 0);
  }
  { Span c("outer-span-2", "t"); }
  const auto outer_events = outer.Take();
  ASSERT_EQ(outer_events.size(), 2u);
  EXPECT_EQ(outer_events[0].name, "outer-span");
  EXPECT_EQ(outer_events[1].name, "outer-span-2");
}

TEST(SpanCaptureTest, CapturesArePerThread) {
  TracingGuard guard;
  SpanCapture main_capture;
  std::vector<SpanEvent> worker_events;
  std::thread worker([&worker_events] {
    SpanCapture capture;
    { Span w("worker-span", "t"); }
    worker_events = capture.Take();
  });
  worker.join();
  ASSERT_EQ(worker_events.size(), 1u);
  EXPECT_EQ(worker_events[0].name, "worker-span");
  EXPECT_EQ(worker_events[0].ts, 0);
  // Nothing leaked into the main thread's capture.
  EXPECT_TRUE(main_capture.Take().empty());
}

TEST(SpanCaptureTest, WorkerWithoutCaptureRecordsNothing) {
  TracingGuard guard;
  SpanCapture main_capture;
  std::thread worker([] {
    Span w("uncaptured", "t");  // no capture on this thread: inert
  });
  worker.join();
  EXPECT_TRUE(main_capture.Take().empty());
}

TEST(SpanTest, InertWhenTracingDisabled) {
  SetTracingEnabled(false);
  SpanCapture capture;
  { Span a("a", "t"); }
  EXPECT_TRUE(capture.Take().empty());
}

TEST(SpanTest, FeedsTimerAndHistogramEvenWithoutCapture) {
  SetTracingEnabled(false);
  auto& timer =
      timing::TimerRegistry::Instance().GetOrCreate("obs_test/span_timer");
  const std::int64_t before = timer.GetStats().count;
  Histogram hist({1.0});
  { Span a("a", "t", &timer, &hist); }
  EXPECT_EQ(timer.GetStats().count, before + 1);
  EXPECT_EQ(hist.count(), 1);
}

TEST(TraceRecorderTest, TrackIdsAreDenseInCallOrder) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  EXPECT_EQ(recorder.AddTrack("first", {}), 0);
  EXPECT_EQ(recorder.AddTrack("second", {}), 1);
  const auto tracks = recorder.Snapshot();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].label, "first");
  EXPECT_EQ(tracks[1].label, "second");
  EXPECT_EQ(recorder.track_count(), 2);
  recorder.Clear();
  EXPECT_EQ(recorder.track_count(), 0);
}

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetValueReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);   // below the first bound -> bucket 0
  h.Record(1.0);   // exactly on a bound -> that bucket (inclusive)
  h.Record(std::nextafter(1.0, 2.0));  // just above -> next bucket
  h.Record(2.0);   // on the last bound -> last bounded bucket
  h.Record(2.5);   // above every bound -> overflow bucket
  const auto buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(h.count(), 5);
}

TEST(HistogramTest, NegativeSamplesLandInFirstBucket) {
  Histogram h({1.0});
  h.Record(-5.0);
  EXPECT_EQ(h.BucketCounts()[0], 1);
  EXPECT_EQ(h.min(), -5.0);
}

TEST(HistogramTest, NonFiniteSamplesAreDroppedEntirely) {
  Histogram h({1.0});
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  h.Record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  for (const auto b : h.BucketCounts()) EXPECT_EQ(b, 0);
}

TEST(HistogramTest, SumMinMaxAndReset) {
  Histogram h({10.0});
  h.Record(1.0);
  h.Record(4.0);
  h.Record(2.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 4.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(MetricsRegistryTest, ReferencesSurviveResetAll) {
  auto& registry = MetricsRegistry::Instance();
  Counter& c = registry.GetCounter("obs_test/stable_ref");
  c.Add(7);
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0);  // zeroed, not invalidated
  c.Add(1);
  EXPECT_EQ(registry.GetCounter("obs_test/stable_ref").value(), 1);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedOnFirstRegistration) {
  auto& registry = MetricsRegistry::Instance();
  Histogram& h = registry.GetHistogram("obs_test/bounds_once", {1.0, 2.0});
  Histogram& again = registry.GetHistogram("obs_test/bounds_once", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(MetricsJsonTest, TimingFieldsAreGated) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("obs_test/json_counter").Add(3);
  registry.GetHistogram("obs_test/json_hist", {1.0}).Record(0.5);
  const auto snapshot = registry.Snapshot();
  const std::string lean = MetricsJson(snapshot, /*include_timing=*/false);
  EXPECT_NE(lean.find("\"obs_test/json_counter\":3"), std::string::npos);
  EXPECT_NE(lean.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(lean.find("\"buckets\""), std::string::npos);
  EXPECT_EQ(lean.find("\"sum\""), std::string::npos);
  const std::string full = MetricsJson(snapshot, /*include_timing=*/true);
  EXPECT_NE(full.find("\"buckets\""), std::string::npos);
  EXPECT_NE(full.find("\"sum\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, ExportValidatesWithAndWithoutTiming) {
  TracingGuard guard;
  SpanCapture capture;
  {
    Span outer("outer", "t");
    { Span inner("inner \"quoted\"\n", "t"); }  // exercises escaping
  }
  std::vector<TraceTrack> tracks;
  tracks.push_back(TraceTrack{"track \\0", capture.Take()});
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson(tracks, false), &error))
      << error;
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson(tracks, true), &error))
      << error;
}

TEST(ChromeTraceJsonTest, EmptyTrackListStillValidates) {
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson({}, false), &error))
      << error;
}

TEST(TraceValidateTest, RejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\":[", &error));
  EXPECT_FALSE(ValidateChromeTrace("not json at all", &error));
  EXPECT_FALSE(ValidateChromeTrace("{\"noTraceEvents\":[]}", &error));
}

TEST(TraceValidateTest, DistinguishesMalformedNumbersFromOutOfRange) {
  // Regression for the numeric-literal path: the validator converts with
  // std::from_chars (no exceptions, no locale), and a syntactically broken
  // literal must produce a different diagnosis than a well-formed one that
  // overflows a double — "1.2.3" is a formatting bug in an exporter,
  // "1e999" is a value bug, and a triager needs to know which.
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1.2.3,"
      "\"dur\":1,\"pid\":0,\"tid\":0}]}",
      &error));
  EXPECT_NE(error.find("malformed number"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1e999,"
      "\"dur\":1,\"pid\":0,\"tid\":0}]}",
      &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  // Dangling exponents and double signs are malformed, not out of range.
  error.clear();
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\":[{\"ts\":1e}]}", &error));
  EXPECT_NE(error.find("malformed number"), std::string::npos) << error;
}

TEST(TraceValidateTest, RejectsSchemaViolations) {
  std::string error;
  // Missing name.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"dur\":1,"
      "\"pid\":0,\"tid\":0}]}",
      &error));
  // Zero duration on a complete event.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":0,"
      "\"pid\":0,\"tid\":0}]}",
      &error));
  // Negative timestamp.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":-1,\"dur\":1,"
      "\"pid\":0,\"tid\":0}]}",
      &error));
  // Unsupported phase.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Q\",\"pid\":0,"
      "\"tid\":0}]}",
      &error));
  // Metadata event without args.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
      "\"tid\":0}]}",
      &error));
}

TEST(TraceValidateTest, RejectsPartiallyOverlappingSpans) {
  // [0, 2) and [1, 3) on the same tid partially overlap — a logical-clock
  // bug the validator must catch even though each event is well-formed.
  TraceTrack track;
  track.label = "bad";
  track.events.push_back(SpanEvent{"a", "t", 0, 2, 0.0});
  track.events.push_back(SpanEvent{"b", "t", 1, 2, 0.0});
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace(ChromeTraceJson({track}, false), &error));
  EXPECT_NE(error.find("overlap"), std::string::npos) << error;
}

TEST(TraceValidateTest, AcceptsSameTidOnDifferentTracksIndependently) {
  // Disjoint and nested intervals are both fine.
  TraceTrack track;
  track.label = "good";
  track.events.push_back(SpanEvent{"child", "t", 1, 1, 0.0});
  track.events.push_back(SpanEvent{"parent", "t", 0, 3, 0.0});
  track.events.push_back(SpanEvent{"later", "t", 4, 2, 0.0});
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson({track}, false), &error))
      << error;
}

}  // namespace
}  // namespace certkit::obs
