// The observability determinism contract, end to end: the Chrome trace and
// metrics JSON exports produced by a campaign (and by the analysis driver)
// must be byte-identical for --jobs 1 and --jobs 4 at a fixed seed. This is
// the obs-layer extension of the fleet-determinism test, and it carries the
// `concurrency` label so the TSan tree races span capture, the metrics
// registry, and the trace recorder under a real parallel fleet.
#include <string>
#include <utility>
#include <vector>

#include "campaign/runner.h"
#include "driver/analysis_driver.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_validate.h"
#include "timing/timing.h"

namespace {

// The exports are process-cumulative; each run starts from a clean slate so
// two runs are comparable.
void ResetObservability() {
  certkit::obs::TraceRecorder::Instance().Clear();
  certkit::obs::MetricsRegistry::Instance().ResetAll();
  certkit::timing::TimerRegistry::Instance().ResetAll();
}

struct Exports {
  std::string trace;
  std::string metrics;
};

Exports RunCampaign(int jobs) {
  ResetObservability();
  certkit::obs::SetTracingEnabled(true);
  certkit::campaign::CampaignConfig config;
  config.seed = 42;
  config.jobs = jobs;
  config.population = 3;
  config.generations = 2;
  config.ticks = 5;
  certkit::campaign::CampaignRunner runner(config);
  runner.Run();
  certkit::obs::SetTracingEnabled(false);
  Exports out;
  out.trace = certkit::obs::ChromeTraceJson(
      certkit::obs::TraceRecorder::Instance().Snapshot(),
      /*include_timing=*/false);
  out.metrics = certkit::obs::MetricsJson(
      certkit::obs::MetricsRegistry::Instance().Snapshot(),
      /*include_timing=*/false);
  return out;
}

TEST(ObsDeterminismTest, CampaignExportsAreJobsInvariant) {
  const Exports serial = RunCampaign(1);
  const Exports fleet = RunCampaign(4);
  EXPECT_EQ(serial.trace, fleet.trace);
  EXPECT_EQ(serial.metrics, fleet.metrics);
  std::string error;
  EXPECT_TRUE(certkit::obs::ValidateChromeTrace(serial.trace, &error))
      << error;
  // One track per candidate (3 x 2 generations) plus the control track.
  EXPECT_NE(serial.trace.find("campaign g0/c00"), std::string::npos);
  EXPECT_NE(serial.trace.find("campaign g1/c02"), std::string::npos);
  EXPECT_NE(serial.trace.find("campaign control"), std::string::npos);
}

TEST(ObsDeterminismTest, CampaignRepeatedRunIsByteStable) {
  const Exports first = RunCampaign(4);
  const Exports second = RunCampaign(4);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.metrics, second.metrics);
}

std::string RunDriver(int jobs) {
  ResetObservability();
  certkit::obs::SetTracingEnabled(true);
  certkit::driver::DriverOptions options;
  options.jobs = jobs;
  certkit::driver::AnalysisDriver driver(options);
  std::vector<certkit::driver::SourceInput> sources;
  sources.push_back({"mod_a/one.cc",
                     "// REQ-1\nint Add(int a, int b) { return a + b; }\n"});
  sources.push_back({"mod_a/two.cc",
                     "int Sub(int a, int b) { return a - b; }\n"});
  sources.push_back({"mod_b/three.cc",
                     "int Mul(int a, int b) { return a * b; }\n"});
  auto analysis = driver.AnalyzeSources(std::move(sources));
  EXPECT_TRUE(analysis.ok());
  certkit::obs::SetTracingEnabled(false);
  return certkit::obs::ChromeTraceJson(
      certkit::obs::TraceRecorder::Instance().Snapshot(),
      /*include_timing=*/false);
}

TEST(ObsDeterminismTest, DriverTraceIsJobsInvariant) {
  const std::string serial = RunDriver(1);
  const std::string fleet = RunDriver(4);
  EXPECT_EQ(serial, fleet);
  std::string error;
  EXPECT_TRUE(certkit::obs::ValidateChromeTrace(serial, &error)) << error;
  // One track per file, labeled by path, in sorted path order.
  const auto a = serial.find("mod_a/one.cc");
  const auto b = serial.find("mod_a/two.cc");
  const auto c = serial.find("mod_b/three.cc");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // Per-file sub-spans are present.
  EXPECT_NE(serial.find("\"analyze_file\""), std::string::npos);
  EXPECT_NE(serial.find("\"parse\""), std::string::npos);
  EXPECT_NE(serial.find("\"misra\""), std::string::npos);
}

}  // namespace
