// Flight-recorder unit tests: ring wraparound/overwrite as a property over
// the record count, headline extraction (last completed stage / safety
// state), the artifact pointer, the name tables the dump schema depends
// on, and the histogram quantile law pinned against the timing layer's
// NearestRankQuantile (the pre-existing reference implementation).
//
// All tests run on the gtest main thread, so every dump drains exactly one
// ring; each dump is additionally round-tripped through the independent
// validator to keep emitter and checker honest against each other.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/flight_validate.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "timing/timing.h"

namespace obs = certkit::obs;
namespace support = certkit::support;

namespace {

// Parses a dump and returns the events array of its single thread entry.
const support::JsonValue* SingleThreadEvents(const support::JsonValue& root) {
  const support::JsonValue* dump = root.Find("flight_dump");
  if (dump == nullptr) return nullptr;
  const support::JsonValue* threads = dump->Find("threads");
  if (threads == nullptr || threads->items.size() != 1) return nullptr;
  return threads->items[0].Find("events");
}

std::string ValidatedDump() {
  const std::string dump =
      obs::FlightDumpString(obs::FlightDumpTrigger::kExplicit);
  std::string error;
  EXPECT_TRUE(obs::ValidateFlightDump(dump, &error)) << error;
  return dump;
}

TEST(FlightRecorder, WraparoundKeepsNewestRecordsForAnyCount) {
  constexpr int kCap = obs::kFlightRingCapacity;
  for (const int n : {1, kCap - 1, kCap, kCap + 1, 2 * kCap + 3}) {
    obs::ResetFlightRecorderForTesting();
    for (int i = 0; i < n; ++i) {
      obs::RecordFlightEvent(obs::FlightEventType::kStageBegin,
                             static_cast<std::uint32_t>(obs::FlightStage::kTick),
                             0, /*c=*/i);
    }
    const auto stats = obs::GetFlightRecorderStats();
    EXPECT_EQ(stats.events, n) << "n=" << n;
    EXPECT_EQ(stats.dropped, 0) << "n=" << n;
    EXPECT_EQ(stats.ring_capacity, kCap);

    support::JsonValue root;
    std::string error;
    ASSERT_TRUE(support::ParseJson(ValidatedDump(), &root, &error)) << error;
    const support::JsonValue* events = SingleThreadEvents(root);
    ASSERT_NE(events, nullptr) << "n=" << n;

    // The ring keeps exactly the newest min(n, capacity) records, in
    // strictly increasing sequence order, ending at the global count.
    const int expect = n < kCap ? n : kCap;
    ASSERT_EQ(static_cast<int>(events->items.size()), expect) << "n=" << n;
    std::uint64_t prev = 0;
    for (const support::JsonValue& e : events->items) {
      std::uint64_t seq = 0;
      ASSERT_TRUE(support::JsonGetU64(e, "seq", &seq, &error)) << error;
      EXPECT_GT(seq, prev);
      prev = seq;
    }
    EXPECT_EQ(prev, static_cast<std::uint64_t>(n)) << "n=" << n;
    // The oldest surviving record is n - expect events in: tick index c
    // confirms overwrite discarded exactly the front of the stream.
    std::int64_t first_tick = -1;
    ASSERT_TRUE(support::JsonGetI64(events->items[0], "tick", &first_tick,
                                    &error))
        << error;
    EXPECT_EQ(first_tick, n - expect) << "n=" << n;
  }
}

TEST(FlightRecorder, HeadlineNamesLastCompletedNonTickStage) {
  obs::ResetFlightRecorderForTesting();
  const auto end = [](obs::FlightStage stage) {
    obs::RecordFlightEvent(obs::FlightEventType::kStageEnd,
                           static_cast<std::uint32_t>(stage), 0, 7);
  };
  end(obs::FlightStage::kScenario);
  end(obs::FlightStage::kPlanning);
  end(obs::FlightStage::kTick);  // excluded: "the tick ended" names nothing

  support::JsonValue root;
  std::string error;
  ASSERT_TRUE(support::ParseJson(ValidatedDump(), &root, &error)) << error;
  const support::JsonValue* dump = root.Find("flight_dump");
  std::string stage, state;
  ASSERT_TRUE(support::JsonGetString(*dump, "last_completed_stage", &stage,
                                     &error))
      << error;
  EXPECT_EQ(stage, "planning");
  ASSERT_TRUE(support::JsonGetString(*dump, "safety_state", &state, &error))
      << error;
  EXPECT_EQ(state, "nominal");  // no transition recorded -> default
}

TEST(FlightRecorder, HeadlineTracksLatestSafetyTransition) {
  obs::ResetFlightRecorderForTesting();
  // nominal -> limp_home -> safe_stop -> (recovery) limp_home.
  obs::RecordFlightEvent(obs::FlightEventType::kSafetyTransition, 1, 0, 1);
  obs::RecordFlightEvent(obs::FlightEventType::kSafetyTransition, 2, 1, 2);
  obs::RecordFlightEvent(obs::FlightEventType::kSafetyTransition, 1, 2, 3);

  support::JsonValue root;
  std::string error;
  ASSERT_TRUE(support::ParseJson(ValidatedDump(), &root, &error)) << error;
  std::string state;
  ASSERT_TRUE(support::JsonGetString(*root.Find("flight_dump"), "safety_state",
                                     &state, &error))
      << error;
  EXPECT_EQ(state, "limp_home");
}

TEST(FlightRecorder, DumpCarriesArtifactPointer) {
  obs::ResetFlightRecorderForTesting();
  obs::RecordFlightEvent(obs::FlightEventType::kCandidateKept, 0, 0, 42);
  obs::SetFlightArtifactPath("artifacts/candidate_42.json");

  support::JsonValue root;
  std::string error;
  ASSERT_TRUE(support::ParseJson(ValidatedDump(), &root, &error)) << error;
  std::string artifact;
  ASSERT_TRUE(support::JsonGetString(*root.Find("flight_dump"), "artifact",
                                     &artifact, &error))
      << error;
  EXPECT_EQ(artifact, "artifacts/candidate_42.json");
}

TEST(FlightRecorder, DisabledRecorderDropsNothingAndCountsNothing) {
  obs::ResetFlightRecorderForTesting();
  obs::SetFlightRecorderEnabled(false);
  obs::RecordFlightEvent(obs::FlightEventType::kStageBegin, 0, 0, 0);
  EXPECT_EQ(obs::GetFlightRecorderStats().events, 0);
  EXPECT_EQ(obs::GetFlightRecorderStats().dropped, 0);
  obs::SetFlightRecorderEnabled(true);
  EXPECT_TRUE(obs::FlightRecorderEnabled());
  obs::RecordFlightEvent(obs::FlightEventType::kStageBegin, 0, 0, 0);
  EXPECT_EQ(obs::GetFlightRecorderStats().events, 1);
}

// The stage/state/monitor name tables are duplicated from the adpilot layer
// (obs cannot depend on it); these pins are what keeps the copies honest.
TEST(FlightRecorder, NameTablesArePinned) {
  EXPECT_STREQ(obs::FlightStageName(0), "tick");
  EXPECT_STREQ(obs::FlightStageName(1), "scenario");
  EXPECT_STREQ(obs::FlightStageName(2), "perception");
  EXPECT_STREQ(obs::FlightStageName(3), "prediction");
  EXPECT_STREQ(obs::FlightStageName(4), "planning");
  EXPECT_STREQ(obs::FlightStageName(5), "control");
  EXPECT_STREQ(obs::FlightStageName(6), "safety");
  EXPECT_STREQ(obs::FlightStageName(7), "canbus");
  EXPECT_STREQ(obs::FlightStageName(8), "localization");
  EXPECT_STREQ(obs::FlightStageName(9), "unknown");

  EXPECT_STREQ(obs::FlightSafetyStateName(0), "nominal");
  EXPECT_STREQ(obs::FlightSafetyStateName(1), "limp_home");
  EXPECT_STREQ(obs::FlightSafetyStateName(2), "safe_stop");
  EXPECT_STREQ(obs::FlightSafetyStateName(3), "unknown");

  EXPECT_STREQ(obs::FlightMonitorName(0), "range");
  EXPECT_STREQ(obs::FlightMonitorName(1), "plausibility");
  EXPECT_STREQ(obs::FlightMonitorName(2), "deadline");
  EXPECT_STREQ(obs::FlightMonitorName(3), "control_flow");
  EXPECT_STREQ(obs::FlightMonitorName(4), "command");
  EXPECT_STREQ(obs::FlightMonitorName(5), "can_bus");
  EXPECT_STREQ(obs::FlightMonitorName(6), "unknown");

  EXPECT_STREQ(obs::FlightEventTypeName(1), "stage_begin");
  EXPECT_STREQ(obs::FlightEventTypeName(4), "safety_state");
  EXPECT_STREQ(obs::FlightEventTypeName(9), "serve_end");
  EXPECT_STREQ(obs::FlightEventTypeName(0), "unknown");
}

// --- quantiles -----------------------------------------------------------

// Histogram::Quantile obeys the same nearest-rank law as the timing
// layer's NearestRankQuantile. When every recorded sample sits exactly on
// a bucket upper bound, the bucketed quantile must equal the exact one.
TEST(HistogramQuantile, MatchesNearestRankOnBucketBounds) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  obs::Histogram h(bounds);
  std::vector<double> samples;
  // 3x 1.0, 2x 2.0, 4x 4.0, 1x 8.0 — uneven occupancy on purpose.
  for (int i = 0; i < 3; ++i) samples.push_back(1.0);
  for (int i = 0; i < 2; ++i) samples.push_back(2.0);
  for (int i = 0; i < 4; ++i) samples.push_back(4.0);
  samples.push_back(8.0);
  for (double v : samples) h.Record(v);

  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q),
                     certkit::timing::NearestRankQuantile(samples, q))
        << "q=" << q;
  }
}

TEST(HistogramQuantile, OverflowBucketReportsInfinity) {
  obs::Histogram h({1.0, 2.0});
  h.Record(0.5);
  h.Record(100.0);  // overflow: above the last bound
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
  EXPECT_TRUE(std::isinf(h.Quantile(1.0)));
  EXPECT_GT(h.Quantile(1.0), 0.0);
}

TEST(HistogramQuantile, EmptyHistogramReportsZero) {
  obs::Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

// The free-function form (used by the JSON exporter and the dump writer)
// agrees with the member form for identical bucket contents.
TEST(HistogramQuantile, FreeFunctionMatchesMember) {
  const std::vector<double> bounds = {0.5, 1.0, 2.0};
  obs::Histogram h(bounds);
  for (double v : {0.1, 0.6, 0.7, 1.5, 9.0}) h.Record(v);
  const std::vector<std::int64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), bounds.size() + 1);
  for (const double q : {0.01, 0.2, 0.5, 0.8, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(bounds, buckets, q), h.Quantile(q))
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
}

// MetricsJson keeps quantiles behind include_timing: bucket occupancy of
// duration histograms is wall-clock-derived, so a timing-off export must
// not leak p50/p90/p99 (the determinism contract other tests diff against).
TEST(HistogramQuantile, MetricsJsonGatesQuantilesBehindTiming) {
  auto& registry = obs::MetricsRegistry::Instance();
  registry.ResetAll();
  registry.GetHistogram("flight_test/gating", {1.0, 2.0}).Record(1.5);

  const std::string without = obs::MetricsJson(registry.Snapshot(), false);
  EXPECT_EQ(without.find("\"p50\""), std::string::npos);
  EXPECT_EQ(without.find("\"buckets\""), std::string::npos);

  const std::string with = obs::MetricsJson(registry.Snapshot(), true);
  EXPECT_NE(with.find("\"p50\""), std::string::npos);
  EXPECT_NE(with.find("\"p90\""), std::string::npos);
  EXPECT_NE(with.find("\"p99\""), std::string::npos);
  EXPECT_NE(with.find("\"buckets\""), std::string::npos);
}

}  // namespace
