// Dump-under-concurrent-writers test (the seqlock contract, TSan target):
// writer threads hammer their per-thread rings while the main thread takes
// repeated dumps. Every dump taken mid-race must validate — in particular
// each thread's event list must be strictly monotone in the sequence
// clock, which fails if a torn slot is ever emitted instead of skipped —
// and the quiesced final dump must account for every record.
//
// Carries the `concurrency` label so the TSan tree races the slot
// seqlocks, the claim freelist, and the artifact pointer:
//   ctest --test-dir build-tsan -L "flight|concurrency"
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/flight_validate.h"
#include "support/json.h"

namespace obs = certkit::obs;
namespace support = certkit::support;

namespace {

constexpr int kWriters = 4;
constexpr int kEventsPerWriter = 20000;
constexpr int kDumpsDuringRace = 50;

// Start/stop gates. Ring claims happen at a thread's *first* record and
// releases at thread exit, with released rings reused — so on a one-core
// machine a writer can finish and hand its ring to the next writer,
// collapsing the test onto one ring. To pin four distinct rings, every
// writer records once (claiming) before main opens the go gate, and stays
// alive until the final dump's per-ring assertions are done.
std::atomic<int> g_ready{0};
std::atomic<bool> g_go{false};
std::atomic<bool> g_stop{false};

void WriterBody(int writer_index) {
  obs::RecordFlightEvent(obs::FlightEventType::kCandidateBegin, 0, 0,
                         writer_index);  // claims this thread's ring
  g_ready.fetch_add(1);
  while (!g_go.load(std::memory_order_acquire)) std::this_thread::yield();
  for (int i = 0; i < kEventsPerWriter; ++i) {
    switch (i % 4) {
      case 0:
        obs::RecordFlightEvent(obs::FlightEventType::kStageBegin,
                               static_cast<std::uint32_t>(i % 9), 0, i);
        break;
      case 1:
        obs::RecordFlightEvent(obs::FlightEventType::kStageEnd,
                               static_cast<std::uint32_t>(i % 9), 0, i);
        break;
      case 2:
        obs::RecordFlightEvent(obs::FlightEventType::kMonitorVerdict,
                               static_cast<std::uint32_t>(i % 6), 1, i);
        break;
      default:
        obs::RecordFlightEvent(obs::FlightEventType::kCandidateEnd, 0, 0,
                               writer_index * kEventsPerWriter + i);
        break;
    }
    // Keep the artifact seqlock in the race too.
    if (i % 4096 == 0) {
      obs::SetFlightArtifactPath("artifacts/writer_" +
                                 std::to_string(writer_index) + ".json");
    }
  }
  while (!g_stop.load(std::memory_order_acquire)) std::this_thread::yield();
}

TEST(FlightConcurrency, DumpsTakenUnderFireAlwaysValidate) {
  obs::ResetFlightRecorderForTesting();

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) writers.emplace_back(WriterBody, w);
  while (g_ready.load() < kWriters) std::this_thread::yield();
  g_go.store(true, std::memory_order_release);

  // Race the dump path against live writers. A failure here is a seqlock
  // bug (torn read surfacing as a duplicate/regressing seq or a garbage
  // name), not schedule-dependent flakiness: validation is tolerant of
  // any *consistent* interleaving.
  int validated = 0;
  for (int d = 0; d < kDumpsDuringRace; ++d) {
    const std::string dump =
        obs::FlightDumpString(obs::FlightDumpTrigger::kExplicit);
    std::string error;
    ASSERT_TRUE(obs::ValidateFlightDump(dump, &error))
        << "dump " << d << ": " << error;
    ++validated;
  }
  g_stop.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(validated, kDumpsDuringRace);

  // Quiesced: the counters saw every record, nothing was dropped (writers
  // + main thread fit comfortably in the ring pool), and the final dump
  // holds exactly the newest ring-capacity records per writer ring.
  const auto stats = obs::GetFlightRecorderStats();
  EXPECT_EQ(stats.events,
            static_cast<std::int64_t>(kWriters) * (kEventsPerWriter + 1));
  EXPECT_EQ(stats.dropped, 0);

  const std::string final_dump =
      obs::FlightDumpString(obs::FlightDumpTrigger::kExplicit);
  std::string error;
  ASSERT_TRUE(obs::ValidateFlightDump(final_dump, &error)) << error;
  support::JsonValue root;
  ASSERT_TRUE(support::ParseJson(final_dump, &root, &error)) << error;
  const support::JsonValue* threads =
      root.Find("flight_dump")->Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_EQ(static_cast<int>(threads->items.size()), kWriters);
  for (const support::JsonValue& thread : threads->items) {
    const support::JsonValue* events = thread.Find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(static_cast<int>(events->items.size()),
              obs::kFlightRingCapacity);
  }
  std::string artifact;
  ASSERT_TRUE(support::JsonGetString(*root.Find("flight_dump"), "artifact",
                                     &artifact, &error))
      << error;
  EXPECT_EQ(artifact.rfind("artifacts/writer_", 0), 0u) << artifact;
}

// Threads beyond the static ring pool must degrade to counted drops, never
// block or crash. Exercised with short-lived threads so the freelist's
// claim/release path races too.
TEST(FlightConcurrency, ThreadChurnReclaimsRings) {
  obs::ResetFlightRecorderForTesting();
  constexpr int kGenerations = 8;
  constexpr int kThreadsPerGeneration = 16;
  for (int g = 0; g < kGenerations; ++g) {
    std::vector<std::thread> burst;
    for (int t = 0; t < kThreadsPerGeneration; ++t) {
      burst.emplace_back([] {
        for (int i = 0; i < 64; ++i) {
          obs::RecordFlightEvent(obs::FlightEventType::kCandidateBegin, 0, 0,
                                 i);
        }
      });
    }
    for (std::thread& t : burst) t.join();
  }
  // Released rings are reused, so churn far beyond kFlightMaxRings total
  // threads drops nothing (at most kThreadsPerGeneration + main are ever
  // live at once).
  const auto stats = obs::GetFlightRecorderStats();
  EXPECT_EQ(stats.events, static_cast<std::int64_t>(kGenerations) *
                              kThreadsPerGeneration * 64);
  EXPECT_EQ(stats.dropped, 0);
  std::string error;
  ASSERT_TRUE(obs::ValidateFlightDump(
      obs::FlightDumpString(obs::FlightDumpTrigger::kExplicit), &error))
      << error;
}

}  // namespace
