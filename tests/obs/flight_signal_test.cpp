// Fatal-signal smoke test for the black box: a forked child arms the
// signal handlers, drives the instrumented pilot for a few ticks, then
// raises SIGABRT. The parent asserts that (a) the child still died *by
// SIGABRT* — arming the recorder must not change the process's
// termination status — and (b) the pre-opened fd now holds a validating
// dump whose headline names the last completed pipeline stage.
//
// This is the acceptance criterion of the flight-recorder PR exercised
// hermetically (the CLI-level variant is `kill -ABRT` of a running
// `certkit campaign`; see README).
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "ad/pipeline.h"
#include "obs/flight_recorder.h"
#include "obs/flight_validate.h"
#include "support/io.h"
#include "support/json.h"

namespace obs = certkit::obs;
namespace support = certkit::support;

namespace {

TEST(FlightSignal, AbortedChildLeavesValidatingDump) {
  const std::string dump_path =
      std::string(::testing::TempDir()) + "flight_signal_test_dump.json";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child. No gtest assertions here — distinct _exit codes diagnose the
    // failure mode instead (the parent expects none of them to be reached).
    obs::ResetFlightRecorderForTesting();
    if (!obs::InstallFlightSignalHandlers(dump_path)) ::_exit(3);
    adpilot::PilotConfig cfg;
    cfg.safety.tick_deadline = 5.0;  // generous: no deadline trips wanted
    adpilot::ApolloPilot pilot(cfg);
    for (int t = 0; t < 5; ++t) pilot.Tick();
    ::raise(SIGABRT);
    ::_exit(97);  // unreachable: the handler re-raises with default action
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // The handler must preserve the kill-by-signal termination (dump, then
  // restore default disposition and re-raise) — a child that exits
  // normally means the handler swallowed the signal.
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child did not die by signal; exit status "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  auto content = support::ReadFile(dump_path);
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  std::string error;
  ASSERT_TRUE(obs::ValidateFlightDump(content.value(), &error)) << error;

  support::JsonValue root;
  ASSERT_TRUE(support::ParseJson(content.value(), &root, &error)) << error;
  const support::JsonValue* dump = root.Find("flight_dump");
  ASSERT_NE(dump, nullptr);

  const support::JsonValue* trigger = dump->Find("trigger");
  ASSERT_NE(trigger, nullptr);
  std::string kind, name;
  ASSERT_TRUE(support::JsonGetString(*trigger, "kind", &kind, &error))
      << error;
  EXPECT_EQ(kind, "signal");
  std::int64_t signal_number = 0;
  ASSERT_TRUE(
      support::JsonGetI64(*trigger, "signal", &signal_number, &error))
      << error;
  EXPECT_EQ(signal_number, SIGABRT);
  ASSERT_TRUE(support::JsonGetString(*trigger, "name", &name, &error))
      << error;
  EXPECT_EQ(name, "SIGABRT");

  // Five full ticks completed before the abort, so the newest non-tick
  // stage_end in the rings is the pipeline's final stage.
  std::string last_stage;
  ASSERT_TRUE(support::JsonGetString(*dump, "last_completed_stage",
                                     &last_stage, &error))
      << error;
  EXPECT_EQ(last_stage, "localization");

  std::int64_t recorded = 0;
  ASSERT_TRUE(
      support::JsonGetI64(*dump, "events_recorded", &recorded, &error))
      << error;
  EXPECT_GT(recorded, 0);
}

}  // namespace
