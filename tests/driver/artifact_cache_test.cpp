// Correctness tests for the content-hash artifact cache: a warm run must be
// bit-identical to a cold run (any cached/fresh mix, any --jobs count), a
// changed byte must invalidate exactly its own artifact, and damaged or
// mismatched entries must silently recompute — the cache can only ever make
// analysis faster, never different.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "driver/analysis_driver.h"
#include "driver/artifact_cache.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace certkit::driver {
namespace {

namespace fs = std::filesystem;

std::int64_t Counter(const char* name) {
  return obs::MetricsRegistry::Instance().GetCounter(name).value();
}

// A small three-module codebase exercising every serialized payload:
// functions, types, globals, casts, macros, directives, comments with REQ
// tags (traceability), MISRA/style findings, and a spliced string literal
// (owned lexeme storage).
std::vector<SourceInput> TestSources() {
  return {
      {"alpha/a.cc",
       "// REQ-001: alpha entry\n"
       "#include \"alpha/a.h\"\n"
       "#define ALPHA_MAX 10\n"
       "int g_alpha_count = 0;\n"
       "static const char* kSpliced = \"ab\\\ncd\";\n"
       "int AlphaWork(int x) {\n"
       "  if (x > ALPHA_MAX) { return x; }\n"
       "  int y = (int)x + static_cast<int>(x);\n"
       "  return y;\n"
       "}\n"},
      {"alpha/b.cc",
       "// REQ-002: alpha helper\n"
       "struct AlphaState { int a; int b; };\n"
       "void AlphaReset(AlphaState* s) {\n"
       "  if (s) { s->a = 0; s->b = 0; }\n"
       "  goto done;\n"
       "done:\n"
       "  return;\n"
       "}\n"},
      {"beta/c.cc",
       "namespace beta {\n"
       "int Twice(int v) { return v + v; }\n"
       "int Use() { Twice(2); return Twice(3); }\n"
       "}  // namespace beta\n"},
  };
}

class ArtifactCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("certkit_cache_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  CodebaseAnalysis Analyze(int jobs, const std::string& cache_dir,
                           bool cache_gc = false) {
    DriverOptions options;
    options.jobs = jobs;
    options.cache_dir = cache_dir;
    options.cache_gc = cache_gc;
    AnalysisDriver driver(options);
    auto analysis = driver.AnalyzeSources(TestSources());
    EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
    return std::move(analysis).value();
  }

  std::vector<fs::path> CacheEntries(const char* extension) const {
    std::vector<fs::path> entries;
    if (!fs::exists(dir_)) return entries;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == extension) entries.push_back(e.path());
    }
    return entries;
  }

  std::string dir_;
};

TEST_F(ArtifactCacheTest, WarmRunIsBitIdenticalToColdRun) {
  const std::int64_t hits0 = Counter("driver/cache_hits");
  const std::int64_t misses0 = Counter("driver/cache_misses");

  const CodebaseAnalysis cold = Analyze(1, dir_);
  EXPECT_EQ(Counter("driver/cache_hits") - hits0, 0);
  EXPECT_EQ(Counter("driver/cache_misses") - misses0, 3);
  EXPECT_EQ(CacheEntries(".ckart").size(), 3u);
  EXPECT_EQ(CacheEntries(".ckmod").size(), 2u);  // alpha, beta

  const CodebaseAnalysis warm = Analyze(1, dir_);
  EXPECT_EQ(Counter("driver/cache_hits") - hits0, 3);
  EXPECT_EQ(Counter("driver/cache_misses") - misses0, 3);
  EXPECT_EQ(DigestAnalysis(warm), DigestAnalysis(cold));
}

TEST_F(ArtifactCacheTest, UncachedAndCachedAnalysesAgree) {
  const CodebaseAnalysis plain = Analyze(1, "");
  const CodebaseAnalysis cold = Analyze(1, dir_);
  const CodebaseAnalysis warm = Analyze(1, dir_);
  EXPECT_EQ(DigestAnalysis(cold), DigestAnalysis(plain));
  EXPECT_EQ(DigestAnalysis(warm), DigestAnalysis(plain));
}

TEST_F(ArtifactCacheTest, JobCountDoesNotAffectCachedResults) {
  const CodebaseAnalysis cold = Analyze(1, dir_);
  const CodebaseAnalysis warm4 = Analyze(4, dir_);
  const CodebaseAnalysis warm2 = Analyze(2, dir_);
  EXPECT_EQ(DigestAnalysis(warm4), DigestAnalysis(cold));
  EXPECT_EQ(DigestAnalysis(warm2), DigestAnalysis(cold));
}

TEST_F(ArtifactCacheTest, OneByteFlipInvalidatesExactlyOneArtifact) {
  Analyze(1, dir_);
  const std::int64_t hits0 = Counter("driver/cache_hits");
  const std::int64_t misses0 = Counter("driver/cache_misses");

  auto sources = TestSources();
  sources[1].content[sources[1].content.size() - 2] = ';';  // flip one byte
  DriverOptions options;
  options.jobs = 1;
  options.cache_dir = dir_;
  AnalysisDriver driver(options);
  auto analysis = driver.AnalyzeSources(sources);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  EXPECT_EQ(Counter("driver/cache_hits") - hits0, 2);
  EXPECT_EQ(Counter("driver/cache_misses") - misses0, 1);
  // The changed file selects a new entry name; the stale one stays orphaned.
  EXPECT_EQ(CacheEntries(".ckart").size(), 4u);
}

TEST_F(ArtifactCacheTest, CorruptEntriesAreSilentlyRecomputed) {
  const CodebaseAnalysis cold = Analyze(1, dir_);
  const std::int64_t misses0 = Counter("driver/cache_misses");

  // Damage every file entry a different way: truncation, garbage bytes,
  // and emptiness. Every one must miss and recompute, and the result must
  // still be bit-identical.
  auto entries = CacheEntries(".ckart");
  ASSERT_EQ(entries.size(), 3u);
  {
    std::error_code ec;
    fs::resize_file(entries[0], fs::file_size(entries[0]) / 2, ec);
    ASSERT_FALSE(ec);
    std::FILE* f = std::fopen(entries[1].string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage-overwrite", f);
    std::fclose(f);
    fs::resize_file(entries[2], 0, ec);
    ASSERT_FALSE(ec);
  }

  const CodebaseAnalysis recomputed = Analyze(1, dir_);
  EXPECT_EQ(Counter("driver/cache_misses") - misses0, 3);
  EXPECT_EQ(DigestAnalysis(recomputed), DigestAnalysis(cold));

  // The recompute repaired the entries: a third run is all hits again.
  const std::int64_t hits1 = Counter("driver/cache_hits");
  const CodebaseAnalysis warm = Analyze(1, dir_);
  EXPECT_EQ(Counter("driver/cache_hits") - hits1, 3);
  EXPECT_EQ(DigestAnalysis(warm), DigestAnalysis(cold));
}

TEST_F(ArtifactCacheTest, CorruptModuleEntriesAreSilentlyRecomputed) {
  const CodebaseAnalysis cold = Analyze(1, dir_);
  for (const auto& e : CacheEntries(".ckmod")) {
    std::error_code ec;
    fs::resize_file(e, 3, ec);
    ASSERT_FALSE(ec);
  }
  const CodebaseAnalysis warm = Analyze(1, dir_);
  EXPECT_EQ(DigestAnalysis(warm), DigestAnalysis(cold));
}

TEST_F(ArtifactCacheTest, ChangedOptionsDoNotReuseStaleArtifacts) {
  Analyze(1, dir_);
  const std::int64_t hits0 = Counter("driver/cache_hits");
  const std::int64_t misses0 = Counter("driver/cache_misses");

  DriverOptions options;
  options.jobs = 1;
  options.cache_dir = dir_;
  options.style_max_line_length = 100;  // different options fingerprint
  AnalysisDriver driver(options);
  auto analysis = driver.AnalyzeSources(TestSources());
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(Counter("driver/cache_hits") - hits0, 0);
  EXPECT_EQ(Counter("driver/cache_misses") - misses0, 3);
}

TEST_F(ArtifactCacheTest, SerializeRoundTripsExactly) {
  const CodebaseAnalysis cold = Analyze(1, dir_);
  for (const FileAnalysis& fa : cold.files) {
    const ast::SourceFileModel& model =
        cold.modules[fa.module_index].files[fa.file_index];
    const std::string bytes = SerializeArtifact(fa, model);
    FileAnalysis fa2;
    ast::SourceFileModel model2;
    ASSERT_TRUE(DeserializeArtifact(bytes, fa.text, &fa2, &model2))
        << fa.path;
    // module/file indices are merge-assigned, not serialized.
    fa2.module_index = fa.module_index;
    fa2.file_index = fa.file_index;
    EXPECT_EQ(SerializeArtifact(fa2, model2), bytes) << fa.path;
    EXPECT_EQ(fa2.text, fa.text);
    ASSERT_EQ(model2.lexed.tokens.size(), model.lexed.tokens.size());
    for (std::size_t i = 0; i < model2.lexed.tokens.size(); ++i) {
      EXPECT_EQ(model2.lexed.tokens[i].text, model.lexed.tokens[i].text);
      EXPECT_EQ(model2.lexed.tokens[i].kind, model.lexed.tokens[i].kind);
    }
  }
}

TEST_F(ArtifactCacheTest, DeserializeRejectsTruncationAtEveryLength) {
  const CodebaseAnalysis cold = Analyze(1, dir_);
  const FileAnalysis& fa = cold.files.front();
  const ast::SourceFileModel& model =
      cold.modules[fa.module_index].files[fa.file_index];
  const std::string bytes = SerializeArtifact(fa, model);
  // Every strict prefix must fail cleanly (no crash, no partial success).
  for (std::size_t len = 0; len < bytes.size();
       len += std::max<std::size_t>(1, bytes.size() / 257)) {
    FileAnalysis fa2;
    ast::SourceFileModel model2;
    EXPECT_FALSE(DeserializeArtifact(std::string_view(bytes).substr(0, len),
                                     fa.text, &fa2, &model2))
        << "prefix length " << len;
  }
}

// --- cache garbage collection --------------------------------------------
// Entry names are content keys, so nothing ever overwrites a stale entry:
// every edit, rename, or option change orphans the old one. --cache-gc
// prunes exactly the entries the pruning run did not produce or reuse.

TEST_F(ArtifactCacheTest, GcRemovesOrphanedEntriesAndKeepsLiveOnes) {
  Analyze(1, dir_);
  ASSERT_EQ(CacheEntries(".ckart").size(), 3u);
  ASSERT_EQ(CacheEntries(".ckmod").size(), 2u);

  // Edit one file: its old per-file entry and its module's old phase entry
  // both go stale.
  auto sources = TestSources();
  sources[1].content += "// trailing comment\n";
  DriverOptions options;
  options.jobs = 1;
  options.cache_dir = dir_;
  AnalysisDriver driver(options);
  ASSERT_TRUE(driver.AnalyzeSources(sources).ok());
  EXPECT_EQ(CacheEntries(".ckart").size(), 4u);
  EXPECT_EQ(CacheEntries(".ckmod").size(), 3u);

  // A GC run over the ORIGINAL sources prunes the edited variant's entries
  // and keeps every entry it used itself.
  const std::int64_t removed0 = Counter("driver/cache_gc_removed");
  const std::int64_t hits0 = Counter("driver/cache_hits");
  const CodebaseAnalysis before = Analyze(1, dir_, /*cache_gc=*/true);
  EXPECT_EQ(Counter("driver/cache_gc_removed") - removed0, 2);
  EXPECT_EQ(Counter("driver/cache_hits") - hits0, 3);  // all live, all hit
  EXPECT_EQ(CacheEntries(".ckart").size(), 3u);
  EXPECT_EQ(CacheEntries(".ckmod").size(), 2u);

  // The survivors are genuinely live: a warm re-run hits every file and
  // produces the identical analysis.
  const std::int64_t hits1 = Counter("driver/cache_hits");
  const CodebaseAnalysis after = Analyze(1, dir_);
  EXPECT_EQ(Counter("driver/cache_hits") - hits1, 3);
  EXPECT_EQ(DigestAnalysis(after), DigestAnalysis(before));
}

TEST_F(ArtifactCacheTest, GcLeavesForeignFilesAlone) {
  Analyze(1, dir_);
  const fs::path foreign = fs::path(dir_) / "README.txt";
  {
    std::FILE* f = std::fopen(foreign.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a cache entry\n", f);
    std::fclose(f);
  }
  Analyze(1, dir_, /*cache_gc=*/true);
  EXPECT_TRUE(fs::exists(foreign));
}

TEST_F(ArtifactCacheTest, GcOnColdCacheRemovesNothing) {
  const std::int64_t removed0 = Counter("driver/cache_gc_removed");
  Analyze(1, dir_, /*cache_gc=*/true);
  EXPECT_EQ(Counter("driver/cache_gc_removed") - removed0, 0);
  EXPECT_EQ(CacheEntries(".ckart").size(), 3u);
  EXPECT_EQ(CacheEntries(".ckmod").size(), 2u);
}

TEST_F(ArtifactCacheTest, DisabledCacheNeverTouchesDisk) {
  const std::int64_t hits0 = Counter("driver/cache_hits");
  const std::int64_t misses0 = Counter("driver/cache_misses");
  Analyze(1, "");
  EXPECT_EQ(Counter("driver/cache_hits") - hits0, 0);
  EXPECT_EQ(Counter("driver/cache_misses") - misses0, 0);
  EXPECT_FALSE(fs::exists(dir_));
}

}  // namespace
}  // namespace certkit::driver
