// Tests for the parallel single-pass analysis driver: artifact shape and the
// bit-identical-for-any-thread-count determinism contract.
#include "driver/analysis_driver.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/analyze.h"
#include "corpus/generator.h"
#include "support/io.h"

namespace certkit::driver {
namespace {

namespace fs = std::filesystem;

// A small multi-module corpus exercising every per-file pass: complexity
// bands, casts, globals, gotos, multi-exit functions, CUDA kernels.
std::vector<corpus::ModuleSpec> SmallSpec() {
  std::vector<corpus::ModuleSpec> spec(3);
  spec[0].name = "perception";
  spec[0].num_files = 4;
  spec[0].functions_low = 20;
  spec[0].functions_moderate = 5;
  spec[0].functions_risky = 2;
  spec[0].mutable_globals = 12;
  spec[0].casts = 15;
  spec[0].multi_exit_fraction = 0.4;
  spec[0].cuda_kernels = 2;
  spec[0].target_loc = 900;
  spec[1].name = "planning";
  spec[1].num_files = 3;
  spec[1].functions_low = 15;
  spec[1].gotos = 2;
  spec[1].recursive_functions = 1;
  spec[1].target_loc = 700;
  spec[2].name = "control";
  spec[2].num_files = 2;
  spec[2].functions_low = 10;
  spec[2].uninitialized_locals = 3;
  spec[2].target_loc = 500;
  return spec;
}

std::vector<SourceInput> SmallCorpusInputs() {
  return corpus::CorpusSourceInputs(
      corpus::GenerateCorpus(SmallSpec(), /*seed=*/26262));
}

// Serializes every scheduling-sensitive artifact of an analysis. Two runs
// are considered identical iff their fingerprints match byte-for-byte.
std::string Fingerprint(const CodebaseAnalysis& cb) {
  std::ostringstream out;
  for (const auto& m : cb.modules) {
    out << "module " << m.name << " files=" << m.metrics.file_count
        << " loc=" << m.metrics.loc << " nloc=" << m.metrics.nloc
        << " fns=" << m.metrics.function_count
        << " cc=" << m.metrics.cc_low << '/' << m.metrics.cc_moderate << '/'
        << m.metrics.cc_risky << '/' << m.metrics.cc_unstable
        << " max=" << m.metrics.max_cc << " mean=" << m.metrics.mean_cc
        << '\n';
    for (const auto& fn : m.functions) {
      out << "  fn " << fn.qualified_name << " cc=" << fn.cyclomatic_complexity
          << " nloc=" << fn.nloc << " tokens=" << fn.token_count << '\n';
    }
  }
  for (const auto& fa : cb.files) {
    out << "file " << fa.path << " module=" << fa.module << " idx=("
        << fa.module_index << ',' << fa.file_index << ')'
        << " fns=" << fa.functions.size()
        << " casts=" << fa.explicit_casts
        << " naming=" << fa.naming_violations << '/' << fa.naming_entities
        << " style=" << fa.style.stats.violations << '/'
        << fa.style.stats.lines_checked << '\n';
    for (const auto& f : fa.misra.findings) {
      out << "  misra " << f.file << ':' << f.line << ' ' << f.rule_id << '\n';
    }
    for (const auto& f : fa.style.report.findings) {
      out << "  style " << f.file << ':' << f.line << ' ' << f.rule_id << '\n';
    }
    for (const auto& link : fa.trace.links) {
      out << "  trace " << link.requirement << ' ' << link.file << ':'
          << link.comment_line << "->" << link.function << '\n';
    }
  }
  for (const auto& ud : cb.unit_design) {
    out << "unit " << ud.stats.module << " total=" << ud.stats.functions_total
        << " multiexit=" << ud.stats.functions_multi_exit
        << " alloc=" << ud.stats.dynamic_alloc_sites
        << " uninit=" << ud.stats.uninitialized_locals
        << " shadow=" << ud.stats.shadowing_decls << '\n';
  }
  for (const auto& d : cb.defensive) {
    out << "defensive params=" << d.stats.functions_with_params
        << " validating=" << d.stats.functions_validating_inputs
        << " calls=" << d.stats.call_sites_checked
        << " discarded=" << d.stats.discarded_results
        << " asserts=" << d.stats.assertion_sites
        << " findings=" << d.report.findings.size() << '\n';
  }
  for (const auto& s : cb.skipped) out << "skipped " << s << '\n';

  const auto trace = cb.MergedTrace();
  out << "trace reqs=" << trace.Requirements().size()
      << " ratio=" << trace.TraceabilityRatio() << '\n';

  rules::Assessor assessor(cb.MakeAssessorInputs());
  const std::vector<rules::TableAssessment> tables = {
      assessor.AssessCodingGuidelines(), assessor.AssessArchitecture(),
      assessor.AssessUnitDesign()};
  for (const auto& table : tables) {
    for (const auto& a : table.assessments) {
      out << "verdict " << a.technique_id << ' '
          << static_cast<int>(a.verdict) << ' ' << a.evidence << '\n';
    }
  }
  return out.str();
}

CodebaseAnalysis AnalyzeWithJobs(int jobs) {
  DriverOptions options;
  options.jobs = jobs;
  AnalysisDriver driver(options);
  auto analyzed = driver.AnalyzeSources(SmallCorpusInputs());
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return std::move(analyzed).value();
}

TEST(AnalysisDriverTest, ArtifactShape) {
  const auto cb = AnalyzeWithJobs(2);
  ASSERT_EQ(cb.modules.size(), 3u);
  EXPECT_EQ(cb.modules[0].name, "control");  // sorted by name
  EXPECT_EQ(cb.modules[1].name, "perception");
  EXPECT_EQ(cb.modules[2].name, "planning");
  ASSERT_EQ(cb.files_by_module.size(), cb.modules.size());
  ASSERT_EQ(cb.unit_design.size(), cb.modules.size());
  ASSERT_EQ(cb.defensive.size(), cb.modules.size());
  EXPECT_TRUE(cb.skipped.empty());

  // Files are globally path-sorted and the indices are self-consistent.
  for (std::size_t i = 1; i < cb.files.size(); ++i) {
    EXPECT_LT(cb.files[i - 1].path, cb.files[i].path);
  }
  std::size_t indexed = 0;
  for (std::size_t m = 0; m < cb.files_by_module.size(); ++m) {
    for (std::size_t file_index = 0;
         file_index < cb.files_by_module[m].size(); ++file_index) {
      const FileAnalysis& fa = cb.files[cb.files_by_module[m][file_index]];
      EXPECT_EQ(fa.module_index, m);
      EXPECT_EQ(fa.file_index, file_index);
      EXPECT_EQ(fa.module, cb.modules[m].name);
      // The per-file metrics line up with the model stored in the module.
      ASSERT_LT(fa.file_index, cb.modules[m].files.size());
      EXPECT_EQ(fa.functions.size(),
                cb.modules[m].files[fa.file_index].functions.size());
      EXPECT_EQ(fa.path, cb.modules[m].files[fa.file_index].path);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, cb.files.size());
}

TEST(AnalysisDriverTest, ModuleAggregatesMatchSerialAnalyzeModule) {
  const auto cb = AnalyzeWithJobs(4);
  const auto generated = corpus::GenerateCorpus(SmallSpec(), /*seed=*/26262);
  for (const auto& gm : generated) {
    auto serial = corpus::AnalyzeGeneratedModule(gm);
    ASSERT_TRUE(serial.ok());
    for (const auto& m : cb.modules) {
      if (m.name != gm.spec.name) continue;
      EXPECT_EQ(m.metrics.loc, serial.value().metrics.loc);
      EXPECT_EQ(m.metrics.function_count,
                serial.value().metrics.function_count);
      EXPECT_EQ(m.metrics.max_cc, serial.value().metrics.max_cc);
      EXPECT_DOUBLE_EQ(m.metrics.mean_cc, serial.value().metrics.mean_cc);
    }
  }
}

TEST(AnalysisDriverTest, DeterministicAcrossJobCounts) {
  const std::string baseline = Fingerprint(AnalyzeWithJobs(1));
  EXPECT_FALSE(baseline.empty());
  for (const int jobs : {2, 4, 8}) {
    EXPECT_EQ(baseline, Fingerprint(AnalyzeWithJobs(jobs)))
        << "analysis changed with --jobs " << jobs;
  }
}

TEST(AnalysisDriverTest, TreeAnalysisMatchesInMemoryAnalysis) {
  const std::string root =
      (fs::temp_directory_path() / "certkit_driver_tree_test").string();
  fs::remove_all(root);
  for (const auto& input : SmallCorpusInputs()) {
    ASSERT_TRUE(
        support::WriteFile(root + "/" + input.path, input.content).ok());
  }

  DriverOptions serial, eight;
  serial.jobs = 1;
  eight.jobs = 8;
  auto a = AnalysisDriver(serial).AnalyzeTree(root);
  auto b = AnalysisDriver(eight).AnalyzeTree(root);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Fingerprint(a.value()), Fingerprint(b.value()));
  // Same modules and totals as the in-memory run (paths differ by the
  // root prefix, so compare aggregates rather than fingerprints).
  const auto in_memory = AnalyzeWithJobs(1);
  ASSERT_EQ(a.value().modules.size(), in_memory.modules.size());
  for (std::size_t m = 0; m < in_memory.modules.size(); ++m) {
    EXPECT_EQ(a.value().modules[m].name, in_memory.modules[m].name);
    EXPECT_EQ(a.value().modules[m].metrics.nloc,
              in_memory.modules[m].metrics.nloc);
    EXPECT_EQ(a.value().modules[m].metrics.function_count,
              in_memory.modules[m].metrics.function_count);
  }
  fs::remove_all(root);
}

TEST(AnalysisDriverTest, UnparseableSourceIsSkippedNotFatal) {
  DriverOptions options;
  options.jobs = 2;
  AnalysisDriver driver(options);
  auto analyzed = driver.AnalyzeSources(
      {{"mod/good.cc", "void Good() {}\n"},
       {"mod/bad.cc", "/* unterminated comment\n"}});
  ASSERT_TRUE(analyzed.ok());
  ASSERT_EQ(analyzed.value().skipped.size(), 1u);
  EXPECT_EQ(analyzed.value().skipped[0], "mod/bad.cc");
  ASSERT_EQ(analyzed.value().files.size(), 1u);
  EXPECT_EQ(analyzed.value().files[0].path, "mod/good.cc");
}

TEST(AnalysisDriverTest, DefaultModuleForBarePaths) {
  DriverOptions options;
  options.jobs = 1;
  options.default_module = "snippet";
  AnalysisDriver driver(options);
  auto analyzed = driver.AnalyzeSources({{"lone.cc", "void Lone() {}\n"}});
  ASSERT_TRUE(analyzed.ok());
  ASSERT_EQ(analyzed.value().modules.size(), 1u);
  EXPECT_EQ(analyzed.value().modules[0].name, "snippet");
}

}  // namespace
}  // namespace certkit::driver
