// Tests for the disk-based codebase loader (driver-backed).
#include "driver/codebase_loader.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "support/io.h"

namespace certkit::driver {
namespace {

namespace fs = std::filesystem;

class CodebaseLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs the cases as parallel processes, and
    // a shared directory would let one SetUp clobber another's tree.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("certkit_loader_test_") + info->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteSource(const std::string& rel, const std::string& content) {
    ASSERT_TRUE(support::WriteFile(root_ + "/" + rel, content).ok());
  }

  std::string root_;
};

TEST_F(CodebaseLoaderTest, GroupsByFirstLevelDirectory) {
  WriteSource("alpha/a.cc", "void AlphaFn() {}\n");
  WriteSource("alpha/b.cc", "void AlphaFn2() {}\n");
  WriteSource("beta/c.cc", "void BetaFn() {}\n");
  WriteSource("root_file.cc", "void RootFn() {}\n");
  WriteSource("notes.txt", "not source\n");

  auto loaded = LoadCodebase(root_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Codebase& cb = loaded.value();
  ASSERT_EQ(cb.modules().size(), 3u);  // alpha, beta, <root>
  EXPECT_TRUE(cb.skipped.empty());
  std::size_t total_functions = 0;
  for (const auto& m : cb.modules()) {
    total_functions += static_cast<std::size_t>(m.metrics.function_count);
  }
  EXPECT_EQ(total_functions, 4u);
  EXPECT_EQ(cb.raw_sources.size(), 4u);
}

TEST_F(CodebaseLoaderTest, MissingDirectoryIsNotFound) {
  auto loaded = LoadCodebase(root_ + "/nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kNotFound);
}

TEST_F(CodebaseLoaderTest, UnparseableFileIsSkippedNotFatal) {
  WriteSource("mod/good.cc", "void Good() {}\n");
  WriteSource("mod/bad.cc", "/* unterminated comment\n");
  auto loaded = LoadCodebase(root_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().skipped.size(), 1u);
  EXPECT_NE(loaded.value().skipped[0].find("bad.cc"), std::string::npos);
  ASSERT_EQ(loaded.value().modules().size(), 1u);
  EXPECT_EQ(loaded.value().modules()[0].metrics.function_count, 1);
}

TEST_F(CodebaseLoaderTest, TracesCollectedWithComments) {
  WriteSource("mod/traced.cc",
              "// REQ-T-1: do the thing\nvoid DoThing() {}\n");
  auto loaded = LoadCodebase(root_);
  ASSERT_TRUE(loaded.ok());
  const auto merged = rules::MergeTraceReports(loaded.value().traces);
  ASSERT_EQ(merged.links.size(), 1u);
  EXPECT_EQ(merged.links[0].requirement, "REQ-T-1");
  EXPECT_EQ(merged.links[0].function, "DoThing");
}

TEST_F(CodebaseLoaderTest, CustomExtensions) {
  WriteSource("mod/a.cc", "void A() {}\n");
  WriteSource("mod/b.inc", "void B() {}\n");
  LoadOptions opts;
  opts.extensions = {".inc"};
  auto loaded = LoadCodebase(root_, opts);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().modules().size(), 1u);
  EXPECT_EQ(loaded.value().modules()[0].metrics.function_count, 1);
}

TEST_F(CodebaseLoaderTest, JobsCountDoesNotChangeResult) {
  WriteSource("alpha/a.cc", "void A() { if (1) {} }\nvoid B() {}\n");
  WriteSource("alpha/b.cc", "int g;\nvoid C(int* p) { *p = 1; }\n");
  WriteSource("beta/c.cc", "// REQ-X-9: beta\nvoid D() {}\n");
  LoadOptions serial, parallel_opts;
  serial.jobs = 1;
  parallel_opts.jobs = 8;
  auto a = LoadCodebase(root_, serial);
  auto b = LoadCodebase(root_, parallel_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().modules().size(), b.value().modules().size());
  for (std::size_t i = 0; i < a.value().modules().size(); ++i) {
    EXPECT_EQ(a.value().modules()[i].name, b.value().modules()[i].name);
    EXPECT_EQ(a.value().modules()[i].metrics.function_count,
              b.value().modules()[i].metrics.function_count);
  }
  ASSERT_EQ(a.value().raw_sources.size(), b.value().raw_sources.size());
  for (std::size_t i = 0; i < a.value().raw_sources.size(); ++i) {
    EXPECT_EQ(a.value().raw_sources[i].path, b.value().raw_sources[i].path);
  }
}

}  // namespace
}  // namespace certkit::driver
