// Tests for the corpus generator: the generated code must be parseable and
// its measured statistics must match the calibrated specification.
#include "corpus/generator.h"

#include <gtest/gtest.h>

#include "corpus/analyze.h"
#include "metrics/module_metrics.h"
#include "rules/unit_design.h"

namespace certkit::corpus {
namespace {

ModuleSpec SmallSpec() {
  ModuleSpec spec;
  spec.name = "demo";
  spec.num_files = 3;
  spec.functions_low = 40;
  spec.functions_moderate = 10;
  spec.functions_risky = 5;
  spec.functions_unstable = 2;
  spec.mutable_globals = 12;
  spec.const_globals = 4;
  spec.casts = 25;
  spec.multi_exit_fraction = 0.4;
  spec.gotos = 2;
  spec.recursive_functions = 1;
  spec.uninitialized_locals = 6;
  spec.cuda_kernels = 3;
  spec.target_loc = 3000;
  return spec;
}

TEST(CorpusGeneratorTest, DeterministicForSeed) {
  const ModuleSpec spec = SmallSpec();
  auto a = GenerateModule(spec, 42);
  auto b = GenerateModule(spec, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].content, b[i].content);
  }
  auto c = GenerateModule(spec, 43);
  EXPECT_NE(a[0].content, c[0].content);
}

TEST(CorpusGeneratorTest, GeneratedCodeParses) {
  GeneratedModule gm{SmallSpec(), GenerateModule(SmallSpec(), 7)};
  auto analyzed = AnalyzeGeneratedModule(gm);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
}

TEST(CorpusGeneratorTest, ComplexityBandsMatchSpec) {
  const ModuleSpec spec = SmallSpec();
  GeneratedModule gm{spec, GenerateModule(spec, 7)};
  auto analyzed = AnalyzeGeneratedModule(gm);
  ASSERT_TRUE(analyzed.ok());
  const auto& m = analyzed.value().metrics;
  // CUDA kernel pairs consume low-band slots; architecture extras (component
  // methods, wide-interface functions, the entry point) come on top.
  EXPECT_EQ(m.function_count,
            spec.TotalFunctions() + spec.ExtraFunctions());
  EXPECT_EQ(m.cc_moderate, spec.functions_moderate);
  EXPECT_EQ(m.cc_risky, spec.functions_risky);
  EXPECT_EQ(m.cc_unstable, spec.functions_unstable);
  EXPECT_EQ(m.FunctionsOverCc(10),
            spec.functions_moderate + spec.functions_risky +
                spec.functions_unstable);
}

TEST(CorpusGeneratorTest, GlobalsAndCastsMatchSpec) {
  const ModuleSpec spec = SmallSpec();
  GeneratedModule gm{spec, GenerateModule(spec, 7)};
  auto analyzed = AnalyzeGeneratedModule(gm);
  ASSERT_TRUE(analyzed.ok());
  auto ud = rules::AnalyzeUnitDesign(analyzed.value());
  EXPECT_EQ(ud.stats.mutable_globals, spec.mutable_globals);
  EXPECT_EQ(ud.stats.const_globals, spec.const_globals);
  EXPECT_EQ(ud.stats.explicit_casts, spec.casts);
  EXPECT_EQ(ud.stats.goto_statements, spec.gotos);
  EXPECT_EQ(ud.stats.recursive_functions_direct, spec.recursive_functions);
  EXPECT_EQ(ud.stats.uninitialized_locals, spec.uninitialized_locals);
}

TEST(CorpusGeneratorTest, MultiExitFractionApproximatesSpec) {
  const ModuleSpec spec = SmallSpec();
  GeneratedModule gm{spec, GenerateModule(spec, 7)};
  auto analyzed = AnalyzeGeneratedModule(gm);
  ASSERT_TRUE(analyzed.ok());
  auto ud = rules::AnalyzeUnitDesign(analyzed.value());
  EXPECT_NEAR(ud.stats.MultiExitFraction(), spec.multi_exit_fraction, 0.06);
}

TEST(CorpusGeneratorTest, LocApproximatesTarget) {
  const ModuleSpec spec = SmallSpec();
  GeneratedModule gm{spec, GenerateModule(spec, 7)};
  auto analyzed = AnalyzeGeneratedModule(gm);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_GE(analyzed.value().metrics.loc, spec.target_loc * 9 / 10);
  EXPECT_LE(analyzed.value().metrics.loc, spec.target_loc * 2);
}

TEST(CorpusGeneratorTest, CudaFileEmitted) {
  const ModuleSpec spec = SmallSpec();
  auto files = GenerateModule(spec, 7);
  bool has_cu = false;
  for (const auto& f : files) {
    if (f.path.ends_with(".cu")) {
      has_cu = true;
      EXPECT_NE(f.content.find("__global__"), std::string::npos);
      EXPECT_NE(f.content.find("cudaMalloc"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_cu);
}

TEST(ApolloLikeSpecTest, CalibrationTotalsMatchPaper) {
  const auto spec = ApolloLikeSpec();
  ASSERT_EQ(spec.size(), 9u);
  int cc_over_10 = 0;
  int casts = 0;
  std::int64_t loc = 0;
  int perception_globals = 0;
  for (const auto& m : spec) {
    cc_over_10 +=
        m.functions_moderate + m.functions_risky + m.functions_unstable;
    casts += m.casts;
    loc += m.target_loc;
    if (m.name == "perception") perception_globals = m.mutable_globals;
  }
  EXPECT_EQ(cc_over_10, 554);     // paper: 554 functions with CC > 10
  EXPECT_GT(casts, 1400);         // paper: > 1,400 explicit casts
  EXPECT_EQ(loc, 220000);         // paper: > 220k LOC
  EXPECT_EQ(perception_globals, 900);  // paper: ~900 globals in perception
  // Module sizes within the 5k–60k band of Observation 13.
  for (const auto& m : spec) {
    EXPECT_GE(m.target_loc, 5000) << m.name;
    EXPECT_LE(m.target_loc, 60000) << m.name;
  }
}

}  // namespace
}  // namespace certkit::corpus
