// Integration tests: perception over rendered frames and the full
// closed-loop pipeline.
#include "ad/pipeline.h"

#include <gtest/gtest.h>

namespace adpilot {
namespace {

TEST(PerceptionIntegrationTest, DetectsVehicleInRenderedFrame) {
  ScenarioConfig scfg;
  scfg.num_vehicles = 1;
  scfg.seed = 11;
  Scenario scenario(scfg);
  const Obstacle& truth = scenario.ground_truth()[0];
  Pose ego{{truth.position.x - 15.0, truth.position.y}, 0.0};

  Perception perception;
  // Two frames to let the tracker confirm.
  std::vector<Obstacle> tracked;
  for (int i = 0; i < 3; ++i) {
    nn::Tensor frame = scenario.RenderCameraFrame(ego);
    tracked = perception.Process(frame, ego, 0.1);
  }
  ASSERT_FALSE(perception.last_detections().empty());
  ASSERT_FALSE(tracked.empty());
  // The tracked obstacle is near the ground-truth vehicle (detector
  // resolution is ~2m cells; the tracker smooths).
  EXPECT_NEAR(tracked[0].position.x, truth.position.x, 4.0);
  EXPECT_NEAR(tracked[0].position.y, truth.position.y, 4.0);
}

TEST(PerceptionIntegrationTest, EmptyRoadYieldsNothing) {
  ScenarioConfig scfg;
  scfg.num_vehicles = 0;
  Scenario scenario(scfg);
  Pose ego{{0.0, 0.0}, 0.0};
  Perception perception;
  nn::Tensor frame = scenario.RenderCameraFrame(ego);
  auto tracked = perception.Process(frame, ego, 0.1);
  EXPECT_TRUE(perception.last_detections().empty());
  EXPECT_TRUE(tracked.empty());
}

TEST(PipelineTest, DrivesForwardWithoutCollision) {
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 2;
  cfg.scenario.seed = 21;
  cfg.goal_x = 120.0;
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(20.0);
  ASSERT_FALSE(reports.empty());
  // The car makes forward progress...
  EXPECT_GT(reports.back().ground_truth.pose.position.x, 20.0);
  // ...and never hits anything (clearance stays positive).
  EXPECT_GT(pilot.MinClearanceSoFar(), 0.0);
}

TEST(PipelineTest, LocalizationStaysNearGroundTruth) {
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 1;
  cfg.scenario.seed = 22;
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(10.0);
  for (const TickReport& r : reports) {
    const double err = r.localized.pose.position.DistanceTo(
        r.ground_truth.pose.position);
    EXPECT_LT(err, 3.0) << "at t=" << r.time;
  }
}

TEST(PipelineTest, PerceivesTrafficDuringRun) {
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 3;
  cfg.scenario.seed = 23;
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(10.0);
  std::size_t frames_with_tracks = 0;
  for (const TickReport& r : reports) {
    if (r.tracked_obstacles > 0) ++frames_with_tracks;
  }
  // Traffic ahead is visible most of the time.
  EXPECT_GT(frames_with_tracks, reports.size() / 3);
}

TEST(PipelineTest, RouteSpansStartToGoal) {
  PilotConfig cfg;
  cfg.goal_x = 150.0;
  ApolloPilot pilot(cfg);
  const Route& route = pilot.route();
  ASSERT_GE(route.waypoints.size(), 2u);
  EXPECT_LT(route.waypoints.front().x, 15.0);
  EXPECT_GT(route.waypoints.back().x, 140.0);
}

TEST(PipelineTest, EmptyWorldReportsNoObstacleStateNotSentinel) {
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 0;
  cfg.scenario.num_pedestrians = 0;
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(5.0);
  for (const TickReport& r : reports) {
    EXPECT_FALSE(r.obstacle_in_range);
    // The distance field is defined only when an obstacle is in range; it
    // must never leak a placeholder magnitude.
    EXPECT_DOUBLE_EQ(r.min_obstacle_distance, 0.0);
  }
  EXPECT_FALSE(pilot.HasClearanceSample());
}

TEST(PipelineTest, ClearanceSampledOnceTrafficAppears) {
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 2;
  cfg.scenario.seed = 33;
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(5.0);
  EXPECT_TRUE(pilot.HasClearanceSample());
  bool any_in_range = false;
  for (const TickReport& r : reports) {
    if (r.obstacle_in_range) {
      any_in_range = true;
      EXPECT_GT(r.min_obstacle_distance, 0.0);
      EXPECT_LT(r.min_obstacle_distance, 1000.0);
    }
  }
  EXPECT_TRUE(any_in_range);
}

TEST(PipelineTest, DeterministicForSameSeed) {
  PilotConfig cfg;
  cfg.scenario.seed = 31;
  ApolloPilot a(cfg);
  ApolloPilot b(cfg);
  auto ra = a.Run(3.0);
  auto rb = b.Run(3.0);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].ground_truth.pose.position.x,
                     rb[i].ground_truth.pose.position.x);
    EXPECT_EQ(ra[i].tracked_obstacles, rb[i].tracked_obstacles);
  }
}

}  // namespace
}  // namespace adpilot
