// Steady-state allocation discipline of the full pipeline tick (ISO
// 26262-6 Table 3: no dynamic objects in steady-state safety-related code).
//
// The harness links the counting operator new/delete replacements
// (support/alloc_hooks.cpp, added via target_sources — see there) and
// asserts that after a warm-up phase, ApolloPilot::Tick performs ZERO heap
// allocations, for every backend x quantized-weights combination, and that
// the detector's batched entry point does the same at batch 1 and batch 8.
// Warm-up allocations are permitted and reported, not hidden: buffers are
// expected to grow to their peak sizes early and then be reused forever.
//
// In sanitizer build trees the sanitizer runtime owns the allocator, so the
// hooks are not linked there (tests/CMakeLists.txt gates the
// target_sources); the zero-allocation assertions are skipped and the test
// degrades to a functional smoke run.
#include <cstdio>
#include <vector>

#include "ad/pipeline.h"
#include "gtest/gtest.h"
#include "nn/detector.h"
#include "support/alloc_counter.h"
#include "timing/timing.h"

namespace {

using certkit::support::AllocCountingActive;
using certkit::support::AllocScope;

constexpr int kWarmupTicks = 60;
constexpr int kMeasuredTicks = 30;

// Every ExecutionTimer the tick path feeds each cycle. Reserving their
// sample buffers up front keeps Record() off the allocator during the
// measured window (sample recording is observability, not tick logic, but
// it runs inside the tick and must obey the same discipline).
void ReserveTickTimers(int ticks) {
  static const char* kTimers[] = {
      "adpilot/tick",     "adpilot/perception",  "adpilot/prediction",
      "adpilot/planning", "adpilot/control",     "adpilot/canbus",
      "adpilot/localization", "adpilot/safety",  "adpilot/tick_effective",
  };
  auto& registry = certkit::timing::TimerRegistry::Instance();
  for (const char* name : kTimers) {
    registry.GetOrCreate(name).Reserve(static_cast<std::size_t>(ticks) + 8);
  }
}

adpilot::PilotConfig MakeConfig(nn::Backend backend, bool quantized) {
  adpilot::PilotConfig cfg;
  cfg.perception.backend = backend;
  cfg.perception.quantized_weights = quantized;
  // The watchdog compares against wall-clock time; a loaded CI machine must
  // not turn a slow-but-correct tick into a logged violation (violations
  // allocate their message strings, which would fail the zero-alloc assert
  // for the wrong reason).
  cfg.safety.tick_deadline = 1e9;
  return cfg;
}

struct TickCase {
  nn::Backend backend;
  bool quantized;
  const char* name;
};

const TickCase kTickCases[] = {
    {nn::Backend::kClosedSim, false, "closed_fp32"},
    {nn::Backend::kClosedSim, true, "closed_int8"},
    {nn::Backend::kOpenSim, false, "open_fp32"},
    {nn::Backend::kOpenSim, true, "open_int8"},
    {nn::Backend::kCpuNaive, false, "cpu_fp32"},
    {nn::Backend::kCpuNaive, true, "cpu_int8"},
};

TEST(TickPerf, SteadyStateTickAllocatesNothing) {
  for (const TickCase& tc : kTickCases) {
    SCOPED_TRACE(tc.name);
    adpilot::ApolloPilot pilot(MakeConfig(tc.backend, tc.quantized));

    AllocScope warmup_scope;
    for (int i = 0; i < kWarmupTicks; ++i) pilot.Tick();
    const std::uint64_t warmup_allocs = warmup_scope.allocations();

    ReserveTickTimers(kMeasuredTicks);
    AllocScope steady_scope;
    for (int i = 0; i < kMeasuredTicks; ++i) pilot.Tick();
    const std::uint64_t steady_allocs = steady_scope.allocations();

    std::printf("[tickperf] %-12s warmup_allocs=%llu steady_allocs=%llu\n",
                tc.name, static_cast<unsigned long long>(warmup_allocs),
                static_cast<unsigned long long>(steady_allocs));
    if (!AllocCountingActive()) {
      GTEST_SKIP() << "alloc hooks not linked (sanitizer build tree); "
                      "functional smoke only";
    }
    // Warm-up IS expected to allocate — a zero here means the counter is
    // not seeing the pipeline at all.
    EXPECT_GT(warmup_allocs, 0u);
    EXPECT_EQ(steady_allocs, 0u)
        << "steady-state Tick touched the heap " << steady_allocs
        << " times (backend/quantization: " << tc.name << ")";
  }
}

TEST(TickPerf, DetectorBatchEntryAllocatesNothingWarm) {
  for (const int batch : {1, 8}) {
    for (const TickCase& tc : kTickCases) {
      SCOPED_TRACE(testing::Message() << tc.name << " batch=" << batch);
      nn::DetectorConfig config;
      config.input_h = config.input_w = 64;
      config.num_classes = 2;
      config.backend = tc.backend;
      nn::TinyYoloDetector detector(config);
      nn::InitBlobDetectorWeights(&detector);
      if (tc.quantized) nn::QuantizeDetectorWeights(&detector);

      std::vector<nn::Tensor> frames;
      for (int b = 0; b < batch; ++b) {
        nn::Tensor frame(1, 3, 64, 64);
        for (std::size_t i = 0; i < frame.size(); ++i) {
          frame.data()[i] =
              static_cast<float>((i * 7 + static_cast<std::size_t>(b) * 131) %
                                 256);
        }
        frames.push_back(std::move(frame));
      }

      std::vector<std::vector<nn::Detection>> out;
      for (int i = 0; i < 3; ++i) detector.DetectBatchInto(frames, &out);

      AllocScope steady_scope;
      for (int i = 0; i < 5; ++i) detector.DetectBatchInto(frames, &out);
      const std::uint64_t steady_allocs = steady_scope.allocations();

      if (!AllocCountingActive()) {
        GTEST_SKIP() << "alloc hooks not linked (sanitizer build tree)";
      }
      EXPECT_EQ(steady_allocs, 0u)
          << "warm DetectBatchInto allocated " << steady_allocs
          << " times (" << tc.name << ", batch " << batch << ")";
    }
  }
}

// The counters themselves: scoped deltas must see exactly the allocations
// made inside the scope (sanity for the instrument, not the pipeline).
TEST(TickPerf, AllocScopeSeesAllocations) {
  if (!AllocCountingActive()) {
    GTEST_SKIP() << "alloc hooks not linked (sanitizer build tree)";
  }
  AllocScope scope;
  {
    // The compiler may elide a provably-unobserved new/delete pair
    // ([expr.new]/10); the asm makes the pointer escape so the allocation
    // must really happen.
    int* raw = new int[1024];
    asm volatile("" : : "g"(raw) : "memory");
    delete[] raw;
    std::vector<int>* v = new std::vector<int>(512);
    asm volatile("" : : "g"(v) : "memory");
    delete v;
  }
  EXPECT_GE(scope.allocations(), 3u);  // array + vector object + its buffer
  EXPECT_GE(scope.deallocations(), 3u);
  EXPECT_GE(scope.bytes(), 1024u * sizeof(int));
}

}  // namespace
