// Unit tests for the runtime safety layer (src/ad/safety): one suite per
// ISO 26262-6 Table 4 detection mechanism, plus the Table 5 degradation
// state machine and the deterministic fault injector that exercises them.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ad/canbus.h"
#include "ad/safety/degradation.h"
#include "ad/safety/fault_injector.h"
#include "ad/safety/monitors.h"
#include "support/check.h"
#include "support/thread_pool.h"
#include "timing/timing.h"

namespace adpilot {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --------------------------------------------------------------------------
// SafetyLog
// --------------------------------------------------------------------------

TEST(SafetyLogTest, TallySinceSplitsBySeverity) {
  SafetyLog log;
  log.Record({1, MonitorId::kRange, Severity::kWarning, true, "w1"});
  log.Record({1, MonitorId::kCommand, Severity::kCritical, true, "c1"});
  const std::int64_t mark = log.size();
  log.Record({2, MonitorId::kDeadline, Severity::kWarning, false, "w2"});
  log.Record({2, MonitorId::kDeadline, Severity::kWarning, false, "w3"});

  std::size_t warnings = 0, criticals = 0;
  log.TallySince(0, &warnings, &criticals);
  EXPECT_EQ(warnings, 3u);
  EXPECT_EQ(criticals, 1u);
  log.TallySince(mark, &warnings, &criticals);
  EXPECT_EQ(warnings, 2u);
  EXPECT_EQ(criticals, 0u);
  EXPECT_EQ(log.CountByMonitor(MonitorId::kDeadline), 2);
  EXPECT_EQ(log.CountHandled(), 2);
}

// Monitors may record from pool worker threads; the log must stay coherent.
// This test carries the `safety`/`concurrency` labels so the TSan build
// tree (cmake -DCERTKIT_SANITIZE=thread) exercises it.
TEST(SafetyLogTest, ConcurrentRecordIsThreadSafe) {
  SafetyLog log;
  certkit::support::ThreadPool pool(4);
  constexpr std::size_t kWriters = 64;
  constexpr int kPerWriter = 50;
  pool.ParallelFor(kWriters, [&](std::size_t i) {
    for (int j = 0; j < kPerWriter; ++j) {
      log.Record({static_cast<std::int64_t>(i), MonitorId::kRange,
                  j % 2 == 0 ? Severity::kWarning : Severity::kCritical,
                  true, "concurrent"});
    }
  });
  EXPECT_EQ(log.size(), static_cast<std::int64_t>(kWriters * kPerWriter));
  std::size_t warnings = 0, criticals = 0;
  log.TallySince(0, &warnings, &criticals);
  EXPECT_EQ(warnings + criticals, kWriters * kPerWriter);
}

// --------------------------------------------------------------------------
// FaultInjector
// --------------------------------------------------------------------------

TEST(FaultInjectorTest, ActiveExactlyInsideWindow) {
  FaultCampaignConfig campaign;
  campaign.faults.push_back({FaultKind::kSensorDropout, /*onset=*/5,
                             /*duration=*/3, 1.0});
  FaultInjector injector(campaign);
  int active_ticks = 0;
  for (std::int64_t t = 0; t < 12; ++t) {
    injector.BeginTick(t);
    const bool active = injector.SensorDropout();
    EXPECT_EQ(active, t >= 5 && t < 8) << "tick " << t;
    if (active) ++active_ticks;
  }
  EXPECT_EQ(active_ticks, 3);
  EXPECT_EQ(injector.injected(FaultKind::kSensorDropout), 3);
  EXPECT_EQ(injector.total_injected(), 3);
}

TEST(FaultInjectorTest, DeterministicForFixedSeed) {
  FaultCampaignConfig campaign;
  campaign.seed = 1234;
  campaign.faults.push_back({FaultKind::kCanBitFlip, 0, 50, /*flips=*/2.0});
  campaign.faults.push_back({FaultKind::kDetectionRange, 0, 50, 1.0});
  FaultInjector a(campaign);
  FaultInjector b(campaign);
  for (std::int64_t t = 0; t < 50; ++t) {
    a.BeginTick(t);
    b.BeginTick(t);
    std::vector<Obstacle> obs_a(3), obs_b(3);
    a.CorruptObstacles(&obs_a);
    b.CorruptObstacles(&obs_b);
    for (std::size_t i = 0; i < obs_a.size(); ++i) {
      EXPECT_DOUBLE_EQ(obs_a[i].position.x, obs_b[i].position.x);
      EXPECT_DOUBLE_EQ(obs_a[i].velocity.x, obs_b[i].velocity.x);
    }
    CanFrame fa, fb;
    fa.data[0] = fb.data[0] = 0x5A;
    a.MutateFrame(&fa);
    b.MutateFrame(&fb);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(fa.data[i], fb.data[i]);
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

TEST(FaultInjectorTest, FabricatesGhostObstacleWhenListEmpty) {
  FaultCampaignConfig campaign;
  campaign.faults.push_back({FaultKind::kDetectionNaN, 0, 1, 1.0});
  FaultInjector injector(campaign);
  injector.BeginTick(0);
  std::vector<Obstacle> obstacles;
  EXPECT_TRUE(injector.CorruptObstacles(&obstacles));
  ASSERT_EQ(obstacles.size(), 1u);
  EXPECT_TRUE(std::isnan(obstacles[0].position.x));
  EXPECT_TRUE(std::isnan(obstacles[0].velocity.y));
}

TEST(FaultInjectorTest, TickIndexMustIncrease) {
  FaultInjector injector(FaultCampaignConfig{});
  injector.BeginTick(5);
  EXPECT_THROW(injector.BeginTick(5), certkit::support::ContractViolation);
  EXPECT_THROW(injector.BeginTick(4), certkit::support::ContractViolation);
}

TEST(FaultInjectorTest, RejectsInvalidCampaign) {
  FaultCampaignConfig bad_onset;
  bad_onset.faults.push_back({FaultKind::kSensorDropout, -1, 1, 1.0});
  EXPECT_THROW(FaultInjector{bad_onset}, certkit::support::ContractViolation);
  FaultCampaignConfig bad_duration;
  bad_duration.faults.push_back({FaultKind::kSensorDropout, 0, 0, 1.0});
  EXPECT_THROW(FaultInjector{bad_duration},
               certkit::support::ContractViolation);
}

// --------------------------------------------------------------------------
// RangeMonitor — Table 4 "range checks of input and output data"
// --------------------------------------------------------------------------

Obstacle ValidObstacle(double x) {
  Obstacle o;
  o.id = 1;
  o.position = {x, 0.0};
  o.velocity = {5.0, 0.0};
  return o;
}

TEST(RangeMonitorTest, AcceptsValidObstacles) {
  RangeMonitor monitor{SafetyConfig{}};
  SafetyLog log;
  std::vector<Obstacle> obstacles = {ValidObstacle(20.0), ValidObstacle(50.0)};
  EXPECT_EQ(monitor.CheckAndSanitizeObstacles(1, Pose{}, &obstacles, &log),
            0u);
  EXPECT_EQ(obstacles.size(), 2u);
  EXPECT_EQ(log.size(), 0);
}

TEST(RangeMonitorTest, RemovesCorruptedObstacles) {
  RangeMonitor monitor{SafetyConfig{}};
  SafetyLog log;
  Obstacle nan_obstacle = ValidObstacle(20.0);
  nan_obstacle.position.x = kNaN;
  Obstacle far_obstacle = ValidObstacle(500.0);       // beyond 120 m range
  Obstacle fast_obstacle = ValidObstacle(30.0);
  fast_obstacle.velocity = {150.0, 0.0};              // beyond 60 m/s
  Obstacle bad_confidence = ValidObstacle(40.0);
  bad_confidence.confidence = 1.5;
  std::vector<Obstacle> obstacles = {ValidObstacle(25.0), nan_obstacle,
                                     far_obstacle, fast_obstacle,
                                     bad_confidence};
  EXPECT_EQ(monitor.CheckAndSanitizeObstacles(1, Pose{}, &obstacles, &log),
            4u);
  ASSERT_EQ(obstacles.size(), 1u);
  EXPECT_DOUBLE_EQ(obstacles[0].position.x, 25.0);
  EXPECT_EQ(log.CountByMonitor(MonitorId::kRange), 4);
  // Removal is the mitigation: every range violation is handled in-cycle.
  EXPECT_EQ(log.CountHandled(), 4);
}

TEST(RangeMonitorTest, ReplacesNonFiniteCommandWithBraking) {
  RangeMonitor monitor{SafetyConfig{}};
  SafetyLog log;
  ControlCommand cmd{kNaN, 0.0, 0.2};
  EXPECT_TRUE(monitor.CheckCommand(3, &cmd, &log));
  EXPECT_DOUBLE_EQ(cmd.throttle, 0.0);
  EXPECT_DOUBLE_EQ(cmd.brake, 1.0);
  EXPECT_DOUBLE_EQ(cmd.steering, 0.0);
  const auto violations = log.Snapshot();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].monitor, MonitorId::kCommand);
  EXPECT_EQ(violations[0].severity, Severity::kCritical);
  EXPECT_TRUE(violations[0].handled);
}

TEST(RangeMonitorTest, ReplacesOutOfRangeCommand) {
  RangeMonitor monitor{SafetyConfig{}};
  SafetyLog log;
  ControlCommand cmd{2.5, 0.0, 0.0};  // throttle beyond [0, 1]
  EXPECT_TRUE(monitor.CheckCommand(3, &cmd, &log));
  EXPECT_DOUBLE_EQ(cmd.brake, 1.0);
  ControlCommand ok{0.4, 0.0, 0.1};
  EXPECT_FALSE(monitor.CheckCommand(4, &ok, &log));
  EXPECT_DOUBLE_EQ(ok.throttle, 0.4);
  EXPECT_EQ(log.size(), 1);
}

// --------------------------------------------------------------------------
// PlausibilityMonitor — Table 4 "plausibility check"
// --------------------------------------------------------------------------

TEST(PlausibilityMonitorTest, AcceptsConsistentEstimate) {
  SafetyConfig config;
  PlausibilityMonitor monitor(config);
  SafetyLog log;
  VehicleState truth;
  truth.speed = 10.0;
  ASSERT_TRUE(monitor.Check(0, truth, &log));  // first check anchors
  for (std::int64_t t = 1; t <= 50; ++t) {
    monitor.Propagate(/*acceleration=*/0.0, /*yaw_rate=*/0.0, 0.1);
    truth.pose.position.x += truth.speed * 0.1;
    // An estimate within 1 m of the reckoned state is always plausible.
    VehicleState estimate = truth;
    estimate.pose.position.y += 0.5;
    EXPECT_TRUE(monitor.Check(t, estimate, &log)) << "tick " << t;
  }
  EXPECT_EQ(log.size(), 0);
}

TEST(PlausibilityMonitorTest, FlagsFrozenEstimate) {
  SafetyConfig config;
  PlausibilityMonitor monitor(config);
  SafetyLog log;
  VehicleState moving;
  moving.speed = 10.0;
  ASSERT_TRUE(monitor.Check(0, moving, &log));
  // The vehicle keeps driving (odometry reports 10 m/s) but the published
  // estimate stays frozen at the origin. Divergence grows 1 m per tick;
  // the envelope starts at 3 m + 0.2 m/tick, so the monitor fires within
  // a few cycles and keeps firing (it never re-anchors on failure).
  const VehicleState frozen = moving;
  bool flagged = false;
  for (std::int64_t t = 1; t <= 10; ++t) {
    monitor.Propagate(0.0, 0.0, 0.1);
    if (!monitor.Check(t, frozen, &log)) flagged = true;
  }
  EXPECT_TRUE(flagged);
  EXPECT_GE(log.CountByMonitor(MonitorId::kPlausibility), 1);
}

// --------------------------------------------------------------------------
// DeadlineWatchdog — Table 4 "external monitoring facility"
// --------------------------------------------------------------------------

TEST(DeadlineWatchdogTest, FlagsOverrunsAndFeedsTimer) {
  SafetyConfig config;
  config.tick_deadline = 0.5;
  certkit::timing::ExecutionTimer timer("safety_test/watchdog");
  DeadlineWatchdog watchdog(config, &timer);
  SafetyLog log;
  EXPECT_TRUE(watchdog.Check(0, 0.01, &log));
  EXPECT_TRUE(watchdog.Check(1, 0.49, &log));
  EXPECT_FALSE(watchdog.Check(2, 1.2, &log));
  EXPECT_EQ(watchdog.misses(), 1);
  EXPECT_EQ(log.CountByMonitor(MonitorId::kDeadline), 1);
  // Faulted cycles still land in the WCET statistics.
  EXPECT_EQ(timer.sample_count(), 3);
  EXPECT_DOUBLE_EQ(timer.GetStats().max, 1.2);
  EXPECT_THROW(watchdog.Check(3, -0.1, &log),
               certkit::support::ContractViolation);
}

// --------------------------------------------------------------------------
// ControlFlowMonitor — Table 4 "control flow monitoring"
// --------------------------------------------------------------------------

TEST(ControlFlowMonitorTest, IntactSequencePasses) {
  ControlFlowMonitor monitor;
  SafetyLog log;
  monitor.BeginTick(1);
  for (int s = 0; s < kNumTickStages; ++s) {
    monitor.Enter(static_cast<TickStage>(s));
  }
  EXPECT_TRUE(monitor.EndTick(&log));
  EXPECT_EQ(log.size(), 0);
}

TEST(ControlFlowMonitorTest, FlagsMissingStage) {
  ControlFlowMonitor monitor;
  SafetyLog log;
  monitor.BeginTick(2);
  for (int s = 0; s < kNumTickStages; ++s) {
    if (s == static_cast<int>(TickStage::kPlanning)) continue;
    monitor.Enter(static_cast<TickStage>(s));
  }
  EXPECT_FALSE(monitor.EndTick(&log));
  EXPECT_GE(log.CountByMonitor(MonitorId::kControlFlow), 1);
}

TEST(ControlFlowMonitorTest, FlagsReorderedStages) {
  ControlFlowMonitor monitor;
  SafetyLog log;
  monitor.BeginTick(3);
  monitor.Enter(TickStage::kPrediction);  // swapped with perception
  monitor.Enter(TickStage::kPerception);
  monitor.Enter(TickStage::kPlanning);
  monitor.Enter(TickStage::kControl);
  monitor.Enter(TickStage::kCanBus);
  monitor.Enter(TickStage::kLocalization);
  EXPECT_FALSE(monitor.EndTick(&log));
  EXPECT_GE(log.CountByMonitor(MonitorId::kControlFlow), 2);
}

TEST(ControlFlowMonitorTest, FlagsExtraStageAndResetsPerTick) {
  ControlFlowMonitor monitor;
  SafetyLog log;
  monitor.BeginTick(4);
  for (int s = 0; s < kNumTickStages; ++s) {
    monitor.Enter(static_cast<TickStage>(s));
  }
  monitor.Enter(TickStage::kLocalization);  // duplicate execution
  EXPECT_FALSE(monitor.EndTick(&log));
  EXPECT_GE(log.size(), 1);
  // The next tick starts from a clean slate.
  monitor.BeginTick(5);
  for (int s = 0; s < kNumTickStages; ++s) {
    monitor.Enter(static_cast<TickStage>(s));
  }
  const std::int64_t before = log.size();
  EXPECT_TRUE(monitor.EndTick(&log));
  EXPECT_EQ(log.size(), before);
}

// --------------------------------------------------------------------------
// DegradationManager — Table 5 "graceful degradation"
// --------------------------------------------------------------------------

SafetyConfig FastDegradation() {
  SafetyConfig config;
  config.limp_home_after = 3;
  config.safe_stop_after = 6;
  config.recover_after = 4;
  return config;
}

TEST(DegradationManagerTest, EscalatesOnSustainedWarnings) {
  DegradationManager manager(FastDegradation());
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kNominal);
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kNominal);
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kLimpHome);   // 3rd warning
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kLimpHome);
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kLimpHome);
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kSafeStop);   // 6th warning
  EXPECT_EQ(manager.transitions(), 2);
}

TEST(DegradationManagerTest, CriticalLatchesSafeStop) {
  DegradationManager manager(FastDegradation());
  EXPECT_EQ(manager.Update(0, 1), SafetyState::kSafeStop);
  // Clean ticks never un-latch a safe stop.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(manager.Update(0, 0), SafetyState::kSafeStop);
  }
}

TEST(DegradationManagerTest, RecoversFromLimpHomeAfterCleanTicks) {
  DegradationManager manager(FastDegradation());
  for (int i = 0; i < 3; ++i) manager.Update(1, 0);
  ASSERT_EQ(manager.state(), SafetyState::kLimpHome);
  EXPECT_EQ(manager.Update(0, 0), SafetyState::kLimpHome);
  EXPECT_EQ(manager.Update(0, 0), SafetyState::kLimpHome);
  EXPECT_EQ(manager.Update(0, 0), SafetyState::kLimpHome);
  EXPECT_EQ(manager.Update(0, 0), SafetyState::kNominal);  // 4th clean tick
  // An isolated warning no longer escalates immediately.
  EXPECT_EQ(manager.Update(1, 0), SafetyState::kNominal);
}

TEST(DegradationManagerTest, ApplyToCommandEnforcesStateLimits) {
  DegradationManager manager(FastDegradation());
  ControlCommand cmd{0.8, 0.0, 0.2};
  EXPECT_FALSE(manager.ApplyToCommand(&cmd, 5.0));  // nominal: untouched
  EXPECT_DOUBLE_EQ(cmd.throttle, 0.8);

  for (int i = 0; i < 3; ++i) manager.Update(1, 0);
  ASSERT_EQ(manager.state(), SafetyState::kLimpHome);
  ControlCommand slow{0.8, 0.0, 0.2};
  EXPECT_TRUE(manager.ApplyToCommand(&slow, /*current_speed=*/1.0));
  EXPECT_DOUBLE_EQ(slow.throttle, 0.3);  // limp-home throttle cap
  ControlCommand fast{0.8, 0.0, 0.2};
  EXPECT_TRUE(manager.ApplyToCommand(&fast, /*current_speed=*/8.0));
  EXPECT_DOUBLE_EQ(fast.throttle, 0.0);  // above limp-home speed: slow down
  EXPECT_GE(fast.brake, 0.3);

  manager.Update(0, 1);
  ASSERT_EQ(manager.state(), SafetyState::kSafeStop);
  ControlCommand stop{0.8, 0.0, 0.2};
  EXPECT_TRUE(manager.ApplyToCommand(&stop, 8.0));
  EXPECT_DOUBLE_EQ(stop.throttle, 0.0);
  EXPECT_DOUBLE_EQ(stop.brake, 1.0);
  EXPECT_DOUBLE_EQ(stop.steering, 0.0);
}

TEST(DegradationManagerTest, RejectsInvalidThresholds) {
  SafetyConfig config;
  config.limp_home_after = 0;
  EXPECT_THROW(DegradationManager{config},
               certkit::support::ContractViolation);
}

// --------------------------------------------------------------------------
// CAN bus information redundancy — Table 4 "information redundancy"
// --------------------------------------------------------------------------

TEST(CanBusSafetyTest, ChecksumDetectsEveryBitFlipInPayload) {
  const ControlCommand cmd{0.42, 0.0, -0.13};
  const CanFrame frame = EncodeCommand(cmd);
  ASSERT_TRUE(VerifyCommandFrame(frame));
  for (int bit = 0; bit < 64; ++bit) {
    CanFrame corrupted = frame;
    corrupted.data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(VerifyCommandFrame(corrupted)) << "bit " << bit;
  }
}

TEST(CanBusSafetyTest, ReceiverRejectsCorruptedFramesAndHoldsLastCommand) {
  CanBus bus(Pose{}, VehicleParams{}, /*noise_seed=*/5);
  // Establish a valid accelerating command.
  for (int i = 0; i < 10; ++i) {
    bus.SendCommand({0.8, 0.0, 0.0});
    bus.Step(0.1);
  }
  const double speed_before = bus.vehicle().state().speed;
  ASSERT_GT(speed_before, 0.0);
  ASSERT_EQ(bus.frames_rejected(), 0);

  // Corrupt every subsequent frame on the wire; the receiver must reject
  // them all and keep executing the last valid (accelerating) command.
  bus.SetFrameFault([](CanFrame* frame) {
    frame->data[0] ^= 0x01;
    return true;
  });
  for (int i = 0; i < 10; ++i) {
    bus.SendCommand({0.0, 1.0, 0.0});  // full brake — must never arrive
    bus.Step(0.1);
  }
  EXPECT_EQ(bus.frames_rejected(), 10);
  EXPECT_GT(bus.vehicle().state().speed, speed_before);

  // Clearing the fault restores delivery.
  bus.SetFrameFault(nullptr);
  const std::int64_t delivered = bus.frames_delivered();
  bus.SendCommand({0.0, 1.0, 0.0});
  bus.Step(0.1);
  EXPECT_EQ(bus.frames_delivered(), delivered + 1);
}

TEST(CanBusSafetyTest, DroppedFramesHoldLastCommand) {
  CanBus bus(Pose{}, VehicleParams{}, /*noise_seed=*/5);
  for (int i = 0; i < 10; ++i) {
    bus.SendCommand({0.6, 0.0, 0.0});
    bus.Step(0.1);
  }
  const std::int64_t delivered = bus.frames_delivered();
  bus.SetFrameFault([](CanFrame*) { return false; });  // drop everything
  for (int i = 0; i < 5; ++i) {
    bus.SendCommand({0.0, 1.0, 0.0});
    bus.Step(0.1);
  }
  EXPECT_EQ(bus.frames_delivered(), delivered);
  EXPECT_EQ(bus.frames_rejected(), 0);  // dropped, not rejected
  EXPECT_GT(bus.vehicle().state().speed, 0.0);
}

}  // namespace
}  // namespace adpilot
