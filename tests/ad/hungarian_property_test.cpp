// Property test: the Hungarian assignment is optimal — verified against a
// brute-force enumeration of all permutations on random cost matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "ad/tracking.h"
#include "support/rng.h"

namespace adpilot {
namespace {

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& perm) {
  double total = 0.0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    total += cost[i][static_cast<std::size_t>(perm[i])];
  }
  return total;
}

// Minimal total cost over all complete assignments (square matrix).
double BruteForceOptimum(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, AssignmentCost(cost, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class HungarianOptimality : public ::testing::TestWithParam<int> {};

TEST_P(HungarianOptimality, MatchesBruteForceOnRandomMatrices) {
  const int n = GetParam();
  certkit::support::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<double>> cost(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n)));
    for (auto& row : cost) {
      for (auto& v : row) v = rng.UniformDouble(0.0, 100.0);
    }
    const auto assignment = HungarianAssign(cost);
    // Complete and injective.
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      ASSERT_GE(assignment[static_cast<std::size_t>(i)], 0);
      const auto j = static_cast<std::size_t>(assignment[i]);
      ASSERT_FALSE(used[j]);
      used[j] = true;
      total += cost[static_cast<std::size_t>(i)][j];
    }
    // Optimal.
    const double optimum = BruteForceOptimum(cost);
    EXPECT_NEAR(total, optimum, 1e-9)
        << "suboptimal assignment on trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianOptimality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(HungarianOptimality, IntegerCostsWithTies) {
  certkit::support::Xoshiro256 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 5;
    std::vector<std::vector<double>> cost(
        n, std::vector<double>(n));
    for (auto& row : cost) {
      for (auto& v : row) v = static_cast<double>(rng.UniformInt(0, 3));
    }
    const auto assignment = HungarianAssign(cost);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += cost[static_cast<std::size_t>(i)]
                   [static_cast<std::size_t>(assignment[i])];
    }
    EXPECT_NEAR(total, BruteForceOptimum(cost), 1e-9);
  }
}

}  // namespace
}  // namespace adpilot
