// Tests for scenario/camera, prediction, localization, routing, planning,
// control, and CAN bus modules.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "ad/canbus.h"
#include "ad/control.h"
#include "ad/localization.h"
#include "ad/planning.h"
#include "ad/prediction.h"
#include "ad/routing.h"
#include "ad/scenario.h"

namespace adpilot {
namespace {

TEST(GeometryTest, PoseTransformsRoundTrip) {
  Pose pose{{10.0, 5.0}, std::numbers::pi / 3};
  const Vec2 world{17.0, -2.0};
  const Vec2 ego = pose.WorldToEgo(world);
  const Vec2 back = pose.EgoToWorld(ego);
  EXPECT_NEAR(back.x, world.x, 1e-9);
  EXPECT_NEAR(back.y, world.y, 1e-9);
}

TEST(GeometryTest, NormalizeAngle) {
  EXPECT_NEAR(NormalizeAngle(3 * std::numbers::pi), std::numbers::pi, 1e-9);
  EXPECT_NEAR(NormalizeAngle(-3 * std::numbers::pi), std::numbers::pi, 1e-9);
  EXPECT_NEAR(NormalizeAngle(0.5), 0.5, 1e-12);
}

TEST(CameraModelTest, PixelRoundTrip) {
  const Vec2 ego{10.0, -3.0};
  double px = 0, py = 0;
  ASSERT_TRUE(CameraModel::EgoToPixel(ego, &px, &py));
  const Vec2 back = CameraModel::PixelToEgo(px, py);
  EXPECT_NEAR(back.x, ego.x, CameraModel::kMetersPerPixel);
  EXPECT_NEAR(back.y, ego.y, CameraModel::kMetersPerPixel);
}

TEST(CameraModelTest, OutOfWindowRejected) {
  double px, py;
  EXPECT_FALSE(CameraModel::EgoToPixel({-10.0, 0.0}, &px, &py));
  EXPECT_FALSE(CameraModel::EgoToPixel({50.0, 0.0}, &px, &py));
  EXPECT_FALSE(CameraModel::EgoToPixel({10.0, 20.0}, &px, &py));
}

TEST(ScenarioTest, RendersObstaclesAsBrightPixels) {
  ScenarioConfig cfg;
  cfg.num_vehicles = 1;
  cfg.seed = 5;
  Scenario scenario(cfg);
  const Obstacle& v = scenario.ground_truth()[0];
  Pose ego{{v.position.x - 15.0, v.position.y}, 0.0};
  nn::Tensor frame = scenario.RenderCameraFrame(ego);
  double px = 0, py = 0;
  ASSERT_TRUE(CameraModel::EgoToPixel(ego.WorldToEgo(v.position), &px, &py));
  EXPECT_GT(frame.At(0, 0, static_cast<int>(py), static_cast<int>(px)),
            200.0f);
  EXPECT_LT(frame.At(0, 0, 0, 0), 30.0f);  // background
}

TEST(ScenarioTest, StepMovesAgents) {
  ScenarioConfig cfg;
  cfg.num_vehicles = 2;
  Scenario scenario(cfg);
  const double x_before = scenario.ground_truth()[0].position.x;
  scenario.Step(1.0);
  EXPECT_GT(scenario.ground_truth()[0].position.x, x_before);
}

TEST(PredictionTest, ManeuverClassification) {
  Obstacle still;
  still.velocity = {0.1, 0.0};
  Obstacle cruising;
  cruising.velocity = {8.0, 0.5};
  Obstacle crossing;
  crossing.velocity = {0.5, 2.0};
  auto preds = PredictObstacles({still, cruising, crossing});
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0].maneuver, Maneuver::kStationary);
  EXPECT_EQ(preds[1].maneuver, Maneuver::kCruising);
  EXPECT_EQ(preds[2].maneuver, Maneuver::kCrossing);
}

TEST(PredictionTest, TrajectoryRolloutMatchesVelocity) {
  Obstacle o;
  o.position = {10.0, 0.0};
  o.velocity = {4.0, 0.0};
  PredictionConfig cfg;
  cfg.horizon = 2.0;
  cfg.step = 0.5;
  auto preds = PredictObstacles({o}, cfg);
  ASSERT_EQ(preds.size(), 1u);
  const Trajectory& tr = preds[0].trajectory;
  ASSERT_EQ(tr.size(), 5u);  // t = 0, 0.5, 1.0, 1.5, 2.0
  EXPECT_NEAR(tr.back().position.x, 18.0, 1e-9);
  EXPECT_NEAR(tr.back().t, 2.0, 1e-9);
}

TEST(PredictionTest, StationaryStaysPut) {
  Obstacle o;
  o.position = {5.0, 5.0};
  o.velocity = {0.05, 0.05};
  auto preds = PredictObstacles({o});
  EXPECT_NEAR(preds[0].trajectory.back().position.x, 5.0, 1e-9);
}

TEST(LocalizationTest, TracksStraightDrive) {
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 5.0);
  // Drive straight at 5 m/s with perfect sensors.
  for (int i = 1; i <= 50; ++i) {
    ekf.Predict(0.0, 0.0, 0.1);
    ekf.UpdatePosition({0.5 * i, 0.0});
    ekf.UpdateSpeed(5.0);
  }
  const VehicleState st = ekf.state();
  EXPECT_NEAR(st.pose.position.x, 25.0, 0.5);
  EXPECT_NEAR(st.pose.position.y, 0.0, 0.3);
  EXPECT_NEAR(st.speed, 5.0, 0.2);
}

TEST(LocalizationTest, FusesNoisyGnss) {
  certkit::support::Xoshiro256 rng(3);
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 5.0);
  double true_x = 0.0;
  for (int i = 0; i < 200; ++i) {
    true_x += 0.5;  // 5 m/s * 0.1 s
    ekf.Predict(0.0, 0.0, 0.1);
    ekf.UpdatePosition({true_x + rng.Gaussian(0.0, 1.5),
                        rng.Gaussian(0.0, 1.5)});
    ekf.UpdateSpeed(5.0 + rng.Gaussian(0.0, 0.2));
  }
  // The fused estimate is much tighter than a single GNSS fix.
  EXPECT_NEAR(ekf.state().pose.position.x, true_x, 1.0);
  EXPECT_NEAR(ekf.state().pose.position.y, 0.0, 1.0);
}

TEST(LocalizationTest, HeadingFollowsYawRate) {
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 2.0);
  for (int i = 0; i < 10; ++i) {
    ekf.Predict(0.0, 0.1, 0.1);  // 0.1 rad/s for 1 s
  }
  EXPECT_NEAR(ekf.state().pose.heading, 0.1, 1e-6);
}

TEST(RoutingTest, StraightRoadShortestPath) {
  LaneGraph g = LaneGraph::StraightRoad(2, 10, 10.0, 4.0);
  const int start = g.NearestNode({0.0, -2.0});
  const int goal = g.NearestNode({90.0, -2.0});
  auto route = FindRoute(g, start, goal);
  ASSERT_TRUE(route.ok());
  EXPECT_NEAR(route.value().length, 90.0, 1e-6);
  EXPECT_EQ(route.value().node_ids.front(), start);
  EXPECT_EQ(route.value().node_ids.back(), goal);
}

TEST(RoutingTest, LaneChangeWhenGoalInOtherLane) {
  LaneGraph g = LaneGraph::StraightRoad(2, 10, 10.0, 4.0);
  const int start = g.NearestNode({0.0, -2.0});
  const int goal = g.NearestNode({90.0, 2.0});
  auto route = FindRoute(g, start, goal);
  ASSERT_TRUE(route.ok());
  // One diagonal lane change: slightly longer than 90.
  EXPECT_GT(route.value().length, 90.0);
  EXPECT_LT(route.value().length, 95.0);
}

TEST(RoutingTest, UnreachableGoal) {
  LaneGraph g;
  const int a = g.AddNode({0.0, 0.0});
  const int b = g.AddNode({10.0, 0.0});
  g.AddEdge(b, a);  // edge points the wrong way
  auto route = FindRoute(g, a, b);
  EXPECT_FALSE(route.ok());
  EXPECT_EQ(route.status().code(), certkit::support::StatusCode::kNotFound);
}

TEST(RoutingTest, InvalidNodeIds) {
  LaneGraph g = LaneGraph::StraightRoad(1, 3, 10.0, 4.0);
  EXPECT_FALSE(FindRoute(g, -1, 0).ok());
  EXPECT_FALSE(FindRoute(g, 0, 99).ok());
}

TEST(QuinticTest, BoundaryConditions) {
  QuinticPolynomial q(1.0, 0.5, -0.2, 3.0, 0.0, 0.0, 4.0);
  EXPECT_NEAR(q.Value(0.0), 1.0, 1e-9);
  EXPECT_NEAR(q.FirstDerivative(0.0), 0.5, 1e-9);
  EXPECT_NEAR(q.SecondDerivative(0.0), -0.2, 1e-9);
  EXPECT_NEAR(q.Value(4.0), 3.0, 1e-6);
  EXPECT_NEAR(q.FirstDerivative(4.0), 0.0, 1e-6);
  EXPECT_NEAR(q.SecondDerivative(4.0), 0.0, 1e-6);
}

Route StraightRouteTo(double x) {
  Route r;
  for (double s = 0.0; s <= x + 10.0; s += 10.0) {
    r.waypoints.push_back({s, 0.0});
    r.node_ids.push_back(static_cast<int>(s / 10.0));
  }
  r.length = r.waypoints.back().x;
  return r;
}

TEST(PlanningTest, CruisesOnEmptyRoad) {
  VehicleState state;
  state.pose = {{0.0, 0.0}, 0.0};
  state.speed = 5.0;
  auto plan = PlanTrajectory(state, StraightRouteTo(100.0), {});
  EXPECT_TRUE(plan.collision_free);
  ASSERT_FALSE(plan.trajectory.empty());
  // Picks the zero-offset full-speed candidate: stays on the centerline
  // and accelerates toward cruise speed.
  EXPECT_NEAR(plan.trajectory.back().position.y, 0.0, 0.1);
  EXPECT_GT(plan.trajectory.back().speed, 5.0);
}

TEST(PlanningTest, SwervesAroundStationaryObstacle) {
  VehicleState state;
  state.pose = {{0.0, 0.0}, 0.0};
  state.speed = 6.0;
  PredictedObstacle blocker;
  blocker.obstacle.position = {18.0, 0.0};
  blocker.maneuver = Maneuver::kStationary;
  for (double t = 0.0; t <= 4.01; t += 0.25) {
    TrajectoryPoint pt;
    pt.position = {18.0, 0.0};
    pt.t = t;
    blocker.trajectory.push_back(pt);
  }
  auto plan = PlanTrajectory(state, StraightRouteTo(100.0), {blocker});
  EXPECT_TRUE(plan.collision_free);
  // The chosen path leaves the centerline at some point.
  double max_offset = 0.0;
  for (const auto& pt : plan.trajectory) {
    max_offset = std::max(max_offset, std::abs(pt.position.y));
  }
  EXPECT_GT(max_offset, 1.0);
}

TEST(PlanningTest, EmergencyStopWhenFullyBlocked) {
  VehicleState state;
  state.pose = {{0.0, 0.0}, 0.0};
  state.speed = 6.0;
  // Wall of stationary obstacles across every lateral offset, close ahead.
  std::vector<PredictedObstacle> wall;
  for (double y = -6.0; y <= 6.0; y += 2.0) {
    PredictedObstacle p;
    p.obstacle.position = {6.0, y};
    p.maneuver = Maneuver::kStationary;
    for (double t = 0.0; t <= 4.01; t += 0.25) {
      TrajectoryPoint pt;
      pt.position = {6.0, y};
      pt.t = t;
      p.trajectory.push_back(pt);
    }
    wall.push_back(std::move(p));
  }
  auto plan = PlanTrajectory(state, StraightRouteTo(100.0), wall);
  EXPECT_FALSE(plan.collision_free);
  // Emergency stop: speed decreases monotonically to zero.
  ASSERT_GE(plan.trajectory.size(), 2u);
  EXPECT_LE(plan.trajectory.back().speed, plan.trajectory.front().speed);
  EXPECT_NEAR(plan.trajectory.back().speed, 0.0, 1.5);
}

TEST(ControlTest, PidDrivesErrorDown) {
  PidController pid(0.8, 0.2, 0.0, 2.0);
  double speed = 0.0;
  const double target = 5.0;
  for (int i = 0; i < 300; ++i) {
    const double u = pid.Step(target - speed, 0.1);
    speed += std::clamp(u, -1.0, 1.0) * 3.0 * 0.1;  // simple plant
  }
  EXPECT_NEAR(speed, target, 0.4);
}

TEST(ControlTest, SteersTowardOffsetTrajectory) {
  TrajectoryController controller;
  VehicleState state;
  state.pose = {{0.0, 0.0}, 0.0};
  state.speed = 5.0;
  Trajectory traj;
  for (double t = 0.0; t <= 3.01; t += 0.25) {
    TrajectoryPoint pt;
    pt.position = {5.0 * t, 2.0};  // path offset to the left
    pt.speed = 5.0;
    pt.t = t;
    traj.push_back(pt);
  }
  const ControlCommand cmd = controller.Compute(state, traj, 0.1);
  EXPECT_GT(cmd.steering, 0.01);  // steer left (positive)
}

TEST(ControlTest, EmptyTrajectoryBrakes) {
  TrajectoryController controller;
  VehicleState state;
  state.speed = 5.0;
  const ControlCommand cmd = controller.Compute(state, {}, 0.1);
  EXPECT_EQ(cmd.brake, 1.0);
  EXPECT_EQ(cmd.throttle, 0.0);
}

TEST(CanBusTest, CommandFrameRoundTrip) {
  ControlCommand cmd;
  cmd.throttle = 0.375;
  cmd.brake = 0.0;
  cmd.steering = -0.123;
  const CanFrame frame = EncodeCommand(cmd);
  const ControlCommand back = DecodeCommand(frame);
  EXPECT_NEAR(back.throttle, cmd.throttle, 1e-3);
  EXPECT_NEAR(back.brake, cmd.brake, 1e-3);
  EXPECT_NEAR(back.steering, cmd.steering, 1e-3);
}

TEST(CanBusTest, EncodeSaturatesAtWireRange) {
  // The fixed-point wire format covers ±32.767 in steps of 1e-3. Commands
  // beyond that range must saturate, not wrap: the historical bug turned a
  // large positive steering demand into a large negative one.
  ControlCommand extreme;
  extreme.throttle = 40.0;    // 40000 > INT16_MAX = 32767
  extreme.brake = -40.0;
  extreme.steering = 1e9;
  const ControlCommand back = DecodeCommand(EncodeCommand(extreme));
  EXPECT_DOUBLE_EQ(back.throttle, 32.767);
  EXPECT_DOUBLE_EQ(back.brake, -32.768);
  EXPECT_DOUBLE_EQ(back.steering, 32.767);

  // Exactly at the boundary: still round-trips losslessly.
  ControlCommand edge;
  edge.throttle = 32.767;
  edge.brake = -32.768;
  edge.steering = 0.0;
  const ControlCommand edge_back = DecodeCommand(EncodeCommand(edge));
  EXPECT_DOUBLE_EQ(edge_back.throttle, 32.767);
  EXPECT_DOUBLE_EQ(edge_back.brake, -32.768);
}

TEST(CanBusTest, EncodeMapsNonFiniteToZero) {
  ControlCommand cmd;
  cmd.throttle = std::numeric_limits<double>::quiet_NaN();
  cmd.brake = std::numeric_limits<double>::infinity();
  cmd.steering = -std::numeric_limits<double>::infinity();
  const ControlCommand back = DecodeCommand(EncodeCommand(cmd));
  EXPECT_DOUBLE_EQ(back.throttle, 0.0);
  EXPECT_DOUBLE_EQ(back.brake, 0.0);
  EXPECT_DOUBLE_EQ(back.steering, 0.0);
}

TEST(CanBusTest, CommandFrameCarriesValidChecksum) {
  ControlCommand cmd;
  cmd.throttle = 0.7;
  cmd.steering = -0.2;
  CanFrame frame = EncodeCommand(cmd);
  EXPECT_EQ(frame.dlc, 8);
  EXPECT_TRUE(VerifyCommandFrame(frame));
  frame.data[2] ^= 0x10;
  EXPECT_FALSE(VerifyCommandFrame(frame));
}

TEST(ScenarioTest, RejectsInvalidConfig) {
  ScenarioConfig no_lanes;
  no_lanes.num_lanes = 0;  // would underflow the lane sampling bound
  EXPECT_THROW(Scenario{no_lanes}, certkit::support::ContractViolation);
  ScenarioConfig negative_vehicles;
  negative_vehicles.num_vehicles = -1;
  EXPECT_THROW(Scenario{negative_vehicles},
               certkit::support::ContractViolation);
  ScenarioConfig negative_pedestrians;
  negative_pedestrians.num_pedestrians = -2;
  EXPECT_THROW(Scenario{negative_pedestrians},
               certkit::support::ContractViolation);
  ScenarioConfig flat_lane;
  flat_lane.lane_width = 0.0;
  EXPECT_THROW(Scenario{flat_lane}, certkit::support::ContractViolation);
  ScenarioConfig no_road;
  no_road.road_length = -10.0;
  EXPECT_THROW(Scenario{no_road}, certkit::support::ContractViolation);
}

TEST(CanBusTest, DecodeWrongIdIsContractViolation) {
  CanFrame frame;
  frame.can_id = 0x999;
  EXPECT_THROW(DecodeCommand(frame), certkit::support::ContractViolation);
}

TEST(CanBusTest, ThrottleAccelerates) {
  CanBus bus(Pose{{0.0, 0.0}, 0.0});
  ControlCommand cmd;
  cmd.throttle = 1.0;
  for (int i = 0; i < 50; ++i) {
    bus.SendCommand(cmd);
    bus.Step(0.1, 0.0, 0.0);
  }
  EXPECT_GT(bus.vehicle().state().speed, 5.0);
  EXPECT_GT(bus.vehicle().state().pose.position.x, 10.0);
  EXPECT_EQ(bus.frames_sent(), 50);
}

TEST(CanBusTest, BrakeStops) {
  CanBus bus(Pose{{0.0, 0.0}, 0.0});
  ControlCommand go;
  go.throttle = 1.0;
  for (int i = 0; i < 50; ++i) {
    bus.SendCommand(go);
    bus.Step(0.1, 0.0, 0.0);
  }
  ControlCommand stop;
  stop.brake = 1.0;
  for (int i = 0; i < 80; ++i) {
    bus.SendCommand(stop);
    bus.Step(0.1, 0.0, 0.0);
  }
  EXPECT_NEAR(bus.vehicle().state().speed, 0.0, 0.1);
}

TEST(CanBusTest, SteeringTurnsVehicle) {
  CanBus bus(Pose{{0.0, 0.0}, 0.0});
  ControlCommand cmd;
  cmd.throttle = 0.5;
  cmd.steering = 0.2;
  for (int i = 0; i < 50; ++i) {
    bus.SendCommand(cmd);
    bus.Step(0.1, 0.0, 0.0);
  }
  EXPECT_GT(bus.vehicle().state().pose.heading, 0.1);
  EXPECT_GT(bus.vehicle().state().pose.position.y, 0.5);
}

}  // namespace
}  // namespace adpilot
