// Property tests for the EKF localizer: covariance health and robustness
// under sensor dropout.
#include <gtest/gtest.h>

#include <cmath>

#include "ad/localization.h"
#include "support/rng.h"

namespace adpilot {
namespace {

using certkit::support::Xoshiro256;

TEST(EkfPropertyTest, UncertaintyShrinksOnUpdateGrowsOnPredict) {
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 5.0);
  const double initial = ekf.position_uncertainty();
  ekf.Predict(0.0, 0.0, 0.5);
  const double after_predict = ekf.position_uncertainty();
  EXPECT_GT(after_predict, initial);
  ekf.UpdatePosition({2.5, 0.0});
  EXPECT_LT(ekf.position_uncertainty(), after_predict);
}

TEST(EkfPropertyTest, UncertaintyStaysPositiveAndBoundedOverLongRuns) {
  Xoshiro256 rng(31);
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 5.0);
  double true_x = 0.0, true_y = 0.0, heading = 0.0, speed = 5.0;
  for (int i = 0; i < 2000; ++i) {
    const double yaw_rate = 0.05 * std::sin(i * 0.01);
    heading += yaw_rate * 0.1;
    true_x += speed * std::cos(heading) * 0.1;
    true_y += speed * std::sin(heading) * 0.1;
    ekf.Predict(0.0, yaw_rate, 0.1);
    ekf.UpdatePosition({true_x + rng.Gaussian(0.0, 1.5),
                        true_y + rng.Gaussian(0.0, 1.5)});
    ekf.UpdateSpeed(speed + rng.Gaussian(0.0, 0.2));
    ASSERT_GT(ekf.position_uncertainty(), 0.0) << "tick " << i;
    ASSERT_LT(ekf.position_uncertainty(), 100.0) << "tick " << i;
  }
  // After 200 s of curving motion the estimate still tracks the truth.
  const VehicleState st = ekf.state();
  EXPECT_NEAR(st.pose.position.x, true_x, 3.0);
  EXPECT_NEAR(st.pose.position.y, true_y, 3.0);
}

TEST(EkfPropertyTest, SurvivesGnssDropout) {
  Xoshiro256 rng(32);
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 5.0);
  double true_x = 0.0;
  double unc_before_dropout = 0.0;
  for (int i = 0; i < 300; ++i) {
    true_x += 0.5;
    ekf.Predict(0.0, 0.0, 0.1);
    const bool dropout = i >= 100 && i < 200;  // 10 s without fixes
    if (!dropout) {
      ekf.UpdatePosition({true_x + rng.Gaussian(0.0, 1.0),
                          rng.Gaussian(0.0, 1.0)});
    }
    ekf.UpdateSpeed(5.0 + rng.Gaussian(0.0, 0.2));
    if (i == 99) unc_before_dropout = ekf.position_uncertainty();
    if (i == 199) {
      // Dead-reckoning only: uncertainty must have grown.
      EXPECT_GT(ekf.position_uncertainty(), unc_before_dropout);
      // But odometry keeps the estimate in the right neighbourhood.
      EXPECT_NEAR(ekf.state().pose.position.x, true_x, 8.0);
    }
  }
  // Recovery after the dropout window.
  EXPECT_NEAR(ekf.state().pose.position.x, true_x, 2.0);
  EXPECT_LT(ekf.position_uncertainty(), unc_before_dropout * 2.0);
}

TEST(EkfPropertyTest, HeadingStaysNormalized) {
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 3.0}, 2.0);
  for (int i = 0; i < 500; ++i) {
    ekf.Predict(0.0, 0.5, 0.1);  // constant turn, many wraps
    ekf.UpdateSpeed(2.0);
  }
  const double heading = ekf.state().pose.heading;
  EXPECT_GT(heading, -3.1416);
  EXPECT_LE(heading, 3.1416);
}

TEST(EkfPropertyTest, SpeedNeverNegative) {
  EkfLocalizer ekf(Pose{{0.0, 0.0}, 0.0}, 0.5);
  for (int i = 0; i < 100; ++i) {
    ekf.Predict(-3.0, 0.0, 0.1);  // hard braking past zero
    EXPECT_GE(ekf.state().speed, 0.0);
  }
}

}  // namespace
}  // namespace adpilot
