// Integration tests: fault injection against the full closed-loop pipeline.
//
// The acceptance property of the runtime safety layer: under a sustained
// NaN-corrupted detection stream the vehicle ends in safe-stop and no
// non-finite value ever reaches the CAN bus encoder. TickReport.command is
// the command actually handed to EncodeCommand, so asserting it finite on
// every tick proves the containment end to end.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ad/pipeline.h"

namespace adpilot {
namespace {

PilotConfig CampaignPilotConfig(std::uint64_t seed) {
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 3;
  cfg.scenario.seed = seed;
  cfg.goal_x = 200.0;
  cfg.safety.limp_home_after = 3;
  cfg.safety.safe_stop_after = 10;
  // The watchdog measures real wall-clock time, and sanitizer builds slow a
  // tick by an order of magnitude. A generous deadline keeps these tests
  // deterministic under TSan/ASan; injected overruns exceed it explicitly.
  cfg.safety.tick_deadline = 5.0;
  return cfg;
}

FaultCampaignConfig SingleFault(FaultKind kind, std::int64_t onset,
                                std::int64_t duration,
                                double magnitude = 1.0) {
  FaultCampaignConfig campaign;
  campaign.seed = 77;
  campaign.faults.push_back({kind, onset, duration, magnitude});
  return campaign;
}

bool CommandFinite(const ControlCommand& c) {
  return std::isfinite(c.throttle) && std::isfinite(c.brake) &&
         std::isfinite(c.steering);
}

TEST(SafetyIntegrationTest, NaNDetectionStreamEndsInSafeStopWithFiniteBus) {
  PilotConfig cfg = CampaignPilotConfig(101);
  ApolloPilot pilot(cfg);
  // NaN corruption live from tick 10 for the rest of the run.
  FaultInjector injector(SingleFault(FaultKind::kDetectionNaN, 10, 1000));
  pilot.SetFaultInjector(&injector);

  bool ever_overridden = false;
  for (int t = 0; t < 200; ++t) {
    const TickReport report = pilot.Tick();
    // The invariant under test: nothing non-finite reaches EncodeCommand.
    ASSERT_TRUE(CommandFinite(report.command)) << "tick " << t;
    ever_overridden = ever_overridden || report.command_overridden;
  }

  EXPECT_GT(injector.injected(FaultKind::kDetectionNaN), 0);
  // Every corrupted obstacle was caught by the range monitor...
  EXPECT_GT(pilot.safety_log().CountByMonitor(MonitorId::kRange), 0);
  // ...and the sustained fault degraded the vehicle into a safe stop.
  EXPECT_EQ(pilot.safety_state(), SafetyState::kSafeStop);
  EXPECT_TRUE(ever_overridden);
  // Safe-stop means stopped: full braking has drained the speed.
  EXPECT_LT(pilot.canbus().vehicle().state().speed, 0.5);
}

TEST(SafetyIntegrationTest, SensorDropoutTripsControlFlowMonitor) {
  PilotConfig cfg = CampaignPilotConfig(102);
  ApolloPilot pilot(cfg);
  FaultInjector injector(SingleFault(FaultKind::kSensorDropout, 20, 5));
  pilot.SetFaultInjector(&injector);
  for (int t = 0; t < 60; ++t) pilot.Tick();

  EXPECT_EQ(injector.injected(FaultKind::kSensorDropout), 5);
  // Each dropped frame shows up as a broken stage sequence.
  EXPECT_GE(pilot.safety_log().CountByMonitor(MonitorId::kControlFlow), 5);
  // A 5-tick dropout degrades (limp-home after 3) but must not latch a
  // safe stop (criticals only come from the command monitor).
  EXPECT_NE(pilot.safety_state(), SafetyState::kSafeStop);
}

TEST(SafetyIntegrationTest, BitFlipsAreRejectedByChecksum) {
  PilotConfig cfg = CampaignPilotConfig(103);
  ApolloPilot pilot(cfg);
  FaultInjector injector(SingleFault(FaultKind::kCanBitFlip, 15, 20));
  pilot.SetFaultInjector(&injector);
  for (int t = 0; t < 60; ++t) {
    const TickReport report = pilot.Tick();
    ASSERT_TRUE(CommandFinite(report.command));
  }
  EXPECT_EQ(injector.injected(FaultKind::kCanBitFlip), 20);
  // Fletcher-16 catches every flipped frame; the bus supervisor logs them.
  EXPECT_EQ(pilot.canbus().frames_rejected(), 20);
  EXPECT_EQ(pilot.safety_log().CountByMonitor(MonitorId::kCanBus), 20);
}

TEST(SafetyIntegrationTest, StaleLocalizationTripsPlausibilityMonitor) {
  PilotConfig cfg = CampaignPilotConfig(104);
  ApolloPilot pilot(cfg);
  // Freeze the published estimate for 3 seconds while the vehicle drives.
  FaultInjector injector(
      SingleFault(FaultKind::kStaleLocalization, 60, 30));
  pilot.SetFaultInjector(&injector);
  for (int t = 0; t < 120; ++t) pilot.Tick();
  EXPECT_EQ(injector.injected(FaultKind::kStaleLocalization), 30);
  EXPECT_GE(pilot.safety_log().CountByMonitor(MonitorId::kPlausibility), 1);
}

TEST(SafetyIntegrationTest, TimingOverrunTripsWatchdog) {
  PilotConfig cfg = CampaignPilotConfig(105);
  ApolloPilot pilot(cfg);
  // Injected overrun must exceed the generous sanitizer-safe deadline.
  FaultInjector injector(SingleFault(FaultKind::kTimingOverrun, 10, 4,
                                     /*seconds=*/10.0));
  pilot.SetFaultInjector(&injector);
  for (int t = 0; t < 40; ++t) pilot.Tick();
  EXPECT_EQ(injector.injected(FaultKind::kTimingOverrun), 4);
  EXPECT_EQ(pilot.safety_log().CountByMonitor(MonitorId::kDeadline), 4);
}

TEST(SafetyIntegrationTest, FaultFreeRunStaysNominal) {
  PilotConfig cfg = CampaignPilotConfig(106);
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(20.0);
  for (const TickReport& r : reports) {
    EXPECT_EQ(r.safety_state, SafetyState::kNominal);
    EXPECT_FALSE(r.command_overridden);
  }
  EXPECT_EQ(pilot.safety_log().size(), 0);
  EXPECT_EQ(pilot.canbus().frames_rejected(), 0);
}

TEST(SafetyIntegrationTest, CampaignIsDeterministicForSameSeed) {
  PilotConfig cfg = CampaignPilotConfig(107);
  ApolloPilot a(cfg);
  ApolloPilot b(cfg);
  FaultInjector ia(SingleFault(FaultKind::kDetectionRange, 20, 30));
  FaultInjector ib(SingleFault(FaultKind::kDetectionRange, 20, 30));
  a.SetFaultInjector(&ia);
  b.SetFaultInjector(&ib);
  for (int t = 0; t < 100; ++t) {
    const TickReport ra = a.Tick();
    const TickReport rb = b.Tick();
    EXPECT_DOUBLE_EQ(ra.ground_truth.pose.position.x,
                     rb.ground_truth.pose.position.x);
    EXPECT_EQ(ra.safety_state, rb.safety_state);
    EXPECT_EQ(ra.new_violations, rb.new_violations);
  }
  EXPECT_EQ(ia.total_injected(), ib.total_injected());
  EXPECT_EQ(a.safety_log().size(), b.safety_log().size());
}

}  // namespace
}  // namespace adpilot
