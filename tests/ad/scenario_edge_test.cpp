// Scenario edge cases the campaign mutator is allowed to generate: empty
// worlds, maximum actor counts, and egos posed far outside the road extent.
// None of these may crash, produce non-finite pixels, or trip REQ-SCEN-001
// validation incorrectly.
#include "ad/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"

namespace adpilot {
namespace {

bool FrameIsFinite(const nn::Tensor& frame) {
  const float* data = frame.data();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

TEST(ScenarioEdgeTest, ZeroActorScenarioRendersBackgroundOnly) {
  ScenarioConfig cfg;
  cfg.num_vehicles = 0;
  cfg.num_pedestrians = 0;
  EXPECT_TRUE(ValidateScenarioConfig(cfg).empty());
  Scenario scenario(cfg);
  EXPECT_TRUE(scenario.ground_truth().empty());
  scenario.Step(0.1);
  const Pose ego{{0.0, 0.0}, 0.0};
  const nn::Tensor frame = scenario.RenderCameraFrame(ego);
  ASSERT_TRUE(FrameIsFinite(frame));
  // Pure road background: noise floor only, no obstacle brightness.
  const float* data = frame.data();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_GE(data[i], 20.0f);
    EXPECT_LT(data[i], 26.0f);
  }
}

TEST(ScenarioEdgeTest, MaximumActorCountsAreValidAndRender) {
  ScenarioConfig cfg;
  cfg.num_vehicles = ScenarioConfig::kMaxVehicles;
  cfg.num_pedestrians = ScenarioConfig::kMaxPedestrians;
  EXPECT_TRUE(ValidateScenarioConfig(cfg).empty());
  Scenario scenario(cfg);
  EXPECT_EQ(scenario.ground_truth().size(),
            static_cast<std::size_t>(ScenarioConfig::kMaxVehicles +
                                     ScenarioConfig::kMaxPedestrians));
  for (int i = 0; i < 20; ++i) scenario.Step(0.1);
  for (const Obstacle& a : scenario.ground_truth()) {
    EXPECT_TRUE(std::isfinite(a.position.x) && std::isfinite(a.position.y));
    EXPECT_TRUE(std::isfinite(a.velocity.x) && std::isfinite(a.velocity.y));
  }
  EXPECT_TRUE(FrameIsFinite(scenario.RenderCameraFrame({{0.0, 0.0}, 0.0})));
}

TEST(ScenarioEdgeTest, OverCapActorCountsAreRejected) {
  ScenarioConfig vehicles;
  vehicles.num_vehicles = ScenarioConfig::kMaxVehicles + 1;
  EXPECT_FALSE(ValidateScenarioConfig(vehicles).empty());
  EXPECT_THROW(Scenario{vehicles}, certkit::support::ContractViolation);

  ScenarioConfig pedestrians;
  pedestrians.num_pedestrians = ScenarioConfig::kMaxPedestrians + 1;
  EXPECT_FALSE(ValidateScenarioConfig(pedestrians).empty());
  EXPECT_THROW(Scenario{pedestrians}, certkit::support::ContractViolation);
}

TEST(ScenarioEdgeTest, EgoOutsideRoadExtentRendersSafely) {
  ScenarioConfig cfg;
  cfg.num_vehicles = 3;
  cfg.num_pedestrians = 2;
  Scenario scenario(cfg);
  // Far behind the road start, far past its end, far off to the side, and
  // rotated arbitrarily: every view must render finite pixels without any
  // agent landing in the window incorrectly.
  const Pose poses[] = {{{-500.0, 0.0}, 0.0},
                        {{1.0e6, 0.0}, 0.0},
                        {{200.0, 4000.0}, 2.5},
                        {{-1.0e5, -1.0e5}, -3.0}};
  for (const Pose& ego : poses) {
    const nn::Tensor frame = scenario.RenderCameraFrame(ego);
    ASSERT_TRUE(FrameIsFinite(frame));
    const float* data = frame.data();
    for (std::size_t i = 0; i < frame.size(); ++i) {
      EXPECT_GE(data[i], 20.0f);  // background only: no agents in view
      EXPECT_LT(data[i], 26.0f);
    }
  }
}

TEST(ScenarioEdgeTest, SpeedRangeFieldsAreHonoredAndValidated) {
  ScenarioConfig cfg;
  cfg.num_vehicles = 8;
  cfg.vehicle_speed_min = 5.0;
  cfg.vehicle_speed_max = 5.5;
  Scenario scenario(cfg);
  for (const Obstacle& a : scenario.ground_truth()) {
    EXPECT_GE(a.velocity.x, 5.0);
    EXPECT_LT(a.velocity.x, 5.5);
  }

  ScenarioConfig inverted = cfg;
  inverted.vehicle_speed_min = 6.0;
  inverted.vehicle_speed_max = 6.0;  // empty range
  EXPECT_FALSE(ValidateScenarioConfig(inverted).empty());
  EXPECT_THROW(Scenario{inverted}, certkit::support::ContractViolation);

  ScenarioConfig negative = cfg;
  negative.vehicle_speed_min = -1.0;
  EXPECT_FALSE(ValidateScenarioConfig(negative).empty());
}

TEST(ScenarioEdgeTest, ClampProducesConstructibleConfigsFromGarbage) {
  ScenarioConfig garbage;
  garbage.num_vehicles = 9999;
  garbage.num_pedestrians = -5;
  garbage.num_lanes = 0;
  garbage.lane_width = -3.0;
  garbage.road_length = 1.0;
  garbage.vehicle_speed_min = 100.0;
  garbage.vehicle_speed_max = -2.0;
  const ScenarioConfig clamped = ClampScenarioConfig(garbage);
  EXPECT_TRUE(ValidateScenarioConfig(clamped).empty())
      << ValidateScenarioConfig(clamped);
  EXPECT_NO_THROW(Scenario{clamped});
}

TEST(ScenarioEdgeTest, ConfigJsonIsStable) {
  const ScenarioConfig cfg;  // defaults
  // Doubles serialize in shortest round-trip form (support::JsonNumber), so
  // integral values carry no padding zeros and mutated full-precision
  // values survive the replay round trip bit-exactly.
  EXPECT_EQ(ScenarioConfigJson(cfg),
            "{\"num_vehicles\":3,\"num_pedestrians\":0,"
            "\"road_length\":400,\"lane_width\":4,\"num_lanes\":2,"
            "\"vehicle_speed_min\":2,\"vehicle_speed_max\":8,"
            "\"seed\":1234}");
}

}  // namespace
}  // namespace adpilot
