// Tests for the behavior-planning layer.
#include "ad/behavior.h"

#include <gtest/gtest.h>

#include "ad/pipeline.h"

namespace adpilot {
namespace {

PredictedObstacle MakeObstacle(double x, double y, double vx,
                               double length = 4.5) {
  PredictedObstacle p;
  p.obstacle.id = 7;
  p.obstacle.position = {x, y};
  p.obstacle.velocity = {vx, 0.0};
  p.obstacle.length = length;
  for (double t = 0.0; t <= 4.01; t += 0.25) {
    TrajectoryPoint pt;
    pt.position = {x + vx * t, y};
    pt.t = t;
    p.trajectory.push_back(pt);
  }
  return p;
}

VehicleState EgoAtOrigin(double speed) {
  VehicleState st;
  st.pose = {{0.0, 0.0}, 0.0};
  st.speed = speed;
  return st;
}

TEST(BehaviorTest, CruiseOnEmptyRoad) {
  BehaviorPlanner planner;
  const auto decision = planner.Decide(EgoAtOrigin(8.0), {});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kCruise);
  EXPECT_DOUBLE_EQ(decision.target_speed, planner.config().cruise_speed);
  EXPECT_EQ(decision.lead_obstacle_id, -1);
}

TEST(BehaviorTest, ObstacleOutsideCorridorIgnored) {
  BehaviorPlanner planner;
  // Far lateral offset: not a lead.
  const auto decision =
      planner.Decide(EgoAtOrigin(8.0), {MakeObstacle(15.0, 8.0, 2.0)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kCruise);
}

TEST(BehaviorTest, ObstacleBehindIgnored) {
  BehaviorPlanner planner;
  const auto decision =
      planner.Decide(EgoAtOrigin(8.0), {MakeObstacle(-10.0, 0.0, 2.0)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kCruise);
}

TEST(BehaviorTest, StopForStationaryObstruction) {
  BehaviorPlanner planner;
  const auto decision =
      planner.Decide(EgoAtOrigin(6.0), {MakeObstacle(10.0, 0.0, 0.0)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kStop);
  EXPECT_DOUBLE_EQ(decision.target_speed, 0.0);
  EXPECT_EQ(decision.lead_obstacle_id, 7);
}

TEST(BehaviorTest, OvertakeSlowLeadWhenPassingFree) {
  BehaviorPlanner planner;
  // Lead at 2 m/s (cruise 8): deficit 6 >= 3, passing corridor empty.
  const auto decision =
      planner.Decide(EgoAtOrigin(8.0), {MakeObstacle(20.0, 0.0, 2.0)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kOvertake);
  EXPECT_DOUBLE_EQ(decision.target_speed, planner.config().cruise_speed);
}

TEST(BehaviorTest, FollowWhenPassingBlocked) {
  BehaviorPlanner planner;
  // Slow lead ahead plus a vehicle occupying the passing corridor.
  const auto decision = planner.Decide(
      EgoAtOrigin(8.0),
      {MakeObstacle(20.0, 0.0, 2.0), MakeObstacle(18.0, 4.0, 7.5)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kFollow);
  EXPECT_LE(decision.target_speed, 2.0 + 1e-9);
}

TEST(BehaviorTest, FollowFastLeadWithoutOvertake) {
  BehaviorPlanner planner;
  // Lead at 6.5 m/s: deficit 1.5 < 3 -> follow, not overtake.
  const auto decision =
      planner.Decide(EgoAtOrigin(8.0), {MakeObstacle(25.0, 0.0, 6.5)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kFollow);
  EXPECT_NEAR(decision.target_speed, 6.5, 1e-9);
}

TEST(BehaviorTest, FollowBacksOffInsideDesiredGap) {
  BehaviorPlanner planner;
  // Ego fast, lead close: target dips below the lead speed.
  VehicleState ego = EgoAtOrigin(10.0);  // desired gap = 15 m
  const auto decision =
      planner.Decide(ego, {MakeObstacle(8.0, 0.0, 6.0)});
  EXPECT_EQ(decision.behavior, DrivingBehavior::kFollow);
  EXPECT_LT(decision.target_speed, 6.0);
  EXPECT_GE(decision.target_speed, 0.5);
}

TEST(BehaviorTest, NearestLeadWins) {
  BehaviorPlanner planner;
  auto near = MakeObstacle(12.0, 0.0, 6.0);
  near.obstacle.id = 1;
  auto far = MakeObstacle(30.0, 0.0, 1.0);
  far.obstacle.id = 2;
  const auto decision = planner.Decide(EgoAtOrigin(8.0), {far, near});
  EXPECT_EQ(decision.lead_obstacle_id, 1);
}

TEST(ApplyBehaviorTest, PlannerConstraintsPerBehavior) {
  PlannerConfig base;
  BehaviorDecision follow;
  follow.behavior = DrivingBehavior::kFollow;
  follow.target_speed = 4.0;
  const PlannerConfig f = ApplyBehavior(base, follow);
  EXPECT_DOUBLE_EQ(f.cruise_speed, 4.0);
  EXPECT_EQ(f.lateral_offsets, (std::vector<double>{0.0}));

  BehaviorDecision stop;
  stop.behavior = DrivingBehavior::kStop;
  const PlannerConfig s = ApplyBehavior(base, stop);
  EXPECT_EQ(s.speed_factors, (std::vector<double>{0.0}));

  BehaviorDecision overtake;
  overtake.behavior = DrivingBehavior::kOvertake;
  overtake.target_speed = 8.0;
  const PlannerConfig o = ApplyBehavior(base, overtake);
  EXPECT_EQ(o.lateral_offsets.front(), 4.0);
}

TEST(BehaviorIntegrationTest, PilotFollowsSlowTraffic) {
  // Closed loop with a single slow lead directly ahead: the pilot must not
  // collide, and follow/overtake behaviors must appear in the reports.
  PilotConfig cfg;
  cfg.scenario.num_vehicles = 1;
  cfg.scenario.num_lanes = 1;  // the lead must share the ego's lane
  cfg.scenario.seed = 325;  // slow lead: exercises follow/overtake
  ApolloPilot pilot(cfg);
  auto reports = pilot.Run(15.0);
  EXPECT_GT(pilot.MinClearanceSoFar(), 0.0);
  bool saw_non_cruise = false;
  for (const auto& r : reports) {
    if (r.behavior != DrivingBehavior::kCruise) saw_non_cruise = true;
  }
  EXPECT_TRUE(saw_non_cruise);
}

}  // namespace
}  // namespace adpilot
