// Tests for Hungarian assignment, the Kalman filter, and the tracker.
#include "ad/tracking.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"

namespace adpilot {
namespace {

TEST(HungarianTest, IdentityMatrix) {
  std::vector<std::vector<double>> cost = {
      {0.0, 9.0, 9.0}, {9.0, 0.0, 9.0}, {9.0, 9.0, 0.0}};
  EXPECT_EQ(HungarianAssign(cost), (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, AntiDiagonal) {
  std::vector<std::vector<double>> cost = {
      {9.0, 9.0, 0.0}, {9.0, 0.0, 9.0}, {0.0, 9.0, 9.0}};
  EXPECT_EQ(HungarianAssign(cost), (std::vector<int>{2, 1, 0}));
}

TEST(HungarianTest, OptimalNotGreedy) {
  // Greedy picks (0,0)=1, forcing (1,1)=10 (total 11); optimum is
  // (0,1)+(1,0) = 2+3 = 5.
  std::vector<std::vector<double>> cost = {{1.0, 2.0}, {3.0, 10.0}};
  EXPECT_EQ(HungarianAssign(cost), (std::vector<int>{1, 0}));
}

TEST(HungarianTest, RectangularMoreRows) {
  std::vector<std::vector<double>> cost = {{1.0}, {0.5}, {2.0}};
  auto a = HungarianAssign(cost);
  ASSERT_EQ(a.size(), 3u);
  // Only one column: the cheapest row gets it.
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[0], -1);
  EXPECT_EQ(a[2], -1);
}

TEST(HungarianTest, RectangularMoreCols) {
  std::vector<std::vector<double>> cost = {{5.0, 1.0, 3.0}};
  EXPECT_EQ(HungarianAssign(cost), (std::vector<int>{1}));
}

TEST(HungarianTest, InfeasibleEntriesUnassigned) {
  std::vector<std::vector<double>> cost = {{1e9, 1e9}, {1.0, 1e9}};
  auto a = HungarianAssign(cost, 1e8);
  EXPECT_EQ(a[0], -1);
  EXPECT_EQ(a[1], 0);
}

TEST(HungarianTest, EmptyInputs) {
  EXPECT_TRUE(HungarianAssign({}).empty());
  std::vector<std::vector<double>> no_cols = {{}, {}};
  EXPECT_EQ(HungarianAssign(no_cols), (std::vector<int>{-1, -1}));
}

TEST(HungarianTest, RandomMatricesBeatGreedyOrMatch) {
  certkit::support::Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 5;
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (auto& row : cost) {
      for (auto& v : row) v = rng.UniformDouble(0.0, 10.0);
    }
    auto assignment = HungarianAssign(cost);
    double hungarian_total = 0.0;
    std::vector<bool> col_used(n, false);
    for (int i = 0; i < n; ++i) {
      ASSERT_GE(assignment[i], 0);
      ASSERT_FALSE(col_used[assignment[i]]) << "duplicate column";
      col_used[assignment[i]] = true;
      hungarian_total += cost[i][assignment[i]];
    }
    // Greedy baseline.
    double greedy_total = 0.0;
    std::vector<bool> used(n, false);
    for (int i = 0; i < n; ++i) {
      int best = -1;
      for (int j = 0; j < n; ++j) {
        if (!used[j] && (best < 0 || cost[i][j] < cost[i][best])) best = j;
      }
      used[best] = true;
      greedy_total += cost[i][best];
    }
    EXPECT_LE(hungarian_total, greedy_total + 1e-9);
  }
}

TEST(KalmanTest, ConvergesToStaticTarget) {
  KalmanCv2d kf({0.0, 0.0}, 10.0, 10.0);
  for (int i = 0; i < 50; ++i) {
    kf.Predict(0.1, 0.1);
    kf.Update({5.0, -3.0}, 0.5);
  }
  EXPECT_NEAR(kf.position().x, 5.0, 0.2);
  EXPECT_NEAR(kf.position().y, -3.0, 0.2);
  EXPECT_NEAR(kf.velocity().Norm(), 0.0, 0.3);
}

TEST(KalmanTest, EstimatesVelocity) {
  KalmanCv2d kf({0.0, 0.0}, 1.0, 10.0);
  // Target moving at (2, 1) m/s, measured every 0.1 s.
  for (int i = 1; i <= 100; ++i) {
    kf.Predict(0.1, 0.1);
    kf.Update({2.0 * 0.1 * i, 1.0 * 0.1 * i}, 0.01);
  }
  EXPECT_NEAR(kf.velocity().x, 2.0, 0.2);
  EXPECT_NEAR(kf.velocity().y, 1.0, 0.2);
}

TEST(KalmanTest, UncertaintyShrinksWithUpdates) {
  KalmanCv2d kf({0.0, 0.0}, 10.0, 10.0);
  const double before = kf.position_uncertainty();
  kf.Predict(0.1, 0.1);
  kf.Update({0.0, 0.0}, 1.0);
  EXPECT_LT(kf.position_uncertainty(), before);
}

Obstacle Det(double x, double y, ObstacleClass cls = ObstacleClass::kVehicle) {
  Obstacle o;
  o.position = {x, y};
  o.cls = cls;
  o.confidence = 0.9;
  return o;
}

TEST(TrackerTest, ConfirmsAfterEnoughHits) {
  Tracker tracker;
  EXPECT_TRUE(tracker.Update({Det(10, 0)}, 0.1).empty());  // 1 hit
  auto confirmed = tracker.Update({Det(10.2, 0)}, 0.1);    // 2 hits
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_NEAR(confirmed[0].position.x, 10.1, 0.5);
}

TEST(TrackerTest, DropsAfterMisses) {
  TrackerConfig cfg;
  cfg.max_misses = 2;
  Tracker tracker(cfg);
  tracker.Update({Det(10, 0)}, 0.1);
  tracker.Update({Det(10, 0)}, 0.1);
  EXPECT_EQ(tracker.tracks().size(), 1u);
  tracker.Update({}, 0.1);
  tracker.Update({}, 0.1);
  tracker.Update({}, 0.1);  // misses exceed the limit
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(TrackerTest, KeepsIdentitiesOfTwoCrossingObjects) {
  Tracker tracker;
  // Two objects far apart, moving toward each other slowly; the gate keeps
  // associations unambiguous per frame.
  std::vector<int> ids_a, ids_b;
  for (int i = 0; i < 10; ++i) {
    const double t = 0.1 * i;
    auto confirmed = tracker.Update(
        {Det(10 + 2 * t, 0), Det(40 - 2 * t, 0)}, 0.1);
    if (confirmed.size() == 2) {
      // Sorted output order is track insertion order; record ids by x.
      const Obstacle& left =
          confirmed[0].position.x < confirmed[1].position.x ? confirmed[0]
                                                            : confirmed[1];
      const Obstacle& right =
          confirmed[0].position.x < confirmed[1].position.x ? confirmed[1]
                                                            : confirmed[0];
      ids_a.push_back(left.id);
      ids_b.push_back(right.id);
    }
  }
  ASSERT_GE(ids_a.size(), 5u);
  for (std::size_t i = 1; i < ids_a.size(); ++i) {
    EXPECT_EQ(ids_a[i], ids_a[0]);
    EXPECT_EQ(ids_b[i], ids_b[0]);
  }
  EXPECT_NE(ids_a[0], ids_b[0]);
}

TEST(TrackerTest, ClassMismatchIsNotAssociated) {
  Tracker tracker;
  tracker.Update({Det(10, 0, ObstacleClass::kVehicle)}, 0.1);
  tracker.Update({Det(10, 0, ObstacleClass::kVehicle)}, 0.1);
  // A pedestrian at the same spot must start a new track, not update.
  tracker.Update({Det(10, 0, ObstacleClass::kPedestrian)}, 0.1);
  EXPECT_EQ(tracker.tracks().size(), 2u);
}

TEST(TrackerTest, VelocityEstimateFromTracking) {
  Tracker tracker;
  std::vector<Obstacle> confirmed;
  for (int i = 0; i < 30; ++i) {
    confirmed = tracker.Update({Det(5.0 + 0.5 * i, 0)}, 0.1);  // 5 m/s
  }
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_NEAR(confirmed[0].velocity.x, 5.0, 1.0);
  EXPECT_NEAR(confirmed[0].velocity.y, 0.0, 0.5);
}

}  // namespace
}  // namespace adpilot
