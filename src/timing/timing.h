// certkit timing: execution-time measurement and WCET estimation support.
//
// Observation 1 of the paper ties cyclomatic complexity directly to timing
// analysis: "Such high code complexity challenges the functional
// verification of the code as well as its timing analysis (e.g., worst-case
// execution time and response time) estimation." This module provides the
// measurement side of that analysis for the AD pipeline:
//
//  * ExecutionTimer — collects per-invocation execution times of a task and
//    reports the high-water mark, distribution quantiles, and deadline
//    misses;
//  * EstimateWcetEnvelope — the classical measurement-based bound: observed
//    maximum times an engineering margin;
//  * EstimatePwcet — a measurement-based probabilistic WCET in the MBPTA
//    tradition: a Gumbel (EVT) tail fitted to block maxima by the method of
//    moments, evaluated at a target exceedance probability;
//  * ScopedTimer — RAII measurement of a code region.
//
// All statistics are deterministic functions of the recorded samples.
#ifndef CERTKIT_TIMING_TIMING_H_
#define CERTKIT_TIMING_TIMING_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/status.h"

namespace certkit::timing {

// Nearest-rank quantile on a sorted, non-empty sample vector: the smallest
// sample whose rank ceil(q * N) covers at least fraction q of the
// distribution. q = 0 yields the minimum, q = 1 the maximum. WCET
// percentiles must never interpolate below an observed sample, so the
// returned value is always a member of the sample set. This is the rank law
// obs::Histogram::Quantile applies over bucket upper bounds.
double NearestRankQuantile(const std::vector<double>& sorted, double q);

struct TimingStats {
  std::int64_t count = 0;
  double min = 0.0;
  double max = 0.0;   // the high-water mark (HWM)
  double mean = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class ExecutionTimer {
 public:
  explicit ExecutionTimer(std::string name);

  void Record(double seconds);
  // Pre-grows the sample buffer so the next `samples` Record calls perform
  // no heap allocation — the tick path reserves its stage timers up front
  // and then records allocation-free.
  void Reserve(std::size_t samples);
  std::int64_t sample_count() const;
  const std::string& name() const { return name_; }

  TimingStats GetStats() const;

  // Samples strictly above `deadline` seconds.
  std::int64_t CountOver(double deadline) const;

  // Envelope WCET: max observed * margin (margin >= 1).
  double EstimateWcetEnvelope(double margin = 1.2) const;

  // Probabilistic WCET: Gumbel fit over block maxima (method of moments),
  // evaluated at the given exceedance probability per invocation.
  // Requires at least 2 blocks of `block_size` samples; returns
  // InvalidArgument otherwise. Smaller probabilities give larger bounds.
  support::Result<double> EstimatePwcet(double exceedance_probability,
                                        int block_size = 10) const;

  void Reset();

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

// Named-timer registry (one per task/stage).
class TimerRegistry {
 public:
  static TimerRegistry& Instance();
  ExecutionTimer& GetOrCreate(const std::string& name);
  std::vector<const ExecutionTimer*> Timers() const;
  // (name, stats) for every timer, in name order — the form the obs-layer
  // metrics export consumes. Sample counts are deterministic for a fixed
  // workload; the statistics themselves are wall clock.
  std::vector<std::pair<std::string, TimingStats>> SnapshotStats() const;
  void ResetAll();

 private:
  TimerRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ExecutionTimer>> timers_;
};

// RAII region timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(ExecutionTimer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto end = std::chrono::steady_clock::now();
    timer_.Record(std::chrono::duration<double>(end - start_).count());
  }

 private:
  ExecutionTimer& timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace certkit::timing

#endif  // CERTKIT_TIMING_TIMING_H_
