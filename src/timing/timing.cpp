#include "timing/timing.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/check.h"

namespace certkit::timing {

namespace {

constexpr double kEulerMascheroni = 0.5772156649015329;

}  // namespace

double NearestRankQuantile(const std::vector<double>& sorted, double q) {
  CERTKIT_CHECK(!sorted.empty());
  CERTKIT_CHECK(q >= 0.0 && q <= 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

ExecutionTimer::ExecutionTimer(std::string name) : name_(std::move(name)) {}

void ExecutionTimer::Reserve(std::size_t samples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.capacity() < samples_.size() + samples) {
    samples_.reserve(samples_.size() + samples);
  }
}

void ExecutionTimer::Record(double seconds) {
  CERTKIT_CHECK_MSG(seconds >= 0.0, "negative execution time");
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(seconds);
}

std::int64_t ExecutionTimer::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(samples_.size());
}

TimingStats ExecutionTimer::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TimingStats stats;
  stats.count = static_cast<std::int64_t>(samples_.size());
  if (samples_.empty()) return stats;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  stats.mean = sum / static_cast<double>(sorted.size());
  stats.p95 = NearestRankQuantile(sorted, 0.95);
  stats.p99 = NearestRankQuantile(sorted, 0.99);
  return stats;
}

std::int64_t ExecutionTimer::CountOver(double deadline) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (double v : samples_) {
    if (v > deadline) ++n;
  }
  return n;
}

double ExecutionTimer::EstimateWcetEnvelope(double margin) const {
  CERTKIT_CHECK(margin >= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end()) * margin;
}

support::Result<double> ExecutionTimer::EstimatePwcet(
    double exceedance_probability, int block_size) const {
  if (exceedance_probability <= 0.0 || exceedance_probability >= 1.0) {
    return support::InvalidArgumentError(
        "exceedance probability must be in (0, 1)");
  }
  if (block_size < 1) {
    return support::InvalidArgumentError("block size must be positive");
  }
  std::vector<double> maxima;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t start = 0;
         start + static_cast<std::size_t>(block_size) <= samples_.size();
         start += static_cast<std::size_t>(block_size)) {
      double block_max = samples_[start];
      for (std::size_t i = start + 1;
           i < start + static_cast<std::size_t>(block_size); ++i) {
        block_max = std::max(block_max, samples_[i]);
      }
      maxima.push_back(block_max);
    }
  }
  if (maxima.size() < 2) {
    return support::InvalidArgumentError(
        "need at least 2 full blocks of samples for the EVT fit");
  }

  // Method-of-moments Gumbel fit to the block maxima.
  double sum = 0.0;
  for (double v : maxima) sum += v;
  const double mean = sum / static_cast<double>(maxima.size());
  double var = 0.0;
  for (double v : maxima) var += (v - mean) * (v - mean);
  var /= static_cast<double>(maxima.size() - 1);
  const double stddev = std::sqrt(var);
  if (stddev < 1e-15) {
    // Degenerate (constant) maxima: the bound is the constant itself.
    return mean;
  }
  const double beta = stddev * std::numbers::sqrt3 * std::numbers::sqrt2 /
                      std::numbers::pi;  // s * sqrt(6) / pi
  const double mu = mean - kEulerMascheroni * beta;

  // Per-invocation exceedance -> per-block exceedance.
  const double block_exceedance =
      1.0 - std::pow(1.0 - exceedance_probability, block_size);
  // Gumbel quantile at probability (1 - block_exceedance).
  const double q = 1.0 - block_exceedance;
  return mu - beta * std::log(-std::log(q));
}

void ExecutionTimer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

TimerRegistry& TimerRegistry::Instance() {
  static TimerRegistry* registry = new TimerRegistry();
  return *registry;
}

ExecutionTimer& TimerRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(name, std::make_unique<ExecutionTimer>(name)).first;
  }
  return *it->second;
}

std::vector<const ExecutionTimer*> TimerRegistry::Timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ExecutionTimer*> out;
  out.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) out.push_back(timer.get());
  return out;
}

std::vector<std::pair<std::string, TimingStats>>
TimerRegistry::SnapshotStats() const {
  std::vector<const ExecutionTimer*> timers = Timers();
  std::vector<std::pair<std::string, TimingStats>> out;
  out.reserve(timers.size());
  for (const ExecutionTimer* timer : timers) {
    out.emplace_back(timer->name(), timer->GetStats());
  }
  return out;
}

void TimerRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, timer] : timers_) timer->Reset();
}

}  // namespace certkit::timing
