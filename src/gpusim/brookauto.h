// brookauto: a certification-friendly stream-programming layer over gpusim.
//
// The paper's Observations 3-4 show that CUDA intrinsically violates ISO
// 26262 unit-design guidance (raw pointers, dynamic device memory, two
// pointer namespaces the programmer must keep straight). Its proposed
// remedy is Brook Auto [Trompouki & Kosmidis, DAC'18]: a restricted stream
// language that "does not expose pointers to the programmer and takes care
// of those tasks automatically ... without limiting the expressiveness of
// the language", at competitive performance.
//
// This header implements that programming model over gpusim:
//  * Stream<T> — a fixed-size, bounds-checked device stream. Allocation
//    happens exactly once, at construction, and is checked ("online test
//    during creation" — ISO 26262-6 Table 8 row 2); no raw pointer is ever
//    returned to the caller.
//  * Transform / Transform2 / Gather — kernel application over streams.
//    Kernels are value-semantics functors receiving element values (or a
//    bounds-checked window), never addresses.
//  * Reduce — tree-free sequential reduction on the host side of the
//    device results.
//
// The obs_brookauto bench shows the same computation written against CUDA
// (Figure 4 of the paper) and against this API, with the MISRA/unit-design
// findings of the former disappearing in the latter at competitive
// performance.
#ifndef GPUSIM_BROOKAUTO_H_
#define GPUSIM_BROOKAUTO_H_

#include <vector>

#include "gpusim/gpusim.h"
#include "support/check.h"

namespace brookauto {

// A fixed-size device stream. Move-only; the backing device memory is
// released deterministically on destruction (RAII, no leaks by
// construction).
template <typename T>
class Stream {
 public:
  explicit Stream(std::size_t size,
                  gpusim::Device& device = gpusim::Device::Instance())
      : device_(&device), buffer_(size, device) {
    CERTKIT_CHECK_MSG(size > 0, "streams are never empty");
  }

  std::size_t size() const { return buffer_.size(); }

  // Host <-> stream transfer by value semantics (sizes must match exactly:
  // no partial, pointer-arithmetic-style windows).
  void Write(const std::vector<T>& host) {
    CERTKIT_CHECK_MSG(host.size() == size(), "size mismatch on Write");
    buffer_.CopyFromHost(host.data(), host.size());
  }
  std::vector<T> Read() const {
    std::vector<T> host(size());
    buffer_.CopyToHost(host.data(), host.size());
    return host;
  }

  // Element access for kernels (bounds-checked; used by the apply
  // operators below, not exposed to user kernels).
  T At(std::size_t i) const {
    CERTKIT_CHECK(i < size());
    return buffer_.data()[i];
  }
  void Set(std::size_t i, T value) {
    CERTKIT_CHECK(i < size());
    buffer_.data()[i] = value;
  }

  gpusim::Device& device() const { return *device_; }

 private:
  gpusim::Device* device_;
  gpusim::DeviceBuffer<T> buffer_;
};

// A bounds-checked read-only window over a stream, handed to Gather
// kernels. Out-of-range reads return `boundary` (zero-boundary semantics
// baked into the model — no pointer arithmetic can escape).
template <typename T>
class Window {
 public:
  Window(const Stream<T>& stream, std::size_t center, T boundary)
      : stream_(stream), center_(center), boundary_(boundary) {}

  // Relative, clamped access: w[-1], w[0], w[+1]...
  T operator[](std::ptrdiff_t offset) const {
    const std::ptrdiff_t i = static_cast<std::ptrdiff_t>(center_) + offset;
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(stream_.size())) {
      return boundary_;
    }
    return stream_.At(static_cast<std::size_t>(i));
  }

 private:
  const Stream<T>& stream_;
  std::size_t center_;
  T boundary_;
};

namespace internal {
inline gpusim::Dim3 GridFor(std::size_t n, unsigned block) {
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>((n + block - 1) / block);
  return grid;
}
constexpr unsigned kBlock = 256;
}  // namespace internal

// out[i] = fn(in[i])  — elementwise map.
template <typename T, typename Fn>
void Transform(const Stream<T>& in, Stream<T>* out, Fn fn) {
  CERTKIT_CHECK(out != nullptr && in.size() == out->size());
  const std::size_t n = in.size();
  in.device().Launch(
      internal::GridFor(n, internal::kBlock),
      gpusim::Dim3{internal::kBlock, 1, 1},
      [&in, out, fn, n](const gpusim::KernelContext& ctx) {
        const std::size_t i = ctx.GlobalX();
        if (i < n) {
          out->Set(i, fn(in.At(i)));
        }
      });
}

// out[i] = fn(a[i], b[i])  — elementwise zip (e.g. scale_bias).
template <typename T, typename Fn>
void Transform2(const Stream<T>& a, const Stream<T>& b, Stream<T>* out,
                Fn fn) {
  CERTKIT_CHECK(out != nullptr);
  CERTKIT_CHECK(a.size() == b.size() && a.size() == out->size());
  const std::size_t n = a.size();
  a.device().Launch(
      internal::GridFor(n, internal::kBlock),
      gpusim::Dim3{internal::kBlock, 1, 1},
      [&a, &b, out, fn, n](const gpusim::KernelContext& ctx) {
        const std::size_t i = ctx.GlobalX();
        if (i < n) {
          out->Set(i, fn(a.At(i), b.At(i)));
        }
      });
}

// out[i] = fn(window centered at i)  — 1D stencil/gather with zero boundary.
template <typename T, typename Fn>
void Gather(const Stream<T>& in, Stream<T>* out, Fn fn, T boundary = T{}) {
  CERTKIT_CHECK(out != nullptr && in.size() == out->size());
  const std::size_t n = in.size();
  in.device().Launch(
      internal::GridFor(n, internal::kBlock),
      gpusim::Dim3{internal::kBlock, 1, 1},
      [&in, out, fn, boundary, n](const gpusim::KernelContext& ctx) {
        const std::size_t i = ctx.GlobalX();
        if (i < n) {
          out->Set(i, fn(Window<T>(in, i, boundary)));
        }
      });
}

// Host-side fold over the stream contents: result = fn(...fn(init, s[0])...).
template <typename T, typename Fn>
T Reduce(const Stream<T>& in, T init, Fn fn) {
  const std::vector<T> host = in.Read();
  T acc = init;
  for (const T& v : host) acc = fn(acc, v);
  return acc;
}

}  // namespace brookauto

#endif  // GPUSIM_BROOKAUTO_H_
