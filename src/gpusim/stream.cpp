#include "gpusim/stream.h"

#include <cstring>

#include "support/check.h"

namespace gpusim {

Stream::Stream(Device& device)
    : device_(device), worker_([this] { WorkerLoop(); }) {}

Stream::~Stream() {
  Synchronize();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  worker_.join();
}

void Stream::MemcpyAsync(void* dst, const void* src, std::size_t bytes) {
  Enqueue([dst, src, bytes] { std::memcpy(dst, src, bytes); });
}

void Stream::RecordEvent(const std::shared_ptr<Event>& event) {
  CERTKIT_CHECK(event != nullptr);
  Enqueue([event] { event->MarkComplete(); });
}

void Stream::Synchronize() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

bool Stream::Query() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() && !busy_;
}

void Stream::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CERTKIT_CHECK_MSG(!shutdown_, "enqueue on a destroyed stream");
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void Stream::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task();
    lock.lock();
    busy_ = false;
    if (queue_.empty()) cv_idle_.notify_all();
  }
}

std::shared_ptr<Event> Event::Create() {
  return std::shared_ptr<Event>(new Event());
}

void Event::Record(Stream& stream) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded_ = true;
    complete_ = false;
  }
  stream.RecordEvent(shared_from_this());
}

void Event::Synchronize() {
  std::unique_lock<std::mutex> lock(mu_);
  CERTKIT_CHECK_MSG(recorded_, "Synchronize on an unrecorded event");
  cv_.wait(lock, [this] { return complete_; });
}

bool Event::Query() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_;
}

double Event::ElapsedSeconds(const Event& start, const Event& end) {
  std::chrono::steady_clock::time_point t0, t1;
  {
    std::lock_guard<std::mutex> lock(start.mu_);
    CERTKIT_CHECK_MSG(start.complete_, "start event not complete");
    t0 = start.timestamp_;
  }
  {
    std::lock_guard<std::mutex> lock(end.mu_);
    CERTKIT_CHECK_MSG(end.complete_, "end event not complete");
    t1 = end.timestamp_;
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

void Event::MarkComplete() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    complete_ = true;
    timestamp_ = std::chrono::steady_clock::now();
  }
  cv_.notify_all();
}

}  // namespace gpusim
