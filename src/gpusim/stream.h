// gpusim: asynchronous streams and events, mirroring cudaStream_t /
// cudaEvent_t semantics.
//
// A Stream is an ordered work queue: operations enqueued on the same stream
// execute in FIFO order; operations on different streams may overlap.
// Events record completion points within a stream and support host-side
// waiting and elapsed-time queries — the structure real CUDA pipelines
// (including Apollo's perception stack) are built on, and another instance
// of the paper's Observation 4: the API is built around raw pointers and
// asynchronously mutated memory.
#ifndef GPUSIM_STREAM_H_
#define GPUSIM_STREAM_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "gpusim/gpusim.h"

namespace gpusim {

class Event;

class Stream {
 public:
  explicit Stream(Device& device = Device::Instance());
  ~Stream();  // synchronizes, then joins the worker
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Enqueues a kernel launch; returns immediately.
  template <typename Kernel>
  void LaunchAsync(Dim3 grid, Dim3 block, Kernel kernel) {
    Enqueue([this, grid, block, kernel]() mutable {
      device_.Launch(grid, block, kernel);
    });
  }

  // Enqueues an ordered memcpy (both directions share the semantics here).
  void MemcpyAsync(void* dst, const void* src, std::size_t bytes);

  // Enqueues an event-completion marker (used by Event::Record).
  void RecordEvent(const std::shared_ptr<Event>& event);

  // Blocks until every operation enqueued so far has executed.
  void Synchronize();
  // True when the queue is empty and the worker is idle.
  bool Query() const;

  Device& device() { return device_; }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  Device& device_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  bool busy_ = false;
  bool shutdown_ = false;
  std::thread worker_;
};

// A completion marker within a stream.
class Event : public std::enable_shared_from_this<Event> {
 public:
  static std::shared_ptr<Event> Create();

  // Enqueues this event on `stream`; it completes when the stream reaches
  // it. Re-recording resets completion.
  void Record(Stream& stream);
  // Blocks until the event completes. Recording must have happened.
  void Synchronize();
  // True when completed.
  bool Query() const;

  // Wall-clock seconds between two completed events.
  static double ElapsedSeconds(const Event& start, const Event& end);

  // Internal: called by the stream worker.
  void MarkComplete();

 private:
  Event() = default;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool recorded_ = false;
  bool complete_ = false;
  std::chrono::steady_clock::time_point timestamp_;
};

}  // namespace gpusim

#endif  // GPUSIM_STREAM_H_
