#include "gpusim/gpusim.h"

#include <cstdlib>
#include <cstring>

namespace gpusim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(std::uint64_t n, void (*fn)(void*, std::uint64_t),
                             void* ctx) {
  if (n == 0) return;
  // One job owns the pool at a time. Concurrent callers (independent
  // streams launching on the shared device) queue here instead of
  // overwriting each other's job_size_/completed_ mid-flight — the previous
  // behaviour, which left the first caller blocked on a completion count
  // that could never be reached.
  std::lock_guard<std::mutex> submit(submit_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  job_fn_ = fn;
  job_ctx_ = ctx;
  job_size_ = n;
  next_index_ = 0;
  completed_ = 0;
  ++generation_;
  cv_work_.notify_all();
  // The calling thread participates too.
  while (true) {
    const std::uint64_t i = next_index_;
    if (i >= job_size_) break;
    ++next_index_;
    lock.unlock();
    fn(ctx, i);
    lock.lock();
    ++completed_;
  }
  cv_done_.wait(lock, [this] { return completed_ == job_size_; });
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
}

void ThreadPool::ParallelFor(std::uint64_t n,
                             const std::function<void(std::uint64_t)>& fn) {
  ParallelFor(
      n,
      [](void* ctx, std::uint64_t i) {
        (*static_cast<const std::function<void(std::uint64_t)>*>(ctx))(i);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [this, seen_generation] {
      return shutdown_ || (job_fn_ != nullptr &&
                           generation_ != seen_generation &&
                           next_index_ < job_size_);
    });
    if (shutdown_) return;
    seen_generation = generation_;
    const auto my_generation = generation_;
    const auto fn = job_fn_;
    void* const ctx = job_ctx_;
    while (generation_ == my_generation && next_index_ < job_size_) {
      const std::uint64_t i = next_index_++;
      lock.unlock();
      fn(ctx, i);
      lock.lock();
      if (++completed_ == job_size_) cv_done_.notify_all();
    }
  }
}

Device& Device::Instance() {
  static Device* device = new Device();
  return *device;
}

Device::Device(unsigned threads) : pool_(threads) {}

Device::~Device() = default;

void* Device::Malloc(std::size_t bytes) {
  CERTKIT_CHECK(bytes > 0);
  void* p = std::malloc(bytes);
  CERTKIT_CHECK_MSG(p != nullptr, "device allocation of " << bytes
                                                          << " bytes failed");
  std::lock_guard<std::mutex> lock(mem_mu_);
  allocations_[p] = bytes;
  allocated_bytes_ += bytes;
  return p;
}

void Device::Free(void* ptr) {
  if (ptr == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    auto it = allocations_.find(ptr);
    CERTKIT_CHECK_MSG(it != allocations_.end(),
                      "Free of pointer not allocated by this device");
    allocated_bytes_ -= it->second;
    allocations_.erase(it);
  }
  std::free(ptr);
}

void Device::MemcpyHostToDevice(void* dst, const void* src,
                                std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

void Device::MemcpyDeviceToHost(void* dst, const void* src,
                                std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

std::size_t Device::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mem_mu_);
  return allocated_bytes_;
}

void Device::set_sm_count(unsigned sms) {
  CERTKIT_CHECK(sms >= 1);
  std::lock_guard<std::mutex> lock(time_mu_);
  sm_count_ = sms;
}

unsigned Device::sm_count() const {
  std::lock_guard<std::mutex> lock(time_mu_);
  return sm_count_;
}

void Device::ResetTimers() {
  std::lock_guard<std::mutex> lock(time_mu_);
  simulated_seconds_ = 0.0;
  wall_seconds_ = 0.0;
  launch_count_ = 0;
  blocks_launched_ = 0;
}

double Device::simulated_seconds() const {
  std::lock_guard<std::mutex> lock(time_mu_);
  return simulated_seconds_;
}

double Device::wall_seconds() const {
  std::lock_guard<std::mutex> lock(time_mu_);
  return wall_seconds_;
}

void Device::RecordLaunch(double wall_seconds, std::uint64_t blocks) {
  std::lock_guard<std::mutex> lock(time_mu_);
  wall_seconds_ += wall_seconds;
  const double occupancy = static_cast<double>(
      blocks < sm_count_ ? blocks : sm_count_);
  simulated_seconds_ += wall_seconds / occupancy;
  ++launch_count_;
  blocks_launched_ += blocks;
}

std::uint64_t Device::launch_count() const {
  std::lock_guard<std::mutex> lock(time_mu_);
  return launch_count_;
}

std::uint64_t Device::blocks_launched() const {
  std::lock_guard<std::mutex> lock(time_mu_);
  return blocks_launched_;
}

std::size_t Device::allocation_count() const {
  std::lock_guard<std::mutex> lock(mem_mu_);
  return allocations_.size();
}

}  // namespace gpusim
