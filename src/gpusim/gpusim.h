// gpusim: a CUDA-shaped execution layer that runs on CPU threads.
//
// This is the reproduction's stand-in for an NVIDIA GPU + CUDA runtime — the
// same move the paper itself makes for GPU code coverage (cuda4cpu, §3.3).
// Kernels are written against grid/block/thread indices and device buffers,
// launched over a persistent thread pool (one task per block), so both the
// *structure* of GPU code (Figure 4) and its coverage/performance behaviour
// (Figures 6–8) are preserved.
//
// The device-memory API deliberately mirrors cudaMalloc/cudaMemcpy/cudaFree:
// allocations are tracked, and leaks are observable in tests. The RAII
// DeviceBuffer<T> wrapper is what *our* library code uses; the raw API exists
// because the paper's point is precisely that CUDA code is built on raw
// pointers and dynamic memory.
#ifndef GPUSIM_GPUSIM_H_
#define GPUSIM_GPUSIM_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace gpusim {

struct Dim3 {
  unsigned x = 1, y = 1, z = 1;
  std::uint64_t Count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

// Per-thread kernel context: the CUDA built-ins.
struct KernelContext {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  Dim3 thread_idx;

  // blockIdx.x * blockDim.x + threadIdx.x
  unsigned GlobalX() const { return block_idx.x * block_dim.x + thread_idx.x; }
  unsigned GlobalY() const { return block_idx.y * block_dim.y + thread_idx.y; }
  unsigned GlobalZ() const { return block_idx.z * block_dim.z + thread_idx.z; }
};

// Fixed-size worker pool used for block-level parallelism.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs `fn(ctx, i)` for i in [0, n), distributing across workers; blocks
  // until all iterations complete. The raw-pointer form is the primitive:
  // it builds no std::function, so a kernel launch costs zero heap
  // allocations. Safe to call from multiple threads concurrently — whole
  // jobs are serialized on a submission mutex, the way a real device
  // serializes launch queues from independent streams. (Without that
  // serialization, two concurrent callers clobber each other's job
  // bookkeeping and one of them waits forever on a completion count that
  // can no longer be reached — the two-stream hang.)
  void ParallelFor(std::uint64_t n, void (*fn)(void*, std::uint64_t),
                   void* ctx);

  // Convenience wrapper over the raw form for std::function callers.
  void ParallelFor(std::uint64_t n,
                   const std::function<void(std::uint64_t)>& fn);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  // serializes whole ParallelFor jobs
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  void (*job_fn_)(void*, std::uint64_t) = nullptr;
  void* job_ctx_ = nullptr;
  std::uint64_t job_size_ = 0;
  std::uint64_t next_index_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

// The simulated device: memory tracking plus kernel launch.
//
// Timing model: besides executing kernels on host threads, the device keeps
// a *simulated device clock*. Each launch contributes
//     wall_time_of_launch / min(grid_block_count, sm_count)
// — the idealized speedup of a GPU whose `sm_count` SMs run whole blocks
// concurrently. On hosts with few cores (this reproduction runs on a
// single-core container) the wall clock cannot exhibit GPU-class
// parallelism, so the Figure 7/8 benches report the simulated device time
// for device kernels and wall time for the CPU baselines. Comparisons
// *between* device libraries divide out the model, so open-vs-closed parity
// remains a pure measurement.
class Device {
 public:
  // Process-wide device (like the implicit CUDA context).
  static Device& Instance();

  explicit Device(unsigned threads = 0);  // 0 = hardware concurrency
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // --- simulated device clock ---
  void set_sm_count(unsigned sms);
  unsigned sm_count() const;
  void ResetTimers();  // clears clocks AND the launch/block counters
  double simulated_seconds() const;  // device-model time of all launches
  double wall_seconds() const;       // host wall time of all launches
  // Deterministic launch accounting (unlike the clocks above, these are
  // pure functions of the submitted work): kernel launches and grid blocks
  // since construction / the last ResetTimers. The isaac_sim cost-model
  // tuner and the batch-inference benches rank work by these, not by wall
  // time.
  std::uint64_t launch_count() const;
  std::uint64_t blocks_launched() const;

  // --- raw memory API (cudaMalloc-shaped; used by kernel libraries) ---
  void* Malloc(std::size_t bytes);
  void Free(void* ptr);
  void MemcpyHostToDevice(void* dst, const void* src, std::size_t bytes);
  void MemcpyDeviceToHost(void* dst, const void* src, std::size_t bytes);
  std::size_t allocated_bytes() const;
  std::size_t allocation_count() const;

  // --- launch ---
  // Invokes `kernel(ctx)` for every thread of every block. Blocks of the
  // grid run in parallel (one pool task per block); threads within a block
  // run sequentially, which preserves intra-block ordering and keeps probes
  // race-free within a block.
  // The launch context lives on this stack frame and reaches workers as a
  // raw pointer through ParallelFor's primitive form, so a launch performs
  // no heap allocation (a by-reference lambda here would exceed
  // std::function's small-buffer size and allocate on every launch).
  template <typename Kernel>
  void Launch(Dim3 grid, Dim3 block, Kernel&& kernel) {
    CERTKIT_CHECK(grid.Count() > 0 && block.Count() > 0);
    const auto t0 = std::chrono::steady_clock::now();
    using K = typename std::remove_reference<Kernel>::type;
    struct LaunchCtx {
      Dim3 grid;
      Dim3 block;
      K* kernel;
    } lctx{grid, block, &kernel};
    pool_.ParallelFor(
        grid.Count(),
        [](void* p, std::uint64_t b) {
          LaunchCtx& c = *static_cast<LaunchCtx*>(p);
          KernelContext ctx;
          ctx.grid_dim = c.grid;
          ctx.block_dim = c.block;
          ctx.block_idx.x = static_cast<unsigned>(b % c.grid.x);
          ctx.block_idx.y = static_cast<unsigned>((b / c.grid.x) % c.grid.y);
          ctx.block_idx.z = static_cast<unsigned>(
              b / (static_cast<std::uint64_t>(c.grid.x) * c.grid.y));
          for (unsigned tz = 0; tz < c.block.z; ++tz) {
            for (unsigned ty = 0; ty < c.block.y; ++ty) {
              for (unsigned tx = 0; tx < c.block.x; ++tx) {
                ctx.thread_idx = {tx, ty, tz};
                (*c.kernel)(ctx);
              }
            }
          }
        },
        &lctx);
    const auto t1 = std::chrono::steady_clock::now();
    RecordLaunch(std::chrono::duration<double>(t1 - t0).count(),
                 grid.Count());
  }

  ThreadPool& pool() { return pool_; }

 private:
  void RecordLaunch(double wall_seconds, std::uint64_t blocks);

  ThreadPool pool_;
  mutable std::mutex mem_mu_;
  std::unordered_map<void*, std::size_t> allocations_;
  std::size_t allocated_bytes_ = 0;

  mutable std::mutex time_mu_;
  unsigned sm_count_ = 16;
  double simulated_seconds_ = 0.0;
  double wall_seconds_ = 0.0;
  std::uint64_t launch_count_ = 0;
  std::uint64_t blocks_launched_ = 0;
};

// RAII device buffer used by library code.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t count, Device& device = Device::Instance())
      : device_(&device), count_(count) {
    data_ = static_cast<T*>(device_->Malloc(count * sizeof(T)));
  }
  ~DeviceBuffer() { Release(); }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      data_ = other.data_;
      count_ = other.count_;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void CopyFromHost(const T* src, std::size_t count) {
    CERTKIT_CHECK(count <= count_);
    device_->MemcpyHostToDevice(data_, src, count * sizeof(T));
  }
  void CopyToHost(T* dst, std::size_t count) const {
    CERTKIT_CHECK(count <= count_);
    device_->MemcpyDeviceToHost(dst, data_, count * sizeof(T));
  }

 private:
  void Release() {
    if (data_ != nullptr) {
      device_->Free(data_);
      data_ = nullptr;
    }
  }
  Device* device_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace gpusim

#endif  // GPUSIM_GPUSIM_H_
