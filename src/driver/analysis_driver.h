// certkit driver: the parallel single-pass analysis front end.
//
// Every consumer of the toolkit — the CLI, the examples, the benches, the
// corpus pipeline — needs the same artifacts from a set of source files:
// the parsed model, per-function metrics, the traceability report, MISRA
// and style findings, and the per-module unit-design/defensive statistics.
// Before this driver existed each consumer re-read, re-lexed, and re-parsed
// the tree serially and the Assessor re-walked every model; now each file
// is analyzed exactly once, by a worker thread, into an immutable
// FileAnalysis artifact, and the artifacts are merged in stable path order
// so the result is bit-identical regardless of thread count.
//
// Pipeline:  file --worker--> FileAnalysis --merge--> CodebaseAnalysis
//            (parallel map)                (ordered reduce, main thread)
// followed by a second parallel phase over modules (unit design, defensive
// analysis), also merged in module order.
#ifndef CERTKIT_DRIVER_ANALYSIS_DRIVER_H_
#define CERTKIT_DRIVER_ANALYSIS_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "metrics/module_metrics.h"
#include "rules/assessor.h"
#include "rules/misra.h"
#include "rules/style.h"
#include "rules/traceability.h"
#include "rules/unit_design.h"
#include "support/status.h"

namespace certkit::driver {

struct DriverOptions {
  // Worker threads for the per-file and per-module phases; <= 0 selects the
  // hardware concurrency. 1 still runs the work on a (single) worker thread.
  int jobs = 0;
  // File extensions scanned by AnalyzeTree.
  std::vector<std::string> extensions = {".cc", ".cpp", ".cxx", ".h",
                                         ".hpp",  ".cu",  ".cuh"};
  // Comments are retained by default so the traceability pass sees REQ tags.
  bool keep_comments = true;
  // Module assigned to files whose path has no directory component (only
  // reachable via AnalyzeSources; AnalyzeTree derives it from the root).
  std::string default_module = "main";
  rules::MisraOptions misra;
  int style_max_line_length = 80;
  // Directory for the content-hash artifact cache (see artifact_cache.h).
  // Empty disables caching; otherwise files whose bytes, module key, and
  // options fingerprint match a stored artifact are not re-lexed or
  // re-analyzed — the artifact is loaded and merged as if freshly computed.
  std::string cache_dir;
  // Prune cache entries this run did not touch (ArtifactCache::
  // GarbageCollect after the merge). Off by default: a cache shared by
  // several checkouts or option sets would evict each other's entries.
  bool cache_gc = false;
};

// One file's complete analysis — produced by exactly one worker thread,
// immutable afterwards. The parsed SourceFileModel itself is moved into the
// owning metrics::ModuleAnalysis during the merge (module/file indices below
// point at it); everything derived from it lives here.
struct FileAnalysis {
  std::string path;
  std::string module;  // module key (first-level directory)
  std::string text;    // raw source text, exactly as analyzed
  std::vector<metrics::FunctionMetrics> functions;
  rules::TraceReport trace;
  rules::CheckReport misra;
  rules::StyleResult style;
  std::int64_t naming_entities = 0;    // named declarations checked
  std::int64_t naming_violations = 0;  // STYLE-*NAME* findings
  std::int64_t explicit_casts = 0;
  // Location of the parsed model: modules[module_index].files[file_index].
  std::size_t module_index = 0;
  std::size_t file_index = 0;
};

// The merged artifact for a whole source tree. All vectors are in stable
// order — modules by name, files by path — so downstream output never
// depends on scheduling or filesystem iteration order.
struct CodebaseAnalysis {
  std::vector<metrics::ModuleAnalysis> modules;  // sorted by module name
  std::vector<FileAnalysis> files;               // sorted by path
  // files[i] for each module, in path order: files_by_module[m] indexes
  // into `files` for modules[m].
  std::vector<std::vector<std::size_t>> files_by_module;
  std::vector<rules::UnitDesignResult> unit_design;  // one per module
  std::vector<rules::DefensiveResult> defensive;     // one per module
  std::vector<std::string> skipped;  // unreadable/unparseable, sorted

  // Assembles the precomputed inputs the rules::Assessor consumes. The
  // returned struct points at `modules`; this CodebaseAnalysis must outlive
  // any Assessor built from it.
  rules::AssessorInputs MakeAssessorInputs() const;

  // Merges the per-file traceability reports.
  rules::TraceReport MergedTrace() const;

  std::vector<metrics::ModuleMetrics> ModuleMetricsRows() const;
};

// An in-memory source file (used for generated corpora and snippets).
struct SourceInput {
  std::string path;
  std::string content;
};

class AnalysisDriver {
 public:
  explicit AnalysisDriver(const DriverOptions& options = {});

  // Analyzes in-memory sources. Module keys come from the first directory
  // component of each path (options.default_module when there is none).
  // Unparseable inputs are recorded in `skipped`, never fatal.
  support::Result<CodebaseAnalysis> AnalyzeSources(
      std::vector<SourceInput> sources) const;

  // Recursively analyzes every matching file under `root`; files are read
  // by the worker threads. NotFound if the directory does not exist.
  support::Result<CodebaseAnalysis> AnalyzeTree(const std::string& root) const;

  const DriverOptions& options() const { return options_; }

 private:
  DriverOptions options_;
};

}  // namespace certkit::driver

#endif  // CERTKIT_DRIVER_ANALYSIS_DRIVER_H_
