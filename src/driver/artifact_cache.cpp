#include "driver/artifact_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "support/io.h"

namespace certkit::driver {

namespace fs = std::filesystem;

namespace {

constexpr char kFileMagic[4] = {'C', 'K', 'A', '1'};
constexpr char kModuleMagic[4] = {'C', 'K', 'M', '1'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

// ---- binary writer ------------------------------------------------------
//
// Fixed-width fields are memcpy'd in host order; the cache is machine-local
// (entries are keyed, never shipped), so host order is self-consistent.
// Counts and positions use LEB128 varints: the token stream dominates the
// entry size, and its lines/columns/offsets are small.

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void I32(std::int32_t v) { Raw(&v, sizeof v); }
  void I64(std::int64_t v) { Raw(&v, sizeof v); }
  void Var(std::uint64_t v) {
    while (v >= 0x80) {
      U8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    U8(static_cast<std::uint8_t>(v));
  }
  void Str(std::string_view s) {
    Var(s.size());
    out_.append(s);
  }

  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }

  std::string out_;
};

// ---- binary reader (every primitive is bounds-checked) ------------------

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  std::uint8_t U8() {
    if (pos_ + 1 > bytes_.size()) return Fail<std::uint8_t>();
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t U32() { return Fixed<std::uint32_t>(); }
  std::uint64_t U64() { return Fixed<std::uint64_t>(); }
  std::int32_t I32() { return Fixed<std::int32_t>(); }
  std::int64_t I64() { return Fixed<std::int64_t>(); }
  std::uint64_t Var() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) return Fail<std::uint64_t>();
      const std::uint8_t byte = static_cast<std::uint8_t>(bytes_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    return Fail<std::uint64_t>();
  }
  std::string Str() {
    const std::uint64_t n = Var();
    if (!ok_ || n > bytes_.size() - pos_) return Fail<std::string>();
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  // Element-count guard: a corrupt count larger than the remaining bytes
  // could make callers resize to gigabytes before the per-element reads
  // fail.
  std::uint64_t Count() {
    const std::uint64_t n = Var();
    if (!ok_ || n > bytes_.size() - pos_) return Fail<std::uint64_t>();
    return n;
  }

 private:
  template <typename T>
  T Fixed() {
    if (pos_ + sizeof(T) > bytes_.size()) return Fail<T>();
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  T Fail() {
    ok_ = false;
    return T{};
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- token / lexeme encoding -------------------------------------------
//
// Lead byte: token kind in the low bits, the inline-lexeme flag in bit 7.
// Slice lexemes then carry varint (offset, length) into the file text;
// inline lexemes (spliced strings / line comments, rare) carry the bytes.

constexpr std::uint8_t kInlineBit = 0x80;

void WriteLexeme(Writer& w, std::uint8_t lead, std::string_view text,
                 const lex::LexedFile& lexed) {
  if (lexed.buffer) {
    const char* base = lexed.buffer->data();
    const char* data = text.data();
    if (data >= base && data + text.size() <= base + lexed.buffer->size()) {
      w.U8(lead);
      w.Var(static_cast<std::uint64_t>(data - base));
      w.Var(text.size());
      return;
    }
  }
  w.U8(lead | kInlineBit);
  w.Str(text);
}

bool ReadLexeme(Reader& r, std::uint8_t lead, lex::LexedFile& lexed,
                std::string_view* out) {
  if ((lead & kInlineBit) == 0) {
    const std::uint64_t offset = r.Var();
    const std::uint64_t size = r.Var();
    if (!r.ok() || !lexed.buffer || offset > lexed.buffer->size() ||
        size > lexed.buffer->size() - offset) {
      return false;
    }
    *out = std::string_view(lexed.buffer->data() + offset, size);
    return true;
  }
  std::string s = r.Str();
  if (!r.ok()) return false;
  if (!lexed.owned_lexemes) {
    lexed.owned_lexemes = std::make_shared<std::deque<std::string>>();
  }
  lexed.owned_lexemes->push_back(std::move(s));
  *out = lexed.owned_lexemes->back();
  return true;
}

void WriteToken(Writer& w, const lex::Token& t, const lex::LexedFile& lexed) {
  WriteLexeme(w, static_cast<std::uint8_t>(t.kind), t.text, lexed);
  w.Var(static_cast<std::uint32_t>(t.line));
  w.Var(static_cast<std::uint32_t>(t.column));
}

bool ReadToken(Reader& r, lex::LexedFile& lexed, lex::Token* t) {
  const std::uint8_t lead = r.U8();
  const std::uint8_t kind = lead & ~kInlineBit;
  if (!r.ok() || kind > static_cast<std::uint8_t>(lex::TokenKind::kPunct)) {
    return false;
  }
  t->kind = static_cast<lex::TokenKind>(kind);
  if (!ReadLexeme(r, lead, lexed, &t->text)) return false;
  t->line = static_cast<std::int32_t>(static_cast<std::uint32_t>(r.Var()));
  t->column = static_cast<std::int32_t>(static_cast<std::uint32_t>(r.Var()));
  return r.ok();
}

// ---- report payloads ----------------------------------------------------

void WriteCheckReport(Writer& w, const rules::CheckReport& rep) {
  w.Str(rep.checker);
  w.Var(rep.findings.size());
  for (const auto& f : rep.findings) {
    w.Str(f.rule_id);
    w.U8(static_cast<std::uint8_t>(f.severity));
    w.Str(f.file);
    w.I32(f.line);
    w.Str(f.message);
  }
  w.I64(rep.entities_checked);
}

bool ReadCheckReport(Reader& r, rules::CheckReport* rep) {
  rep->checker = r.Str();
  const std::uint64_t n = r.Count();
  if (!r.ok()) return false;
  rep->findings.resize(n);
  for (auto& f : rep->findings) {
    f.rule_id = r.Str();
    const std::uint8_t sev = r.U8();
    if (sev > static_cast<std::uint8_t>(rules::Severity::kRequired)) {
      return false;
    }
    f.severity = static_cast<rules::Severity>(sev);
    f.file = r.Str();
    f.line = r.I32();
    f.message = r.Str();
  }
  rep->entities_checked = r.I64();
  return r.ok();
}

void WriteTraceReport(Writer& w, const rules::TraceReport& t) {
  w.Var(t.links.size());
  for (const auto& l : t.links) {
    w.Str(l.requirement);
    w.Str(l.file);
    w.I32(l.comment_line);
    w.Str(l.function);
  }
  w.Var(t.untraced_functions.size());
  for (const auto& f : t.untraced_functions) w.Str(f);
  w.I64(t.functions_total);
}

bool ReadTraceReport(Reader& r, rules::TraceReport* t) {
  std::uint64_t n = r.Count();
  if (!r.ok()) return false;
  t->links.resize(n);
  for (auto& l : t->links) {
    l.requirement = r.Str();
    l.file = r.Str();
    l.comment_line = r.I32();
    l.function = r.Str();
  }
  n = r.Count();
  if (!r.ok()) return false;
  t->untraced_functions.resize(n);
  for (auto& f : t->untraced_functions) f = r.Str();
  t->functions_total = r.I64();
  return r.ok();
}

void WriteFunctionMetrics(Writer& w, const metrics::FunctionMetrics& m) {
  w.Str(m.name);
  w.Str(m.qualified_name);
  w.I32(m.start_line);
  w.I32(m.end_line);
  w.I32(m.cyclomatic_complexity);
  w.I32(m.nloc);
  w.I32(m.token_count);
  w.I32(m.param_count);
  w.I32(m.max_nesting_depth);
  w.I32(m.return_count);
  w.I32(m.goto_count);
  w.U8(m.is_recursive_direct ? 1 : 0);
  w.Var(m.callees.size());
  for (const auto& c : m.callees) w.Str(c);
}

bool ReadFunctionMetrics(Reader& r, metrics::FunctionMetrics* m) {
  m->name = r.Str();
  m->qualified_name = r.Str();
  m->start_line = r.I32();
  m->end_line = r.I32();
  m->cyclomatic_complexity = r.I32();
  m->nloc = r.I32();
  m->token_count = r.I32();
  m->param_count = r.I32();
  m->max_nesting_depth = r.I32();
  m->return_count = r.I32();
  m->goto_count = r.I32();
  m->is_recursive_direct = r.U8() != 0;
  const std::uint64_t n = r.Count();
  if (!r.ok()) return false;
  m->callees.resize(n);
  for (auto& c : m->callees) c = r.Str();
  return r.ok();
}

// ---- model payload ------------------------------------------------------

void WriteLexedFile(Writer& w, const lex::LexedFile& lexed) {
  w.Str(lexed.path);
  w.Var(lexed.tokens.size());
  for (const auto& t : lexed.tokens) WriteToken(w, t, lexed);
  w.Var(lexed.directives.size());
  for (const auto& d : lexed.directives) {
    w.Str(d.name);
    w.I32(d.line);
    w.Var(d.tokens.size());
    for (const auto& t : d.tokens) WriteToken(w, t, lexed);
  }
  w.Var(lexed.comments.size());
  for (const auto& c : lexed.comments) {
    WriteLexeme(w, 0, c.text, lexed);
    w.I32(c.line);
  }
  w.I64(lexed.lines.total);
  w.I64(lexed.lines.blank);
  w.I64(lexed.lines.comment_only);
  w.I64(lexed.lines.code);
  w.I64(lexed.lines.preprocessor);
  w.I64(lexed.comment_count);
}

// `lexed->buffer` must already hold the file text before the call.
bool ReadLexedFile(Reader& r, lex::LexedFile* lexed) {
  lexed->path = r.Str();
  std::uint64_t n = r.Count();
  if (!r.ok()) return false;
  lexed->tokens.resize(n);
  for (auto& t : lexed->tokens) {
    if (!ReadToken(r, *lexed, &t)) return false;
  }
  n = r.Count();
  if (!r.ok()) return false;
  lexed->directives.resize(n);
  for (auto& d : lexed->directives) {
    d.name = r.Str();
    d.line = r.I32();
    const std::uint64_t dn = r.Count();
    if (!r.ok()) return false;
    d.tokens.resize(dn);
    for (auto& t : d.tokens) {
      if (!ReadToken(r, *lexed, &t)) return false;
    }
  }
  n = r.Count();
  if (!r.ok()) return false;
  lexed->comments.resize(n);
  for (auto& c : lexed->comments) {
    const std::uint8_t lead = r.U8();
    if (!r.ok() || (lead & ~kInlineBit) != 0) return false;
    if (!ReadLexeme(r, lead, *lexed, &c.text)) return false;
    c.line = r.I32();
  }
  lexed->lines.total = r.I64();
  lexed->lines.blank = r.I64();
  lexed->lines.comment_only = r.I64();
  lexed->lines.code = r.I64();
  lexed->lines.preprocessor = r.I64();
  lexed->comment_count = r.I64();
  return r.ok();
}

void WriteModel(Writer& w, const ast::SourceFileModel& m) {
  w.Str(m.path);
  WriteLexedFile(w, m.lexed);
  w.Var(m.functions.size());
  for (const auto& fn : m.functions) {
    w.Str(fn.name);
    w.Str(fn.qualified_name);
    w.Var(fn.params.size());
    for (const auto& p : fn.params) {
      w.Str(p.type_text);
      w.Str(p.name);
    }
    w.I32(fn.start_line);
    w.I32(fn.end_line);
    w.Var(fn.sig_begin);
    w.Var(fn.lparen);
    w.Var(fn.body_begin);
    w.Var(fn.body_end);
    w.U8(static_cast<std::uint8_t>(
        (fn.returns_void ? 1 : 0) | (fn.is_method ? 2 : 0) |
        (fn.is_cuda_kernel ? 4 : 0) | (fn.is_cuda_device ? 8 : 0) |
        (fn.is_static ? 16 : 0)));
  }
  w.Var(m.types.size());
  for (const auto& t : m.types) {
    w.U8(static_cast<std::uint8_t>(t.kind));
    w.Str(t.name);
    w.Str(t.qualified_name);
    w.I32(t.line);
    w.I32(t.method_count);
    w.I32(t.field_count);
    w.I32(t.public_method_count);
  }
  w.Var(m.globals.size());
  for (const auto& g : m.globals) {
    w.Str(g.name);
    w.Str(g.qualified_name);
    w.I32(g.line);
    w.U8(static_cast<std::uint8_t>(
        (g.is_static ? 1 : 0) | (g.is_const ? 2 : 0) |
        (g.is_extern_decl ? 4 : 0) | (g.has_initializer ? 8 : 0)));
  }
  w.Var(m.casts.size());
  for (const auto& c : m.casts) {
    w.U8(static_cast<std::uint8_t>(c.kind));
    w.I32(c.line);
    w.Str(c.target_text);
  }
  w.Var(m.macros.size());
  for (const auto& mm : m.macros) {
    w.Str(mm.name);
    w.I32(mm.line);
    w.U8(mm.function_like ? 1 : 0);
  }
  w.Var(m.includes.size());
  for (const auto& inc : m.includes) w.Str(inc);
  w.I32(m.using_namespace_count);
  w.I32(m.typedef_count);
}

bool ReadModel(Reader& r, ast::SourceFileModel* m) {
  m->path = r.Str();
  if (!ReadLexedFile(r, &m->lexed)) return false;
  std::uint64_t n = r.Count();
  if (!r.ok()) return false;
  m->functions.resize(n);
  for (auto& fn : m->functions) {
    fn.name = r.Str();
    fn.qualified_name = r.Str();
    const std::uint64_t pn = r.Count();
    if (!r.ok()) return false;
    fn.params.resize(pn);
    for (auto& p : fn.params) {
      p.type_text = r.Str();
      p.name = r.Str();
    }
    fn.start_line = r.I32();
    fn.end_line = r.I32();
    fn.sig_begin = r.Var();
    fn.lparen = r.Var();
    fn.body_begin = r.Var();
    fn.body_end = r.Var();
    const std::uint8_t flags = r.U8();
    fn.returns_void = (flags & 1) != 0;
    fn.is_method = (flags & 2) != 0;
    fn.is_cuda_kernel = (flags & 4) != 0;
    fn.is_cuda_device = (flags & 8) != 0;
    fn.is_static = (flags & 16) != 0;
    // Token ranges must stay inside the stream the rules walk.
    if (r.ok() && !m->lexed.tokens.empty() &&
        (fn.body_end >= m->lexed.tokens.size() ||
         fn.body_begin > fn.body_end || fn.sig_begin > fn.body_begin)) {
      return false;
    }
  }
  n = r.Count();
  if (!r.ok()) return false;
  m->types.resize(n);
  for (auto& t : m->types) {
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(ast::TypeKind::kEnum)) return false;
    t.kind = static_cast<ast::TypeKind>(kind);
    t.name = r.Str();
    t.qualified_name = r.Str();
    t.line = r.I32();
    t.method_count = r.I32();
    t.field_count = r.I32();
    t.public_method_count = r.I32();
  }
  n = r.Count();
  if (!r.ok()) return false;
  m->globals.resize(n);
  for (auto& g : m->globals) {
    g.name = r.Str();
    g.qualified_name = r.Str();
    g.line = r.I32();
    const std::uint8_t flags = r.U8();
    g.is_static = (flags & 1) != 0;
    g.is_const = (flags & 2) != 0;
    g.is_extern_decl = (flags & 4) != 0;
    g.has_initializer = (flags & 8) != 0;
  }
  n = r.Count();
  if (!r.ok()) return false;
  m->casts.resize(n);
  for (auto& c : m->casts) {
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(ast::CastKind::kFunctional)) {
      return false;
    }
    c.kind = static_cast<ast::CastKind>(kind);
    c.line = r.I32();
    c.target_text = r.Str();
  }
  n = r.Count();
  if (!r.ok()) return false;
  m->macros.resize(n);
  for (auto& mm : m->macros) {
    mm.name = r.Str();
    mm.line = r.I32();
    mm.function_like = r.U8() != 0;
  }
  n = r.Count();
  if (!r.ok()) return false;
  m->includes.resize(n);
  for (auto& inc : m->includes) inc = r.Str();
  m->using_namespace_count = r.I32();
  m->typedef_count = r.I32();
  return r.ok();
}

// ---- module-phase payload ----------------------------------------------

void WriteUnitDesign(Writer& w, const rules::UnitDesignResult& ud) {
  const rules::UnitDesignStats& s = ud.stats;
  w.Str(s.module);
  w.I64(s.functions_total);
  w.I64(s.functions_multi_exit);
  w.I64(s.dynamic_alloc_sites);
  w.I64(s.uninitialized_locals);
  w.I64(s.shadowing_decls);
  w.I64(s.mutable_globals);
  w.I64(s.const_globals);
  w.I64(s.pointer_params);
  w.I64(s.pointer_derefs);
  w.I64(s.explicit_casts);
  w.I64(s.global_write_sites);
  w.I64(s.goto_statements);
  w.I64(s.recursive_functions_direct);
  w.I64(s.recursion_cycles_indirect);
  WriteCheckReport(w, ud.report);
}

bool ReadUnitDesign(Reader& r, rules::UnitDesignResult* ud) {
  rules::UnitDesignStats& s = ud->stats;
  s.module = r.Str();
  s.functions_total = r.I64();
  s.functions_multi_exit = r.I64();
  s.dynamic_alloc_sites = r.I64();
  s.uninitialized_locals = r.I64();
  s.shadowing_decls = r.I64();
  s.mutable_globals = r.I64();
  s.const_globals = r.I64();
  s.pointer_params = r.I64();
  s.pointer_derefs = r.I64();
  s.explicit_casts = r.I64();
  s.global_write_sites = r.I64();
  s.goto_statements = r.I64();
  s.recursive_functions_direct = r.I64();
  s.recursion_cycles_indirect = r.I64();
  return r.ok() && ReadCheckReport(r, &ud->report);
}

void WriteDefensive(Writer& w, const rules::DefensiveResult& d) {
  const rules::DefensiveStats& s = d.stats;
  w.I64(s.functions_with_params);
  w.I64(s.functions_validating_inputs);
  w.I64(s.call_sites_checked);
  w.I64(s.discarded_results);
  w.I64(s.assertion_sites);
  WriteCheckReport(w, d.report);
}

bool ReadDefensive(Reader& r, rules::DefensiveResult* d) {
  rules::DefensiveStats& s = d->stats;
  s.functions_with_params = r.I64();
  s.functions_validating_inputs = r.I64();
  s.call_sites_checked = r.I64();
  s.discarded_results = r.I64();
  s.assertion_sites = r.I64();
  return r.ok() && ReadCheckReport(r, &d->report);
}

std::string HexU64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

void WriteHeader(Writer& w, const char (&magic)[4], std::uint64_t fingerprint,
                 std::uint64_t key) {
  for (char c : magic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(kArtifactSchemaVersion);
  w.U64(fingerprint);
  w.U64(key);
}

// Verifies magic/schema/fingerprint/key; true iff the payload may be read.
bool CheckHeader(Reader& r, const char (&magic)[4], std::uint64_t fingerprint,
                 std::uint64_t key) {
  char got[4];
  for (char& c : got) c = static_cast<char>(r.U8());
  return r.ok() && std::string_view(got, 4) == std::string_view(magic, 4) &&
         r.U32() == kArtifactSchemaVersion && r.U64() == fingerprint &&
         r.U64() == key && r.ok();
}

}  // namespace

std::uint64_t HashBytes(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t OptionsFingerprint(const DriverOptions& options) {
  Writer w;
  w.U32(kArtifactSchemaVersion);
  w.U8(options.keep_comments ? 1 : 0);
  w.U8(options.misra.include_dialect_analogues ? 1 : 0);
  w.U8(options.misra.check_unused_params ? 1 : 0);
  w.I32(options.style_max_line_length);
  const std::string bytes = w.Take();
  return HashBytes(bytes);
}

std::string SerializeArtifact(const FileAnalysis& analysis,
                              const ast::SourceFileModel& model) {
  Writer w;
  w.Str(analysis.path);
  w.Str(analysis.module);
  w.U64(HashBytes(analysis.text));
  w.Var(analysis.text.size());
  w.Var(analysis.functions.size());
  for (const auto& m : analysis.functions) WriteFunctionMetrics(w, m);
  WriteTraceReport(w, analysis.trace);
  WriteCheckReport(w, analysis.misra);
  w.I64(analysis.style.stats.lines_checked);
  w.I64(analysis.style.stats.violations);
  WriteCheckReport(w, analysis.style.report);
  w.I64(analysis.naming_entities);
  w.I64(analysis.naming_violations);
  w.I64(analysis.explicit_casts);
  WriteModel(w, model);
  return w.Take();
}

bool DeserializeArtifact(std::string_view bytes, std::string_view content,
                         FileAnalysis* analysis,
                         ast::SourceFileModel* model) {
  Reader r(bytes);
  analysis->path = r.Str();
  analysis->module = r.Str();
  r.U64();  // text hash: covered by the entry header / DigestAnalysis
  const std::uint64_t text_size = r.Var();
  if (!r.ok() || text_size != content.size()) return false;
  analysis->text = std::string(content);
  const std::uint64_t n = r.Count();
  if (!r.ok()) return false;
  analysis->functions.resize(n);
  for (auto& m : analysis->functions) {
    if (!ReadFunctionMetrics(r, &m)) return false;
  }
  if (!ReadTraceReport(r, &analysis->trace)) return false;
  if (!ReadCheckReport(r, &analysis->misra)) return false;
  analysis->style.stats.lines_checked = r.I64();
  analysis->style.stats.violations = r.I64();
  if (!ReadCheckReport(r, &analysis->style.report)) return false;
  analysis->naming_entities = r.I64();
  analysis->naming_violations = r.I64();
  analysis->explicit_casts = r.I64();
  // Rebuild the zero-copy backing store before the token views are read.
  model->lexed.buffer = std::make_shared<const std::string>(analysis->text);
  if (!ReadModel(r, model)) return false;
  analysis->module_index = 0;
  analysis->file_index = 0;
  return r.ok() && r.AtEnd();
}

std::uint64_t DigestAnalysis(const CodebaseAnalysis& analysis) {
  std::uint64_t h = HashBytes("certkit-analysis-digest");
  for (const auto& fa : analysis.files) {
    const ast::SourceFileModel& model =
        analysis.modules[fa.module_index].files[fa.file_index];
    h = HashBytes(SerializeArtifact(fa, model), h);
  }
  Writer w;
  for (const auto& ud : analysis.unit_design) WriteUnitDesign(w, ud);
  for (const auto& d : analysis.defensive) WriteDefensive(w, d);
  for (const auto& s : analysis.skipped) w.Str(s);
  return HashBytes(w.Take(), h);
}

ArtifactCache::ArtifactCache(std::string dir,
                             std::uint64_t options_fingerprint)
    : dir_(std::move(dir)), options_fingerprint_(options_fingerprint) {}

std::string ArtifactCache::EntryFile(std::uint64_t key,
                                     const char* extension) const {
  return (fs::path(dir_) / (HexU64(key) + extension)).string();
}

std::string ArtifactCache::EntryPath(const std::string& path,
                                     const std::string& module,
                                     const std::string& content) const {
  return EntryPathForHash(path, module, HashBytes(content));
}

std::string ArtifactCache::EntryPathForHash(const std::string& path,
                                            const std::string& module,
                                            std::uint64_t content_hash) const {
  Writer w;
  w.U64(options_fingerprint_);
  w.Str(path);
  w.Str(module);
  w.U64(content_hash);
  return EntryFile(HashBytes(w.Take()), ".ckart");
}

std::string ArtifactCache::ModulePhaseEntryPath(std::uint64_t key) const {
  return EntryFile(key, ".ckmod");
}

int ArtifactCache::GarbageCollect(const std::vector<std::string>& live) const {
  if (!enabled()) return 0;
  // Compare by entry file name: the key hash is the name, and matching on
  // names keeps the check independent of how the caller spelled the cache
  // directory (relative vs absolute).
  std::set<std::string> keep;
  for (const std::string& path : live) {
    keep.insert(fs::path(path).filename().string());
  }
  int removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::string ext = entry.path().extension().string();
    if (ext != ".ckart" && ext != ".ckmod") continue;  // not ours
    if (keep.count(name) != 0) continue;
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

bool ArtifactCache::Load(const std::string& path, const std::string& module,
                         const std::string& content, FileAnalysis* analysis,
                         ast::SourceFileModel* model) const {
  return Load(path, module, content, HashBytes(content), analysis, model);
}

bool ArtifactCache::Load(const std::string& path, const std::string& module,
                         const std::string& content,
                         std::uint64_t content_hash, FileAnalysis* analysis,
                         ast::SourceFileModel* model) const {
  if (!enabled()) return false;
  Writer w;
  w.U64(options_fingerprint_);
  w.Str(path);
  w.Str(module);
  w.U64(content_hash);
  auto bytes = support::ReadFile(EntryFile(HashBytes(w.Take()), ".ckart"));
  if (!bytes.ok()) return false;
  const std::string& blob = bytes.value();
  Reader header(blob);
  if (!CheckHeader(header, kFileMagic, options_fingerprint_, content_hash)) {
    return false;
  }
  if (!DeserializeArtifact(std::string_view(blob).substr(kHeaderSize),
                           content, analysis, model)) {
    return false;
  }
  // The entry name hashes (path, module, content); verify the payload
  // agrees so a hash collision can never smuggle in another file's result.
  return analysis->path == path && analysis->module == module;
}

void ArtifactCache::StoreBlob(const std::string& entry,
                              std::string blob) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best-effort
  // Unique temp name per writer so concurrent workers (or processes) never
  // interleave; rename is atomic, so readers only ever see whole entries.
  std::ostringstream tmp_name;
  tmp_name << entry << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = tmp_name.str();
  if (!support::WriteFile(tmp, blob).ok()) return;
  fs::rename(tmp, entry, ec);
  if (ec) fs::remove(tmp, ec);
}

void ArtifactCache::Store(const std::string& content,
                          const FileAnalysis& analysis,
                          const ast::SourceFileModel& model) const {
  if (!enabled()) return;
  Writer w;
  WriteHeader(w, kFileMagic, options_fingerprint_, HashBytes(content));
  std::string blob = w.Take();
  blob += SerializeArtifact(analysis, model);
  StoreBlob(EntryPath(analysis.path, analysis.module, content),
            std::move(blob));
}

std::uint64_t ArtifactCache::ModulePhaseKey(
    const std::string& module,
    const std::vector<std::pair<std::string, std::uint64_t>>& files) const {
  Writer w;
  w.U64(options_fingerprint_);
  w.Str(module);
  w.Var(files.size());
  for (const auto& [path, content_hash] : files) {
    w.Str(path);
    w.U64(content_hash);
  }
  return HashBytes(w.Take());
}

bool ArtifactCache::LoadModulePhase(std::uint64_t key,
                                    rules::UnitDesignResult* unit_design,
                                    rules::DefensiveResult* defensive) const {
  if (!enabled()) return false;
  auto bytes = support::ReadFile(EntryFile(key, ".ckmod"));
  if (!bytes.ok()) return false;
  const std::string& blob = bytes.value();
  Reader r(blob);
  if (!CheckHeader(r, kModuleMagic, options_fingerprint_, key)) return false;
  return ReadUnitDesign(r, unit_design) && ReadDefensive(r, defensive) &&
         r.AtEnd();
}

void ArtifactCache::StoreModulePhase(
    std::uint64_t key, const rules::UnitDesignResult& unit_design,
    const rules::DefensiveResult& defensive) const {
  if (!enabled()) return;
  Writer w;
  WriteHeader(w, kModuleMagic, options_fingerprint_, key);
  WriteUnitDesign(w, unit_design);
  WriteDefensive(w, defensive);
  StoreBlob(EntryFile(key, ".ckmod"), w.Take());
}

}  // namespace certkit::driver
