// certkit driver: loads a C/C++/CUDA source tree from disk into analyzable
// form — a thin compatibility wrapper over AnalysisDriver for callers that
// only want modules, raw text, and traces.
#ifndef CERTKIT_DRIVER_CODEBASE_LOADER_H_
#define CERTKIT_DRIVER_CODEBASE_LOADER_H_

#include <string>
#include <vector>

#include "driver/analysis_driver.h"
#include "metrics/module_metrics.h"
#include "rules/assessor.h"
#include "rules/traceability.h"
#include "support/status.h"

namespace certkit::driver {

struct Codebase {
  std::vector<rules::RawSource> raw_sources;  // per file, path order
  std::vector<rules::TraceReport> traces;     // per file, comments retained
  std::vector<std::string> skipped;  // unreadable/unparseable paths

  // The full artifact the Codebase view was extracted from.
  CodebaseAnalysis analysis;

  // One module per first-level subdirectory of the root (files directly at
  // the root form a module named after the root itself).
  const std::vector<metrics::ModuleAnalysis>& modules() const {
    return analysis.modules;
  }
};

struct LoadOptions {
  std::vector<std::string> extensions = {".cc", ".cpp", ".cxx", ".h",
                                         ".hpp",  ".cu",  ".cuh"};
  int jobs = 0;  // <= 0: hardware concurrency
};

// Recursively loads and analyzes every matching file under `root` via
// AnalysisDriver. NotFound if the directory does not exist; files that fail
// to read or parse are recorded in `skipped`, not fatal.
support::Result<Codebase> LoadCodebase(const std::string& root,
                                       const LoadOptions& options = {});

}  // namespace certkit::driver

#endif  // CERTKIT_DRIVER_CODEBASE_LOADER_H_
