#include "driver/analysis_driver.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <utility>

#include "driver/artifact_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/defensive.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace certkit::driver {

namespace fs = std::filesystem;

namespace {

bool IsHeaderPath(const std::string& path) {
  return support::EndsWith(path, ".h") || support::EndsWith(path, ".hpp") ||
         support::EndsWith(path, ".cuh");
}

// What one worker produces for one file. The model travels separately from
// the public FileAnalysis because it is moved into the owning ModuleAnalysis
// at merge time.
struct WorkerResult {
  bool ok = false;
  FileAnalysis analysis;
  ast::SourceFileModel model;
  // FNV-1a/64 of the file bytes — computed once per file when the artifact
  // cache is enabled, reused for the per-module phase key.
  std::uint64_t content_hash = 0;
  // Spans this file's analysis fired (tracing enabled only) — captured on
  // the worker thread, merged into the TraceRecorder in stable path order.
  std::vector<obs::SpanEvent> spans;
};

// The per-file map step: parse + every per-file pass, computed exactly once
// per (content, options) thanks to the artifact cache — a hit skips the lex,
// parse, and every rule pass, returning the stored result bit-identically.
WorkerResult AnalyzeOneFile(std::string path, std::string module,
                            std::string text, const DriverOptions& options,
                            const ArtifactCache& cache) {
  WorkerResult out;
  if (cache.enabled()) {
    out.content_hash = HashBytes(text);
    if (cache.Load(path, module, text, out.content_hash, &out.analysis,
                   &out.model)) {
      out.ok = true;
      obs::MetricsRegistry::Instance().GetCounter("driver/cache_hits").Add();
      return out;
    }
  }
  std::optional<obs::SpanCapture> trace_capture;
  if (obs::TracingEnabled()) trace_capture.emplace();
  {
    obs::Span file_span("analyze_file", "driver");
    ast::ParseOptions parse_opts;
    parse_opts.lex_options.keep_comments = options.keep_comments;
    auto model = [&] {
      obs::Span span("parse", "driver");
      return ast::ParseSource(path, text, parse_opts);
    }();
    if (!model.ok()) {
      out.analysis.path = std::move(path);
      obs::MetricsRegistry::Instance()
          .GetCounter("driver/files_skipped")
          .Add();
    } else {
      out.model = std::move(model).value();

      FileAnalysis& fa = out.analysis;
      fa.path = std::move(path);
      fa.module = std::move(module);
      {
        obs::Span span("metrics", "driver");
        fa.functions = metrics::ComputeFileFunctionMetrics(out.model);
      }
      {
        obs::Span span("traceability", "driver");
        fa.trace = rules::AnalyzeTraceability(out.model);
      }
      {
        obs::Span span("misra", "driver");
        fa.misra = rules::CheckMisra(out.model, options.misra);
      }
      {
        obs::Span span("style", "driver");
        rules::StyleOptions style_opts;
        style_opts.max_line_length = options.style_max_line_length;
        style_opts.is_header = IsHeaderPath(fa.path);
        fa.style = rules::CheckStyle(out.model, text, style_opts);
      }
      for (const auto& f : fa.style.report.findings) {
        if (support::StartsWith(f.rule_id, "STYLE-") &&
            support::Contains(f.rule_id, "NAME")) {
          ++fa.naming_violations;
        }
      }
      fa.naming_entities = static_cast<std::int64_t>(
          out.model.types.size() + out.model.functions.size() +
          out.model.globals.size() + out.model.macros.size());
      fa.explicit_casts = static_cast<std::int64_t>(out.model.casts.size());
      fa.text = std::move(text);
      out.ok = true;
      obs::MetricsRegistry::Instance()
          .GetCounter("driver/files_analyzed")
          .Add();
      if (cache.enabled()) {
        obs::MetricsRegistry::Instance()
            .GetCounter("driver/cache_misses")
            .Add();
        cache.Store(fa.text, out.analysis, out.model);
      }
    }
  }
  if (trace_capture.has_value()) out.spans = trace_capture->Take();
  return out;
}

// The ordered reduce: folds per-file worker results (already in stable path
// order) into the merged artifact, then runs the per-module phase on the
// pool. Deterministic for any pool size: every output slot is indexed.
CodebaseAnalysis MergeResults(std::vector<WorkerResult> results,
                              support::ThreadPool& pool,
                              const ArtifactCache& cache, bool cache_gc) {
  CodebaseAnalysis out;

  // Results arrive in sorted path order, so registering each file's span
  // track here (serially, before grouping) keeps the trace byte-identical
  // for any --jobs count.
  if (obs::TracingEnabled()) {
    for (WorkerResult& r : results) {
      if (!r.spans.empty()) {
        obs::TraceRecorder::Instance().AddTrack(r.analysis.path,
                                                std::move(r.spans));
      }
    }
  }

  // Group by module key; std::map gives stable name order.
  std::map<std::string, std::vector<std::size_t>> by_module;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      out.skipped.push_back(results[i].analysis.path);
      continue;
    }
    by_module[results[i].analysis.module].push_back(i);
  }

  // Per-module (path, content-hash) lists, in merge order — the key inputs
  // of the cached per-module phase (cache enabled only).
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>>
      module_file_hashes;
  for (auto& [module, indices] : by_module) {
    const std::size_t module_index = out.modules.size();
    std::vector<ast::SourceFileModel> models;
    std::vector<std::vector<metrics::FunctionMetrics>> file_functions;
    std::vector<std::size_t> file_ids;
    std::vector<std::pair<std::string, std::uint64_t>> file_hashes;
    models.reserve(indices.size());
    file_functions.reserve(indices.size());
    for (std::size_t file_index = 0; file_index < indices.size();
         ++file_index) {
      WorkerResult& r = results[indices[file_index]];
      r.analysis.module_index = module_index;
      r.analysis.file_index = file_index;
      models.push_back(std::move(r.model));
      // ModuleAnalysis::functions wants its own copy (it outlives reshuffles
      // of `files`); FileAnalysis keeps the per-file view.
      file_functions.push_back(r.analysis.functions);
      file_ids.push_back(out.files.size());
      if (cache.enabled()) {
        file_hashes.emplace_back(r.analysis.path, r.content_hash);
      }
      out.files.push_back(std::move(r.analysis));
    }
    out.modules.push_back(metrics::MergeModule(module, std::move(models),
                                               std::move(file_functions)));
    out.files_by_module.push_back(std::move(file_ids));
    module_file_hashes.push_back(std::move(file_hashes));
  }

  // Per-module phase: unit design and defensive analysis, in parallel,
  // stored by module index (stable regardless of scheduling). With the
  // artifact cache enabled the phase result itself is cached, keyed by the
  // member files' content hashes — on a warm run nothing walks the tokens.
  out.unit_design.resize(out.modules.size());
  out.defensive.resize(out.modules.size());
  std::vector<std::uint64_t> module_keys(out.modules.size(), 0);
  pool.ParallelFor(out.modules.size(), [&](std::size_t m) {
    std::uint64_t key = 0;
    if (cache.enabled()) {
      key = cache.ModulePhaseKey(out.modules[m].name, module_file_hashes[m]);
      module_keys[m] = key;
      if (cache.LoadModulePhase(key, &out.unit_design[m],
                                &out.defensive[m])) {
        return;
      }
    }
    out.unit_design[m] = rules::AnalyzeUnitDesign(out.modules[m]);
    out.defensive[m] = rules::AnalyzeDefensive(out.modules[m].files);
    if (cache.enabled()) {
      cache.StoreModulePhase(key, out.unit_design[m], out.defensive[m]);
    }
  });

  // Optional cache pruning: this run's entries are exactly the live set —
  // every (path, module, hash) that merged plus every module-phase key —
  // so anything else in the directory is an orphan from an earlier state
  // of the tree.
  if (cache.enabled() && cache_gc) {
    std::vector<std::string> live;
    for (std::size_t m = 0; m < out.modules.size(); ++m) {
      for (const auto& [path, hash] : module_file_hashes[m]) {
        live.push_back(
            cache.EntryPathForHash(path, out.modules[m].name, hash));
      }
      live.push_back(cache.ModulePhaseEntryPath(module_keys[m]));
    }
    const int removed = cache.GarbageCollect(live);
    obs::MetricsRegistry::Instance()
        .GetCounter("driver/cache_gc_removed")
        .Add(removed);
  }
  return out;
}

}  // namespace

rules::AssessorInputs CodebaseAnalysis::MakeAssessorInputs() const {
  rules::AssessorInputs in;
  in.modules = &modules;
  in.unit_design = unit_design;
  for (std::size_t m = 0; m < modules.size(); ++m) {
    in.total_functions += modules[m].metrics.function_count;
    in.total_nloc += modules[m].metrics.nloc;
    for (std::size_t id : files_by_module[m]) {
      const FileAnalysis& fa = files[id];
      in.total_casts += fa.explicit_casts;
      in.misra_reports.push_back(fa.misra);
      in.style_total.lines_checked += fa.style.stats.lines_checked;
      in.style_total.violations += fa.style.stats.violations;
      in.naming_total.lines_checked += fa.naming_entities;
      in.naming_total.violations += fa.naming_violations;
    }
  }
  for (const auto& dr : defensive) {
    rules::MergeDefensive(dr, &in.defensive);
  }
  return in;
}

rules::TraceReport CodebaseAnalysis::MergedTrace() const {
  std::vector<rules::TraceReport> reports;
  reports.reserve(files.size());
  for (const auto& fa : files) reports.push_back(fa.trace);
  return rules::MergeTraceReports(reports);
}

std::vector<metrics::ModuleMetrics> CodebaseAnalysis::ModuleMetricsRows()
    const {
  std::vector<metrics::ModuleMetrics> rows;
  rows.reserve(modules.size());
  for (const auto& m : modules) rows.push_back(m.metrics);
  return rows;
}

AnalysisDriver::AnalysisDriver(const DriverOptions& options)
    : options_(options) {}

support::Result<CodebaseAnalysis> AnalysisDriver::AnalyzeSources(
    std::vector<SourceInput> sources) const {
  std::sort(sources.begin(), sources.end(),
            [](const SourceInput& a, const SourceInput& b) {
              return a.path < b.path;
            });
  support::ThreadPool pool(support::ThreadPool::ResolveJobs(options_.jobs));
  const ArtifactCache cache(options_.cache_dir, OptionsFingerprint(options_));
  std::vector<WorkerResult> results(sources.size());
  pool.ParallelFor(sources.size(), [&](std::size_t i) {
    const fs::path p(sources[i].path);
    const std::string module = p.has_parent_path()
                                   ? p.begin()->string()
                                   : options_.default_module;
    results[i] = AnalyzeOneFile(sources[i].path, module,
                                std::move(sources[i].content), options_,
                                cache);
  });
  return MergeResults(std::move(results), pool, cache, options_.cache_gc);
}

support::Result<CodebaseAnalysis> AnalysisDriver::AnalyzeTree(
    const std::string& root) const {
  auto files = support::ListFiles(root, options_.extensions);
  if (!files.ok()) return files.status();
  const std::vector<std::string>& paths = files.value();

  support::ThreadPool pool(support::ThreadPool::ResolveJobs(options_.jobs));
  const ArtifactCache cache(options_.cache_dir, OptionsFingerprint(options_));
  std::vector<WorkerResult> results(paths.size());
  pool.ParallelFor(paths.size(), [&](std::size_t i) {
    const fs::path rel = fs::relative(paths[i], root);
    const std::string module = rel.has_parent_path()
                                   ? rel.begin()->string()
                                   : fs::path(root).filename().string();
    auto content = support::ReadFile(paths[i]);
    if (!content.ok()) {
      results[i].analysis.path = paths[i];  // ok == false -> skipped
      return;
    }
    results[i] = AnalyzeOneFile(paths[i], module,
                                std::move(content).value(), options_,
                                cache);
  });
  return MergeResults(std::move(results), pool, cache, options_.cache_gc);
}

}  // namespace certkit::driver
