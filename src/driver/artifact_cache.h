// certkit driver: content-hash artifact cache for per-file analysis.
//
// Every FileAnalysis is a pure function of (path, module, file bytes,
// analysis options). The cache exploits that: an FNV-1a/64 digest over those
// four inputs keys a serialized artifact on disk, so a re-run only pays for
// files whose bytes (or options) changed — the merge layer cannot tell a
// cached artifact from a freshly computed one, keeping the CodebaseAnalysis
// bit-identical for any cached/fresh mix and any --jobs count.
//
// Entry format (binary, little-endian, fixed-width fields memcpy'd and
// counts/positions LEB128-varint encoded — warm runs are IO + decode bound,
// so the token stream is kept compact):
//   magic "CKA1" | u32 schema | u64 options_fingerprint | u64 content_hash
//   | FileAnalysis payload | SourceFileModel payload
// Tokens are stored as (kind+tag byte, line, column, source-offset, length)
// views into the file text — stored once — with an inline-bytes escape for
// the rare lexemes that are not a contiguous source slice (spliced string
// literals / line comments).
//
// A second entry kind ("CKM1", *.ckmod) caches the per-module phase
// (rules::AnalyzeUnitDesign + rules::AnalyzeDefensive), keyed by the module
// name and the member files' (path, content-hash) list in merge order — the
// phase is a pure function of those inputs, and on a warm run it would
// otherwise dominate the wall time by re-walking every token.
//
// Invalidation is implicit: any change to the file bytes, the path, the
// module key, or the options fingerprint selects a different entry name; a
// bump of kArtifactSchemaVersion orphans every old entry. Unreadable,
// truncated, or corrupt entries fail Load() and are silently recomputed —
// the cache is an accelerator, never a source of truth.
#ifndef CERTKIT_DRIVER_ARTIFACT_CACHE_H_
#define CERTKIT_DRIVER_ARTIFACT_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ast/source_model.h"
#include "driver/analysis_driver.h"

namespace certkit::driver {

// Bump when the serialized layout of any payload struct changes.
inline constexpr std::uint32_t kArtifactSchemaVersion = 1;

// FNV-1a/64 over `bytes`, continuing from `seed` (chainable).
std::uint64_t HashBytes(std::string_view bytes,
                        std::uint64_t seed = 1469598103934665603ull);

// Digest of the per-file analysis options — part of every cache key, so a
// changed MISRA/style/lex configuration never resurrects stale artifacts.
std::uint64_t OptionsFingerprint(const DriverOptions& options);

// Serializes one file's complete analysis (public artifact + parsed model).
// `model.lexed` must be the model the artifact was computed from. The
// source text itself is NOT stored — only its (hash, size) — because every
// load site already holds the bytes (it just hashed them to find the
// entry); re-shipping ~half the blob would double warm-run IO.
std::string SerializeArtifact(const FileAnalysis& analysis,
                              const ast::SourceFileModel& model);

// Parses `bytes` into (*analysis, *model), rebuilding FileAnalysis::text
// and the zero-copy token buffer from `content` — which must be the exact
// bytes the artifact was serialized from (the cache verifies this via the
// entry-header content hash before calling). Returns false on any
// truncation, overrun, or structural inconsistency; outputs are
// unspecified on failure.
bool DeserializeArtifact(std::string_view bytes, std::string_view content,
                         FileAnalysis* analysis, ast::SourceFileModel* model);

// Order-independent digest of a merged analysis: hashes every per-file
// artifact plus the module-phase reports and the skipped list. Two
// CodebaseAnalysis values digest equal iff the analysis output is the same —
// the bit-identity check used by the cache tests and the incremental bench.
std::uint64_t DigestAnalysis(const CodebaseAnalysis& analysis);

class ArtifactCache {
 public:
  // `dir` is created on first Store. An empty dir disables the cache
  // (Load always misses, Store is a no-op).
  ArtifactCache(std::string dir, std::uint64_t options_fingerprint);

  bool enabled() const { return !dir_.empty(); }

  // Looks up the artifact for (path, module, content). On a hit, fills
  // *analysis / *model (module_index/file_index are left for the merge to
  // assign) and returns true. Any miss, version skew, or corruption returns
  // false. The overload taking `content_hash` (== HashBytes(content)) lets
  // a caller that already hashed the bytes skip the second pass.
  bool Load(const std::string& path, const std::string& module,
            const std::string& content, FileAnalysis* analysis,
            ast::SourceFileModel* model) const;
  bool Load(const std::string& path, const std::string& module,
            const std::string& content, std::uint64_t content_hash,
            FileAnalysis* analysis, ast::SourceFileModel* model) const;

  // Writes the artifact for later runs. Best-effort: IO failures are
  // swallowed (the run already has its result). Atomic via temp + rename so
  // concurrent workers and concurrent processes never observe torn entries.
  void Store(const std::string& content, const FileAnalysis& analysis,
             const ast::SourceFileModel& model) const;

  // The on-disk entry file for (path, module, content) under this cache's
  // options fingerprint. Exposed for tests.
  std::string EntryPath(const std::string& path, const std::string& module,
                        const std::string& content) const;
  // Same entry with a precomputed content hash — the form the driver holds
  // after a run, when the file bytes themselves are already consumed.
  std::string EntryPathForHash(const std::string& path,
                               const std::string& module,
                               std::uint64_t content_hash) const;

  // Removes every cache entry (*.ckart / *.ckmod) whose file is not named
  // in `live` (entry paths as returned by EntryPath / EntryPathForHash /
  // ModulePhaseEntryPath). Entries orphaned by edits, renames, deletions,
  // or option changes otherwise accumulate forever — the entry name IS the
  // content key, so nothing ever overwrites them. Returns the number of
  // entries removed; foreign files in the directory are left alone.
  int GarbageCollect(const std::vector<std::string>& live) const;

  // --- per-module phase entries ---------------------------------------

  // Key of the module phase for `module` over `files`, a (path,
  // content-hash) list in merge (path) order. Includes the options
  // fingerprint, so the same invalidation rules apply.
  std::uint64_t ModulePhaseKey(
      const std::string& module,
      const std::vector<std::pair<std::string, std::uint64_t>>& files) const;

  // The on-disk entry file for a module-phase key; lets GC callers and
  // tests name live module entries.
  std::string ModulePhaseEntryPath(std::uint64_t key) const;

  // Load/store of the cached module phase under `key`. Same contract as the
  // per-file entries: corrupt or mismatched entries miss and are recomputed.
  bool LoadModulePhase(std::uint64_t key, rules::UnitDesignResult* unit_design,
                       rules::DefensiveResult* defensive) const;
  void StoreModulePhase(std::uint64_t key,
                        const rules::UnitDesignResult& unit_design,
                        const rules::DefensiveResult& defensive) const;

 private:
  std::string EntryFile(std::uint64_t key, const char* extension) const;
  void StoreBlob(const std::string& entry, std::string blob) const;

  std::string dir_;
  std::uint64_t options_fingerprint_ = 0;
};

}  // namespace certkit::driver

#endif  // CERTKIT_DRIVER_ARTIFACT_CACHE_H_
