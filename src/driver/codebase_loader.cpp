#include "driver/codebase_loader.h"

namespace certkit::driver {

support::Result<Codebase> LoadCodebase(const std::string& root,
                                       const LoadOptions& options) {
  DriverOptions driver_opts;
  driver_opts.extensions = options.extensions;
  driver_opts.jobs = options.jobs;
  AnalysisDriver driver(driver_opts);
  auto analyzed = driver.AnalyzeTree(root);
  if (!analyzed.ok()) return analyzed.status();

  Codebase out;
  out.analysis = std::move(analyzed).value();
  out.skipped = out.analysis.skipped;
  out.raw_sources.reserve(out.analysis.files.size());
  out.traces.reserve(out.analysis.files.size());
  for (const auto& fa : out.analysis.files) {
    out.raw_sources.push_back(rules::RawSource{fa.path, fa.text});
    out.traces.push_back(fa.trace);
  }
  return out;
}

}  // namespace certkit::driver
