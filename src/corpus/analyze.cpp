#include "corpus/analyze.h"

#include "ast/parser.h"

namespace certkit::corpus {

support::Result<metrics::ModuleAnalysis> AnalyzeGeneratedModule(
    const GeneratedModule& module) {
  std::vector<ast::SourceFileModel> files;
  files.reserve(module.files.size());
  for (const auto& f : module.files) {
    auto parsed = ast::ParseSource(f.path, f.content);
    if (!parsed.ok()) return parsed.status();
    files.push_back(std::move(parsed).value());
  }
  return metrics::AnalyzeModule(module.spec.name, std::move(files));
}

std::vector<driver::SourceInput> CorpusSourceInputs(
    const std::vector<GeneratedModule>& corpus) {
  std::vector<driver::SourceInput> inputs;
  for (const auto& mod : corpus) {
    for (const auto& f : mod.files) {
      inputs.push_back(driver::SourceInput{f.path, f.content});
    }
  }
  return inputs;
}

support::Result<CorpusAnalysis> AnalyzeGeneratedCorpus(
    const std::vector<GeneratedModule>& corpus, int jobs,
    const std::string& cache_dir) {
  driver::DriverOptions opts;
  opts.jobs = jobs;
  opts.cache_dir = cache_dir;
  driver::AnalysisDriver d(opts);
  auto analyzed = d.AnalyzeSources(CorpusSourceInputs(corpus));
  if (!analyzed.ok()) return analyzed.status();
  // A generated file that fails to parse is a corpus bug, not an input
  // problem — surface it instead of silently skipping.
  if (!analyzed.value().skipped.empty()) {
    return support::InvalidArgumentError("generated file failed to parse: " +
                                         analyzed.value().skipped.front());
  }
  return analyzed;
}

}  // namespace certkit::corpus
