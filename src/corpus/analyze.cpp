#include "corpus/analyze.h"

#include "ast/parser.h"

namespace certkit::corpus {

support::Result<metrics::ModuleAnalysis> AnalyzeGeneratedModule(
    const GeneratedModule& module) {
  std::vector<ast::SourceFileModel> files;
  files.reserve(module.files.size());
  for (const auto& f : module.files) {
    auto parsed = ast::ParseSource(f.path, f.content);
    if (!parsed.ok()) return parsed.status();
    files.push_back(std::move(parsed).value());
  }
  return metrics::AnalyzeModule(module.spec.name, std::move(files));
}

support::Result<CorpusAnalysis> AnalyzeGeneratedCorpus(
    const std::vector<GeneratedModule>& corpus) {
  CorpusAnalysis out;
  for (const auto& mod : corpus) {
    auto analyzed = AnalyzeGeneratedModule(mod);
    if (!analyzed.ok()) return analyzed.status();
    out.modules.push_back(std::move(analyzed).value());
    for (const auto& f : mod.files) {
      out.raw_sources.push_back(rules::RawSource{f.path, f.content});
    }
  }
  return out;
}

}  // namespace certkit::corpus
