#include "corpus/generator.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "support/check.h"
#include "support/rng.h"

namespace certkit::corpus {

namespace {

using support::Xoshiro256;

constexpr std::array<const char*, 10> kVerbs = {
    "Process", "Update",  "Compute", "Estimate", "Filter",
    "Track",   "Plan",    "Predict", "Fuse",     "Decode"};
constexpr std::array<const char*, 10> kNouns = {
    "Frame", "Obstacle", "Trajectory", "Lane",  "Signal",
    "Cloud", "Grid",     "Pose",       "Route", "Command"};

std::string FunctionName(Xoshiro256& rng, int index) {
  return std::string(kVerbs[static_cast<std::size_t>(
             rng.UniformInt(0, kVerbs.size() - 1))]) +
         kNouns[static_cast<std::size_t>(
             rng.UniformInt(0, kNouns.size() - 1))] +
         std::to_string(index);
}

// Appends one control-flow block contributing exactly `cost` decisions
// (cost in {1, 2, 3}) to `body`. `k` varies the literals.
void EmitBlock(std::string* body, Xoshiro256& rng, int cost, int k) {
  switch (cost) {
    case 1: {
      const int pick = static_cast<int>(rng.UniformInt(0, 2));
      if (pick == 0) {
        *body += "  if (x > " + std::to_string(k) + ") {\n";
        *body += "    x += " + std::to_string(k % 7 + 1) + ";\n";
        *body += "  }\n";
      } else if (pick == 1) {
        *body += "  for (int i = 0; i < " + std::to_string(k % 9 + 2) +
                 "; ++i) {\n";
        *body += "    x += i;\n";
        *body += "  }\n";
      } else {
        *body += "  while (x > " + std::to_string(k + 100) + ") {\n";
        *body += "    x -= " + std::to_string(k % 5 + 1) + ";\n";
        *body += "  }\n";
      }
      break;
    }
    case 2: {
      if (rng.Bernoulli(0.5)) {
        *body += "  if (x > " + std::to_string(k) + " && limit < " +
                 std::to_string(k + 3) + ") {\n";
        *body += "    x -= limit;\n";
        *body += "  }\n";
      } else {
        *body += "  x = (x > " + std::to_string(k) + ") ? x - 1 : x + 1;\n";
        *body += "  if (limit > " + std::to_string(k % 11) + ") {\n";
        *body += "    x += limit;\n";
        *body += "  }\n";
      }
      break;
    }
    case 3: {
      *body += "  switch (x % 4) {\n";
      *body += "    case 0:\n      x += 1;\n      break;\n";
      *body += "    case 1:\n      x += 2;\n      break;\n";
      *body += "    case 2:\n      x += 3;\n      break;\n";
      *body += "    default:\n      x += 4;\n      break;\n";
      *body += "  }\n";
      break;
    }
    default:
      CERTKIT_CHECK_MSG(false, "unsupported block cost " << cost);
  }
}

struct FunctionPlan {
  std::string name;
  int cc_target = 1;
  bool multi_exit = false;
  bool recursive = false;
  bool has_goto = false;
  int casts = 0;
  int uninitialized = 0;
};

std::string EmitFunction(const FunctionPlan& plan, Xoshiro256& rng) {
  std::string out;
  if (plan.recursive) {
    // Fixed shape: CC 2, two exits (recursion implies multi-exit).
    out += "int " + plan.name + "(int n) {\n";
    out += "  if (n <= 1) {\n    return 1;\n  }\n";
    out += "  return n * " + plan.name + "(n - 1);\n";
    out += "}\n";
    return out;
  }

  // Control flow deliberately branches on locals, not parameters: the
  // subject framework does not validate its inputs (Observation 6).
  out += "int " + plan.name + "(int a, int b, double c) {\n";
  out += "  int x = a + b;\n";
  out += "  int limit = b % 9 + 3;\n";
  out += "  double scale_factor = c;\n";
  out += "  x += limit;\n";
  out += "  scale_factor += x;\n";
  for (int u = 0; u < plan.uninitialized; ++u) {
    out += "  int scratch_" + std::to_string(u) + ";\n";
    out += "  scratch_" + std::to_string(u) + " = a * " +
           std::to_string(u + 1) + ";\n";
    out += "  x += scratch_" + std::to_string(u) + ";\n";
  }
  for (int cst = 0; cst < plan.casts; ++cst) {
    if (rng.Bernoulli(0.5)) {
      out += "  x += static_cast<int>(c) + " + std::to_string(cst) + ";\n";
    } else {
      out += "  x += (int)c + " + std::to_string(cst) + ";\n";
    }
  }

  int decisions = plan.cc_target - 1;
  if (plan.multi_exit) {
    CERTKIT_CHECK(decisions >= 1);
    out += "  if (x < 0) {\n    return 0;\n  }\n";
    --decisions;
  }
  if (plan.has_goto) {
    CERTKIT_CHECK(decisions >= 1);
    out += "  if (limit < 0) {\n    goto fail;\n  }\n";
    --decisions;
  }
  while (decisions > 0) {
    const int max_cost = std::min(decisions, 3);
    const int cost = static_cast<int>(rng.UniformInt(1, max_cost));
    EmitBlock(&out, rng, cost, static_cast<int>(rng.UniformInt(1, 97)));
    decisions -= cost;
  }

  if (plan.has_goto) {
    out += "fail:\n";
  }
  out += "  return x;\n";
  out += "}\n";
  return out;
}

std::string EmitCudaKernelPair(const std::string& module, int index) {
  const std::string kname =
      std::string("Kernel") +
      kNouns[static_cast<std::size_t>(index) % kNouns.size()] +
      std::to_string(index);
  std::string out;
  out += "__global__ void " + kname +
         "(float* out, const float* in, int n) {\n";
  out += "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n";
  out += "  if (i < n) {\n";
  out += "    out[i] = in[i] * 1.5f + " + std::to_string(index) + ".0f;\n";
  out += "  }\n";
  out += "}\n\n";
  out += "void Launch" + kname + "(const float* host_in, float* host_out,\n";
  out += "                         int n) {\n";
  out += "  float* dev_in = nullptr;\n";
  out += "  float* dev_out = nullptr;\n";
  out += "  cudaMalloc(&dev_in, n * sizeof(float));\n";
  out += "  cudaMalloc(&dev_out, n * sizeof(float));\n";
  out += "  cudaMemcpy(dev_in, host_in, n * sizeof(float),\n";
  out += "             cudaMemcpyHostToDevice);\n";
  out += "  " + kname + "<<<(n + 255) / 256, 256>>>(dev_out, dev_in, n);\n";
  out += "  cudaMemcpy(host_out, dev_out, n * sizeof(float),\n";
  out += "             cudaMemcpyDeviceToHost);\n";
  out += "  cudaFree(dev_in);\n";
  out += "  cudaFree(dev_out);\n";
  out += "}\n";
  (void)module;
  return out;
}

std::int64_t CountLines(const std::string& s) {
  std::int64_t n = 0;
  for (char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

}  // namespace

std::vector<GeneratedFile> GenerateModule(const ModuleSpec& spec,
                                          std::uint64_t seed) {
  CERTKIT_CHECK(spec.num_files >= 1);
  Xoshiro256 rng(seed ^ std::hash<std::string>()(spec.name));

  // --- plan all functions ---
  std::vector<FunctionPlan> plans;
  plans.reserve(static_cast<std::size_t>(spec.TotalFunctions()));
  int name_index = 0;
  auto add_band = [&](int count, int cc_lo, int cc_hi) {
    for (int i = 0; i < count; ++i) {
      FunctionPlan p;
      p.name = FunctionName(rng, name_index++);
      p.cc_target = static_cast<int>(rng.UniformInt(cc_lo, cc_hi));
      plans.push_back(std::move(p));
    }
  };
  // Reserve low-band slots for CUDA pairs (kernel CC2 + wrapper CC1).
  const int cuda_fn_slots = spec.cuda_kernels * 2;
  const int low_regular = std::max(0, spec.functions_low - cuda_fn_slots);
  add_band(low_regular, 2, 10);  // CC >= 2 so multi-exit/goto blocks fit
  add_band(spec.functions_moderate, 11, 20);
  add_band(spec.functions_risky, 21, 50);
  add_band(spec.functions_unstable, 51, 80);

  // Multi-exit assignment: recursion and goto functions are inherently
  // multi-exit; the remainder of the budget is spread over regular ones.
  const int total_plans = static_cast<int>(plans.size());
  int multi_target = static_cast<int>(
      spec.multi_exit_fraction *
          static_cast<double>(total_plans + cuda_fn_slots +
                              spec.ExtraFunctions()) +
      0.5);
  // CUDA pairs are single-exit; recursive functions handled below.
  int recursive_left = std::min(spec.recursive_functions, total_plans);
  int goto_left = std::min(spec.gotos, total_plans);
  std::vector<int> order(plans.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  // Deterministic shuffle.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(
                                rng.UniformInt(0, static_cast<int>(i) - 1))]);
  }
  for (int idx : order) {
    FunctionPlan& p = plans[static_cast<std::size_t>(idx)];
    if (recursive_left > 0 && p.cc_target <= 10) {
      // Recursive functions have a fixed CC-2 shape, so only low-band plans
      // may become recursive (the CC-band calibration must stay exact).
      p.recursive = true;
      --recursive_left;
      if (multi_target > 0) --multi_target;
      continue;
    }
    if (goto_left > 0) {
      p.has_goto = true;
      --goto_left;
      continue;
    }
    if (multi_target > 0) {
      p.multi_exit = true;
      --multi_target;
    }
  }

  // Casts and uninitialized locals spread round-robin.
  int casts_left = spec.casts;
  int uninit_left = spec.uninitialized_locals;
  std::size_t cursor = 0;
  while (casts_left > 0 && !plans.empty()) {
    FunctionPlan& p = plans[cursor % plans.size()];
    if (!p.recursive) {
      ++p.casts;
      --casts_left;
    }
    ++cursor;
  }
  cursor = 0;
  while (uninit_left > 0 && !plans.empty()) {
    FunctionPlan& p = plans[cursor % plans.size()];
    if (!p.recursive) {
      ++p.uninitialized;
      --uninit_left;
    }
    ++cursor;
  }

  // --- distribute into files ---
  std::vector<GeneratedFile> files;
  const int cc_files = spec.num_files;
  const bool has_cuda = spec.cuda_kernels > 0;
  std::vector<std::string> bodies(static_cast<std::size_t>(cc_files));

  // Globals: first file gets the module's state header block.
  std::vector<std::string> global_decls;
  for (int g = 0; g < spec.mutable_globals; ++g) {
    global_decls.push_back("int g_" + spec.name + "_state_" +
                           std::to_string(g) + " = 0;");
  }
  for (int g = 0; g < spec.const_globals; ++g) {
    global_decls.push_back("const int kLimit" + std::to_string(g) + " = " +
                           std::to_string(g * 3 + 1) + ";");
  }

  for (std::size_t i = 0; i < plans.size(); ++i) {
    bodies[i % bodies.size()] += EmitFunction(plans[i], rng) + "\n";
  }

  const std::int64_t per_file_target =
      spec.target_loc / (cc_files + (has_cuda ? 1 : 0));
  for (int f = 0; f < cc_files; ++f) {
    GeneratedFile file;
    file.path =
        spec.name + "/" + spec.name + "_" + std::to_string(f) + ".cc";
    std::string content;
    content += "// Module " + spec.name + ", translation unit " +
               std::to_string(f) + ".\n";
    content += "// Generated by certkit::corpus for the ISO 26262\n";
    content += "// adherence reproduction (calibrated to Apollo).\n\n";
    content += "#include <cstdint>\n\n";
    content += "namespace apollo {\n";
    content += "namespace " + spec.name + " {\n\n";
    // Spread globals across files.
    for (std::size_t g = static_cast<std::size_t>(f);
         g < global_decls.size();
         g += static_cast<std::size_t>(cc_files)) {
      content += global_decls[g] + "\n";
    }
    content += "\n";
    content += bodies[static_cast<std::size_t>(f)];
    content += "}  // namespace " + spec.name + "\n";
    content += "}  // namespace apollo\n";

    // Pad with documentation comments to approach the LOC target.
    std::int64_t lines = CountLines(content);
    while (lines < per_file_target) {
      content += "// Implementation note " + std::to_string(lines) +
                 ": see the module design document.\n";
      ++lines;
    }
    file.content = std::move(content);
    files.push_back(std::move(file));
  }

  // Architecture file: the component class, wide-interface functions, and
  // the module entry point with its intra-/inter-module calls.
  {
    std::string mod_camel = spec.name;
    mod_camel[0] = static_cast<char>(std::toupper(
        static_cast<unsigned char>(mod_camel[0])));
    GeneratedFile arch;
    arch.path = spec.name + "/" + spec.name + "_component.cc";
    std::string content;
    content += "// Component interface of module " + spec.name + ".\n\n";
    content += "#include <cstdint>\n\n";
    // Peer entry declarations (cross-module dependencies).
    for (const std::string& peer : spec.peer_entries) {
      content += "int " + peer + "(int tick);\n";
    }
    content += "\nnamespace apollo {\nnamespace " + spec.name + " {\n\n";
    if (spec.component_methods > 0) {
      content += "class " + mod_camel + "Component {\n public:\n";
      for (int m = 0; m < spec.component_methods; ++m) {
        content += "  int Handle" + std::to_string(m) +
                   "(int value) {\n    return value + " +
                   std::to_string(m) + ";\n  }\n";
      }
      content += "};\n\n";
    }
    for (int wf = 0; wf < spec.wide_interface_functions; ++wf) {
      content += "int Configure" + mod_camel + std::to_string(wf) +
                 "(int a, int b, int e, int f, int g, int h, int i) {\n";
      content += "  int acc = a + b + e + f + g + h + i;\n";
      content += "  return acc;\n}\n\n";
    }
    // Entry point: calls a few module-local functions (cohesion) and the
    // peer entries (coupling).
    content += "int " + mod_camel + "Entry(int tick) {\n";
    content += "  int result = tick;\n";
    for (std::size_t q = 0; q < plans.size() && q < 5; ++q) {
      if (plans[q].recursive) {
        content += "  result += " + plans[q].name + "(result);\n";
      } else {
        content += "  result += " + plans[q].name +
                   "(result, tick, 0.5);\n";
      }
    }
    for (const std::string& peer : spec.peer_entries) {
      content += "  result += " + peer + "(tick - 1);\n";
    }
    content += "  return result;\n}\n\n";
    content += "}  // namespace " + spec.name + "\n";
    content += "}  // namespace apollo\n";
    arch.content = std::move(content);
    files.push_back(std::move(arch));
  }

  if (has_cuda) {
    GeneratedFile cu;
    cu.path = spec.name + "/" + spec.name + "_kernels.cu";
    std::string content;
    content += "// CUDA kernels of module " + spec.name + ".\n\n";
    content += "#include <cstdint>\n\n";
    for (int k = 0; k < spec.cuda_kernels; ++k) {
      content += EmitCudaKernelPair(spec.name, k) + "\n";
    }
    std::int64_t lines = CountLines(content);
    while (lines < per_file_target) {
      content += "// Kernel tuning note " + std::to_string(lines) + ".\n";
      ++lines;
    }
    cu.content = std::move(content);
    files.push_back(std::move(cu));
  }
  return files;
}

std::vector<ModuleSpec> ApolloLikeSpec() {
  std::vector<ModuleSpec> spec;
  auto add = [&](const char* name, int files, int low, int mod, int risky,
                 int unstable, int mut_globals, int const_globals, int casts,
                 double multi_exit, int gotos, int recursive, int uninit,
                 int cuda, std::int64_t loc) {
    ModuleSpec m;
    m.name = name;
    m.num_files = files;
    m.functions_low = low;
    m.functions_moderate = mod;
    m.functions_risky = risky;
    m.functions_unstable = unstable;
    m.mutable_globals = mut_globals;
    m.const_globals = const_globals;
    m.casts = casts;
    m.multi_exit_fraction = multi_exit;
    m.gotos = gotos;
    m.recursive_functions = recursive;
    m.uninitialized_locals = uninit;
    m.cuda_kernels = cuda;
    m.target_loc = loc;
    spec.push_back(std::move(m));
  };
  // name, files, low, moderate, risky, unstable, mutG, constG, casts,
  // multiExit, gotos, recursive, uninit, cuda, LOC.
  // CC>10 totals: 160+120+70+50+40+35+25+24+30 = 554 (paper: 554).
  // Casts total: 1,420 (paper: >1,400). Perception globals: 900 (paper ~900).
  // Object detection lives in perception: multi-exit 0.41 (paper: 41%).
  add("perception", 16, 1400, 110, 40, 10, 900, 80, 500, 0.41, 6, 4, 60, 40,
      60000);
  add("planning", 12, 900, 85, 30, 5, 110, 60, 260, 0.30, 4, 3, 30, 0,
      45000);
  add("prediction", 8, 500, 50, 17, 3, 60, 30, 150, 0.28, 2, 2, 18, 0,
      25000);
  add("localization", 7, 420, 36, 12, 2, 50, 25, 120, 0.25, 2, 1, 14, 0,
      20000);
  add("map", 7, 400, 30, 9, 1, 40, 25, 100, 0.22, 1, 2, 12, 0, 20000);
  add("control", 6, 320, 26, 8, 1, 30, 20, 80, 0.24, 1, 1, 10, 0, 15000);
  add("routing", 5, 220, 19, 5, 1, 25, 15, 60, 0.20, 1, 1, 8, 0, 10000);
  add("canbus", 5, 220, 18, 5, 1, 30, 15, 60, 0.26, 2, 0, 8, 0, 10000);
  add("drivers", 6, 320, 22, 7, 1, 45, 20, 90, 0.24, 2, 1, 10, 0, 15000);
  return spec;
}

std::vector<GeneratedModule> GenerateCorpus(
    const std::vector<ModuleSpec>& spec, std::uint64_t seed) {
  std::vector<GeneratedModule> out;
  out.reserve(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    ModuleSpec m = spec[i];
    // Pipeline-shaped dependencies: each module calls up to three
    // downstream modules' entry points (acyclic).
    if (m.peer_entries.empty()) {
      for (std::size_t d = i + 1; d < spec.size() && d <= i + 3; ++d) {
        std::string peer = spec[d].name;
        peer[0] = static_cast<char>(std::toupper(
            static_cast<unsigned char>(peer[0])));
        m.peer_entries.push_back(peer + "Entry");
      }
    }
    GeneratedModule gm;
    gm.spec = m;
    gm.files = GenerateModule(m, seed);
    out.push_back(std::move(gm));
  }
  return out;
}

}  // namespace certkit::corpus
