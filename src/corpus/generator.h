// certkit corpus: deterministic synthetic-codebase generator.
//
// The paper measures Apollo's source tree (~220k LOC). Apollo itself cannot
// be vendored here, and the paper's analyses are statistical properties of
// source text — so this generator emits real, parseable C++/CUDA modules
// whose per-module statistics are *calibrated* to the numbers the paper
// reports:
//   * 220k LOC across nine top-level modules of 5k–60k LOC each;
//   * 554 functions with cyclomatic complexity > 10 across the framework;
//   * > 1,400 explicit casts (Observation 5);
//   * ~900 file-scope variables in the perception module (Table 3 item 5);
//   * 41% multi-exit functions in the object-detection code (Table 3 item 1);
//   * CUDA kernels whose parameters are device pointers and whose host
//     wrappers call cudaMalloc/cudaMemcpy (Observations 3–4, Figure 4);
//   * Google-style-clean layout and naming (Observations 8–9).
//
// Generation is fully deterministic for a given seed.
#ifndef CERTKIT_CORPUS_GENERATOR_H_
#define CERTKIT_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace certkit::corpus {

struct ModuleSpec {
  std::string name;
  int num_files = 8;

  // Function counts by cyclomatic-complexity band.
  int functions_low = 100;      // CC 1–10
  int functions_moderate = 0;   // CC 11–20
  int functions_risky = 0;      // CC 21–50
  int functions_unstable = 0;   // CC > 50

  int mutable_globals = 0;
  int const_globals = 0;
  int casts = 0;                // mix of C-style and static_cast
  double multi_exit_fraction = 0.0;  // of all functions
  int gotos = 0;
  int recursive_functions = 0;
  int uninitialized_locals = 0;
  int cuda_kernels = 0;         // __global__ kernels + host wrappers

  // Architectural-shape knobs (Table 2 / Observation 13 evidence):
  // a <Module>Component class with this many public methods,
  int component_methods = 25;
  // functions with 7 parameters (exceeding the 5-parameter interface limit),
  int wide_interface_functions = 6;
  // and a <Module>Entry function that calls these peer modules' entries
  // (filled by GenerateCorpus in pipeline order).
  std::vector<std::string> peer_entries;

  // Physical-line target; files are padded with documentation comments.
  std::int64_t target_loc = 10000;

  int TotalFunctions() const {
    return functions_low + functions_moderate + functions_risky +
           functions_unstable;
  }
  // Functions emitted beyond the complexity-band budget.
  int ExtraFunctions() const {
    return component_methods + wide_interface_functions + 1;  // +1 entry
  }
};

struct GeneratedFile {
  std::string path;  // "<module>/<module>_<i>.cc" or ".cu"
  std::string content;
};

// Emits all files of one module. Deterministic in (spec, seed).
std::vector<GeneratedFile> GenerateModule(const ModuleSpec& spec,
                                          std::uint64_t seed);

// The calibrated nine-module Apollo-like corpus specification.
// Totals: 220k LOC, 554 functions with CC > 10, 1,420 casts, 900 globals in
// perception.
std::vector<ModuleSpec> ApolloLikeSpec();

// Generates the whole corpus (all modules of `spec`).
struct GeneratedModule {
  ModuleSpec spec;
  std::vector<GeneratedFile> files;
};
std::vector<GeneratedModule> GenerateCorpus(
    const std::vector<ModuleSpec>& spec, std::uint64_t seed);

}  // namespace certkit::corpus

#endif  // CERTKIT_CORPUS_GENERATOR_H_
