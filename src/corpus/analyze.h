// certkit corpus: convenience bridge from generated corpus to the analyzers.
#ifndef CERTKIT_CORPUS_ANALYZE_H_
#define CERTKIT_CORPUS_ANALYZE_H_

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "driver/analysis_driver.h"
#include "metrics/module_metrics.h"
#include "rules/assessor.h"
#include "support/status.h"

namespace certkit::corpus {

// Parses every file of `module` and aggregates module metrics.
support::Result<metrics::ModuleAnalysis> AnalyzeGeneratedModule(
    const GeneratedModule& module);

// Analyzes the whole corpus through the shared AnalysisDriver — one
// FileAnalysis per generated file, merged in stable path order. `jobs` <= 0
// selects the hardware concurrency. A non-empty `cache_dir` enables the
// content-hash artifact cache, so repeated analyses of an unchanged corpus
// skip the lex/parse/rule passes entirely.
using CorpusAnalysis = driver::CodebaseAnalysis;
support::Result<CorpusAnalysis> AnalyzeGeneratedCorpus(
    const std::vector<GeneratedModule>& corpus, int jobs = 0,
    const std::string& cache_dir = "");

// The generated corpus flattened into driver inputs (sorted by path).
std::vector<driver::SourceInput> CorpusSourceInputs(
    const std::vector<GeneratedModule>& corpus);

}  // namespace certkit::corpus

#endif  // CERTKIT_CORPUS_ANALYZE_H_
