// certkit corpus: convenience bridge from generated corpus to the analyzers.
#ifndef CERTKIT_CORPUS_ANALYZE_H_
#define CERTKIT_CORPUS_ANALYZE_H_

#include <vector>

#include "corpus/generator.h"
#include "metrics/module_metrics.h"
#include "rules/assessor.h"
#include "support/status.h"

namespace certkit::corpus {

// Parses every file of `module` and aggregates module metrics.
support::Result<metrics::ModuleAnalysis> AnalyzeGeneratedModule(
    const GeneratedModule& module);

// Parses the whole corpus. Also returns the raw sources (for style checks).
struct CorpusAnalysis {
  std::vector<metrics::ModuleAnalysis> modules;
  std::vector<rules::RawSource> raw_sources;
};
support::Result<CorpusAnalysis> AnalyzeGeneratedCorpus(
    const std::vector<GeneratedModule>& corpus);

}  // namespace certkit::corpus

#endif  // CERTKIT_CORPUS_ANALYZE_H_
