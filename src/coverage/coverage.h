// certkit coverage: a probe-based structural-coverage runtime implementing
// the three criteria the paper measures with RapiCover (Figure 5) and with
// host-compiled CUDA kernels (Figure 6):
//
//  * statement coverage — every declared statement probe executed;
//  * decision (branch) coverage — every decision evaluated to both true
//    and false;
//  * MC/DC — for every condition within a decision, two recorded evaluation
//    vectors differ ONLY in that condition and produce different decision
//    outcomes (unique-cause MC/DC).
//
// Subjects are instrumented explicitly: a translation unit obtains a Unit
// from the Registry, declares its probe counts, and wraps its statements and
// conditions with Stmt()/Cond()/Dec() calls. Instrumented conditions are
// evaluated eagerly (no short-circuit), which is the standard trade-off of
// source-level instrumentation and is documented in DESIGN.md.
//
// Thread safety: probes may fire concurrently (the GPU-on-CPU layer runs
// kernels on a thread pool). Statement hits are atomic; decision-vector
// recording takes a per-unit mutex.
#ifndef CERTKIT_COVERAGE_COVERAGE_H_
#define CERTKIT_COVERAGE_COVERAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace certkit::cov {

// Global probe switch. Coverage collection is a build flavor in real
// deployments (instrumented vs release); here it is a runtime flag so the
// performance benchmarks can run the exact same code uninstrumented.
// Enabled by default.
void SetProbesEnabled(bool enabled);
bool ProbesEnabled();

struct DecisionRecord {
  int num_conditions = 0;
  bool seen_true = false;
  bool seen_false = false;
  // Distinct evaluation vectors: (condition bitmask, outcome).
  std::set<std::pair<std::uint64_t, bool>> vectors;
};

// Unique-cause MC/DC analysis over a recorded vector set: the number of
// conditions (out of `num_conditions`) for which two vectors exist that
// differ ONLY in that condition and produce different decision outcomes.
// Vectors differing in more than one condition (masking vectors) never
// form a demonstrating pair. Shared by Unit and by detached covers.
std::int64_t McdcDemonstrated(
    int num_conditions,
    const std::set<std::pair<std::uint64_t, bool>>& vectors);

// --- diffable coverage covers (campaign-engine support) -------------------
//
// A "cover" is the execution state of coverage probes detached from the
// declaring Unit: which statement probes fired, which decision outcomes and
// evaluation vectors were seen. Covers are cheap to take (per-unit lock
// only — no global pause), cheap to diff, and merge monotonically, which is
// what a coverage-guided test-generation loop needs.

// Execution state of one decision, detached from its Unit.
struct DecisionCover {
  int num_conditions = 0;
  bool seen_true = false;
  bool seen_false = false;
  std::set<std::pair<std::uint64_t, bool>> vectors;

  bool operator==(const DecisionCover&) const = default;
};

// Execution state of one unit.
struct UnitCover {
  std::set<int> stmts;                   // statement probe ids that fired
  std::map<int, DecisionCover> decisions;  // by decision id

  bool operator==(const UnitCover&) const = default;
};

// Covers for many units, keyed by unit name (stable iteration order).
using CoverSet = std::map<std::string, UnitCover>;

// Merges `src` into `dst`. Returns the number of probe facts in `src` that
// were new to `dst`: first-seen statements, decision outcomes, and
// evaluation vectors. Zero means `src` adds no coverage.
std::int64_t MergeCover(CoverSet* dst, const CoverSet& src);

// Coverage state for one instrumented translation unit.
class Unit {
 public:
  explicit Unit(std::string name);
  Unit(const Unit&) = delete;
  Unit& operator=(const Unit&) = delete;

  const std::string& name() const { return name_; }

  // --- declaration (before execution) ---
  // Declares `n` statement probes with ids [0, n).
  void DeclareStatements(int n);
  // Declares a decision with `num_conditions` conditions (1..64).
  // Returns its id; ids are dense from 0.
  int DeclareDecision(int num_conditions);

  // --- probes (during execution) ---
  // Marks statement `id` executed.
  void Stmt(int id);
  // Records condition `index` of decision `decision_id` as `value`;
  // returns `value` so probes compose inline.
  bool Cond(int decision_id, int index, bool value);
  // Records the decision outcome (with the condition vector accumulated by
  // Cond calls on this thread since the last Dec for this decision);
  // returns `outcome`.
  bool Dec(int decision_id, bool outcome);

  // Convenience for single-condition decisions: records condition 0 and the
  // outcome in one call.
  bool Branch(int decision_id, bool outcome);

  // --- architectural-level coverage (ISO 26262-6 Table 12) ---
  // Declares a function probe; EnterFunction marks it executed.
  int DeclareFunctionProbe(std::string name);
  void EnterFunction(int id);
  // Declares a caller->callee edge probe; CallSite marks it executed.
  int DeclareCallProbe(std::string caller, std::string callee);
  void CallSite(int id);

  // --- declared totals (for computing rates against detached covers) ---
  int declared_decisions() const;
  // Conditions of decision `decision_id` (declared; 1..64).
  int decision_conditions(int decision_id) const;

  // Cheap diffable snapshot of this unit's execution state. Takes only this
  // unit's mutex — probes on other threads (and other units) keep running.
  UnitCover TakeCover() const;

  // --- results ---
  std::int64_t statements_total() const;
  std::int64_t statements_hit() const;
  double StatementCoverage() const;  // in [0,1]; 1.0 when nothing declared
  double BranchCoverage() const;     // outcomes seen / (2 * decisions)
  double McdcCoverage() const;       // independent conditions / conditions
  double FunctionCoverage() const;   // functions entered / declared
  double CallCoverage() const;       // call edges executed / declared
  // Names of declared-but-never-entered functions (reporting).
  std::vector<std::string> UncoveredFunctions() const;
  // Conditions demonstrated independent, per unique-cause analysis.
  std::int64_t mcdc_conditions_demonstrated() const;
  std::int64_t mcdc_conditions_total() const;

  void Reset();  // clears execution state, keeps declarations

 private:
  struct ThreadVec;  // per-thread accumulation of condition bits

  std::string name_;
  std::vector<std::atomic<std::uint64_t>> stmt_hits_;
  int declared_statements_ = 0;
  mutable std::mutex mu_;
  std::vector<DecisionRecord> decisions_;

  struct NamedProbe {
    std::string name;
    bool hit = false;
  };
  std::vector<NamedProbe> functions_;
  std::vector<NamedProbe> calls_;
};

// Process-wide registry of units, keyed by name.
class Registry {
 public:
  static Registry& Instance();

  // Returns the unit named `name`, creating it on first use.
  Unit& GetOrCreate(const std::string& name);
  // Units in name order (stable for reports).
  std::vector<const Unit*> Units() const;
  void ResetAll();

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Unit>> units_;
};

// One row of a coverage report (per file/unit).
struct CoverageRow {
  std::string unit;
  double statement = 0.0;
  double branch = 0.0;
  double mcdc = 0.0;
};

// Snapshot of all registered units.
std::vector<CoverageRow> Snapshot();
// Averages across rows (uniform weight per unit, as in Figure 5's summary).
CoverageRow Average(const std::vector<CoverageRow>& rows);

// Covers of all registered units (per-unit locks only; no global pause).
CoverSet SnapshotCover();

// Coverage rates of `cover` measured against `unit`'s declarations. The
// cover need not have been taken from `unit`, but probe ids are interpreted
// against its declared statement/decision layout; ids beyond the
// declarations are ignored.
CoverageRow CoverRow(const Unit& unit, const UnitCover& cover);

// Captures every probe the *calling thread* fires between construction and
// Take()/destruction, in addition to the normal global recording. This is
// how a fleet worker attributes coverage to the one candidate it is
// executing while other workers hammer the same Units concurrently: the
// capture is thread-local, so it sees exactly this thread's probes and
// costs the other threads nothing. At most one capture may be active per
// thread; the object must be used on the thread that created it.
class ThreadCapture {
 public:
  ThreadCapture();
  ~ThreadCapture();
  ThreadCapture(const ThreadCapture&) = delete;
  ThreadCapture& operator=(const ThreadCapture&) = delete;

  // Returns everything captured so far and clears the buffer.
  CoverSet Take();

 private:
  friend class Unit;
  std::map<const Unit*, UnitCover> captured_;
};

}  // namespace certkit::cov

#endif  // CERTKIT_COVERAGE_COVERAGE_H_
