#include "coverage/coverage.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "support/check.h"

namespace certkit::cov {

namespace {

std::atomic<bool> g_probes_enabled{true};


// Per-thread condition accumulation: (unit, decision) -> bitmask of
// condition values recorded since the decision was last committed.
struct PendingKey {
  const Unit* unit;
  int decision;
  bool operator==(const PendingKey& o) const {
    return unit == o.unit && decision == o.decision;
  }
};
struct PendingKeyHash {
  std::size_t operator()(const PendingKey& k) const {
    return std::hash<const void*>()(k.unit) ^
           (std::hash<int>()(k.decision) * 1000003u);
  }
};

// Pending condition masks, keyed by (unit, decision). Entries are zeroed on
// Dec, NOT erased: erase + re-insert cost one heap node per decision
// evaluation, which put an allocation inside every probed hot loop (the
// steady-state tick discipline forbids that, and the tickperf test counts
// it). The map plateaus at one node per (unit, decision) a thread ever
// evaluates — bounded by the declared probe set.
thread_local std::unordered_map<PendingKey, std::uint64_t, PendingKeyHash>
    t_pending;

// The calling thread's active probe capture (nullptr when none).
thread_local ThreadCapture* t_capture = nullptr;

}  // namespace

std::int64_t McdcDemonstrated(
    int num_conditions,
    const std::set<std::pair<std::uint64_t, bool>>& vectors) {
  std::int64_t demonstrated = 0;
  for (int c = 0; c < num_conditions; ++c) {
    const std::uint64_t bit = 1ULL << c;
    bool shown = false;
    // Unique-cause: two vectors differing only in condition c with
    // different outcomes.
    for (auto it = vectors.begin(); it != vectors.end() && !shown; ++it) {
      const std::uint64_t flipped = it->first ^ bit;
      // Both outcomes may exist for a vector; check both.
      if (vectors.count({flipped, !it->second}) > 0) {
        shown = true;
      }
    }
    if (shown) ++demonstrated;
  }
  return demonstrated;
}

std::int64_t MergeCover(CoverSet* dst, const CoverSet& src) {
  CERTKIT_CHECK(dst != nullptr);
  std::int64_t new_facts = 0;
  for (const auto& [name, unit_cover] : src) {
    UnitCover& into = (*dst)[name];
    for (const int stmt : unit_cover.stmts) {
      if (into.stmts.insert(stmt).second) ++new_facts;
    }
    for (const auto& [id, dec] : unit_cover.decisions) {
      DecisionCover& d = into.decisions[id];
      d.num_conditions = std::max(d.num_conditions, dec.num_conditions);
      if (dec.seen_true && !d.seen_true) {
        d.seen_true = true;
        ++new_facts;
      }
      if (dec.seen_false && !d.seen_false) {
        d.seen_false = true;
        ++new_facts;
      }
      for (const auto& vec : dec.vectors) {
        if (d.vectors.insert(vec).second) ++new_facts;
      }
    }
  }
  return new_facts;
}

void SetProbesEnabled(bool enabled) {
  g_probes_enabled.store(enabled, std::memory_order_relaxed);
}

bool ProbesEnabled() {
  return g_probes_enabled.load(std::memory_order_relaxed);
}

Unit::Unit(std::string name) : name_(std::move(name)) {}

void Unit::DeclareStatements(int n) {
  CERTKIT_CHECK(n >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  if (n > declared_statements_) {
    // atomics are not movable; rebuild preserving hits.
    std::vector<std::atomic<std::uint64_t>> grown(
        static_cast<std::size_t>(n));
    for (int i = 0; i < declared_statements_; ++i) {
      grown[static_cast<std::size_t>(i)].store(
          stmt_hits_[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    stmt_hits_ = std::move(grown);
    declared_statements_ = n;
  }
}

int Unit::DeclareDecision(int num_conditions) {
  CERTKIT_CHECK(num_conditions >= 1 && num_conditions <= 64);
  std::lock_guard<std::mutex> lock(mu_);
  DecisionRecord rec;
  rec.num_conditions = num_conditions;
  decisions_.push_back(std::move(rec));
  return static_cast<int>(decisions_.size()) - 1;
}

void Unit::Stmt(int id) {
  if (!ProbesEnabled()) return;
  CERTKIT_CHECK_MSG(id >= 0 && id < declared_statements_,
                    "statement probe " << id << " out of range in unit "
                                       << name_);
  stmt_hits_[static_cast<std::size_t>(id)].fetch_add(
      1, std::memory_order_relaxed);
  if (t_capture != nullptr) t_capture->captured_[this].stmts.insert(id);
}

bool Unit::Cond(int decision_id, int index, bool value) {
  if (!ProbesEnabled()) return value;
  CERTKIT_CHECK(decision_id >= 0 &&
                decision_id < static_cast<int>(decisions_.size()));
  CERTKIT_CHECK(index >= 0 && index < 64);
  auto& mask = t_pending[PendingKey{this, decision_id}];
  if (value) {
    mask |= (1ULL << index);
  } else {
    mask &= ~(1ULL << index);
  }
  return value;
}

bool Unit::Dec(int decision_id, bool outcome) {
  if (!ProbesEnabled()) return outcome;
  CERTKIT_CHECK(decision_id >= 0 &&
                decision_id < static_cast<int>(decisions_.size()));
  std::uint64_t mask = 0;
  auto it = t_pending.find(PendingKey{this, decision_id});
  if (it != t_pending.end()) {
    mask = it->second;
    it->second = 0;  // keep the node: see t_pending's comment
  }
  int num_conditions = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DecisionRecord& rec = decisions_[static_cast<std::size_t>(decision_id)];
    if (outcome) {
      rec.seen_true = true;
    } else {
      rec.seen_false = true;
    }
    rec.vectors.insert({mask, outcome});
    num_conditions = rec.num_conditions;
  }
  if (t_capture != nullptr) {
    DecisionCover& dec = t_capture->captured_[this].decisions[decision_id];
    dec.num_conditions = num_conditions;
    if (outcome) {
      dec.seen_true = true;
    } else {
      dec.seen_false = true;
    }
    dec.vectors.insert({mask, outcome});
  }
  return outcome;
}

bool Unit::Branch(int decision_id, bool outcome) {
  Cond(decision_id, 0, outcome);
  return Dec(decision_id, outcome);
}

int Unit::DeclareFunctionProbe(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  functions_.push_back(NamedProbe{std::move(name), false});
  return static_cast<int>(functions_.size()) - 1;
}

void Unit::EnterFunction(int id) {
  if (!ProbesEnabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CERTKIT_CHECK(id >= 0 && id < static_cast<int>(functions_.size()));
  functions_[static_cast<std::size_t>(id)].hit = true;
}

int Unit::DeclareCallProbe(std::string caller, std::string callee) {
  std::lock_guard<std::mutex> lock(mu_);
  calls_.push_back(
      NamedProbe{std::move(caller) + " -> " + std::move(callee), false});
  return static_cast<int>(calls_.size()) - 1;
}

void Unit::CallSite(int id) {
  if (!ProbesEnabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CERTKIT_CHECK(id >= 0 && id < static_cast<int>(calls_.size()));
  calls_[static_cast<std::size_t>(id)].hit = true;
}

double Unit::FunctionCoverage() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (functions_.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& f : functions_) {
    if (f.hit) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(functions_.size());
}

double Unit::CallCoverage() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (calls_.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& c : calls_) {
    if (c.hit) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(calls_.size());
}

std::vector<std::string> Unit::UncoveredFunctions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& f : functions_) {
    if (!f.hit) out.push_back(f.name);
  }
  return out;
}

std::int64_t Unit::statements_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return declared_statements_;
}

std::int64_t Unit::statements_hit() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const auto& h : stmt_hits_) {
    if (h.load(std::memory_order_relaxed) > 0) ++n;
  }
  return n;
}

double Unit::StatementCoverage() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (declared_statements_ == 0) return 1.0;
  std::int64_t n = 0;
  for (const auto& h : stmt_hits_) {
    if (h.load(std::memory_order_relaxed) > 0) ++n;
  }
  return static_cast<double>(n) / declared_statements_;
}

double Unit::BranchCoverage() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (decisions_.empty()) return 1.0;
  std::int64_t seen = 0;
  for (const auto& d : decisions_) {
    if (d.seen_true) ++seen;
    if (d.seen_false) ++seen;
  }
  return static_cast<double>(seen) /
         (2.0 * static_cast<double>(decisions_.size()));
}

std::int64_t Unit::mcdc_conditions_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const auto& d : decisions_) n += d.num_conditions;
  return n;
}

std::int64_t Unit::mcdc_conditions_demonstrated() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t demonstrated = 0;
  for (const auto& d : decisions_) {
    demonstrated += McdcDemonstrated(d.num_conditions, d.vectors);
  }
  return demonstrated;
}

int Unit::declared_decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(decisions_.size());
}

int Unit::decision_conditions(int decision_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  CERTKIT_CHECK(decision_id >= 0 &&
                decision_id < static_cast<int>(decisions_.size()));
  return decisions_[static_cast<std::size_t>(decision_id)].num_conditions;
}

UnitCover Unit::TakeCover() const {
  UnitCover cover;
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < declared_statements_; ++i) {
    if (stmt_hits_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed) > 0) {
      cover.stmts.insert(i);
    }
  }
  for (int i = 0; i < static_cast<int>(decisions_.size()); ++i) {
    const DecisionRecord& rec = decisions_[static_cast<std::size_t>(i)];
    if (!rec.seen_true && !rec.seen_false && rec.vectors.empty()) continue;
    DecisionCover& dec = cover.decisions[i];
    dec.num_conditions = rec.num_conditions;
    dec.seen_true = rec.seen_true;
    dec.seen_false = rec.seen_false;
    dec.vectors = rec.vectors;
  }
  return cover;
}

double Unit::McdcCoverage() const {
  const std::int64_t total = mcdc_conditions_total();
  if (total == 0) return 1.0;
  return static_cast<double>(mcdc_conditions_demonstrated()) /
         static_cast<double>(total);
}

void Unit::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& h : stmt_hits_) h.store(0, std::memory_order_relaxed);
  for (auto& d : decisions_) {
    d.seen_true = d.seen_false = false;
    d.vectors.clear();
  }
  for (auto& f : functions_) f.hit = false;
  for (auto& c : calls_) c.hit = false;
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();
  return *instance;
}

Unit& Registry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = units_.find(name);
  if (it == units_.end()) {
    it = units_.emplace(name, std::make_unique<Unit>(name)).first;
  }
  return *it->second;
}

std::vector<const Unit*> Registry::Units() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Unit*> out;
  out.reserve(units_.size());
  for (const auto& [name, unit] : units_) out.push_back(unit.get());
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, unit] : units_) unit->Reset();
}

std::vector<CoverageRow> Snapshot() {
  std::vector<CoverageRow> rows;
  for (const Unit* u : Registry::Instance().Units()) {
    rows.push_back(CoverageRow{u->name(), u->StatementCoverage(),
                               u->BranchCoverage(), u->McdcCoverage()});
  }
  return rows;
}

CoverSet SnapshotCover() {
  CoverSet cover;
  for (const Unit* u : Registry::Instance().Units()) {
    cover[u->name()] = u->TakeCover();
  }
  return cover;
}

CoverageRow CoverRow(const Unit& unit, const UnitCover& cover) {
  CoverageRow row;
  row.unit = unit.name();

  const std::int64_t stmts_total = unit.statements_total();
  if (stmts_total == 0) {
    row.statement = 1.0;
  } else {
    std::int64_t hit = 0;
    for (const int id : cover.stmts) {
      if (id >= 0 && id < stmts_total) ++hit;
    }
    row.statement = static_cast<double>(hit) /
                    static_cast<double>(stmts_total);
  }

  const int decisions = unit.declared_decisions();
  if (decisions == 0) {
    row.branch = 1.0;
    row.mcdc = 1.0;
    return row;
  }
  std::int64_t outcomes = 0;
  std::int64_t conditions_total = 0;
  std::int64_t conditions_shown = 0;
  for (int d = 0; d < decisions; ++d) {
    const int num_conditions = unit.decision_conditions(d);
    conditions_total += num_conditions;
    const auto it = cover.decisions.find(d);
    if (it == cover.decisions.end()) continue;
    if (it->second.seen_true) ++outcomes;
    if (it->second.seen_false) ++outcomes;
    conditions_shown += McdcDemonstrated(num_conditions, it->second.vectors);
  }
  row.branch = static_cast<double>(outcomes) / (2.0 * decisions);
  row.mcdc = conditions_total == 0
                 ? 1.0
                 : static_cast<double>(conditions_shown) /
                       static_cast<double>(conditions_total);
  return row;
}

ThreadCapture::ThreadCapture() {
  CERTKIT_CHECK_MSG(t_capture == nullptr,
                    "nested ThreadCapture on the same thread");
  t_capture = this;
}

ThreadCapture::~ThreadCapture() {
  if (t_capture == this) t_capture = nullptr;
}

CoverSet ThreadCapture::Take() {
  CERTKIT_CHECK_MSG(t_capture == this,
                    "ThreadCapture::Take on a different thread");
  CoverSet out;
  for (auto& [unit, cover] : captured_) {
    out[unit->name()] = std::move(cover);
  }
  captured_.clear();
  return out;
}

CoverageRow Average(const std::vector<CoverageRow>& rows) {
  CoverageRow avg;
  avg.unit = "average";
  if (rows.empty()) return avg;
  for (const auto& r : rows) {
    avg.statement += r.statement;
    avg.branch += r.branch;
    avg.mcdc += r.mcdc;
  }
  const double n = static_cast<double>(rows.size());
  avg.statement /= n;
  avg.branch /= n;
  avg.mcdc /= n;
  return avg;
}

}  // namespace certkit::cov
