// kernels: 2D/3D stencil kernels on the GPU-on-CPU layer, fully instrumented
// with coverage probes — the subject of Figure 6 ("coverage for a CUDA code
// modified to run in the CPU", via cuda4cpu in the paper).
//
// Each kernel supports three boundary modes. A typical run exercises only
// one of them, which is exactly why the paper's Figure 6 reports less than
// 100% statement and branch coverage for these kernels.
#ifndef KERNELS_STENCIL_H_
#define KERNELS_STENCIL_H_

#include "coverage/coverage.h"
#include "gpusim/gpusim.h"

namespace kernels::stencil {

enum class Boundary {
  kZero,      // out-of-range reads as 0
  kPeriodic,  // wrap around
  kReflect,   // mirror at the edge
};

struct StencilOptions {
  Boundary boundary = Boundary::kZero;
  float center_weight = 0.5f;
  float neighbor_weight = 0.125f;
};

// 5-point 2D stencil: out[y][x] = wc*in[y][x] + wn*(4 neighbors).
// Instrumented as coverage unit "stencil/stencil2d.cu".
void Stencil2D5Point(const float* in, float* out, int h, int w,
                     const StencilOptions& options = {},
                     gpusim::Device& device = gpusim::Device::Instance());

// 7-point 3D stencil. Instrumented as coverage unit "stencil/stencil3d.cu".
void Stencil3D7Point(const float* in, float* out, int d, int h, int w,
                     const StencilOptions& options = {},
                     gpusim::Device& device = gpusim::Device::Instance());

// The coverage units (registered on first use).
certkit::cov::Unit& Stencil2DCoverage();
certkit::cov::Unit& Stencil3DCoverage();

}  // namespace kernels::stencil

#endif  // KERNELS_STENCIL_H_
