#include "kernels/conv.h"

#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "kernels/gemm.h"
#include "support/check.h"

namespace kernels {

namespace {

float InputAt(const float* input, const ConvShape& s, int n, int c, int y,
              int x) {
  if (y < 0 || y >= s.in_h || x < 0 || x >= s.in_w) return 0.0f;
  return input[((static_cast<std::size_t>(n) * s.in_channels + c) * s.in_h +
                y) *
                   s.in_w +
               x];
}

}  // namespace

void Conv2dNaive(const float* input, const float* weights, const float* bias,
                 float* output, const ConvShape& s) {
  CERTKIT_CHECK(s.in_h > 0 && s.in_w > 0 && s.stride > 0);
  const int oh = s.OutH(), ow = s.OutW();
  for (int n = 0; n < s.batch; ++n) {
    for (int oc = 0; oc < s.out_channels; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float acc = bias != nullptr ? bias[oc] : 0.0f;
          for (int ic = 0; ic < s.in_channels; ++ic) {
            for (int ky = 0; ky < s.kernel_h; ++ky) {
              for (int kx = 0; kx < s.kernel_w; ++kx) {
                const int iy = y * s.stride - s.pad + ky;
                const int ix = x * s.stride - s.pad + kx;
                acc += InputAt(input, s, n, ic, iy, ix) *
                       weights[((static_cast<std::size_t>(oc) *
                                     s.in_channels +
                                 ic) *
                                    s.kernel_h +
                                ky) *
                                   s.kernel_w +
                               kx];
              }
            }
          }
          output[((static_cast<std::size_t>(n) * s.out_channels + oc) * oh +
                  y) *
                     ow +
                 x] = acc;
        }
      }
    }
  }
}

namespace cudnn_sim {

void Conv2d(const float* input, const float* weights, const float* bias,
            float* output, const ConvShape& s, gpusim::Device& device) {
  CERTKIT_CHECK(s.in_h > 0 && s.in_w > 0 && s.stride > 0);
  const int oh = s.OutH(), ow = s.OutW();
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>(s.out_channels);
  grid.y = static_cast<unsigned>(s.batch);
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
    const int oc = static_cast<int>(ctx.block_idx.x);
    const int n = static_cast<int>(ctx.block_idx.y);
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    float* out_plane =
        output + ((static_cast<std::size_t>(n) * s.out_channels + oc) * oh) *
                     ow;
    // Initialize with bias.
    for (int i = 0; i < oh * ow; ++i) out_plane[i] = b;
    // Tuned loop order: channel-major with kernel offsets hoisted, so the
    // innermost loop is a contiguous multiply-accumulate along x.
    for (int ic = 0; ic < s.in_channels; ++ic) {
      const float* in_plane =
          input +
          ((static_cast<std::size_t>(n) * s.in_channels + ic) * s.in_h) *
              s.in_w;
      const float* w_plane =
          weights + ((static_cast<std::size_t>(oc) * s.in_channels + ic) *
                     s.kernel_h) *
                        s.kernel_w;
      for (int ky = 0; ky < s.kernel_h; ++ky) {
        for (int kx = 0; kx < s.kernel_w; ++kx) {
          const float wv = w_plane[ky * s.kernel_w + kx];
          if (wv == 0.0f) continue;
          for (int y = 0; y < oh; ++y) {
            const int iy = y * s.stride - s.pad + ky;
            if (iy < 0 || iy >= s.in_h) continue;
            const float* in_row = in_plane + static_cast<std::size_t>(iy) *
                                                 s.in_w;
            float* out_row = out_plane + static_cast<std::size_t>(y) * ow;
            // Clamp the x range so the inner loop needs no bounds checks.
            int x0 = 0;
            while (x0 < ow && x0 * s.stride - s.pad + kx < 0) ++x0;
            int x1 = ow;
            while (x1 > x0 && (x1 - 1) * s.stride - s.pad + kx >= s.in_w) {
              --x1;
            }
            const int base = -s.pad + kx;
            for (int x = x0; x < x1; ++x) {
              out_row[x] += wv * in_row[x * s.stride + base];
            }
          }
        }
      }
    }
  });
}

}  // namespace cudnn_sim

namespace isaac_sim {

namespace {

struct ShapeKey {
  int b, ic, h, w, oc, kh, kw, stride, pad;
  bool operator<(const ShapeKey& o) const {
    return std::tie(b, ic, h, w, oc, kh, kw, stride, pad) <
           std::tie(o.b, o.ic, o.h, o.w, o.oc, o.kh, o.kw, o.stride, o.pad);
  }
};

ShapeKey KeyOf(const ConvShape& s) {
  return ShapeKey{s.batch, s.in_channels, s.in_h,  s.in_w, s.out_channels,
                  s.kernel_h, s.kernel_w, s.stride, s.pad};
}

std::mutex g_cache_mu;
std::map<ShapeKey, int> g_tuned;
bool g_timing_tuning = false;

// Candidate GEMM tile configurations the auto-tuner explores.
using GemmFn = void (*)(const float*, const float*, float*, GemmShape,
                        gpusim::Device&);
constexpr int kNumCandidates = 4;

struct TileDims {
  int tm, tn;
};
constexpr TileDims kCandidateTiles[kNumCandidates] = {
    {32, 32}, {64, 64}, {16, 128}, {128, 16}};

void GemmCand0(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<32, 32>(a, b, c, s, d);
}
void GemmCand1(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<64, 64>(a, b, c, s, d);
}
void GemmCand2(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<16, 128>(a, b, c, s, d);
}
void GemmCand3(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<128, 16>(a, b, c, s, d);
}

GemmFn Candidate(int index) {
  switch (index) {
    case 0:
      return &GemmCand0;
    case 1:
      return &GemmCand1;
    case 2:
      return &GemmCand2;
    default:
      return &GemmCand3;
  }
}

// Per-thread im2col/GEMM scratch arena. Conv2d is called per layer per
// frame on hot paths (detector inference, campaign candidates); reusing the
// buffers across calls on the same thread removes a fresh heap allocation
// per Conv2d call. Thread-local, so concurrent candidates on a worker
// fleet never share scratch.
struct Arena {
  std::vector<float> cols;   // im2col matrix [K, batch*OH*OW]
  std::vector<float> fused;  // batched GEMM output [M, batch*OH*OW]
  std::vector<float> best;   // timing-mode best-candidate output copy
};

Arena& LocalArena() {
  thread_local Arena arena;
  return arena;
}

// im2col over the whole batch: expands input patches into one
// [Cin*KH*KW, N*OH*OW] matrix (image n occupies columns [n*OH*OW,
// (n+1)*OH*OW)). One device launch with a (patch_rows, batch) grid, so its
// cost is part of the device-side time — as it is for the real ISAAC
// pipeline — and an N-batch fills the SMs N times better than per-image
// launches.
void Im2ColBatched(const float* input, const ConvShape& s, float* cols,
                   gpusim::Device& device) {
  const int oh = s.OutH(), ow = s.OutW();
  const int patch_rows = s.in_channels * s.kernel_h * s.kernel_w;
  const std::size_t row_stride =
      static_cast<std::size_t>(s.batch) * oh * ow;
  gpusim::Dim3 grid{static_cast<unsigned>(patch_rows),
                    static_cast<unsigned>(s.batch), 1};
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
    const int row = static_cast<int>(ctx.block_idx.x);
    const int n = static_cast<int>(ctx.block_idx.y);
    const int kx = row % s.kernel_w;
    const int ky = (row / s.kernel_w) % s.kernel_h;
    const int ic = row / (s.kernel_w * s.kernel_h);
    float* out_row = cols + static_cast<std::size_t>(row) * row_stride +
                     static_cast<std::size_t>(n) * oh * ow;
    std::size_t idx = 0;
    for (int y = 0; y < oh; ++y) {
      const int iy = y * s.stride - s.pad + ky;
      for (int x = 0; x < ow; ++x, ++idx) {
        const int ix = x * s.stride - s.pad + kx;
        out_row[idx] = InputAt(input, s, n, ic, iy, ix);
      }
    }
  });
}

// One full convolution with candidate `config`: batched im2col + a single
// fused GEMM over all images. Every output element is the K-ordered dot
// product w[oc,:] . cols[:,j] for any tile size and any batch, so the
// result is bit-identical to per-image batch-1 calls.
void RunWithConfig(const float* input, const float* weights,
                   const float* bias, float* output, const ConvShape& s,
                   int config, gpusim::Device& device) {
  Arena& arena = LocalArena();
  const int oh = s.OutH(), ow = s.OutW();
  const int plane = oh * ow;
  const int patch = s.in_channels * s.kernel_h * s.kernel_w;
  const std::size_t cols_n = static_cast<std::size_t>(s.batch) * plane;
  arena.cols.resize(static_cast<std::size_t>(patch) * cols_n);
  Im2ColBatched(input, s, arena.cols.data(), device);

  GemmShape gs{s.out_channels, s.batch * plane, patch};
  float* gemm_out = output;
  if (s.batch > 1) {
    // The fused GEMM emits [oc, n*plane]; NCHW wants [n, oc, plane].
    arena.fused.resize(static_cast<std::size_t>(s.out_channels) * cols_n);
    gemm_out = arena.fused.data();
  }
  Candidate(config)(weights, arena.cols.data(), gemm_out, gs, device);

  if (s.batch > 1) {
    for (int n = 0; n < s.batch; ++n) {
      for (int oc = 0; oc < s.out_channels; ++oc) {
        const float* src = arena.fused.data() +
                           static_cast<std::size_t>(oc) * cols_n +
                           static_cast<std::size_t>(n) * plane;
        float* dst = output +
                     (static_cast<std::size_t>(n) * s.out_channels + oc) *
                         plane;
        const float b = bias != nullptr ? bias[oc] : 0.0f;
        for (int i = 0; i < plane; ++i) dst[i] = src[i] + b;
      }
    }
  } else if (bias != nullptr) {
    for (int oc = 0; oc < s.out_channels; ++oc) {
      float* out_plane = output + static_cast<std::size_t>(oc) * plane;
      for (int i = 0; i < plane; ++i) out_plane[i] += bias[oc];
    }
  }
}

std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Fixed per-launch cost in op units (fork-join on the block pool). Shared
// by all candidates, but kept in the model so costs stay comparable to the
// device's own launch accounting.
constexpr std::uint64_t kLaunchOverheadOps = 4096;

}  // namespace

int CandidateCount() { return kNumCandidates; }

int TunedConfigIndex(const ConvShape& shape) {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  auto it = g_tuned.find(KeyOf(shape));
  return it == g_tuned.end() ? -1 : it->second;
}

void ResetTuningCache() {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  g_tuned.clear();
}

void SetTimingTuning(bool enabled) {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  g_timing_tuning = enabled;
}

bool TimingTuningEnabled() {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  return g_timing_tuning;
}

std::uint64_t ModeledConfigCost(const ConvShape& shape, int config,
                                unsigned sm_count) {
  CERTKIT_CHECK(config >= 0 && config < kNumCandidates);
  CERTKIT_CHECK(sm_count >= 1);
  const TileDims tile = kCandidateTiles[config];
  const auto m = static_cast<std::uint64_t>(shape.out_channels);
  const auto n = static_cast<std::uint64_t>(shape.batch) * shape.OutH() *
                 shape.OutW();
  const auto k = static_cast<std::uint64_t>(shape.in_channels) *
                 shape.kernel_h * shape.kernel_w;
  const std::uint64_t blocks =
      CeilDiv(m, static_cast<std::uint64_t>(tile.tm)) *
      CeilDiv(n, static_cast<std::uint64_t>(tile.tn));
  // Same occupancy law as Device::RecordLaunch: whole blocks schedule onto
  // SMs in waves, and a partially-filled tile still pays for its full
  // footprint — that is what penalizes oversized tiles on small GEMMs and
  // undersized tiles (too many waves) on large ones.
  const std::uint64_t waves =
      CeilDiv(blocks, static_cast<std::uint64_t>(sm_count));
  return waves * static_cast<std::uint64_t>(tile.tm) * tile.tn * k +
         kLaunchOverheadOps;
}

int PickConfig(const ConvShape& shape, unsigned sm_count) {
  int best = 0;
  std::uint64_t best_cost = ModeledConfigCost(shape, 0, sm_count);
  for (int cand = 1; cand < kNumCandidates; ++cand) {
    const std::uint64_t cost = ModeledConfigCost(shape, cand, sm_count);
    if (cost < best_cost) {  // strict: ties keep the lowest index
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

void Conv2d(const float* input, const float* weights, const float* bias,
            float* output, const ConvShape& s, gpusim::Device& device) {
  CERTKIT_CHECK(s.in_h > 0 && s.in_w > 0 && s.stride > 0);
  int config = -1;
  bool timing = false;
  {
    std::lock_guard<std::mutex> lock(g_cache_mu);
    auto it = g_tuned.find(KeyOf(s));
    if (it != g_tuned.end()) config = it->second;
    timing = g_timing_tuning;
  }
  if (config >= 0) {
    RunWithConfig(input, weights, bias, output, s, config, device);
    return;
  }
  if (!timing) {
    // Deterministic cold path: rank candidates by the occupancy cost model
    // and run only the winner — one pass, same config on every run.
    config = PickConfig(s, device.sm_count());
    {
      std::lock_guard<std::mutex> lock(g_cache_mu);
      g_tuned[KeyOf(s)] = config;
    }
    RunWithConfig(input, weights, bias, output, s, config, device);
    return;
  }
  // Timing mode (fig8 benches): measure every candidate on the live input,
  // keeping a copy of the best candidate's output so the winner is never
  // re-run.
  Arena& arena = LocalArena();
  double best_time = 0.0;
  int best = 0;
  for (int cand = 0; cand < kNumCandidates; ++cand) {
    const auto t0 = std::chrono::steady_clock::now();
    RunWithConfig(input, weights, bias, output, s, cand, device);
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    if (cand == 0 || dt < best_time) {
      best_time = dt;
      best = cand;
      if (cand < kNumCandidates - 1) {
        arena.best.assign(output, output + s.OutputSize());
      }
    }
  }
  if (best < kNumCandidates - 1) {
    std::memcpy(output, arena.best.data(),
                s.OutputSize() * sizeof(float));
  }
  {
    std::lock_guard<std::mutex> lock(g_cache_mu);
    g_tuned[KeyOf(s)] = best;
  }
}

}  // namespace isaac_sim

}  // namespace kernels
