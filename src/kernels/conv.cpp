#include "kernels/conv.h"

#include <chrono>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "kernels/gemm.h"
#include "support/check.h"

namespace kernels {

namespace {

float InputAt(const float* input, const ConvShape& s, int n, int c, int y,
              int x) {
  if (y < 0 || y >= s.in_h || x < 0 || x >= s.in_w) return 0.0f;
  return input[((static_cast<std::size_t>(n) * s.in_channels + c) * s.in_h +
                y) *
                   s.in_w +
               x];
}

}  // namespace

void Conv2dNaive(const float* input, const float* weights, const float* bias,
                 float* output, const ConvShape& s) {
  CERTKIT_CHECK(s.in_h > 0 && s.in_w > 0 && s.stride > 0);
  const int oh = s.OutH(), ow = s.OutW();
  for (int n = 0; n < s.batch; ++n) {
    for (int oc = 0; oc < s.out_channels; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float acc = bias != nullptr ? bias[oc] : 0.0f;
          for (int ic = 0; ic < s.in_channels; ++ic) {
            for (int ky = 0; ky < s.kernel_h; ++ky) {
              for (int kx = 0; kx < s.kernel_w; ++kx) {
                const int iy = y * s.stride - s.pad + ky;
                const int ix = x * s.stride - s.pad + kx;
                acc += InputAt(input, s, n, ic, iy, ix) *
                       weights[((static_cast<std::size_t>(oc) *
                                     s.in_channels +
                                 ic) *
                                    s.kernel_h +
                                ky) *
                                   s.kernel_w +
                               kx];
              }
            }
          }
          output[((static_cast<std::size_t>(n) * s.out_channels + oc) * oh +
                  y) *
                     ow +
                 x] = acc;
        }
      }
    }
  }
}

namespace cudnn_sim {

void Conv2d(const float* input, const float* weights, const float* bias,
            float* output, const ConvShape& s, gpusim::Device& device) {
  CERTKIT_CHECK(s.in_h > 0 && s.in_w > 0 && s.stride > 0);
  const int oh = s.OutH(), ow = s.OutW();
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>(s.out_channels);
  grid.y = static_cast<unsigned>(s.batch);
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
    const int oc = static_cast<int>(ctx.block_idx.x);
    const int n = static_cast<int>(ctx.block_idx.y);
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    float* out_plane =
        output + ((static_cast<std::size_t>(n) * s.out_channels + oc) * oh) *
                     ow;
    // Initialize with bias.
    for (int i = 0; i < oh * ow; ++i) out_plane[i] = b;
    // Tuned loop order: channel-major with kernel offsets hoisted, so the
    // innermost loop is a contiguous multiply-accumulate along x.
    for (int ic = 0; ic < s.in_channels; ++ic) {
      const float* in_plane =
          input +
          ((static_cast<std::size_t>(n) * s.in_channels + ic) * s.in_h) *
              s.in_w;
      const float* w_plane =
          weights + ((static_cast<std::size_t>(oc) * s.in_channels + ic) *
                     s.kernel_h) *
                        s.kernel_w;
      for (int ky = 0; ky < s.kernel_h; ++ky) {
        for (int kx = 0; kx < s.kernel_w; ++kx) {
          const float wv = w_plane[ky * s.kernel_w + kx];
          if (wv == 0.0f) continue;
          for (int y = 0; y < oh; ++y) {
            const int iy = y * s.stride - s.pad + ky;
            if (iy < 0 || iy >= s.in_h) continue;
            const float* in_row = in_plane + static_cast<std::size_t>(iy) *
                                                 s.in_w;
            float* out_row = out_plane + static_cast<std::size_t>(y) * ow;
            // Clamp the x range so the inner loop needs no bounds checks.
            int x0 = 0;
            while (x0 < ow && x0 * s.stride - s.pad + kx < 0) ++x0;
            int x1 = ow;
            while (x1 > x0 && (x1 - 1) * s.stride - s.pad + kx >= s.in_w) {
              --x1;
            }
            const int base = -s.pad + kx;
            for (int x = x0; x < x1; ++x) {
              out_row[x] += wv * in_row[x * s.stride + base];
            }
          }
        }
      }
    }
  });
}

}  // namespace cudnn_sim

namespace isaac_sim {

namespace {

struct ShapeKey {
  int b, ic, h, w, oc, kh, kw, stride, pad;
  bool operator<(const ShapeKey& o) const {
    return std::tie(b, ic, h, w, oc, kh, kw, stride, pad) <
           std::tie(o.b, o.ic, o.h, o.w, o.oc, o.kh, o.kw, o.stride, o.pad);
  }
};

ShapeKey KeyOf(const ConvShape& s) {
  return ShapeKey{s.batch, s.in_channels, s.in_h,  s.in_w, s.out_channels,
                  s.kernel_h, s.kernel_w, s.stride, s.pad};
}

std::mutex g_cache_mu;
std::map<ShapeKey, int> g_tuned;

// Candidate GEMM tile configurations the auto-tuner explores.
using GemmFn = void (*)(const float*, const float*, float*, GemmShape,
                        gpusim::Device&);
constexpr int kNumCandidates = 4;

void GemmCand0(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<32, 32>(a, b, c, s, d);
}
void GemmCand1(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<64, 64>(a, b, c, s, d);
}
void GemmCand2(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<16, 128>(a, b, c, s, d);
}
void GemmCand3(const float* a, const float* b, float* c, GemmShape s,
               gpusim::Device& d) {
  cutlass_sim::Sgemm<128, 16>(a, b, c, s, d);
}

GemmFn Candidate(int index) {
  switch (index) {
    case 0:
      return &GemmCand0;
    case 1:
      return &GemmCand1;
    case 2:
      return &GemmCand2;
    default:
      return &GemmCand3;
  }
}

// im2col: expands input patches into a [Cin*KH*KW, OH*OW] matrix per image.
// Runs as a device kernel (one block per patch row) so that its cost is part
// of the device-side time, as it is for the real ISAAC pipeline.
void Im2Col(const float* input, const ConvShape& s, int n, float* cols,
            gpusim::Device& device) {
  const int oh = s.OutH(), ow = s.OutW();
  const int patch_rows = s.in_channels * s.kernel_h * s.kernel_w;
  gpusim::Dim3 grid{static_cast<unsigned>(patch_rows), 1, 1};
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
    const int row = static_cast<int>(ctx.block_idx.x);
    const int kx = row % s.kernel_w;
    const int ky = (row / s.kernel_w) % s.kernel_h;
    const int ic = row / (s.kernel_w * s.kernel_h);
    float* out_row =
        cols + static_cast<std::size_t>(row) * oh * ow;
    std::size_t idx = 0;
    for (int y = 0; y < oh; ++y) {
      const int iy = y * s.stride - s.pad + ky;
      for (int x = 0; x < ow; ++x, ++idx) {
        const int ix = x * s.stride - s.pad + kx;
        out_row[idx] = InputAt(input, s, n, ic, iy, ix);
      }
    }
  });
}

void RunWithConfig(const float* input, const float* weights,
                   const float* bias, float* output, const ConvShape& s,
                   int config, gpusim::Device& device,
                   std::vector<float>* cols_storage) {
  const int oh = s.OutH(), ow = s.OutW();
  const int patch = s.in_channels * s.kernel_h * s.kernel_w;
  cols_storage->resize(static_cast<std::size_t>(patch) * oh * ow);
  GemmShape gs{s.out_channels, oh * ow, patch};
  for (int n = 0; n < s.batch; ++n) {
    Im2Col(input, s, n, cols_storage->data(), device);
    float* out_image =
        output + static_cast<std::size_t>(n) * s.out_channels * oh * ow;
    Candidate(config)(weights, cols_storage->data(), out_image, gs, device);
    if (bias != nullptr) {
      for (int oc = 0; oc < s.out_channels; ++oc) {
        float* plane = out_image + static_cast<std::size_t>(oc) * oh * ow;
        for (int i = 0; i < oh * ow; ++i) plane[i] += bias[oc];
      }
    }
  }
}

}  // namespace

int CandidateCount() { return kNumCandidates; }

int TunedConfigIndex(const ConvShape& shape) {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  auto it = g_tuned.find(KeyOf(shape));
  return it == g_tuned.end() ? -1 : it->second;
}

void ResetTuningCache() {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  g_tuned.clear();
}

void Conv2d(const float* input, const float* weights, const float* bias,
            float* output, const ConvShape& s, gpusim::Device& device) {
  CERTKIT_CHECK(s.in_h > 0 && s.in_w > 0 && s.stride > 0);
  int config = -1;
  {
    std::lock_guard<std::mutex> lock(g_cache_mu);
    auto it = g_tuned.find(KeyOf(s));
    if (it != g_tuned.end()) config = it->second;
  }
  std::vector<float> cols;
  if (config < 0) {
    // Input-aware auto-tuning: measure every candidate on the live input.
    double best_time = 0.0;
    int best = 0;
    for (int cand = 0; cand < kNumCandidates; ++cand) {
      const auto t0 = std::chrono::steady_clock::now();
      RunWithConfig(input, weights, bias, output, s, cand, device, &cols);
      const auto t1 = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(t1 - t0).count();
      if (cand == 0 || dt < best_time) {
        best_time = dt;
        best = cand;
      }
    }
    {
      std::lock_guard<std::mutex> lock(g_cache_mu);
      g_tuned[KeyOf(s)] = best;
    }
    config = best;
  }
  RunWithConfig(input, weights, bias, output, s, config, device, &cols);
}

}  // namespace isaac_sim

}  // namespace kernels
