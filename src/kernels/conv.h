// kernels: 2D convolution implementations used by Figures 7 and 8b.
//
//  * cudnn_sim — the "closed-source vendor DNN library": direct convolution
//    with a tuned loop nest, parallelized over output tiles.
//  * isaac_sim — the "open-source input-aware auto-tuner" (ISAAC, SC'17):
//    im2col + tiled GEMM where the tile configuration is selected *per input
//    shape* by measuring candidate configurations on first use and caching
//    the winner.
//  * naive     — single-threaded reference and correctness oracle.
//
// Tensors are NCHW row-major float. Weights are [Cout, Cin, KH, KW].
#ifndef KERNELS_CONV_H_
#define KERNELS_CONV_H_

#include <cstddef>
#include <cstdint>

#include "gpusim/gpusim.h"

namespace kernels {

struct ConvShape {
  int batch = 1;
  int in_channels = 1;
  int in_h = 0, in_w = 0;
  int out_channels = 1;
  int kernel_h = 3, kernel_w = 3;
  int stride = 1;
  int pad = 1;

  int OutH() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  int OutW() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::size_t InputSize() const {
    return static_cast<std::size_t>(batch) * in_channels * in_h * in_w;
  }
  std::size_t OutputSize() const {
    return static_cast<std::size_t>(batch) * out_channels * OutH() * OutW();
  }
  std::size_t WeightSize() const {
    return static_cast<std::size_t>(out_channels) * in_channels * kernel_h *
           kernel_w;
  }
  bool operator==(const ConvShape&) const = default;
};

// Single-threaded reference.
void Conv2dNaive(const float* input, const float* weights, const float* bias,
                 float* output, const ConvShape& shape);

namespace cudnn_sim {
// Direct convolution, parallelized over (batch, out_channel) slices.
void Conv2d(const float* input, const float* weights, const float* bias,
            float* output, const ConvShape& shape,
            gpusim::Device& device = gpusim::Device::Instance());
}  // namespace cudnn_sim

namespace isaac_sim {
// im2col + auto-tuned GEMM. The first call for a given shape ranks the
// candidate tile configurations with a deterministic cost model (the static
// mirror of gpusim::Device's launch/occupancy accounting) and caches the
// winner; subsequent calls use the cached configuration. The batch
// dimension is fused into a single wide GEMM, so an N-batch call issues the
// same number of device launches as a single image and its outputs are
// bit-identical to N separate batch-1 calls (every output element is the
// same K-ordered dot product regardless of tiling).
void Conv2d(const float* input, const float* weights, const float* bias,
            float* output, const ConvShape& shape,
            gpusim::Device& device = gpusim::Device::Instance());

// Exposed for tests: which tile configuration the tuner picked for `shape`
// (-1 if the shape has not been tuned yet).
int TunedConfigIndex(const ConvShape& shape);
// Number of candidate configurations the tuner explores.
int CandidateCount();
// Clears the tuning cache (tests, campaign candidate setup).
void ResetTuningCache();

// The deterministic ranking signal: modeled cost (integer op units) of
// running `shape`'s GEMM with candidate `config` on a device with
// `sm_count` SMs. waves(blocks, sm) * padded-tile work + per-launch
// overhead — no wall clock, no floating point, so the ranking is identical
// on every run, machine, and thread count.
std::uint64_t ModeledConfigCost(const ConvShape& shape, int config,
                                unsigned sm_count);
// The tuner's pure selection function: argmin of ModeledConfigCost with
// lowest-index tie-break.
int PickConfig(const ConvShape& shape, unsigned sm_count);

// Re-measure mode for the Figure 8 benches: when enabled, cold shapes are
// timed on the live input (wall clock; every candidate runs once and the
// best candidate's already-computed output is kept — never a final re-run).
// Off by default: tuning is then the deterministic cost model above.
void SetTimingTuning(bool enabled);
bool TimingTuningEnabled();
}  // namespace isaac_sim

}  // namespace kernels

#endif  // KERNELS_CONV_H_
