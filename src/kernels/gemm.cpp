#include "kernels/gemm.h"

#include <algorithm>

namespace kernels {

namespace cpublas {

void Sgemm(const float* a, const float* b, float* c, GemmShape s) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  // Deliberately the textbook i-j-k loop: single-threaded with a stride-N
  // inner access pattern. This is the "CPU library" reference point whose
  // gap to the device kernels Figure 7 reports.
  for (int i = 0; i < s.m; ++i) {
    for (int j = 0; j < s.n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < s.k; ++kk) {
        acc += a[static_cast<std::size_t>(i) * s.k + kk] *
               b[static_cast<std::size_t>(kk) * s.n + j];
      }
      c[static_cast<std::size_t>(i) * s.n + j] = acc;
    }
  }
}

}  // namespace cpublas

namespace cublas_sim {

namespace {
constexpr int kTileM = 64;
constexpr int kTileN = 64;

// Hand-tuned block kernel: 2x2 register blocking over the output tile.
void ComputeTileTuned(const float* a, const float* b, float* c, GemmShape s,
                      int bm, int bn) {
  const int m0 = bm * kTileM;
  const int n0 = bn * kTileN;
  const int m1 = m0 + kTileM < s.m ? m0 + kTileM : s.m;
  const int n1 = n0 + kTileN < s.n ? n0 + kTileN : s.n;

  int i = m0;
  for (; i + 2 <= m1; i += 2) {
    const float* a0 = a + static_cast<std::size_t>(i) * s.k;
    const float* a1 = a0 + s.k;
    float* c0 = c + static_cast<std::size_t>(i) * s.n;
    float* c1 = c0 + s.n;
    for (int j = n0; j < n1; ++j) {
      c0[j] = 0.0f;
      c1[j] = 0.0f;
    }
    for (int kk = 0; kk < s.k; ++kk) {
      const float av0 = a0[kk];
      const float av1 = a1[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * s.n;
      int j = n0;
      for (; j + 2 <= n1; j += 2) {
        const float b0 = brow[j];
        const float b1 = brow[j + 1];
        c0[j] += av0 * b0;
        c0[j + 1] += av0 * b1;
        c1[j] += av1 * b0;
        c1[j + 1] += av1 * b1;
      }
      for (; j < n1; ++j) {
        c0[j] += av0 * brow[j];
        c1[j] += av1 * brow[j];
      }
    }
  }
  for (; i < m1; ++i) {  // remainder row
    const float* arow = a + static_cast<std::size_t>(i) * s.k;
    float* crow = c + static_cast<std::size_t>(i) * s.n;
    for (int j = n0; j < n1; ++j) crow[j] = 0.0f;
    for (int kk = 0; kk < s.k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * s.n;
      for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void Sgemm(const float* a, const float* b, float* c, GemmShape s,
           gpusim::Device& device) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>((s.n + kTileN - 1) / kTileN);
  grid.y = static_cast<unsigned>((s.m + kTileM - 1) / kTileM);
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
                  ComputeTileTuned(a, b, c, s,
                                   static_cast<int>(ctx.block_idx.y),
                                   static_cast<int>(ctx.block_idx.x));
                });
}

}  // namespace cublas_sim

namespace micro {

namespace {

// Register-tile candidates. The architectural budget below is 16 SIMD
// registers × 4 fp32 lanes = 64 accumulator lanes; tiles above it stay in
// the table so the spill penalty term is exercised, not hand-pruned.
constexpr BlockConfig kCandidates[] = {
    {4, 8, 1024}, {8, 8, 512}, {4, 16, 512}, {2, 16, 1024}, {8, 16, 256},
};
constexpr int kNumCandidates =
    static_cast<int>(sizeof(kCandidates) / sizeof(kCandidates[0]));
constexpr std::int64_t kRegisterBudget = 64;   // accumulator lanes
constexpr std::int64_t kPanelSetupOps = 64;    // per cache-panel K-loop setup
constexpr std::int64_t kForkOverheadOps = 4096;  // per row stripe, mirrors
                                                 // isaac_sim's launch term

std::int64_t CeilDiv64(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// One mr×nr register tile: accumulators live across the whole K loop, K is
// never split, and every acc[r][cc] sees the same mul-then-add sequence a
// scalar loop would — the bit-exactness contract from the header.
template <typename In, typename Acc, int MR, int NR>
inline void MicroTile(const In* a, const In* b, Acc* c, GemmShape s, int i0,
                      int j0) {
  Acc acc[MR][NR] = {};
  for (int kk = 0; kk < s.k; ++kk) {
    const In* brow = b + static_cast<std::size_t>(kk) * s.n + j0;
    for (int r = 0; r < MR; ++r) {
      const Acc av =
          static_cast<Acc>(a[static_cast<std::size_t>(i0 + r) * s.k + kk]);
      for (int cc = 0; cc < NR; ++cc) {
        acc[r][cc] += av * static_cast<Acc>(brow[cc]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    Acc* crow = c + static_cast<std::size_t>(i0 + r) * s.n + j0;
    for (int cc = 0; cc < NR; ++cc) crow[cc] = acc[r][cc];
  }
}

// Fringe rectangle [i0,i1)×[j0,j1): scalar, one K-ordered accumulator per
// element, so fringe elements round exactly like tiled ones.
template <typename In, typename Acc>
void FringeRect(const In* a, const In* b, Acc* c, GemmShape s, int i0, int i1,
                int j0, int j1) {
  for (int i = i0; i < i1; ++i) {
    const In* arow = a + static_cast<std::size_t>(i) * s.k;
    Acc* crow = c + static_cast<std::size_t>(i) * s.n;
    for (int j = j0; j < j1; ++j) {
      Acc acc = 0;
      for (int kk = 0; kk < s.k; ++kk) {
        acc += static_cast<Acc>(arow[kk]) *
               static_cast<Acc>(b[static_cast<std::size_t>(kk) * s.n + j]);
      }
      crow[j] = acc;
    }
  }
}

// Rows [r0,r1) of C, swept in nc-column cache panels of B.
template <typename In, typename Acc, int MR, int NR>
void StripeBody(const In* a, const In* b, Acc* c, GemmShape s, int r0, int r1,
                int nc) {
  for (int jc = 0; jc < s.n; jc += nc) {
    const int jc1 = std::min(jc + nc, s.n);
    int i = r0;
    for (; i + MR <= r1; i += MR) {
      int j = jc;
      for (; j + NR <= jc1; j += NR) {
        MicroTile<In, Acc, MR, NR>(a, b, c, s, i, j);
      }
      FringeRect(a, b, c, s, i, i + MR, j, jc1);
    }
    FringeRect(a, b, c, s, i, r1, jc, jc1);
  }
}

template <typename In, typename Acc>
void StripeDispatch(const In* a, const In* b, Acc* c, GemmShape s, int r0,
                    int r1, BlockConfig cfg) {
  if (cfg.mr == 4 && cfg.nr == 8) {
    StripeBody<In, Acc, 4, 8>(a, b, c, s, r0, r1, cfg.nc);
  } else if (cfg.mr == 8 && cfg.nr == 8) {
    StripeBody<In, Acc, 8, 8>(a, b, c, s, r0, r1, cfg.nc);
  } else if (cfg.mr == 4 && cfg.nr == 16) {
    StripeBody<In, Acc, 4, 16>(a, b, c, s, r0, r1, cfg.nc);
  } else if (cfg.mr == 2 && cfg.nr == 16) {
    StripeBody<In, Acc, 2, 16>(a, b, c, s, r0, r1, cfg.nc);
  } else if (cfg.mr == 8 && cfg.nr == 16) {
    StripeBody<In, Acc, 8, 16>(a, b, c, s, r0, r1, cfg.nc);
  } else {
    StripeBody<In, Acc, 4, 8>(a, b, c, s, r0, r1, cfg.nc);
  }
}

// Outer blocking: contiguous row stripes, one per pool lane. Disjoint C rows,
// so any stripe count (including 1, the inline path) is bit-identical.
template <typename In, typename Acc>
void GemmBlocked(const In* a, const In* b, Acc* c, GemmShape s,
                 certkit::support::ThreadPool* pool) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  const int stripes =
      pool != nullptr ? std::max(1, pool->thread_count() + 1) : 1;
  const BlockConfig cfg = PickBlockConfig(s, stripes);
  if (stripes <= 1 || s.m < 2 * stripes) {
    StripeDispatch(a, b, c, s, 0, s.m, cfg);
    return;
  }
  const int rows_per =
      static_cast<int>(CeilDiv64(s.m, stripes));
  pool->ParallelFor(static_cast<std::size_t>(stripes), [&](std::size_t t) {
    const int r0 = static_cast<int>(t) * rows_per;
    const int r1 = std::min(r0 + rows_per, s.m);
    if (r0 < r1) StripeDispatch(a, b, c, s, r0, r1, cfg);
  });
}

}  // namespace

int CandidateCount() { return kNumCandidates; }

BlockConfig Candidate(int index) {
  CERTKIT_CHECK(index >= 0 && index < kNumCandidates);
  return kCandidates[index];
}

std::int64_t ModeledBlockCost(GemmShape s, BlockConfig cfg, int stripes) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  CERTKIT_CHECK(cfg.mr > 0 && cfg.nr > 0 && cfg.nc > 0);
  const std::int64_t lanes = std::max(1, stripes);
  const std::int64_t row_tiles = CeilDiv64(s.m, cfg.mr);
  const std::int64_t col_tiles = CeilDiv64(s.n, cfg.nr);
  // Padded MAC count: fringe tiles are modeled at full tile width, so
  // oversized tiles pay for the work their remainders waste.
  const std::int64_t padded_macs =
      row_tiles * cfg.mr * col_tiles * cfg.nr * static_cast<std::int64_t>(s.k);
  // Each row tile restarts the K loop once per cache panel of B.
  const std::int64_t panels = CeilDiv64(s.n, cfg.nc);
  const std::int64_t panel_ops =
      row_tiles * panels * (static_cast<std::int64_t>(s.k) + kPanelSetupOps);
  // A tile needs mr*nr accumulator lanes plus mr broadcast lanes; past the
  // architectural budget the "registers" spill and every MAC pays a reload.
  const std::int64_t spill =
      (static_cast<std::int64_t>(cfg.mr) * cfg.nr + cfg.mr > kRegisterBudget)
          ? padded_macs / 4
          : 0;
  return CeilDiv64(padded_macs + panel_ops + spill, lanes) +
         kForkOverheadOps * lanes;
}

BlockConfig PickBlockConfig(GemmShape s, int stripes) {
  int best = 0;
  std::int64_t best_cost = ModeledBlockCost(s, kCandidates[0], stripes);
  for (int i = 1; i < kNumCandidates; ++i) {
    const std::int64_t cost = ModeledBlockCost(s, kCandidates[i], stripes);
    if (cost < best_cost) {  // strict <: ties go to the lowest index
      best_cost = cost;
      best = i;
    }
  }
  return kCandidates[best];
}

void Sgemm(const float* a, const float* b, float* c, GemmShape s,
           certkit::support::ThreadPool* pool) {
  GemmBlocked<float, float>(a, b, c, s, pool);
}

void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
               GemmShape s, certkit::support::ThreadPool* pool) {
  GemmBlocked<std::int8_t, std::int32_t>(a, b, c, s, pool);
}

void GemmS16S32DotT(const std::int16_t* a, const std::int16_t* bt,
                    std::int32_t* c, GemmShape s) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  const int m = s.m, n = s.n, k = s.k;
  // 2×2 register tile of K-contiguous dot products: each accumulator is a
  // PMADDWD partial-sum vector, each loaded A/B K-slice feeds two products.
  int i = 0;
  for (; i + 2 <= m; i += 2) {
    const std::int16_t* a0 = a + static_cast<std::size_t>(i) * k;
    const std::int16_t* a1 = a0 + k;
    std::int32_t* c0 = c + static_cast<std::size_t>(i) * n;
    std::int32_t* c1 = c0 + n;
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const std::int16_t* b0 = bt + static_cast<std::size_t>(j) * k;
      const std::int16_t* b1 = b0 + k;
      std::int32_t acc00 = 0, acc01 = 0, acc10 = 0, acc11 = 0;
      for (int kk = 0; kk < k; ++kk) {
        const std::int32_t av0 = a0[kk], av1 = a1[kk];
        acc00 += av0 * b0[kk];
        acc01 += av0 * b1[kk];
        acc10 += av1 * b0[kk];
        acc11 += av1 * b1[kk];
      }
      c0[j] = acc00;
      c0[j + 1] = acc01;
      c1[j] = acc10;
      c1[j + 1] = acc11;
    }
    for (; j < n; ++j) {  // odd-N fringe column
      const std::int16_t* b0 = bt + static_cast<std::size_t>(j) * k;
      std::int32_t acc0 = 0, acc1 = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc0 += static_cast<std::int32_t>(a0[kk]) * b0[kk];
        acc1 += static_cast<std::int32_t>(a1[kk]) * b0[kk];
      }
      c0[j] = acc0;
      c1[j] = acc1;
    }
  }
  for (; i < m; ++i) {  // odd-M fringe row
    const std::int16_t* a0 = a + static_cast<std::size_t>(i) * k;
    std::int32_t* c0 = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const std::int16_t* b0 = bt + static_cast<std::size_t>(j) * k;
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(a0[kk]) * b0[kk];
      }
      c0[j] = acc;
    }
  }
}

void SgemmWithConfig(const float* a, const float* b, float* c, GemmShape s,
                     BlockConfig cfg) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  StripeDispatch(a, b, c, s, 0, s.m, cfg);
}

void GemmS8S32WithConfig(const std::int8_t* a, const std::int8_t* b,
                         std::int32_t* c, GemmShape s, BlockConfig cfg) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  StripeDispatch(a, b, c, s, 0, s.m, cfg);
}

}  // namespace micro

}  // namespace kernels
