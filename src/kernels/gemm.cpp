#include "kernels/gemm.h"

namespace kernels {

namespace cpublas {

void Sgemm(const float* a, const float* b, float* c, GemmShape s) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  // Deliberately the textbook i-j-k loop: single-threaded with a stride-N
  // inner access pattern. This is the "CPU library" reference point whose
  // gap to the device kernels Figure 7 reports.
  for (int i = 0; i < s.m; ++i) {
    for (int j = 0; j < s.n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < s.k; ++kk) {
        acc += a[static_cast<std::size_t>(i) * s.k + kk] *
               b[static_cast<std::size_t>(kk) * s.n + j];
      }
      c[static_cast<std::size_t>(i) * s.n + j] = acc;
    }
  }
}

}  // namespace cpublas

namespace cublas_sim {

namespace {
constexpr int kTileM = 64;
constexpr int kTileN = 64;

// Hand-tuned block kernel: 2x2 register blocking over the output tile.
void ComputeTileTuned(const float* a, const float* b, float* c, GemmShape s,
                      int bm, int bn) {
  const int m0 = bm * kTileM;
  const int n0 = bn * kTileN;
  const int m1 = m0 + kTileM < s.m ? m0 + kTileM : s.m;
  const int n1 = n0 + kTileN < s.n ? n0 + kTileN : s.n;

  int i = m0;
  for (; i + 2 <= m1; i += 2) {
    const float* a0 = a + static_cast<std::size_t>(i) * s.k;
    const float* a1 = a0 + s.k;
    float* c0 = c + static_cast<std::size_t>(i) * s.n;
    float* c1 = c0 + s.n;
    for (int j = n0; j < n1; ++j) {
      c0[j] = 0.0f;
      c1[j] = 0.0f;
    }
    for (int kk = 0; kk < s.k; ++kk) {
      const float av0 = a0[kk];
      const float av1 = a1[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * s.n;
      int j = n0;
      for (; j + 2 <= n1; j += 2) {
        const float b0 = brow[j];
        const float b1 = brow[j + 1];
        c0[j] += av0 * b0;
        c0[j + 1] += av0 * b1;
        c1[j] += av1 * b0;
        c1[j + 1] += av1 * b1;
      }
      for (; j < n1; ++j) {
        c0[j] += av0 * brow[j];
        c1[j] += av1 * brow[j];
      }
    }
  }
  for (; i < m1; ++i) {  // remainder row
    const float* arow = a + static_cast<std::size_t>(i) * s.k;
    float* crow = c + static_cast<std::size_t>(i) * s.n;
    for (int j = n0; j < n1; ++j) crow[j] = 0.0f;
    for (int kk = 0; kk < s.k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * s.n;
      for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void Sgemm(const float* a, const float* b, float* c, GemmShape s,
           gpusim::Device& device) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>((s.n + kTileN - 1) / kTileN);
  grid.y = static_cast<unsigned>((s.m + kTileM - 1) / kTileM);
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
                  ComputeTileTuned(a, b, c, s,
                                   static_cast<int>(ctx.block_idx.y),
                                   static_cast<int>(ctx.block_idx.x));
                });
}

}  // namespace cublas_sim

}  // namespace kernels
