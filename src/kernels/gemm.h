// kernels: single-precision GEMM implementations used by Figures 7 and 8a.
//
// Three stand-ins reproduce the paper's library comparison:
//  * cublas_sim  — the "closed-source vendor library": a fixed, hand-tuned
//    tiled GEMM (register-blocked inner kernel, one grid block per tile).
//  * cutlass_sim — the "open-source template library": the same decomposition
//    expressed as composable C++ templates over tile sizes, so device-wide
//    GEMMs are constructed from primitives (CUTLASS's design), reaching
//    performance comparable to the vendor kernel.
//  * cpublas     — the "CPU BLAS two orders of magnitude slower" reference
//    point: a single-threaded naive triple loop.
//
// All operate on row-major float matrices: C[M,N] = A[M,K] * B[K,N].
#ifndef KERNELS_GEMM_H_
#define KERNELS_GEMM_H_

#include <cstddef>

#include "gpusim/gpusim.h"
#include "support/check.h"

namespace kernels {

struct GemmShape {
  int m = 0, n = 0, k = 0;
  bool operator==(const GemmShape&) const = default;
};

// Naive single-threaded CPU reference (also the correctness oracle).
namespace cpublas {
void Sgemm(const float* a, const float* b, float* c, GemmShape shape);
}  // namespace cpublas

// "Vendor library": fixed tuned configuration.
namespace cublas_sim {
void Sgemm(const float* a, const float* b, float* c, GemmShape shape,
           gpusim::Device& device = gpusim::Device::Instance());
}  // namespace cublas_sim

// "Open template library": tile sizes are template parameters. A device-wide
// GEMM is composed from the block-level primitive, as in CUTLASS.
namespace cutlass_sim {

template <int kTileM, int kTileN>
struct TileGemm {
  static_assert(kTileM > 0 && kTileN > 0);

  // Computes the (bm, bn) output tile: a 2x2 register-blocked thread tile
  // inside the block tile, mirroring CUTLASS's threadblock/warp/thread
  // decomposition.
  static void ComputeTile(const float* a, const float* b, float* c,
                          GemmShape s, int bm, int bn) {
    const int m0 = bm * kTileM;
    const int n0 = bn * kTileN;
    const int m1 = m0 + kTileM < s.m ? m0 + kTileM : s.m;
    const int n1 = n0 + kTileN < s.n ? n0 + kTileN : s.n;

    int i = m0;
    for (; i + 2 <= m1; i += 2) {
      const float* a0 = a + static_cast<std::size_t>(i) * s.k;
      const float* a1 = a0 + s.k;
      float* c0 = c + static_cast<std::size_t>(i) * s.n;
      float* c1 = c0 + s.n;
      for (int j = n0; j < n1; ++j) {
        c0[j] = 0.0f;
        c1[j] = 0.0f;
      }
      for (int kk = 0; kk < s.k; ++kk) {
        const float av0 = a0[kk];
        const float av1 = a1[kk];
        const float* brow = b + static_cast<std::size_t>(kk) * s.n;
        int j = n0;
        for (; j + 2 <= n1; j += 2) {
          const float b0 = brow[j];
          const float b1 = brow[j + 1];
          c0[j] += av0 * b0;
          c0[j + 1] += av0 * b1;
          c1[j] += av1 * b0;
          c1[j + 1] += av1 * b1;
        }
        for (; j < n1; ++j) {
          c0[j] += av0 * brow[j];
          c1[j] += av1 * brow[j];
        }
      }
    }
    for (; i < m1; ++i) {  // remainder row
      const float* arow = a + static_cast<std::size_t>(i) * s.k;
      float* crow = c + static_cast<std::size_t>(i) * s.n;
      for (int j = n0; j < n1; ++j) crow[j] = 0.0f;
      for (int kk = 0; kk < s.k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + static_cast<std::size_t>(kk) * s.n;
        for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
      }
    }
  }
};

// Device-wide GEMM composed from the tile primitive.
template <int kTileM = 64, int kTileN = 64>
void Sgemm(const float* a, const float* b, float* c, GemmShape s,
           gpusim::Device& device = gpusim::Device::Instance()) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>((s.n + kTileN - 1) / kTileN);
  grid.y = static_cast<unsigned>((s.m + kTileM - 1) / kTileM);
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
                  TileGemm<kTileM, kTileN>::ComputeTile(
                      a, b, c, s, static_cast<int>(ctx.block_idx.y),
                      static_cast<int>(ctx.block_idx.x));
                });
}

}  // namespace cutlass_sim

}  // namespace kernels

#endif  // KERNELS_GEMM_H_
