// kernels: single-precision GEMM implementations used by Figures 7 and 8a.
//
// Three stand-ins reproduce the paper's library comparison:
//  * cublas_sim  — the "closed-source vendor library": a fixed, hand-tuned
//    tiled GEMM (register-blocked inner kernel, one grid block per tile).
//  * cutlass_sim — the "open-source template library": the same decomposition
//    expressed as composable C++ templates over tile sizes, so device-wide
//    GEMMs are constructed from primitives (CUTLASS's design), reaching
//    performance comparable to the vendor kernel.
//  * cpublas     — the "CPU BLAS two orders of magnitude slower" reference
//    point: a single-threaded naive triple loop.
//  * micro       — the real-hardware CPU path: a cache-blocked,
//    register-tiled microkernel (fp32 and int8→int32) whose block sizes are
//    picked by an integer cost model, never by wall clock.
//
// All operate on row-major float matrices: C[M,N] = A[M,K] * B[K,N].
#ifndef KERNELS_GEMM_H_
#define KERNELS_GEMM_H_

#include <cstddef>
#include <cstdint>

#include "gpusim/gpusim.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace kernels {

struct GemmShape {
  int m = 0, n = 0, k = 0;
  bool operator==(const GemmShape&) const = default;
};

// Naive single-threaded CPU reference (also the correctness oracle).
namespace cpublas {
void Sgemm(const float* a, const float* b, float* c, GemmShape shape);
}  // namespace cpublas

// "Vendor library": fixed tuned configuration.
namespace cublas_sim {
void Sgemm(const float* a, const float* b, float* c, GemmShape shape,
           gpusim::Device& device = gpusim::Device::Instance());
}  // namespace cublas_sim

// "Open template library": tile sizes are template parameters. A device-wide
// GEMM is composed from the block-level primitive, as in CUTLASS.
namespace cutlass_sim {

template <int kTileM, int kTileN>
struct TileGemm {
  static_assert(kTileM > 0 && kTileN > 0);

  // Computes the (bm, bn) output tile: a 2x2 register-blocked thread tile
  // inside the block tile, mirroring CUTLASS's threadblock/warp/thread
  // decomposition.
  static void ComputeTile(const float* a, const float* b, float* c,
                          GemmShape s, int bm, int bn) {
    const int m0 = bm * kTileM;
    const int n0 = bn * kTileN;
    const int m1 = m0 + kTileM < s.m ? m0 + kTileM : s.m;
    const int n1 = n0 + kTileN < s.n ? n0 + kTileN : s.n;

    int i = m0;
    for (; i + 2 <= m1; i += 2) {
      const float* a0 = a + static_cast<std::size_t>(i) * s.k;
      const float* a1 = a0 + s.k;
      float* c0 = c + static_cast<std::size_t>(i) * s.n;
      float* c1 = c0 + s.n;
      for (int j = n0; j < n1; ++j) {
        c0[j] = 0.0f;
        c1[j] = 0.0f;
      }
      for (int kk = 0; kk < s.k; ++kk) {
        const float av0 = a0[kk];
        const float av1 = a1[kk];
        const float* brow = b + static_cast<std::size_t>(kk) * s.n;
        int j = n0;
        for (; j + 2 <= n1; j += 2) {
          const float b0 = brow[j];
          const float b1 = brow[j + 1];
          c0[j] += av0 * b0;
          c0[j + 1] += av0 * b1;
          c1[j] += av1 * b0;
          c1[j + 1] += av1 * b1;
        }
        for (; j < n1; ++j) {
          c0[j] += av0 * brow[j];
          c1[j] += av1 * brow[j];
        }
      }
    }
    for (; i < m1; ++i) {  // remainder row
      const float* arow = a + static_cast<std::size_t>(i) * s.k;
      float* crow = c + static_cast<std::size_t>(i) * s.n;
      for (int j = n0; j < n1; ++j) crow[j] = 0.0f;
      for (int kk = 0; kk < s.k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + static_cast<std::size_t>(kk) * s.n;
        for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
      }
    }
  }
};

// Device-wide GEMM composed from the tile primitive.
template <int kTileM = 64, int kTileN = 64>
void Sgemm(const float* a, const float* b, float* c, GemmShape s,
           gpusim::Device& device = gpusim::Device::Instance()) {
  CERTKIT_CHECK(s.m > 0 && s.n > 0 && s.k > 0);
  gpusim::Dim3 grid;
  grid.x = static_cast<unsigned>((s.n + kTileN - 1) / kTileN);
  grid.y = static_cast<unsigned>((s.m + kTileM - 1) / kTileM);
  device.Launch(grid, gpusim::Dim3{1, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
                  TileGemm<kTileM, kTileN>::ComputeTile(
                      a, b, c, s, static_cast<int>(ctx.block_idx.y),
                      static_cast<int>(ctx.block_idx.x));
                });
}

}  // namespace cutlass_sim

// Host microkernel: the CPU path the pipeline tick actually runs. Unlike the
// device sims above it never goes through gpusim::Device — no launches, no
// std::function, no heap traffic — and it is allocation-free by construction
// (registers + caller-owned buffers only).
//
// Bit-exactness contract (what the gemm property test pins): every output
// element is accumulated as the same K-ordered dot product a single scalar
// loop would produce — register tiling spans M and N only, K is never split —
// so micro::Sgemm is bit-identical to cpublas::Sgemm, ComputeTileTuned, and
// every cutlass_sim tile instantiation. (The build never enables FMA
// contraction on the baseline x86-64 target, so mul-then-add sequences round
// identically everywhere.) The int8 kernel accumulates in int32, where
// associativity is exact, so its blocking is unconstrained.
namespace micro {

// A block configuration: an mr×nr register tile (accumulators held in
// registers across the K loop) swept over nc-column cache panels of B.
struct BlockConfig {
  int mr = 0;
  int nr = 0;
  int nc = 0;
  bool operator==(const BlockConfig&) const = default;
};

int CandidateCount();
BlockConfig Candidate(int index);

// Integer cost model, extending the PR 5 tuner: a pure function of
// (shape, config, stripes) — padded fringe MACs, per-panel K-loop setup, a
// register-spill penalty when the tile exceeds the architectural budget, and
// per-stripe fork overhead. No wall clock anywhere.
std::int64_t ModeledBlockCost(GemmShape shape, BlockConfig config,
                              int stripes);

// Deterministic argmin over the candidate table (strict <, so ties resolve
// to the lowest index — same convention as isaac_sim::PickConfig).
BlockConfig PickBlockConfig(GemmShape shape, int stripes);

// fp32 microkernel. `pool` adds N-thread outer blocking over disjoint row
// stripes (disjoint writes, so the result is bit-identical for any pool
// width, including nullptr = inline).
void Sgemm(const float* a, const float* b, float* c, GemmShape shape,
           certkit::support::ThreadPool* pool = nullptr);

// int8 × int8 → int32 kernel for the quantized detector path. Integer
// accumulation is exact, hence deterministic for any blocking or pool width.
void GemmS8S32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
               GemmShape shape, certkit::support::ThreadPool* pool = nullptr);

// int16 dot-product kernel over a pre-transposed operand: C[M,N] = A·Bᵀ
// with A[M,K] and BT[N,K] both row-major, int32 accumulation. This is the
// inner kernel the quantized conv path actually runs: int8 values widened
// to int16 make every product exact in the int16×int16→int32 dot-product
// form the x86 backend maps to PMADDWD (8 MACs per SSE2 instruction), and
// the [N,K] patch-matrix layout keeps BOTH operands unit-stride in K so the
// autovectorizer can use it. Numerically identical to GemmS8S32 on the same
// operands (integer accumulation is exact, so the summation order the
// register tile picks cannot matter). There is no nc panel knob here: with
// K contiguous the working set per output is two K-vectors, so the only
// blocking dimension is the register tile, which the 16-xmm budget pins at
// 2×2 vector accumulators (the cost model has nothing left to choose).
void GemmS16S32DotT(const std::int16_t* a, const std::int16_t* bt,
                    std::int32_t* c, GemmShape shape);

// Config-forcing variants for the exhaustive tail-path property test: every
// candidate tile must produce bit-identical output on every shape, or the
// cost model could silently change results by changing its pick.
void SgemmWithConfig(const float* a, const float* b, float* c,
                     GemmShape shape, BlockConfig config);
void GemmS8S32WithConfig(const std::int8_t* a, const std::int8_t* b,
                         std::int32_t* c, GemmShape shape,
                         BlockConfig config);

}  // namespace micro

}  // namespace kernels

#endif  // KERNELS_GEMM_H_
