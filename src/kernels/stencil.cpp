#include "kernels/stencil.h"

#include <mutex>

#include "support/check.h"

namespace kernels::stencil {

namespace {

using certkit::cov::Unit;

// Statement/decision probe layout for the 2D kernel. Ids are stable; the
// declaration happens once per process.
struct Probes2D {
  Unit* unit;
  // decisions
  int d_interior;   // 2 conditions: y in range && x in range
  int d_boundary;   // 3-way boundary mode (as 2 decisions below)
  int d_is_zero;    // boundary == kZero
  int d_is_periodic;  // boundary == kPeriodic
  // statements
  enum : int {
    kSLoad = 0,
    kSInterior,
    kSZero,
    kSPeriodic,
    kSReflect,
    kSStore,
    kSCount
  };
};

Probes2D& GetProbes2D() {
  static Probes2D probes = [] {
    Probes2D p;
    p.unit = &certkit::cov::Registry::Instance().GetOrCreate(
        "stencil/stencil2d.cu");
    p.unit->DeclareStatements(Probes2D::kSCount);
    p.d_interior = p.unit->DeclareDecision(2);
    p.d_is_zero = p.unit->DeclareDecision(1);
    p.d_is_periodic = p.unit->DeclareDecision(1);
    p.d_boundary = p.unit->DeclareDecision(1);  // boundary taken at all
    return p;
  }();
  return probes;
}

struct Probes3D {
  Unit* unit;
  int d_interior;  // 3 conditions
  int d_is_zero;
  int d_is_periodic;
  enum : int {
    kSLoad = 0,
    kSInterior,
    kSZero,
    kSPeriodic,
    kSReflect,
    kSStore,
    kSCount
  };
};

Probes3D& GetProbes3D() {
  static Probes3D probes = [] {
    Probes3D p;
    p.unit = &certkit::cov::Registry::Instance().GetOrCreate(
        "stencil/stencil3d.cu");
    p.unit->DeclareStatements(Probes3D::kSCount);
    p.d_interior = p.unit->DeclareDecision(3);
    p.d_is_zero = p.unit->DeclareDecision(1);
    p.d_is_periodic = p.unit->DeclareDecision(1);
    return p;
  }();
  return probes;
}

int WrapIndex(int i, int n, Boundary boundary, Unit& u, int d_zero,
              int d_periodic) {
  if (i >= 0 && i < n) return i;
  if (u.Branch(d_zero, boundary == Boundary::kZero)) {
    u.Stmt(Probes2D::kSZero);  // same slot layout in both probe structs
    return -1;                 // sentinel: contributes 0
  }
  if (u.Branch(d_periodic, boundary == Boundary::kPeriodic)) {
    u.Stmt(Probes2D::kSPeriodic);
    return ((i % n) + n) % n;
  }
  u.Stmt(Probes2D::kSReflect);
  return i < 0 ? -i - 1 : 2 * n - i - 1;
}

}  // namespace

Unit& Stencil2DCoverage() { return *GetProbes2D().unit; }
Unit& Stencil3DCoverage() { return *GetProbes3D().unit; }

void Stencil2D5Point(const float* in, float* out, int h, int w,
                     const StencilOptions& options, gpusim::Device& device) {
  CERTKIT_CHECK(h > 0 && w > 0);
  Probes2D& p = GetProbes2D();
  Unit& u = *p.unit;
  const float wc = options.center_weight;
  const float wn = options.neighbor_weight;
  const Boundary boundary = options.boundary;

  gpusim::Dim3 grid{static_cast<unsigned>((w + 15) / 16),
                    static_cast<unsigned>((h + 15) / 16), 1};
  gpusim::Dim3 block{16, 16, 1};
  device.Launch(grid, block, [&, in, out, h, w](
                                 const gpusim::KernelContext& ctx) {
    const int x = static_cast<int>(ctx.GlobalX());
    const int y = static_cast<int>(ctx.GlobalY());
    const bool cy = u.Cond(p.d_interior, 0, y < h);
    const bool cx = u.Cond(p.d_interior, 1, x < w);
    if (!u.Dec(p.d_interior, cy && cx)) {
      return;  // thread outside the domain
    }
    u.Stmt(Probes2D::kSLoad);
    auto at = [&](int yy, int xx) -> float {
      if (yy >= 0 && yy < h && xx >= 0 && xx < w) {
        u.Stmt(Probes2D::kSInterior);
        return in[static_cast<std::size_t>(yy) * w + xx];
      }
      const int wy = WrapIndex(yy, h, boundary, u, p.d_is_zero,
                               p.d_is_periodic);
      const int wx = WrapIndex(xx, w, boundary, u, p.d_is_zero,
                               p.d_is_periodic);
      if (wy < 0 || wx < 0) return 0.0f;
      return in[static_cast<std::size_t>(wy) * w + wx];
    };
    const float value = wc * at(y, x) +
                        wn * (at(y - 1, x) + at(y + 1, x) + at(y, x - 1) +
                              at(y, x + 1));
    u.Stmt(Probes2D::kSStore);
    out[static_cast<std::size_t>(y) * w + x] = value;
  });
}

void Stencil3D7Point(const float* in, float* out, int d, int h, int w,
                     const StencilOptions& options, gpusim::Device& device) {
  CERTKIT_CHECK(d > 0 && h > 0 && w > 0);
  Probes3D& p = GetProbes3D();
  Unit& u = *p.unit;
  const float wc = options.center_weight;
  const float wn = options.neighbor_weight;
  const Boundary boundary = options.boundary;

  gpusim::Dim3 grid{static_cast<unsigned>((w + 7) / 8),
                    static_cast<unsigned>((h + 7) / 8),
                    static_cast<unsigned>(d)};
  gpusim::Dim3 block{8, 8, 1};
  device.Launch(grid, block, [&, in, out, d, h, w](
                                 const gpusim::KernelContext& ctx) {
    const int x = static_cast<int>(ctx.GlobalX());
    const int y = static_cast<int>(ctx.GlobalY());
    const int z = static_cast<int>(ctx.block_idx.z);
    const bool cz = u.Cond(p.d_interior, 0, z < d);
    const bool cy = u.Cond(p.d_interior, 1, y < h);
    const bool cx = u.Cond(p.d_interior, 2, x < w);
    if (!u.Dec(p.d_interior, cz && cy && cx)) {
      return;
    }
    u.Stmt(Probes3D::kSLoad);
    auto at = [&](int zz, int yy, int xx) -> float {
      if (zz >= 0 && zz < d && yy >= 0 && yy < h && xx >= 0 && xx < w) {
        u.Stmt(Probes3D::kSInterior);
        return in[(static_cast<std::size_t>(zz) * h + yy) * w + xx];
      }
      const int wz = WrapIndex(zz, d, boundary, u, p.d_is_zero,
                               p.d_is_periodic);
      const int wy = WrapIndex(yy, h, boundary, u, p.d_is_zero,
                               p.d_is_periodic);
      const int wx = WrapIndex(xx, w, boundary, u, p.d_is_zero,
                               p.d_is_periodic);
      if (wz < 0 || wy < 0 || wx < 0) return 0.0f;
      return in[(static_cast<std::size_t>(wz) * h + wy) * w + wx];
    };
    const float value =
        wc * at(z, y, x) +
        wn * (at(z - 1, y, x) + at(z + 1, y, x) + at(z, y - 1, x) +
              at(z, y + 1, x) + at(z, y, x - 1) + at(z, y, x + 1));
    u.Stmt(Probes3D::kSStore);
    out[(static_cast<std::size_t>(z) * h + y) * w + x] = value;
  });
}

}  // namespace kernels::stencil
