#include "obs/flight_validate.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "support/json.h"

namespace certkit::obs {

namespace {

using support::JsonValue;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// The validator keeps its own vocabulary tables (independent of the
// flight_recorder.cpp name functions) so a table typo in the emitter is a
// validation failure, not a silently shared constant.
bool KnownStage(const std::string& s) {
  static const std::set<std::string> kStages = {
      "tick",    "scenario", "perception", "prediction",  "planning",
      "control", "safety",   "canbus",     "localization"};
  return kStages.count(s) > 0;
}

bool KnownSafetyState(const std::string& s) {
  return s == "nominal" || s == "limp_home" || s == "safe_stop";
}

bool KnownMonitor(const std::string& s) {
  static const std::set<std::string> kMonitors = {
      "range", "plausibility", "deadline", "control_flow", "command",
      "can_bus"};
  return kMonitors.count(s) > 0;
}

bool KnownTriggerKind(const std::string& s) {
  return s == "signal" || s == "oracle" || s == "explicit";
}

bool RequireNumber(const JsonValue& obj, const std::string& key,
                   const std::string& where, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return Fail(error, where + ": missing numeric '" + key + "'");
  }
  return true;
}

bool RequireString(const JsonValue& obj, const std::string& key,
                   const std::string& where, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return Fail(error, where + ": missing string '" + key + "'");
  }
  return true;
}

// A quantile field is a finite number or the string "+inf".
bool ValidQuantile(const JsonValue* v) {
  if (v == nullptr) return false;
  if (v->kind == JsonValue::Kind::kNumber) return true;
  return v->kind == JsonValue::Kind::kString && v->string == "+inf";
}

bool ValidateEvent(const JsonValue& event, std::uint64_t* prev_seq,
                   bool* first, const std::string& where, std::string* error) {
  if (event.kind != JsonValue::Kind::kObject) {
    return Fail(error, where + ": event is not an object");
  }
  std::string getter_error;
  std::uint64_t seq = 0;
  if (!support::JsonGetU64(event, "seq", &seq, &getter_error)) {
    return Fail(error, where + ": " + getter_error);
  }
  if (seq == 0) return Fail(error, where + ": seq must be >= 1");
  if (!*first && seq <= *prev_seq) {
    return Fail(error, where + ": sequence clock not strictly increasing");
  }
  *first = false;
  *prev_seq = seq;

  std::string type;
  if (!support::JsonGetString(event, "type", &type, &getter_error)) {
    return Fail(error, where + ": " + getter_error);
  }
  if (type == "stage_begin" || type == "stage_end") {
    std::string stage;
    if (!support::JsonGetString(event, "stage", &stage, &getter_error)) {
      return Fail(error, where + ": " + getter_error);
    }
    if (!KnownStage(stage)) {
      return Fail(error, where + ": unknown stage '" + stage + "'");
    }
    if (!RequireNumber(event, "tick", where, error)) return false;
  } else if (type == "monitor") {
    std::string monitor;
    if (!support::JsonGetString(event, "monitor", &monitor, &getter_error)) {
      return Fail(error, where + ": " + getter_error);
    }
    if (!KnownMonitor(monitor)) {
      return Fail(error, where + ": unknown monitor '" + monitor + "'");
    }
    if (!RequireNumber(event, "severity", where, error)) return false;
    bool handled = false;
    if (!support::JsonGetBool(event, "handled", &handled, &getter_error)) {
      return Fail(error, where + ": " + getter_error);
    }
    if (!RequireNumber(event, "tick", where, error)) return false;
  } else if (type == "safety_state") {
    std::string state, from;
    if (!support::JsonGetString(event, "state", &state, &getter_error) ||
        !support::JsonGetString(event, "from", &from, &getter_error)) {
      return Fail(error, where + ": " + getter_error);
    }
    if (!KnownSafetyState(state) || !KnownSafetyState(from)) {
      return Fail(error, where + ": unknown safety state");
    }
    if (!RequireNumber(event, "transition", where, error)) return false;
  } else if (type == "candidate_begin" || type == "candidate_end" ||
             type == "candidate_kept") {
    if (!RequireNumber(event, "candidate", where, error)) return false;
  } else if (type == "serve_begin") {
    if (!RequireNumber(event, "request", where, error)) return false;
  } else if (type == "serve_end") {
    if (!RequireNumber(event, "request", where, error)) return false;
    bool ok = false;
    if (!support::JsonGetBool(event, "ok", &ok, &getter_error)) {
      return Fail(error, where + ": " + getter_error);
    }
  } else {
    return Fail(error, where + ": unknown event type '" + type + "'");
  }
  const JsonValue* wall = event.Find("wall_ns");
  if (wall != nullptr && wall->kind != JsonValue::Kind::kNumber) {
    return Fail(error, where + ": wall_ns must be a number");
  }
  return true;
}

bool ValidateHistogramRow(const std::string& name, const JsonValue& row,
                          std::string* error) {
  const std::string where = "histogram '" + name + "'";
  if (row.kind != JsonValue::Kind::kObject) {
    return Fail(error, where + ": not an object");
  }
  std::string getter_error;
  std::int64_t count = 0;
  if (!support::JsonGetI64(row, "count", &count, &getter_error)) {
    return Fail(error, where + ": " + getter_error);
  }
  if (count < 0) return Fail(error, where + ": negative count");
  const JsonValue* bounds = row.Find("bounds");
  if (bounds == nullptr || bounds->kind != JsonValue::Kind::kArray ||
      bounds->items.empty()) {
    return Fail(error, where + ": missing bounds array");
  }
  std::vector<double> bound_values;
  for (const JsonValue& b : bounds->items) {
    if (b.kind != JsonValue::Kind::kNumber) {
      return Fail(error, where + ": bounds must be numbers");
    }
    bound_values.push_back(b.number);
  }
  if (!std::is_sorted(bound_values.begin(), bound_values.end())) {
    return Fail(error, where + ": bounds not ascending");
  }
  // Wall-clock fields are optional (present only for --timing dumps) but
  // must be coherent when present.
  const JsonValue* buckets = row.Find("buckets");
  if (buckets != nullptr) {
    if (buckets->kind != JsonValue::Kind::kArray ||
        buckets->items.size() != bound_values.size() + 1) {
      return Fail(error,
                  where + ": buckets must have length bounds + 1 (overflow)");
    }
    std::int64_t total = 0;
    for (const JsonValue& b : buckets->items) {
      if (b.kind != JsonValue::Kind::kNumber || b.number < 0) {
        return Fail(error, where + ": bucket counts must be >= 0");
      }
      total += static_cast<std::int64_t>(b.number);
    }
    if (total != count) {
      return Fail(error, where + ": bucket sum does not equal count");
    }
    for (const char* q : {"p50", "p90", "p99"}) {
      if (!ValidQuantile(row.Find(q))) {
        return Fail(error, where + ": missing or malformed '" +
                               std::string(q) + "'");
      }
    }
  }
  return true;
}

}  // namespace

bool ValidateFlightDump(const std::string& json, std::string* error) {
  JsonValue root;
  std::string parse_error;
  if (!support::ParseJson(json, &root, &parse_error)) {
    return Fail(error, "parse error: " + parse_error);
  }
  const JsonValue* dump = root.Find("flight_dump");
  if (dump == nullptr || dump->kind != JsonValue::Kind::kObject) {
    return Fail(error, "missing 'flight_dump' root object");
  }
  std::string getter_error;
  std::int64_t schema = 0;
  if (!support::JsonGetI64(*dump, "schema", &schema, &getter_error)) {
    return Fail(error, getter_error);
  }
  if (schema != 1) {
    return Fail(error, "unsupported schema version " + std::to_string(schema));
  }

  const JsonValue* trigger = dump->Find("trigger");
  if (trigger == nullptr || trigger->kind != JsonValue::Kind::kObject) {
    return Fail(error, "missing 'trigger' object");
  }
  std::string kind;
  if (!support::JsonGetString(*trigger, "kind", &kind, &getter_error)) {
    return Fail(error, getter_error);
  }
  if (!KnownTriggerKind(kind)) {
    return Fail(error, "unknown trigger kind '" + kind + "'");
  }
  if (kind == "signal") {
    if (!RequireNumber(*trigger, "signal", "trigger", error)) return false;
    if (!RequireString(*trigger, "name", "trigger", error)) return false;
  }

  std::string last_stage;
  if (!support::JsonGetString(*dump, "last_completed_stage", &last_stage,
                              &getter_error)) {
    return Fail(error, getter_error);
  }
  if (last_stage != "none" && !KnownStage(last_stage)) {
    return Fail(error, "unknown last_completed_stage '" + last_stage + "'");
  }
  std::string safety_state;
  if (!support::JsonGetString(*dump, "safety_state", &safety_state,
                              &getter_error)) {
    return Fail(error, getter_error);
  }
  if (!KnownSafetyState(safety_state)) {
    return Fail(error, "unknown safety_state '" + safety_state + "'");
  }
  std::int64_t recorded = 0, dropped = 0;
  if (!support::JsonGetI64(*dump, "events_recorded", &recorded,
                           &getter_error) ||
      !support::JsonGetI64(*dump, "events_dropped", &dropped, &getter_error)) {
    return Fail(error, getter_error);
  }
  if (recorded < 0 || dropped < 0) {
    return Fail(error, "negative event counters");
  }
  const JsonValue* artifact = dump->Find("artifact");
  if (artifact != nullptr && artifact->kind != JsonValue::Kind::kString) {
    return Fail(error, "artifact must be a string path");
  }

  const JsonValue* threads = dump->Find("threads");
  if (threads == nullptr || threads->kind != JsonValue::Kind::kArray) {
    return Fail(error, "missing 'threads' array");
  }
  for (std::size_t t = 0; t < threads->items.size(); ++t) {
    const JsonValue& thread = threads->items[t];
    const std::string where = "thread " + std::to_string(t);
    if (thread.kind != JsonValue::Kind::kObject) {
      return Fail(error, where + ": not an object");
    }
    std::int64_t ring = 0;
    if (!support::JsonGetI64(thread, "ring", &ring, &getter_error)) {
      return Fail(error, where + ": " + getter_error);
    }
    if (ring < 0) return Fail(error, where + ": negative ring index");
    const JsonValue* events = thread.Find("events");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
      return Fail(error, where + ": missing 'events' array");
    }
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (std::size_t e = 0; e < events->items.size(); ++e) {
      if (!ValidateEvent(events->items[e], &prev_seq, &first,
                         where + " event " + std::to_string(e), error)) {
        return false;
      }
    }
  }

  const JsonValue* metrics = dump->Find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) {
    return Fail(error, "missing 'metrics' object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* obj = metrics->Find(section);
    if (obj == nullptr || obj->kind != JsonValue::Kind::kObject) {
      return Fail(error, std::string("metrics missing '") + section + "'");
    }
  }
  for (const auto& [name, value] : metrics->Find("counters")->members) {
    if (value.kind != JsonValue::Kind::kNumber) {
      return Fail(error, "counter '" + name + "' is not a number");
    }
  }
  for (const auto& [name, value] : metrics->Find("gauges")->members) {
    if (value.kind != JsonValue::Kind::kNumber) {
      return Fail(error, "gauge '" + name + "' is not a number");
    }
  }
  for (const auto& [name, value] : metrics->Find("histograms")->members) {
    if (!ValidateHistogramRow(name, value, error)) return false;
  }
  return true;
}

}  // namespace certkit::obs
