// certkit obs: the flight recorder — an always-on, bounded-overhead
// black-box event journal with *triggered* dumps.
//
// PR 4's traces and metrics are deliberately post-run artifacts: they are
// exported after a drive or campaign completes, which means a run that dies
// mid-tick leaves no record of the moments around the fault. ISO 26262-6
// Table 4/5 evidence presumes exactly that record — not just *that* a
// monitor fired, but what the pipeline was doing when it did. The flight
// recorder closes the gap:
//
//  * Per-thread lock-free ring buffers of fixed-size binary event records
//    (tick stage begin/end, safety monitor verdicts, degradation
//    transitions, campaign candidate lifecycle, serve request lifecycle).
//    Each record is stamped with a global logical sequence clock; wall-clock
//    nanoseconds are added only when SetFlightWallClock(true) (the --timing
//    convention), so deterministic runs stay deterministic.
//  * Each ring slot is a seqlock (version counter: odd = being written,
//    even = stable), so a dump can drain rings while writers keep writing —
//    torn slots are detected and skipped, never half-read.
//  * Dumps are triggered, not polled: a fatal-signal handler
//    (SIGSEGV/SIGABRT/SIGFPE) writes through a pre-opened fd using only
//    async-signal-safe operations; the safety layer's oracle-violation hook
//    fires on entry to safe-stop when armed; `certkit dump` writes one
//    explicitly. Every trigger produces the same schema-versioned JSON
//    document: last-N events per thread in ring order (monotone in the
//    sequence clock), a full MetricsRegistry snapshot, and the most recent
//    replay-artifact pointer when a campaign exported one.
//
// The recorder is on by default and cheap enough to leave on (see
// bench/obs_overhead: <= 5% of median tick time, self-checked); recording
// never allocates, never locks, and never blocks a writer. Dump schema in
// DESIGN.md; tools/trace_lint validates dumps via flight_validate.h.
#ifndef CERTKIT_OBS_FLIGHT_RECORDER_H_
#define CERTKIT_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>

namespace certkit::obs {

// Ring geometry. 64 rings x 256 slots x 40-byte records ≈ 640 KiB of
// static storage — the whole black box, allocated up front.
inline constexpr int kFlightRingCapacity = 256;
inline constexpr int kFlightMaxRings = 64;

// Event vocabulary. The numeric values are part of the record layout but
// not of the dump schema (dumps spell the names out).
enum class FlightEventType : std::uint32_t {
  kStageBegin = 1,       // a = FlightStage, c = tick index
  kStageEnd = 2,         // a = FlightStage, c = tick index
  kMonitorVerdict = 3,   // a = monitor id, b = severity | handled<<8, c = tick
  kSafetyTransition = 4, // a = new state, b = previous state, c = transition #
  kCandidateBegin = 5,   // c = candidate id
  kCandidateEnd = 6,     // a = kept-by-evaluate? unused today, c = candidate id
  kCandidateKept = 7,    // c = candidate id
  kServeBegin = 8,       // c = request index within the batch
  kServeEnd = 9,         // a = ok (0/1), c = request index
};

// Pipeline stage ids, mirroring the obs::Span names in ApolloPilot::Tick.
// The obs layer cannot depend on adpilot (the dependency points the other
// way), so the name table is duplicated here and pinned by tests.
enum class FlightStage : std::uint32_t {
  kTick = 0,
  kScenario = 1,
  kPerception = 2,
  kPrediction = 3,
  kPlanning = 4,
  kControl = 5,
  kSafety = 6,
  kCanBus = 7,
  kLocalization = 8,
};

// Name tables ("unknown" for out-of-range values). Returned pointers are
// string literals — safe to use from the signal-handler dump path.
const char* FlightEventTypeName(std::uint32_t type);
const char* FlightStageName(std::uint32_t stage);
// Safety-state names, index-compatible with adpilot::SafetyStateName
// (0 = nominal, 1 = limp_home, 2 = safe_stop).
const char* FlightSafetyStateName(std::uint32_t state);
// Monitor names, index-compatible with adpilot::MonitorId.
const char* FlightMonitorName(std::uint32_t monitor);

// Recorder switches. Enabled by default; disabling makes RecordFlightEvent
// a branch-and-return (the recorder-off arm of bench/obs_overhead).
void SetFlightRecorderEnabled(bool enabled);
bool FlightRecorderEnabled();
// Wall-clock stamping follows the --timing convention: off by default so
// records (and dumps of them) are deterministic for a fixed workload.
void SetFlightWallClock(bool enabled);

// Appends one record to the calling thread's ring (claiming a ring from
// the static pool on first use; threads beyond kFlightMaxRings drop events
// into the `dropped` counter rather than block). Never allocates, never
// locks. Field meaning per type is documented on FlightEventType.
void RecordFlightEvent(FlightEventType type, std::uint32_t a, std::uint32_t b,
                       std::int64_t c);

// RAII begin/end pair for one pipeline stage of one tick.
class FlightStageScope {
 public:
  FlightStageScope(FlightStage stage, std::int64_t tick);
  FlightStageScope(const FlightStageScope&) = delete;
  FlightStageScope& operator=(const FlightStageScope&) = delete;
  ~FlightStageScope();

 private:
  FlightStage stage_;
  std::int64_t tick_;
};

struct FlightRecorderStats {
  std::int64_t events = 0;   // records accepted (deterministic per workload)
  std::int64_t dropped = 0;  // records refused (ring pool exhausted)
  int rings_in_use = 0;      // live thread rings right now (wall-clock-ish)
  int ring_capacity = kFlightRingCapacity;
};
FlightRecorderStats GetFlightRecorderStats();

// Records the replay artifact most recently exported by the campaign layer
// so a dump can point the reader at the matching repro. Thread-safe; the
// dump path reads it via a seqlock (no lock taken in signal context).
void SetFlightArtifactPath(const std::string& path);

enum class FlightDumpTrigger { kSignal, kOracle, kExplicit };

// Core dump writer: drains every ring plus the metrics registry into `fd`
// as one JSON document. Uses only async-signal-safe operations (write(2),
// stack buffers, hand-rolled number formatting — no malloc, no locks), so
// it is callable from the fatal-signal handler; the other triggers reuse
// it for byte-identical output. Returns false if any write fails.
bool WriteFlightDumpFd(int fd, FlightDumpTrigger trigger, int signal_number);

// Convenience wrappers for non-signal contexts: open/truncate `path` (or
// build a std::string) and delegate to the fd writer.
bool WriteFlightDump(const std::string& path, FlightDumpTrigger trigger,
                     int signal_number = 0);
std::string FlightDumpString(FlightDumpTrigger trigger, int signal_number = 0);

// Arms the black box for fatal signals: opens `path` eagerly (so the
// handler never calls open(2)) and installs SIGSEGV/SIGABRT/SIGFPE
// handlers. On the first fatal signal the handler writes one dump through
// the pre-opened fd, then restores the default disposition and re-raises,
// preserving the process's termination status. Returns false if the dump
// file cannot be opened (no handlers installed in that case).
bool InstallFlightSignalHandlers(const std::string& path);

// Arms the oracle-violation trigger: the first OnFlightOracleViolation()
// after arming writes one dump to `path` and latches (campaigns drive
// candidates into safe-stop routinely; one black box per run is the
// useful artifact). Unarmed, OnFlightOracleViolation is a no-op.
void ArmFlightOracleDump(const std::string& path);
// Called by the safety layer (DegradationManager) on entry to safe-stop.
void OnFlightOracleViolation();

// Test support: zeroes every ring, the sequence clock, and the event/drop
// counters, clears the artifact pointer, and resets the oracle latch.
// Callers must quiesce writer threads first; ring claims survive (threads
// keep their rings).
void ResetFlightRecorderForTesting();

}  // namespace certkit::obs

#endif  // CERTKIT_OBS_FLIGHT_RECORDER_H_
