// certkit obs: independent validator for flight-recorder dump JSON.
//
// Same contract as trace_validate.h: the validator shares *no* code with
// the emitter (flight_recorder.cpp hand-rolls its JSON through an
// async-signal-safe sink; this reads it back through support::ParseJson),
// so a writer bug cannot validate itself. tools/trace_lint dispatches
// here for any document containing a "flight_dump" root.
//
// Checks:
//   * schema version is exactly 1;
//   * trigger is well-formed (known kind; signal triggers carry
//     signal/name);
//   * last_completed_stage / safety_state are known names;
//   * threads is an array of {ring, events}; within each thread the
//     sequence clock is strictly increasing (per-ring merge order), every
//     event has a known type, and each type carries its required fields;
//   * the metrics snapshot is well-formed: counters/gauges/histograms
//     objects present; each histogram has count >= 0, ascending bounds,
//     and — when the wall-clock fields are present — buckets of length
//     bounds+1 summing to count, and p50/p90/p99 that are numbers or the
//     string "+inf".
#ifndef CERTKIT_OBS_FLIGHT_VALIDATE_H_
#define CERTKIT_OBS_FLIGHT_VALIDATE_H_

#include <string>

namespace certkit::obs {

// Returns true when `json` is a structurally valid flight dump. On failure
// returns false and, when `error` is non-null, sets it to a diagnostic.
bool ValidateFlightDump(const std::string& json, std::string* error);

}  // namespace certkit::obs

#endif  // CERTKIT_OBS_FLIGHT_VALIDATE_H_
