#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <ctime>
#include <mutex>

#include "obs/metrics.h"

namespace certkit::obs {

namespace {

// ---------------------------------------------------------------------------
// Ring storage. Everything the dump path touches is a plain atomic in
// static storage: no allocation, no locks, constant-initialized.
// ---------------------------------------------------------------------------

// One 40-byte-payload event record behind a per-slot seqlock. The writer
// bumps `version` to odd, stores the fields, bumps it back to even; a
// reader that sees the same even version on both sides of its field reads
// got a consistent record. All fields are atomics so concurrent access is
// defined (and TSan-clean) even while torn reads are being retried.
struct Slot {
  std::atomic<std::uint32_t> version{0};
  std::atomic<std::uint32_t> type{0};
  std::atomic<std::uint32_t> a{0};
  std::atomic<std::uint32_t> b{0};
  std::atomic<std::uint64_t> seq{0};  // 0 = never written
  std::atomic<std::int64_t> c{0};
  std::atomic<std::uint64_t> wall_ns{0};
};

struct Ring {
  Slot slots[kFlightRingCapacity];
  // Total records ever written to this ring; only the owning thread
  // writes it. The slot for record n is slots[n % capacity].
  std::atomic<std::uint64_t> cursor{0};
};

Ring g_rings[kFlightMaxRings];

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_wall_clock{false};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::int64_t> g_events{0};
std::atomic<std::int64_t> g_dropped{0};

// Ring claim bookkeeping. Claim/release happen once per thread lifetime —
// not a hot path — so a mutex-guarded free stack is simpler and immune to
// the ABA hazard a lock-free index stack would carry. The signal handler
// never claims a ring, so the mutex never appears in signal context.
std::mutex g_claim_mu;
int g_free_stack[kFlightMaxRings];
int g_free_top = 0;                       // entries in g_free_stack
std::atomic<int> g_ring_high_water{0};    // rings ever claimed
std::atomic<int> g_rings_in_use{0};

int AcquireRingIndex() {
  std::lock_guard<std::mutex> lock(g_claim_mu);
  int index = -1;
  if (g_free_top > 0) {
    index = g_free_stack[--g_free_top];
  } else {
    const int fresh = g_ring_high_water.load(std::memory_order_relaxed);
    if (fresh >= kFlightMaxRings) return -1;
    g_ring_high_water.store(fresh + 1, std::memory_order_release);
    index = fresh;
  }
  g_rings_in_use.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void ReleaseRingIndex(int index) {
  std::lock_guard<std::mutex> lock(g_claim_mu);
  g_free_stack[g_free_top++] = index;
  g_rings_in_use.fetch_sub(1, std::memory_order_relaxed);
}

// Thread → ring binding. -1 = not yet claimed; -2 = pool exhausted (cached
// so a starved thread drops events without re-taking the claim mutex).
struct RingHandle {
  int index = -1;
  ~RingHandle() {
    if (index >= 0) ReleaseRingIndex(index);
  }
};
thread_local RingHandle t_ring;

std::uint64_t WallNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// ---------------------------------------------------------------------------
// Replay-artifact pointer: a fixed buffer behind its own seqlock so the
// signal-handler dump can read it without a lock.
// ---------------------------------------------------------------------------

constexpr std::size_t kArtifactMax = 512;
std::mutex g_artifact_mu;  // serializes writers only
// Atomic bytes, not a plain char array: the seqlock makes mixed reads
// detectable-and-retried, but the byte stores themselves must still be
// data-race-free for the TSan tree (same reasoning as the Slot fields).
std::atomic<char> g_artifact[kArtifactMax];
std::atomic<std::size_t> g_artifact_len{0};
std::atomic<std::uint32_t> g_artifact_version{0};

// ---------------------------------------------------------------------------
// Signal / oracle trigger state.
// ---------------------------------------------------------------------------

std::atomic<int> g_dump_fd{-1};
std::atomic<bool> g_signal_dumped{false};

std::atomic<bool> g_oracle_armed{false};
std::atomic<bool> g_oracle_dumped{false};
std::mutex g_oracle_mu;  // guards g_oracle_path writes
char g_oracle_path[kArtifactMax];

// ---------------------------------------------------------------------------
// Async-signal-safe emitter: a small stack buffer flushed through a sink
// function pointer. The fd sink uses only write(2); the string sink is for
// non-signal contexts (FlightDumpString).
// ---------------------------------------------------------------------------

struct Sink {
  bool (*flush)(void* ctx, const char* data, std::size_t n);
  void* ctx;
  char buf[1024];
  std::size_t len = 0;
  bool failed = false;
};

bool SinkFlush(Sink& s) {
  if (s.len == 0 || s.failed) return !s.failed;
  if (!s.flush(s.ctx, s.buf, s.len)) s.failed = true;
  s.len = 0;
  return !s.failed;
}

void SinkBytes(Sink& s, const char* data, std::size_t n) {
  while (n > 0 && !s.failed) {
    const std::size_t room = sizeof(s.buf) - s.len;
    const std::size_t take = n < room ? n : room;
    std::memcpy(s.buf + s.len, data, take);
    s.len += take;
    data += take;
    n -= take;
    if (s.len == sizeof(s.buf)) SinkFlush(s);
  }
}

void SinkStr(Sink& s, const char* str) { SinkBytes(s, str, std::strlen(str)); }

void SinkU64(Sink& s, std::uint64_t v) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v > 0);
  char out[24];
  for (int i = 0; i < n; ++i) out[i] = digits[n - 1 - i];
  SinkBytes(s, out, static_cast<std::size_t>(n));
}

void SinkI64(Sink& s, std::int64_t v) {
  if (v < 0) {
    SinkBytes(s, "-", 1);
    SinkU64(s, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    SinkU64(s, static_cast<std::uint64_t>(v));
  }
}

// Fixed 6-fraction-digit rendering (no snprintf in signal context). Callers
// guard against non-finite values; the fallback emits 0 rather than
// corrupt JSON.
void SinkFixed(Sink& s, double v) {
  if (!(v == v) || v > 9.2e18 || v < -9.2e18) {
    SinkBytes(s, "0", 1);
    return;
  }
  if (v < 0) {
    SinkBytes(s, "-", 1);
    v = -v;
  }
  std::uint64_t whole = static_cast<std::uint64_t>(v);
  std::uint64_t frac =
      static_cast<std::uint64_t>((v - static_cast<double>(whole)) * 1e6 + 0.5);
  if (frac >= 1000000) {
    ++whole;
    frac = 0;
  }
  SinkU64(s, whole);
  char fd6[7] = {'.', '0', '0', '0', '0', '0', '0'};
  for (int i = 6; i >= 1; --i) {
    fd6[i] = static_cast<char>('0' + frac % 10);
    frac /= 10;
  }
  SinkBytes(s, fd6, 7);
}

// Quantile values may be +inf (overflow bucket); JSON has no Infinity, so
// mirror MetricsJson's convention: the string "+inf".
void SinkQuantile(Sink& s, double v) {
  if (std::isinf(v)) {
    SinkStr(s, "\"+inf\"");
  } else {
    SinkFixed(s, v);
  }
}

void SinkJsonString(Sink& s, const char* str, std::size_t n) {
  SinkBytes(s, "\"", 1);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(str[i]);
    if (c == '"' || c == '\\') {
      const char esc[2] = {'\\', static_cast<char>(c)};
      SinkBytes(s, esc, 2);
    } else if (c < 0x20) {
      char esc[7] = {'\\', 'u', '0', '0', '0', '0', '\0'};
      const char* hex = "0123456789abcdef";
      esc[4] = hex[(c >> 4) & 0xF];
      esc[5] = hex[c & 0xF];
      SinkBytes(s, esc, 6);
    } else {
      SinkBytes(s, reinterpret_cast<const char*>(&c), 1);
    }
  }
  SinkBytes(s, "\"", 1);
}

bool FdFlush(void* ctx, const char* data, std::size_t n) {
  const int fd = *static_cast<const int*>(ctx);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

bool StringFlush(void* ctx, const char* data, std::size_t n) {
  static_cast<std::string*>(ctx)->append(data, n);
  return true;
}

// ---------------------------------------------------------------------------
// Slot read (seqlock consumer) and per-ring drain.
// ---------------------------------------------------------------------------

struct Rec {
  std::uint64_t seq = 0;
  std::uint32_t type = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::int64_t c = 0;
  std::uint64_t wall_ns = 0;
};

bool ReadSlot(const Slot& slot, Rec* out) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint32_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1u) continue;  // mid-write
    Rec r;
    r.seq = slot.seq.load(std::memory_order_relaxed);
    r.type = slot.type.load(std::memory_order_relaxed);
    r.a = slot.a.load(std::memory_order_relaxed);
    r.b = slot.b.load(std::memory_order_relaxed);
    r.c = slot.c.load(std::memory_order_relaxed);
    r.wall_ns = slot.wall_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != v1) continue;
    if (r.seq == 0) return false;  // never written
    *out = r;
    return true;
  }
  return false;  // persistently torn — writer is lapping us; skip
}

// Drains one ring into `recs` (capacity kFlightRingCapacity), sorted by
// sequence number. Returns the record count.
int DrainRing(const Ring& ring, Rec* recs) {
  int n = 0;
  for (int i = 0; i < kFlightRingCapacity; ++i) {
    Rec r;
    if (ReadSlot(ring.slots[i], &r)) recs[n++] = r;
  }
  // Insertion sort by seq: slots are nearly ordered already (ring order
  // modulo the wrap point), and the signal path cannot call std::sort's
  // potential allocations anyway.
  for (int i = 1; i < n; ++i) {
    const Rec key = recs[i];
    int j = i - 1;
    while (j >= 0 && recs[j].seq > key.seq) {
      recs[j + 1] = recs[j];
      --j;
    }
    recs[j + 1] = key;
  }
  return n;
}

void EmitEvent(Sink& s, const Rec& r) {
  SinkStr(s, "{\"seq\":");
  SinkU64(s, r.seq);
  SinkStr(s, ",\"type\":\"");
  SinkStr(s, FlightEventTypeName(r.type));
  SinkStr(s, "\"");
  switch (static_cast<FlightEventType>(r.type)) {
    case FlightEventType::kStageBegin:
    case FlightEventType::kStageEnd:
      SinkStr(s, ",\"stage\":\"");
      SinkStr(s, FlightStageName(r.a));
      SinkStr(s, "\",\"tick\":");
      SinkI64(s, r.c);
      break;
    case FlightEventType::kMonitorVerdict:
      SinkStr(s, ",\"monitor\":\"");
      SinkStr(s, FlightMonitorName(r.a));
      SinkStr(s, "\",\"severity\":");
      SinkU64(s, r.b & 0xFFu);
      SinkStr(s, ",\"handled\":");
      SinkStr(s, (r.b >> 8) ? "true" : "false");
      SinkStr(s, ",\"tick\":");
      SinkI64(s, r.c);
      break;
    case FlightEventType::kSafetyTransition:
      SinkStr(s, ",\"state\":\"");
      SinkStr(s, FlightSafetyStateName(r.a));
      SinkStr(s, "\",\"from\":\"");
      SinkStr(s, FlightSafetyStateName(r.b));
      SinkStr(s, "\",\"transition\":");
      SinkI64(s, r.c);
      break;
    case FlightEventType::kCandidateBegin:
    case FlightEventType::kCandidateEnd:
    case FlightEventType::kCandidateKept:
      SinkStr(s, ",\"candidate\":");
      SinkI64(s, r.c);
      break;
    case FlightEventType::kServeBegin:
      SinkStr(s, ",\"request\":");
      SinkI64(s, r.c);
      break;
    case FlightEventType::kServeEnd:
      SinkStr(s, ",\"request\":");
      SinkI64(s, r.c);
      SinkStr(s, ",\"ok\":");
      SinkStr(s, r.a ? "true" : "false");
      break;
  }
  if (r.wall_ns != 0) {
    SinkStr(s, ",\"wall_ns\":");
    SinkU64(s, r.wall_ns);
  }
  SinkStr(s, "}");
}

// Nearest-rank quantile straight off the live bucket atomics (the
// allocation-free twin of HistogramQuantile; buckets may move under us,
// which a post-mortem tolerates).
double LiveQuantile(const Histogram& h, double q) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) total += h.bucket_value(i);
  if (total <= 0) return 0.0;
  std::int64_t rank =
      static_cast<std::int64_t>(__builtin_ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    seen += h.bucket_value(i);
    if (seen >= rank) {
      if (i < h.bounds().size()) return h.bounds()[i];
      break;
    }
  }
  return __builtin_inf();
}

void EmitMetrics(Sink& s) {
  const MetricsRegistry& reg = MetricsRegistry::Instance();
  const int n = reg.PublishedCount();
  const bool timing = g_wall_clock.load(std::memory_order_relaxed);
  SinkStr(s, "\"metrics\":{\"counters\":{");
  bool first = true;
  for (int i = 0; i < n; ++i) {
    const PublishedMetric& m = reg.PublishedAt(i);
    if (m.kind != MetricKind::kCounter) continue;
    if (!first) SinkStr(s, ",");
    first = false;
    SinkJsonString(s, m.name->c_str(), m.name->size());
    SinkStr(s, ":");
    SinkI64(s, static_cast<const Counter*>(m.metric)->value());
  }
  SinkStr(s, "},\"gauges\":{");
  first = true;
  for (int i = 0; i < n; ++i) {
    const PublishedMetric& m = reg.PublishedAt(i);
    if (m.kind != MetricKind::kGauge) continue;
    if (!first) SinkStr(s, ",");
    first = false;
    SinkJsonString(s, m.name->c_str(), m.name->size());
    SinkStr(s, ":");
    SinkFixed(s, static_cast<const Gauge*>(m.metric)->value());
  }
  SinkStr(s, "},\"histograms\":{");
  first = true;
  for (int i = 0; i < n; ++i) {
    const PublishedMetric& m = reg.PublishedAt(i);
    if (m.kind != MetricKind::kHistogram) continue;
    const Histogram* h = static_cast<const Histogram*>(m.metric);
    if (!first) SinkStr(s, ",");
    first = false;
    SinkJsonString(s, m.name->c_str(), m.name->size());
    SinkStr(s, ":{\"count\":");
    SinkI64(s, h->count());
    SinkStr(s, ",\"bounds\":[");
    for (std::size_t b = 0; b < h->bounds().size(); ++b) {
      if (b > 0) SinkStr(s, ",");
      SinkFixed(s, h->bounds()[b]);
    }
    SinkStr(s, "]");
    if (timing) {
      // The --timing convention: bucket occupancy, extrema, and quantiles
      // of duration histograms are wall-clock-derived.
      SinkStr(s, ",\"buckets\":[");
      for (std::size_t b = 0; b < h->bucket_count(); ++b) {
        if (b > 0) SinkStr(s, ",");
        SinkI64(s, h->bucket_value(b));
      }
      SinkStr(s, "],\"sum\":");
      SinkFixed(s, h->sum());
      SinkStr(s, ",\"min\":");
      SinkFixed(s, h->min());
      SinkStr(s, ",\"max\":");
      SinkFixed(s, h->max());
      SinkStr(s, ",\"p50\":");
      SinkQuantile(s, LiveQuantile(*h, 0.50));
      SinkStr(s, ",\"p90\":");
      SinkQuantile(s, LiveQuantile(*h, 0.90));
      SinkStr(s, ",\"p99\":");
      SinkQuantile(s, LiveQuantile(*h, 0.99));
    }
    SinkStr(s, "}");
  }
  SinkStr(s, "}}");
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGFPE:
      return "SIGFPE";
    default:
      return "SIGNAL";
  }
}

bool WriteDumpToSink(Sink& s, FlightDumpTrigger trigger, int signal_number) {
  SinkStr(s, "{\"flight_dump\":{\"schema\":1,\"trigger\":{\"kind\":\"");
  switch (trigger) {
    case FlightDumpTrigger::kSignal:
      SinkStr(s, "signal\",\"signal\":");
      SinkI64(s, signal_number);
      SinkStr(s, ",\"name\":\"");
      SinkStr(s, SignalName(signal_number));
      SinkStr(s, "\"");
      break;
    case FlightDumpTrigger::kOracle:
      SinkStr(s, "oracle\"");
      break;
    case FlightDumpTrigger::kExplicit:
      SinkStr(s, "explicit\"");
      break;
  }
  SinkStr(s, "}");

  // Pass 1: headline state — the latest completed (non-tick) stage and the
  // latest degradation state across every ring.
  const int rings = g_ring_high_water.load(std::memory_order_acquire);
  std::uint64_t stage_seq = 0, state_seq = 0;
  std::uint32_t last_stage = 0, last_state = 0;
  bool have_stage = false, have_state = false;
  for (int ri = 0; ri < rings && ri < kFlightMaxRings; ++ri) {
    for (int i = 0; i < kFlightRingCapacity; ++i) {
      Rec r;
      if (!ReadSlot(g_rings[ri].slots[i], &r)) continue;
      if (r.type == static_cast<std::uint32_t>(FlightEventType::kStageEnd) &&
          r.a != static_cast<std::uint32_t>(FlightStage::kTick) &&
          r.seq > stage_seq) {
        stage_seq = r.seq;
        last_stage = r.a;
        have_stage = true;
      }
      if (r.type ==
              static_cast<std::uint32_t>(FlightEventType::kSafetyTransition) &&
          r.seq > state_seq) {
        state_seq = r.seq;
        last_state = r.a;
        have_state = true;
      }
    }
  }
  SinkStr(s, ",\"last_completed_stage\":\"");
  SinkStr(s, have_stage ? FlightStageName(last_stage) : "none");
  SinkStr(s, "\",\"safety_state\":\"");
  SinkStr(s, have_state ? FlightSafetyStateName(last_state) : "nominal");
  SinkStr(s, "\",\"events_recorded\":");
  SinkI64(s, g_events.load(std::memory_order_relaxed));
  SinkStr(s, ",\"events_dropped\":");
  SinkI64(s, g_dropped.load(std::memory_order_relaxed));

  // Replay-artifact pointer, read through its seqlock (never blocks).
  char artifact[kArtifactMax];
  std::size_t artifact_len = 0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint32_t v1 = g_artifact_version.load(std::memory_order_acquire);
    if (v1 & 1u) continue;
    const std::size_t len = g_artifact_len.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < len; ++i) {
      artifact[i] = g_artifact[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (g_artifact_version.load(std::memory_order_relaxed) == v1) {
      artifact_len = len;
      break;
    }
  }
  if (artifact_len > 0) {
    SinkStr(s, ",\"artifact\":");
    SinkJsonString(s, artifact, artifact_len);
  }

  // Pass 2: drain every ring, oldest surviving record first.
  SinkStr(s, ",\"threads\":[");
  static_assert(kFlightRingCapacity <= 256, "stack drain buffer sizing");
  Rec recs[kFlightRingCapacity];
  bool first_ring = true;
  for (int ri = 0; ri < rings && ri < kFlightMaxRings; ++ri) {
    const int n = DrainRing(g_rings[ri], recs);
    if (n == 0) continue;
    if (!first_ring) SinkStr(s, ",");
    first_ring = false;
    SinkStr(s, "{\"ring\":");
    SinkI64(s, ri);
    SinkStr(s, ",\"events\":[");
    for (int i = 0; i < n; ++i) {
      if (i > 0) SinkStr(s, ",");
      EmitEvent(s, recs[i]);
    }
    SinkStr(s, "]}");
  }
  SinkStr(s, "],");
  EmitMetrics(s);
  SinkStr(s, "}}\n");
  SinkFlush(s);
  return !s.failed;
}

void FatalSignalHandler(int sig) {
  // One dump per process; a second fault (or a racing second thread) skips
  // straight to re-raising.
  if (!g_signal_dumped.exchange(true)) {
    const int fd = g_dump_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
      ::lseek(fd, 0, SEEK_SET);
      while (::ftruncate(fd, 0) < 0 && errno == EINTR) {
      }
      WriteFlightDumpFd(fd, FlightDumpTrigger::kSignal, sig);
      ::fsync(fd);
    }
  }
  // SA_RESETHAND restored the default disposition on handler entry; the
  // re-raised signal is delivered when the handler returns, so the process
  // still dies with the original signal's termination status.
  ::raise(sig);
}

}  // namespace

const char* FlightEventTypeName(std::uint32_t type) {
  switch (static_cast<FlightEventType>(type)) {
    case FlightEventType::kStageBegin:
      return "stage_begin";
    case FlightEventType::kStageEnd:
      return "stage_end";
    case FlightEventType::kMonitorVerdict:
      return "monitor";
    case FlightEventType::kSafetyTransition:
      return "safety_state";
    case FlightEventType::kCandidateBegin:
      return "candidate_begin";
    case FlightEventType::kCandidateEnd:
      return "candidate_end";
    case FlightEventType::kCandidateKept:
      return "candidate_kept";
    case FlightEventType::kServeBegin:
      return "serve_begin";
    case FlightEventType::kServeEnd:
      return "serve_end";
  }
  return "unknown";
}

const char* FlightStageName(std::uint32_t stage) {
  switch (static_cast<FlightStage>(stage)) {
    case FlightStage::kTick:
      return "tick";
    case FlightStage::kScenario:
      return "scenario";
    case FlightStage::kPerception:
      return "perception";
    case FlightStage::kPrediction:
      return "prediction";
    case FlightStage::kPlanning:
      return "planning";
    case FlightStage::kControl:
      return "control";
    case FlightStage::kSafety:
      return "safety";
    case FlightStage::kCanBus:
      return "canbus";
    case FlightStage::kLocalization:
      return "localization";
  }
  return "unknown";
}

const char* FlightSafetyStateName(std::uint32_t state) {
  switch (state) {
    case 0:
      return "nominal";
    case 1:
      return "limp_home";
    case 2:
      return "safe_stop";
    default:
      return "unknown";
  }
}

const char* FlightMonitorName(std::uint32_t monitor) {
  switch (monitor) {
    case 0:
      return "range";
    case 1:
      return "plausibility";
    case 2:
      return "deadline";
    case 3:
      return "control_flow";
    case 4:
      return "command";
    case 5:
      return "can_bus";
    default:
      return "unknown";
  }
}

void SetFlightRecorderEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool FlightRecorderEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void SetFlightWallClock(bool enabled) {
  g_wall_clock.store(enabled, std::memory_order_relaxed);
}

void RecordFlightEvent(FlightEventType type, std::uint32_t a, std::uint32_t b,
                       std::int64_t c) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (t_ring.index < 0) {
    if (t_ring.index == -2 || (t_ring.index = AcquireRingIndex()) < 0) {
      t_ring.index = -2;
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Ring& ring = g_rings[t_ring.index];
  const std::uint64_t cursor = ring.cursor.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[cursor % kFlightRingCapacity];
  const std::uint32_t version = slot.version.load(std::memory_order_relaxed);
  slot.version.store(version + 1, std::memory_order_relaxed);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(g_seq.fetch_add(1, std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  slot.type.store(static_cast<std::uint32_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.wall_ns.store(
      g_wall_clock.load(std::memory_order_relaxed) ? WallNowNs() : 0,
      std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.version.store(version + 2, std::memory_order_relaxed);  // even: stable
  ring.cursor.store(cursor + 1, std::memory_order_release);
  g_events.fetch_add(1, std::memory_order_relaxed);
}

FlightStageScope::FlightStageScope(FlightStage stage, std::int64_t tick)
    : stage_(stage), tick_(tick) {
  RecordFlightEvent(FlightEventType::kStageBegin,
                    static_cast<std::uint32_t>(stage_), 0, tick_);
}

FlightStageScope::~FlightStageScope() {
  RecordFlightEvent(FlightEventType::kStageEnd,
                    static_cast<std::uint32_t>(stage_), 0, tick_);
}

FlightRecorderStats GetFlightRecorderStats() {
  FlightRecorderStats stats;
  stats.events = g_events.load(std::memory_order_relaxed);
  stats.dropped = g_dropped.load(std::memory_order_relaxed);
  stats.rings_in_use = g_rings_in_use.load(std::memory_order_relaxed);
  stats.ring_capacity = kFlightRingCapacity;
  return stats;
}

void SetFlightArtifactPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_artifact_mu);
  const std::size_t len = path.size() < kArtifactMax ? path.size() : 0;
  const std::uint32_t v = g_artifact_version.load(std::memory_order_relaxed);
  g_artifact_version.store(v + 1, std::memory_order_relaxed);  // odd
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < len; ++i) {
    g_artifact[i].store(path[i], std::memory_order_relaxed);
  }
  g_artifact_len.store(len, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  g_artifact_version.store(v + 2, std::memory_order_release);  // even
}

bool WriteFlightDumpFd(int fd, FlightDumpTrigger trigger, int signal_number) {
  Sink sink;
  sink.flush = FdFlush;
  sink.ctx = &fd;
  return WriteDumpToSink(sink, trigger, signal_number);
}

bool WriteFlightDump(const std::string& path, FlightDumpTrigger trigger,
                     int signal_number) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool ok = WriteFlightDumpFd(fd, trigger, signal_number);
  ::close(fd);
  return ok;
}

std::string FlightDumpString(FlightDumpTrigger trigger, int signal_number) {
  std::string out;
  Sink sink;
  sink.flush = StringFlush;
  sink.ctx = &out;
  WriteDumpToSink(sink, trigger, signal_number);
  return out;
}

bool InstallFlightSignalHandlers(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const int prev = g_dump_fd.exchange(fd, std::memory_order_acq_rel);
  if (prev >= 0) ::close(prev);
  g_signal_dumped.store(false, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = FatalSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGFPE, &sa, nullptr);
  return true;
}

void ArmFlightOracleDump(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_oracle_mu);
  const std::size_t len =
      path.size() < kArtifactMax - 1 ? path.size() : kArtifactMax - 1;
  std::memcpy(g_oracle_path, path.data(), len);
  g_oracle_path[len] = '\0';
  g_oracle_dumped.store(false, std::memory_order_relaxed);
  g_oracle_armed.store(true, std::memory_order_release);
}

void OnFlightOracleViolation() {
  if (!g_oracle_armed.load(std::memory_order_acquire)) return;
  if (g_oracle_dumped.exchange(true)) return;  // latched: one box per run
  std::lock_guard<std::mutex> lock(g_oracle_mu);
  WriteFlightDump(g_oracle_path, FlightDumpTrigger::kOracle);
}

void ResetFlightRecorderForTesting() {
  for (int ri = 0; ri < kFlightMaxRings; ++ri) {
    Ring& ring = g_rings[ri];
    ring.cursor.store(0, std::memory_order_relaxed);
    for (int i = 0; i < kFlightRingCapacity; ++i) {
      Slot& slot = ring.slots[i];
      slot.version.store(0, std::memory_order_relaxed);
      slot.type.store(0, std::memory_order_relaxed);
      slot.a.store(0, std::memory_order_relaxed);
      slot.b.store(0, std::memory_order_relaxed);
      slot.seq.store(0, std::memory_order_relaxed);
      slot.c.store(0, std::memory_order_relaxed);
      slot.wall_ns.store(0, std::memory_order_relaxed);
    }
  }
  g_seq.store(0, std::memory_order_relaxed);
  g_events.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_artifact_mu);
    const std::uint32_t v = g_artifact_version.load(std::memory_order_relaxed);
    g_artifact_version.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    g_artifact_len.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    g_artifact_version.store(v + 2, std::memory_order_release);
  }
  g_oracle_armed.store(false, std::memory_order_relaxed);
  g_oracle_dumped.store(false, std::memory_order_relaxed);
}

}  // namespace certkit::obs

