#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/check.h"
#include "timing/timing.h"

namespace certkit::obs {

namespace {

// Fixed-width double rendering so exports are byte-stable across platforms
// with identical inputs (no locale, no %g exponent-form ambiguity for the
// magnitudes metrics take).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Gauge::Set(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = v;
}

void Gauge::Add(double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ += delta;
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

void Gauge::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = 0.0;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CERTKIT_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  CERTKIT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be ascending");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double v) {
  if (!std::isfinite(v)) return;
  // First bucket whose inclusive upper bound covers v; overflow otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[index];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(bounds)).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = h->bounds();
    row.buckets = h->BucketCounts();
    row.count = h->count();
    row.sum = h->sum();
    row.min = h->min();
    row.max = h->max();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsJson(const MetricsSnapshot& snapshot,
                        bool include_timing) {
  std::ostringstream out;
  out << "{\"metrics\":{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << snapshot.counters[i].first
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << snapshot.gauges[i].first
        << "\":" << Num(snapshot.gauges[i].second);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "\"" << h.name << "\":{\"count\":" << h.count << ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ",";
      out << Num(h.bounds[b]);
    }
    out << "]";
    if (include_timing) {
      out << ",\"buckets\":[";
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        if (b > 0) out << ",";
        out << h.buckets[b];
      }
      out << "],\"sum\":" << Num(h.sum) << ",\"min\":" << Num(h.min)
          << ",\"max\":" << Num(h.max);
    }
    out << "}";
  }
  // Timers come from the same instrumentation (obs::Span feeds the
  // ExecutionTimer the WCET estimates read); sample counts are
  // deterministic, the statistics are wall clock.
  out << "},\"timers\":{";
  const auto stats = timing::TimerRegistry::Instance().SnapshotStats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << stats[i].first << "\":{\"count\":" << stats[i].second.count;
    if (include_timing && stats[i].second.count > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ",\"mean_us\":%.3f,\"p95_us\":%.3f,\"p99_us\":%.3f,"
                    "\"max_us\":%.3f",
                    stats[i].second.mean * 1e6, stats[i].second.p95 * 1e6,
                    stats[i].second.p99 * 1e6, stats[i].second.max * 1e6);
      out << buf;
    }
    out << "}";
  }
  out << "}}}";
  return out.str();
}

}  // namespace certkit::obs
