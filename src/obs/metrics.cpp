#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "support/check.h"
#include "timing/timing.h"

namespace certkit::obs {

namespace {

// Fixed-width double rendering so exports are byte-stable across platforms
// with identical inputs (no locale, no %g exponent-form ambiguity for the
// magnitudes metrics take).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Quantile fields render +inf (overflow bucket) as a JSON string, since
// bare Infinity is not valid JSON.
std::string QuantileNum(double v) {
  if (std::isinf(v)) return "\"+inf\"";
  return Num(v);
}

void AtomicMinDouble(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  CERTKIT_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  CERTKIT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be ascending");
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  if (!std::isfinite(v)) return;
  // First bucket whose inclusive upper bound covers v; overflow otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  AtomicMinDouble(min_, v);
  AtomicMaxDouble(max_, v);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Count last, with release order: a reader that sees count >= 1 also
  // sees a finite min/max (not the ±inf sentinels).
  count_.fetch_add(1, std::memory_order_release);
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t Histogram::count() const {
  return count_.load(std::memory_order_acquire);
}

double Histogram::sum() const {
  return count() == 0 ? 0.0 : sum_.load(std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  return HistogramQuantile(bounds_, BucketCounts(), q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  count_.store(0, std::memory_order_release);
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::int64_t>& buckets, double q) {
  std::int64_t total = 0;
  for (const std::int64_t b : buckets) total += b;
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: the ceil(q*N)-th smallest sample, 1-based; q=0 maps to
  // rank 1 — identical to timing::NearestRankQuantile over a sorted list.
  std::int64_t rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i < bounds.size()) return bounds[i];
      return std::numeric_limits<double>::infinity();  // overflow bucket
    }
  }
  return std::numeric_limits<double>::infinity();
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Publish(const std::string& name, MetricKind kind,
                              const void* metric) {
  // Called with mu_ held, so writers are serial; readers are lock-free.
  const int n = published_count_.load(std::memory_order_relaxed);
  if (n >= kMaxPublished) return;
  published_[n].name = &name;
  published_[n].kind = kind;
  published_[n].metric = metric;
  published_count_.store(n + 1, std::memory_order_release);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    Publish(it->first, MetricKind::kCounter, it->second.get());
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    Publish(it->first, MetricKind::kGauge, it->second.get());
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(bounds)).first;
    Publish(it->first, MetricKind::kHistogram, it->second.get());
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = h->bounds();
    row.buckets = h->BucketCounts();
    row.count = h->count();
    row.sum = h->sum();
    row.min = h->min();
    row.max = h->max();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsJson(const MetricsSnapshot& snapshot,
                        bool include_timing) {
  std::ostringstream out;
  out << "{\"metrics\":{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << snapshot.counters[i].first
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << snapshot.gauges[i].first
        << "\":" << Num(snapshot.gauges[i].second);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "\"" << h.name << "\":{\"count\":" << h.count << ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ",";
      out << Num(h.bounds[b]);
    }
    out << "]";
    if (include_timing) {
      out << ",\"buckets\":[";
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        if (b > 0) out << ",";
        out << h.buckets[b];
      }
      out << "],\"sum\":" << Num(h.sum) << ",\"min\":" << Num(h.min)
          << ",\"max\":" << Num(h.max)
          << ",\"p50\":" << QuantileNum(HistogramQuantile(h.bounds, h.buckets, 0.50))
          << ",\"p90\":" << QuantileNum(HistogramQuantile(h.bounds, h.buckets, 0.90))
          << ",\"p99\":" << QuantileNum(HistogramQuantile(h.bounds, h.buckets, 0.99));
    }
    out << "}";
  }
  // Timers come from the same instrumentation (obs::Span feeds the
  // ExecutionTimer the WCET estimates read); sample counts are
  // deterministic, the statistics are wall clock.
  out << "},\"timers\":{";
  const auto stats = timing::TimerRegistry::Instance().SnapshotStats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << stats[i].first << "\":{\"count\":" << stats[i].second.count;
    if (include_timing && stats[i].second.count > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ",\"mean_us\":%.3f,\"p95_us\":%.3f,\"p99_us\":%.3f,"
                    "\"max_us\":%.3f",
                    stats[i].second.mean * 1e6, stats[i].second.p95 * 1e6,
                    stats[i].second.p99 * 1e6, stats[i].second.max * 1e6);
      out << buf;
    }
    out << "}";
  }
  out << "}}}";
  return out.str();
}

}  // namespace certkit::obs
