// certkit obs: a registry of named counters, gauges, and fixed-bucket
// histograms — the queryable side of the observability layer.
//
// The ISO 26262 assessment needs monitor activity (violations, deadline
// misses, degradation transitions) and fleet behavior (queue depth,
// candidates evaluated) as *numbers a tool can read*, not lines in a log.
// Every metric here is designed so that its exported value is a pure
// function of the workload and the seed:
//
//  * Counter   — monotonically increasing int64; increments commute, so
//                concurrent fleet workers produce the same total for any
//                --jobs count;
//  * Gauge     — last-set double; set only from serial sections (the
//                campaign's breed/merge phases) to stay deterministic;
//  * Histogram — fixed upper-bound buckets. Sample *counts* are
//                deterministic (one sample per stage per tick); the bucket
//                occupancy of duration histograms is wall-clock-derived, so
//                the JSON export gates bucket/sum/min/max/quantile fields
//                behind include_timing, matching the campaign-JSON
//                convention.
//
// Every metric is readable without taking a lock: counters, gauges, and
// histogram buckets are plain atomics, and the registry publishes a
// fixed-capacity array of {name, kind, pointer} entries with a
// release-stored count. That makes the whole registry safe to walk from
// the flight recorder's fatal-signal dump path (flight_recorder.h), which
// may fire while another thread holds no lock, one lock, or is mid-update.
//
// MetricsJson(Snapshot(), ...) is the export; schema in DESIGN.md.
#ifndef CERTKIT_OBS_METRICS_H_
#define CERTKIT_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace certkit::obs {

class Counter {
 public:
  void Add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  // Atomic increment, for live levels (the serve queue depth decrements as
  // each request retires). Adds commute, so the settled value is
  // deterministic even when workers race; only intermediate readings vary.
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds:
// sample v lands in the first bucket with v <= bounds[i]; samples above the
// last bound land in the implicit overflow bucket (index bounds.size()).
// Non-finite samples are dropped (recorded nowhere, not even the count) —
// a NaN duration is an instrumentation bug, not a tail observation.
//
// Lock-free: Record touches only atomics (count_ is bumped last, with
// release order, so a reader that observes count >= 1 also observes a real
// min/max). Accessors are therefore safe from the signal-handler dump path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket occupancy, length bounds().size() + 1 (overflow last).
  std::vector<std::int64_t> BucketCounts() const;
  std::int64_t count() const;
  double sum() const;
  double min() const;  // 0.0 when empty
  double max() const;  // 0.0 when empty
  // Nearest-rank quantile over bucket upper bounds: with N = count() and
  // rank = ceil(q * N), returns the upper bound of the bucket containing
  // the rank-th smallest sample. Overflow-bucket samples report +inf
  // (their bound is unbounded); an empty histogram reports 0.0. Same rank
  // law as timing::NearestRankQuantile, pinned by tests.
  double Quantile(double q) const;
  void Reset();

  // Raw lock-free bucket access for the async-signal-safe flight-dump
  // writer (BucketCounts allocates; this does not).
  std::size_t bucket_count() const { return buckets_.size(); }
  std::int64_t bucket_value(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// The Histogram::Quantile law as a free function over snapshot rows (the
// JSON exporter and the independent dump validator both use it).
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::int64_t>& buckets, double q);

// A point-in-time copy of every registered metric, in name order.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::int64_t> buckets;  // overflow last
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One registry entry, published for lock-free iteration. `name` points at
// the std::map node's key (node-stable for the process lifetime; the
// registry never erases) and `metric` at the heap object behind the
// unique_ptr, so both stay valid once the entry is visible.
struct PublishedMetric {
  const std::string* name = nullptr;
  MetricKind kind = MetricKind::kCounter;
  const void* metric = nullptr;
};

// Process-wide metric registry. Get* registers on first use and returns a
// stable reference afterwards (ResetAll zeroes values but never invalidates
// references, so instrumentation sites may cache them).
class MetricsRegistry {
 public:
  // Registrations beyond this many metrics still work (map-backed) but are
  // invisible to the lock-free published view; the current codebase
  // registers a few dozen.
  static constexpr int kMaxPublished = 256;

  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` is consulted on first registration only; later calls return
  // the existing histogram regardless.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;
  void ResetAll();

  // Lock-free registry walk (registration order, not name order). The
  // count is release-published after the entry fields are written, so a
  // reader — including a signal handler — sees only complete entries.
  int PublishedCount() const {
    const int n = published_count_.load(std::memory_order_acquire);
    return n < kMaxPublished ? n : kMaxPublished;
  }
  const PublishedMetric& PublishedAt(int i) const { return published_[i]; }

 private:
  MetricsRegistry() = default;
  void Publish(const std::string& name, MetricKind kind, const void* metric);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  PublishedMetric published_[kMaxPublished];
  std::atomic<int> published_count_{0};
};

// Renders a snapshot (plus the timing::TimerRegistry's sample counts) as
// the metrics JSON document. Deterministic for a fixed seed and workload;
// `include_timing` adds the wall-clock-derived fields (histogram buckets,
// sums, extrema, p50/p90/p99 quantiles, and timer statistics). Schema in
// DESIGN.md.
std::string MetricsJson(const MetricsSnapshot& snapshot, bool include_timing);

}  // namespace certkit::obs

#endif  // CERTKIT_OBS_METRICS_H_
