// certkit obs: a registry of named counters, gauges, and fixed-bucket
// histograms — the queryable side of the observability layer.
//
// The ISO 26262 assessment needs monitor activity (violations, deadline
// misses, degradation transitions) and fleet behavior (queue depth,
// candidates evaluated) as *numbers a tool can read*, not lines in a log.
// Every metric here is designed so that its exported value is a pure
// function of the workload and the seed:
//
//  * Counter   — monotonically increasing int64; increments commute, so
//                concurrent fleet workers produce the same total for any
//                --jobs count;
//  * Gauge     — last-set double; set only from serial sections (the
//                campaign's breed/merge phases) to stay deterministic;
//  * Histogram — fixed upper-bound buckets. Sample *counts* are
//                deterministic (one sample per stage per tick); the bucket
//                occupancy of duration histograms is wall-clock-derived, so
//                the JSON export gates bucket/sum/min/max fields behind
//                include_timing, matching the campaign-JSON convention.
//
// MetricsJson(Snapshot(), ...) is the export; schema in DESIGN.md.
#ifndef CERTKIT_OBS_METRICS_H_
#define CERTKIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace certkit::obs {

class Counter {
 public:
  void Add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v);
  // Atomic increment, for live levels (the serve queue depth decrements as
  // each request retires). Adds commute, so the settled value is
  // deterministic even when workers race; only intermediate readings vary.
  void Add(double delta);
  double value() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  double value_ = 0.0;
};

// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds:
// sample v lands in the first bucket with v <= bounds[i]; samples above the
// last bound land in the implicit overflow bucket (index bounds.size()).
// Non-finite samples are dropped (recorded nowhere, not even the count) —
// a NaN duration is an instrumentation bug, not a tail observation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket occupancy, length bounds().size() + 1 (overflow last).
  std::vector<std::int64_t> BucketCounts() const;
  std::int64_t count() const;
  double sum() const;
  double min() const;  // 0.0 when empty
  double max() const;  // 0.0 when empty
  void Reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A point-in-time copy of every registered metric, in name order.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::int64_t> buckets;  // overflow last
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
};

// Process-wide metric registry. Get* registers on first use and returns a
// stable reference afterwards (ResetAll zeroes values but never invalidates
// references, so instrumentation sites may cache them).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` is consulted on first registration only; later calls return
  // the existing histogram regardless.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;
  void ResetAll();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Renders a snapshot (plus the timing::TimerRegistry's sample counts) as
// the metrics JSON document. Deterministic for a fixed seed and workload;
// `include_timing` adds the wall-clock-derived fields (histogram buckets,
// sums, extrema, and timer statistics). Schema in DESIGN.md.
std::string MetricsJson(const MetricsSnapshot& snapshot, bool include_timing);

}  // namespace certkit::obs

#endif  // CERTKIT_OBS_METRICS_H_
