#include "obs/trace_validate.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

namespace certkit::obs {

namespace {

// --- a minimal recursive-descent JSON reader ------------------------------
//
// Enough JSON for trace-event documents: null/bool/number/string/array/
// object, no surrogate-pair decoding (escapes are validated, not decoded).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                    // kArray
  std::map<std::string, JsonValue> members;        // kObject

  bool IsInt() const {
    return kind == Kind::kNumber && number == static_cast<double>(
                                                  static_cast<std::int64_t>(
                                                      number));
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out)) {
      *error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing bytes after top-level value at offset " +
               std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members[key] = std::move(value);
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            out->push_back(esc);
            ++pos_;
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("short \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return Fail("bad \\u escape");
              }
            }
            out->push_back('?');  // validated, not decoded
            pos_ += 5;
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    // Exception-free conversion: from_chars neither throws nor inspects the
    // locale, and it distinguishes a literal that is *syntactically* broken
    // ("1e", "1.2.3") from one that is well-formed but does not fit a
    // double ("1e999") — two different validator diagnostics.
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec == std::errc::result_out_of_range) {
      return Fail("numeric literal out of range");
    }
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      return Fail("malformed number");
    }
    out->number = value;
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- trace-event schema checks --------------------------------------------

const JsonValue* Member(const JsonValue& obj, const std::string& key) {
  const auto it = obj.members.find(key);
  return it == obj.members.end() ? nullptr : &it->second;
}

bool EventError(std::size_t index, const std::string& what,
                std::string* error) {
  *error = "event " + std::to_string(index) + ": " + what;
  return false;
}

struct Interval {
  std::int64_t begin;
  std::int64_t end;  // exclusive
};

bool CheckEvents(const std::vector<JsonValue>& events, std::string* error) {
  std::map<std::int64_t, std::vector<Interval>> by_tid;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& ev = events[i];
    if (ev.kind != JsonValue::Kind::kObject) {
      return EventError(i, "not an object", error);
    }
    const JsonValue* name = Member(ev, "name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return EventError(i, "missing string \"name\"", error);
    }
    const JsonValue* ph = Member(ev, "ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->str.size() != 1) {
      return EventError(i, "missing one-char string \"ph\"", error);
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = Member(ev, key);
      if (v == nullptr || !v->IsInt()) {
        return EventError(i, std::string("missing integer \"") + key + "\"",
                          error);
      }
    }
    if (ph->str == "M") {
      const JsonValue* args = Member(ev, "args");
      if (args == nullptr || args->kind != JsonValue::Kind::kObject) {
        return EventError(i, "metadata event without \"args\" object", error);
      }
      continue;
    }
    if (ph->str == "X") {
      const JsonValue* ts = Member(ev, "ts");
      const JsonValue* dur = Member(ev, "dur");
      if (ts == nullptr || !ts->IsInt() || ts->number < 0) {
        return EventError(i, "X event needs integer ts >= 0", error);
      }
      if (dur == nullptr || !dur->IsInt() || dur->number < 1) {
        return EventError(i, "X event needs integer dur >= 1", error);
      }
      const auto tid = static_cast<std::int64_t>(Member(ev, "tid")->number);
      by_tid[tid].push_back(
          Interval{static_cast<std::int64_t>(ts->number),
                   static_cast<std::int64_t>(ts->number + dur->number)});
      continue;
    }
    return EventError(i, "unsupported phase \"" + ph->str + "\"", error);
  }

  // Nesting check per tid: sorted by (begin, -length), a stack of enclosing
  // intervals must always contain the next one or be disjoint from it.
  for (auto& [tid, intervals] : by_tid) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;
              });
    std::vector<Interval> stack;
    for (const Interval& iv : intervals) {
      while (!stack.empty() && stack.back().end <= iv.begin) {
        stack.pop_back();
      }
      if (!stack.empty() && iv.end > stack.back().end) {
        std::ostringstream msg;
        msg << "tid " << tid << ": span [" << iv.begin << "," << iv.end
            << ") partially overlaps [" << stack.back().begin << ","
            << stack.back().end << ")";
        *error = msg.str();
        return false;
      }
      stack.push_back(iv);
    }
  }
  return true;
}

}  // namespace

bool ValidateChromeTrace(const std::string& json, std::string* error) {
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root, error)) return false;

  const std::vector<JsonValue>* events = nullptr;
  if (root.kind == JsonValue::Kind::kArray) {
    events = &root.items;
  } else if (root.kind == JsonValue::Kind::kObject) {
    const JsonValue* te = Member(root, "traceEvents");
    if (te == nullptr || te->kind != JsonValue::Kind::kArray) {
      *error = "top-level object has no \"traceEvents\" array";
      return false;
    }
    events = &te->items;
  } else {
    *error = "top level is neither an object nor an array";
    return false;
  }
  return CheckEvents(*events, error);
}

}  // namespace certkit::obs
