// certkit obs: deterministic tracing for the AD pipeline, the safety stack,
// the campaign fleet, and the analysis driver.
//
// The paper's Observation 1 argues that Apollo-scale complexity "challenges
// the functional verification of the code as well as its timing analysis";
// ISO 26262-6 Tables 4/10 ask for temporal monitoring and evidence of
// execution behavior. This module is that evidence substrate: RAII Spans
// record where a tick spends its time, which monitor fired when, and how the
// fleet schedules work — and the export is byte-identical for any --jobs at
// a fixed --seed.
//
// Determinism contract (mirrors cov::ThreadCapture and the campaign JSON):
//
//  * Timestamps are LOGICAL: every SpanCapture owns a sequence clock that
//    starts at 0 and advances by one at each span begin and each span end.
//    Nesting is therefore exact (a child's [ts, ts+dur] interval lies
//    strictly inside its parent's) and independent of wall clock, thread
//    count, and scheduling.
//  * Capture is per thread: a fleet worker captures exactly the spans the
//    candidate it is evaluating fires, like cov::ThreadCapture. Captures
//    nest (an inner capture shadows the outer one on the same thread), so
//    the campaign's control spans and its candidates' spans never mix even
//    when the caller drains pool iterations itself.
//  * The global TraceRecorder is only ever appended to from serial merge
//    sections, in deterministic order; each AddTrack call becomes one
//    Chrome trace-event thread (tid).
//  * Wall-clock durations are still measured (they feed the
//    timing::ExecutionTimer/WCET machinery and the per-stage duration
//    histograms) but appear in the export only when timing is requested,
//    matching the campaign-JSON --timing convention.
#ifndef CERTKIT_OBS_TRACE_H_
#define CERTKIT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace certkit::timing {
class ExecutionTimer;
}

namespace certkit::obs {

class Histogram;

// Global span-recording switch. Off by default: Span construction is inert
// (no clock read, no allocation) unless both tracing is enabled and the
// calling thread has an active SpanCapture. Timers/histograms passed to a
// Span are always fed, so enabling tracing never changes WCET statistics.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

// One completed span, in capture-local logical time.
struct SpanEvent {
  std::string name;
  std::string cat;
  std::int64_t ts = 0;        // logical begin (sequence clock)
  std::int64_t dur = 0;       // logical duration (>= 1)
  double wall_seconds = 0.0;  // measured; exported only with timing
};

// One horizontal row of the exported trace (a Chrome trace-event tid).
struct TraceTrack {
  std::string label;
  std::vector<SpanEvent> events;
};

// Captures every span the *calling thread* completes between construction
// and Take()/destruction. The capture owns the logical clock, so each
// capture's events start at ts 0 regardless of what ran before — this is
// what makes a fleet candidate's track a pure function of the candidate.
// Captures nest per thread: constructing a second capture shadows the first
// until the inner one is destroyed (LIFO; enforced).
class SpanCapture {
 public:
  SpanCapture();
  ~SpanCapture();
  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  // Returns everything captured so far and clears the buffer.
  std::vector<SpanEvent> Take();

 private:
  friend class Span;
  std::vector<SpanEvent> events_;
  std::int64_t clock_ = 0;
  SpanCapture* prev_ = nullptr;  // enclosing capture on this thread
};

// RAII span. Construction marks the logical begin, destruction the logical
// end; the completed event is appended to the innermost SpanCapture of the
// constructing thread (if tracing is enabled). The optional sinks are
// always fed with the measured wall-clock duration:
//   * `timer`     — the timing::ExecutionTimer whose WCET/pWCET estimates
//                   should include this region (one instrumentation point,
//                   both analyses);
//   * `histogram` — a fixed-bucket duration histogram (seconds).
// Must be destroyed on the constructing thread, in LIFO order.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "",
                timing::ExecutionTimer* timer = nullptr,
                Histogram* histogram = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  timing::ExecutionTimer* timer_;
  Histogram* histogram_;
  SpanCapture* capture_;  // capture active at construction (may be null)
  std::int64_t begin_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
  bool measure_wall_ = false;
};

// Process-wide ordered collection of finished tracks. Appended to only from
// serial merge sections (the campaign's per-candidate merge loop, the
// driver's path-ordered reduce, a CLI drive), so track ids — assigned in
// call order — are deterministic.
class TraceRecorder {
 public:
  static TraceRecorder& Instance();

  // Appends a track; returns its tid (dense from 0, in call order).
  // Empty tracks are recorded too: a track with no events is still evidence
  // that the producer ran.
  std::int64_t AddTrack(std::string label, std::vector<SpanEvent> events);

  std::vector<TraceTrack> Snapshot() const;
  std::int64_t track_count() const;
  void Clear();

 private:
  TraceRecorder() = default;
  mutable std::mutex mu_;
  std::vector<TraceTrack> tracks_;
};

// Renders tracks as a Chrome trace-event JSON document (an object with a
// "traceEvents" array), loadable in chrome://tracing and Perfetto. Each
// track becomes one tid with a thread_name metadata record; each span an
// "X" (complete) event with logical ts/dur. When `include_timing` is set,
// every X event additionally carries args.wall_us — the only
// nondeterministic field. Schema documented in DESIGN.md.
std::string ChromeTraceJson(const std::vector<TraceTrack>& tracks,
                            bool include_timing);

}  // namespace certkit::obs

#endif  // CERTKIT_OBS_TRACE_H_
