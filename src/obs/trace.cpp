#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "support/check.h"
#include "timing/timing.h"

namespace certkit::obs {

namespace {

std::atomic<bool> g_tracing{false};

thread_local SpanCapture* t_capture = nullptr;

// JSON string escaping for span/track names (control chars, quotes,
// backslashes; everything else passes through).
void AppendEscaped(std::ostringstream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

SpanCapture::SpanCapture() : prev_(t_capture) { t_capture = this; }

SpanCapture::~SpanCapture() {
  CERTKIT_CHECK_MSG(t_capture == this,
                    "SpanCapture destroyed out of LIFO order or off-thread");
  t_capture = prev_;
}

std::vector<SpanEvent> SpanCapture::Take() {
  std::vector<SpanEvent> out;
  out.swap(events_);
  return out;
}

Span::Span(const char* name, const char* cat, timing::ExecutionTimer* timer,
           Histogram* histogram)
    : name_(name),
      cat_(cat),
      timer_(timer),
      histogram_(histogram),
      capture_(TracingEnabled() ? t_capture : nullptr) {
  measure_wall_ = timer_ != nullptr || histogram_ != nullptr ||
                  capture_ != nullptr;
  if (measure_wall_) wall_start_ = std::chrono::steady_clock::now();
  if (capture_ != nullptr) begin_ = capture_->clock_++;
}

Span::~Span() {
  double wall = 0.0;
  if (measure_wall_) {
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start_)
               .count();
    if (wall < 0.0) wall = 0.0;  // steady_clock paranoia on odd platforms
  }
  if (timer_ != nullptr) timer_->Record(wall);
  if (histogram_ != nullptr) histogram_->Record(wall);
  if (capture_ != nullptr) {
    CERTKIT_CHECK_MSG(t_capture == capture_,
                      "Span outlived the SpanCapture it was recorded under");
    const std::int64_t end = capture_->clock_++;
    capture_->events_.push_back(
        SpanEvent{name_, cat_, begin_, end - begin_, wall});
  }
}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

std::int64_t TraceRecorder::AddTrack(std::string label,
                                     std::vector<SpanEvent> events) {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.push_back(TraceTrack{std::move(label), std::move(events)});
  return static_cast<std::int64_t>(tracks_.size()) - 1;
}

std::vector<TraceTrack> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracks_;
}

std::int64_t TraceRecorder::track_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(tracks_.size());
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.clear();
}

std::string ChromeTraceJson(const std::vector<TraceTrack>& tracks,
                            bool include_timing) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"certkit\"}}";
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t
        << ",\"args\":{\"name\":\"";
    AppendEscaped(out, tracks[t].label);
    out << "\"}}";
    for (const SpanEvent& ev : tracks[t].events) {
      out << ",{\"name\":\"";
      AppendEscaped(out, ev.name);
      out << "\",\"cat\":\"";
      AppendEscaped(out, ev.cat.empty() ? "certkit" : ev.cat);
      out << "\",\"ph\":\"X\",\"ts\":" << ev.ts << ",\"dur\":" << ev.dur
          << ",\"pid\":0,\"tid\":" << t;
      if (include_timing) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"wall_us\":%.3f}",
                      ev.wall_seconds * 1e6);
        out << buf;
      }
      out << "}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

}  // namespace certkit::obs
