// certkit obs: structural validation of exported Chrome trace-event JSON.
//
// The exporter (ChromeTraceJson) and this validator are deliberately
// independent implementations: the validator re-parses the bytes with its
// own minimal JSON reader and checks the trace-event schema plus the
// invariants our logical clock guarantees, so a formatting or sequencing
// bug in the exporter cannot hide. tools/trace_lint wraps this for CI;
// the obs tests run it on every export they produce.
//
// Accepted shape (the subset of the trace-event format certkit emits, which
// chrome://tracing and Perfetto both load):
//   * top level: an object with a "traceEvents" array, or a bare array;
//   * every event: an object with string "name" and "ph", integer "pid"
//     and "tid";
//   * "X" (complete) events: integer "ts" and "dur" with ts >= 0, dur >= 1;
//   * "M" (metadata) events: an "args" object;
//   * per tid, "X" events must be properly nested — any two intervals are
//     disjoint or one contains the other (partial overlap would render as
//     a corrupted stack and indicates a logical-clock bug).
#ifndef CERTKIT_OBS_TRACE_VALIDATE_H_
#define CERTKIT_OBS_TRACE_VALIDATE_H_

#include <string>

namespace certkit::obs {

// Returns true when `json` is a well-formed trace-event document per the
// rules above; otherwise false with a one-line diagnosis in *error.
bool ValidateChromeTrace(const std::string& json, std::string* error);

}  // namespace certkit::obs

#endif  // CERTKIT_OBS_TRACE_VALIDATE_H_
