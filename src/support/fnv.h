// certkit support: FNV-1a/64 streaming digest helpers.
//
// The same hash family already keys the driver's artifact cache and the
// detector-batch bench; this header centralizes the constants plus typed
// append helpers so digest streams (replay tick signatures, analysis
// digests) are built from one implementation. Doubles are hashed by bit
// pattern — the digests gate *bit* identity, not approximate equality —
// with -0.0 and every NaN payload hashing as distinct values on purpose.
#ifndef CERTKIT_SUPPORT_FNV_H_
#define CERTKIT_SUPPORT_FNV_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace certkit::support {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t FnvBytes(const void* data, std::size_t size,
                              std::uint64_t seed = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    seed ^= bytes[i];
    seed *= kFnvPrime;
  }
  return seed;
}

inline std::uint64_t FnvStr(std::string_view s,
                            std::uint64_t seed = kFnvOffsetBasis) {
  return FnvBytes(s.data(), s.size(), seed);
}

inline std::uint64_t FnvU64(std::uint64_t v,
                            std::uint64_t seed = kFnvOffsetBasis) {
  return FnvBytes(&v, sizeof(v), seed);
}

inline std::uint64_t FnvI64(std::int64_t v,
                            std::uint64_t seed = kFnvOffsetBasis) {
  return FnvBytes(&v, sizeof(v), seed);
}

inline std::uint64_t FnvDouble(double v,
                               std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvU64(bits, seed);
}

inline std::uint64_t FnvFloat(float v,
                              std::uint64_t seed = kFnvOffsetBasis) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvBytes(&bits, sizeof(bits), seed);
}

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_FNV_H_
