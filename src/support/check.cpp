#include "support/check.h"

#include <sstream>

namespace certkit::support {

void FailCheck(const char* expr, const char* file, int line,
               const std::string& message) {
  std::ostringstream os;
  os << "CERTKIT_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw ContractViolation(os.str());
}

}  // namespace certkit::support
