#include "support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace certkit::support {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  // Artifacts are shallow by construction; the depth cap turns a malicious
  // deeply-nested input into a parse error instead of a stack overflow.
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members[key] = std::move(value);
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Fail("bad \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (h | 0x20) - 'a' + 10);
            }
            // Our emitter only \u-escapes control characters; decode the
            // single-byte range and reject the rest rather than silently
            // mangling surrogate pairs.
            if (code > 0xFF) return Fail("non-latin \\u escape unsupported");
            out->push_back(static_cast<char>(code));
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec == std::errc::result_out_of_range) {
      // from_chars reports the nearest representable magnitude; a replay
      // artifact never emits such literals (JsonNumber is round-trip), so
      // surface it rather than clamp silently.
      return Fail("numeric literal out of range");
    }
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    out->literal = std::string(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  std::string local_error;
  Parser parser(text, error != nullptr ? error : &local_error);
  if (error != nullptr) error->clear();
  *out = JsonValue();
  return parser.Parse(out);
}

namespace {

void AppendJson(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      if (!v.literal.empty()) {
        *out += v.literal;
      } else {
        *out += JsonNumber(v.number);
      }
      break;
    case JsonValue::Kind::kString:
      *out += JsonEscape(v.string);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) out->push_back(',');
        first = false;
        AppendJson(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members) {
        if (!first) out->push_back(',');
        first = false;
        *out += JsonEscape(key);
        out->push_back(':');
        AppendJson(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

bool FailField(const std::string& key, const char* what, std::string* error) {
  *error = "field '" + key + "': " + what;
  return false;
}

}  // namespace

std::string JsonToString(const JsonValue& v) {
  std::string out;
  AppendJson(v, &out);
  return out;
}

bool JsonGetI64(const JsonValue& obj, const std::string& key,
                std::int64_t* out, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return FailField(key, "missing or not a number", error);
  }
  const auto res = std::from_chars(
      v->literal.data(), v->literal.data() + v->literal.size(), *out);
  if (res.ec != std::errc() ||
      res.ptr != v->literal.data() + v->literal.size()) {
    return FailField(key, "not a 64-bit integer", error);
  }
  return true;
}

bool JsonGetU64(const JsonValue& obj, const std::string& key,
                std::uint64_t* out, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return FailField(key, "missing or not a number", error);
  }
  const auto res = std::from_chars(
      v->literal.data(), v->literal.data() + v->literal.size(), *out);
  if (res.ec != std::errc() ||
      res.ptr != v->literal.data() + v->literal.size()) {
    return FailField(key, "not a 64-bit unsigned integer", error);
  }
  return true;
}

bool JsonGetInt(const JsonValue& obj, const std::string& key, int* out,
                std::string* error) {
  std::int64_t wide = 0;
  if (!JsonGetI64(obj, key, &wide, error)) return false;
  *out = static_cast<int>(wide);
  if (static_cast<std::int64_t>(*out) != wide) {
    return FailField(key, "out of int range", error);
  }
  return true;
}

bool JsonGetDouble(const JsonValue& obj, const std::string& key, double* out,
                   std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return FailField(key, "missing or not a number", error);
  }
  *out = v->number;
  return true;
}

bool JsonGetBool(const JsonValue& obj, const std::string& key, bool* out,
                 std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) {
    return FailField(key, "missing or not a bool", error);
  }
  *out = v->boolean;
  return true;
}

bool JsonGetString(const JsonValue& obj, const std::string& key,
                   std::string* out, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return FailField(key, "missing or not a string", error);
  }
  *out = v->string;
  return true;
}

}  // namespace certkit::support
