// certkit support: Status / Result<T> — recoverable-error propagation.
//
// Status carries an error code and a human-readable message; Result<T> is a
// Status plus a value on success. These are the return types for operations
// that can fail for environmental reasons (missing files, unparseable input).
#ifndef CERTKIT_SUPPORT_STATUS_H_
#define CERTKIT_SUPPORT_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "support/check.h"

namespace certkit::support {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kParseError,
  kOutOfRange,
  kInternal,
};

// Short, stable name for a StatusCode (e.g. "NOT_FOUND").
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "IO_ERROR: cannot open foo.cc".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Result<T>: either an OK status with a value, or a non-OK status.
// Accessing value() on a failed Result is a contract violation.
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    CERTKIT_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CERTKIT_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *value_;
  }
  T& value() & {
    CERTKIT_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *value_;
  }
  T&& value() && {
    CERTKIT_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const& {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_STATUS_H_
