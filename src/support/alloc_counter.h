// support: process-wide heap-allocation counters, the measurement side of
// the allocation-free tick discipline (ISO 26262-6 Table 3 recommends
// avoiding dynamic objects in safety-related software; this harness turns
// that guideline into an enforced, countable property).
//
// The counters are only live in binaries that also compile in
// alloc_hooks.cpp (global operator new/delete replacements). The hooks are
// deliberately NOT part of the support library: replacing operator new is a
// whole-program decision, so each target that wants counting adds the hook
// translation unit explicitly via target_sources. In binaries without the
// hooks, every counter reads zero and AllocCountingActive() is false.
#ifndef SUPPORT_ALLOC_COUNTER_H_
#define SUPPORT_ALLOC_COUNTER_H_

#include <cstdint>

namespace certkit {
namespace support {

// True when the counting operator new/delete replacements are linked into
// this binary (set by alloc_hooks.cpp at static-init time). Tests use this
// to fail fast on a miswired target instead of vacuously passing on zeros.
bool AllocCountingActive();

// Total allocations / deallocations observed so far in this binary, across
// all threads. Monotonic; never reset.
std::uint64_t TotalAllocations();
std::uint64_t TotalDeallocations();
// Total bytes requested from operator new so far.
std::uint64_t TotalAllocatedBytes();

// Scoped delta reader: captures the counters at construction;
// allocations()/bytes() report the growth since then. Allocation-free
// itself (plain loads of atomics).
class AllocScope {
 public:
  AllocScope();
  std::uint64_t allocations() const;
  std::uint64_t deallocations() const;
  std::uint64_t bytes() const;

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_deallocs_;
  std::uint64_t start_bytes_;
};

// Internal: called by the operator new/delete replacements.
namespace alloc_internal {
void RecordAlloc(std::uint64_t bytes);
void RecordDealloc();
void MarkHooksLinked();
}  // namespace alloc_internal

}  // namespace support
}  // namespace certkit

#endif  // SUPPORT_ALLOC_COUNTER_H_
