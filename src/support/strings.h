// certkit support: small string utilities shared by the analyzers.
#ifndef CERTKIT_SUPPORT_STRINGS_H_
#define CERTKIT_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace certkit::support {

// Splits `s` on `sep`; adjacent separators yield empty fields.
// Split("a,,b", ',') == {"a", "", "b"}. Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on any whitespace run; no empty fields are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Identifier-style predicates used by the naming-convention checkers.
bool IsSnakeCase(std::string_view id);       // lower_case_with_underscores
bool IsUpperCamelCase(std::string_view id);  // UpperCamelCase
bool IsLowerCamelCase(std::string_view id);  // lowerCamelCase
bool IsMacroCase(std::string_view id);       // UPPER_CASE_WITH_UNDERSCORES

// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// Formats `v` with `decimals` digits after the point (locale-independent).
std::string FormatDouble(double v, int decimals);

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_STRINGS_H_
