// certkit support: contract-checking macros.
//
// CERTKIT_CHECK is used for programming-error contracts (preconditions,
// invariants). Violations are unrecoverable and abort via std::logic_error so
// that tests can observe them. Recoverable conditions (I/O failures, malformed
// input) use support::Status / support::Result instead.
#ifndef CERTKIT_SUPPORT_CHECK_H_
#define CERTKIT_SUPPORT_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace certkit::support {

// Thrown on contract violation. Deriving from std::logic_error signals that
// the failure is a bug in the caller, not an environmental condition.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void FailCheck(const char* expr, const char* file, int line,
                            const std::string& message);

}  // namespace certkit::support

// Evaluates `cond`; on failure throws ContractViolation with location info.
// Always enabled (not compiled out in release builds): the analysis library
// favours early detection over the negligible cost of the branch.
#define CERTKIT_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::certkit::support::FailCheck(#cond, __FILE__, __LINE__, "");          \
    }                                                                        \
  } while (false)

#define CERTKIT_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::std::ostringstream certkit_check_os_;                                \
      certkit_check_os_ << msg;                                              \
      ::certkit::support::FailCheck(#cond, __FILE__, __LINE__,               \
                                    certkit_check_os_.str());                \
    }                                                                        \
  } while (false)

#endif  // CERTKIT_SUPPORT_CHECK_H_
