// certkit support: a small fixed-size thread pool with fork-join helpers.
//
// The pool is deliberately simple — a locked deque, no work stealing — because
// the analysis workloads it serves (one task per source file) are coarse
// enough that queue contention is negligible. ParallelFor/ParallelMap are the
// intended entry points: they block until every iteration has finished and
// rethrow the first exception raised by any iteration, so callers get the
// same error behavior as a serial loop.
//
// Determinism contract: ParallelMap writes result i to slot i, so output
// order never depends on scheduling. Any pool size (including 0, which runs
// everything inline on the calling thread) produces identical results.
#ifndef CERTKIT_SUPPORT_THREAD_POOL_H_
#define CERTKIT_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace certkit::support {

class ThreadPool {
 public:
  // `num_threads` < 0 selects the hardware concurrency (at least 1);
  // 0 creates no worker threads — tasks then run inline on the submitting
  // thread, which makes single-threaded debugging and TSan baselines easy.
  explicit ThreadPool(int num_threads = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` (runs it inline when the pool has no workers). Tasks
  // must not throw; use ParallelFor for exception-propagating work.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void Wait();

  // Runs fn(0) .. fn(n-1), distributing iterations dynamically over the
  // workers (plus the calling thread, which also drains iterations). Blocks
  // until all iterations finish; if any iteration throws, the first
  // exception (by completion time) is rethrown after the loop has drained.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Picks a worker count: `requested` <= 0 means hardware concurrency.
  static int ResolveJobs(int requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable wake_cv_;   // workers: work available / stopping
  std::condition_variable idle_cv_;   // Wait(): queue drained and idle
  std::size_t active_ = 0;
  bool stop_ = false;
};

// Maps i -> fn(i) for i in [0, n) in parallel; result i lands in slot i, so
// the output is independent of scheduling. T must be default-constructible
// and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool& pool, std::size_t n, const Fn& fn) {
  std::vector<T> out(n);
  pool.ParallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_THREAD_POOL_H_
