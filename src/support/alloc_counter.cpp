#include "support/alloc_counter.h"

#include <atomic>

namespace certkit {
namespace support {

namespace {

// Plain function-local statics would themselves allocate nothing, but
// namespace-scope atomics with constant initialization are guaranteed
// ready before any other static initializer can call operator new.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_hooks_linked{false};

}  // namespace

bool AllocCountingActive() {
  return g_hooks_linked.load(std::memory_order_relaxed);
}

std::uint64_t TotalAllocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t TotalDeallocations() {
  return g_deallocs.load(std::memory_order_relaxed);
}

std::uint64_t TotalAllocatedBytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

AllocScope::AllocScope()
    : start_allocs_(TotalAllocations()),
      start_deallocs_(TotalDeallocations()),
      start_bytes_(TotalAllocatedBytes()) {}

std::uint64_t AllocScope::allocations() const {
  return TotalAllocations() - start_allocs_;
}

std::uint64_t AllocScope::deallocations() const {
  return TotalDeallocations() - start_deallocs_;
}

std::uint64_t AllocScope::bytes() const {
  return TotalAllocatedBytes() - start_bytes_;
}

namespace alloc_internal {

void RecordAlloc(std::uint64_t bytes) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void RecordDealloc() {
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
}

void MarkHooksLinked() {
  g_hooks_linked.store(true, std::memory_order_relaxed);
}

}  // namespace alloc_internal

}  // namespace support
}  // namespace certkit
