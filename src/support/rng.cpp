#include "support/rng.h"

#include <cmath>
#include <numbers>

namespace certkit::support {

namespace {
std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::int64_t Xoshiro256::UniformInt(std::int64_t lo, std::int64_t hi) {
  CERTKIT_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % range);
  std::uint64_t x;
  do {
    x = Next();
  } while (x > limit);
  return lo + static_cast<std::int64_t>(x % range);
}

double Xoshiro256::UniformDouble() {
  // 53 high-quality bits → [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::UniformDouble(double lo, double hi) {
  CERTKIT_CHECK(lo < hi);
  return lo + (hi - lo) * UniformDouble();
}

double Xoshiro256::Gaussian() {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Xoshiro256::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::size_t Xoshiro256::WeightedIndex(const double* weights, std::size_t n) {
  CERTKIT_CHECK(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    CERTKIT_CHECK_MSG(weights[i] >= 0.0, "negative weight at index " << i);
    total += weights[i];
  }
  CERTKIT_CHECK_MSG(total > 0.0, "all weights are zero");
  double r = UniformDouble() * total;
  for (std::size_t i = 0; i < n; ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return n - 1;  // numeric edge: r landed exactly on total
}

}  // namespace certkit::support
