// support: counting global operator new/delete replacements.
//
// NOT a member of any library target — replacing the global allocation
// functions affects the whole program, so only targets that measure
// allocation (the tickperf test, the pipeline_tick bench) compile this
// translation unit in, via target_sources(<tgt> PRIVATE .../alloc_hooks.cpp).
// Putting it in a static library would be fragile anyway: nothing references
// these symbols by name, so the archive member would never be pulled in.
//
// Under ASan/TSan the sanitizer runtime owns the allocator; these
// replacements still forward through malloc correctly, but tests gate their
// zero-allocation assertions on the sanitizer macros instead.
#include <cstdlib>
#include <new>

#include "support/alloc_counter.h"

namespace {

using certkit::support::alloc_internal::MarkHooksLinked;
using certkit::support::alloc_internal::RecordAlloc;
using certkit::support::alloc_internal::RecordDealloc;

void* CountedAlloc(std::size_t size) {
  RecordAlloc(size);
  // malloc(0) may return nullptr; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocNothrow(std::size_t size) noexcept {
  RecordAlloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

// Static-init side channel so AllocCountingActive() reports the truth in
// binaries that link this TU.
struct HookMarker {
  HookMarker() { MarkHooksLinked(); }
} g_hook_marker;

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocNothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocNothrow(size);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}

// C++17 aligned forms (Tensor data is plain float vectors today, but a
// future aligned container must not bypass the count).
void* operator new(std::size_t size, std::align_val_t align) {
  RecordAlloc(size);
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = size == 0 ? a : (size + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) RecordDealloc();
  std::free(p);
}
