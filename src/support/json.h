// certkit support: minimal JSON emit + parse helpers.
//
// The toolkit's JSON emitters were historically printf-built, which is fine
// for human-facing reports but breaks the moment an artifact has to *parse
// back* — %.3f loses double precision, raw string interpolation breaks on a
// quote, and non-finite floats emit tokens JSON does not have. This header
// provides the three primitives every round-trip emitter needs:
//
//   JsonEscape(s)   - quoted, escaped JSON string literal for s
//   JsonNumber(d)   - shortest representation that parses back to exactly
//                     d (std::to_chars round-trip); non-finite -> "null",
//                     because JSON has no Inf/NaN tokens and a replay
//                     artifact must stay machine-parseable
//   JsonValue/ParseJson - a small recursive-descent parser for reading
//                     artifacts back (objects, arrays, numbers, strings
//                     with escapes, bools, null)
//
// The obs trace validator intentionally keeps its own private parser
// (tools/trace_lint is an *independent* checker); this one is for
// round-trip artifact IO.
#ifndef CERTKIT_SUPPORT_JSON_H_
#define CERTKIT_SUPPORT_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace certkit::support {

// Quoted JSON string literal: JsonEscape("a\"b") == "\"a\\\"b\"".
// Control characters are \u-escaped; the output is pure ASCII-safe JSON
// (bytes >= 0x80 pass through untouched, which is valid for UTF-8 input).
std::string JsonEscape(std::string_view s);

// Shortest decimal form that round-trips to exactly `v` through strtod.
// Integral values print without an exponent or trailing ".0" where the
// shortest form allows (to_chars general format). Non-finite values emit
// "null" — the parse side reads that as JsonValue null, and consumers
// decide what a missing sample means.
std::string JsonNumber(double v);

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  // kNumber: the raw token text. Doubles above 2^53 (e.g. 64-bit seeds
  // printed as integers) do not survive the double `number` field; integer
  // consumers re-parse this literal with from_chars instead.
  std::string literal;
  std::string string;
  std::vector<JsonValue> items;                 // kArray
  std::map<std::string, JsonValue> members;     // kObject

  bool is_null() const { return kind == Kind::kNull; }
  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` (one JSON document, trailing whitespace allowed) into *out.
// On failure returns false and sets *error to a byte-offset diagnostic.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

// Serializes `v` back to one-line JSON text. Numbers re-emit their raw
// parsed token (JsonValue::literal) when present — so 64-bit integer
// literals survive the double field — and fall back to JsonNumber(number)
// otherwise. Object members emit in key (map) order, so emit → parse →
// emit is byte-identical; this is the normal form every checkpoint and
// corpus-store payload is compared in.
std::string JsonToString(const JsonValue& v);

// Typed object-member extraction shared by every round-trip format
// (replay artifacts, checkpoints, corpus entries, serve requests). All
// return false with *error = "field '<key>': <what>" on absence or type
// mismatch. The 64-bit getters re-parse JsonValue::literal with
// from_chars — the double `number` field loses precision above 2^53 and
// seeds are full-width u64.
bool JsonGetI64(const JsonValue& obj, const std::string& key,
                std::int64_t* out, std::string* error);
bool JsonGetU64(const JsonValue& obj, const std::string& key,
                std::uint64_t* out, std::string* error);
bool JsonGetInt(const JsonValue& obj, const std::string& key, int* out,
                std::string* error);
bool JsonGetDouble(const JsonValue& obj, const std::string& key, double* out,
                   std::string* error);
bool JsonGetBool(const JsonValue& obj, const std::string& key, bool* out,
                 std::string* error);
bool JsonGetString(const JsonValue& obj, const std::string& key,
                   std::string* out, std::string* error);

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_JSON_H_
