#include "support/thread_pool.h"

#include <atomic>
#include <exception>

namespace certkit::support {

int ThreadPool::ResolveJobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 0 ? ResolveJobs(num_threads) : num_threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Shared per-call state: a dynamic iteration counter, first-error capture,
  // and the completion rendezvous. It lives on the heap and every helper
  // task holds a shared_ptr, so the condition variable is guaranteed to
  // outlive the last notify_one even if the calling thread has already
  // observed completion and returned from its wait. The calling thread
  // participates, so a 0-worker pool (or a pool busy with other work) still
  // makes progress.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::mutex done_mu;
    std::condition_variable done_cv;
    int helpers_finished = 0;
  };
  auto state = std::make_shared<LoopState>();

  auto run = [state, n, &fn] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= n || state->failed.load()) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (!state->failed.exchange(true)) {
          state->error = std::current_exception();
        }
      }
    }
  };

  // One runner per worker (capped by n, minus the calling thread's share).
  const std::size_t helpers =
      workers_.empty() ? 0
                       : std::min(n > 0 ? n - 1 : 0,
                                  static_cast<std::size_t>(workers_.size()));
  const int helper_count = static_cast<int>(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([run, state] {
      run();
      {
        std::lock_guard<std::mutex> lock(state->done_mu);
        ++state->helpers_finished;
      }
      state->done_cv.notify_one();
    });
  }
  run();  // the calling thread drains iterations too
  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(
        lock, [&] { return state->helpers_finished == helper_count; });
  }
  if (state->failed.load()) std::rethrow_exception(state->error);
}

}  // namespace certkit::support
