#include "support/flags.h"

#include <cstdlib>

#include "support/strings.h"

namespace certkit::support {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!StartsWith(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "true";
    }
  }
}

std::optional<std::string> FlagParser::Get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string FlagParser::GetOr(const std::string& name,
                              const std::string& fallback) const {
  return Get(name).value_or(fallback);
}

std::optional<long long> FlagParser::GetInt(const std::string& name,
                                            long long fallback) const {
  auto v = Get(name);
  if (!v.has_value()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto v = Get(name);
  if (!v.has_value()) return false;
  return *v != "false" && *v != "0";
}

std::vector<std::string> FlagParser::FlagNames() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [name, value] : flags_) out.push_back(name);
  return out;
}

}  // namespace certkit::support
