// certkit support: filesystem helpers used by the analyzers and reports.
#ifndef CERTKIT_SUPPORT_IO_H_
#define CERTKIT_SUPPORT_IO_H_

#include <string>
#include <vector>

#include "support/status.h"

namespace certkit::support {

// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

// Writes `content` to `path`, creating parent directories as needed.
Status WriteFile(const std::string& path, const std::string& content);

// Recursively lists regular files under `dir` whose name ends with one of
// `extensions` (e.g. {".cc", ".h"}); empty `extensions` matches everything.
//
// Guarantee: the returned paths are in ascending lexicographic order,
// regardless of filesystem iteration order. The parallel AnalysisDriver
// relies on this to assign work and merge results in a stable order, so the
// same tree always produces bit-identical analyses — do not weaken it.
Result<std::vector<std::string>> ListFiles(
    const std::string& dir, const std::vector<std::string>& extensions);

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_IO_H_
