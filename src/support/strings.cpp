#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "support/check.h"

namespace certkit::support {

namespace {
bool IsSpaceChar(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
bool IsLowerChar(char c) {
  return std::islower(static_cast<unsigned char>(c)) != 0;
}
bool IsUpperChar(char c) {
  return std::isupper(static_cast<unsigned char>(c)) != 0;
}
bool IsDigitChar(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpaceChar(s[i])) ++i;
    const std::size_t begin = i;
    while (i < s.size() && !IsSpaceChar(s[i])) ++i;
    if (i > begin) out.emplace_back(s.substr(begin, i - begin));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && IsSpaceChar(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && IsSpaceChar(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool IsSnakeCase(std::string_view id) {
  if (id.empty()) return false;
  if (!IsLowerChar(id.front())) return false;
  for (char c : id) {
    if (!IsLowerChar(c) && !IsDigitChar(c) && c != '_') return false;
  }
  return !Contains(id, "__") && id.back() != '_';
}

bool IsUpperCamelCase(std::string_view id) {
  if (id.empty() || !IsUpperChar(id.front())) return false;
  for (char c : id) {
    if (!IsLowerChar(c) && !IsUpperChar(c) && !IsDigitChar(c)) return false;
  }
  return true;
}

bool IsLowerCamelCase(std::string_view id) {
  if (id.empty() || !IsLowerChar(id.front())) return false;
  for (char c : id) {
    if (!IsLowerChar(c) && !IsUpperChar(c) && !IsDigitChar(c)) return false;
  }
  return true;
}

bool IsMacroCase(std::string_view id) {
  if (id.empty() || !IsUpperChar(id.front())) return false;
  for (char c : id) {
    if (!IsUpperChar(c) && !IsDigitChar(c) && c != '_') return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  CERTKIT_CHECK(!from.empty());
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string FormatDouble(double v, int decimals) {
  CERTKIT_CHECK(decimals >= 0 && decimals <= 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace certkit::support
