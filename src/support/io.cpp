#include "support/io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/strings.h"

namespace certkit::support {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoError("cannot open for reading: " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    return IoError("read failure: " + path);
  }
  return os.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      return IoError("cannot create directories for: " + path + " (" +
                     ec.message() + ")");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return IoError("cannot open for writing: " + path);
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  if (!out) {
    return IoError("write failure: " + path);
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ListFiles(
    const std::string& dir, const std::vector<std::string>& extensions) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFoundError("not a directory: " + dir);
  }
  std::vector<std::string> out;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string path = it->path().string();
    if (extensions.empty()) {
      out.push_back(path);
      continue;
    }
    for (const auto& ext : extensions) {
      if (EndsWith(path, ext)) {
        out.push_back(path);
        break;
      }
    }
  }
  if (ec) {
    return IoError("directory traversal failed: " + dir + " (" + ec.message() +
                   ")");
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace certkit::support
