// certkit support: deterministic pseudo-random number generation.
//
// Every stochastic component (corpus generation, workload synthesis, test
// sweeps) uses these generators with explicit seeds so that all experiments
// are reproducible bit-for-bit across runs and platforms.
#ifndef CERTKIT_SUPPORT_RNG_H_
#define CERTKIT_SUPPORT_RNG_H_

#include <array>
#include <cstdint>

#include "support/check.h"

namespace certkit::support {

// SplitMix64: tiny, fast generator; also used to seed Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** — the workhorse generator. Satisfies the minimal needs of
// UniformRandomBitGenerator so it can also drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi); requires lo < hi.
  double UniformDouble(double lo, double hi);

  // Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Index in [0, weights.size()) with probability proportional to weights[i].
  // Requires at least one strictly positive weight.
  std::size_t WeightedIndex(const double* weights, std::size_t n);

  // Raw engine state, for checkpointing. A generator restored with
  // set_state continues the stream bit-exactly where state() captured it.
  std::array<std::uint64_t, 4> state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_RNG_H_
