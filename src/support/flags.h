// certkit support: a minimal command-line flag parser for the CLI tool.
//
// Recognized syntax: `--name=value`, `--name value`, boolean `--name`, and
// positional arguments. Unknown flags are collected and can be rejected by
// the caller.
#ifndef CERTKIT_SUPPORT_FLAGS_H_
#define CERTKIT_SUPPORT_FLAGS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace certkit::support {

class FlagParser {
 public:
  // Parses argv[1..argc). A token starting with "--" is a flag; if it
  // contains '=', the value is inline; otherwise, if the next token exists
  // and is not itself a flag, it is consumed as the value; otherwise the
  // flag is boolean ("true").
  FlagParser(int argc, const char* const* argv);

  // Value of --name ("name" without dashes), or nullopt.
  std::optional<std::string> Get(const std::string& name) const;
  std::string GetOr(const std::string& name,
                    const std::string& fallback) const;
  // Integer flag; `fallback` when absent; nullopt on a malformed number.
  std::optional<long long> GetInt(const std::string& name,
                                  long long fallback) const;
  // True when the flag is present (any value except "false"/"0").
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  // Names seen on the command line, for unknown-flag rejection.
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace certkit::support

#endif  // CERTKIT_SUPPORT_FLAGS_H_
