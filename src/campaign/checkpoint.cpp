#include "campaign/checkpoint.h"

#include <charconv>
#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>
#include <utility>

#include "ad/safety/monitors.h"
#include "campaign/corpus_store.h"
#include "campaign/replay.h"
#include "support/fnv.h"
#include "support/io.h"
#include "support/json.h"

namespace certkit::campaign {

namespace fs = std::filesystem;

using support::JsonValue;

namespace {

constexpr char kCheckpointMagic[4] = {'C', 'K', 'P', '1'};
constexpr char kShardMagic[4] = {'C', 'K', 'S', '1'};

std::string RngJson(const std::array<std::uint64_t, 4>& s) {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out << ",";
    out << support::JsonEscape(HexU64(s[i]));
  }
  out << "]";
  return out.str();
}

bool ParseRng(const JsonValue& obj, const std::string& key,
              std::array<std::uint64_t, 4>* out, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray ||
      v->items.size() != 4) {
    *error = "field '" + key + "': not a 4-word rng state";
    return false;
  }
  for (int i = 0; i < 4; ++i) {
    const JsonValue& word = v->items[static_cast<std::size_t>(i)];
    if (word.kind != JsonValue::Kind::kString ||
        !ParseHexU64(word.string, &(*out)[static_cast<std::size_t>(i)])) {
      *error = "field '" + key + "': word " + std::to_string(i) +
               " is not a 16-digit hex value";
      return false;
    }
  }
  return true;
}

// Ratios are stored with JsonNumber (exact shortest round-trip), so a
// resumed run re-renders the campaign JSON's %.4f rows from bit-identical
// doubles. "null" (non-finite) reads back as NaN.
std::string RatioExact(double v) { return support::JsonNumber(v); }

bool GetRatio(const JsonValue& obj, const std::string& key, double* out,
              std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    *error = "field '" + key + "': missing";
    return false;
  }
  if (v->kind == JsonValue::Kind::kNull) {
    *out = std::nan("");
    return true;
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    *error = "field '" + key + "': not a number";
    return false;
  }
  *out = v->number;
  return true;
}

std::string CoverageRowExactJson(const cov::CoverageRow& row) {
  std::ostringstream out;
  out << "{\"unit\":" << support::JsonEscape(row.unit)
      << ",\"statement\":" << RatioExact(row.statement)
      << ",\"branch\":" << RatioExact(row.branch)
      << ",\"mcdc\":" << RatioExact(row.mcdc) << "}";
  return out.str();
}

bool ParseCoverageRow(const JsonValue& v, cov::CoverageRow* out,
                      std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "coverage row is not an object";
    return false;
  }
  return support::JsonGetString(v, "unit", &out->unit, error) &&
         GetRatio(v, "statement", &out->statement, error) &&
         GetRatio(v, "branch", &out->branch, error) &&
         GetRatio(v, "mcdc", &out->mcdc, error);
}

std::string SafetySummaryJson(const adpilot::SafetySummary& s) {
  std::ostringstream out;
  out << "{\"violations\":" << s.total << ",\"warnings\":" << s.warnings
      << ",\"criticals\":" << s.criticals << ",\"handled\":" << s.handled
      << ",\"by_monitor\":{";
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    if (m > 0) out << ",";
    out << support::JsonEscape(
               adpilot::MonitorName(static_cast<adpilot::MonitorId>(m)))
        << ":" << s.by_monitor[m];
  }
  out << "}}";
  return out.str();
}

bool ParseSafetySummary(const JsonValue& v, adpilot::SafetySummary* out,
                        std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "safety summary is not an object";
    return false;
  }
  if (!support::JsonGetI64(v, "violations", &out->total, error) ||
      !support::JsonGetI64(v, "warnings", &out->warnings, error) ||
      !support::JsonGetI64(v, "criticals", &out->criticals, error) ||
      !support::JsonGetI64(v, "handled", &out->handled, error)) {
    return false;
  }
  const JsonValue* monitors = v.Find("by_monitor");
  if (monitors == nullptr || monitors->kind != JsonValue::Kind::kObject) {
    *error = "field 'by_monitor': missing or not an object";
    return false;
  }
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    const char* name =
        adpilot::MonitorName(static_cast<adpilot::MonitorId>(m));
    if (!support::JsonGetI64(*monitors, name, &out->by_monitor[m], error)) {
      return false;
    }
  }
  return true;
}

std::string GenerationStatsJson(const GenerationStats& s) {
  std::ostringstream out;
  out << "{\"generation\":" << s.generation << ",\"evaluated\":" << s.evaluated
      << ",\"kept\":" << s.kept << ",\"new_facts\":" << s.new_facts
      << ",\"distinct_outcomes\":" << s.distinct_outcomes << ",\"rows\":[";
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    if (i > 0) out << ",";
    out << CoverageRowExactJson(s.rows[i]);
  }
  out << "],\"average\":" << CoverageRowExactJson(s.average)
      << ",\"seconds\":" << support::JsonNumber(s.seconds) << "}";
  return out.str();
}

bool ParseGenerationStats(const JsonValue& v, GenerationStats* out,
                          std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "generation stats is not an object";
    return false;
  }
  if (!support::JsonGetInt(v, "generation", &out->generation, error) ||
      !support::JsonGetInt(v, "evaluated", &out->evaluated, error) ||
      !support::JsonGetInt(v, "kept", &out->kept, error) ||
      !support::JsonGetI64(v, "new_facts", &out->new_facts, error) ||
      !support::JsonGetI64(v, "distinct_outcomes", &out->distinct_outcomes,
                           error)) {
    return false;
  }
  const JsonValue* rows = v.Find("rows");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
    *error = "field 'rows': missing or not an array";
    return false;
  }
  out->rows.clear();
  out->rows.reserve(rows->items.size());
  for (const JsonValue& r : rows->items) {
    cov::CoverageRow row;
    if (!ParseCoverageRow(r, &row, error)) return false;
    out->rows.push_back(std::move(row));
  }
  const JsonValue* average = v.Find("average");
  if (average == nullptr) {
    *error = "field 'average': missing";
    return false;
  }
  if (!ParseCoverageRow(*average, &out->average, error)) return false;
  return GetRatio(v, "seconds", &out->seconds, error);
}

}  // namespace

std::uint64_t ConfigFingerprint(const CampaignConfig& config) {
  std::uint64_t h = support::kFnvOffsetBasis;
  h = support::FnvU64(config.seed, h);
  h = support::FnvI64(config.population, h);
  h = support::FnvI64(config.generations, h);
  h = support::FnvI64(config.ticks, h);
  h = support::FnvStr(config.unit_prefix, h);
  h = support::FnvU64(config.seed_with_fig5 ? 1 : 0, h);
  return h;
}

std::string CheckpointJson(const CampaignConfig& config,
                           const CampaignState& state) {
  std::ostringstream out;
  out << "{\"schema\":" << kCheckpointSchema << ",\"fingerprint\":"
      << support::JsonEscape(HexU64(ConfigFingerprint(config)))
      << ",\"next_generation\":" << state.next_generation
      << ",\"scheduler\":{\"rng\":" << RngJson(state.scheduler.rng)
      << ",\"next_id\":" << state.scheduler.next_id
      << "},\"select_rng\":" << RngJson(state.select_rng)
      << ",\"evaluated_total\":" << state.evaluated_total
      << ",\"oracle\":{\"seen\":[";
  bool first = true;
  for (const std::string& sig : state.oracle.seen()) {
    if (!first) out << ",";
    first = false;
    out << support::JsonEscape(sig);
  }
  out << "],\"totals\":" << SafetySummaryJson(state.oracle.totals())
      << ",\"collisions\":" << state.oracle.collisions()
      << ",\"non_finite_commands\":" << state.oracle.non_finite_commands()
      << ",\"safe_stops\":" << state.oracle.safe_stops()
      << "},\"cover\":{\"total_facts\":" << state.cover.total_facts()
      << ",\"merged\":" << CoverSetJson(state.cover.merged())
      << "},\"corpus\":[";
  for (std::size_t i = 0; i < state.corpus.size(); ++i) {
    if (i > 0) out << ",";
    out << CandidateJson(state.corpus[i]);
  }
  out << "],\"generations\":[";
  for (std::size_t i = 0; i < state.generations.size(); ++i) {
    if (i > 0) out << ",";
    out << GenerationStatsJson(state.generations[i]);
  }
  out << "]}";
  return out.str();
}

bool ParseCheckpoint(std::string_view payload, std::uint64_t fingerprint,
                     CampaignState* out, bool* mismatch, std::string* error) {
  *mismatch = false;
  JsonValue root;
  if (!support::ParseJson(payload, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "checkpoint is not an object";
    return false;
  }
  int schema = 0;
  if (!support::JsonGetInt(root, "schema", &schema, error)) return false;
  if (schema != kCheckpointSchema) {
    *error = "unsupported checkpoint schema " + std::to_string(schema);
    return false;
  }
  std::string fp_hex;
  std::uint64_t fp = 0;
  if (!support::JsonGetString(root, "fingerprint", &fp_hex, error) ||
      !ParseHexU64(fp_hex, &fp)) {
    *error = "field 'fingerprint': not a 16-digit hex value";
    return false;
  }
  if (fp != fingerprint) {
    *mismatch = true;
    *error = "configuration fingerprint mismatch";
    return false;
  }

  CampaignState state;
  if (!support::JsonGetInt(root, "next_generation", &state.next_generation,
                           error)) {
    return false;
  }
  const JsonValue* scheduler = root.Find("scheduler");
  if (scheduler == nullptr || scheduler->kind != JsonValue::Kind::kObject) {
    *error = "field 'scheduler': missing or not an object";
    return false;
  }
  if (!ParseRng(*scheduler, "rng", &state.scheduler.rng, error) ||
      !support::JsonGetI64(*scheduler, "next_id", &state.scheduler.next_id,
                           error) ||
      !ParseRng(root, "select_rng", &state.select_rng, error) ||
      !support::JsonGetI64(root, "evaluated_total", &state.evaluated_total,
                           error)) {
    return false;
  }

  const JsonValue* oracle = root.Find("oracle");
  if (oracle == nullptr || oracle->kind != JsonValue::Kind::kObject) {
    *error = "field 'oracle': missing or not an object";
    return false;
  }
  const JsonValue* seen = oracle->Find("seen");
  if (seen == nullptr || seen->kind != JsonValue::Kind::kArray) {
    *error = "field 'seen': missing or not an array";
    return false;
  }
  std::set<std::string> signatures;
  for (const JsonValue& sig : seen->items) {
    if (sig.kind != JsonValue::Kind::kString) {
      *error = "field 'seen': non-string signature";
      return false;
    }
    signatures.insert(sig.string);
  }
  const JsonValue* totals = oracle->Find("totals");
  if (totals == nullptr) {
    *error = "field 'totals': missing";
    return false;
  }
  adpilot::SafetySummary summary;
  std::int64_t collisions = 0;
  std::int64_t non_finite = 0;
  std::int64_t safe_stops = 0;
  if (!ParseSafetySummary(*totals, &summary, error) ||
      !support::JsonGetI64(*oracle, "collisions", &collisions, error) ||
      !support::JsonGetI64(*oracle, "non_finite_commands", &non_finite,
                           error) ||
      !support::JsonGetI64(*oracle, "safe_stops", &safe_stops, error)) {
    return false;
  }
  state.oracle.Restore(std::move(signatures), summary, collisions, non_finite,
                       safe_stops);

  const JsonValue* cover = root.Find("cover");
  if (cover == nullptr || cover->kind != JsonValue::Kind::kObject) {
    *error = "field 'cover': missing or not an object";
    return false;
  }
  std::int64_t total_facts = 0;
  if (!support::JsonGetI64(*cover, "total_facts", &total_facts, error)) {
    return false;
  }
  const JsonValue* merged = cover->Find("merged");
  if (merged == nullptr) {
    *error = "field 'merged': missing";
    return false;
  }
  cov::CoverSet merged_cover;
  if (!ParseCoverSet(*merged, &merged_cover, error)) return false;
  state.cover.Restore(std::move(merged_cover), total_facts);

  const JsonValue* corpus = root.Find("corpus");
  if (corpus == nullptr || corpus->kind != JsonValue::Kind::kArray) {
    *error = "field 'corpus': missing or not an array";
    return false;
  }
  for (const JsonValue& c : corpus->items) {
    Candidate candidate;
    if (!ParseCandidate(c, &candidate, error)) return false;
    state.corpus.push_back(std::move(candidate));
  }

  const JsonValue* generations = root.Find("generations");
  if (generations == nullptr ||
      generations->kind != JsonValue::Kind::kArray) {
    *error = "field 'generations': missing or not an array";
    return false;
  }
  for (const JsonValue& g : generations->items) {
    GenerationStats stats;
    if (!ParseGenerationStats(g, &stats, error)) return false;
    state.generations.push_back(std::move(stats));
  }

  *out = std::move(state);
  return true;
}

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.ckpt";
}

std::string ShardDeltaPath(const std::string& dir, int generation,
                           int shard_index, int shard_count) {
  std::ostringstream out;
  out << dir << "/shard_g" << generation << "_" << shard_index << "of"
      << shard_count << ".ckshard";
  return out.str();
}

CheckpointLoad LoadCampaignCheckpoint(const std::string& dir,
                                      const CampaignConfig& config,
                                      CampaignState* state,
                                      std::string* error) {
  error->clear();
  const std::string path = CheckpointPath(dir);
  std::error_code ec;
  if (!fs::exists(path, ec)) return CheckpointLoad::kFresh;
  const auto bytes = support::ReadFile(path);
  if (!bytes.ok()) {
    *error = bytes.status().ToString();
    return CheckpointLoad::kCorrupt;
  }
  std::string_view payload;
  if (!UnframeBlob(kCheckpointMagic,
                   static_cast<std::uint32_t>(kCheckpointSchema),
                   bytes.value(), &payload)) {
    *error = "frame check failed (truncated, damaged, or version-skewed)";
    return CheckpointLoad::kCorrupt;
  }
  bool mismatch = false;
  if (!ParseCheckpoint(payload, ConfigFingerprint(config), state, &mismatch,
                       error)) {
    return mismatch ? CheckpointLoad::kMismatch : CheckpointLoad::kCorrupt;
  }
  return CheckpointLoad::kResumed;
}

support::Status WriteCampaignCheckpoint(const std::string& dir,
                                        const CampaignConfig& config,
                                        const CampaignState& state) {
  const std::string blob =
      FrameBlob(kCheckpointMagic, static_cast<std::uint32_t>(kCheckpointSchema),
                CheckpointJson(config, state));
  return AtomicWriteFile(dir, CheckpointPath(dir), blob);
}

std::string CheckpointDiagnostic(CheckpointLoad load, const std::string& dir,
                                 const std::string& error) {
  switch (load) {
    case CheckpointLoad::kMismatch:
      return "checkpoint in '" + dir +
             "' was written by a different campaign configuration "
             "(--seed/--population/--generations/--ticks/--baseline must "
             "match); use a fresh --checkpoint-dir or the original flags";
    case CheckpointLoad::kCorrupt:
      return "checkpoint in '" + dir + "' is unreadable: " + error +
             "; delete '" + CheckpointPath(dir) + "' to start over";
    default:
      return "";
  }
}

std::string ShardDeltaJson(const CampaignConfig& config,
                           const ShardDelta& delta) {
  std::ostringstream out;
  out << "{\"schema\":" << kShardDeltaSchema << ",\"fingerprint\":"
      << support::JsonEscape(HexU64(ConfigFingerprint(config)))
      << ",\"generation\":" << delta.generation
      << ",\"shard_index\":" << delta.shard_index
      << ",\"shard_count\":" << delta.shard_count << ",\"evals\":[";
  for (std::size_t i = 0; i < delta.evals.size(); ++i) {
    const ShardEval& se = delta.evals[i];
    if (i > 0) out << ",";
    out << "{\"index\":" << se.index << ",\"candidate\":"
        << support::JsonEscape(HexU64(se.candidate_hash))
        << ",\"verdict\":" << VerdictJson(se.verdict)
        << ",\"outcome\":" << support::JsonEscape(se.outcome)
        << ",\"report_digest\":"
        << support::JsonEscape(HexU64(se.report_digest))
        << ",\"cover\":" << CoverSetJson(se.cover) << "}";
  }
  out << "]}";
  return out.str();
}

bool ParseShardDelta(std::string_view payload, ShardDelta* out,
                     std::uint64_t* fingerprint, std::string* error) {
  JsonValue root;
  if (!support::ParseJson(payload, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "shard delta is not an object";
    return false;
  }
  int schema = 0;
  if (!support::JsonGetInt(root, "schema", &schema, error)) return false;
  if (schema != kShardDeltaSchema) {
    *error = "unsupported shard delta schema " + std::to_string(schema);
    return false;
  }
  std::string fp_hex;
  if (!support::JsonGetString(root, "fingerprint", &fp_hex, error) ||
      !ParseHexU64(fp_hex, fingerprint)) {
    *error = "field 'fingerprint': not a 16-digit hex value";
    return false;
  }
  if (!support::JsonGetInt(root, "generation", &out->generation, error) ||
      !support::JsonGetInt(root, "shard_index", &out->shard_index, error) ||
      !support::JsonGetInt(root, "shard_count", &out->shard_count, error)) {
    return false;
  }
  const JsonValue* evals = root.Find("evals");
  if (evals == nullptr || evals->kind != JsonValue::Kind::kArray) {
    *error = "field 'evals': missing or not an array";
    return false;
  }
  out->evals.clear();
  out->evals.reserve(evals->items.size());
  for (const JsonValue& e : evals->items) {
    if (e.kind != JsonValue::Kind::kObject) {
      *error = "field 'evals': non-object entry";
      return false;
    }
    ShardEval se;
    std::string candidate_hex;
    std::string digest_hex;
    if (!support::JsonGetInt(e, "index", &se.index, error) ||
        !support::JsonGetString(e, "candidate", &candidate_hex, error) ||
        !ParseHexU64(candidate_hex, &se.candidate_hash)) {
      if (error->empty()) *error = "field 'candidate': bad hex";
      return false;
    }
    const JsonValue* verdict = e.Find("verdict");
    if (verdict == nullptr) {
      *error = "field 'verdict': missing";
      return false;
    }
    if (!ParseVerdict(*verdict, &se.verdict, error)) return false;
    if (!support::JsonGetString(e, "outcome", &se.outcome, error) ||
        !support::JsonGetString(e, "report_digest", &digest_hex, error) ||
        !ParseHexU64(digest_hex, &se.report_digest)) {
      if (error->empty()) *error = "field 'report_digest': bad hex";
      return false;
    }
    const JsonValue* cover = e.Find("cover");
    if (cover == nullptr) {
      *error = "field 'cover': missing";
      return false;
    }
    if (!ParseCoverSet(*cover, &se.cover, error)) return false;
    out->evals.push_back(std::move(se));
  }
  return true;
}

support::Status WriteShardDelta(const std::string& dir,
                                const CampaignConfig& config,
                                const ShardDelta& delta) {
  const std::string blob =
      FrameBlob(kShardMagic, static_cast<std::uint32_t>(kShardDeltaSchema),
                ShardDeltaJson(config, delta));
  return AtomicWriteFile(
      dir,
      ShardDeltaPath(dir, delta.generation, delta.shard_index,
                     delta.shard_count),
      blob);
}

bool LoadShardDeltas(const std::string& dir, const CampaignConfig& config,
                     int generation, std::vector<ShardDelta>* out,
                     std::string* error) {
  out->clear();
  const auto files = support::ListFiles(dir, {".ckshard"});
  if (!files.ok()) {
    *error = files.status().ToString();
    return false;
  }
  const std::uint64_t want_fp = ConfigFingerprint(config);
  for (const std::string& path : files.value()) {
    const auto bytes = support::ReadFile(path);
    if (!bytes.ok()) {
      *error = "shard delta '" + path + "' is unreadable; re-run that shard";
      return false;
    }
    std::string_view payload;
    if (!UnframeBlob(kShardMagic,
                     static_cast<std::uint32_t>(kShardDeltaSchema),
                     bytes.value(), &payload)) {
      *error = "shard delta '" + path +
               "' failed its frame check (truncated or damaged); re-run "
               "that shard";
      return false;
    }
    ShardDelta delta;
    std::uint64_t fp = 0;
    std::string parse_error;
    if (!ParseShardDelta(payload, &delta, &fp, &parse_error)) {
      *error = "shard delta '" + path + "' does not parse (" + parse_error +
               "); re-run that shard";
      return false;
    }
    if (fp != want_fp) {
      *error = "shard delta '" + path +
               "' was produced by a different campaign configuration";
      return false;
    }
    if (delta.generation != generation) continue;  // stale or future
    out->push_back(std::move(delta));
  }
  if (out->empty()) {
    *error = "no shard deltas for generation " + std::to_string(generation) +
             " in '" + dir + "'";
    return false;
  }
  return true;
}

int RemoveShardDeltas(const std::string& dir, int generation) {
  const auto files = support::ListFiles(dir, {".ckshard"});
  if (!files.ok()) return 0;
  const std::string prefix = "shard_g" + std::to_string(generation) + "_";
  int removed = 0;
  for (const std::string& path : files.value()) {
    const std::string name = fs::path(path).filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    std::error_code ec;
    if (fs::remove(path, ec) && !ec) ++removed;
  }
  return removed;
}

bool ParseShardSpec(std::string_view spec, int* index, int* count,
                    std::string* error) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= spec.size()) {
    *error = "--shard expects i/N (e.g. 0/4), got '" + std::string(spec) + "'";
    return false;
  }
  const std::string_view index_part = spec.substr(0, slash);
  const std::string_view count_part = spec.substr(slash + 1);
  const auto parse_int = [](std::string_view s, int* out) {
    const auto res = std::from_chars(s.data(), s.data() + s.size(), *out);
    return res.ec == std::errc() && res.ptr == s.data() + s.size();
  };
  if (!parse_int(index_part, index) || !parse_int(count_part, count)) {
    *error = "--shard expects numeric i/N, got '" + std::string(spec) + "'";
    return false;
  }
  if (*count < 1) {
    *error = "--shard count must be >= 1, got " + std::to_string(*count);
    return false;
  }
  if (*count > 1024) {
    *error = "--shard count must be <= 1024, got " + std::to_string(*count);
    return false;
  }
  if (*index < 0 || *index >= *count) {
    *error = "--shard index " + std::to_string(*index) +
             " out of range for " + std::to_string(*count) +
             " shard(s); expected 0 <= i < N";
    return false;
  }
  return true;
}

}  // namespace certkit::campaign
