#include "campaign/mutation.h"

#include <algorithm>

#include "support/check.h"

namespace certkit::campaign {

namespace {

// Detector input sizes the detector accepts (multiples of 16); 0 means
// camera-native 64. Non-square combinations reach the letterbox branch.
constexpr int kDetectorSizes[] = {0, 32, 48, 64, 96, 128};
constexpr int kNumDetectorSizes = 6;

constexpr nn::Backend kBackends[] = {
    nn::Backend::kCpuNaive, nn::Backend::kClosedSim, nn::Backend::kOpenSim};

// Timing-overrun magnitudes are chosen far above any plausible deadline so
// the watchdog verdict never depends on measured wall-clock time. The gap
// to the campaign deadline (runner.cpp) must absorb sanitizer slowdowns
// with many concurrent evaluations sharing one core.
constexpr double kOverrunSeconds = 1.0e6;

adpilot::FaultSpec MakeFault(adpilot::FaultKind kind, std::int64_t onset,
                             std::int64_t duration, double magnitude) {
  adpilot::FaultSpec f;
  f.kind = kind;
  f.onset_tick = onset;
  f.duration_ticks = duration;
  f.magnitude = magnitude;
  return f;
}

double FaultMagnitude(adpilot::FaultKind kind,
                      certkit::support::Xoshiro256* rng) {
  switch (kind) {
    case adpilot::FaultKind::kTimingOverrun:
      return kOverrunSeconds;
    case adpilot::FaultKind::kCanBitFlip:
      return static_cast<double>(rng->UniformInt(1, 4));
    case adpilot::FaultKind::kDetectionRange:
      return static_cast<double>(rng->UniformInt(200, 500));
    default:
      return 1.0;
  }
}

}  // namespace

MutationScheduler::MutationScheduler(std::uint64_t seed, int default_ticks)
    : rng_(seed), default_ticks_(std::clamp(default_ticks, 5, 60)) {}

Candidate MutationScheduler::SeedCandidate(int index) {
  Candidate c;
  c.id = next_id_++;
  c.parent_id = -1;
  c.generation = 0;

  c.scenario.num_vehicles = index % 5;             // 0..4 incl. empty world
  c.scenario.num_pedestrians = (index / 2) % 3;    // 0..2
  c.scenario.num_lanes = 1 + index % 3;
  c.scenario.seed = rng_.Next();
  c.ticks = default_ticks_;

  // Cycle detector-input shapes; odd indices get a non-square input so the
  // seed pool already contains letterbox-reaching candidates.
  const int h = kDetectorSizes[index % kNumDetectorSizes];
  const int w = (index % 2 == 1)
                    ? kDetectorSizes[(index + 2) % kNumDetectorSizes]
                    : h;
  c.detector_input_h = h;
  c.detector_input_w = w;
  c.backend = kBackends[index % 3];

  c.fault_seed = rng_.Next();
  const auto kind =
      static_cast<adpilot::FaultKind>(index % adpilot::kNumFaultKinds);
  if (index % 3 != 0) {  // a third of the pool runs fault-free
    c.faults.push_back(
        MakeFault(kind, 2 + index % 5, 3, FaultMagnitude(kind, &rng_)));
  }
  c.scenario = adpilot::ClampScenarioConfig(c.scenario);
  return c;
}

Candidate MutationScheduler::Mutate(const Candidate& parent) {
  Candidate c = parent;
  c.id = next_id_++;
  c.parent_id = parent.id;
  c.generation = parent.generation + 1;
  const int mutations = static_cast<int>(rng_.UniformInt(1, 3));
  for (int i = 0; i < mutations; ++i) MutateOnce(&c);
  c.scenario = adpilot::ClampScenarioConfig(c.scenario);
  CERTKIT_CHECK(adpilot::ValidateScenarioConfig(c.scenario).empty());
  return c;
}

void MutationScheduler::MutateOnce(Candidate* c) {
  switch (rng_.UniformInt(0, 8)) {
    case 0:  // actor counts
      c->scenario.num_vehicles +=
          static_cast<int>(rng_.UniformInt(-2, 3));
      c->scenario.num_pedestrians +=
          static_cast<int>(rng_.UniformInt(-1, 2));
      break;
    case 1:  // road geometry
      c->scenario.num_lanes += static_cast<int>(rng_.UniformInt(-1, 1));
      c->scenario.lane_width += rng_.UniformDouble(-1.0, 1.0);
      c->scenario.road_length += rng_.UniformDouble(-100.0, 100.0);
      break;
    case 2:  // speed envelope
      c->scenario.vehicle_speed_min += rng_.UniformDouble(-2.0, 2.0);
      c->scenario.vehicle_speed_max += rng_.UniformDouble(-3.0, 6.0);
      break;
    case 3:  // re-roll world placement
      c->scenario.seed = rng_.Next();
      break;
    case 4: {  // detector input shape
      c->detector_input_h =
          kDetectorSizes[rng_.UniformInt(0, kNumDetectorSizes - 1)];
      c->detector_input_w =
          kDetectorSizes[rng_.UniformInt(0, kNumDetectorSizes - 1)];
      break;
    }
    case 5:  // kernel-library backend
      c->backend = kBackends[rng_.UniformInt(0, 2)];
      break;
    case 6: {  // add / replace a fault
      const auto kind = static_cast<adpilot::FaultKind>(
          rng_.UniformInt(0, adpilot::kNumFaultKinds - 1));
      const auto fault = MakeFault(
          kind, rng_.UniformInt(1, std::max(2, c->ticks - 4)),
          rng_.UniformInt(1, 6), FaultMagnitude(kind, &rng_));
      if (c->faults.size() >= 3) {
        c->faults[static_cast<std::size_t>(
            rng_.UniformInt(0, static_cast<std::int64_t>(c->faults.size()) -
                                   1))] = fault;
      } else {
        c->faults.push_back(fault);
      }
      c->fault_seed = rng_.Next();
      break;
    }
    case 7:  // drop a fault
      if (!c->faults.empty()) {
        c->faults.erase(c->faults.begin() +
                        rng_.UniformInt(
                            0, static_cast<std::int64_t>(c->faults.size()) -
                                   1));
      }
      break;
    default:  // run length
      c->ticks = static_cast<int>(
          std::clamp<std::int64_t>(c->ticks + rng_.UniformInt(-10, 10), 5,
                                   60));
      break;
  }
}

}  // namespace certkit::campaign
