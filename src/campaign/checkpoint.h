// certkit campaign: checkpoint/resume and shard-delta persistence.
//
// A checkpoint freezes the campaign's complete serial state (CampaignState:
// RNG streams, generation counter, corpus, oracle, merged cover, stats) so
// a killed campaign resumes bit-identically to one that never stopped. The
// file is framed like every certkit on-disk artifact — magic, schema
// version, payload digest — so truncation, bit flips, and version skew are
// *detected*, reported, and never silently trusted. Unlike corpus-store
// entries (which recompute), a bad checkpoint is a loud diagnostic: the
// user chose persistence, so losing it must not be silent.
//
// Shard deltas are the sharded mode's unit of exchange: one shard's
// evaluations of its candidate slice for one generation, tied to the
// campaign configuration by fingerprint and to the bred batch by candidate
// content hash. `certkit merge-corpus` folds a complete generation of
// deltas through the exact serial merge, making the result byte-identical
// to the unsharded run regardless of shard count or merge order.
#ifndef CERTKIT_CAMPAIGN_CHECKPOINT_H_
#define CERTKIT_CAMPAIGN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.h"
#include "support/status.h"

namespace certkit::campaign {

inline constexpr int kCheckpointSchema = 1;
inline constexpr int kShardDeltaSchema = 1;

// FNV-1a/64 over the config fields that define the campaign's *identity*:
// seed, population, generations, ticks, unit_prefix, seed_with_fig5.
// Execution knobs (jobs, timing, dirs, shard spec, stop-after) are
// excluded — they may differ between the invocations of one campaign.
std::uint64_t ConfigFingerprint(const CampaignConfig& config);

// --- serialization (emit -> parse -> emit byte-identical) -----------------
std::string CheckpointJson(const CampaignConfig& config,
                           const CampaignState& state);
// Parses a checkpoint payload. On fingerprint mismatch returns false with
// *mismatch set (state untouched); any other failure is a parse error.
bool ParseCheckpoint(std::string_view payload, std::uint64_t fingerprint,
                     CampaignState* out, bool* mismatch, std::string* error);

std::string ShardDeltaJson(const CampaignConfig& config,
                           const ShardDelta& delta);
bool ParseShardDelta(std::string_view payload, ShardDelta* out,
                     std::uint64_t* fingerprint, std::string* error);

// --- file IO --------------------------------------------------------------

// `<dir>/checkpoint.ckpt`.
std::string CheckpointPath(const std::string& dir);
// `<dir>/shard_g<gen>_<i>of<N>.ckshard`.
std::string ShardDeltaPath(const std::string& dir, int generation,
                           int shard_index, int shard_count);

enum class CheckpointLoad {
  kFresh,    // no checkpoint file: start from FreshState
  kResumed,  // state restored
  kMismatch, // checkpoint belongs to a different campaign configuration
  kCorrupt,  // frame or payload damaged / version-skewed
};

// Loads `<dir>/checkpoint.ckpt` into *state (only on kResumed). kMismatch
// and kCorrupt set *error; callers surface CheckpointDiagnostic and abort
// rather than clobbering data the user asked to keep.
CheckpointLoad LoadCampaignCheckpoint(const std::string& dir,
                                      const CampaignConfig& config,
                                      CampaignState* state,
                                      std::string* error);

// Frames and atomically replaces the checkpoint file.
support::Status WriteCampaignCheckpoint(const std::string& dir,
                                        const CampaignConfig& config,
                                        const CampaignState& state);

// One-line user-facing diagnostic for kMismatch/kCorrupt.
std::string CheckpointDiagnostic(CheckpointLoad load, const std::string& dir,
                                 const std::string& error);

support::Status WriteShardDelta(const std::string& dir,
                                const CampaignConfig& config,
                                const ShardDelta& delta);

// Loads every shard delta for `generation` in `dir`, validating each frame
// and its configuration fingerprint. Deltas of other generations are
// ignored; a damaged or foreign-campaign delta file is an error naming the
// file (re-run that shard invocation). Completeness (one delta per shard)
// is validated by MergeShardDeltas.
bool LoadShardDeltas(const std::string& dir, const CampaignConfig& config,
                     int generation, std::vector<ShardDelta>* out,
                     std::string* error);

// Deletes the consumed delta files for `generation`; returns how many.
int RemoveShardDeltas(const std::string& dir, int generation);

// Parses "--shard i/N": strict digits, N >= 1, 0 <= i < N, N <= 1024.
// False with a user-facing *error otherwise.
bool ParseShardSpec(std::string_view spec, int* index, int* count,
                    std::string* error);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_CHECKPOINT_H_
