// certkit campaign: delta-debugging minimizer for replay artifacts.
//
// When a replay diverges (differential oracle, digest mismatch, or a
// verdict worth keeping), the raw candidate is usually far larger than the
// divergence needs — dozens of ticks, several faults, a crowded scenario.
// Minimize() greedily shrinks the candidate through a fixed move set (drop
// a fault, cut ticks, thin actors, drop the detector-size override, halve
// fault durations), accepting any strictly cheaper candidate the caller's
// predicate still accepts. Cost is a positive integer, every accepted move
// strictly decreases it, and rejected moves leave the candidate unchanged —
// so the loop terminates unconditionally.
//
// The predicate abstracts *what* must be preserved: "this variant still
// diverges" (campaign/replay.h VariantDiverges) for differential findings,
// "the oracle outcome signature is unchanged" for plain repro shrinking.
#ifndef CERTKIT_CAMPAIGN_MINIMIZE_H_
#define CERTKIT_CAMPAIGN_MINIMIZE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/replay.h"

namespace certkit::campaign {

// Returns true when a shrunken candidate still reproduces the property
// being minimized. Must be deterministic (Evaluate is).
using ReplayPredicate = std::function<bool(const Candidate&)>;

// Integer size measure the minimizer drives down. Weighted so structurally
// simpler repros (fewer faults) beat shorter ones (fewer ticks), which beat
// emptier ones (fewer actors); fault durations are the tie-breaker tail.
std::int64_t CandidateCost(const Candidate& candidate);

struct MinimizeResult {
  Candidate candidate;        // cheapest accepted candidate
  std::int64_t initial_cost = 0;
  std::int64_t final_cost = 0;
  int accepted_moves = 0;
  int probes = 0;             // predicate evaluations spent
};

// Greedy first-improvement descent from `seed`: re-scans the move list
// after every accepted move, stops when no move is both cheaper and
// accepted. `seed` itself is assumed to satisfy the predicate.
MinimizeResult Minimize(const Candidate& seed, const ReplayPredicate& keeps);

// The two stock predicates.
ReplayPredicate DivergencePredicate(const VariantSpec& spec);
ReplayPredicate OutcomePredicate(const std::string& outcome);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_MINIMIZE_H_
