// certkit campaign: one test-generation candidate — everything needed to
// reproduce a single closed-loop pipeline run bit-for-bit.
//
// A candidate pairs a scenario description with a perception variant and a
// fault plan. The campaign engine evolves a pool of candidates toward
// uncovered structure (Figure 5's gaps: letterboxing, backend variants,
// relu/upsample paths) and unseen safety-oracle outcomes.
#ifndef CERTKIT_CAMPAIGN_CANDIDATE_H_
#define CERTKIT_CAMPAIGN_CANDIDATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ad/safety/fault_injector.h"
#include "ad/scenario.h"
#include "nn/layers.h"

namespace certkit::campaign {

struct Candidate {
  // Lineage (reporting only — never feeds the evaluation).
  std::int64_t id = 0;
  std::int64_t parent_id = -1;  // -1: seed-pool candidate
  int generation = 0;

  // The run description. Every stochastic element is derived from these
  // seeds, so a candidate re-executes identically on any thread and any
  // --jobs count.
  adpilot::ScenarioConfig scenario;
  std::vector<adpilot::FaultSpec> faults;
  std::uint64_t fault_seed = 7;
  nn::Backend backend = nn::Backend::kCpuNaive;
  // Detector input size; 0 = camera-native. Non-square values reach the
  // preprocessor's letterbox path that fixed scenario tests never take.
  int detector_input_h = 0;
  int detector_input_w = 0;
  int ticks = 25;  // closed-loop cycles to run
  // Fake-int8 detector inference. Never mutated by the campaign breeder —
  // fp32 stays the reference arm; the replay differential oracle flips this
  // to diff quantized inference against it.
  bool quantized = false;
};

const char* BackendTag(nn::Backend backend);
// Inverse of BackendTag; false (out untouched) on an unknown tag.
bool BackendFromTag(std::string_view tag, nn::Backend* out);

// Single-line JSON of `candidate` (stable key order; no volatile fields).
// Doubles use shortest round-trip form: ParseCandidate (campaign/replay.h)
// reconstructs the candidate bit-exactly from this string.
std::string CandidateJson(const Candidate& candidate);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_CANDIDATE_H_
