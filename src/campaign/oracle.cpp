#include "campaign/oracle.h"

#include <cmath>
#include <sstream>

#include "support/json.h"

namespace certkit::campaign {

namespace {

bool CommandFinite(const adpilot::ControlCommand& c) {
  return std::isfinite(c.throttle) && std::isfinite(c.brake) &&
         std::isfinite(c.steering);
}

}  // namespace

OracleVerdict Judge(const adpilot::ApolloPilot& pilot,
                    const std::vector<adpilot::TickReport>& reports) {
  OracleVerdict v;
  v.safety = pilot.safety_log().Summarize();
  v.final_state = pilot.safety_state();
  v.reached_goal = pilot.ReachedGoal();
  v.collision = pilot.HasClearanceSample() && pilot.MinClearanceSoFar() <= 0.0;
  v.ticks = static_cast<std::int64_t>(reports.size());
  for (const adpilot::TickReport& r : reports) {
    if (!CommandFinite(r.command)) v.non_finite_command = true;
    if (r.command_overridden) ++v.command_overrides;
  }
  return v;
}

std::string OutcomeSignature(const OracleVerdict& verdict) {
  std::ostringstream sig;
  sig << adpilot::SafetyStateName(verdict.final_state) << "|";
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    sig << (verdict.safety.by_monitor[m] > 0 ? '1' : '0');
  }
  sig << "|" << (verdict.collision ? 'C' : '-')
      << (verdict.non_finite_command ? 'N' : '-')
      << (verdict.reached_goal ? 'G' : '-')
      << (verdict.command_overrides > 0 ? 'O' : '-');
  return sig.str();
}

std::string VerdictJson(const OracleVerdict& verdict) {
  using support::JsonEscape;
  std::ostringstream out;
  out << "{\"final_state\":"
      << JsonEscape(adpilot::SafetyStateName(verdict.final_state))
      << ",\"violations\":" << verdict.safety.total
      << ",\"warnings\":" << verdict.safety.warnings
      << ",\"criticals\":" << verdict.safety.criticals
      << ",\"handled\":" << verdict.safety.handled << ",\"by_monitor\":{";
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    if (m > 0) out << ",";
    out << JsonEscape(adpilot::MonitorName(static_cast<adpilot::MonitorId>(m)))
        << ":" << verdict.safety.by_monitor[m];
  }
  out << "},\"collision\":" << (verdict.collision ? "true" : "false")
      << ",\"non_finite_command\":"
      << (verdict.non_finite_command ? "true" : "false")
      << ",\"reached_goal\":" << (verdict.reached_goal ? "true" : "false")
      << ",\"command_overrides\":" << verdict.command_overrides
      << ",\"ticks\":" << verdict.ticks << "}";
  return out.str();
}

bool Oracle::Observe(const OracleVerdict& verdict) {
  totals_.total += verdict.safety.total;
  totals_.warnings += verdict.safety.warnings;
  totals_.criticals += verdict.safety.criticals;
  totals_.handled += verdict.safety.handled;
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    totals_.by_monitor[m] += verdict.safety.by_monitor[m];
  }
  if (verdict.collision) ++collisions_;
  if (verdict.non_finite_command) ++non_finite_;
  if (verdict.final_state == adpilot::SafetyState::kSafeStop) ++safe_stops_;
  return seen_.insert(OutcomeSignature(verdict)).second;
}

}  // namespace certkit::campaign
