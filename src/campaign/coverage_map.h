// certkit campaign: the campaign's own view of structural coverage.
//
// The global cov::Registry accumulates probes from *everything* that has run
// in the process (benchmark warm-ups, other tests, other campaign workers).
// The campaign instead merges only the per-candidate covers captured with
// cov::ThreadCapture, so its coverage numbers are a pure function of the
// candidate set — independent of --jobs and of whatever else the process did.
#ifndef CERTKIT_CAMPAIGN_COVERAGE_MAP_H_
#define CERTKIT_CAMPAIGN_COVERAGE_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/coverage.h"

namespace certkit::campaign {

class CoverageMap {
 public:
  // Merges a candidate's captured cover; returns the number of new probe
  // facts (statements, decision outcomes, MC/DC vectors) — the greybox
  // "adds coverage" keep signal.
  std::int64_t Merge(const cov::CoverSet& cover);

  // Coverage rows for every unit in the merged cover whose name starts with
  // `prefix` (empty prefix = all units), rated against the unit's declared
  // probe totals.
  std::vector<cov::CoverageRow> Rows(const std::string& prefix) const;

  const cov::CoverSet& merged() const { return merged_; }
  std::int64_t total_facts() const { return total_facts_; }

  // Reinstates a checkpointed map: the merged cover plus the fact tally a
  // prior Merge sequence accumulated. Subsequent Merges continue exactly as
  // they would have on the original map.
  void Restore(cov::CoverSet merged, std::int64_t total_facts) {
    merged_ = std::move(merged);
    total_facts_ = total_facts;
  }

 private:
  cov::CoverSet merged_;
  std::int64_t total_facts_ = 0;
};

// Renders a coverage ratio as a JSON number: fixed 4-decimal form (the
// historical report format), "null" when non-finite — coverage math never
// produces Inf/NaN today, but a report that must parse back cannot emit
// tokens JSON does not have.
std::string RatioJson(double ratio);

// Renders `rows` as a JSON array of per-unit objects (stable order/format,
// unit names escaped).
std::string CoverageRowsJson(const std::vector<cov::CoverageRow>& rows);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_COVERAGE_MAP_H_
