// certkit campaign: the content-addressed persistent corpus store.
//
// A long-running campaign accumulates a corpus (candidates worth mutating)
// and the coverage facts that justified keeping them. This store persists
// both across process exits with the same discipline as the driver's
// ArtifactCache:
//
//  * content addressing — every entry is keyed by the FNV-1a/64 hash of its
//    candidate's canonical JSON, so identical candidates from different
//    shards or sessions dedup to one file;
//  * framed entries — a 4-byte magic, a u32 schema version, and a u64
//    payload digest precede the JSON payload. Truncated, bit-flipped, or
//    version-skewed entries fail the frame check and are *silently
//    recomputed* (Evaluate is a pure function of the candidate), never
//    trusted, never fatal;
//  * atomic writes — entries land under a unique temp name and are renamed
//    into place, so concurrent writers (shards on a shared directory) and
//    readers only ever see whole entries.
//
// The binary format is documented in DESIGN.md; the corruption suite in
// tests/campaign/corpus_store_test.cpp locks the recovery behavior.
#ifndef CERTKIT_CAMPAIGN_CORPUS_STORE_H_
#define CERTKIT_CAMPAIGN_CORPUS_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/candidate.h"
#include "campaign/oracle.h"
#include "coverage/coverage.h"
#include "support/json.h"
#include "support/status.h"

namespace certkit::campaign {

// Bump when CorpusEntryJson changes shape; readers recompute entries whose
// schema they do not understand.
inline constexpr int kCorpusSchema = 1;

// Content address of a candidate: FNV-1a/64 over its canonical JSON. Two
// candidates hash equal iff their serialized forms are identical.
std::uint64_t CandidateHash(const Candidate& candidate);

// --- cover serialization --------------------------------------------------
// One-line JSON for a detached cover set (stable order: units and probe ids
// ascending, vectors in set order). MC/DC vector masks are u64 bitmasks and
// ride as 16-digit hex strings, like every digest in the replay format.
std::string CoverSetJson(const cov::CoverSet& cover);
bool ParseCoverSet(const support::JsonValue& v, cov::CoverSet* out,
                   std::string* error);

// Number of probe facts in `cover` (statements + decision outcomes + MC/DC
// vectors) — what merging it into an empty map would return.
std::int64_t CoverFacts(const cov::CoverSet& cover);

// FNV-1a/64 over CoverSetJson(cover): the per-request coverage attribution
// digest the serve loop reports.
std::uint64_t CoverDigest(const cov::CoverSet& cover);

// --- entries --------------------------------------------------------------

// Everything the campaign needs back from a kept candidate's evaluation.
struct CorpusEntry {
  Candidate candidate;
  OracleVerdict verdict;
  std::string outcome;  // OutcomeSignature(verdict)
  std::uint64_t report_digest = 0;
  cov::CoverSet cover;
};

// Emit -> parse -> emit is byte-identical (the resume determinism tests
// compare stored entry *bytes* across runs).
std::string CorpusEntryJson(const CorpusEntry& entry);
bool ParseCorpusEntry(std::string_view json, CorpusEntry* out,
                      std::string* error);

// --- framing --------------------------------------------------------------
// blob := magic[4] | schema u32 LE | fnv64(payload) u64 LE | payload.
// UnframeBlob returns false on any mismatch (wrong magic, short header,
// schema skew, digest mismatch) — the caller recomputes.
std::string FrameBlob(const char magic[4], std::uint32_t schema,
                      std::string_view payload);
bool UnframeBlob(const char magic[4], std::uint32_t schema,
                 std::string_view blob, std::string_view* payload);

// Atomic publish shared by the store, checkpoints, and shard deltas:
// creates `dir`, writes `blob` under a unique temp name, renames into
// `path`. Concurrent writers never interleave; readers see whole files.
support::Status AtomicWriteFile(const std::string& dir,
                                const std::string& path,
                                const std::string& blob);

// --- the store ------------------------------------------------------------

class CorpusStore {
 public:
  // Empty `dir` disables the store (Put/Load become no-ops); campaigns
  // without --checkpoint-dir run exactly as before.
  explicit CorpusStore(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // `<dir>/<hex16-candidate-hash>.ckcorp`.
  std::string EntryPath(std::uint64_t candidate_hash) const;

  // Frames and atomically writes `entry` under its candidate hash.
  // Overwrites (identical content) are harmless.
  support::Status Put(const CorpusEntry& entry) const;

  // Loads the entry for `candidate_hash`. False when absent, corrupt,
  // schema-skewed, or its payload hashes to a different candidate — all of
  // which the caller treats as "recompute".
  bool Load(std::uint64_t candidate_hash, CorpusEntry* out) const;

  // Every valid entry, deduped by candidate hash and sorted by candidate id
  // (ties by hash). Corrupt or foreign files are skipped silently.
  std::vector<CorpusEntry> LoadAll() const;

  // Valid entries on disk (corrupt/foreign files excluded).
  int CountEntries() const;

 private:
  std::string dir_;
};

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_CORPUS_STORE_H_
