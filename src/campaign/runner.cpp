#include "campaign/runner.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <sstream>

#include "ad/pipeline.h"
#include "campaign/baseline.h"
#include "campaign/checkpoint.h"
#include "campaign/corpus_store.h"
#include "campaign/mutation.h"
#include "campaign/replay.h"
#include "kernels/conv.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace certkit::campaign {

namespace {

// The accelerator-simulating backends (closed/open) run their kernels on
// the process-wide gpusim device pool, whose fork-join state is not
// reentrant — two concurrent pilots on those backends would interleave
// kernel jobs. CPU-naive candidates run lock-free; the others take this
// mutex for the duration of their run.
std::mutex g_accel_mu;

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

std::string RowJson(const cov::CoverageRow& row) {
  std::ostringstream out;
  out << "{\"unit\":" << support::JsonEscape(row.unit)
      << ",\"statement\":" << RatioJson(row.statement)
      << ",\"branch\":" << RatioJson(row.branch)
      << ",\"mcdc\":" << RatioJson(row.mcdc) << "}";
  return out.str();
}

}  // namespace

CampaignRunner::CampaignRunner(const CampaignConfig& config)
    : config_(config) {
  CERTKIT_CHECK(config.population >= 1);
  CERTKIT_CHECK(config.generations >= 1);
}

EvalResult CampaignRunner::Evaluate(const Candidate& candidate) {
  using namespace adpilot;
  std::unique_lock<std::mutex> accel_lock(g_accel_mu, std::defer_lock);
  if (candidate.backend != nn::Backend::kCpuNaive) {
    accel_lock.lock();
    // Every candidate starts from a cold tuner: the cached conv configs
    // must not leak across candidates, or evaluation ORDER (which varies
    // with --jobs scheduling) would change what each candidate executes.
    // The cost model is deterministic, so each candidate re-derives the
    // same configs every time, in any order, at any job count.
    kernels::isaac_sim::ResetTuningCache();
  }

  PilotConfig cfg;
  cfg.scenario = candidate.scenario;
  cfg.perception.backend = candidate.backend;
  cfg.perception.detector_input_h = candidate.detector_input_h;
  cfg.perception.detector_input_w = candidate.detector_input_w;
  cfg.perception.quantized_weights = candidate.quantized;
  // Generous real-time budget: the watchdog must only trip on the fault
  // plan's synthetic overruns (magnitudes far above this), never on actual
  // execution time — otherwise sanitizer builds would change the verdict.
  // TSan with 8 concurrent serve requests on one core has been observed to
  // push a real tick past 5 s, so the budget is minutes, not seconds.
  cfg.safety.tick_deadline = 1000.0;

  FaultCampaignConfig fault_cfg;
  fault_cfg.seed = candidate.fault_seed;
  fault_cfg.faults = candidate.faults;

  EvalResult result;
  obs::RecordFlightEvent(obs::FlightEventType::kCandidateBegin, 0, 0,
                         candidate.id);
  cov::ThreadCapture capture;
  // Span capture mirrors the coverage capture: thread-local, so this
  // worker's spans are exactly this candidate's spans, with a logical clock
  // starting at 0 — the trace track is a pure function of the candidate.
  std::optional<obs::SpanCapture> trace_capture;
  if (obs::TracingEnabled()) trace_capture.emplace();
  {
    obs::Span candidate_span("candidate", "campaign");
    ApolloPilot pilot(cfg);
    FaultInjector injector(fault_cfg);
    pilot.SetFaultInjector(&injector);
    // Replay capture rides along on every evaluation: per-tick stream
    // signatures plus the whole-drive report digest. The recorder costs one
    // digest pass per tick, and makes any kept candidate exportable as a
    // replay artifact without re-running it.
    TickSignatureRecorder recorder;
    pilot.SetTickTap(&recorder);
    std::vector<TickReport> reports;
    reports.reserve(static_cast<std::size_t>(candidate.ticks));
    for (int t = 0; t < candidate.ticks; ++t) {
      reports.push_back(pilot.Tick());
    }
    result.verdict = Judge(pilot, reports);
    result.report_digest = DigestTickReports(reports);
    result.tick_signatures = recorder.Take();
  }
  result.cover = capture.Take();
  if (trace_capture.has_value()) result.spans = trace_capture->Take();
  obs::RecordFlightEvent(obs::FlightEventType::kCandidateEnd, 0, 0,
                         candidate.id);
  return result;
}

void EnsureCoverageDeclarations() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    // Smallest evaluation that still executes every instrumented unit the
    // campaign's candidates can touch: one tick of the default scenario on
    // the CPU backend drives the full detector forward (preprocess, every
    // layer type, decode, NMS), and each unit declares all of its probes on
    // first execution. The result is discarded — only the declaration side
    // effect matters. Must not run under an active ThreadCapture (Evaluate
    // installs its own).
    Candidate warmup;
    warmup.ticks = 1;
    warmup.backend = nn::Backend::kCpuNaive;
    (void)CampaignRunner::Evaluate(warmup);
  });
}

CampaignState CampaignRunner::FreshState(const CampaignConfig& config) {
  CampaignState state;
  MutationScheduler scheduler(config.seed, config.ticks);
  state.scheduler = scheduler.Save();
  // Parent selection draws from its own serial stream so adding mutation
  // operators never perturbs which parents get picked.
  state.select_rng =
      support::Xoshiro256(config.seed ^ 0xA5A5A5A5DEADBEEFULL).state();
  if (config.seed_with_fig5) {
    state.cover.Merge(CaptureFigure5Baseline());
  }
  return state;
}

std::vector<Candidate> CampaignRunner::Breed(const CampaignConfig& config,
                                             CampaignState* state) {
  MutationScheduler scheduler(config.seed, config.ticks);
  scheduler.Restore(state->scheduler);
  support::Xoshiro256 select_rng(config.seed);
  select_rng.set_state(state->select_rng);

  const int gen = state->next_generation;
  std::vector<Candidate> batch;
  batch.reserve(static_cast<std::size_t>(config.population));
  for (int i = 0; i < config.population; ++i) {
    if (gen == 0 || state->corpus.empty()) {
      batch.push_back(scheduler.SeedCandidate(gen * config.population + i));
    } else {
      const auto pick = static_cast<std::size_t>(select_rng.UniformInt(
          0, static_cast<std::int64_t>(state->corpus.size()) - 1));
      batch.push_back(scheduler.Mutate(state->corpus[pick]));
    }
  }
  state->scheduler = scheduler.Save();
  state->select_rng = select_rng.state();
  return batch;
}

void CampaignRunner::MergeGeneration(const CampaignConfig& config,
                                     const std::vector<Candidate>& batch,
                                     std::vector<EvalResult>* evals,
                                     CampaignState* state,
                                     const CorpusStore* store) {
  const bool tracing = obs::TracingEnabled();
  auto& metrics = obs::MetricsRegistry::Instance();
  const int gen = state->next_generation;

  GenerationStats stats;
  stats.generation = gen;
  stats.evaluated = static_cast<int>(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EvalResult& eval = (*evals)[i];
    const std::int64_t new_facts = state->cover.Merge(eval.cover);
    const bool novel_outcome = state->oracle.Observe(eval.verdict);
    stats.new_facts += new_facts;
    if (new_facts > 0 || novel_outcome) {
      state->corpus.push_back(batch[i]);
      ++stats.kept;
      obs::RecordFlightEvent(obs::FlightEventType::kCandidateKept, 0, 0,
                             batch[i].id);
      if (!config.artifact_dir.empty()) {
        const std::string artifact =
            WriteFindingArtifact(config.artifact_dir, batch[i], eval);
        // Point the black box at the newest repro so a later crash dump
        // names an artifact that actually replays this run.
        if (!artifact.empty()) obs::SetFlightArtifactPath(artifact);
      }
      if (store != nullptr && store->enabled()) {
        CorpusEntry entry;
        entry.candidate = batch[i];
        entry.verdict = eval.verdict;
        entry.outcome = OutcomeSignature(eval.verdict);
        entry.report_digest = eval.report_digest;
        entry.cover = eval.cover;
        (void)store->Put(entry);  // store loss is repaired by recompute
      }
    }
    if (tracing) {
      char label[64];
      std::snprintf(label, sizeof(label), "campaign g%d/c%02d", gen,
                    static_cast<int>(i));
      obs::TraceRecorder::Instance().AddTrack(label, std::move(eval.spans));
    }
  }
  metrics.GetCounter("campaign/evaluated").Add(stats.evaluated);
  metrics.GetCounter("campaign/kept").Add(stats.kept);
  metrics.GetCounter("campaign/new_facts").Add(stats.new_facts);
  state->evaluated_total += stats.evaluated;
  stats.distinct_outcomes = state->oracle.distinct_outcomes();
  stats.rows = state->cover.Rows(config.unit_prefix);
  stats.average = cov::Average(stats.rows);
  state->generations.push_back(std::move(stats));
}

CampaignResult CampaignRunner::Finalize(const CampaignConfig& config,
                                        const CampaignState& state) {
  CampaignResult result;
  result.config = config;
  result.generations = state.generations;
  result.corpus = state.corpus;
  result.evaluated_total = state.evaluated_total;
  result.distinct_outcomes = state.oracle.distinct_outcomes();
  result.safety_totals = state.oracle.totals();
  result.collisions = state.oracle.collisions();
  result.non_finite_commands = state.oracle.non_finite_commands();
  result.safe_stops = state.oracle.safe_stops();
  result.merged = state.cover.merged();
  result.final_rows = state.cover.Rows(config.unit_prefix);
  result.final_average = cov::Average(result.final_rows);
  result.complete = state.next_generation >= config.generations;
  result.next_generation = state.next_generation;
  return result;
}

namespace {

std::string StoreDir(const CampaignConfig& config) {
  return config.checkpoint_dir.empty() ? std::string()
                                       : config.checkpoint_dir + "/corpus";
}

// Resume repair: any corpus candidate whose store entry is missing or
// corrupt is simply re-evaluated — Evaluate is a pure function of the
// candidate, so the recomputed entry is byte-identical to the lost one.
void RepairCorpusStore(const CorpusStore& store, const CampaignState& state) {
  if (!store.enabled()) return;
  for (const Candidate& candidate : state.corpus) {
    CorpusEntry entry;
    if (store.Load(CandidateHash(candidate), &entry)) continue;
    EvalResult eval = CampaignRunner::Evaluate(candidate);
    entry.candidate = candidate;
    entry.verdict = eval.verdict;
    entry.outcome = OutcomeSignature(eval.verdict);
    entry.report_digest = eval.report_digest;
    entry.cover = eval.cover;
    (void)store.Put(entry);
  }
}

}  // namespace

CampaignResult CampaignRunner::Run() {
  CampaignState state = FreshState(config_);
  return RunFrom(&state);
}

CampaignResult CampaignRunner::RunFrom(CampaignState* state) {
  const auto t_start = std::chrono::steady_clock::now();

  // Fleet observability. The control capture records the serial skeleton
  // (one "generation" span per generation) on this thread; candidate spans
  // land in the workers' own captures and are merged below in candidate
  // order, so the trace is byte-identical for any --jobs. The queue-depth
  // gauge is the *logical* fleet queue — candidates enqueued at each
  // fan-out — not a scheduler sample, precisely so it stays deterministic.
  const bool tracing = obs::TracingEnabled();
  auto& metrics = obs::MetricsRegistry::Instance();
  obs::Gauge& queue_gauge = metrics.GetGauge("campaign/fleet/queue_depth");
  if (config_.include_timing) {
    metrics.GetGauge("campaign/fleet/jobs")
        .Set(static_cast<double>(config_.jobs));
  }
  std::optional<obs::SpanCapture> control_capture;
  if (tracing) control_capture.emplace();

  const CorpusStore store(StoreDir(config_));
  if (state->next_generation > 0) {
    // A resumed campaign may finalize (or repair) without evaluating
    // anything in this process; make sure probe declarations exist first.
    EnsureCoverageDeclarations();
    RepairCorpusStore(store, *state);
  }

  support::ThreadPool pool(config_.jobs <= 0
                               ? -1
                               : config_.jobs - 1);  // caller drains too

  int merged_this_run = 0;
  while (state->next_generation < config_.generations) {
    if (config_.stop_after_generations > 0 &&
        merged_this_run >= config_.stop_after_generations) {
      break;
    }
    const auto t_gen = std::chrono::steady_clock::now();
    obs::Span gen_span("generation", "campaign");
    // --- breed (serial, seeded) ---
    std::vector<Candidate> batch = Breed(config_, state);

    // --- evaluate (parallel; slot i holds candidate i's result) ---
    queue_gauge.Set(static_cast<double>(batch.size()));
    std::vector<EvalResult> evals = support::ParallelMap<EvalResult>(
        pool, batch.size(),
        [&batch](std::size_t i) { return Evaluate(batch[i]); });
    queue_gauge.Set(0.0);

    // --- merge (serial, stable candidate order) ---
    MergeGeneration(config_, batch, &evals, state, &store);
    state->generations.back().seconds = Elapsed(t_gen);
    state->next_generation += 1;
    ++merged_this_run;
    if (!config_.checkpoint_dir.empty()) {
      const support::Status saved =
          WriteCampaignCheckpoint(config_.checkpoint_dir, config_, *state);
      if (!saved.ok()) {
        std::fprintf(stderr, "warning: checkpoint not written: %s\n",
                     saved.ToString().c_str());
      }
    }
  }

  if (control_capture.has_value()) {
    obs::TraceRecorder::Instance().AddTrack("campaign control",
                                            control_capture->Take());
  }

  CampaignResult result = Finalize(config_, *state);
  result.total_seconds = Elapsed(t_start);
  return result;
}

ShardDelta CampaignRunner::RunShardGeneration(CampaignState* state) {
  CERTKIT_CHECK(config_.shard_count >= 1);
  CERTKIT_CHECK(config_.shard_index >= 0 &&
                config_.shard_index < config_.shard_count);
  CERTKIT_CHECK(state->next_generation < config_.generations);

  ShardDelta delta;
  delta.generation = state->next_generation;
  delta.shard_index = config_.shard_index;
  delta.shard_count = config_.shard_count;

  // Breed the FULL batch — identical on every shard, because breeding is a
  // pure function of the checkpointed serial state. Only this shard's slice
  // gets evaluated.
  const std::vector<Candidate> batch = Breed(config_, state);
  std::vector<std::size_t> slice;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(config_.shard_count)) ==
        config_.shard_index) {
      slice.push_back(i);
    }
  }

  auto& metrics = obs::MetricsRegistry::Instance();
  obs::Gauge& queue_gauge = metrics.GetGauge("campaign/fleet/queue_depth");
  support::ThreadPool pool(config_.jobs <= 0 ? -1 : config_.jobs - 1);
  queue_gauge.Set(static_cast<double>(slice.size()));
  std::vector<EvalResult> evals = support::ParallelMap<EvalResult>(
      pool, slice.size(),
      [&](std::size_t i) { return Evaluate(batch[slice[i]]); });
  queue_gauge.Set(0.0);

  delta.evals.reserve(slice.size());
  for (std::size_t i = 0; i < slice.size(); ++i) {
    ShardEval se;
    se.index = static_cast<int>(slice[i]);
    se.candidate_hash = CandidateHash(batch[slice[i]]);
    se.verdict = evals[i].verdict;
    se.outcome = OutcomeSignature(evals[i].verdict);
    se.report_digest = evals[i].report_digest;
    se.cover = std::move(evals[i].cover);
    delta.evals.push_back(std::move(se));
  }
  return delta;
}

bool CampaignRunner::MergeShardDeltas(const std::vector<ShardDelta>& deltas,
                                      CampaignState* state,
                                      std::string* error) {
  if (deltas.empty()) {
    *error = "no shard deltas to merge";
    return false;
  }
  const int n = deltas.front().shard_count;
  const int gen = state->next_generation;
  if (static_cast<int>(deltas.size()) != n) {
    *error = "expected " + std::to_string(n) + " shard deltas, got " +
             std::to_string(deltas.size());
    return false;
  }
  std::vector<const ShardDelta*> by_shard(static_cast<std::size_t>(n),
                                          nullptr);
  for (const ShardDelta& d : deltas) {
    if (d.shard_count != n) {
      *error = "shard deltas disagree on shard count";
      return false;
    }
    if (d.generation != gen) {
      *error = "shard delta for generation " + std::to_string(d.generation) +
               " does not match checkpoint generation " + std::to_string(gen);
      return false;
    }
    if (d.shard_index < 0 || d.shard_index >= n) {
      *error = "shard index " + std::to_string(d.shard_index) +
               " out of range 0.." + std::to_string(n - 1);
      return false;
    }
    if (by_shard[static_cast<std::size_t>(d.shard_index)] != nullptr) {
      *error = "duplicate delta for shard " + std::to_string(d.shard_index);
      return false;
    }
    by_shard[static_cast<std::size_t>(d.shard_index)] = &d;
  }

  // The merge process typically never evaluated a candidate; declare probes
  // before computing coverage rows.
  EnsureCoverageDeclarations();

  // Re-breed the batch (cheap and exact) to recover candidate identities,
  // then reassemble the full evaluation vector in candidate-index order —
  // merge order of the delta FILES cannot matter because the fold below is
  // by index, not by arrival. Breeding advances the RNG streams; snapshot
  // them so a failed merge leaves `state` exactly as it was.
  const SchedulerState saved_scheduler = state->scheduler;
  const std::array<std::uint64_t, 4> saved_select = state->select_rng;
  const auto restore_streams = [&]() {
    state->scheduler = saved_scheduler;
    state->select_rng = saved_select;
  };
  const std::vector<Candidate> batch = Breed(config_, state);
  std::vector<EvalResult> evals(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ShardDelta* d = by_shard[i % static_cast<std::size_t>(n)];
    const ShardEval* found = nullptr;
    for (const ShardEval& se : d->evals) {
      if (se.index == static_cast<int>(i)) {
        found = &se;
        break;
      }
    }
    if (found == nullptr) {
      *error = "shard " + std::to_string(d->shard_index) +
               " is missing candidate " + std::to_string(i);
      restore_streams();
      return false;
    }
    if (found->candidate_hash != CandidateHash(batch[i])) {
      *error = "shard " + std::to_string(d->shard_index) + " candidate " +
               std::to_string(i) +
               " hash mismatch (stale delta for another campaign state?)";
      restore_streams();
      return false;
    }
    evals[i].verdict = found->verdict;
    evals[i].report_digest = found->report_digest;
    evals[i].cover = found->cover;
  }

  const CorpusStore store(StoreDir(config_));
  MergeGeneration(config_, batch, &evals, state, &store);
  state->next_generation += 1;
  return true;
}

std::string CampaignJson(const CampaignResult& result) {
  const bool timing = result.config.include_timing;
  std::ostringstream out;
  out << "{\"campaign\":{\"seed\":" << result.config.seed
      << ",\"population\":" << result.config.population
      << ",\"generations\":" << result.config.generations
      << ",\"unit_prefix\":" << support::JsonEscape(result.config.unit_prefix);
  if (timing) out << ",\"jobs\":" << result.config.jobs;
  out << "},\"generations\":[";
  for (std::size_t g = 0; g < result.generations.size(); ++g) {
    const GenerationStats& s = result.generations[g];
    if (g > 0) out << ",";
    out << "{\"generation\":" << s.generation << ",\"evaluated\":"
        << s.evaluated << ",\"kept\":" << s.kept << ",\"new_facts\":"
        << s.new_facts << ",\"distinct_outcomes\":" << s.distinct_outcomes
        << ",\"coverage\":" << CoverageRowsJson(s.rows)
        << ",\"average\":" << RowJson(s.average);
    if (timing) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ",\"seconds\":%.3f,\"candidates_per_sec\":%.2f",
                    s.seconds,
                    s.seconds > 0.0 ? s.evaluated / s.seconds : 0.0);
      out << buf;
    }
    out << "}";
  }
  out << "],\"corpus\":[";
  for (std::size_t i = 0; i < result.corpus.size(); ++i) {
    if (i > 0) out << ",";
    out << CandidateJson(result.corpus[i]);
  }
  out << "],\"oracle\":{\"distinct_outcomes\":" << result.distinct_outcomes
      << ",\"violations\":" << result.safety_totals.total
      << ",\"warnings\":" << result.safety_totals.warnings
      << ",\"criticals\":" << result.safety_totals.criticals
      << ",\"handled\":" << result.safety_totals.handled
      << ",\"by_monitor\":{";
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    if (m > 0) out << ",";
    out << support::JsonEscape(
               adpilot::MonitorName(static_cast<adpilot::MonitorId>(m)))
        << ":" << result.safety_totals.by_monitor[m];
  }
  out << "},\"collisions\":" << result.collisions
      << ",\"non_finite_commands\":" << result.non_finite_commands
      << ",\"safe_stops\":" << result.safe_stops
      << "},\"final_coverage\":" << CoverageRowsJson(result.final_rows)
      << ",\"final_average\":" << RowJson(result.final_average);
  if (timing) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",\"timing\":{\"jobs\":%d,\"total_seconds\":%.3f,"
                  "\"candidates_per_sec\":%.2f}",
                  result.config.jobs, result.total_seconds,
                  result.total_seconds > 0.0
                      ? result.evaluated_total / result.total_seconds
                      : 0.0);
    out << buf;
  }
  out << "}";
  return out.str();
}

}  // namespace certkit::campaign
