#include "campaign/runner.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <sstream>

#include "ad/pipeline.h"
#include "campaign/baseline.h"
#include "campaign/mutation.h"
#include "campaign/replay.h"
#include "kernels/conv.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace certkit::campaign {

namespace {

// The accelerator-simulating backends (closed/open) run their kernels on
// the process-wide gpusim device pool, whose fork-join state is not
// reentrant — two concurrent pilots on those backends would interleave
// kernel jobs. CPU-naive candidates run lock-free; the others take this
// mutex for the duration of their run.
std::mutex g_accel_mu;

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

std::string RowJson(const cov::CoverageRow& row) {
  std::ostringstream out;
  out << "{\"unit\":" << support::JsonEscape(row.unit)
      << ",\"statement\":" << RatioJson(row.statement)
      << ",\"branch\":" << RatioJson(row.branch)
      << ",\"mcdc\":" << RatioJson(row.mcdc) << "}";
  return out.str();
}

}  // namespace

CampaignRunner::CampaignRunner(const CampaignConfig& config)
    : config_(config) {
  CERTKIT_CHECK(config.population >= 1);
  CERTKIT_CHECK(config.generations >= 1);
}

EvalResult CampaignRunner::Evaluate(const Candidate& candidate) {
  using namespace adpilot;
  std::unique_lock<std::mutex> accel_lock(g_accel_mu, std::defer_lock);
  if (candidate.backend != nn::Backend::kCpuNaive) {
    accel_lock.lock();
    // Every candidate starts from a cold tuner: the cached conv configs
    // must not leak across candidates, or evaluation ORDER (which varies
    // with --jobs scheduling) would change what each candidate executes.
    // The cost model is deterministic, so each candidate re-derives the
    // same configs every time, in any order, at any job count.
    kernels::isaac_sim::ResetTuningCache();
  }

  PilotConfig cfg;
  cfg.scenario = candidate.scenario;
  cfg.perception.backend = candidate.backend;
  cfg.perception.detector_input_h = candidate.detector_input_h;
  cfg.perception.detector_input_w = candidate.detector_input_w;
  cfg.perception.quantized_weights = candidate.quantized;
  // Generous real-time budget: the watchdog must only trip on the fault
  // plan's synthetic overruns (magnitudes far above this), never on actual
  // execution time — otherwise sanitizer builds would change the verdict.
  cfg.safety.tick_deadline = 5.0;

  FaultCampaignConfig fault_cfg;
  fault_cfg.seed = candidate.fault_seed;
  fault_cfg.faults = candidate.faults;

  EvalResult result;
  cov::ThreadCapture capture;
  // Span capture mirrors the coverage capture: thread-local, so this
  // worker's spans are exactly this candidate's spans, with a logical clock
  // starting at 0 — the trace track is a pure function of the candidate.
  std::optional<obs::SpanCapture> trace_capture;
  if (obs::TracingEnabled()) trace_capture.emplace();
  {
    obs::Span candidate_span("candidate", "campaign");
    ApolloPilot pilot(cfg);
    FaultInjector injector(fault_cfg);
    pilot.SetFaultInjector(&injector);
    // Replay capture rides along on every evaluation: per-tick stream
    // signatures plus the whole-drive report digest. The recorder costs one
    // digest pass per tick, and makes any kept candidate exportable as a
    // replay artifact without re-running it.
    TickSignatureRecorder recorder;
    pilot.SetTickTap(&recorder);
    std::vector<TickReport> reports;
    reports.reserve(static_cast<std::size_t>(candidate.ticks));
    for (int t = 0; t < candidate.ticks; ++t) {
      reports.push_back(pilot.Tick());
    }
    result.verdict = Judge(pilot, reports);
    result.report_digest = DigestTickReports(reports);
    result.tick_signatures = recorder.Take();
  }
  result.cover = capture.Take();
  if (trace_capture.has_value()) result.spans = trace_capture->Take();
  return result;
}

CampaignResult CampaignRunner::Run() {
  const auto t_start = std::chrono::steady_clock::now();
  CampaignResult result;
  result.config = config_;

  // Fleet observability. The control capture records the serial skeleton
  // (one "generation" span per generation) on this thread; candidate spans
  // land in the workers' own captures and are merged below in candidate
  // order, so the trace is byte-identical for any --jobs. The queue-depth
  // gauge is the *logical* fleet queue — candidates enqueued at each
  // fan-out — not a scheduler sample, precisely so it stays deterministic.
  const bool tracing = obs::TracingEnabled();
  auto& metrics = obs::MetricsRegistry::Instance();
  obs::Counter& evaluated_counter = metrics.GetCounter("campaign/evaluated");
  obs::Counter& kept_counter = metrics.GetCounter("campaign/kept");
  obs::Counter& facts_counter = metrics.GetCounter("campaign/new_facts");
  obs::Gauge& queue_gauge = metrics.GetGauge("campaign/fleet/queue_depth");
  if (config_.include_timing) {
    metrics.GetGauge("campaign/fleet/jobs")
        .Set(static_cast<double>(config_.jobs));
  }
  std::optional<obs::SpanCapture> control_capture;
  if (tracing) control_capture.emplace();

  MutationScheduler scheduler(config_.seed, config_.ticks);
  // Parent selection draws from its own serial stream so adding mutation
  // operators never perturbs which parents get picked.
  support::Xoshiro256 select_rng(config_.seed ^ 0xA5A5A5A5DEADBEEFULL);
  Oracle oracle;
  CoverageMap cover_map;
  support::ThreadPool pool(config_.jobs <= 0
                               ? -1
                               : config_.jobs - 1);  // caller drains too

  if (config_.seed_with_fig5) {
    cover_map.Merge(CaptureFigure5Baseline());
  }

  for (int gen = 0; gen < config_.generations; ++gen) {
    const auto t_gen = std::chrono::steady_clock::now();
    obs::Span gen_span("generation", "campaign");
    // --- breed (serial, seeded) ---
    std::vector<Candidate> batch;
    batch.reserve(static_cast<std::size_t>(config_.population));
    for (int i = 0; i < config_.population; ++i) {
      if (gen == 0 || result.corpus.empty()) {
        batch.push_back(
            scheduler.SeedCandidate(gen * config_.population + i));
      } else {
        const auto pick = static_cast<std::size_t>(select_rng.UniformInt(
            0, static_cast<std::int64_t>(result.corpus.size()) - 1));
        batch.push_back(scheduler.Mutate(result.corpus[pick]));
      }
    }

    // --- evaluate (parallel; slot i holds candidate i's result) ---
    queue_gauge.Set(static_cast<double>(batch.size()));
    std::vector<EvalResult> evals = support::ParallelMap<EvalResult>(
        pool, batch.size(),
        [&batch](std::size_t i) { return Evaluate(batch[i]); });
    queue_gauge.Set(0.0);

    // --- merge (serial, stable candidate order) ---
    GenerationStats stats;
    stats.generation = gen;
    stats.evaluated = static_cast<int>(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::int64_t new_facts = cover_map.Merge(evals[i].cover);
      const bool novel_outcome = oracle.Observe(evals[i].verdict);
      stats.new_facts += new_facts;
      if (new_facts > 0 || novel_outcome) {
        result.corpus.push_back(batch[i]);
        ++stats.kept;
        if (!config_.artifact_dir.empty()) {
          WriteFindingArtifact(config_.artifact_dir, batch[i], evals[i]);
        }
      }
      if (tracing) {
        char label[64];
        std::snprintf(label, sizeof(label), "campaign g%d/c%02d", gen,
                      static_cast<int>(i));
        obs::TraceRecorder::Instance().AddTrack(label,
                                                std::move(evals[i].spans));
      }
    }
    evaluated_counter.Add(stats.evaluated);
    kept_counter.Add(stats.kept);
    facts_counter.Add(stats.new_facts);
    result.evaluated_total += stats.evaluated;
    stats.distinct_outcomes = oracle.distinct_outcomes();
    stats.rows = cover_map.Rows(config_.unit_prefix);
    stats.average = cov::Average(stats.rows);
    stats.seconds = Elapsed(t_gen);
    result.generations.push_back(std::move(stats));
  }

  if (control_capture.has_value()) {
    obs::TraceRecorder::Instance().AddTrack("campaign control",
                                            control_capture->Take());
  }

  result.distinct_outcomes = oracle.distinct_outcomes();
  result.safety_totals = oracle.totals();
  result.collisions = oracle.collisions();
  result.non_finite_commands = oracle.non_finite_commands();
  result.safe_stops = oracle.safe_stops();
  result.merged = cover_map.merged();
  result.final_rows = cover_map.Rows(config_.unit_prefix);
  result.final_average = cov::Average(result.final_rows);
  result.total_seconds = Elapsed(t_start);
  return result;
}

std::string CampaignJson(const CampaignResult& result) {
  const bool timing = result.config.include_timing;
  std::ostringstream out;
  out << "{\"campaign\":{\"seed\":" << result.config.seed
      << ",\"population\":" << result.config.population
      << ",\"generations\":" << result.config.generations
      << ",\"unit_prefix\":" << support::JsonEscape(result.config.unit_prefix);
  if (timing) out << ",\"jobs\":" << result.config.jobs;
  out << "},\"generations\":[";
  for (std::size_t g = 0; g < result.generations.size(); ++g) {
    const GenerationStats& s = result.generations[g];
    if (g > 0) out << ",";
    out << "{\"generation\":" << s.generation << ",\"evaluated\":"
        << s.evaluated << ",\"kept\":" << s.kept << ",\"new_facts\":"
        << s.new_facts << ",\"distinct_outcomes\":" << s.distinct_outcomes
        << ",\"coverage\":" << CoverageRowsJson(s.rows)
        << ",\"average\":" << RowJson(s.average);
    if (timing) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ",\"seconds\":%.3f,\"candidates_per_sec\":%.2f",
                    s.seconds,
                    s.seconds > 0.0 ? s.evaluated / s.seconds : 0.0);
      out << buf;
    }
    out << "}";
  }
  out << "],\"corpus\":[";
  for (std::size_t i = 0; i < result.corpus.size(); ++i) {
    if (i > 0) out << ",";
    out << CandidateJson(result.corpus[i]);
  }
  out << "],\"oracle\":{\"distinct_outcomes\":" << result.distinct_outcomes
      << ",\"violations\":" << result.safety_totals.total
      << ",\"warnings\":" << result.safety_totals.warnings
      << ",\"criticals\":" << result.safety_totals.criticals
      << ",\"handled\":" << result.safety_totals.handled
      << ",\"by_monitor\":{";
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    if (m > 0) out << ",";
    out << support::JsonEscape(
               adpilot::MonitorName(static_cast<adpilot::MonitorId>(m)))
        << ":" << result.safety_totals.by_monitor[m];
  }
  out << "},\"collisions\":" << result.collisions
      << ",\"non_finite_commands\":" << result.non_finite_commands
      << ",\"safe_stops\":" << result.safe_stops
      << "},\"final_coverage\":" << CoverageRowsJson(result.final_rows)
      << ",\"final_average\":" << RowJson(result.final_average);
  if (timing) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",\"timing\":{\"jobs\":%d,\"total_seconds\":%.3f,"
                  "\"candidates_per_sec\":%.2f}",
                  result.config.jobs, result.total_seconds,
                  result.total_seconds > 0.0
                      ? result.evaluated_total / result.total_seconds
                      : 0.0);
    out << buf;
  }
  out << "}";
  return out.str();
}

}  // namespace certkit::campaign
