// certkit campaign: the safety oracle — scores a candidate run with the
// PR-2 runtime safety layer's evidence instead of structural coverage.
//
// Greybox corpus-keeping needs two keep signals: "adds new coverage" and
// "triggers a new kind of behavior". The oracle provides the second: it
// reduces a run to a discrete outcome signature (degradation state reached,
// which monitors fired, containment booleans) and remembers which
// signatures the campaign has already seen.
#ifndef CERTKIT_CAMPAIGN_ORACLE_H_
#define CERTKIT_CAMPAIGN_ORACLE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ad/pipeline.h"
#include "ad/safety/monitors.h"

namespace certkit::campaign {

// Deterministic per-run verdict. Only discrete, schedule-independent facts
// go in here — no wall-clock durations, no floating-point residue beyond
// the simulated clearance (which is itself deterministic).
struct OracleVerdict {
  adpilot::SafetySummary safety;
  adpilot::SafetyState final_state = adpilot::SafetyState::kNominal;
  bool reached_goal = false;
  bool collision = false;            // simulated clearance went <= 0
  bool non_finite_command = false;   // a command left the stack non-finite
  std::int64_t command_overrides = 0;
  std::int64_t ticks = 0;
};

// Reduces a finished pilot (plus its tick reports) to a verdict.
OracleVerdict Judge(const adpilot::ApolloPilot& pilot,
                    const std::vector<adpilot::TickReport>& reports);

// Discrete outcome signature of `verdict` (stable across runs/threads):
// final state, per-monitor fired bits, and containment booleans.
std::string OutcomeSignature(const OracleVerdict& verdict);

// Single-line JSON of `verdict` (stable key order).
std::string VerdictJson(const OracleVerdict& verdict);

// Campaign-wide oracle state: which outcome signatures have been seen and
// aggregate tallies for reporting.
class Oracle {
 public:
  // Records `verdict`; returns true when its signature is new to the
  // campaign (a corpus-keep signal).
  bool Observe(const OracleVerdict& verdict);

  std::int64_t distinct_outcomes() const {
    return static_cast<std::int64_t>(seen_.size());
  }
  const adpilot::SafetySummary& totals() const { return totals_; }
  std::int64_t collisions() const { return collisions_; }
  std::int64_t non_finite_commands() const { return non_finite_; }
  std::int64_t safe_stops() const { return safe_stops_; }

  // Checkpoint access: the signature set is the only non-scalar state.
  const std::set<std::string>& seen() const { return seen_; }

  // Reinstates a checkpointed oracle exactly as a prior Observe sequence
  // left it; a restored oracle and the original are indistinguishable.
  void Restore(std::set<std::string> seen, const adpilot::SafetySummary& totals,
               std::int64_t collisions, std::int64_t non_finite_commands,
               std::int64_t safe_stops) {
    seen_ = std::move(seen);
    totals_ = totals;
    collisions_ = collisions;
    non_finite_ = non_finite_commands;
    safe_stops_ = safe_stops;
  }

 private:
  std::set<std::string> seen_;
  adpilot::SafetySummary totals_;
  std::int64_t collisions_ = 0;
  std::int64_t non_finite_ = 0;
  std::int64_t safe_stops_ = 0;
};

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_ORACLE_H_
