// certkit campaign: deterministic drive replay with differential oracles.
//
// A replay artifact freezes one campaign finding to disk: the complete
// per-run input stream (scenario, fault plan, backend, detector variant,
// seeds — i.e. the Candidate), the oracle verdict it produced, and the
// bit-identity evidence (an FNV digest over every TickReport plus per-tick
// stream signatures). Because Evaluate() is a pure function of the
// candidate, the artifact alone re-executes the drive bit-identically on
// any machine with the same build — `certkit replay` gates on the digest
// and, when the gate fails, localizes the first divergent (tick, stream).
//
// The differential mode re-runs the candidate across every inference
// backend and with quantized-vs-fp32 inference, diffing each variant's
// signature stream against the reference arm. Divergences feed the
// delta-debugging minimizer (campaign/minimize.h), which shrinks the
// candidate to the smallest input that still reproduces them.
#ifndef CERTKIT_CAMPAIGN_REPLAY_H_
#define CERTKIT_CAMPAIGN_REPLAY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.h"
#include "support/json.h"

namespace certkit::campaign {

// Bump when the artifact layout changes; ParseReplayArtifact rejects
// schemas it does not understand rather than guessing.
inline constexpr int kReplayArtifactSchema = 1;

struct ReplayArtifact {
  int schema = kReplayArtifactSchema;
  Candidate candidate;
  OracleVerdict verdict;
  std::string outcome;  // OutcomeSignature(verdict), for quick triage
  std::uint64_t report_digest = 0;
  std::vector<adpilot::TickSignature> ticks;
};

// Fixed-width lowercase hex (16 digits) — u64 digests do not fit a JSON
// double, so artifacts carry them as strings.
std::string HexU64(std::uint64_t v);
bool ParseHexU64(std::string_view s, std::uint64_t* out);

// Serialization. ReplayArtifactJson is the inverse of ParseReplayArtifact:
// emit -> parse -> emit is byte-identical (round-trip tested).
std::string ReplayArtifactJson(const ReplayArtifact& artifact);
bool ParseScenarioConfig(const support::JsonValue& v,
                         adpilot::ScenarioConfig* out, std::string* error);
bool ParseFaultSpec(const support::JsonValue& v, adpilot::FaultSpec* out,
                    std::string* error);
bool ParseCandidate(const support::JsonValue& v, Candidate* out,
                    std::string* error);
bool ParseVerdict(const support::JsonValue& v, OracleVerdict* out,
                  std::string* error);
bool ParseReplayArtifact(std::string_view json, ReplayArtifact* out,
                         std::string* error);

// Packs a candidate's evaluation into an artifact.
ReplayArtifact MakeArtifact(const Candidate& candidate,
                            const EvalResult& eval);

// Writes `<dir>/finding_<id>.json` (creating `dir` if needed); returns the
// path written, or "" on IO failure. Called by CampaignRunner::Run for
// every corpus-kept candidate when CampaignConfig::artifact_dir is set.
std::string WriteFindingArtifact(const std::string& dir,
                                 const Candidate& candidate,
                                 const EvalResult& eval);

// --- replay execution ----------------------------------------------------

// First point where two signature streams disagree. `stream` names the
// earliest divergent field at that tick in dataflow order (frame ->
// detections -> tracked -> command -> state -> faults); "length" means one
// stream ended early, and tick then holds the shorter length.
struct ReplayDivergence {
  bool diverged = false;
  std::int64_t tick = -1;
  std::string stream;
};

ReplayDivergence DiffSignatures(const std::vector<adpilot::TickSignature>& a,
                                const std::vector<adpilot::TickSignature>& b);

struct ReplayOutcome {
  EvalResult eval;                  // the fresh re-execution
  std::uint64_t report_digest = 0;  // digest of the re-execution
  bool digest_matches = false;      // == artifact.report_digest
  bool verdict_matches = false;     // OutcomeSignature equality
  ReplayDivergence divergence;      // vs the artifact's recorded stream
};

// Re-executes the artifact's candidate and gates on bit identity.
ReplayOutcome ExecuteReplay(const ReplayArtifact& artifact);

// --- differential oracle -------------------------------------------------

// One arm of the differential: the reference candidate with backend and/or
// quantization overridden. Kept as a transform (not a baked candidate) so
// the minimizer can re-apply it to shrunken candidates.
struct VariantSpec {
  std::string name;  // "backend:open", "quantized", ...
  nn::Backend backend = nn::Backend::kCpuNaive;
  bool quantized = false;
};

// The variants `certkit replay --diff` runs against `reference`: every
// other inference backend, plus quantized inference on the reference's own
// backend (fp32 stays the reference arm).
std::vector<VariantSpec> DifferentialVariants(const Candidate& reference);
Candidate ApplyVariant(const Candidate& reference, const VariantSpec& spec);

struct DifferentialArm {
  VariantSpec spec;
  std::uint64_t report_digest = 0;
  ReplayDivergence divergence;   // vs the reference arm's signatures
  bool outcome_matches = true;   // OutcomeSignature equality vs reference
};

struct DifferentialReport {
  std::uint64_t reference_digest = 0;
  std::string reference_outcome;
  std::vector<DifferentialArm> arms;
  int divergent = 0;  // arms whose stream or outcome diverged
};

// Evaluates `candidate` once as the reference, then every variant arm,
// diffing signature streams and oracle outcomes.
DifferentialReport RunDifferential(const Candidate& candidate);
std::string DifferentialReportJson(const DifferentialReport& report);

// True when `spec` applied to `candidate` still diverges from it — the
// minimizer's divergence-preserving predicate.
bool VariantDiverges(const Candidate& candidate, const VariantSpec& spec);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_REPLAY_H_
