#include "campaign/candidate.h"

#include <sstream>

namespace certkit::campaign {

const char* BackendTag(nn::Backend backend) {
  switch (backend) {
    case nn::Backend::kClosedSim:
      return "closed";
    case nn::Backend::kOpenSim:
      return "open";
    case nn::Backend::kCpuNaive:
      return "cpu";
  }
  return "?";
}

std::string CandidateJson(const Candidate& candidate) {
  std::ostringstream out;
  out << "{\"id\":" << candidate.id << ",\"parent\":" << candidate.parent_id
      << ",\"generation\":" << candidate.generation
      << ",\"scenario\":" << adpilot::ScenarioConfigJson(candidate.scenario)
      << ",\"backend\":\"" << BackendTag(candidate.backend) << "\""
      << ",\"detector_input\":[" << candidate.detector_input_h << ","
      << candidate.detector_input_w << "]"
      << ",\"ticks\":" << candidate.ticks << ",\"fault_seed\":"
      << candidate.fault_seed << ",\"faults\":[";
  for (std::size_t i = 0; i < candidate.faults.size(); ++i) {
    const adpilot::FaultSpec& f = candidate.faults[i];
    if (i > 0) out << ",";
    out << "{\"kind\":\"" << adpilot::FaultKindName(f.kind)
        << "\",\"onset\":" << f.onset_tick << ",\"duration\":"
        << f.duration_ticks << ",\"magnitude\":" << f.magnitude << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace certkit::campaign
