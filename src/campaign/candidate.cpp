#include "campaign/candidate.h"

#include <sstream>

#include "support/json.h"

namespace certkit::campaign {

const char* BackendTag(nn::Backend backend) {
  switch (backend) {
    case nn::Backend::kClosedSim:
      return "closed";
    case nn::Backend::kOpenSim:
      return "open";
    case nn::Backend::kCpuNaive:
      return "cpu";
  }
  return "?";
}

bool BackendFromTag(std::string_view tag, nn::Backend* out) {
  for (const nn::Backend b : {nn::Backend::kClosedSim, nn::Backend::kOpenSim,
                              nn::Backend::kCpuNaive}) {
    if (tag == BackendTag(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

std::string CandidateJson(const Candidate& candidate) {
  using support::JsonEscape;
  using support::JsonNumber;
  std::ostringstream out;
  out << "{\"id\":" << candidate.id << ",\"parent\":" << candidate.parent_id
      << ",\"generation\":" << candidate.generation
      << ",\"scenario\":" << adpilot::ScenarioConfigJson(candidate.scenario)
      << ",\"backend\":" << JsonEscape(BackendTag(candidate.backend))
      << ",\"quantized\":" << (candidate.quantized ? "true" : "false")
      << ",\"detector_input\":[" << candidate.detector_input_h << ","
      << candidate.detector_input_w << "]"
      << ",\"ticks\":" << candidate.ticks << ",\"fault_seed\":"
      << candidate.fault_seed << ",\"faults\":[";
  for (std::size_t i = 0; i < candidate.faults.size(); ++i) {
    const adpilot::FaultSpec& f = candidate.faults[i];
    if (i > 0) out << ",";
    // Magnitude is the one mutated double here; shortest round-trip form so
    // the deserialized fault plan drives a bit-identical injector stream.
    out << "{\"kind\":" << JsonEscape(adpilot::FaultKindName(f.kind))
        << ",\"onset\":" << f.onset_tick << ",\"duration\":"
        << f.duration_ticks << ",\"magnitude\":" << JsonNumber(f.magnitude)
        << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace certkit::campaign
