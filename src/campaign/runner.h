// certkit campaign: the coverage-guided campaign loop.
//
// One generation = breed a batch of candidates (serial, seeded), evaluate
// the batch on the thread pool (each worker runs a full ApolloPilot under a
// cov::ThreadCapture), then merge covers and oracle verdicts serially in
// candidate-index order. Candidates that add coverage facts or produce a
// previously unseen oracle outcome join the corpus and become mutation
// parents.
//
// Determinism contract (mirrors the PR-1 driver): breeding and merging are
// serial and seeded; evaluation is a pure function of the candidate; and
// ParallelMap puts result i in slot i — so a fixed --seed produces
// byte-identical campaign JSON for any --jobs count. Wall-clock throughput
// is reported only behind include_timing, which callers leave off when they
// compare outputs.
#ifndef CERTKIT_CAMPAIGN_RUNNER_H_
#define CERTKIT_CAMPAIGN_RUNNER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ad/replay_tap.h"
#include "ad/safety/monitors.h"
#include "campaign/candidate.h"
#include "campaign/coverage_map.h"
#include "campaign/mutation.h"
#include "campaign/oracle.h"
#include "coverage/coverage.h"
#include "obs/trace.h"

namespace certkit::campaign {

class CorpusStore;

struct CampaignConfig {
  std::uint64_t seed = 1;
  int jobs = 1;          // fleet width; <= 0 selects hardware concurrency
  int population = 12;   // candidates bred per generation
  int generations = 4;
  int ticks = 25;        // run length of seed-pool candidates
  std::string unit_prefix = "yolo/";  // units reported in the JSON
  bool include_timing = false;  // adds wall-clock fields (nondeterministic)
  // Greybox-style seeding: pre-merge the fixed Figure-5 scenario set's
  // cover before generation 0, so the campaign explicitly hunts coverage
  // *beyond* the existing tests and its final numbers dominate the baseline.
  bool seed_with_fig5 = false;
  // When non-empty, every corpus-kept candidate is exported to
  // `<artifact_dir>/finding_<id>.json` — a versioned replay artifact
  // (campaign/replay.h) that re-executes the finding bit-identically via
  // `certkit replay`. The directory is created on first write.
  std::string artifact_dir;
  // When non-empty, the campaign persists: a framed checkpoint
  // (`<dir>/checkpoint.ckpt`, campaign/checkpoint.h) is written after every
  // merged generation, kept candidates land in the content-addressed store
  // under `<dir>/corpus`, and a later run with the same flags resumes
  // bit-identically where the previous one stopped.
  std::string checkpoint_dir;
  // Sharded mode (`--shard i/N`): this invocation breeds the full batch
  // serially (identical across shards), evaluates only candidates with
  // index % shard_count == shard_index, and writes a shard delta into the
  // checkpoint dir for `certkit merge-corpus` to fold. shard_count == 1
  // with the flag absent is the normal unsharded loop.
  int shard_index = 0;
  int shard_count = 1;
  // Stop (checkpoint intact) after merging this many generations in this
  // invocation; 0 = run to completion. This is how a campaign is "killed"
  // deterministically in tests — resuming continues bit-identically.
  int stop_after_generations = 0;
};

// A candidate's evaluation: its captured cover, oracle verdict, replay
// signatures, and (when tracing is enabled) the spans its pilot run fired —
// captured thread-locally like the cover, so they are a pure function of
// the candidate.
struct EvalResult {
  cov::CoverSet cover;
  OracleVerdict verdict;
  std::vector<obs::SpanEvent> spans;
  // Replay evidence: the FNV digest over every TickReport (the bit-identity
  // gate of `certkit replay`) and the per-tick stream signatures that
  // localize a divergence to (tick, stream).
  std::uint64_t report_digest = 0;
  std::vector<adpilot::TickSignature> tick_signatures;
};

struct GenerationStats {
  int generation = 0;
  int evaluated = 0;
  int kept = 0;                       // candidates that joined the corpus
  std::int64_t new_facts = 0;         // probe facts first seen this gen
  std::int64_t distinct_outcomes = 0; // oracle signatures seen so far
  std::vector<cov::CoverageRow> rows; // cumulative, after this generation
  cov::CoverageRow average;
  double seconds = 0.0;               // wall clock (include_timing only)
};

// The campaign's complete serial state between generations. Everything the
// loop reads or mutates outside a candidate evaluation lives here, so a
// state round-tripped through the checkpoint serializer (checkpoint.h) and
// a state that never left memory drive byte-identical continuations.
struct CampaignState {
  int next_generation = 0;
  SchedulerState scheduler;
  std::array<std::uint64_t, 4> select_rng{};
  std::vector<Candidate> corpus;
  Oracle oracle;
  CoverageMap cover;
  std::vector<GenerationStats> generations;
  std::int64_t evaluated_total = 0;
};

// One shard's evaluations of its candidate slice for one generation.
// Deltas omit tick signatures (artifact export is an unsharded feature), so
// they stay small enough to ship between machines.
struct ShardEval {
  int index = 0;  // candidate index within the bred batch
  std::uint64_t candidate_hash = 0;
  OracleVerdict verdict;
  std::string outcome;
  std::uint64_t report_digest = 0;
  cov::CoverSet cover;
};

struct ShardDelta {
  int generation = 0;
  int shard_index = 0;
  int shard_count = 1;
  std::vector<ShardEval> evals;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<GenerationStats> generations;
  std::vector<Candidate> corpus;
  std::int64_t evaluated_total = 0;
  std::int64_t distinct_outcomes = 0;
  adpilot::SafetySummary safety_totals;
  std::int64_t collisions = 0;
  std::int64_t non_finite_commands = 0;
  std::int64_t safe_stops = 0;
  cov::CoverSet merged;  // final campaign cover (tests diff against this)
  std::vector<cov::CoverageRow> final_rows;
  cov::CoverageRow final_average;
  double total_seconds = 0.0;
  // False when stop_after_generations halted the run before the configured
  // generation count; the checkpoint holds everything needed to continue.
  bool complete = true;
  int next_generation = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(const CampaignConfig& config);

  CampaignResult Run();

  // Resume-aware loop: continues from `state` (FreshState() for a new
  // campaign, or a checkpoint-restored state), honoring checkpoint_dir and
  // stop_after_generations. Run() is RunFrom(FreshState()). `state` is left
  // at the post-run position so callers can checkpoint or continue it.
  CampaignResult RunFrom(CampaignState* state);

  // The generation-0 state Run() starts from: scheduler and selection RNG
  // seeded from config, cover optionally pre-merged with the Figure-5
  // baseline. Pure function of the config.
  static CampaignState FreshState(const CampaignConfig& config);

  // Breeds the next generation's batch from `state` (serial, seeded) and
  // advances the scheduler/selection streams in place. Every shard of a
  // generation breeds the identical batch — that is what makes the shard
  // slices disjoint and the merge exact.
  static std::vector<Candidate> Breed(const CampaignConfig& config,
                                      CampaignState* state);

  // Serially merges one generation's evaluations in candidate order:
  // coverage facts, oracle outcomes, corpus keeps (persisted to `store`
  // when enabled), artifact export, metrics, and the generation's stats
  // row. Consumes evals' spans. Does not advance next_generation.
  static void MergeGeneration(const CampaignConfig& config,
                              const std::vector<Candidate>& batch,
                              std::vector<EvalResult>* evals,
                              CampaignState* state, const CorpusStore* store);

  // Renders the final CampaignResult for `state` (no evaluation).
  static CampaignResult Finalize(const CampaignConfig& config,
                                 const CampaignState& state);

  // Sharded mode: breeds the full batch, evaluates only this shard's slice
  // (index % shard_count == shard_index) in parallel, and returns the
  // delta. `state` is advanced past breeding but NOT past the generation —
  // merging deltas (below, or `certkit merge-corpus`) does that.
  ShardDelta RunShardGeneration(CampaignState* state);

  // Folds one complete generation of shard deltas into `state`, exactly as
  // the unsharded serial merge would have: validates the set (one delta per
  // shard, hashes matching the re-bred batch), merges in candidate-index
  // order, advances next_generation. Order of `deltas` does not matter.
  bool MergeShardDeltas(const std::vector<ShardDelta>& deltas,
                        CampaignState* state, std::string* error);

  // Evaluates one candidate end-to-end: builds the pilot, installs the fault
  // plan, runs `candidate.ticks` cycles under a ThreadCapture, and returns
  // the captured cover plus the oracle verdict. Pure function of the
  // candidate; safe to call from pool workers (accelerator-simulating
  // backends are internally serialized — the gpusim device pool is shared).
  static EvalResult Evaluate(const Candidate& candidate);

 private:
  CampaignConfig config_;
};

// Coverage probe declarations happen lazily, on each instrumented unit's
// first execution in the process. A fresh process that merges shard deltas
// or finalizes a resumed-complete campaign without evaluating anything
// would rate covers against undeclared units and report wrong ratios. This
// runs one fixed throwaway candidate (once per process) so every unit the
// campaign can touch has declared its probes; results are discarded.
void EnsureCoverageDeclarations();

// Renders `result` as the campaign JSON document (schema in DESIGN.md).
std::string CampaignJson(const CampaignResult& result);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_RUNNER_H_
