// certkit campaign: the coverage-guided campaign loop.
//
// One generation = breed a batch of candidates (serial, seeded), evaluate
// the batch on the thread pool (each worker runs a full ApolloPilot under a
// cov::ThreadCapture), then merge covers and oracle verdicts serially in
// candidate-index order. Candidates that add coverage facts or produce a
// previously unseen oracle outcome join the corpus and become mutation
// parents.
//
// Determinism contract (mirrors the PR-1 driver): breeding and merging are
// serial and seeded; evaluation is a pure function of the candidate; and
// ParallelMap puts result i in slot i — so a fixed --seed produces
// byte-identical campaign JSON for any --jobs count. Wall-clock throughput
// is reported only behind include_timing, which callers leave off when they
// compare outputs.
#ifndef CERTKIT_CAMPAIGN_RUNNER_H_
#define CERTKIT_CAMPAIGN_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ad/replay_tap.h"
#include "ad/safety/monitors.h"
#include "campaign/candidate.h"
#include "campaign/coverage_map.h"
#include "campaign/oracle.h"
#include "coverage/coverage.h"
#include "obs/trace.h"

namespace certkit::campaign {

struct CampaignConfig {
  std::uint64_t seed = 1;
  int jobs = 1;          // fleet width; <= 0 selects hardware concurrency
  int population = 12;   // candidates bred per generation
  int generations = 4;
  int ticks = 25;        // run length of seed-pool candidates
  std::string unit_prefix = "yolo/";  // units reported in the JSON
  bool include_timing = false;  // adds wall-clock fields (nondeterministic)
  // Greybox-style seeding: pre-merge the fixed Figure-5 scenario set's
  // cover before generation 0, so the campaign explicitly hunts coverage
  // *beyond* the existing tests and its final numbers dominate the baseline.
  bool seed_with_fig5 = false;
  // When non-empty, every corpus-kept candidate is exported to
  // `<artifact_dir>/finding_<id>.json` — a versioned replay artifact
  // (campaign/replay.h) that re-executes the finding bit-identically via
  // `certkit replay`. The directory is created on first write.
  std::string artifact_dir;
};

// A candidate's evaluation: its captured cover, oracle verdict, replay
// signatures, and (when tracing is enabled) the spans its pilot run fired —
// captured thread-locally like the cover, so they are a pure function of
// the candidate.
struct EvalResult {
  cov::CoverSet cover;
  OracleVerdict verdict;
  std::vector<obs::SpanEvent> spans;
  // Replay evidence: the FNV digest over every TickReport (the bit-identity
  // gate of `certkit replay`) and the per-tick stream signatures that
  // localize a divergence to (tick, stream).
  std::uint64_t report_digest = 0;
  std::vector<adpilot::TickSignature> tick_signatures;
};

struct GenerationStats {
  int generation = 0;
  int evaluated = 0;
  int kept = 0;                       // candidates that joined the corpus
  std::int64_t new_facts = 0;         // probe facts first seen this gen
  std::int64_t distinct_outcomes = 0; // oracle signatures seen so far
  std::vector<cov::CoverageRow> rows; // cumulative, after this generation
  cov::CoverageRow average;
  double seconds = 0.0;               // wall clock (include_timing only)
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<GenerationStats> generations;
  std::vector<Candidate> corpus;
  std::int64_t evaluated_total = 0;
  std::int64_t distinct_outcomes = 0;
  adpilot::SafetySummary safety_totals;
  std::int64_t collisions = 0;
  std::int64_t non_finite_commands = 0;
  std::int64_t safe_stops = 0;
  cov::CoverSet merged;  // final campaign cover (tests diff against this)
  std::vector<cov::CoverageRow> final_rows;
  cov::CoverageRow final_average;
  double total_seconds = 0.0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(const CampaignConfig& config);

  CampaignResult Run();

  // Evaluates one candidate end-to-end: builds the pilot, installs the fault
  // plan, runs `candidate.ticks` cycles under a ThreadCapture, and returns
  // the captured cover plus the oracle verdict. Pure function of the
  // candidate; safe to call from pool workers (accelerator-simulating
  // backends are internally serialized — the gpusim device pool is shared).
  static EvalResult Evaluate(const Candidate& candidate);

 private:
  CampaignConfig config_;
};

// Renders `result` as the campaign JSON document (schema in DESIGN.md).
std::string CampaignJson(const CampaignResult& result);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_RUNNER_H_
