#include "campaign/replay.h"

#include <charconv>
#include <sstream>

#include "ad/safety/degradation.h"
#include "support/io.h"

namespace certkit::campaign {

namespace {

using support::JsonEscape;
using support::JsonNumber;
using support::JsonValue;

// --- typed field extraction ----------------------------------------------
// Every getter fails loudly with the field name: a replay artifact that
// does not parse back exactly is a finding about the serializer, not
// something to limp past.

bool FailField(const std::string& key, const char* what, std::string* error) {
  *error = "field '" + key + "': " + what;
  return false;
}

// 64-bit integers ride in the raw number token (JsonValue::literal) —
// the double `number` field loses precision above 2^53, and seeds are
// full-width u64. The implementations moved to support/json.h when the
// checkpoint and corpus-store formats started needing them too; these
// forwards keep the local call sites unchanged.
bool GetI64(const JsonValue& obj, const std::string& key, std::int64_t* out,
            std::string* error) {
  return support::JsonGetI64(obj, key, out, error);
}

bool GetU64(const JsonValue& obj, const std::string& key, std::uint64_t* out,
            std::string* error) {
  return support::JsonGetU64(obj, key, out, error);
}

bool GetInt(const JsonValue& obj, const std::string& key, int* out,
            std::string* error) {
  return support::JsonGetInt(obj, key, out, error);
}

bool GetDouble(const JsonValue& obj, const std::string& key, double* out,
               std::string* error) {
  return support::JsonGetDouble(obj, key, out, error);
}

bool GetBool(const JsonValue& obj, const std::string& key, bool* out,
             std::string* error) {
  return support::JsonGetBool(obj, key, out, error);
}

bool GetString(const JsonValue& obj, const std::string& key, std::string* out,
               std::string* error) {
  return support::JsonGetString(obj, key, out, error);
}

bool GetHexU64(const JsonValue& obj, const std::string& key,
               std::uint64_t* out, std::string* error) {
  std::string hex;
  if (!GetString(obj, key, &hex, error)) return false;
  if (!ParseHexU64(hex, out)) {
    return FailField(key, "not a 16-digit hex digest", error);
  }
  return true;
}

bool SafetyStateFromName(std::string_view name, adpilot::SafetyState* out) {
  for (const adpilot::SafetyState s :
       {adpilot::SafetyState::kNominal, adpilot::SafetyState::kLimpHome,
        adpilot::SafetyState::kSafeStop}) {
    if (name == adpilot::SafetyStateName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::string TickSignatureJson(const adpilot::TickSignature& sig) {
  std::ostringstream out;
  out << "{\"tick\":" << sig.tick << ",\"frame\":" << JsonEscape(HexU64(
             sig.frame))
      << ",\"detections\":" << JsonEscape(HexU64(sig.detections))
      << ",\"tracked\":" << JsonEscape(HexU64(sig.tracked))
      << ",\"command\":" << JsonEscape(HexU64(sig.command))
      << ",\"state\":" << JsonEscape(HexU64(sig.state))
      << ",\"faults_injected\":" << sig.faults_injected << "}";
  return out.str();
}

bool ParseTickSignature(const JsonValue& v, adpilot::TickSignature* out,
                        std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "tick signature is not an object";
    return false;
  }
  return GetI64(v, "tick", &out->tick, error) &&
         GetHexU64(v, "frame", &out->frame, error) &&
         GetHexU64(v, "detections", &out->detections, error) &&
         GetHexU64(v, "tracked", &out->tracked, error) &&
         GetHexU64(v, "command", &out->command, error) &&
         GetHexU64(v, "state", &out->state, error) &&
         GetI64(v, "faults_injected", &out->faults_injected, error);
}

std::string DivergenceJson(const ReplayDivergence& d) {
  std::ostringstream out;
  out << "{\"diverged\":" << (d.diverged ? "true" : "false");
  if (d.diverged) {
    out << ",\"tick\":" << d.tick << ",\"stream\":" << JsonEscape(d.stream);
  }
  out << "}";
  return out.str();
}

}  // namespace

std::string HexU64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool ParseHexU64(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

std::string ReplayArtifactJson(const ReplayArtifact& artifact) {
  std::ostringstream out;
  out << "{\"schema\":" << artifact.schema
      << ",\"candidate\":" << CandidateJson(artifact.candidate)
      << ",\"verdict\":" << VerdictJson(artifact.verdict)
      << ",\"outcome\":" << JsonEscape(artifact.outcome)
      << ",\"report_digest\":" << JsonEscape(HexU64(artifact.report_digest))
      << ",\"ticks\":[";
  for (std::size_t i = 0; i < artifact.ticks.size(); ++i) {
    if (i > 0) out << ",";
    out << TickSignatureJson(artifact.ticks[i]);
  }
  out << "]}";
  return out.str();
}

bool ParseScenarioConfig(const JsonValue& v, adpilot::ScenarioConfig* out,
                         std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "scenario is not an object";
    return false;
  }
  return GetInt(v, "num_vehicles", &out->num_vehicles, error) &&
         GetInt(v, "num_pedestrians", &out->num_pedestrians, error) &&
         GetDouble(v, "road_length", &out->road_length, error) &&
         GetDouble(v, "lane_width", &out->lane_width, error) &&
         GetInt(v, "num_lanes", &out->num_lanes, error) &&
         GetDouble(v, "vehicle_speed_min", &out->vehicle_speed_min, error) &&
         GetDouble(v, "vehicle_speed_max", &out->vehicle_speed_max, error) &&
         GetU64(v, "seed", &out->seed, error);
}

bool ParseFaultSpec(const JsonValue& v, adpilot::FaultSpec* out,
                    std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "fault is not an object";
    return false;
  }
  std::string kind;
  if (!GetString(v, "kind", &kind, error)) return false;
  if (!adpilot::FaultKindFromName(kind, &out->kind)) {
    return FailField("kind", "unknown fault kind", error);
  }
  return GetI64(v, "onset", &out->onset_tick, error) &&
         GetI64(v, "duration", &out->duration_ticks, error) &&
         GetDouble(v, "magnitude", &out->magnitude, error);
}

bool ParseCandidate(const JsonValue& v, Candidate* out, std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "candidate is not an object";
    return false;
  }
  if (!GetI64(v, "id", &out->id, error) ||
      !GetI64(v, "parent", &out->parent_id, error) ||
      !GetInt(v, "generation", &out->generation, error)) {
    return false;
  }
  const JsonValue* scenario = v.Find("scenario");
  if (scenario == nullptr) return FailField("scenario", "missing", error);
  if (!ParseScenarioConfig(*scenario, &out->scenario, error)) return false;
  std::string backend;
  if (!GetString(v, "backend", &backend, error)) return false;
  if (!BackendFromTag(backend, &out->backend)) {
    return FailField("backend", "unknown backend tag", error);
  }
  if (!GetBool(v, "quantized", &out->quantized, error)) return false;
  const JsonValue* input = v.Find("detector_input");
  if (input == nullptr || input->kind != JsonValue::Kind::kArray ||
      input->items.size() != 2 ||
      input->items[0].kind != JsonValue::Kind::kNumber ||
      input->items[1].kind != JsonValue::Kind::kNumber) {
    return FailField("detector_input", "not a [h,w] pair", error);
  }
  out->detector_input_h = static_cast<int>(input->items[0].number);
  out->detector_input_w = static_cast<int>(input->items[1].number);
  if (!GetInt(v, "ticks", &out->ticks, error) ||
      !GetU64(v, "fault_seed", &out->fault_seed, error)) {
    return false;
  }
  const JsonValue* faults = v.Find("faults");
  if (faults == nullptr || faults->kind != JsonValue::Kind::kArray) {
    return FailField("faults", "missing or not an array", error);
  }
  out->faults.clear();
  out->faults.reserve(faults->items.size());
  for (const JsonValue& f : faults->items) {
    adpilot::FaultSpec spec;
    if (!ParseFaultSpec(f, &spec, error)) return false;
    out->faults.push_back(spec);
  }
  return true;
}

bool ParseVerdict(const JsonValue& v, OracleVerdict* out,
                  std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "verdict is not an object";
    return false;
  }
  std::string state;
  if (!GetString(v, "final_state", &state, error)) return false;
  if (!SafetyStateFromName(state, &out->final_state)) {
    return FailField("final_state", "unknown safety state", error);
  }
  if (!GetI64(v, "violations", &out->safety.total, error) ||
      !GetI64(v, "warnings", &out->safety.warnings, error) ||
      !GetI64(v, "criticals", &out->safety.criticals, error) ||
      !GetI64(v, "handled", &out->safety.handled, error)) {
    return false;
  }
  const JsonValue* monitors = v.Find("by_monitor");
  if (monitors == nullptr || monitors->kind != JsonValue::Kind::kObject) {
    return FailField("by_monitor", "missing or not an object", error);
  }
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    const char* name = adpilot::MonitorName(static_cast<adpilot::MonitorId>(m));
    if (!GetI64(*monitors, name, &out->safety.by_monitor[m], error)) {
      return false;
    }
  }
  return GetBool(v, "collision", &out->collision, error) &&
         GetBool(v, "non_finite_command", &out->non_finite_command, error) &&
         GetBool(v, "reached_goal", &out->reached_goal, error) &&
         GetI64(v, "command_overrides", &out->command_overrides, error) &&
         GetI64(v, "ticks", &out->ticks, error);
}

bool ParseReplayArtifact(std::string_view json, ReplayArtifact* out,
                         std::string* error) {
  JsonValue root;
  if (!support::ParseJson(json, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "artifact is not an object";
    return false;
  }
  if (!GetInt(root, "schema", &out->schema, error)) return false;
  if (out->schema != kReplayArtifactSchema) {
    *error = "unsupported artifact schema " + std::to_string(out->schema);
    return false;
  }
  const JsonValue* candidate = root.Find("candidate");
  if (candidate == nullptr) return FailField("candidate", "missing", error);
  if (!ParseCandidate(*candidate, &out->candidate, error)) return false;
  const JsonValue* verdict = root.Find("verdict");
  if (verdict == nullptr) return FailField("verdict", "missing", error);
  if (!ParseVerdict(*verdict, &out->verdict, error)) return false;
  if (!GetString(root, "outcome", &out->outcome, error) ||
      !GetHexU64(root, "report_digest", &out->report_digest, error)) {
    return false;
  }
  const JsonValue* ticks = root.Find("ticks");
  if (ticks == nullptr || ticks->kind != JsonValue::Kind::kArray) {
    return FailField("ticks", "missing or not an array", error);
  }
  out->ticks.clear();
  out->ticks.reserve(ticks->items.size());
  for (const JsonValue& t : ticks->items) {
    adpilot::TickSignature sig;
    if (!ParseTickSignature(t, &sig, error)) return false;
    out->ticks.push_back(sig);
  }
  return true;
}

ReplayArtifact MakeArtifact(const Candidate& candidate,
                            const EvalResult& eval) {
  ReplayArtifact artifact;
  artifact.candidate = candidate;
  artifact.verdict = eval.verdict;
  artifact.outcome = OutcomeSignature(eval.verdict);
  artifact.report_digest = eval.report_digest;
  artifact.ticks = eval.tick_signatures;
  return artifact;
}

std::string WriteFindingArtifact(const std::string& dir,
                                 const Candidate& candidate,
                                 const EvalResult& eval) {
  const std::string path =
      dir + "/finding_" + std::to_string(candidate.id) + ".json";
  const support::Status status =
      support::WriteFile(path, ReplayArtifactJson(MakeArtifact(candidate,
                                                               eval)) + "\n");
  return status.ok() ? path : std::string();
}

ReplayDivergence DiffSignatures(const std::vector<adpilot::TickSignature>& a,
                                const std::vector<adpilot::TickSignature>& b) {
  ReplayDivergence d;
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    // Dataflow order: report the most upstream divergent stream, because
    // everything after it diverges as a consequence.
    const char* stream = nullptr;
    if (a[i].frame != b[i].frame) {
      stream = "frame";
    } else if (a[i].detections != b[i].detections) {
      stream = "detections";
    } else if (a[i].tracked != b[i].tracked) {
      stream = "tracked";
    } else if (a[i].command != b[i].command) {
      stream = "command";
    } else if (a[i].state != b[i].state) {
      stream = "state";
    } else if (a[i].faults_injected != b[i].faults_injected) {
      stream = "faults";
    }
    if (stream != nullptr) {
      d.diverged = true;
      d.tick = a[i].tick;
      d.stream = stream;
      return d;
    }
  }
  if (a.size() != b.size()) {
    d.diverged = true;
    d.tick = static_cast<std::int64_t>(common);
    d.stream = "length";
  }
  return d;
}

ReplayOutcome ExecuteReplay(const ReplayArtifact& artifact) {
  ReplayOutcome out;
  out.eval = CampaignRunner::Evaluate(artifact.candidate);
  out.report_digest = out.eval.report_digest;
  out.digest_matches = out.report_digest == artifact.report_digest;
  out.verdict_matches =
      OutcomeSignature(out.eval.verdict) == artifact.outcome;
  out.divergence = DiffSignatures(artifact.ticks, out.eval.tick_signatures);
  return out;
}

std::vector<VariantSpec> DifferentialVariants(const Candidate& reference) {
  std::vector<VariantSpec> variants;
  for (const nn::Backend b : {nn::Backend::kClosedSim, nn::Backend::kOpenSim,
                              nn::Backend::kCpuNaive}) {
    if (b == reference.backend) continue;
    VariantSpec spec;
    spec.name = std::string("backend:") + BackendTag(b);
    spec.backend = b;
    spec.quantized = reference.quantized;
    variants.push_back(spec);
  }
  // Quantized-vs-fp32 on the reference's own backend. When the reference is
  // itself quantized the fp32 arm is the diff point, and vice versa.
  VariantSpec quant;
  quant.name = reference.quantized ? "fp32" : "quantized";
  quant.backend = reference.backend;
  quant.quantized = !reference.quantized;
  variants.push_back(quant);
  return variants;
}

Candidate ApplyVariant(const Candidate& reference, const VariantSpec& spec) {
  Candidate variant = reference;
  variant.backend = spec.backend;
  variant.quantized = spec.quantized;
  return variant;
}

DifferentialReport RunDifferential(const Candidate& candidate) {
  DifferentialReport report;
  const EvalResult reference = CampaignRunner::Evaluate(candidate);
  report.reference_digest = reference.report_digest;
  report.reference_outcome = OutcomeSignature(reference.verdict);
  for (const VariantSpec& spec : DifferentialVariants(candidate)) {
    DifferentialArm arm;
    arm.spec = spec;
    const EvalResult eval =
        CampaignRunner::Evaluate(ApplyVariant(candidate, spec));
    arm.report_digest = eval.report_digest;
    arm.divergence =
        DiffSignatures(reference.tick_signatures, eval.tick_signatures);
    arm.outcome_matches =
        OutcomeSignature(eval.verdict) == report.reference_outcome;
    if (arm.divergence.diverged || !arm.outcome_matches) ++report.divergent;
    report.arms.push_back(std::move(arm));
  }
  return report;
}

std::string DifferentialReportJson(const DifferentialReport& report) {
  std::ostringstream out;
  out << "{\"reference\":{\"digest\":"
      << JsonEscape(HexU64(report.reference_digest))
      << ",\"outcome\":" << JsonEscape(report.reference_outcome)
      << "},\"arms\":[";
  for (std::size_t i = 0; i < report.arms.size(); ++i) {
    const DifferentialArm& arm = report.arms[i];
    if (i > 0) out << ",";
    out << "{\"variant\":" << JsonEscape(arm.spec.name)
        << ",\"digest\":" << JsonEscape(HexU64(arm.report_digest))
        << ",\"divergence\":" << DivergenceJson(arm.divergence)
        << ",\"outcome_matches\":"
        << (arm.outcome_matches ? "true" : "false") << "}";
  }
  out << "],\"divergent\":" << report.divergent << "}";
  return out.str();
}

bool VariantDiverges(const Candidate& candidate, const VariantSpec& spec) {
  const EvalResult reference = CampaignRunner::Evaluate(candidate);
  const EvalResult variant =
      CampaignRunner::Evaluate(ApplyVariant(candidate, spec));
  return DiffSignatures(reference.tick_signatures, variant.tick_signatures)
             .diverged ||
         OutcomeSignature(reference.verdict) !=
             OutcomeSignature(variant.verdict);
}

}  // namespace certkit::campaign
