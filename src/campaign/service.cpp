#include "campaign/service.h"

#include <exception>
#include <filesystem>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "campaign/checkpoint.h"
#include "campaign/corpus_store.h"
#include "campaign/replay.h"
#include "coverage/coverage.h"
#include "driver/analysis_driver.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/json.h"

namespace certkit::campaign {

namespace fs = std::filesystem;

using support::JsonValue;

namespace {

bool ValidRequestId(const std::string& id) {
  if (id.empty()) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool RangeInt(const JsonValue& obj, const std::string& key, int fallback,
              int min, int max, int* out, std::string* error) {
  if (obj.Find(key) == nullptr) {
    *out = fallback;
    return true;
  }
  if (!support::JsonGetInt(obj, key, out, error)) return false;
  if (*out < min || *out > max) {
    *error = "field '" + key + "': " + std::to_string(*out) +
             " out of range [" + std::to_string(min) + ", " +
             std::to_string(max) + "]";
    return false;
  }
  return true;
}

bool ParseOneRequest(const JsonValue& v, ServiceRequest* out,
                     std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "request is not an object";
    return false;
  }
  if (!support::JsonGetString(v, "id", &out->id, error)) return false;
  if (!ValidRequestId(out->id)) {
    *error = "field 'id': '" + out->id +
             "' must match [A-Za-z0-9_.-]+ and be non-empty";
    return false;
  }
  if (!support::JsonGetString(v, "kind", &out->kind, error)) return false;
  if (out->kind == "campaign") {
    std::uint64_t seed = 1;
    if (v.Find("seed") != nullptr &&
        !support::JsonGetU64(v, "seed", &seed, error)) {
      return false;
    }
    out->campaign.seed = seed;
    // Requests always run serially inside the process-wide service pool.
    out->campaign.jobs = 1;
    out->campaign.include_timing = false;
    if (!RangeInt(v, "population", 4, 1, kServeMaxPopulation,
                  &out->campaign.population, error) ||
        !RangeInt(v, "generations", 1, 1, kServeMaxGenerations,
                  &out->campaign.generations, error) ||
        !RangeInt(v, "ticks", 10, 1, kServeMaxTicks, &out->campaign.ticks,
                  error)) {
      return false;
    }
    return true;
  }
  if (out->kind == "analyze") {
    if (!support::JsonGetString(v, "dir", &out->dir, error)) return false;
    if (out->dir.empty()) {
      *error = "field 'dir': must be a non-empty source directory";
      return false;
    }
    return true;
  }
  // Control kinds carry no payload beyond the id.
  if (out->kind == "stats" || out->kind == "shutdown") return true;
  *error = "field 'kind': '" + out->kind +
           "' is not a known request kind (campaign, analyze, stats, "
           "shutdown)";
  return false;
}

bool AppendRequest(const JsonValue& v, std::vector<ServiceRequest>* out,
                   std::set<std::string>* ids, std::string* error) {
  ServiceRequest request;
  if (!ParseOneRequest(v, &request, error)) {
    *error = "request " + std::to_string(out->size() + 1) + ": " + *error;
    return false;
  }
  if (!ids->insert(request.id).second) {
    *error = "request " + std::to_string(out->size() + 1) + ": duplicate id '" +
             request.id + "'";
    return false;
  }
  out->push_back(std::move(request));
  return true;
}

ServiceResponse HandleCampaign(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  CampaignConfig config = request.campaign;
  config.jobs = 1;  // the service pool is the only fan-out
  config.include_timing = false;
  CampaignRunner runner(config);
  const CampaignResult result = runner.Run();
  response.ok = true;
  response.body = CampaignJson(result);
  response.cover_facts = CoverFacts(result.merged);
  response.cover_digest = CoverDigest(result.merged);
  return response;
}

ServiceResponse HandleAnalyze(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  // Attribute any probe the analysis fires on this request's threads to
  // this request alone; uninstrumented trees legitimately report 0 facts.
  cov::ThreadCapture capture;
  driver::DriverOptions options;
  options.jobs = 1;
  driver::AnalysisDriver analysis_driver(options);
  auto analysis = analysis_driver.AnalyzeTree(request.dir);
  const cov::CoverSet cover = capture.Take();
  if (!analysis.ok()) {
    response.error = analysis.status().ToString();
    return response;
  }
  const driver::CodebaseAnalysis& a = analysis.value();
  std::int64_t functions = 0;
  std::int64_t misra_findings = 0;
  for (const auto& file : a.files) {
    functions += static_cast<std::int64_t>(file.functions.size());
    misra_findings += static_cast<std::int64_t>(file.misra.findings.size());
  }
  std::ostringstream body;
  body << "{\"modules\":" << a.modules.size() << ",\"files\":" << a.files.size()
       << ",\"functions\":" << functions
       << ",\"misra_findings\":" << misra_findings
       << ",\"skipped\":" << a.skipped.size() << "}";
  response.ok = true;
  response.body = body.str();
  response.cover_facts = CoverFacts(cover);
  response.cover_digest = CoverDigest(cover);
  return response;
}

ServiceResponse HandleStats(const ServiceRequest& request,
                            bool include_timing) {
  ServiceResponse response;
  response.id = request.id;
  response.ok = true;
  response.body = ServiceStatsJson(include_timing);
  return response;
}

ServiceResponse HandleShutdown(const ServiceRequest& request) {
  // The loop (RunServeLoop) ends after this response; in batch mode the
  // acknowledgement is a no-op, documented as such.
  ServiceResponse response;
  response.id = request.id;
  response.ok = true;
  response.body = "{\"status\":\"shutdown\"}";
  return response;
}

ServiceResponse HandleRequest(const ServiceRequest& request,
                              bool include_timing) {
  try {
    if (request.kind == "campaign") return HandleCampaign(request);
    if (request.kind == "analyze") return HandleAnalyze(request);
    if (request.kind == "stats") return HandleStats(request, include_timing);
    if (request.kind == "shutdown") return HandleShutdown(request);
    ServiceResponse response;
    response.id = request.id;
    response.error = "unknown request kind '" + request.kind + "'";
    return response;
  } catch (const std::exception& e) {
    ServiceResponse response;
    response.id = request.id;
    response.error = std::string("internal error: ") + e.what();
    return response;
  }
}

}  // namespace

bool ParseServiceRequests(std::string_view text,
                          std::vector<ServiceRequest>* out,
                          std::string* error) {
  out->clear();
  std::set<std::string> ids;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) {
    *error = "empty request batch";
    return false;
  }
  if (text[first] == '[') {
    JsonValue root;
    if (!support::ParseJson(text, &root, error)) return false;
    if (root.kind != JsonValue::Kind::kArray) {
      *error = "request batch is not an array";
      return false;
    }
    for (const JsonValue& v : root.items) {
      if (!AppendRequest(v, out, &ids, error)) return false;
    }
  } else {
    // NDJSON: one request object per non-empty line.
    std::size_t pos = 0;
    while (pos <= text.size()) {
      std::size_t end = text.find('\n', pos);
      if (end == std::string_view::npos) end = text.size();
      std::string_view line = text.substr(pos, end - pos);
      pos = end + 1;
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string_view::npos) continue;
      JsonValue v;
      if (!support::ParseJson(line, &v, error)) {
        *error = "request " + std::to_string(out->size() + 1) + ": " + *error;
        return false;
      }
      if (!AppendRequest(v, out, &ids, error)) return false;
    }
  }
  if (out->empty()) {
    *error = "empty request batch";
    return false;
  }
  return true;
}

std::string ServiceResponseJson(const ServiceResponse& response) {
  std::ostringstream out;
  out << "{\"id\":" << support::JsonEscape(response.id)
      << ",\"ok\":" << (response.ok ? "true" : "false");
  if (!response.ok) {
    out << ",\"error\":" << support::JsonEscape(response.error) << "}";
    return out.str();
  }
  out << ",\"cover_facts\":" << response.cover_facts << ",\"cover_digest\":"
      << support::JsonEscape(HexU64(response.cover_digest))
      << ",\"body\":" << response.body << "}";
  return out.str();
}

std::string ServiceStatsJson(bool include_timing) {
  const obs::FlightRecorderStats recorder = obs::GetFlightRecorderStats();
  std::ostringstream out;
  out << "{\"stats\":{\"recorder\":{\"events\":" << recorder.events
      << ",\"dropped\":" << recorder.dropped
      << ",\"ring_capacity\":" << recorder.ring_capacity;
  // The live ring count is a function of which pool threads have recorded
  // so far — scheduling-derived, so gated like every wall-clock field.
  if (include_timing) out << ",\"rings\":" << recorder.rings_in_use;
  out << "},";
  // Splice the MetricsJson inner content ("metrics":{...}) in as a sibling
  // of "recorder", so stats and the post-run export share one schema.
  const std::string metrics = obs::MetricsJson(
      obs::MetricsRegistry::Instance().Snapshot(), include_timing);
  out << metrics.substr(1, metrics.size() - 2) << "}}";
  return out.str();
}

CampaignService::CampaignService(int jobs, bool include_timing)
    : pool_(jobs <= 0 ? -1 : jobs - 1), include_timing_(include_timing) {}

std::vector<ServiceResponse> CampaignService::Process(
    const std::vector<ServiceRequest>& requests) {
  auto& registry = obs::MetricsRegistry::Instance();
  auto& queue_depth = registry.GetGauge("service/queue_depth");
  auto& requests_served = registry.GetCounter("service/requests_served");
  queue_depth.Set(static_cast<double>(requests.size()));
  const bool include_timing = include_timing_;
  return support::ParallelMap<ServiceResponse>(
      pool_, requests.size(), [&](std::size_t i) {
        obs::RecordFlightEvent(obs::FlightEventType::kServeBegin, 0, 0,
                               static_cast<std::int64_t>(i));
        ServiceResponse response = HandleRequest(requests[i], include_timing);
        obs::RecordFlightEvent(obs::FlightEventType::kServeEnd,
                               response.ok ? 1u : 0u, 0,
                               static_cast<std::int64_t>(i));
        queue_depth.Add(-1.0);
        requests_served.Add(1);
        return response;
      });
}

ServeLoopResult RunServeLoop(std::istream& in, std::ostream& out,
                             CampaignService* service) {
  ServeLoopResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::vector<ServiceRequest> batch;
    std::string error;
    ServiceResponse response;
    if (!ParseServiceRequests(line, &batch, &error) || batch.size() != 1) {
      response.id = "-";
      response.error = error.empty()
                           ? "expected exactly one request object per line"
                           : error;
    } else {
      response = service->Process(batch)[0];
    }
    out << ServiceResponseJson(response) << "\n" << std::flush;
    ++result.requests;
    if (!response.ok) ++result.failed;
    if (response.ok && !batch.empty() && batch[0].kind == "shutdown") {
      result.shutdown = true;
      break;
    }
  }
  return result;
}

bool BuildCampaignConfig(const support::FlagParser& flags,
                         CampaignConfig* config, bool* shard_mode,
                         std::string* error) {
  *shard_mode = false;
  const auto seed = flags.GetInt("seed", 1);
  const auto jobs = flags.GetInt("jobs", 0);
  const auto population = flags.GetInt("population", 12);
  const auto generations = flags.GetInt("generations", 4);
  const auto ticks = flags.GetInt("ticks", 25);
  const auto stop_after = flags.GetInt("stop-after", 0);
  if (!seed || !jobs || !population || !generations || !ticks || !stop_after) {
    *error = "campaign flags must be integers";
    return false;
  }
  if (*population < 1) {
    *error = "--population must be >= 1, got " + std::to_string(*population);
    return false;
  }
  if (*generations < 1) {
    *error = "--generations must be >= 1, got " + std::to_string(*generations);
    return false;
  }
  if (*ticks < 1) {
    *error = "--ticks must be >= 1, got " + std::to_string(*ticks);
    return false;
  }
  if (*stop_after < 0) {
    *error = "--stop-after must be >= 0, got " + std::to_string(*stop_after);
    return false;
  }
  config->seed = static_cast<std::uint64_t>(*seed);
  config->jobs = static_cast<int>(*jobs);
  config->population = static_cast<int>(*population);
  config->generations = static_cast<int>(*generations);
  config->ticks = static_cast<int>(*ticks);
  config->stop_after_generations = static_cast<int>(*stop_after);
  config->include_timing = flags.GetBool("timing");
  config->artifact_dir = flags.GetOr("artifact-dir", "");
  config->checkpoint_dir = flags.GetOr("checkpoint-dir", "");
  if (!config->checkpoint_dir.empty()) {
    std::error_code ec;
    if (fs::exists(config->checkpoint_dir, ec) &&
        !fs::is_directory(config->checkpoint_dir, ec)) {
      *error = "--checkpoint-dir '" + config->checkpoint_dir +
               "' exists but is not a directory";
      return false;
    }
  }
  const auto shard = flags.Get("shard");
  if (shard.has_value()) {
    if (!ParseShardSpec(*shard, &config->shard_index, &config->shard_count,
                        error)) {
      return false;
    }
    *shard_mode = true;
    if (config->checkpoint_dir.empty()) {
      *error = "--shard requires --checkpoint-dir (shard deltas and the "
               "merged checkpoint live there)";
      return false;
    }
    if (!config->artifact_dir.empty()) {
      *error = "--shard is incompatible with --artifact-dir; export "
               "artifacts from the merged (unsharded or merge-corpus) run";
      return false;
    }
  }
  if (config->stop_after_generations > 0 && config->checkpoint_dir.empty()) {
    *error = "--stop-after requires --checkpoint-dir (the checkpoint is how "
             "the next invocation continues)";
    return false;
  }
  return true;
}

}  // namespace certkit::campaign
