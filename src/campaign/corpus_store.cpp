#include "campaign/corpus_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <functional>
#include <set>
#include <sstream>
#include <thread>

#include "campaign/replay.h"
#include "support/fnv.h"
#include "support/io.h"

namespace certkit::campaign {

namespace fs = std::filesystem;

using support::JsonValue;

std::uint64_t CandidateHash(const Candidate& candidate) {
  return support::FnvStr(CandidateJson(candidate));
}

std::string CoverSetJson(const cov::CoverSet& cover) {
  std::ostringstream out;
  out << "{";
  bool first_unit = true;
  for (const auto& [unit, uc] : cover) {
    if (!first_unit) out << ",";
    first_unit = false;
    out << support::JsonEscape(unit) << ":{\"stmts\":[";
    bool first = true;
    for (const int id : uc.stmts) {
      if (!first) out << ",";
      first = false;
      out << id;
    }
    out << "],\"decisions\":[";
    first = true;
    for (const auto& [id, dec] : uc.decisions) {
      if (!first) out << ",";
      first = false;
      out << "{\"id\":" << id << ",\"conds\":" << dec.num_conditions
          << ",\"t\":" << (dec.seen_true ? "true" : "false")
          << ",\"f\":" << (dec.seen_false ? "true" : "false")
          << ",\"vectors\":[";
      bool first_vec = true;
      for (const auto& [mask, outcome] : dec.vectors) {
        if (!first_vec) out << ",";
        first_vec = false;
        out << "[" << support::JsonEscape(HexU64(mask)) << ","
            << (outcome ? "true" : "false") << "]";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

bool ParseCoverSet(const JsonValue& v, cov::CoverSet* out,
                   std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "cover is not an object";
    return false;
  }
  out->clear();
  for (const auto& [unit, uv] : v.members) {
    if (uv.kind != JsonValue::Kind::kObject) {
      *error = "cover unit '" + unit + "' is not an object";
      return false;
    }
    cov::UnitCover uc;
    const JsonValue* stmts = uv.Find("stmts");
    if (stmts == nullptr || stmts->kind != JsonValue::Kind::kArray) {
      *error = "field 'stmts': missing or not an array";
      return false;
    }
    for (const JsonValue& s : stmts->items) {
      if (s.kind != JsonValue::Kind::kNumber) {
        *error = "field 'stmts': non-numeric id";
        return false;
      }
      uc.stmts.insert(static_cast<int>(s.number));
    }
    const JsonValue* decisions = uv.Find("decisions");
    if (decisions == nullptr || decisions->kind != JsonValue::Kind::kArray) {
      *error = "field 'decisions': missing or not an array";
      return false;
    }
    for (const JsonValue& d : decisions->items) {
      if (d.kind != JsonValue::Kind::kObject) {
        *error = "field 'decisions': non-object entry";
        return false;
      }
      int id = 0;
      cov::DecisionCover dec;
      if (!support::JsonGetInt(d, "id", &id, error) ||
          !support::JsonGetInt(d, "conds", &dec.num_conditions, error) ||
          !support::JsonGetBool(d, "t", &dec.seen_true, error) ||
          !support::JsonGetBool(d, "f", &dec.seen_false, error)) {
        return false;
      }
      const JsonValue* vectors = d.Find("vectors");
      if (vectors == nullptr || vectors->kind != JsonValue::Kind::kArray) {
        *error = "field 'vectors': missing or not an array";
        return false;
      }
      for (const JsonValue& vec : vectors->items) {
        if (vec.kind != JsonValue::Kind::kArray || vec.items.size() != 2 ||
            vec.items[0].kind != JsonValue::Kind::kString ||
            vec.items[1].kind != JsonValue::Kind::kBool) {
          *error = "field 'vectors': entry is not a [mask, outcome] pair";
          return false;
        }
        std::uint64_t mask = 0;
        if (!ParseHexU64(vec.items[0].string, &mask)) {
          *error = "field 'vectors': mask is not a 16-digit hex value";
          return false;
        }
        dec.vectors.emplace(mask, vec.items[1].boolean);
      }
      uc.decisions[id] = std::move(dec);
    }
    (*out)[unit] = std::move(uc);
  }
  return true;
}

std::int64_t CoverFacts(const cov::CoverSet& cover) {
  // Exactly MergeCover's accounting against an empty destination, so "facts
  // in this cover" and "facts this cover would add first" agree by
  // construction.
  cov::CoverSet empty;
  return cov::MergeCover(&empty, cover);
}

std::uint64_t CoverDigest(const cov::CoverSet& cover) {
  return support::FnvStr(CoverSetJson(cover));
}

std::string CorpusEntryJson(const CorpusEntry& entry) {
  std::ostringstream out;
  out << "{\"schema\":" << kCorpusSchema
      << ",\"candidate\":" << CandidateJson(entry.candidate)
      << ",\"verdict\":" << VerdictJson(entry.verdict)
      << ",\"outcome\":" << support::JsonEscape(entry.outcome)
      << ",\"report_digest\":" << support::JsonEscape(HexU64(entry.report_digest))
      << ",\"cover\":" << CoverSetJson(entry.cover) << "}";
  return out.str();
}

bool ParseCorpusEntry(std::string_view json, CorpusEntry* out,
                      std::string* error) {
  JsonValue root;
  if (!support::ParseJson(json, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "corpus entry is not an object";
    return false;
  }
  int schema = 0;
  if (!support::JsonGetInt(root, "schema", &schema, error)) return false;
  if (schema != kCorpusSchema) {
    *error = "unsupported corpus schema " + std::to_string(schema);
    return false;
  }
  const JsonValue* candidate = root.Find("candidate");
  if (candidate == nullptr) {
    *error = "field 'candidate': missing";
    return false;
  }
  if (!ParseCandidate(*candidate, &out->candidate, error)) return false;
  const JsonValue* verdict = root.Find("verdict");
  if (verdict == nullptr) {
    *error = "field 'verdict': missing";
    return false;
  }
  if (!ParseVerdict(*verdict, &out->verdict, error)) return false;
  if (!support::JsonGetString(root, "outcome", &out->outcome, error)) {
    return false;
  }
  std::string digest;
  if (!support::JsonGetString(root, "report_digest", &digest, error)) {
    return false;
  }
  if (!ParseHexU64(digest, &out->report_digest)) {
    *error = "field 'report_digest': not a 16-digit hex digest";
    return false;
  }
  const JsonValue* cover = root.Find("cover");
  if (cover == nullptr) {
    *error = "field 'cover': missing";
    return false;
  }
  return ParseCoverSet(*cover, &out->cover, error);
}

namespace {

constexpr std::size_t kFrameHeaderSize = 4 + 4 + 8;

void AppendU32Le(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64Le(std::uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t ReadU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t ReadU64Le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string FrameBlob(const char magic[4], std::uint32_t schema,
                      std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(magic, 4);
  AppendU32Le(schema, &out);
  AppendU64Le(support::FnvStr(payload), &out);
  out.append(payload);
  return out;
}

bool UnframeBlob(const char magic[4], std::uint32_t schema,
                 std::string_view blob, std::string_view* payload) {
  if (blob.size() < kFrameHeaderSize) return false;
  if (std::memcmp(blob.data(), magic, 4) != 0) return false;
  if (ReadU32Le(blob.data() + 4) != schema) return false;
  const std::uint64_t digest = ReadU64Le(blob.data() + 8);
  const std::string_view body = blob.substr(kFrameHeaderSize);
  if (support::FnvStr(body) != digest) return false;
  *payload = body;
  return true;
}

// Atomic publish: unique temp name per writer, then rename — shards on a
// shared store directory never interleave and readers only see whole
// entries (the ArtifactCache::StoreBlob idiom).
support::Status AtomicWriteFile(const std::string& dir,
                                const std::string& path,
                                const std::string& blob) {
  std::error_code ec;
  fs::create_directories(dir, ec);  // best-effort; WriteFile reports failure
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = tmp_name.str();
  const support::Status written = support::WriteFile(tmp, blob);
  if (!written.ok()) return written;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return support::IoError("cannot publish " + path);
  }
  return support::Status::Ok();
}

namespace {

constexpr char kCorpusMagic[4] = {'C', 'K', 'C', '1'};

}  // namespace

CorpusStore::CorpusStore(std::string dir) : dir_(std::move(dir)) {}

std::string CorpusStore::EntryPath(std::uint64_t candidate_hash) const {
  return dir_ + "/" + HexU64(candidate_hash) + ".ckcorp";
}

support::Status CorpusStore::Put(const CorpusEntry& entry) const {
  if (!enabled()) return support::Status::Ok();
  const std::string blob =
      FrameBlob(kCorpusMagic, static_cast<std::uint32_t>(kCorpusSchema),
                CorpusEntryJson(entry));
  return AtomicWriteFile(dir_, EntryPath(CandidateHash(entry.candidate)),
                         blob);
}

bool CorpusStore::Load(std::uint64_t candidate_hash, CorpusEntry* out) const {
  if (!enabled()) return false;
  const auto bytes = support::ReadFile(EntryPath(candidate_hash));
  if (!bytes.ok()) return false;
  std::string_view payload;
  if (!UnframeBlob(kCorpusMagic, static_cast<std::uint32_t>(kCorpusSchema),
                   bytes.value(), &payload)) {
    return false;
  }
  std::string error;
  if (!ParseCorpusEntry(payload, out, &error)) return false;
  // The filename is the content address; an entry whose candidate hashes
  // differently is another candidate's data (or a collision) — recompute.
  return CandidateHash(out->candidate) == candidate_hash;
}

std::vector<CorpusEntry> CorpusStore::LoadAll() const {
  std::vector<CorpusEntry> entries;
  if (!enabled()) return entries;
  const auto files = support::ListFiles(dir_, {".ckcorp"});
  if (!files.ok()) return entries;
  std::set<std::uint64_t> seen;
  for (const std::string& path : files.value()) {
    const std::string name = fs::path(path).filename().string();
    // <hex16>.ckcorp exactly; anything else is a foreign file.
    if (name.size() != 16 + 7) continue;
    std::uint64_t hash = 0;
    if (!ParseHexU64(std::string_view(name).substr(0, 16), &hash)) continue;
    if (!seen.insert(hash).second) continue;
    CorpusEntry entry;
    if (Load(hash, &entry)) entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              if (a.candidate.id != b.candidate.id) {
                return a.candidate.id < b.candidate.id;
              }
              return CandidateHash(a.candidate) < CandidateHash(b.candidate);
            });
  return entries;
}

int CorpusStore::CountEntries() const {
  return static_cast<int>(LoadAll().size());
}

}  // namespace certkit::campaign
