#include "campaign/minimize.h"

#include <vector>

namespace certkit::campaign {

namespace {

// Enumerates the move set for `c`. Rebuilt after every accepted move since
// fault indices and sizes shift under the candidate.
std::vector<Candidate> Shrinks(const Candidate& c) {
  std::vector<Candidate> out;
  // Drop each fault individually — the classic ddmin "remove one chunk".
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    Candidate s = c;
    s.faults.erase(s.faults.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(s));
  }
  // Cut the run length, biggest bites first.
  for (const int t : {1, c.ticks / 2, (c.ticks * 3) / 4, c.ticks - 1}) {
    if (t >= 1 && t < c.ticks) {
      Candidate s = c;
      s.ticks = t;
      out.push_back(std::move(s));
    }
  }
  // Thin the scenario.
  for (const int n : {0, c.scenario.num_vehicles / 2,
                      c.scenario.num_vehicles - 1}) {
    if (n >= 0 && n < c.scenario.num_vehicles) {
      Candidate s = c;
      s.scenario.num_vehicles = n;
      out.push_back(std::move(s));
    }
  }
  for (const int n : {0, c.scenario.num_pedestrians / 2,
                      c.scenario.num_pedestrians - 1}) {
    if (n >= 0 && n < c.scenario.num_pedestrians) {
      Candidate s = c;
      s.scenario.num_pedestrians = n;
      out.push_back(std::move(s));
    }
  }
  // Drop the detector-size override back to camera-native.
  if (c.detector_input_h != 0 || c.detector_input_w != 0) {
    Candidate s = c;
    s.detector_input_h = 0;
    s.detector_input_w = 0;
    out.push_back(std::move(s));
  }
  // Halve each fault's live window (duration must stay >= 1).
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    const std::int64_t half = c.faults[i].duration_ticks / 2;
    if (half >= 1 && half < c.faults[i].duration_ticks) {
      Candidate s = c;
      s.faults[i].duration_ticks = half;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace

std::int64_t CandidateCost(const Candidate& candidate) {
  std::int64_t cost =
      static_cast<std::int64_t>(candidate.faults.size()) * 10000 +
      static_cast<std::int64_t>(candidate.ticks) * 100 +
      static_cast<std::int64_t>(candidate.scenario.num_vehicles +
                                candidate.scenario.num_pedestrians) *
          10;
  if (candidate.detector_input_h != 0 || candidate.detector_input_w != 0) {
    cost += 5;
  }
  for (const adpilot::FaultSpec& f : candidate.faults) {
    cost += f.duration_ticks;
  }
  return cost;
}

MinimizeResult Minimize(const Candidate& seed, const ReplayPredicate& keeps) {
  MinimizeResult result;
  result.candidate = seed;
  result.initial_cost = CandidateCost(seed);
  std::int64_t best_cost = result.initial_cost;
  bool improved = true;
  while (improved) {
    improved = false;
    for (Candidate& shrink : Shrinks(result.candidate)) {
      const std::int64_t cost = CandidateCost(shrink);
      // Strict decrease is the termination argument: cost is a positive
      // integer, so at most initial_cost accepted moves can ever happen.
      if (cost >= best_cost) continue;
      ++result.probes;
      if (!keeps(shrink)) continue;
      result.candidate = std::move(shrink);
      best_cost = cost;
      ++result.accepted_moves;
      improved = true;
      break;  // restart the move scan from the new, smaller candidate
    }
  }
  result.final_cost = best_cost;
  return result;
}

ReplayPredicate DivergencePredicate(const VariantSpec& spec) {
  return [spec](const Candidate& c) { return VariantDiverges(c, spec); };
}

ReplayPredicate OutcomePredicate(const std::string& outcome) {
  return [outcome](const Candidate& c) {
    return OutcomeSignature(CampaignRunner::Evaluate(c).verdict) == outcome;
  };
}

}  // namespace certkit::campaign
