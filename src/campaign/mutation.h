// certkit campaign: seeded candidate generation and mutation.
//
// The scheduler is the only source of randomness in the campaign, and it is
// only ever called from the runner's serial sections (seeding and breeding),
// so a campaign seed fixes the exact candidate sequence regardless of how
// many workers evaluate them.
#ifndef CERTKIT_CAMPAIGN_MUTATION_H_
#define CERTKIT_CAMPAIGN_MUTATION_H_

#include <array>
#include <cstdint>

#include "campaign/candidate.h"
#include "support/rng.h"

namespace certkit::campaign {

// The scheduler's complete serial state: the RNG stream position and the
// next candidate id. A scheduler restored from this breeds the exact
// candidate sequence the saved one would have — the checkpoint/resume and
// shard modes both rely on it (checkpoint.h serializes it).
struct SchedulerState {
  std::array<std::uint64_t, 4> rng{};
  std::int64_t next_id = 0;
};

class MutationScheduler {
 public:
  // `default_ticks` is the run length given to seed-pool candidates
  // (mutation may later vary it within [5, 60]).
  explicit MutationScheduler(std::uint64_t seed, int default_ticks = 25);

  // Deterministic, structurally diverse seed-pool candidate: cycles through
  // actor mixes, detector-input shapes (including the non-square ones that
  // reach the letterbox path), backends, and single-fault plans.
  Candidate SeedCandidate(int index);

  // Breeds a child from `parent`: 1–3 mutations over actors, geometry,
  // speeds, scenario seed, detector input, backend, fault plan, and run
  // length. The child is always constructible (REQ-SCEN-001 is re-validated
  // through ClampScenarioConfig).
  Candidate Mutate(const Candidate& parent);

  SchedulerState Save() const { return {rng_.state(), next_id_}; }
  void Restore(const SchedulerState& state) {
    rng_.set_state(state.rng);
    next_id_ = state.next_id;
  }

 private:
  void MutateOnce(Candidate* c);

  support::Xoshiro256 rng_;
  int default_ticks_;
  std::int64_t next_id_ = 0;
};

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_MUTATION_H_
