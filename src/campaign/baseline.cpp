#include "campaign/baseline.h"

#include <string>
#include <vector>

#include "ad/perception.h"
#include "ad/scenario.h"
#include "nn/detector.h"

namespace certkit::campaign {

void RunFigure5ScenarioSet() {
  using namespace adpilot;
  // Three scenario variants = the available "real-scenario tests".
  for (std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    ScenarioConfig cfg;
    cfg.num_vehicles = 3;
    cfg.num_pedestrians = 1;
    cfg.seed = seed;
    Scenario scenario(cfg);
    Perception perception;
    Pose ego{{0.0, -2.0}, 0.0};
    for (int tick = 0; tick < 15; ++tick) {
      scenario.Step(0.1);
      ego.position.x += 0.6;  // ego advances through traffic
      nn::Tensor frame = scenario.RenderCameraFrame(ego);
      perception.Process(frame, ego, 0.1);
    }
  }
  // One pass on the open-library build variant (the paper's Figure 7 setup
  // is exercised by the same tests).
  {
    ScenarioConfig cfg;
    cfg.num_vehicles = 2;
    cfg.seed = 404;
    Scenario scenario(cfg);
    PerceptionConfig pcfg;
    pcfg.backend = nn::Backend::kOpenSim;
    Perception perception(pcfg);
    Pose ego{{0.0, -2.0}, 0.0};
    for (int tick = 0; tick < 5; ++tick) {
      scenario.Step(0.1);
      nn::Tensor frame = scenario.RenderCameraFrame(ego);
      perception.Process(frame, ego, 0.1);
    }
  }
  // One smoke pass on the CPU-fallback build (no accelerator available).
  {
    ScenarioConfig cfg;
    cfg.num_vehicles = 1;
    cfg.seed = 505;
    Scenario scenario(cfg);
    PerceptionConfig pcfg;
    pcfg.backend = nn::Backend::kCpuNaive;
    Perception perception(pcfg);
    Pose ego{{0.0, -2.0}, 0.0};
    nn::Tensor frame = scenario.RenderCameraFrame(ego);
    perception.Process(frame, ego, 0.1);
  }
  // One pass with production-style random weights and a high-resolution
  // camera frame that the preprocessor must downscale.
  {
    nn::DetectorConfig dcfg;
    dcfg.num_classes = 2;
    dcfg.score_threshold = 0.35f;  // tuned-down deployment variant
    nn::TinyYoloDetector detector(dcfg);
    nn::InitRandomWeights(&detector, 2024);
    nn::Tensor hires(1, 3, 128, 128);
    for (int c = 0; c < 3; ++c) {
      for (int y = 0; y < 128; ++y) {
        for (int x = 0; x < 128; ++x) {
          hires.At(0, c, y, x) =
              (y >= 40 && y < 80 && x >= 40 && x < 80) ? 220.0f : 25.0f;
        }
      }
    }
    auto dets = detector.Detect(hires);
    (void)dets;
  }
  // The deployment flow also serializes/loads weights once (happy path —
  // the loader's error handling stays uncovered, as in a real test bench).
  std::vector<float> values(64, 0.5f);
  std::string buffer;
  nn::SerializeWeights(values, &buffer);
  nn::WeightsBlob blob;
  std::string error;
  nn::DeserializeWeights(buffer, &blob, &error);
}

cov::CoverSet CaptureFigure5Baseline() {
  cov::ThreadCapture capture;
  RunFigure5ScenarioSet();
  return capture.Take();
}

}  // namespace certkit::campaign
