// certkit campaign: the `certkit serve` request loop.
//
// A warm certkit process amortizes its startup (probe declaration, tuning
// caches, the analysis artifact cache) across many requests: `certkit
// serve` reads a batch of campaign/analysis requests, fans them out over a
// support::ThreadPool, and emits one response line per request in request
// order. Each campaign request runs with jobs=1 *inside* the request — the
// service pool is the only fan-out — so every candidate evaluation happens
// under that request's own cov::ThreadCapture and coverage attribution is
// per-request by construction: a request's reported cover facts/digest
// equal a solo run of the same configuration, no matter how many requests
// share the process.
//
// Observability: `service/queue_depth` (gauge) is set to the batch size
// when processing starts and decremented as each request retires — it
// settles to 0 deterministically because gauge adds commute — and
// `service/requests_served` (counter) counts retirements.
//
// Request schema (JSON array or NDJSON; DESIGN.md has the full contract):
//   {"id":"r1","kind":"campaign","seed":7,"population":3,
//    "generations":1,"ticks":6}
//   {"id":"r2","kind":"analyze","dir":"src/nn"}
//   {"id":"r3","kind":"stats"}       — live telemetry snapshot
//   {"id":"r4","kind":"shutdown"}    — ends a --stdin loop (no-op in batch)
//
// Long-lived mode: `certkit serve --stdin` runs RunServeLoop — one request
// line in, one response line out, until EOF or a `shutdown` request — so a
// warm server can be observed (`stats`) and retired without SIGKILL. The
// per-request caps are identical in both modes.
#ifndef CERTKIT_CAMPAIGN_SERVICE_H_
#define CERTKIT_CAMPAIGN_SERVICE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.h"
#include "support/flags.h"
#include "support/thread_pool.h"

namespace certkit::campaign {

// Caps keep a single request from monopolizing a shared server.
inline constexpr int kServeMaxPopulation = 64;
inline constexpr int kServeMaxGenerations = 16;
inline constexpr int kServeMaxTicks = 120;

struct ServiceRequest {
  std::string id;    // [A-Za-z0-9_.-]+, unique within a batch
  std::string kind;  // "campaign" | "analyze" | "stats" | "shutdown"
  CampaignConfig campaign;  // kind == "campaign"; jobs forced to 1
  std::string dir;          // kind == "analyze": source tree to analyze
};

struct ServiceResponse {
  std::string id;
  bool ok = false;
  std::string error;  // when !ok
  std::string body;   // response payload JSON (campaign JSON / analysis row)
  // Per-request coverage attribution: probe facts this request's own
  // evaluations produced, and the FNV digest of its cover set.
  std::int64_t cover_facts = 0;
  std::uint64_t cover_digest = 0;
};

// Parses a request batch: either one JSON array of request objects, or
// NDJSON (one object per non-empty line). Validates ids, kinds, and the
// campaign caps; false names the offending request in *error.
bool ParseServiceRequests(std::string_view text,
                          std::vector<ServiceRequest>* out,
                          std::string* error);

// One response line (stable key order, deterministic for fixed inputs).
std::string ServiceResponseJson(const ServiceResponse& response);

// The `stats` response body: flight-recorder occupancy plus the full
// metrics snapshot (counters/gauges/histograms/timers, same inner schema
// as MetricsJson). `include_timing` follows the --timing convention: it
// adds histogram buckets/extrema/quantiles, timer statistics, and the
// live ring count (all wall-clock- or scheduling-derived).
std::string ServiceStatsJson(bool include_timing);

class CampaignService {
 public:
  // `jobs` is the service fan-out (<= 0 selects hardware concurrency). The
  // calling thread drains the queue too, so jobs=N means N concurrent
  // requests. `include_timing` applies to `stats` responses only; request
  // bodies always run with timing off (determinism contract).
  explicit CampaignService(int jobs, bool include_timing = false);

  // Fans the batch out over the pool; response i corresponds to request i
  // (ParallelMap's slot contract), so output order never depends on
  // scheduling. Requests that fail (bad dir, internal error) produce
  // ok=false responses, never abort the batch.
  std::vector<ServiceResponse> Process(
      const std::vector<ServiceRequest>& requests);

 private:
  support::ThreadPool pool_;
  bool include_timing_ = false;
};

struct ServeLoopResult {
  std::int64_t requests = 0;  // lines answered (including malformed ones)
  std::int64_t failed = 0;    // ok=false responses emitted
  bool shutdown = false;      // loop ended by a shutdown request (vs EOF)
};

// The long-lived `certkit serve --stdin` loop: reads one request per line
// (a single request object; a multi-request array on one line is rejected
// as malformed), processes it through `service`, and writes one response,
// flushed, before reading the next. Malformed lines produce an ok=false
// response with id "-" and do not end the loop; a `shutdown` request is
// answered and then ends it. Request ids only need to be unique per line
// here — a long-lived client may reuse ids across lines.
ServeLoopResult RunServeLoop(std::istream& in, std::ostream& out,
                             CampaignService* service);

// Shared CLI-flag -> CampaignConfig translation for `certkit campaign`:
// parses/validates --seed/--jobs/--population/--generations/--ticks/
// --timing/--artifact-dir/--checkpoint-dir/--shard/--stop-after. On
// success, *shard_mode says whether --shard was given (config.shard_index/
// shard_count populated). False sets a user-facing *error: malformed
// numbers, --shard without --checkpoint-dir or with --artifact-dir,
// --stop-after without --checkpoint-dir, a --checkpoint-dir path that
// exists but is not a directory, or out-of-range shard/population values.
bool BuildCampaignConfig(const support::FlagParser& flags,
                         CampaignConfig* config, bool* shard_mode,
                         std::string* error);

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_SERVICE_H_
