#include "campaign/coverage_map.h"

#include <cmath>
#include <cstdio>

#include "support/json.h"

namespace certkit::campaign {

std::int64_t CoverageMap::Merge(const cov::CoverSet& cover) {
  const std::int64_t added = cov::MergeCover(&merged_, cover);
  total_facts_ += added;
  return added;
}

std::vector<cov::CoverageRow> CoverageMap::Rows(
    const std::string& prefix) const {
  // Units come from the merged cover, not the global registry: the registry
  // accumulates units from everything the process has ever run, which would
  // make the row set depend on history outside the campaign.
  std::vector<cov::CoverageRow> rows;
  for (const auto& [name, cover] : merged_) {
    if (name.rfind(prefix, 0) != 0) continue;
    rows.push_back(
        cov::CoverRow(cov::Registry::Instance().GetOrCreate(name), cover));
  }
  return rows;
}

std::string RatioJson(double ratio) {
  if (!std::isfinite(ratio)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", ratio);
  return buf;
}

std::string CoverageRowsJson(const std::vector<cov::CoverageRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"unit\":" + support::JsonEscape(rows[i].unit) +
           ",\"statement\":" + RatioJson(rows[i].statement) +
           ",\"branch\":" + RatioJson(rows[i].branch) +
           ",\"mcdc\":" + RatioJson(rows[i].mcdc) + "}";
  }
  out += "]";
  return out;
}

}  // namespace certkit::campaign
