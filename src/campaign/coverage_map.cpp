#include "campaign/coverage_map.h"

#include <cstdio>

namespace certkit::campaign {

std::int64_t CoverageMap::Merge(const cov::CoverSet& cover) {
  const std::int64_t added = cov::MergeCover(&merged_, cover);
  total_facts_ += added;
  return added;
}

std::vector<cov::CoverageRow> CoverageMap::Rows(
    const std::string& prefix) const {
  // Units come from the merged cover, not the global registry: the registry
  // accumulates units from everything the process has ever run, which would
  // make the row set depend on history outside the campaign.
  std::vector<cov::CoverageRow> rows;
  for (const auto& [name, cover] : merged_) {
    if (name.rfind(prefix, 0) != 0) continue;
    rows.push_back(
        cov::CoverRow(cov::Registry::Instance().GetOrCreate(name), cover));
  }
  return rows;
}

std::string CoverageRowsJson(const std::vector<cov::CoverageRow>& rows) {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"unit\":\"%s\",\"statement\":%.4f,\"branch\":%.4f,"
                  "\"mcdc\":%.4f}",
                  i > 0 ? "," : "", rows[i].unit.c_str(), rows[i].statement,
                  rows[i].branch, rows[i].mcdc);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace certkit::campaign
