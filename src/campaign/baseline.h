// certkit campaign: the fixed Figure-5 "real-scenario test" set, factored
// out of bench/fig5_cpu_coverage so both the bench and the campaign can
// compare against the identical baseline.
#ifndef CERTKIT_CAMPAIGN_BASELINE_H_
#define CERTKIT_CAMPAIGN_BASELINE_H_

#include "coverage/coverage.h"

namespace certkit::campaign {

// Executes the paper-style fixed scenario tests (three seeded traffic
// scenarios, one open-backend pass, one CPU-fallback pass, a hi-res
// random-weight detector pass, and a weights happy-path round trip) against
// the instrumented detector. Probes land in the global cov::Registry as
// usual.
void RunFigure5ScenarioSet();

// Runs the same set under a cov::ThreadCapture and returns exactly the
// coverage it produces, without resetting or reading global registry tallies
// (other tests in the process stay unaffected).
cov::CoverSet CaptureFigure5Baseline();

}  // namespace certkit::campaign

#endif  // CERTKIT_CAMPAIGN_BASELINE_H_
