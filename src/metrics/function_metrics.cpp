#include "metrics/function_metrics.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace certkit::metrics {

namespace {

using lex::Token;
using lex::TokenKind;

bool IsDecisionToken(const Token& t) {
  if (t.kind == TokenKind::kKeyword) {
    return t.text == "if" || t.text == "for" || t.text == "while" ||
           t.text == "case" || t.text == "catch";
  }
  if (t.kind == TokenKind::kPunct) {
    return t.text == "&&" || t.text == "||" || t.text == "?";
  }
  return false;
}

}  // namespace

FunctionMetrics ComputeFunctionMetrics(const ast::SourceFileModel& file,
                                       const ast::FunctionModel& fn) {
  const auto& toks = file.lexed.tokens;
  CERTKIT_CHECK(fn.body_begin < toks.size());
  CERTKIT_CHECK(fn.body_end < toks.size());
  CERTKIT_CHECK(fn.body_begin <= fn.body_end);

  FunctionMetrics m;
  m.name = fn.name;
  m.qualified_name = fn.qualified_name;
  m.start_line = fn.start_line;
  m.end_line = fn.end_line;
  m.param_count = static_cast<std::int32_t>(fn.params.size());
  m.token_count =
      static_cast<std::int32_t>(fn.body_end - fn.sig_begin + 1);

  // Views into the file's token storage; valid for this function's scope.
  std::unordered_set<std::string_view> callees;
  std::int32_t last_code_line = -1;
  int depth = 0;

  for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
    const Token& t = toks[i];

    if (t.line != last_code_line) {
      ++m.nloc;
      last_code_line = t.line;
    }

    if (t.IsPunct("{")) {
      ++depth;
      m.max_nesting_depth = std::max(m.max_nesting_depth, depth - 1);
    } else if (t.IsPunct("}")) {
      --depth;
    }

    if (IsDecisionToken(t)) {
      ++m.cyclomatic_complexity;
    }
    if (t.IsKeyword("return")) ++m.return_count;
    if (t.IsKeyword("goto")) ++m.goto_count;

    if (t.IsIdentifier() && i + 1 <= fn.body_end &&
        toks[i + 1].IsPunct("(")) {
      callees.insert(t.text);
      if (t.text == fn.name) m.is_recursive_direct = true;
    }
  }

  m.callees.reserve(callees.size());
  for (std::string_view callee : callees) m.callees.emplace_back(callee);
  std::sort(m.callees.begin(), m.callees.end());
  return m;
}

std::vector<FunctionMetrics> ComputeAllFunctionMetrics(
    const ast::SourceFileModel& file) {
  std::vector<FunctionMetrics> out;
  out.reserve(file.functions.size());
  for (const auto& fn : file.functions) {
    out.push_back(ComputeFunctionMetrics(file, fn));
  }
  return out;
}

ComplexityBand BandOf(std::int32_t cc) {
  if (cc <= 10) return ComplexityBand::kLow;
  if (cc <= 20) return ComplexityBand::kModerate;
  if (cc <= 50) return ComplexityBand::kRisky;
  return ComplexityBand::kUnstable;
}

const char* ComplexityBandName(ComplexityBand band) {
  switch (band) {
    case ComplexityBand::kLow:
      return "low(1-10)";
    case ComplexityBand::kModerate:
      return "moderate(11-20)";
    case ComplexityBand::kRisky:
      return "risky(21-50)";
    case ComplexityBand::kUnstable:
      return "unstable(>50)";
  }
  return "unknown";
}

}  // namespace certkit::metrics
